package specdb_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

// runAt runs c at the given WithParallelism width and returns its Result —
// with Parallel stripped, since cross-shard traffic and the per-shard busy
// split are the one legitimately width-dependent surface — plus every
// partition's command-log bytes.
func runAt(t *testing.T, c fuzzConfig, shards int) (specdb.Result, [][]byte) {
	t.Helper()
	c.shards = shards
	db := c.open(t)
	res := db.Run()
	if shards > 0 {
		p := res.Parallel
		if p == nil || p.Shards != shards || p.Barriers == 0 || p.Horizon <= 0 {
			t.Fatalf("shards=%d: missing or empty ParallelStats: %+v", shards, p)
		}
		if len(p.ShardBusy) != shards {
			t.Fatalf("shards=%d: ShardBusy has %d entries, want %d", shards, len(p.ShardBusy), shards)
		}
	}
	res.Parallel = nil
	logs := make([][]byte, c.partitions)
	for p := range logs {
		logs[p] = db.LogBytes(specdb.PartitionID(p))
	}
	return res, logs
}

// TestParallelWidthEquivalence is the sharded runtime's acceptance gate:
// WithParallelism(Shards: 1) and WithParallelism(Shards: N) must produce
// bit-identical Results and command-log bytes for every supported
// configuration — all five schemes, every fault kind, durability, open-loop
// arrivals, Zipfian skew, and advisor-driven scheme switches. Barrier counts
// must also match across widths (the window sequence is a function of event
// times alone).
func TestParallelWidthEquivalence(t *testing.T) {
	cases := []struct {
		name string
		c    fuzzConfig
	}{
		// decode(seed, scheme, partitions, clients, mp%, conflict%, abort%,
		//   twoRound, replicas, fault, openLoop, rate, window, skew%,
		//   durable, ckptMs, read%, adaptive, shards, scan%)
		{"blocking", decode(42, 0, 2, 7, 20, 0, 0, false, 0, 0, false, 0, 0, 0, false, 0, 0, false, 0, 0, 0)},
		{"speculation-two-round", decode(7, 1, 2, 7, 50, 0, 8, true, 0, 0, false, 0, 0, 0, false, 0, 0, false, 0, 0, 0)},
		{"locking-conflicts", decode(9, 2, 2, 5, 30, 60, 0, false, 0, 0, false, 0, 0, 0, false, 0, 0, false, 0, 0, 0)},
		{"mvcc-read-heavy", decode(61, 3, 2, 7, 30, 50, 4, false, 0, 0, false, 0, 0, 0, false, 0, 60, false, 0, 0, 0)},
		{"occ-hot-keys", decode(63, 4, 2, 7, 40, 60, 8, true, 0, 0, false, 0, 0, 0, false, 0, 25, false, 0, 0, 0)},
		{"fault-crash-primary", decode(3, 1, 2, 7, 40, 0, 0, false, 1, 1, false, 0, 0, 0, false, 0, 0, false, 0, 0, 0)},
		{"fault-crash-backup", decode(5, 1, 2, 7, 20, 0, 4, false, 1, 2, false, 0, 0, 0, false, 0, 0, false, 0, 0, 0)},
		{"fault-crash-restart-durable", decode(53, 1, 2, 7, 40, 0, 0, false, 0, 3, false, 0, 0, 0, true, 1, 0, false, 0, 0, 0)},
		{"durable-logging", decode(51, 1, 2, 7, 30, 0, 0, false, 0, 0, false, 0, 0, 0, true, 2, 0, false, 0, 0, 0)},
		{"openloop-overload-zipf", decode(12, 2, 2, 7, 10, 0, 0, false, 0, 0, true, 150_000, 3, 99, false, 0, 0, false, 0, 0, 0)},
		{"openloop-fault-replicated", decode(31, 1, 2, 5, 30, 0, 0, false, 1, 1, true, 40_000, 0, 50, false, 0, 0, false, 0, 0, 0)},
		{"advisor-switch", decode(71, 0, 2, 7, 60, 0, 0, true, 0, 0, false, 0, 0, 0, false, 0, 0, true, 0, 0, 0)},
		{"scan-mix", decode(92, 3, 2, 7, 30, 40, 0, false, 0, 0, false, 0, 0, 0, false, 0, 30, false, 0, 50, 0)},
		{"elastic-split-durable", decode(101, 1, 2, 7, 10, 0, 0, false, 0, 0, false, 0, 0, 0, true, 2, 0, false, 0, 0, 1)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base, baseLogs := runAt(t, tc.c, 1)
			for _, w := range []int{2, 4} {
				res, logs := runAt(t, tc.c, w)
				if !reflect.DeepEqual(res, base) {
					t.Fatalf("shards=%d diverges from shards=1:\n%+v\nvs\n%+v", w, res, base)
				}
				for p := range logs {
					if !bytes.Equal(logs[p], baseLogs[p]) {
						t.Fatalf("shards=%d: partition %d log bytes diverge (%d vs %d bytes)",
							w, p, len(logs[p]), len(baseLogs[p]))
					}
				}
			}
		})
	}
}

// TestParallelBarriersWidthIndependent pins the window-count invariant
// directly: the barrier sequence depends on event times only, never on how
// the actors are spread over shards.
func TestParallelBarriersWidthIndependent(t *testing.T) {
	c := decode(42, 1, 2, 7, 30, 0, 0, false, 0, 0, false, 0, 0, 0, false, 0, 0, false, 0, 0, 0)
	var barriers []uint64
	for _, w := range []int{1, 2, 4} {
		cw := c
		cw.shards = w
		res := cw.open(t).Run()
		barriers = append(barriers, res.Parallel.Barriers)
	}
	if barriers[0] != barriers[1] || barriers[0] != barriers[2] {
		t.Fatalf("barrier counts differ across widths: %v", barriers)
	}
}

// TestParallelIncrementalDrive checks that the interactive drive surface
// behaves identically on the sharded runtime: RunFor in uneven increments
// (which chops the window sequence differently) and one-shot Run reach the
// same Result, and Snapshot reports barrier progress along the way.
func TestParallelIncrementalDrive(t *testing.T) {
	c := decode(7, 1, 2, 7, 40, 0, 4, true, 0, 0, false, 0, 0, 0, true, 2, 0, false, 0, 0, 0)
	c.shards = 4
	oneShot, _ := runAt(t, c, 4)

	db := c.open(t)
	total := 12 * specdb.Millisecond // warmup (2ms) + measure (10ms)
	for step := specdb.Time(1); db.Now() < total; step = step*2 + 137 {
		d := step
		if rem := total - db.Now(); d > rem {
			d = rem
		}
		db.RunFor(d)
	}
	m := db.Snapshot()
	if m.Barriers == 0 {
		t.Fatal("Snapshot.Barriers stayed zero on the sharded runtime")
	}
	inc := db.Result()
	inc.Parallel = nil
	if !reflect.DeepEqual(inc, oneShot) {
		t.Fatalf("incremental drive diverges from one-shot Run:\n%+v\nvs\n%+v", inc, oneShot)
	}
}

// TestWithParallelismValidation pins the option's error contract.
func TestWithParallelismValidation(t *testing.T) {
	open := func(extra ...specdb.Option) error {
		reg := specdb.NewRegistry()
		reg.Register(kvstore.Proc{})
		opts := []specdb.Option{
			specdb.WithPartitions(2),
			specdb.WithRegistry(reg),
			specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, 8, 4)
			}),
			specdb.WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: 4}),
			specdb.WithMeasure(specdb.Millisecond),
		}
		_, err := specdb.Open(append(opts, extra...)...)
		return err
	}
	bad := []specdb.ParallelismConfig{
		{Shards: 0},
		{Shards: -3},
		{Shards: 2, Horizon: -specdb.Microsecond},
		{Shards: 2, Horizon: specdb.DefaultCosts().OneWayLatency + 1},
	}
	for _, cfg := range bad {
		if err := open(specdb.WithParallelism(cfg)); !errors.Is(err, specdb.ErrBadParallelism) {
			t.Errorf("config %+v: got %v, want ErrBadParallelism", cfg, err)
		}
	}
	if err := open(specdb.WithParallelism(specdb.ParallelismConfig{Shards: 4})); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := open(specdb.WithParallelism(specdb.ParallelismConfig{
		Shards:  2,
		Horizon: specdb.DefaultCosts().OneWayLatency,
	})); err != nil {
		t.Errorf("horizon at the lookahead bound rejected: %v", err)
	}
}
