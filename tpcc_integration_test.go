package specdb

import (
	"testing"

	"specdb/internal/storage"
	"specdb/internal/tpcc"
	"specdb/internal/workload"
)

// tpccOpts configures a TPC-C cluster; n > 0 caps the workload for
// run-to-quiescence tests. The loader is returned so tests can rebuild the
// initial stores (e.g. for the serializability oracle).
func tpccOpts(scheme Scheme, warehouses int, n int) ([]Option, tpcc.Layout, tpcc.Loader) {
	layout := tpcc.Layout{Warehouses: warehouses, Partitions: 2}
	scale := tpcc.Scale{Items: 200, StockPerWarehouse: 200, CustomersPerDist: 30, InitialOrders: 10}
	reg := NewRegistry()
	tpcc.RegisterAll(reg)
	loader := tpcc.Loader{Layout: layout, Scale: scale, Seed: 11}
	mkGen := func() Generator {
		var gen Generator = &tpcc.Mix{
			Layout: layout, Scale: scale,
			RemoteItemProb: 0.01, RemotePaymentProb: 0.15,
		}
		if n > 0 {
			gen = &workload.Limit{Gen: gen, N: n}
		}
		return gen
	}
	return []Option{
		WithPartitions(2),
		WithClients(20),
		WithScheme(scheme),
		WithSeed(3),
		WithRegistry(reg),
		WithCatalog(&Catalog{Meta: layout}),
		WithSetup(loader.Load),
		WithWorkloadFactory(mkGen),
	}, layout, loader
}

// TestTPCCConsistencyAllSchemes runs a finite TPC-C mix to quiescence under
// each scheme and verifies the TPC-C consistency conditions — the
// end-to-end serializability oracle (lost updates, double-applied
// speculation or phantom deliveries all break them).
func TestTPCCConsistencyAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			opts, layout, _ := tpccOpts(scheme, 4, 1500)
			committed, aborted := 0, 0
			opts = append(opts, WithOnComplete(func(ci int, inv *Invocation, r *Reply) {
				if r.Committed {
					committed++
				} else {
					aborted++
				}
			}))
			db := mustOpen(t, opts...)
			db.Run()
			if committed == 0 {
				t.Fatal("nothing committed")
			}
			// ~1% of NewOrders (45% of the mix) carry invalid items.
			if aborted == 0 {
				t.Log("note: no user aborts in this sample")
			}
			stores := []*storage.Store{db.PartitionStore(0), db.PartitionStore(1)}
			if err := tpcc.CheckConsistency(layout, stores); err != nil {
				t.Fatalf("consistency violated after %d commits: %v", committed, err)
			}
		})
	}
}

// TestTPCCAllInvocationsComplete: every generated transaction completes
// under every scheme (commit or deterministic user abort) — nothing is lost
// to kills, cascades or re-execution. Final states legitimately differ
// across schemes (order ids depend on the serialization order), so only the
// completion accounting is compared.
func TestTPCCAllInvocationsComplete(t *testing.T) {
	const n = 800
	for _, scheme := range allSchemes {
		opts, _, _ := tpccOpts(scheme, 4, n)
		completed := 0
		opts = append(opts, WithOnComplete(func(ci int, inv *Invocation, r *Reply) { completed++ }))
		db := mustOpen(t, opts...)
		db.Run()
		if completed != n {
			t.Errorf("%v: completed %d of %d", scheme, completed, n)
		}
	}
}

func TestTPCCReplicationConverges(t *testing.T) {
	for _, scheme := range []Scheme{Speculation, Blocking} {
		t.Run(scheme.String(), func(t *testing.T) {
			opts, layout, _ := tpccOpts(scheme, 4, 600)
			db := mustOpen(t, append(opts, WithReplicas(2))...)
			db.Run()
			// Key-for-key replica equivalence plus the TPC-C consistency
			// conditions on the backup stores themselves; TPC-C's user
			// aborts and speculative cascades are exactly the traffic that
			// breaks a replication stream with a lost, duplicated or
			// reordered forward.
			primaries := []*storage.Store{db.PartitionStore(0), db.PartitionStore(1)}
			backups := [][]*storage.Store{db.BackupStores(0), db.BackupStores(1)}
			if err := tpcc.CheckReplicaConsistency(layout, primaries, backups); err != nil {
				t.Fatal(err)
			}
			if err := tpcc.CheckConsistency(layout, primaries); err != nil {
				t.Fatal(err)
			}
			// No prepared transaction may survive quiescence.
			for p := 0; p < 2; p++ {
				for r, b := range db.backups[p] {
					if n := b.BufferedLen(); n != 0 {
						t.Errorf("partition %d backup %d leaked %d buffered transactions", p, r+1, n)
					}
				}
			}
		})
	}
}

// TestTPCCFailoverConsistency crashes a primary mid-TPC-C and verifies the
// promoted cluster still satisfies the TPC-C consistency conditions — the
// strongest end-to-end check that promotion loses no committed transaction
// and applies none twice.
func TestTPCCFailoverConsistency(t *testing.T) {
	opts, layout, _ := tpccOpts(Speculation, 4, 1200)
	completed := 0
	opts = append(opts,
		WithReplicas(2),
		WithFaults(CrashPrimary(0, 15*Millisecond)),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) { completed++ }),
	)
	db := mustOpen(t, opts...)
	for i := 0; i < 10_000 && !db.Quiescent(); i++ {
		db.RunFor(10 * Millisecond)
	}
	if !db.Quiescent() {
		t.Fatal("TPC-C run did not quiesce after the failover")
	}
	db.Run()
	if completed != 1200 {
		t.Fatalf("completed %d of 1200 invocations", completed)
	}
	res := db.Result()
	if len(res.Failovers) != 1 || res.Failovers[0].PromotedAt == 0 {
		t.Fatalf("failover did not complete: %+v", res.Failovers)
	}
	if res.FailoverResends == 0 {
		t.Error("no recovery resends: the crash missed the traffic")
	}
	stores := []*storage.Store{db.PartitionStore(0), db.PartitionStore(1)}
	if err := tpcc.CheckConsistency(layout, stores); err != nil {
		t.Fatalf("consistency violated across promotion: %v", err)
	}
	// The surviving partition's backup still mirrors its primary.
	if err := storage.DiffStores(db.PartitionStore(1), db.BackupStores(1)[0]); err != nil {
		t.Fatal(err)
	}
}

// TestTPCCThroughputOrdering checks the Figure 8 ordering at 6 warehouses
// via a scheme-axis Sweep: speculation > blocking > locking (locking pays
// lock overhead plus contention on warehouse and district rows).
func TestTPCCThroughputOrdering(t *testing.T) {
	base, _, _ := tpccOpts(Speculation, 6, 0)
	base = append(base,
		WithClients(40),
		WithWarmup(50*Millisecond),
		WithMeasure(300*Millisecond),
	)
	schemes := []Scheme{Blocking, Speculation, Locking}
	cells, err := Sweep{
		Name: "tpcc-ordering",
		Base: base,
		Axes: []Axis{SchemeAxis(schemes...)},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	tput := map[Scheme]float64{}
	for i, cell := range cells {
		tput[schemes[i]] = cell.Result.Throughput
	}
	if !(tput[Speculation] > tput[Blocking]) {
		t.Errorf("speculation (%.0f) should beat blocking (%.0f)", tput[Speculation], tput[Blocking])
	}
	if !(tput[Speculation] > tput[Locking]) {
		t.Errorf("speculation (%.0f) should beat locking (%.0f)", tput[Speculation], tput[Locking])
	}
}
