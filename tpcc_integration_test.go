package specdb

import (
	"testing"

	"specdb/internal/storage"
	"specdb/internal/tpcc"
	"specdb/internal/workload"
)

func tpccConfig(scheme Scheme, warehouses int, n int) (Config, tpcc.Layout) {
	layout := tpcc.Layout{Warehouses: warehouses, Partitions: 2}
	scale := tpcc.Scale{Items: 200, StockPerWarehouse: 200, CustomersPerDist: 30, InitialOrders: 10}
	reg := NewRegistry()
	tpcc.RegisterAll(reg)
	loader := tpcc.Loader{Layout: layout, Scale: scale, Seed: 11}
	var gen workload.Generator = &tpcc.Mix{
		Layout: layout, Scale: scale,
		RemoteItemProb: 0.01, RemotePaymentProb: 0.15,
	}
	if n > 0 {
		gen = &workload.Limit{Gen: gen, N: n}
	}
	return Config{
		Partitions: 2,
		Clients:    20,
		Scheme:     scheme,
		Seed:       3,
		Registry:   reg,
		Catalog:    &Catalog{Meta: layout},
		Setup:      loader.Load,
		Workload:   gen,
	}, layout
}

// TestTPCCConsistencyAllSchemes runs a finite TPC-C mix to quiescence under
// each scheme and verifies the TPC-C consistency conditions — the
// end-to-end serializability oracle (lost updates, double-applied
// speculation or phantom deliveries all break them).
func TestTPCCConsistencyAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg, layout := tpccConfig(scheme, 4, 1500)
			committed, aborted := 0, 0
			cfg.OnComplete = func(ci int, inv *Invocation, r *Reply) {
				if r.Committed {
					committed++
				} else {
					aborted++
				}
			}
			cl := New(cfg)
			cl.Run()
			if committed == 0 {
				t.Fatal("nothing committed")
			}
			// ~1% of NewOrders (45% of the mix) carry invalid items.
			if aborted == 0 {
				t.Log("note: no user aborts in this sample")
			}
			stores := []*storage.Store{cl.PartitionStore(0), cl.PartitionStore(1)}
			if err := tpcc.CheckConsistency(layout, stores); err != nil {
				t.Fatalf("consistency violated after %d commits: %v", committed, err)
			}
		})
	}
}

// TestTPCCAllInvocationsComplete: every generated transaction completes
// under every scheme (commit or deterministic user abort) — nothing is lost
// to kills, cascades or re-execution. Final states legitimately differ
// across schemes (order ids depend on the serialization order), so only the
// completion accounting is compared.
func TestTPCCAllInvocationsComplete(t *testing.T) {
	const n = 800
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		cfg, _ := tpccConfig(scheme, 4, n)
		completed := 0
		cfg.OnComplete = func(ci int, inv *Invocation, r *Reply) { completed++ }
		cl := New(cfg)
		cl.Run()
		if completed != n {
			t.Errorf("%v: completed %d of %d", scheme, completed, n)
		}
	}
}

func TestTPCCReplicationConverges(t *testing.T) {
	cfg, layout := tpccConfig(Speculation, 4, 600)
	cfg.Replicas = 2
	cl := New(cfg)
	cl.Run()
	for p := PartitionID(0); p < 2; p++ {
		want := cl.PartitionStore(p).Fingerprint()
		for bi, bs := range cl.BackupStores(p) {
			if got := bs.Fingerprint(); got != want {
				t.Fatalf("partition %d backup %d diverged", p, bi)
			}
		}
	}
	stores := []*storage.Store{cl.PartitionStore(0), cl.PartitionStore(1)}
	if err := tpcc.CheckConsistency(layout, stores); err != nil {
		t.Fatal(err)
	}
}

// TestTPCCThroughputOrdering checks the Figure 8 ordering at 6 warehouses:
// speculation > blocking > locking (locking pays lock overhead plus
// contention on warehouse and district rows).
func TestTPCCThroughputOrdering(t *testing.T) {
	tput := map[Scheme]float64{}
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		cfg, _ := tpccConfig(scheme, 6, 0)
		cfg.Clients = 40
		cfg.Warmup = 50 * Millisecond
		cfg.Measure = 300 * Millisecond
		r := Run(cfg)
		tput[scheme] = r.Throughput
	}
	if !(tput[Speculation] > tput[Blocking]) {
		t.Errorf("speculation (%.0f) should beat blocking (%.0f)", tput[Speculation], tput[Blocking])
	}
	if !(tput[Speculation] > tput[Locking]) {
		t.Errorf("speculation (%.0f) should beat locking (%.0f)", tput[Speculation], tput[Locking])
	}
}
