package specdb

import (
	"testing"

	"specdb/internal/storage"
	"specdb/internal/tpcc"
	"specdb/internal/workload"
)

// tpccOpts configures a TPC-C cluster; n > 0 caps the workload for
// run-to-quiescence tests.
func tpccOpts(scheme Scheme, warehouses int, n int) ([]Option, tpcc.Layout) {
	layout := tpcc.Layout{Warehouses: warehouses, Partitions: 2}
	scale := tpcc.Scale{Items: 200, StockPerWarehouse: 200, CustomersPerDist: 30, InitialOrders: 10}
	reg := NewRegistry()
	tpcc.RegisterAll(reg)
	loader := tpcc.Loader{Layout: layout, Scale: scale, Seed: 11}
	mkGen := func() Generator {
		var gen Generator = &tpcc.Mix{
			Layout: layout, Scale: scale,
			RemoteItemProb: 0.01, RemotePaymentProb: 0.15,
		}
		if n > 0 {
			gen = &workload.Limit{Gen: gen, N: n}
		}
		return gen
	}
	return []Option{
		WithPartitions(2),
		WithClients(20),
		WithScheme(scheme),
		WithSeed(3),
		WithRegistry(reg),
		WithCatalog(&Catalog{Meta: layout}),
		WithSetup(loader.Load),
		WithWorkloadFactory(mkGen),
	}, layout
}

// TestTPCCConsistencyAllSchemes runs a finite TPC-C mix to quiescence under
// each scheme and verifies the TPC-C consistency conditions — the
// end-to-end serializability oracle (lost updates, double-applied
// speculation or phantom deliveries all break them).
func TestTPCCConsistencyAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		t.Run(scheme.String(), func(t *testing.T) {
			opts, layout := tpccOpts(scheme, 4, 1500)
			committed, aborted := 0, 0
			opts = append(opts, WithOnComplete(func(ci int, inv *Invocation, r *Reply) {
				if r.Committed {
					committed++
				} else {
					aborted++
				}
			}))
			db := mustOpen(t, opts...)
			db.Run()
			if committed == 0 {
				t.Fatal("nothing committed")
			}
			// ~1% of NewOrders (45% of the mix) carry invalid items.
			if aborted == 0 {
				t.Log("note: no user aborts in this sample")
			}
			stores := []*storage.Store{db.PartitionStore(0), db.PartitionStore(1)}
			if err := tpcc.CheckConsistency(layout, stores); err != nil {
				t.Fatalf("consistency violated after %d commits: %v", committed, err)
			}
		})
	}
}

// TestTPCCAllInvocationsComplete: every generated transaction completes
// under every scheme (commit or deterministic user abort) — nothing is lost
// to kills, cascades or re-execution. Final states legitimately differ
// across schemes (order ids depend on the serialization order), so only the
// completion accounting is compared.
func TestTPCCAllInvocationsComplete(t *testing.T) {
	const n = 800
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		opts, _ := tpccOpts(scheme, 4, n)
		completed := 0
		opts = append(opts, WithOnComplete(func(ci int, inv *Invocation, r *Reply) { completed++ }))
		db := mustOpen(t, opts...)
		db.Run()
		if completed != n {
			t.Errorf("%v: completed %d of %d", scheme, completed, n)
		}
	}
}

func TestTPCCReplicationConverges(t *testing.T) {
	opts, layout := tpccOpts(Speculation, 4, 600)
	db := mustOpen(t, append(opts, WithReplicas(2))...)
	db.Run()
	for p := PartitionID(0); p < 2; p++ {
		want := db.PartitionStore(p).Fingerprint()
		for bi, bs := range db.BackupStores(p) {
			if got := bs.Fingerprint(); got != want {
				t.Fatalf("partition %d backup %d diverged", p, bi)
			}
		}
	}
	stores := []*storage.Store{db.PartitionStore(0), db.PartitionStore(1)}
	if err := tpcc.CheckConsistency(layout, stores); err != nil {
		t.Fatal(err)
	}
}

// TestTPCCThroughputOrdering checks the Figure 8 ordering at 6 warehouses
// via a scheme-axis Sweep: speculation > blocking > locking (locking pays
// lock overhead plus contention on warehouse and district rows).
func TestTPCCThroughputOrdering(t *testing.T) {
	base, _ := tpccOpts(Speculation, 6, 0)
	base = append(base,
		WithClients(40),
		WithWarmup(50*Millisecond),
		WithMeasure(300*Millisecond),
	)
	schemes := []Scheme{Blocking, Speculation, Locking}
	cells, err := Sweep{
		Name: "tpcc-ordering",
		Base: base,
		Axes: []Axis{SchemeAxis(schemes...)},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	tput := map[Scheme]float64{}
	for i, cell := range cells {
		tput[schemes[i]] = cell.Result.Throughput
	}
	if !(tput[Speculation] > tput[Blocking]) {
		t.Errorf("speculation (%.0f) should beat blocking (%.0f)", tput[Speculation], tput[Blocking])
	}
	if !(tput[Speculation] > tput[Locking]) {
		t.Errorf("speculation (%.0f) should beat locking (%.0f)", tput[Speculation], tput[Locking])
	}
}
