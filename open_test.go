package specdb

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"specdb/internal/workload"
)

// minimalOpts is the smallest valid option set: everything else defaults.
func minimalOpts() []Option {
	return []Option{
		WithRegistry(kvRegistry()),
		WithSetup(kvSetup(40)),
		WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: testKeys}),
	}
}

func TestOptionDefaults(t *testing.T) {
	db := mustOpen(t, minimalOpts()...)
	if db.cfg.partitions != 2 {
		t.Errorf("default partitions = %d, want 2", db.cfg.partitions)
	}
	if db.cfg.clients != 40 {
		t.Errorf("default clients = %d, want 40", db.cfg.clients)
	}
	if db.cfg.scheme != Speculation {
		t.Errorf("default scheme = %v, want speculation", db.cfg.scheme)
	}
	if db.cfg.replicas != 1 {
		t.Errorf("default replicas = %d, want 1", db.cfg.replicas)
	}
	if db.cfg.seed != 0 || db.cfg.warmup != 0 || db.cfg.measure != 0 {
		t.Errorf("default seed/warmup/measure = %d/%v/%v, want zero",
			db.cfg.seed, db.cfg.warmup, db.cfg.measure)
	}
	if !reflect.DeepEqual(db.cfg.costs, DefaultCosts()) {
		t.Errorf("default costs differ from DefaultCosts")
	}
	if len(db.clients) != 40 || len(db.parts) != 2 {
		t.Errorf("assembled %d clients / %d partitions", len(db.clients), len(db.parts))
	}
	if got := len(db.BackupStores(0)); got != 0 {
		t.Errorf("default run has %d backups, want 0", got)
	}
}

func TestOptionsOverrideInOrder(t *testing.T) {
	opts := append(minimalOpts(),
		WithPartitions(3), WithPartitions(4),
		WithScheme(Blocking), WithScheme(Locking),
	)
	db := mustOpen(t, opts...)
	if db.cfg.partitions != 4 {
		t.Errorf("partitions = %d, want 4 (later option wins)", db.cfg.partitions)
	}
	if db.cfg.scheme != Locking {
		t.Errorf("scheme = %v, want locking (later option wins)", db.cfg.scheme)
	}
}

func TestOpenErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"no registry", []Option{WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: 1})}, ErrNoRegistry},
		{"no workload", []Option{WithRegistry(kvRegistry())}, ErrNoWorkload},
		{"bad scheme", append(minimalOpts(), WithScheme(Scheme(42))), ErrBadScheme},
		{"zero partitions", append(minimalOpts(), WithPartitions(0)), ErrBadPartitions},
		{"negative partitions", append(minimalOpts(), WithPartitions(-1)), ErrBadPartitions},
		{"zero clients", append(minimalOpts(), WithClients(0)), ErrBadClients},
		{"negative clients", append(minimalOpts(), WithClients(-3)), ErrBadClients},
		{"zero replicas", append(minimalOpts(), WithReplicas(0)), ErrBadReplicas},
		{"negative warmup", append(minimalOpts(), WithWarmup(-Millisecond)), ErrBadWindow},
		{"negative measure", append(minimalOpts(), WithMeasure(-Millisecond)), ErrBadWindow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(tc.opts...)
			if db != nil || err == nil {
				t.Fatalf("Open = (%v, %v), want error", db, err)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

// TestBadSchemeFailsAtOpen is the regression for the late-failure bug: an
// unknown scheme used to panic deep inside the engine-factory closure on
// first message delivery; it must be rejected before any event runs.
func TestBadSchemeFailsAtOpen(t *testing.T) {
	_, err := Open(append(minimalOpts(), WithScheme(Scheme(99)))...)
	if !errors.Is(err, ErrBadScheme) {
		t.Fatalf("unknown scheme: error = %v, want ErrBadScheme", err)
	}
}

// TestBadSchemeErrorEnumeratesSchemes pins the error text to the full scheme
// list: it is the first thing a user sees after a typo, and it silently went
// stale once when new schemes were added.
func TestBadSchemeErrorEnumeratesSchemes(t *testing.T) {
	for _, want := range []string{"Blocking", "Speculation", "Locking", "MVCC", "OCC"} {
		if !strings.Contains(ErrBadScheme.Error(), want) {
			t.Errorf("ErrBadScheme = %q: missing %q", ErrBadScheme, want)
		}
	}
}

// TestDeterministicByteIdenticalResult: the same seed and options produce a
// byte-identical Result, including slices and quantiles.
func TestDeterministicByteIdenticalResult(t *testing.T) {
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		a := mustOpen(t, timedOpts(scheme, 0.3)...).Run()
		b := mustOpen(t, timedOpts(scheme, 0.3)...).Run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: results differ:\n%+v\n%+v", scheme, a, b)
		}
		if fmt.Sprintf("%#v", a) != fmt.Sprintf("%#v", b) {
			t.Fatalf("%v: results not byte-identical", scheme)
		}
	}
}

// TestDeterministicAcrossEngineWarmup: the allocation overhaul added
// process-level warm state — interned key tables, pooled undo buffers and
// lock entries, reused generator and view buffers. None of it may leak into
// results: the first (cold) run of a configuration and every later (warm)
// run, including runs interleaved with *different* configurations that churn
// the shared intern tables and pools, must produce bit-identical Results.
func TestDeterministicAcrossEngineWarmup(t *testing.T) {
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		cold := mustOpen(t, timedOpts(scheme, 0.3)...).Run()
		// Churn the shared warm state with unrelated configurations.
		mustOpen(t, timedOpts(scheme, 0.7)...).Run()
		mustOpen(t, append(timedOpts(scheme, 0.5), WithClients(7), WithSeed(99))...).Run()
		warm := mustOpen(t, timedOpts(scheme, 0.3)...).Run()
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("%v: cold and warm results differ:\ncold: %+v\nwarm: %+v", scheme, cold, warm)
		}
	}
}

// TestLegacyConfigShim: the deprecated Run(Config) facade produces the same
// Result as the equivalent Open call.
func TestLegacyConfigShim(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			Partitions: 2,
			Clients:    testClients,
			Scheme:     Speculation,
			Seed:       1,
			Registry:   kvRegistry(),
			Setup:      kvSetup(testClients),
			Workload:   scriptOf(60, 3),
		}
	}
	legacy := Run(mkCfg())
	db := mustOpen(t, mkCfg().Options()...)
	modern := db.Run()
	if !reflect.DeepEqual(legacy, modern) {
		t.Fatalf("legacy shim diverges from Open:\n%+v\n%+v", legacy, modern)
	}
}

func TestLegacyRunPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with empty Config should panic (deprecated path)")
		}
	}()
	Run(Config{})
}
