package specdb

import (
	"errors"
	"reflect"
	"testing"

	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/storage"
	"specdb/internal/workload"
)

// failoverOpts builds a microbenchmark cluster with replication and a
// finite workload, suitable for running to quiescence.
func failoverOpts(t *testing.T, scheme Scheme, perClient int, extra ...Option) []Option {
	t.Helper()
	const (
		parts      = 2
		clients    = 16
		keysPerTxn = 6
	)
	reg := NewRegistry()
	reg.Register(kvstore.Proc{})
	opts := []Option{
		WithPartitions(parts),
		WithClients(clients),
		WithReplicas(2),
		WithScheme(scheme),
		WithRegistry(reg),
		WithSeed(7),
		WithSetup(func(p PartitionID, s *Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keysPerTxn)
		}),
		WithWorkloadFactory(func() Generator {
			return &workload.Limit{
				Gen: &workload.Micro{Partitions: parts, KeysPerTxn: keysPerTxn, MPFraction: 0.2},
				N:   clients * perClient,
			}
		}),
	}
	return append(opts, extra...)
}

// ledger tracks, per key, how many transactions committed against it
// (client-observed truth). Every committed kv transaction increments each of
// its keys exactly once, so at quiescence the live stores must match the
// ledger exactly: a lost committed transaction or a double-applied one shows
// up as a counter mismatch.
type ledger struct {
	commits map[msg.PartitionID]map[string]int64
}

func newLedger() *ledger {
	return &ledger{commits: make(map[msg.PartitionID]map[string]int64)}
}

func (l *ledger) observe(inv *Invocation, reply *Reply) {
	if !reply.Committed {
		return
	}
	args := inv.Args.(*kvstore.Args)
	for p, keys := range args.Keys {
		m := l.commits[p]
		if m == nil {
			m = make(map[string]int64)
			l.commits[p] = m
		}
		for _, k := range keys {
			m[k]++
		}
	}
}

func (l *ledger) verify(t *testing.T, db *DB, parts int) {
	t.Helper()
	for p := 0; p < parts; p++ {
		store := db.PartitionStore(PartitionID(p))
		store.Table(kvstore.Table).Ascend("", "", func(k string, v any) bool {
			want := l.commits[PartitionID(p)][k]
			if got := v.(int64); got != want {
				t.Errorf("partition %d key %q: store=%d, committed=%d", p, k, got, want)
			}
			return true
		})
	}
}

// runToQuiescence drives a faulted DB until the workload finishes. The event
// queue may briefly hold failure-detector machinery past the last
// transaction, so DB.Quiescent is the signal, not an empty queue.
func runToQuiescence(t *testing.T, db *DB) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		db.RunFor(10 * Millisecond)
		if db.Quiescent() {
			// Let any trailing replica forwards and detector teardown
			// drain completely.
			db.Run()
			return
		}
	}
	t.Fatalf("cluster did not quiesce: %+v", db.Peek())
}

func TestFailoverPromotionExactlyOnce(t *testing.T) {
	for _, scheme := range []Scheme{Speculation, Blocking} {
		t.Run(scheme.String(), func(t *testing.T) {
			led := newLedger()
			// The crash lands mid-traffic (10.3 ms into a ~130 ms run),
			// chosen so that every recovery path fires: stalled
			// single-partition attempts get resent, unrecoverable
			// multi-partition transactions get force-aborted, and
			// prepared-but-undecided forwards get resolved at promotion.
			opts := failoverOpts(t, scheme, 200,
				WithFaults(CrashPrimary(0, 10300*Microsecond)),
				WithOnComplete(func(ci int, inv *Invocation, reply *Reply) {
					led.observe(inv, reply)
				}),
			)
			db, err := Open(opts...)
			if err != nil {
				t.Fatal(err)
			}
			runToQuiescence(t, db)

			res := db.Result()
			if len(res.Failovers) != 1 {
				t.Fatalf("failovers = %+v", res.Failovers)
			}
			ev := res.Failovers[0]
			if ev.Role != "primary" || ev.Partition != 0 {
				t.Fatalf("unexpected failover event %+v", ev)
			}
			if ev.CrashedAt != 10300*Microsecond {
				t.Errorf("CrashedAt = %v", ev.CrashedAt)
			}
			if ev.DetectedAt <= ev.CrashedAt || ev.PromotedAt < ev.DetectedAt {
				t.Errorf("stage times out of order: %+v", ev)
			}
			if res.Downtime <= 0 {
				t.Errorf("downtime = %v", res.Downtime)
			}
			if res.FailoverResends == 0 {
				t.Error("no recovery resends: the crash missed the traffic")
			}
			if ev.AbortedInFlight == 0 {
				t.Error("no in-flight aborts: the crash missed multi-partition traffic")
			}
			// The promotion must be visible to clients: the workload ran to
			// completion, i.e. every client finished its quota.
			m := db.Peek()
			if m.Failovers != 1 {
				t.Errorf("metrics failovers = %d", m.Failovers)
			}
			var issued uint64
			for _, cl := range db.Clients() {
				if !cl.Idle() {
					t.Fatalf("client %d still busy after quiescence", cl.Index)
				}
				issued += cl.Completed
			}
			if got, want := issued, uint64(16*200); got != want {
				t.Errorf("completed %d transactions, want %d", got, want)
			}
			// Exactly-once: the live stores match the client-observed
			// commit ledger key for key.
			led.verify(t, db, 2)
			// The surviving partition's backup converged to its primary.
			if err := storage.DiffStores(db.PartitionStore(1), db.BackupStores(1)[0]); err != nil {
				t.Errorf("partition 1 backup diverged: %v", err)
			}
		})
	}
}

func TestFailoverDeterministic(t *testing.T) {
	run := func() (Result, uint64, uint64) {
		db, err := Open(failoverOpts(t, Speculation, 100,
			WithFaults(CrashPrimary(1, 10300*Microsecond)))...)
		if err != nil {
			t.Fatal(err)
		}
		runToQuiescence(t, db)
		return db.Result(), db.PartitionStore(0).Fingerprint(), db.PartitionStore(1).Fingerprint()
	}
	r1, fp0a, fp1a := run()
	r2, fp0b, fp1b := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ:\n%+v\n%+v", r1, r2)
	}
	if fp0a != fp0b || fp1a != fp1b {
		t.Errorf("store fingerprints differ: (%x,%x) vs (%x,%x)", fp0a, fp1a, fp0b, fp1b)
	}
	if len(r1.Failovers) != 1 || r1.Failovers[0].PromotedAt == 0 {
		t.Errorf("failover did not complete: %+v", r1.Failovers)
	}
}

func TestCrashBackupReleasesGatedSends(t *testing.T) {
	led := newLedger()
	db, err := Open(failoverOpts(t, Speculation, 100,
		WithFaults(CrashBackup(0, 1, 10300*Microsecond)),
		WithOnComplete(func(ci int, inv *Invocation, reply *Reply) {
			led.observe(inv, reply)
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	runToQuiescence(t, db)

	res := db.Result()
	if len(res.Failovers) != 1 {
		t.Fatalf("failovers = %+v", res.Failovers)
	}
	ev := res.Failovers[0]
	if ev.Role != "backup" || ev.Partition != 0 || ev.Replica != 1 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.DetectedAt <= ev.CrashedAt {
		t.Errorf("backup crash not detected: %+v", ev)
	}
	if ev.Downtime() != 0 {
		t.Errorf("backup crash has downtime %v", ev.Downtime())
	}
	// Every client ran to completion: votes and replies gated on the dead
	// backup's acks were released, and new transactions stopped waiting on
	// it entirely.
	for _, cl := range db.Clients() {
		if !cl.Idle() {
			t.Fatalf("client %d wedged after backup crash", cl.Index)
		}
	}
	led.verify(t, db, 2)
	// Partition 1's replication is untouched.
	if err := storage.DiffStores(db.PartitionStore(1), db.BackupStores(1)[0]); err != nil {
		t.Errorf("partition 1 backup diverged: %v", err)
	}
}

func TestFaultValidation(t *testing.T) {
	reg := NewRegistry()
	reg.Register(kvstore.Proc{})
	base := []Option{
		WithRegistry(reg),
		WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: 2}),
		WithReplicas(2),
	}
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"locking", append(base[:2:2], WithReplicas(2), WithScheme(Locking), WithFaults(CrashPrimary(0, Millisecond))), ErrFaultsLocking},
		{"advisor", append(base[:2:2], WithReplicas(2), WithAdvisor(AdvisorConfig{}), WithFaults(CrashPrimary(0, Millisecond))), ErrFaultsAdvisor},
		{"no-replica", append(base[:2:2], WithReplicas(1), WithFaults(CrashPrimary(0, Millisecond))), ErrBadFaults},
		{"bad-partition", append(base[:3:3], WithFaults(CrashPrimary(7, Millisecond))), ErrBadFaults},
		{"bad-backup-index", append(base[:3:3], WithFaults(CrashBackup(0, 2, Millisecond))), ErrBadFaults},
		{"double-fault", append(base[:3:3], WithFaults(CrashPrimary(0, Millisecond), CrashBackup(0, 1, 2*Millisecond))), ErrBadFaults},
		{"bad-detector", append(base[:3:3], WithFailureDetection(Millisecond, Millisecond), WithFaults(CrashPrimary(0, Millisecond))), ErrBadFaults},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.opts...); !errors.Is(err, tc.want) {
				t.Errorf("Open = %v, want %v", err, tc.want)
			}
		})
	}
	// SetScheme to locking is rejected on a faulted DB.
	db, err := Open(failoverOpts(t, Speculation, 1, WithFaults(CrashPrimary(0, Millisecond)))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetScheme(Locking); !errors.Is(err, ErrFaultsLocking) {
		t.Errorf("SetScheme(Locking) = %v, want %v", err, ErrFaultsLocking)
	}
}

// TestReplicaConvergenceUnderCascades is the no-fault replication oracle:
// after a run full of user aborts and speculative cascades, every backup
// store must match its primary key for key, and no prepared transaction may
// remain buffered.
func TestReplicaConvergenceUnderCascades(t *testing.T) {
	for _, scheme := range []Scheme{Speculation, Blocking} {
		t.Run(scheme.String(), func(t *testing.T) {
			const (
				parts      = 2
				clients    = 12
				keysPerTxn = 6
			)
			reg := NewRegistry()
			reg.Register(kvstore.Proc{})
			db, err := Open(
				WithPartitions(parts),
				WithClients(clients),
				WithReplicas(3),
				WithScheme(scheme),
				WithRegistry(reg),
				WithSeed(11),
				WithSetup(func(p PartitionID, s *Store) {
					kvstore.AddSchema(s)
					kvstore.Load(s, p, clients, keysPerTxn)
				}),
				WithWorkloadFactory(func() Generator {
					return &workload.Limit{
						Gen: &workload.Micro{
							Partitions: parts,
							KeysPerTxn: keysPerTxn,
							MPFraction: 0.5,
							AbortProb:  0.1,
							TwoRound:   true,
						},
						N: clients * 30,
					}
				}),
			)
			if err != nil {
				t.Fatal(err)
			}
			db.Run()
			if !db.Quiescent() {
				t.Fatal("run did not quiesce")
			}
			for p := 0; p < parts; p++ {
				for r, bs := range db.BackupStores(PartitionID(p)) {
					if err := storage.DiffStores(db.PartitionStore(PartitionID(p)), bs); err != nil {
						t.Errorf("partition %d backup %d: %v", p, r+1, err)
					}
				}
				for r, b := range db.backups[p] {
					if n := b.BufferedLen(); n != 0 {
						t.Errorf("partition %d backup %d leaked %d buffered transactions", p, r+1, n)
					}
				}
			}
		})
	}
}

// TestStopResume covers the facade wiring of the scheduler's sticky Stop:
// a completion callback stops the run mid-flight, and Resume continues it
// from exactly where it stopped.
func TestStopResume(t *testing.T) {
	const stopAfter = 50
	var completions int
	var db *DB
	reg := NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := Open(
		WithPartitions(2),
		WithClients(8),
		WithRegistry(reg),
		WithSetup(func(p PartitionID, s *Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, 8, 4)
		}),
		WithWorkloadFactory(func() Generator {
			return &workload.Limit{Gen: &workload.Micro{Partitions: 2, KeysPerTxn: 4}, N: 8 * 40}
		}),
		WithOnComplete(func(ci int, inv *Invocation, reply *Reply) {
			completions++
			if completions == stopAfter {
				db.Stop()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	db.Run()
	if !db.Stopped() {
		t.Fatal("run finished without stopping")
	}
	if completions != stopAfter {
		t.Fatalf("stopped after %d completions, want %d", completions, stopAfter)
	}
	stoppedAt := db.Now()
	if db.RunFor(Millisecond) != 0 {
		t.Error("stopped DB processed events")
	}
	db.Resume()
	db.Run()
	if db.Now() <= stoppedAt {
		t.Error("resumed run did not advance")
	}
	if got, want := completions, 8*40; got != want {
		t.Errorf("completions = %d, want %d", got, want)
	}
	if !db.Quiescent() {
		t.Error("resumed run did not finish the workload")
	}
}
