package specdb

import (
	"testing"

	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

// microWorkload returns the §5.1 generator at the given multi-partition
// fraction.
func microWorkload(mpFrac float64) Generator {
	return &workload.Micro{Partitions: 2, KeysPerTxn: testKeys, MPFraction: mpFrac}
}

// microWorkloadOpt installs a fresh Micro per Open: Micro keeps per-client
// issue buffers, so sweeps — whose cells may run in parallel — must not
// share one instance (the WithWorkloadFactory contract).
func microWorkloadOpt(mpFrac float64) Option {
	return WithWorkloadFactory(func() Generator { return microWorkload(mpFrac) })
}

// liveOpts is an open-ended (Measure zero) cluster for interactive driving.
func liveOpts(scheme Scheme, mpFrac float64) []Option {
	return []Option{
		WithPartitions(2),
		WithClients(40),
		WithScheme(scheme),
		WithSeed(7),
		WithRegistry(kvRegistry()),
		WithSetup(kvSetup(40)),
		WithWorkload(microWorkload(mpFrac)),
	}
}

// TestSnapshotMonotoneCommitted drives a live cluster in slices and checks
// that cumulative committed counts are monotone non-decreasing, strictly
// increasing while the workload is active, and that the snapshot clock and
// interval bounds track the drive cursor.
func TestSnapshotMonotoneCommitted(t *testing.T) {
	db := mustOpen(t, liveOpts(Speculation, 0.1)...)
	var prev Metrics
	for i := 1; i <= 5; i++ {
		db.RunFor(10 * Millisecond)
		m := db.Snapshot()
		if m.Now != Time(i)*10*Millisecond {
			t.Fatalf("slice %d: Now = %v, want %v", i, m.Now, Time(i)*10*Millisecond)
		}
		if m.Committed < prev.Committed {
			t.Fatalf("slice %d: committed went backwards: %d < %d", i, m.Committed, prev.Committed)
		}
		if m.Committed == prev.Committed {
			t.Fatalf("slice %d: no progress in 10ms of virtual time", i)
		}
		if m.Interval.Start != prev.Now || m.Interval.End != m.Now {
			t.Fatalf("slice %d: interval [%v,%v), want [%v,%v)",
				i, m.Interval.Start, m.Interval.End, prev.Now, m.Now)
		}
		if got := m.Committed - prev.Committed; got != m.Interval.Committed {
			t.Fatalf("slice %d: interval committed %d, delta %d", i, m.Interval.Committed, got)
		}
		if m.Events <= prev.Events {
			t.Fatalf("slice %d: events did not advance", i)
		}
		prev = m
	}
}

// TestTwoPhaseWorkloadSwap is the acceptance scenario: drive a cluster with
// RunFor/Snapshot across two phases and observe the interval throughput
// collapse when the workload's multi-partition fraction jumps mid-run.
func TestTwoPhaseWorkloadSwap(t *testing.T) {
	db := mustOpen(t, liveOpts(Blocking, 0)...)

	// Phase 1: single-partition only.
	db.RunFor(100 * Millisecond)
	phase1 := db.Snapshot()
	if phase1.Interval.Throughput == 0 {
		t.Fatal("phase 1 produced no throughput")
	}

	// Phase 2: 75% multi-partition — blocking stalls through every 2PC.
	if err := db.SetWorkload(microWorkload(0.75)); err != nil {
		t.Fatal(err)
	}
	db.RunFor(100 * Millisecond)
	phase2 := db.Snapshot()

	if phase2.Committed < phase1.Committed {
		t.Fatalf("cumulative committed decreased: %d < %d", phase2.Committed, phase1.Committed)
	}
	if phase2.Interval.Start != 100*Millisecond || phase2.Interval.End != 200*Millisecond {
		t.Fatalf("phase 2 interval [%v,%v), want [100ms,200ms)",
			phase2.Interval.Start, phase2.Interval.End)
	}
	if !(phase2.Interval.Throughput < 0.7*phase1.Interval.Throughput) {
		t.Fatalf("interval throughput should collapse under blocking at 75%% MP: %.0f → %.0f",
			phase1.Interval.Throughput, phase2.Interval.Throughput)
	}

	// Phase 3: back to single-partition; interval throughput recovers.
	if err := db.SetWorkload(microWorkload(0)); err != nil {
		t.Fatal(err)
	}
	db.RunFor(100 * Millisecond)
	phase3 := db.Snapshot()
	if !(phase3.Interval.Throughput > 2*phase2.Interval.Throughput) {
		t.Fatalf("throughput should recover after swap back: %.0f vs %.0f",
			phase3.Interval.Throughput, phase2.Interval.Throughput)
	}
}

func TestSetWorkloadNilRejected(t *testing.T) {
	db := mustOpen(t, liveOpts(Speculation, 0)...)
	if err := db.SetWorkload(nil); err == nil {
		t.Fatal("SetWorkload(nil) should error")
	}
}

// TestPeekDoesNotConsumeInterval: Peek leaves the Snapshot interval baseline
// untouched.
func TestPeekDoesNotConsumeInterval(t *testing.T) {
	db := mustOpen(t, liveOpts(Speculation, 0)...)
	db.RunFor(20 * Millisecond)
	peek := db.Peek()
	snap := db.Snapshot()
	if peek.Interval.Start != 0 || snap.Interval.Start != 0 {
		t.Fatalf("peek/snapshot interval starts = %v/%v, want 0/0",
			peek.Interval.Start, snap.Interval.Start)
	}
	if snap.Interval.Committed != peek.Interval.Committed {
		t.Fatalf("peek consumed the interval: %d vs %d",
			peek.Interval.Committed, snap.Interval.Committed)
	}
	// After the consuming Snapshot, the next interval starts fresh.
	db.RunFor(10 * Millisecond)
	next := db.Snapshot()
	if next.Interval.Start != 20*Millisecond {
		t.Fatalf("next interval start = %v, want 20ms", next.Interval.Start)
	}
}

// TestRunUntilPredicate: RunUntil stops as soon as the predicate holds, and
// reports quiescence when it never does.
func TestRunUntilPredicate(t *testing.T) {
	db := mustOpen(t, liveOpts(Speculation, 0.1)...)
	ok := db.RunUntil(func(m Metrics) bool { return m.Committed >= 100 })
	if !ok {
		t.Fatal("RunUntil quiesced before 100 commits of an infinite workload")
	}
	if got := db.Peek().Committed; got < 100 {
		t.Fatalf("committed = %d, want >= 100", got)
	}

	// A finite script drains to quiescence when the predicate never holds.
	fin := mustOpen(t, drainOpts(Speculation, scriptOf(40, 4))...)
	if fin.RunUntil(func(Metrics) bool { return false }) {
		t.Fatal("predicate never holds: RunUntil must report quiescence")
	}
	if got := fin.Peek().Completed; got != 40 {
		t.Fatalf("drained %d completions, want 40", got)
	}
}

// TestStepToQuiescence: Step delivers one event at a time and eventually
// reports quiescence on a finite workload; Run afterwards is a no-op.
func TestStepToQuiescence(t *testing.T) {
	db := mustOpen(t, drainOpts(Speculation, scriptOf(20, 4))...)
	steps := 0
	for db.Step() {
		steps++
		if steps > 1_000_000 {
			t.Fatal("no quiescence after 1e6 events")
		}
	}
	if steps == 0 {
		t.Fatal("no events delivered")
	}
	m := db.Snapshot()
	if m.Completed != 20 {
		t.Fatalf("completed = %d, want 20", m.Completed)
	}
	if m.Events != uint64(steps) {
		t.Fatalf("events = %d, steps = %d", m.Events, steps)
	}
	if db.Step() {
		t.Fatal("Step after quiescence should stay false")
	}
}

// TestDuplicateStartDoesNotAbandonInflight: SetWorkload re-kicks clients
// whose original t=0 Start is still queued; the duplicate Start must be
// ignored, not overwrite the in-flight transaction (which would lose its
// completion while its effects still commit at the partition).
func TestDuplicateStartDoesNotAbandonInflight(t *testing.T) {
	completions := 0
	opts := append(drainOpts(Speculation, scriptOf(12, 0)),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) { completions++ }))
	db := mustOpen(t, opts...)
	// Deliver exactly one event: client 0's Start, which issues the first
	// script transaction. Clients 1..7 are idle with Starts still queued.
	if !db.Step() {
		t.Fatal("no first event")
	}
	// Swap workloads: every idle client gets a second Start enqueued.
	if err := db.SetWorkload(scriptOf(12, 0)); err != nil {
		t.Fatal(err)
	}
	db.Run()
	// Client 0's in-flight transaction (1 from script 1) plus the whole
	// second script: every issued transaction must be accounted for.
	if completions != 13 {
		t.Fatalf("completions = %d, want 13 (in-flight txn lost?)", completions)
	}
	total := kvstore.Sum(db.PartitionStore(0)) + kvstore.Sum(db.PartitionStore(1))
	if total != int64(13*testKeys) {
		t.Fatalf("counter sum = %d, want %d: store state diverged from completions", total, 13*testKeys)
	}
}

// TestSetWorkloadRestartAnchorsAtCursor: a generator that drains mid-slice
// must restart at the phase boundary (the driven-to cursor), not at the last
// event time, or the next Snapshot interval counts completions from the past
// and inflates its throughput.
func TestSetWorkloadRestartAnchorsAtCursor(t *testing.T) {
	// A tiny finite script drains almost immediately inside the first
	// 100 ms slice.
	db := mustOpen(t, drainOpts(Speculation, scriptOf(8, 0))...)
	db.RunFor(100 * Millisecond)
	db.Snapshot()
	// Swap in an infinite workload; it must begin at t=100ms.
	if err := db.SetWorkload(microWorkload(0)); err != nil {
		t.Fatal(err)
	}
	db.RunFor(100 * Millisecond)
	m := db.Snapshot()
	if m.Interval.Start != 100*Millisecond || m.Interval.End != 200*Millisecond {
		t.Fatalf("interval [%v,%v), want [100ms,200ms)", m.Interval.Start, m.Interval.End)
	}
	// All phase-2 completions happened inside the interval; with the
	// restart anchored in the past the rate would roughly double what one
	// partition-pair can sustain (~31k tps).
	if m.Interval.Throughput > 35000 {
		t.Fatalf("interval throughput %.0f tps exceeds hardware bound: phase started in the past", m.Interval.Throughput)
	}
	if m.Interval.Completed == 0 {
		t.Fatal("phase 2 never started")
	}
}

// TestSetWorkloadRestartsIdleClients: after a finite script drains and every
// client goes idle, installing a new workload revives the cluster.
func TestSetWorkloadRestartsIdleClients(t *testing.T) {
	completions := 0
	opts := append(drainOpts(Speculation, scriptOf(24, 3)),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) { completions++ }))
	db := mustOpen(t, opts...)
	db.Run()
	if completions != 24 {
		t.Fatalf("first script: %d completions, want 24", completions)
	}
	if err := db.SetWorkload(scriptOf(12, 0)); err != nil {
		t.Fatal(err)
	}
	db.Run()
	if completions != 36 {
		t.Fatalf("after workload swap: %d completions, want 36", completions)
	}
	// Each committed transaction incremented exactly testKeys counters.
	total := kvstore.Sum(db.PartitionStore(0)) + kvstore.Sum(db.PartitionStore(1))
	if total != int64(36*testKeys) {
		t.Fatalf("counter sum = %d, want %d", total, 36*testKeys)
	}
}
