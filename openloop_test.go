package specdb_test

import (
	"errors"
	"reflect"
	"testing"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

const olClients = 20

// openLoopOpts builds a 2-partition micro cluster with the given open-loop
// config and workload knobs.
func openLoopOpts(ol specdb.OpenLoopConfig, keySkew, partSkew, mpFrac float64, extra ...specdb.Option) []specdb.Option {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	opts := []specdb.Option{
		specdb.WithPartitions(2),
		specdb.WithClients(olClients),
		specdb.WithRegistry(reg),
		specdb.WithSeed(11),
		specdb.WithWarmup(10 * specdb.Millisecond),
		specdb.WithMeasure(80 * specdb.Millisecond),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, olClients, 12)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{
				Partitions:    2,
				KeysPerTxn:    12,
				MPFraction:    mpFrac,
				KeySkew:       keySkew,
				PartitionSkew: partSkew,
			}
		}),
		specdb.WithOpenLoop(ol),
	}
	return append(opts, extra...)
}

// TestOpenLoopUnderload: offered load well below capacity must be served in
// full — completions track arrivals, nothing is shed, and the latency split
// summaries are consistent with the window counters.
func TestOpenLoopUnderload(t *testing.T) {
	db, err := specdb.Open(openLoopOpts(specdb.OpenLoopConfig{Rate: 5000}, 0, 0, 0.1)...)
	if err != nil {
		t.Fatal(err)
	}
	res := db.Run()
	if res.Shed != 0 {
		t.Fatalf("underloaded run shed %d arrivals", res.Shed)
	}
	// 5000/s over an 80 ms window ≈ 400 completions; Poisson noise stays
	// well inside ±40%.
	if res.Throughput < 3000 || res.Throughput > 7000 {
		t.Fatalf("throughput = %.0f, want ≈5000 (offered load)", res.Throughput)
	}
	if res.Latency.N != res.Committed+res.UserAborted {
		t.Fatalf("latency N = %d, completions = %d", res.Latency.N, res.Committed+res.UserAborted)
	}
	if res.LatencySP.N+res.LatencyMP.N != res.Committed {
		t.Fatalf("SP+MP latency N = %d, committed = %d", res.LatencySP.N+res.LatencyMP.N, res.Committed)
	}
	if res.LatencyAborted.N != res.UserAborted {
		t.Fatalf("aborted latency N = %d, user aborts = %d", res.LatencyAborted.N, res.UserAborted)
	}
	if res.P50 == 0 || res.P99 < res.P50 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", res.P50, res.P99)
	}
	if res.Latency.P50 != res.P50 || res.Latency.P99 != res.P99 {
		t.Fatal("Latency summary disagrees with the flat P50/P99 fields")
	}
}

// TestOpenLoopOverloadBounded is the overload regression gate: an arrival
// rate far above the service rate must keep every client's in-flight count
// inside its window and its backlog inside the queue bound (shedding the
// rest), RunFor must terminate, and the latency/abort counters must stay
// consistent with the completions.
func TestOpenLoopOverloadBounded(t *testing.T) {
	const window, queue = 4, 8
	db, err := specdb.Open(openLoopOpts(
		specdb.OpenLoopConfig{Rate: 2_000_000, Window: window, Queue: queue}, 0, 0, 0.1)...)
	if err != nil {
		t.Fatal(err)
	}
	// Drive in slices, checking the bound mid-run, not just at the end.
	for i := 0; i < 9; i++ {
		db.RunFor(10 * specdb.Millisecond)
		for ci, cl := range db.Clients() {
			if got := cl.InFlight(); got > window {
				t.Fatalf("client %d in-flight = %d > window %d", ci, got, window)
			}
			if got := cl.Pending(); got > queue {
				t.Fatalf("client %d pending = %d > queue %d", ci, got, queue)
			}
		}
	}
	res := db.Result()
	if res.Shed == 0 {
		t.Fatal("overloaded run shed nothing")
	}
	if res.Latency.N != res.Committed+res.UserAborted {
		t.Fatalf("latency N = %d, completions = %d", res.Latency.N, res.Committed+res.UserAborted)
	}
	// Per-client accounting: issues either completed or are still in
	// flight; arrivals either issued, wait in the queue, or were shed.
	var issued, completed, inflight uint64
	for _, cl := range db.Clients() {
		issued += cl.Issued
		completed += cl.Completed
		inflight += uint64(cl.InFlight())
	}
	if issued != completed+inflight {
		t.Fatalf("issued=%d != completed=%d + inflight=%d", issued, completed, inflight)
	}
	// Under overload the queue is persistently full, so p99 must include
	// queueing delay: at least the service time of a full window ahead.
	if res.P99 <= res.P50 || res.P50 == 0 {
		t.Fatalf("overload percentiles p50=%v p99=%v", res.P50, res.P99)
	}
	// The whole-run shed total must equal the sum of per-client shed
	// counters, and the window count can only be a part of it.
	var clientShed uint64
	for _, cl := range db.Clients() {
		clientShed += cl.Shed
	}
	m := db.Peek()
	if m.Shed != clientShed {
		t.Fatalf("metrics total shed=%d, clients shed %d", m.Shed, clientShed)
	}
	if res.Shed > m.Shed {
		t.Fatalf("window shed %d exceeds whole-run shed %d", res.Shed, m.Shed)
	}
}

// TestOpenLoopWindowConcurrency: a window above one must actually be used —
// some client holds more than one transaction in flight at some point.
func TestOpenLoopWindowConcurrency(t *testing.T) {
	db, err := specdb.Open(openLoopOpts(
		specdb.OpenLoopConfig{Rate: 400_000, Window: 4}, 0, 0, 0.3)...)
	if err != nil {
		t.Fatal(err)
	}
	sawConcurrent := false
	db.RunUntil(func(m specdb.Metrics) bool {
		for _, cl := range db.Clients() {
			if cl.InFlight() > 1 {
				sawConcurrent = true
				return true
			}
		}
		return m.Now > 90*specdb.Millisecond
	})
	if !sawConcurrent {
		t.Fatal("window=4 never produced concurrent in-flight transactions")
	}
}

// TestOpenLoopUniformDeterministicSpacing: uniform arrivals with one client
// are exactly Mean apart, so the completion count is the window length over
// the gap (no Poisson noise).
func TestOpenLoopUniformDeterministicSpacing(t *testing.T) {
	db, err := specdb.Open(openLoopOpts(
		specdb.OpenLoopConfig{Rate: 10000, Process: specdb.UniformArrivals}, 0, 0, 0)...)
	if err != nil {
		t.Fatal(err)
	}
	res := db.Run()
	// 10000/s over 80 ms = 800 arrivals in-window; allow edge slop for
	// phase offsets and the warmup boundary.
	if res.Committed < 790 || res.Committed > 810 {
		t.Fatalf("uniform arrivals committed = %d, want ≈800", res.Committed)
	}
}

// TestOpenLoopZipfDeterminism: open-loop + Zipfian skew + partition skew is
// the newest, most stateful path; two runs from the same options must agree
// bit for bit — including the latency summaries.
func TestOpenLoopZipfDeterminism(t *testing.T) {
	run := func() specdb.Result {
		db, err := specdb.Open(openLoopOpts(
			specdb.OpenLoopConfig{Rate: 100_000, Window: 3, Queue: 4}, 0.9, 0.7, 0.2)...)
		if err != nil {
			t.Fatal(err)
		}
		return db.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed open-loop zipf runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Committed == 0 {
		t.Fatal("skewed open-loop run committed nothing")
	}
}

// TestZipfSkewShiftsLoad: partition skew must actually concentrate
// single-partition work on partition 0.
func TestZipfSkewShiftsLoad(t *testing.T) {
	db, err := specdb.Open(openLoopOpts(
		specdb.OpenLoopConfig{Rate: 20000}, 0, 0.9, 0)...)
	if err != nil {
		t.Fatal(err)
	}
	res := db.Run()
	if len(res.EngineStats) != 2 {
		t.Fatalf("engine stats = %d", len(res.EngineStats))
	}
	p0 := res.EngineStats[0].Executed
	p1 := res.EngineStats[1].Executed
	// Zipf over two ranks with theta=0.9 predicts a 2^0.9 ≈ 1.87× tilt
	// toward partition 0; uniform selection would be ≈1×.
	if float64(p0) < 1.5*float64(p1) {
		t.Fatalf("partition skew 0.9: partition 0 executed %d fragments vs partition 1's %d, want ≈1.87×", p0, p1)
	}
}

// TestOpenLoopValidation covers the new Open-time error paths.
func TestOpenLoopValidation(t *testing.T) {
	base := func(ol specdb.OpenLoopConfig, extra ...specdb.Option) error {
		_, err := specdb.Open(openLoopOpts(ol, 0, 0, 0, extra...)...)
		return err
	}
	if err := base(specdb.OpenLoopConfig{}); !errors.Is(err, specdb.ErrBadOpenLoop) {
		t.Fatalf("zero rate: %v", err)
	}
	if err := base(specdb.OpenLoopConfig{Rate: 1000, Window: -1}); !errors.Is(err, specdb.ErrBadOpenLoop) {
		t.Fatalf("negative window: %v", err)
	}
	if err := base(specdb.OpenLoopConfig{Rate: 1000, Queue: -2}); !errors.Is(err, specdb.ErrBadOpenLoop) {
		t.Fatalf("bad queue: %v", err)
	}
	if err := base(specdb.OpenLoopConfig{Rate: 1000}, specdb.WithMeasure(0)); !errors.Is(err, specdb.ErrOpenLoopUnbounded) {
		t.Fatalf("open-ended open loop: %v", err)
	}
	err := base(specdb.OpenLoopConfig{Rate: 1000, Window: 2},
		specdb.WithReplicas(2),
		specdb.WithFaults(specdb.CrashPrimary(0, 20*specdb.Millisecond)))
	if !errors.Is(err, specdb.ErrFaultsOpenLoopWindow) {
		t.Fatalf("faults with window>1: %v", err)
	}
	// Window 1 with faults is allowed.
	_, err = specdb.Open(openLoopOpts(specdb.OpenLoopConfig{Rate: 1000}, 0, 0, 0,
		specdb.WithReplicas(2),
		specdb.WithFaults(specdb.CrashPrimary(0, 20*specdb.Millisecond)))...)
	if err != nil {
		t.Fatalf("faults with window=1 rejected: %v", err)
	}
}

// TestOpenLoopRestartAfterExhaustion: a finite generator ends the arrival
// process (stranded queued arrivals counted as shed, nothing silently
// dropped); SetWorkload must restart it — the documented phase-swap
// contract also holds open-loop.
func TestOpenLoopRestartAfterExhaustion(t *testing.T) {
	mk := func() specdb.Generator {
		return &workload.Limit{
			Gen: &workload.Micro{Partitions: 2, KeysPerTxn: 12},
			N:   50,
		}
	}
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(4),
		specdb.WithRegistry(reg),
		specdb.WithSeed(9),
		specdb.WithMeasure(200*specdb.Millisecond),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, 4, 12)
		}),
		specdb.WithWorkloadFactory(mk),
		specdb.WithOpenLoop(specdb.OpenLoopConfig{Rate: 50_000, Window: 1, Queue: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	db.RunFor(50 * specdb.Millisecond)
	first := db.Peek().Completed
	if first != 50 {
		t.Fatalf("finite generator completed %d, want 50", first)
	}
	var issued, completed, shed uint64
	for _, cl := range db.Clients() {
		issued += cl.Issued
		completed += cl.Completed
		shed += cl.Shed
		if cl.Pending() != 0 {
			t.Fatalf("exhausted client still holds %d pending arrivals", cl.Pending())
		}
	}
	if issued != completed {
		t.Fatalf("issued=%d completed=%d after exhaustion", issued, completed)
	}
	if shed == 0 {
		t.Fatal("overloaded finite run shed nothing (stranded arrivals uncounted?)")
	}
	// A fresh generator must restart the arrival process.
	if err := db.SetWorkload(mk()); err != nil {
		t.Fatal(err)
	}
	db.RunFor(50 * specdb.Millisecond)
	after := db.Peek().Completed
	if after != first+50 {
		t.Fatalf("restarted clients completed %d, want %d", after, first+50)
	}
	// SetWorkload must apply the shape contract to replacements too: a
	// skewed generator without Clients set gets it from the cluster shape
	// (it would panic at its first issue otherwise).
	if err := db.SetWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: 12, KeySkew: 0.9}); err != nil {
		t.Fatal(err)
	}
	db.RunFor(50 * specdb.Millisecond)
	if got := db.Peek().Completed; got <= after {
		t.Fatalf("skewed replacement generated nothing: %d", got)
	}
}

// TestOpenLoopRestartWithInFlight: a window>1 client can exhaust its
// generator while transactions are still in flight — it is not Idle, but
// its arrival timer is dead. SetWorkload must still restart every such
// client, or it silently generates zero load for the rest of the run.
func TestOpenLoopRestartWithInFlight(t *testing.T) {
	const clients = 4
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithRegistry(reg),
		specdb.WithSeed(17),
		specdb.WithMeasure(300*specdb.Millisecond),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, 12)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Limit{Gen: &workload.Micro{Partitions: 2, KeysPerTxn: 12}, N: 15}
		}),
		// High rate + window 3: clients refill their windows instantly, so
		// the shared 15-invocation budget runs out while txns are in flight.
		specdb.WithOpenLoop(specdb.OpenLoopConfig{Rate: 500_000, Window: 3, Queue: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	db.RunFor(50 * specdb.Millisecond)
	if got := db.Peek().Completed; got != 15 {
		t.Fatalf("finite phase completed %d, want 15", got)
	}
	if err := db.SetWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: 12}); err != nil {
		t.Fatal(err)
	}
	db.RunFor(100 * specdb.Millisecond)
	for ci, cl := range db.Clients() {
		if cl.Issued <= 15/clients {
			t.Fatalf("client %d frozen after SetWorkload: issued %d", ci, cl.Issued)
		}
	}
}

// TestRateAxisSweep: the offered-load axis produces one cell per rate, and
// served throughput tracks the offered rate while the cluster is
// underloaded.
func TestRateAxisSweep(t *testing.T) {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	cells, err := specdb.Sweep{
		Name: "rates",
		Base: []specdb.Option{
			specdb.WithPartitions(2),
			specdb.WithClients(olClients),
			specdb.WithRegistry(reg),
			specdb.WithSeed(5),
			specdb.WithWarmup(10 * specdb.Millisecond),
			specdb.WithMeasure(80 * specdb.Millisecond),
			specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, olClients, 12)
			}),
			specdb.WithWorkloadFactory(func() specdb.Generator {
				return &workload.Micro{Partitions: 2, KeysPerTxn: 12}
			}),
		},
		Axes: []specdb.Axis{specdb.RateAxis([]float64{4000, 12000}, specdb.OpenLoopConfig{Window: 2})},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	lo, hi := cells[0].Result.Throughput, cells[1].Result.Throughput
	if lo < 3000 || lo > 5000 || hi < 10000 || hi > 14000 {
		t.Fatalf("throughput did not track offered load: %.0f, %.0f", lo, hi)
	}
}

// TestOpenLoopSchemeSwitchDrains: SetScheme's drain must hold queued
// arrivals during the pause and flush them after the swap — the run keeps
// completing transactions under the new scheme.
func TestOpenLoopSchemeSwitchDrains(t *testing.T) {
	db, err := specdb.Open(openLoopOpts(
		specdb.OpenLoopConfig{Rate: 50_000, Window: 2}, 0, 0, 0.2)...)
	if err != nil {
		t.Fatal(err)
	}
	db.RunFor(30 * specdb.Millisecond)
	before := db.Peek().Completed
	if before == 0 {
		t.Fatal("nothing completed before the switch")
	}
	if err := db.SetScheme(specdb.Blocking); err != nil {
		t.Fatal(err)
	}
	db.RunFor(30 * specdb.Millisecond)
	after := db.Peek().Completed
	if after <= before {
		t.Fatalf("no completions after scheme switch: before=%d after=%d", before, after)
	}
	if got := db.Scheme(); got != specdb.Blocking {
		t.Fatalf("scheme = %v", got)
	}
}
