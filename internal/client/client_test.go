package client

import (
	"math/rand"
	"runtime"
	"testing"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// stubProc plans onto two partitions with the given rounds.
type stubProc struct{ rounds int }

func (p stubProc) Name() string { return "stub" }
func (p stubProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	parts := args.([]msg.PartitionID)
	work := map[msg.PartitionID]any{}
	for _, pt := range parts {
		work[pt] = int(pt)
	}
	return txn.Plan{Parts: parts, Work: work, Rounds: p.rounds}
}
func (p stubProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	work := map[msg.PartitionID]any{}
	for _, pt := range args.([]msg.PartitionID) {
		work[pt] = 100 + int(pt)
	}
	return work
}
func (p stubProc) Run(view *storage.TxnView, w any) (any, error) { return w, nil }
func (p stubProc) Output(args any, final []msg.FragmentResult) any {
	return "out"
}

type sink struct{ msgs []sim.Message }

func (s *sink) Receive(ctx *sim.Context, m sim.Message) { s.msgs = append(s.msgs, m) }

func (s *sink) fragments() []*msg.Fragment {
	var out []*msg.Fragment
	for _, m := range s.msgs {
		if f, ok := m.(*msg.Fragment); ok {
			out = append(out, f)
		}
	}
	return out
}

func (s *sink) decisions() []*msg.Decision {
	var out []*msg.Decision
	for _, m := range s.msgs {
		if d, ok := m.(*msg.Decision); ok {
			out = append(out, d)
		}
	}
	return out
}

type fixture struct {
	s      *sim.Scheduler
	cl     *Client
	clID   sim.ActorID
	parts  []*sink
	coord  *sink
	col    *metrics.Collector
	script *workload.Script
}

func newFixture(t *testing.T, scheme core.Scheme, rounds int, invs []*txn.Invocation) *fixture {
	t.Helper()
	f := &fixture{s: sim.New()}
	reg := txn.NewRegistry()
	reg.Register(stubProc{rounds: rounds})
	cm := costs.Default()
	f.col = metrics.NewCollector(0, sim.Time(1<<60))
	f.script = &workload.Script{Invs: invs}
	var partIDs []sim.ActorID
	for i := 0; i < 2; i++ {
		p := &sink{}
		f.parts = append(f.parts, p)
		partIDs = append(partIDs, f.s.Register("p", p))
	}
	f.coord = &sink{}
	coID := f.s.Register("coord", f.coord)
	f.cl = &Client{
		Registry:    reg,
		Catalog:     &txn.Catalog{NumPartitions: 2},
		Costs:       &cm,
		Net:         simnet.New(cm.OneWayLatency),
		Metrics:     f.col,
		Scheme:      scheme,
		Coordinator: coID,
		Parts:       partIDs,
		Gen:         f.script,
	}
	f.clID = f.s.Register("client", f.cl)
	f.cl.Bind(f.clID, 1)
	f.s.SendAt(0, f.clID, Start{})
	f.s.Drain()
	return f
}

func inv(parts ...msg.PartitionID) *txn.Invocation {
	return &txn.Invocation{Proc: "stub", Args: parts, AbortAt: txn.NoAbort}
}

func TestSPRoutedDirectly(t *testing.T) {
	f := newFixture(t, core.SchemeSpeculative, 1, []*txn.Invocation{inv(1)})
	if len(f.parts[1].fragments()) != 1 {
		t.Fatal("SP fragment not sent to its partition")
	}
	fr := f.parts[1].fragments()[0]
	if fr.MultiPartition || !fr.Last || fr.Client != f.clID {
		t.Fatalf("fragment = %+v", fr)
	}
	if len(f.coord.msgs) != 0 {
		t.Fatal("SP request went through coordinator")
	}
}

func TestMPViaCoordinatorUnderSpeculation(t *testing.T) {
	f := newFixture(t, core.SchemeSpeculative, 1, []*txn.Invocation{inv(0, 1)})
	if len(f.coord.msgs) != 1 {
		t.Fatalf("coordinator msgs = %d", len(f.coord.msgs))
	}
	if _, ok := f.coord.msgs[0].(*msg.Request); !ok {
		t.Fatalf("expected Request, got %T", f.coord.msgs[0])
	}
	if len(f.parts[0].fragments()) != 0 {
		t.Fatal("client sent fragments directly despite central coordination")
	}
}

func TestMPClientCoordinatedUnderLocking(t *testing.T) {
	f := newFixture(t, core.SchemeLocking, 1, []*txn.Invocation{inv(0, 1)})
	// Fragments go straight to both partitions (§4.3).
	for i, p := range f.parts {
		fs := p.fragments()
		if len(fs) != 1 || !fs[0].MultiPartition || !fs[0].Last {
			t.Fatalf("partition %d fragments = %+v", i, fs)
		}
	}
	if len(f.coord.msgs) != 0 {
		t.Fatal("locking MP went through central coordinator")
	}
	id := f.parts[0].fragments()[0].Txn
	// Both vote yes: client sends commits and completes.
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 0})
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 1})
	f.s.Drain()
	for i, p := range f.parts {
		ds := p.decisions()
		if len(ds) != 1 || !ds[0].Commit {
			t.Fatalf("partition %d decisions = %+v", i, ds)
		}
	}
	if f.col.Window.Committed != 1 {
		t.Fatalf("committed = %d", f.col.Window.Committed)
	}
}

func TestMPNoVoteAbortsAll(t *testing.T) {
	f := newFixture(t, core.SchemeLocking, 1, []*txn.Invocation{inv(0, 1)})
	id := f.parts[0].fragments()[0].Txn
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 0, Aborted: true})
	f.s.Drain()
	// Abort decision to every participant without waiting for the other
	// vote; transaction completes as user-aborted.
	for i, p := range f.parts {
		ds := p.decisions()
		if len(ds) != 1 || ds[0].Commit {
			t.Fatalf("partition %d decisions = %+v", i, ds)
		}
	}
	if f.col.Window.UserAborted != 1 {
		t.Fatalf("user aborted = %d", f.col.Window.UserAborted)
	}
	// A late vote from the other participant is stale and ignored.
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 1})
	f.s.Drain()
	if f.col.Completed() != 1 {
		t.Fatal("stale vote double-completed")
	}
}

func TestKilledVoteRetriesWithFreshID(t *testing.T) {
	f := newFixture(t, core.SchemeLocking, 1, []*txn.Invocation{inv(0, 1)})
	id := f.parts[0].fragments()[0].Txn
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 0, Aborted: true, Killed: true})
	f.s.Drain()
	// Aborted everywhere, then retried with a new transaction ID.
	fs := f.parts[0].fragments()
	if len(fs) != 2 {
		t.Fatalf("fragments after retry = %d", len(fs))
	}
	if fs[1].Txn == id {
		t.Fatal("retry reused the transaction ID")
	}
	if f.col.Window.Retries != 1 {
		t.Fatalf("retries = %d", f.col.Window.Retries)
	}
	// The retry commits.
	id2 := fs[1].Txn
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id2, Partition: 0})
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id2, Partition: 1})
	f.s.Drain()
	if f.col.Window.Committed != 1 {
		t.Fatalf("committed = %d", f.col.Window.Committed)
	}
}

func TestMultiRoundClientDriver(t *testing.T) {
	f := newFixture(t, core.SchemeLocking, 2, []*txn.Invocation{inv(0, 1)})
	id := f.parts[0].fragments()[0].Txn
	if f.parts[0].fragments()[0].Last {
		t.Fatal("round 0 marked Last in a 2-round plan")
	}
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 0, Round: 0})
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 1, Round: 0})
	f.s.Drain()
	fs := f.parts[0].fragments()
	if len(fs) != 2 || !fs[1].Last || fs[1].Round != 1 || fs[1].Work != 100 {
		t.Fatalf("round 1 fragment = %+v", fs)
	}
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 0, Round: 1})
	f.s.SendAt(f.s.Now(), f.clID, &msg.FragmentResult{Txn: id, Partition: 1, Round: 1})
	f.s.Drain()
	if f.col.Window.Committed != 1 {
		t.Fatalf("committed = %d", f.col.Window.Committed)
	}
}

func TestClosedLoopIssuesNextAfterReply(t *testing.T) {
	f := newFixture(t, core.SchemeSpeculative, 1, []*txn.Invocation{inv(0), inv(1)})
	// First SP fragment out; reply completes it and triggers the next.
	id := f.parts[0].fragments()[0].Txn
	f.s.SendAt(f.s.Now(), f.clID, &msg.ClientReply{Txn: id, Committed: true})
	f.s.Drain()
	if len(f.parts[1].fragments()) != 1 {
		t.Fatal("second invocation not issued")
	}
	if f.cl.Issued != 2 {
		t.Fatalf("issued = %d", f.cl.Issued)
	}
}

// echoPart commits every fragment immediately, recycling reply objects so
// the allocation pin below measures only the client's own path.
type echoPart struct {
	ring [32]msg.ClientReply
	i    int
}

func (e *echoPart) Receive(ctx *sim.Context, m sim.Message) {
	f, ok := m.(*msg.Fragment)
	if !ok {
		return
	}
	r := &e.ring[e.i%len(e.ring)]
	e.i++
	*r = msg.ClientReply{Txn: f.Txn, Committed: true}
	ctx.Send(f.Client, r, 10*sim.Microsecond)
}

// fixedGen returns the same prebuilt invocation forever (zero allocations).
type fixedGen struct{ inv *txn.Invocation }

func (g *fixedGen) Next(ci int, rng *rand.Rand) *txn.Invocation { return g.inv }

// fixedProc hands out a prebuilt plan (zero allocations).
type fixedProc struct{ plan txn.Plan }

func (p fixedProc) Name() string                                  { return "fixed" }
func (p fixedProc) Plan(args any, cat *txn.Catalog) txn.Plan      { return p.plan }
func (p fixedProc) Run(view *storage.TxnView, w any) (any, error) { return nil, nil }
func (p fixedProc) Output(args any, final []msg.FragmentResult) any {
	return nil
}
func (p fixedProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	return nil
}

// TestOpenLoopIssuePathAllocations extends the ISSUE 4 zero-garbage gates to
// the open-loop machinery: with a zero-alloc generator and plan, a steady
// arrival→issue→reply cycle allocates exactly one object per transaction —
// the Fragment message the closed loop also pays for. Arrival ticks, the
// pending queue, the attempt freelist and reply handling add nothing.
func TestOpenLoopIssuePathAllocations(t *testing.T) {
	s := sim.New()
	reg := txn.NewRegistry()
	part := &echoPart{}
	partID := s.Register("p", part)
	cm := costs.Default()
	reg.Register(fixedProc{plan: txn.Plan{
		Parts:  []msg.PartitionID{0},
		Work:   map[msg.PartitionID]any{0: nil},
		Rounds: 1,
	}})
	cl := &Client{
		Registry: reg,
		Catalog:  &txn.Catalog{NumPartitions: 1},
		Costs:    &cm,
		Net:      simnet.New(cm.OneWayLatency),
		Metrics:  metrics.NewCollector(0, sim.Time(1<<60)),
		Scheme:   core.SchemeSpeculative,
		Parts:    []sim.ActorID{partID},
		Gen:      &fixedGen{inv: &txn.Invocation{Proc: "fixed", AbortAt: txn.NoAbort}},
		Arrival: &Arrival{
			Mean:   50 * sim.Microsecond,
			Window: 2,
			Queue:  4,
		},
	}
	clID := s.Register("client", cl)
	cl.Bind(clID, 1)
	s.SendAt(0, clID, Start{})
	for i := 0; i < 2000; i++ {
		if !s.Step() {
			t.Fatal("open loop went quiescent")
		}
	}
	var before, after runtime.MemStats
	completedBefore := cl.Completed
	runtime.ReadMemStats(&before)
	for i := 0; i < 4000; i++ {
		s.Step()
	}
	runtime.ReadMemStats(&after)
	txns := cl.Completed - completedBefore
	allocs := after.Mallocs - before.Mallocs
	if txns == 0 {
		t.Fatal("no transactions completed in measurement span")
	}
	// One Fragment per transaction, plus a little slack for runtime noise
	// (ReadMemStats itself and incidental background allocation).
	if limit := txns + txns/10 + 8; allocs > limit {
		t.Fatalf("open-loop path: %d allocs for %d txns (limit %d) — ≈%.2f/txn, want ≈1",
			allocs, txns, limit, float64(allocs)/float64(txns))
	}
}

func TestRetryableReplyReissuesSP(t *testing.T) {
	f := newFixture(t, core.SchemeLocking, 1, []*txn.Invocation{inv(0)})
	id := f.parts[0].fragments()[0].Txn
	f.s.SendAt(f.s.Now(), f.clID, &msg.ClientReply{Txn: id, Committed: false, Retryable: true})
	f.s.Drain()
	fs := f.parts[0].fragments()
	if len(fs) != 2 || fs[1].Txn == id {
		t.Fatalf("retry fragments = %+v", fs)
	}
	if f.col.Completed() != 0 {
		t.Fatal("killed attempt counted as completed")
	}
}
