// Package client implements the client library of §3.1: it routes
// single-partition transactions directly to the owning partition, sends
// multi-partition transactions through the central coordinator (blocking and
// speculative schemes), or coordinates them itself with 2PC (locking scheme,
// §4.3: "clients send multi-partition transactions directly to the
// partitions, without going through the central coordinator").
//
// Clients are closed-loop, as in the paper: each issues one request, waits
// for the response, then issues another. Transactions killed as deadlock or
// timeout victims are retried transparently with a fresh transaction ID.
package client

import (
	"fmt"
	"math/rand"
	"slices"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// Start kicks a client into its issue loop.
type Start struct{}

// Client is one closed-loop client actor.
type Client struct {
	Registry    *txn.Registry
	Catalog     *txn.Catalog
	Costs       *costs.Model
	Net         *simnet.Net
	Metrics     *metrics.Collector
	Scheme      core.Scheme
	Coordinator sim.ActorID
	// Parts maps PartitionID to the primary's actor ID. Each client owns
	// its copy: re-targeting after a failover is a per-client event,
	// delivered by the coordinator's NewPrimary broadcast.
	Parts []sim.ActorID
	Gen   workload.Generator
	Index int
	// OnComplete, when set, observes every completed transaction
	// (scripted/example use).
	OnComplete func(inv *txn.Invocation, reply *msg.ClientReply)

	self   sim.ActorID
	rng    *rand.Rand
	seq    uint32
	cur    *attempt
	paused bool
	// Issued counts attempts; Completed counts finished transactions.
	Issued    uint64
	Completed uint64
}

type attempt struct {
	inv   *txn.Invocation
	plan  txn.Plan
	id    msg.TxnID
	start sim.Time // first attempt's issue time (latency includes retries)
	mp    *mpDrive
}

// mpDrive is the client-side 2PC driver state (locking scheme).
type mpDrive struct {
	round   int
	results map[msg.PartitionID]*msg.FragmentResult
	prior   []msg.FragmentResult
	decided bool
}

// Bind sets identity and seeds the client's RNG.
func (c *Client) Bind(self sim.ActorID, seed int64) {
	c.self = self
	c.rng = rand.New(rand.NewSource(seed))
}

// Idle reports whether the client has no transaction in flight: it either
// has not started or its generator returned nil. An idle client resumes only
// when sent a fresh Start message.
func (c *Client) Idle() bool { return c.cur == nil }

// SetGenerator swaps the workload generator. The swap takes effect at the
// client's next issue; the in-flight transaction (if any) is unaffected.
// Callers changing workload phases mid-run use this together with Start for
// clients that had already gone idle.
func (c *Client) SetGenerator(g workload.Generator) { c.Gen = g }

// Pause makes the client go idle at its next issue point instead of pulling
// from the generator; the in-flight transaction (if any) runs to completion.
// Draining every client this way brings the whole cluster to a quiescent
// point — the engine-swap precondition of adaptive scheme switching.
func (c *Client) Pause() { c.paused = true }

// Resume clears a Pause. The caller restarts the (now idle) client with a
// Start message; until then the client stays idle.
func (c *Client) Resume() { c.paused = false }

// Receive drives the closed loop.
func (c *Client) Receive(ctx *sim.Context, m sim.Message) {
	switch v := m.(type) {
	case Start:
		// Idempotent: a duplicate Start (a workload swap re-kicking a
		// client whose original Start is still queued) must not abandon
		// the in-flight transaction.
		if c.cur == nil {
			c.issueNext(ctx)
		}
	case *msg.ClientReply:
		if c.cur == nil || v.Txn != c.cur.id {
			return // stale reply from an abandoned attempt
		}
		ctx.Spend(c.Costs.ClientMessage)
		c.complete(ctx, v)
	case *msg.FragmentResult:
		ctx.Spend(c.Costs.ClientMessage)
		c.mpResult(ctx, v)
	case *msg.NewPrimary:
		ctx.Spend(c.Costs.ClientMessage)
		c.newPrimary(ctx, v)
	default:
		panic(fmt.Sprintf("client: unexpected message %T", m))
	}
}

// newPrimary re-targets a failed-over partition and, if the in-flight
// single-partition attempt was addressed to it, resends the attempt — same
// transaction ID, so the promoted primary can deduplicate it if the original
// execution survived in the replica stream but the reply died with the old
// primary. Multi-partition attempts need no action: the coordinator resolves
// them (aborting unrecoverable ones with retryable replies).
func (c *Client) newPrimary(ctx *sim.Context, v *msg.NewPrimary) {
	c.Parts[v.Partition] = v.Actor
	a := c.cur
	if a == nil || a.mp != nil || len(a.plan.Parts) != 1 || a.plan.Parts[0] != v.Partition {
		return
	}
	c.Metrics.NoteResend()
	c.sendSP(ctx, a)
}

// issueNext pulls the next invocation from the generator and routes it.
func (c *Client) issueNext(ctx *sim.Context) {
	if c.paused {
		c.cur = nil
		return // paused: hold at the issue point until resumed
	}
	inv := c.Gen.Next(c.Index, c.rng)
	if inv == nil {
		c.cur = nil
		return // generator exhausted: client stops
	}
	proc := c.Registry.Get(inv.Proc)
	plan := proc.Plan(inv.Args, c.Catalog)
	c.cur = &attempt{inv: inv, plan: plan, start: ctx.Now()}
	c.issue(ctx)
}

// issue starts (or restarts, after a kill) the current attempt.
func (c *Client) issue(ctx *sim.Context) {
	c.seq++
	c.Issued++
	a := c.cur
	a.id = msg.MakeTxnID(c.self, c.seq)
	a.mp = nil
	if len(a.plan.Parts) == 1 {
		c.sendSP(ctx, a)
		return
	}
	if c.Scheme == core.SchemeLocking {
		a.mp = &mpDrive{results: make(map[msg.PartitionID]*msg.FragmentResult)}
		c.sendRound(ctx, a)
		return
	}
	req := &msg.Request{
		Txn:      a.id,
		Proc:     a.inv.Proc,
		Args:     a.inv.Args,
		Client:   c.self,
		Parts:    a.plan.Parts,
		CanAbort: a.plan.CanAbort,
		AbortAt:  a.inv.AbortAt,
	}
	ctx.Spend(c.Costs.ClientMessage)
	c.Net.Send(ctx, c.Coordinator, req)
}

// sendSP sends (or, after a failover, resends) a single-partition attempt's
// one fragment under its current transaction ID.
func (c *Client) sendSP(ctx *sim.Context, a *attempt) {
	p := a.plan.Parts[0]
	f := &msg.Fragment{
		Txn:       a.id,
		Proc:      a.inv.Proc,
		Round:     0,
		Last:      true,
		Work:      a.plan.Work[p],
		Partition: p,
		Coord:     c.self,
		Client:    c.self,
		CanAbort:  a.plan.CanAbort,
	}
	if a.inv.AbortAt == p {
		f.InjectAbort = true
	}
	ctx.Spend(c.Costs.ClientMessage)
	c.Net.Send(ctx, c.Parts[p], f)
}

// sendRound dispatches the current 2PC round (locking scheme).
func (c *Client) sendRound(ctx *sim.Context, a *attempt) {
	last := a.mp.round == a.plan.Rounds-1
	var work map[msg.PartitionID]any
	if a.mp.round == 0 {
		work = a.plan.Work
	} else {
		proc := c.Registry.Get(a.inv.Proc)
		work = proc.Continue(a.inv.Args, a.mp.round, a.mp.prior, c.Catalog)
	}
	for _, p := range a.plan.Parts {
		f := &msg.Fragment{
			Txn:            a.id,
			Proc:           a.inv.Proc,
			Round:          a.mp.round,
			Last:           last,
			Work:           work[p],
			Partition:      p,
			Coord:          c.self,
			Client:         c.self,
			MultiPartition: true,
			CanAbort:       a.plan.CanAbort,
		}
		if a.mp.round == 0 && a.inv.AbortAt == p {
			f.InjectAbort = true
		}
		ctx.Spend(c.Costs.ClientMessage)
		c.Net.Send(ctx, c.Parts[p], f)
	}
}

// mpResult advances the client-driven 2PC.
func (c *Client) mpResult(ctx *sim.Context, r *msg.FragmentResult) {
	a := c.cur
	if a == nil || a.mp == nil || r.Txn != a.id || a.mp.decided {
		return // stale result from an aborted attempt
	}
	if r.Aborted {
		// First no-vote aborts the transaction at every participant.
		a.mp.decided = true
		c.decide(ctx, a, false)
		if r.Killed {
			// Deadlock/timeout victim: retry with a fresh ID.
			c.Metrics.Retry(ctx.Now())
			c.issue(ctx)
			return
		}
		c.finish(ctx, &msg.ClientReply{Txn: a.id, Committed: false, UserAborted: true})
		return
	}
	a.mp.results[r.Partition] = r
	if len(a.mp.results) < len(a.plan.Parts) {
		return
	}
	if a.mp.round < a.plan.Rounds-1 {
		for _, p := range a.plan.Parts {
			a.mp.prior = append(a.mp.prior, *a.mp.results[p])
		}
		a.mp.round++
		a.mp.results = make(map[msg.PartitionID]*msg.FragmentResult)
		c.sendRound(ctx, a)
		return
	}
	// All votes are yes: commit.
	a.mp.decided = true
	final := make([]msg.FragmentResult, 0, len(a.plan.Parts))
	for _, p := range a.plan.Parts {
		final = append(final, *a.mp.results[p])
	}
	c.decide(ctx, a, true)
	proc := c.Registry.Get(a.inv.Proc)
	c.finish(ctx, &msg.ClientReply{Txn: a.id, Committed: true, Output: proc.Output(a.inv.Args, final)})
}

// decide broadcasts the 2PC decision.
func (c *Client) decide(ctx *sim.Context, a *attempt, commit bool) {
	for _, p := range a.plan.Parts {
		ctx.Spend(c.Costs.ClientMessage)
		c.Net.Send(ctx, c.Parts[p], &msg.Decision{Txn: a.id, Commit: commit})
	}
}

// complete handles a reply for the current attempt.
func (c *Client) complete(ctx *sim.Context, r *msg.ClientReply) {
	if r.Retryable {
		c.Metrics.Retry(ctx.Now())
		c.issue(ctx)
		return
	}
	c.finish(ctx, r)
}

// finish records the completion and issues the next transaction.
func (c *Client) finish(ctx *sim.Context, r *msg.ClientReply) {
	a := c.cur
	c.Completed++
	c.Metrics.TxnDone(ctx.Now(), a.start, r.Committed, len(a.plan.Parts) > 1, a.plan.Rounds > 1)
	if c.OnComplete != nil {
		c.OnComplete(a.inv, r)
	}
	c.issueNext(ctx)
}

// SortPartitions returns plan partitions in ascending order (helper shared
// with tests).
func SortPartitions(parts []msg.PartitionID) []msg.PartitionID {
	out := append([]msg.PartitionID(nil), parts...)
	slices.Sort(out)
	return out
}
