// Package client implements the client library of §3.1: it routes
// single-partition transactions directly to the owning partition, sends
// multi-partition transactions through the central coordinator (blocking and
// speculative schemes), or coordinates them itself with 2PC (locking scheme,
// §4.3: "clients send multi-partition transactions directly to the
// partitions, without going through the central coordinator").
//
// Clients run in one of two load models. Closed-loop — the paper's §5
// methodology — issues one request, waits for the response, then issues
// another. Open-loop decouples arrivals from service: requests arrive on a
// deterministic Poisson or uniform interarrival process regardless of how
// fast the cluster responds, up to a bounded in-flight window per client;
// arrivals beyond the window wait in a bounded pending queue and are shed
// (counted, never silently dropped) when that overflows. Open-loop is the
// regime where tail latency under overload is visible — a closed-loop client
// slows its own arrival rate exactly when the system is slowest.
//
// Transactions killed as deadlock or timeout victims are retried
// transparently with a fresh transaction ID in both models.
package client

import (
	"fmt"
	"math/rand"
	"slices"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// Start kicks a client into its issue loop (closed-loop) or starts its
// arrival process (open-loop). It is idempotent.
type Start struct{}

// Process selects how open-loop interarrival gaps are drawn.
type Process int

// Arrival processes.
const (
	// Poisson draws exponential interarrival gaps — the memoryless arrival
	// stream of millions of independent users.
	Poisson Process = iota
	// Uniform spaces arrivals exactly Mean apart (a paced load generator).
	Uniform
)

// Arrival configures one client's open-loop arrival process. A nil Arrival
// on the Client selects the closed loop.
type Arrival struct {
	// Mean is the mean interarrival gap for this client.
	Mean sim.Time
	// Process selects Poisson (default) or Uniform gaps.
	Process Process
	// Window bounds how many of this client's transactions may be in
	// flight simultaneously (>= 1).
	Window int
	// Queue bounds how many arrivals may wait for a window slot; arrivals
	// beyond it are shed (metrics.Counts.Shed).
	Queue int
	// Phase delays the first arrival, staggering uniform clients so the
	// aggregate stream is evenly spaced rather than a thundering herd.
	Phase sim.Time
}

// tick is the client's arrival timer. Each client keeps exactly one tick in
// flight and reuses the same message value for every arrival, so the arrival
// process allocates nothing per event.
type tick struct {
	at sim.Time
}

// Client is one client actor: closed-loop by default, open-loop when
// Arrival is set.
type Client struct {
	Registry    *txn.Registry
	Catalog     *txn.Catalog
	Costs       *costs.Model
	Net         *simnet.Net
	Metrics     *metrics.Collector
	Scheme      core.Scheme
	Coordinator sim.ActorID
	// Parts maps PartitionID to the primary's actor ID. Each client owns
	// its copy: re-targeting after a failover is a per-client event,
	// delivered by the coordinator's NewPrimary broadcast.
	Parts []sim.ActorID
	Gen   workload.Generator
	Index int
	// Arrival, when non-nil, runs the client open-loop.
	Arrival *Arrival
	// OnComplete, when set, observes every completed transaction
	// (scripted/example use).
	OnComplete func(inv *txn.Invocation, reply *msg.ClientReply)

	self sim.ActorID
	rng  *rand.Rand
	seq  uint32
	// inflight holds the outstanding attempts in issue order: at most one
	// closed-loop, at most Arrival.Window open-loop.
	inflight []*attempt
	// pending holds open-loop arrival times waiting for a window slot.
	pending []sim.Time
	free    []*attempt
	tickMsg tick
	armed   bool
	// tickLive tracks whether an arrival tick is in flight; the chain ends
	// when the generator exhausts and is re-armed by Start after a
	// SetGenerator cleared done (workload phase swaps).
	tickLive bool
	done     bool
	paused   bool
	// Issued counts attempts; Completed counts finished transactions; Shed
	// counts open-loop arrivals dropped by a full window and queue.
	Issued    uint64
	Completed uint64
	Shed      uint64
}

type attempt struct {
	inv   *txn.Invocation
	plan  txn.Plan
	id    msg.TxnID
	start sim.Time // arrival/first-issue time (latency includes retries and queueing)
	mp    *mpDrive
	// tries counts consecutive kills of this attempt, driving the
	// optimistic schemes' retry backoff.
	tries int
}

// retryMsg is a delayed reissue of a killed attempt. The id guards against
// firing on a recycled attempt: release zeroes the attempt and issue assigns
// a fresh transaction ID, so a stale timer can never match.
type retryMsg struct {
	a  *attempt
	id msg.TxnID
}

// mpDrive is the client-side 2PC driver state (locking scheme).
type mpDrive struct {
	round   int
	results map[msg.PartitionID]*msg.FragmentResult
	prior   []msg.FragmentResult
	decided bool
}

// Bind sets identity and seeds the client's RNG.
func (c *Client) Bind(self sim.ActorID, seed int64) {
	c.self = self
	c.rng = rand.New(rand.NewSource(seed))
}

// open reports whether the client runs open-loop.
func (c *Client) open() bool { return c.Arrival != nil }

// Idle reports whether the client has no transaction in flight. A
// closed-loop idle client resumes only when sent a fresh Start message; an
// open-loop client may still hold pending arrivals that issue when resumed.
func (c *Client) Idle() bool { return len(c.inflight) == 0 }

// InFlight returns the number of outstanding transactions.
func (c *Client) InFlight() int { return len(c.inflight) }

// Pending returns the number of open-loop arrivals waiting for a window
// slot.
func (c *Client) Pending() int { return len(c.pending) }

// SetGenerator swaps the workload generator. The swap takes effect at the
// client's next issue; in-flight transactions are unaffected.
// Callers changing workload phases mid-run use this together with Start for
// clients that had already gone idle.
func (c *Client) SetGenerator(g workload.Generator) {
	c.Gen = g
	c.done = false
}

// Pause makes the client stop issuing: closed-loop it goes idle at its next
// issue point, open-loop its arrivals queue (and shed past the queue bound)
// instead of issuing; in-flight transactions run to completion either way.
// Draining every client this way brings the whole cluster to a quiescent
// point — the engine-swap precondition of adaptive scheme switching.
func (c *Client) Pause() { c.paused = true }

// Resume clears a Pause. The caller restarts the client with a Start
// message; until then it stays idle (open-loop arrivals keep queueing).
func (c *Client) Resume() { c.paused = false }

// Receive drives the client.
func (c *Client) Receive(ctx *sim.Context, m sim.Message) {
	switch v := m.(type) {
	case Start:
		c.start(ctx)
	case *tick:
		c.arrive(ctx, v.at)
	case *msg.ClientReply:
		a := c.lookup(v.Txn)
		if a == nil {
			return // stale reply from an abandoned attempt
		}
		ctx.Spend(c.Costs.ClientMessage)
		c.complete(ctx, a, v)
	case *msg.FragmentResult:
		ctx.Spend(c.Costs.ClientMessage)
		c.mpResult(ctx, v)
	case *msg.NewPrimary:
		ctx.Spend(c.Costs.ClientMessage)
		c.newPrimary(ctx, v)
	case *retryMsg:
		if v.a.id == v.id && c.lookup(v.id) == v.a {
			c.issue(ctx, v.a)
		}
	default:
		panic(fmt.Sprintf("client: unexpected message %T", m))
	}
}

// start handles Start idempotently: a duplicate Start (a workload swap
// re-kicking a client whose original Start is still queued) must not abandon
// in-flight transactions.
func (c *Client) start(ctx *sim.Context) {
	if !c.open() {
		if len(c.inflight) == 0 {
			c.issueNext(ctx)
		}
		return
	}
	switch {
	case !c.armed:
		c.armed = true
		at := ctx.Now() + c.Arrival.Phase
		if c.Arrival.Process == Poisson {
			at += c.gap()
		}
		c.scheduleTick(ctx, at)
	case !c.tickLive && !c.done:
		// The tick chain ended on generator exhaustion and SetGenerator
		// cleared done: restart the arrival process from now.
		c.scheduleTick(ctx, ctx.Now()+c.gap())
	}
	c.drainPending(ctx)
}

// gap draws one interarrival gap.
func (c *Client) gap() sim.Time {
	if c.Arrival.Process == Uniform {
		return c.Arrival.Mean
	}
	return sim.Time(c.rng.ExpFloat64() * float64(c.Arrival.Mean))
}

// scheduleTick arms the single reused arrival timer for the given absolute
// time.
func (c *Client) scheduleTick(ctx *sim.Context, at sim.Time) {
	c.tickMsg.at = at
	c.tickLive = true
	ctx.SendAt(at, c.self, &c.tickMsg)
}

// arrive handles one open-loop arrival: issue within the window, queue
// within the bound, shed beyond it — and schedule the next arrival. The
// arrival clock is the scheduled tick time, not the actor's busy-adjusted
// local clock, so the offered load is independent of client CPU.
func (c *Client) arrive(ctx *sim.Context, at sim.Time) {
	if c.done {
		c.tickLive = false
		return // generator exhausted: the arrival process stops
	}
	switch {
	case !c.paused && len(c.inflight) < c.Arrival.Window:
		c.issueArrival(ctx, at)
	case len(c.pending) < c.Arrival.Queue:
		c.pending = append(c.pending, at)
	default:
		c.shed(at)
	}
	if c.done {
		c.tickLive = false
		return
	}
	c.scheduleTick(ctx, at+c.gap())
}

// shed counts one dropped arrival (full window and queue, or an arrival
// stranded in the queue when the generator exhausted).
func (c *Client) shed(at sim.Time) {
	c.Shed++
	c.Metrics.NoteShed(at)
}

// drainPending issues queued arrivals while window slots are free.
func (c *Client) drainPending(ctx *sim.Context) {
	if !c.open() || c.paused || c.done {
		return
	}
	for len(c.pending) > 0 && len(c.inflight) < c.Arrival.Window {
		at := c.pending[0]
		n := copy(c.pending, c.pending[1:])
		c.pending = c.pending[:n]
		c.issueArrival(ctx, at)
	}
}

// lookup finds the in-flight attempt for a transaction ID.
func (c *Client) lookup(id msg.TxnID) *attempt {
	for _, a := range c.inflight {
		if a.id == id {
			return a
		}
	}
	return nil
}

// newAttempt recycles an attempt from the freelist.
func (c *Client) newAttempt() *attempt {
	if n := len(c.free); n > 0 {
		a := c.free[n-1]
		c.free = c.free[:n-1]
		return a
	}
	return &attempt{}
}

// release returns a completed attempt to the freelist.
func (c *Client) release(a *attempt) {
	for i, x := range c.inflight {
		if x == a {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			break
		}
	}
	*a = attempt{}
	c.free = append(c.free, a)
}

// newPrimary re-targets a failed-over partition and resends any in-flight
// single-partition attempt that was addressed to it — same transaction ID,
// so the promoted primary can deduplicate it if the original execution
// survived in the replica stream but the reply died with the old primary.
// Multi-partition attempts need no action: the coordinator resolves them
// (aborting unrecoverable ones with retryable replies).
func (c *Client) newPrimary(ctx *sim.Context, v *msg.NewPrimary) {
	c.Parts[v.Partition] = v.Actor
	for _, a := range c.inflight {
		if a.mp != nil || len(a.plan.Parts) != 1 || a.plan.Parts[0] != v.Partition {
			continue
		}
		c.Metrics.NoteResend()
		c.sendSP(ctx, a)
	}
}

// issueNext pulls the next invocation from the generator (closed loop).
func (c *Client) issueNext(ctx *sim.Context) {
	if c.paused {
		return // paused: hold at the issue point until resumed
	}
	inv := c.Gen.Next(c.Index, c.rng)
	if inv == nil {
		return // generator exhausted: client stops
	}
	c.admit(ctx, inv, ctx.Now())
}

// issueArrival pulls the next invocation for an open-loop arrival. Latency
// is measured from the arrival time, so window/queue wait — the overload
// signal — counts.
func (c *Client) issueArrival(ctx *sim.Context, at sim.Time) {
	inv := c.Gen.Next(c.Index, c.rng)
	if inv == nil {
		c.done = true
		// Arrivals stranded in the queue will never be served: count them
		// as shed — arrival accounting must never drop silently.
		for _, p := range c.pending {
			c.shed(p)
		}
		c.pending = c.pending[:0]
		return
	}
	c.admit(ctx, inv, at)
}

// admit plans an invocation, registers the attempt and issues it.
func (c *Client) admit(ctx *sim.Context, inv *txn.Invocation, start sim.Time) {
	proc := c.Registry.Get(inv.Proc)
	a := c.newAttempt()
	a.inv = inv
	a.plan = proc.Plan(inv.Args, c.Catalog)
	a.start = start
	c.inflight = append(c.inflight, a)
	c.issue(ctx, a)
}

// issue starts (or restarts, after a kill) an attempt.
func (c *Client) issue(ctx *sim.Context, a *attempt) {
	c.seq++
	c.Issued++
	a.id = msg.MakeTxnID(c.self, c.seq)
	a.mp = nil
	if len(a.plan.Parts) == 1 {
		c.sendSP(ctx, a)
		return
	}
	if c.Scheme == core.SchemeLocking {
		a.mp = &mpDrive{results: make(map[msg.PartitionID]*msg.FragmentResult)}
		c.sendRound(ctx, a)
		return
	}
	req := &msg.Request{
		Txn:      a.id,
		Proc:     a.inv.Proc,
		Args:     a.inv.Args,
		Client:   c.self,
		Parts:    a.plan.Parts,
		CanAbort: a.plan.CanAbort,
		ReadOnly: a.plan.ReadOnly,
		AbortAt:  a.inv.AbortAt,
	}
	ctx.Spend(c.Costs.ClientMessage)
	c.Net.Send(ctx, c.Coordinator, req)
}

// sendSP sends (or, after a failover, resends) a single-partition attempt's
// one fragment under its current transaction ID.
func (c *Client) sendSP(ctx *sim.Context, a *attempt) {
	p := a.plan.Parts[0]
	f := &msg.Fragment{
		Txn:       a.id,
		Proc:      a.inv.Proc,
		Round:     0,
		Last:      true,
		Work:      a.plan.Work[p],
		Partition: p,
		Coord:     c.self,
		Client:    c.self,
		CanAbort:  a.plan.CanAbort,
		ReadOnly:  a.plan.ReadOnly,
		Scans:     a.plan.Scans[p],
	}
	if a.inv.AbortAt == p {
		f.InjectAbort = true
	}
	ctx.Spend(c.Costs.ClientMessage)
	c.Net.Send(ctx, c.Parts[p], f)
}

// sendRound dispatches an attempt's current 2PC round (locking scheme).
func (c *Client) sendRound(ctx *sim.Context, a *attempt) {
	last := a.mp.round == a.plan.Rounds-1
	var work map[msg.PartitionID]any
	if a.mp.round == 0 {
		work = a.plan.Work
	} else {
		proc := c.Registry.Get(a.inv.Proc)
		work = proc.Continue(a.inv.Args, a.mp.round, a.mp.prior, c.Catalog)
	}
	for _, p := range a.plan.Parts {
		f := &msg.Fragment{
			Txn:            a.id,
			Proc:           a.inv.Proc,
			Round:          a.mp.round,
			Last:           last,
			Work:           work[p],
			Partition:      p,
			Coord:          c.self,
			Client:         c.self,
			MultiPartition: true,
			CanAbort:       a.plan.CanAbort,
			ReadOnly:       a.plan.ReadOnly,
			Scans:          a.plan.Scans[p],
		}
		if a.mp.round == 0 && a.inv.AbortAt == p {
			f.InjectAbort = true
		}
		ctx.Spend(c.Costs.ClientMessage)
		c.Net.Send(ctx, c.Parts[p], f)
	}
}

// mpResult advances the client-driven 2PC.
func (c *Client) mpResult(ctx *sim.Context, r *msg.FragmentResult) {
	a := c.lookup(r.Txn)
	if a == nil || a.mp == nil || a.mp.decided {
		return // stale result from an aborted attempt
	}
	if r.Aborted {
		// First no-vote aborts the transaction at every participant.
		a.mp.decided = true
		c.decide(ctx, a, false)
		if r.Killed {
			// Deadlock/timeout victim: retry with a fresh ID.
			c.Metrics.Retry(ctx.Now())
			c.issue(ctx, a)
			return
		}
		c.finish(ctx, a, &msg.ClientReply{Txn: a.id, Committed: false, UserAborted: true})
		return
	}
	a.mp.results[r.Partition] = r
	if len(a.mp.results) < len(a.plan.Parts) {
		return
	}
	if a.mp.round < a.plan.Rounds-1 {
		for _, p := range a.plan.Parts {
			a.mp.prior = append(a.mp.prior, *a.mp.results[p])
		}
		a.mp.round++
		a.mp.results = make(map[msg.PartitionID]*msg.FragmentResult)
		c.sendRound(ctx, a)
		return
	}
	// All votes are yes: commit.
	a.mp.decided = true
	final := make([]msg.FragmentResult, 0, len(a.plan.Parts))
	for _, p := range a.plan.Parts {
		final = append(final, *a.mp.results[p])
	}
	c.decide(ctx, a, true)
	proc := c.Registry.Get(a.inv.Proc)
	c.finish(ctx, a, &msg.ClientReply{Txn: a.id, Committed: true, Output: proc.Output(a.inv.Args, final)})
}

// decide broadcasts the 2PC decision.
func (c *Client) decide(ctx *sim.Context, a *attempt, commit bool) {
	for _, p := range a.plan.Parts {
		ctx.Spend(c.Costs.ClientMessage)
		c.Net.Send(ctx, c.Parts[p], &msg.Decision{Txn: a.id, Commit: commit})
	}
}

// complete handles a reply for an in-flight attempt.
func (c *Client) complete(ctx *sim.Context, a *attempt, r *msg.ClientReply) {
	if r.Retryable {
		c.Metrics.Retry(ctx.Now())
		if d := c.retryDelay(a); d > 0 {
			ctx.SendAt(ctx.Now()+d, c.self, &retryMsg{a: a, id: a.id})
			return
		}
		c.issue(ctx, a)
		return
	}
	c.finish(ctx, a, r)
}

// retryBackoffBase is the first reissue delay after an MVCC or OCC kill,
// roughly one single-partition execution.
const retryBackoffBase = 50 * sim.Microsecond

// retryDelay spaces consecutive reissues of a killed attempt under the
// optimistic schemes: exponential growth with a deterministic per-client
// jitter. Without it, transactions killed in the same event retry in the
// same event, re-conflict identically and livelock — the simulation is
// deterministic, so lockstep never breaks on its own. Locking needs no
// backoff (its lock queues make a retrier wait for the winner instead of
// re-killing it), and keeping its path untouched preserves every existing
// locking trace bit-for-bit.
func (c *Client) retryDelay(a *attempt) sim.Time {
	switch c.Scheme {
	case core.SchemeMVCC, core.SchemeOCC:
	default:
		return 0
	}
	a.tries++
	shift := a.tries - 1
	if shift > 4 {
		shift = 4
	}
	jitter := splitmix64(uint64(c.self)<<32^uint64(c.seq)) % uint64(retryBackoffBase)
	return retryBackoffBase<<shift + sim.Time(jitter)
}

// splitmix64 is the SplitMix64 finalizer — a deterministic bit mixer for
// retry jitter, independent of the workload RNG stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// finish records the completion and feeds the load loop: closed-loop issues
// the next transaction, open-loop promotes queued arrivals into the freed
// window slot.
func (c *Client) finish(ctx *sim.Context, a *attempt, r *msg.ClientReply) {
	c.Completed++
	c.Metrics.TxnDone(ctx.Now(), a.start, r.Committed, len(a.plan.Parts) > 1, a.plan.Rounds > 1, a.plan.ReadOnly, len(a.plan.Scans) > 0)
	if c.OnComplete != nil {
		c.OnComplete(a.inv, r)
	}
	c.release(a)
	if c.open() {
		c.drainPending(ctx)
		return
	}
	c.issueNext(ctx)
}

// SortPartitions returns plan partitions in ascending order (helper shared
// with tests).
func SortPartitions(parts []msg.PartitionID) []msg.PartitionID {
	out := append([]msg.PartitionID(nil), parts...)
	slices.Sort(out)
	return out
}
