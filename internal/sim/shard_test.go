package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// chatter is a deterministic traffic generator actor for width-equivalence
// tests: on every delivery it spends a little CPU, forwards a hop counter to
// a peer with a latency at or above the horizon, and occasionally arms a
// short self-timer. All randomness comes from its own seeded rng, so its
// behavior is a pure function of its delivery sequence — which is exactly
// what the sharded runtime must keep identical at every width.
type chatter struct {
	id      ActorID
	peers   []ActorID
	rng     *rand.Rand
	horizon Time
	trace   []string
}

type hop struct {
	n    int
	from ActorID
}

func (c *chatter) Receive(ctx *Context, m Message) {
	c.trace = append(c.trace, fmt.Sprintf("%v %T %v", ctx.Now(), m, m))
	ctx.Spend(Time(c.rng.Intn(5)) * Microsecond / 10)
	switch v := m.(type) {
	case hop:
		if v.n <= 0 {
			return
		}
		to := c.peers[c.rng.Intn(len(c.peers))]
		lat := c.horizon + Time(c.rng.Intn(30))*Microsecond/10
		ctx.Send(to, hop{n: v.n - 1, from: c.id}, lat)
		if c.rng.Intn(4) == 0 {
			// Self-timers are intra-shard at every width, so any latency
			// below the horizon is fair game.
			ctx.After(Time(1+c.rng.Intn(9))*Microsecond/10, hop{n: v.n - 1, from: c.id})
		}
	}
}

// buildChatter wires nActors chatter actors striped over width shards and
// seeds nSeeds initial hops. It returns the runtime and the actors.
func buildChatter(width, nActors, nSeeds int, horizon Time, kills bool) (*ShardedScheduler, []*chatter) {
	s := NewSharded(width, horizon)
	actors := make([]*chatter, nActors)
	ids := make([]ActorID, nActors)
	for i := range actors {
		actors[i] = &chatter{rng: rand.New(rand.NewSource(int64(i) + 1)), horizon: horizon}
		ids[i] = s.Register(fmt.Sprintf("chatter-%d", i), actors[i])
		s.Assign(ids[i], i*width/nActors)
	}
	for i := range actors {
		actors[i].id = ids[i]
		actors[i].peers = ids
	}
	for i := 0; i < nSeeds; i++ {
		s.SendAt(Time(i)*Microsecond, ids[i%nActors], hop{n: 40})
	}
	if kills {
		s.KillAt(200*Microsecond, ids[0])
		s.KillAt(350*Microsecond, ids[nActors/2])
	}
	return s, actors
}

// fingerprintChatter summarizes a finished run: per-actor delivery traces,
// busy times, and the global counters.
func fingerprintChatter(s *ShardedScheduler, actors []*chatter) string {
	var b strings.Builder
	for i, a := range actors {
		id := ActorID(i + 1)
		fmt.Fprintf(&b, "actor %d busy=%v alive=%v trace=%v\n", i, s.BusyTime(id), s.Alive(id), a.trace)
	}
	fmt.Fprintf(&b, "delivered=%d dropped=%d now=%v pending=%d empty=%v\n",
		s.DeliveredCount(), s.DroppedCount(), s.Now(), s.Pending(), s.Empty())
	return b.String()
}

// TestShardedWidthEquivalence is the core determinism property: the same
// actor system produces bit-identical traces, busy times, and counters at
// widths 1, 2, 3, and 7, with and without scheduled kills.
func TestShardedWidthEquivalence(t *testing.T) {
	const horizon = 20 * Microsecond
	for _, kills := range []bool{false, true} {
		var want string
		for _, width := range []int{1, 2, 3, 7} {
			s, actors := buildChatter(width, 7, 5, horizon, kills)
			s.Drain()
			got := fingerprintChatter(s, actors)
			if width == 1 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("kills=%v width=%d diverges from width=1:\n got: %s\nwant: %s",
					kills, width, got, want)
			}
		}
	}
}

// TestShardedStepMatchesRun drives the identical system once with windowed
// Run and once with single-event Step, at width 4: the global (at, src, seq)
// pop order must produce the same traces either way, which is what lets the
// facade's interactive drivers (Step, drain-to-quiescence) mix freely with
// windowed runs.
func TestShardedStepMatchesRun(t *testing.T) {
	const horizon = 20 * Microsecond
	sRun, aRun := buildChatter(4, 7, 5, horizon, true)
	sRun.Drain()

	sStep, aStep := buildChatter(4, 7, 5, horizon, true)
	steps := 0
	for sStep.Step() {
		steps++
	}
	if got, want := fingerprintChatter(sStep, aStep), fingerprintChatter(sRun, aRun); got != want {
		t.Errorf("Step trace diverges from Run trace:\n got: %s\nwant: %s", got, want)
	}
	if uint64(steps) != sRun.DeliveredCount()+sRun.DroppedCount() {
		t.Errorf("Step count %d, Run delivered+dropped %d", steps, sRun.DeliveredCount()+sRun.DroppedCount())
	}
}

// TestShardedRunBoundary pins Run's until semantics: events at exactly until
// are processed, later ones are not, and a subsequent Run picks up where the
// first left off.
func TestShardedRunBoundary(t *testing.T) {
	s := NewSharded(2, 20*Microsecond)
	r := &recorder{}
	a := s.Register("a", r)
	s.Assign(a, 1)
	s.SendAt(10*Microsecond, a, "early")
	s.SendAt(50*Microsecond, a, "at-bound")
	s.SendAt(50*Microsecond+1, a, "late")
	if n := s.Run(50 * Microsecond); n != 2 {
		t.Fatalf("Run processed %d events, want 2", n)
	}
	if s.Empty() {
		t.Fatal("late event should remain queued")
	}
	if n := s.Drain(); n != 1 {
		t.Fatalf("Drain processed %d events, want 1", n)
	}
	want := []string{"early", "at-bound", "late"}
	for i, w := range want {
		if r.got[i].msg != w {
			t.Errorf("delivery %d = %v, want %v", i, r.got[i].msg, w)
		}
	}
}

// TestShardedStopAtBarrier verifies ctx.Stop halts a windowed run at a
// window boundary, the stop is resumable, and the stop point is
// width-independent.
func TestShardedStopAtBarrier(t *testing.T) {
	var want string
	for _, width := range []int{1, 2, 4} {
		s, actors := buildChatter(width, 4, 3, 20*Microsecond, false)
		stopper := s.Register("stopper", HandlerFunc(func(ctx *Context, m Message) {
			ctx.Stop()
		}))
		s.Assign(stopper, width-1)
		s.SendAt(100*Microsecond, stopper, "stop")
		s.Drain()
		if !s.Stopped() {
			t.Fatalf("width %d: not stopped", width)
		}
		mid := fingerprintChatter(s, actors)
		s.Resume()
		s.Drain()
		got := mid + "---\n" + fingerprintChatter(s, actors)
		if width == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("width %d stop/resume diverges:\n got: %s\nwant: %s", width, got, want)
		}
	}
}

// TestShardedKillAtDropsDeliveries mirrors TestKillDropsDeliveries on the
// sharded runtime: deliveries after the kill marker are dropped, earlier
// ones are not.
func TestShardedKillAtDropsDeliveries(t *testing.T) {
	s := NewSharded(2, 20*Microsecond)
	r := &recorder{}
	a := s.Register("victim", r)
	b := s.Register("witness", &recorder{})
	s.Assign(a, 0)
	s.Assign(b, 1)
	s.SendAt(10*Microsecond, a, "before")
	s.SendAt(30*Microsecond, a, "after")
	s.SendAt(40*Microsecond, b, "other")
	s.KillAt(20*Microsecond, a)
	s.Drain()
	if len(r.got) != 1 || r.got[0].msg != "before" {
		t.Fatalf("victim got %v, want only the pre-kill delivery", r.got)
	}
	if s.DroppedCount() != 1 {
		t.Errorf("Dropped = %d, want 1", s.DroppedCount())
	}
	if s.Alive(a) {
		t.Error("victim still alive")
	}
	if s.Now() != 40*Microsecond {
		t.Errorf("Now = %v, want 40µs", s.Now())
	}
}

// TestShardedLookaheadPanics pins the loudness guarantee: a cross-shard send
// whose latency undercuts the horizon panics instead of silently reordering.
func TestShardedLookaheadPanics(t *testing.T) {
	s := NewSharded(2, 20*Microsecond)
	var peer ActorID
	a := s.Register("a", HandlerFunc(func(ctx *Context, m Message) {
		ctx.Send(peer, "too-fast", 5*Microsecond)
	}))
	peer = s.Register("b", &recorder{})
	s.Assign(a, 0)
	s.Assign(peer, 1)
	s.SendAt(0, a, "go")
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("expected a lookahead panic")
		} else if !strings.Contains(fmt.Sprint(p), "lookahead") &&
			!strings.Contains(fmt.Sprint(p), "window bound") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	s.Drain()
}

// TestShardedCrossShardKillPanics pins the other loud failure: synchronous
// Kill of a cross-shard actor during a window must panic (it would race the
// victim's event loop); KillAt is the sanctioned path.
func TestShardedCrossShardKillPanics(t *testing.T) {
	s := NewSharded(2, 20*Microsecond)
	var victim ActorID
	a := s.Register("a", HandlerFunc(func(ctx *Context, m Message) {
		ctx.Kill(victim)
	}))
	victim = s.Register("b", &recorder{})
	s.Assign(a, 0)
	s.Assign(victim, 1)
	s.SendAt(0, a, "go")
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("expected a cross-shard kill panic")
		}
	}()
	s.Drain()
}

// livePendingScan is the brute-force oracle for the cached Pending count: it
// walks the heap and counts events destined for live actors.
func (s *Scheduler) livePendingScan() int {
	n := 0
	for i := range s.heap.ev {
		if !s.actors[s.heap.ev[i].to-1].dead {
			n++
		}
	}
	return n
}

func (s *ShardedScheduler) livePendingScan() int {
	n := 0
	for si := range s.shards {
		for i := range s.shards[si].h.ev {
			if !s.actors[s.shards[si].h.ev[i].to-1].dead {
				n++
			}
		}
	}
	return n
}

// TestPendingMatchesScan is the regression test for the O(1) pending-count
// cache on the plain scheduler: under random traffic, partial drains, and
// kills, Pending always agrees with a brute-force heap scan.
func TestPendingMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var ids []ActorID
	for i := 0; i < 6; i++ {
		i := i
		ids = append(ids, s.Register(fmt.Sprintf("a%d", i), HandlerFunc(func(ctx *Context, m Message) {
			// Fan out a little more traffic so pops and pushes interleave.
			if rng.Intn(3) == 0 {
				ctx.After(Time(rng.Intn(50))*Microsecond, "echo")
			}
		})))
	}
	check := func(step string) {
		t.Helper()
		if got, want := s.Pending(), s.livePendingScan(); got != want {
			t.Fatalf("%s: Pending = %d, scan = %d", step, got, want)
		}
	}
	for round := 0; round < 200; round++ {
		switch rng.Intn(5) {
		case 0, 1:
			s.SendAt(s.Now()+Time(rng.Intn(100))*Microsecond, ids[rng.Intn(len(ids))], round)
		case 2, 3:
			s.Step()
		case 4:
			if round > 100 && rng.Intn(10) == 0 {
				s.Kill(ids[rng.Intn(len(ids))])
			} else {
				s.Run(s.Now() + 20*Microsecond)
			}
		}
		check(fmt.Sprintf("round %d", round))
	}
	s.Drain()
	check("after drain")
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
}

// TestShardedPendingMatchesScan runs the same regression on the sharded
// runtime, where Kill markers and barriers also mutate the counts.
func TestShardedPendingMatchesScan(t *testing.T) {
	s, _ := buildChatter(3, 6, 4, 20*Microsecond, true)
	check := func(step string) {
		t.Helper()
		if got, want := s.Pending(), s.livePendingScan(); got != want {
			t.Fatalf("%s: Pending = %d, scan = %d", step, got, want)
		}
	}
	for i := 0; i < 50 && !s.Empty(); i++ {
		s.Run(s.Now() + 10*Microsecond)
		check(fmt.Sprintf("run %d", i))
	}
	s.Drain()
	check("after drain")
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
}
