package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// recorder records every delivery it sees with the local service-start time.
type recorder struct {
	got []recorded
}

type recorded struct {
	msg Message
	at  Time
}

func (r *recorder) Receive(ctx *Context, m Message) {
	r.got = append(r.got, recorded{m, ctx.Now()})
}

func TestDeliveryOrder(t *testing.T) {
	s := New()
	r := &recorder{}
	a := s.Register("a", r)
	s.SendAt(30*Microsecond, a, "third")
	s.SendAt(10*Microsecond, a, "first")
	s.SendAt(20*Microsecond, a, "second")
	s.Drain()
	want := []string{"first", "second", "third"}
	if len(r.got) != len(want) {
		t.Fatalf("delivered %d events, want %d", len(r.got), len(want))
	}
	for i, w := range want {
		if r.got[i].msg != w {
			t.Errorf("delivery %d = %v, want %v", i, r.got[i].msg, w)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	s := New()
	r := &recorder{}
	a := s.Register("a", r)
	for i := 0; i < 10; i++ {
		s.SendAt(5*Microsecond, a, i)
	}
	s.Drain()
	for i := 0; i < 10; i++ {
		if r.got[i].msg != i {
			t.Fatalf("same-time events reordered: slot %d = %v", i, r.got[i].msg)
		}
	}
}

// spender charges a fixed cost per message.
type spender struct {
	cost   Time
	starts []Time
}

func (sp *spender) Receive(ctx *Context, m Message) {
	sp.starts = append(sp.starts, ctx.Now())
	ctx.Spend(sp.cost)
}

func TestBusyUntilQueueing(t *testing.T) {
	s := New()
	sp := &spender{cost: 10 * Microsecond}
	a := s.Register("a", sp)
	// Three messages arrive at t=0; service must start at 0, 10, 20.
	for i := 0; i < 3; i++ {
		s.SendAt(0, a, i)
	}
	s.Drain()
	want := []Time{0, 10 * Microsecond, 20 * Microsecond}
	for i, w := range want {
		if sp.starts[i] != w {
			t.Errorf("service %d started at %v, want %v", i, sp.starts[i], w)
		}
	}
	if got := s.Now(); got != 0 {
		// Scheduler time is delivery time of last event (0), even though
		// the actor was busy until 30µs.
		t.Errorf("scheduler now = %v, want 0", got)
	}
}

func TestIdleGapResetsService(t *testing.T) {
	s := New()
	sp := &spender{cost: 10 * Microsecond}
	a := s.Register("a", sp)
	s.SendAt(0, a, "x")
	s.SendAt(100*Microsecond, a, "y")
	s.Drain()
	if sp.starts[1] != 100*Microsecond {
		t.Errorf("second service started at %v, want 100µs", sp.starts[1])
	}
}

// echo sends a reply back to the source carried in the message.
type echo struct{ latency Time }

type ping struct {
	from  ActorID
	hops  int
	trace []Time
}

func (e *echo) Receive(ctx *Context, m Message) {
	p := m.(*ping)
	p.trace = append(p.trace, ctx.Now())
	if p.hops <= 0 {
		return
	}
	p.hops--
	from := p.from
	p.from = ctx.Self()
	ctx.Send(from, p, e.latency)
}

func TestSendLatency(t *testing.T) {
	s := New()
	ea := &echo{latency: 20 * Microsecond}
	eb := &echo{latency: 20 * Microsecond}
	a := s.Register("a", ea)
	b := s.Register("b", eb)
	p := &ping{from: b, hops: 3}
	s.SendAt(0, a, p)
	s.Drain()
	want := []Time{0, 20 * Microsecond, 40 * Microsecond, 60 * Microsecond}
	if len(p.trace) != len(want) {
		t.Fatalf("trace has %d hops, want %d", len(p.trace), len(want))
	}
	for i, w := range want {
		if p.trace[i] != w {
			t.Errorf("hop %d at %v, want %v", i, p.trace[i], w)
		}
	}
}

type timerActor struct {
	fired []Time
}

func (ta *timerActor) Receive(ctx *Context, m Message) {
	switch m {
	case "arm":
		ctx.After(50*Microsecond, "fire")
	case "fire":
		ta.fired = append(ta.fired, ctx.Now())
	}
}

func TestAfterTimer(t *testing.T) {
	s := New()
	ta := &timerActor{}
	a := s.Register("a", ta)
	s.SendAt(10*Microsecond, a, "arm")
	s.Drain()
	if len(ta.fired) != 1 || ta.fired[0] != 60*Microsecond {
		t.Fatalf("timer fired at %v, want [60µs]", ta.fired)
	}
}

func TestRunUntilBound(t *testing.T) {
	s := New()
	r := &recorder{}
	a := s.Register("a", r)
	s.SendAt(10*Microsecond, a, 1)
	s.SendAt(20*Microsecond, a, 2)
	s.SendAt(30*Microsecond, a, 3)
	n := s.Run(20 * Microsecond)
	if n != 2 {
		t.Fatalf("Run processed %d events, want 2", n)
	}
	n = s.Drain()
	if n != 1 {
		t.Fatalf("Drain processed %d events, want 1", n)
	}
}

func TestStop(t *testing.T) {
	s := New()
	stopAfter := 5
	var r *stopper
	r = &stopper{n: &stopAfter, s: s}
	a := s.Register("a", r)
	for i := 0; i < 100; i++ {
		s.SendAt(Time(i)*Microsecond, a, i)
	}
	n := s.Drain()
	if n != 5 {
		t.Fatalf("processed %d events after Stop, want 5", n)
	}
}

type stopper struct {
	n *int
	s *Scheduler
}

func (st *stopper) Receive(ctx *Context, m Message) {
	*st.n--
	if *st.n == 0 {
		st.s.Stop()
	}
}

func TestSendToUnknownActorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown actor")
		}
	}()
	New().SendAt(0, 7, "x")
}

func TestNegativeSpendPanics(t *testing.T) {
	s := New()
	a := s.Register("a", handlerFunc(func(ctx *Context, m Message) {
		defer func() {
			if recover() == nil {
				panic("expected panic")
			}
		}()
		ctx.Spend(-1)
	}))
	s.SendAt(0, a, "x")
	s.Drain()
}

type handlerFunc func(*Context, Message)

func (f handlerFunc) Receive(ctx *Context, m Message) { f(ctx, m) }

// TestHeapProperty checks that an arbitrary batch of scheduled events is
// always delivered in nondecreasing (time, seq) order.
func TestHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		s := New()
		r := &recorder{}
		a := s.Register("a", r)
		for i, tt := range times {
			s.SendAt(Time(tt)*Microsecond, a, i)
		}
		s.Drain()
		if len(r.got) != len(times) {
			return false
		}
		var prev Time = -1
		seen := make(map[int]bool)
		for _, g := range r.got {
			if g.at < prev {
				return false
			}
			prev = g.at
			seen[g.msg.(int)] = true
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism runs a randomized actor network twice with the same seed
// and requires identical traces.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := New()
		rng := rand.New(rand.NewSource(seed))
		var rec recorder
		const n = 8
		ids := make([]ActorID, n)
		for i := 0; i < n; i++ {
			i := i
			ids[i] = s.Register("n", handlerFunc(func(ctx *Context, m Message) {
				rec.got = append(rec.got, recorded{m, ctx.Now()})
				ctx.Spend(Time(rng.Intn(20)) * Microsecond)
				if rng.Intn(4) != 0 {
					ctx.Send(ids[rng.Intn(n)], i, Time(rng.Intn(50))*Microsecond)
				}
			}))
		}
		for i := 0; i < 20; i++ {
			s.SendAt(Time(rng.Intn(100))*Microsecond, ids[rng.Intn(n)], -i)
		}
		s.Run(5 * Millisecond)
		out := make([]Time, len(rec.got))
		for i, g := range rec.got {
			out[i] = g.at
		}
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different trace lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Nanosecond).String(); got != "1.500µs" {
		t.Errorf("String = %q", got)
	}
	if Microsecond.Micros() != 1 {
		t.Errorf("Micros(1µs) = %v", Microsecond.Micros())
	}
}

func TestKillDropsDeliveries(t *testing.T) {
	s := New()
	r := &recorder{}
	a := s.Register("victim", r)
	b := s.Register("witness", &recorder{})
	s.SendAt(10*Microsecond, a, "before")
	s.SendAt(30*Microsecond, a, "after")
	s.SendAt(40*Microsecond, b, "other")
	// Kill at t=20µs via an event so the ordering is part of the run.
	k := s.Register("killer", HandlerFunc(func(ctx *Context, m Message) {
		ctx.Kill(a)
	}))
	s.SendAt(20*Microsecond, k, "kill")
	s.Drain()
	if len(r.got) != 1 || r.got[0].msg != "before" {
		t.Fatalf("victim got %v, want only the pre-kill delivery", r.got)
	}
	if s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
	if s.Alive(a) {
		t.Error("victim still alive")
	}
	if !s.Alive(b) {
		t.Error("witness dead")
	}
	if s.Now() != 40*Microsecond {
		t.Errorf("Now = %v; dropped deliveries must still advance time", s.Now())
	}
}

// HandlerFunc adapts a function to the Handler interface (tests).
type HandlerFunc func(ctx *Context, m Message)

// Receive implements Handler.
func (f HandlerFunc) Receive(ctx *Context, m Message) { f(ctx, m) }

func TestStopIsResumable(t *testing.T) {
	s := New()
	r := &recorder{}
	a := s.Register("a", r)
	for i := 0; i < 5; i++ {
		s.SendAt(Time(i)*Microsecond, a, i)
	}
	stopper := s.Register("stopper", HandlerFunc(func(ctx *Context, m Message) {
		ctx.Stop()
	}))
	s.SendAt(2*Microsecond+1, stopper, "stop")
	n := s.Drain()
	if !s.Stopped() {
		t.Fatal("scheduler not stopped")
	}
	if len(r.got) != 3 {
		t.Fatalf("delivered %d before stop, want 3", len(r.got))
	}
	if s.Step() || s.Run(Time(1<<60)) != 0 {
		t.Fatal("stopped scheduler processed events")
	}
	s.Resume()
	n += s.Drain()
	if len(r.got) != 5 {
		t.Fatalf("delivered %d after resume, want 5", len(r.got))
	}
	if n != 6 { // 5 payloads + the stop event
		t.Errorf("processed %d events total, want 6", n)
	}
}
