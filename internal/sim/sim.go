// Package sim provides a deterministic discrete-event simulation kernel.
//
// The paper's testbed is six servers on a gigabit switch; here every process
// (partition primary, backup, central coordinator, client) is an actor driven
// by a single event loop over virtual time. Each actor models a
// single-threaded CPU: an event delivered at time T to an actor that is busy
// until B begins service at max(T, B), and the handler charges CPU time with
// Context.Spend. Queueing and saturation (e.g. of the central coordinator in
// Figure 4 of the paper) emerge from this busy-until semantics.
//
// Determinism: events are ordered by (deliver time, insertion sequence), and
// all randomness used by actors must come from seeded sources, so a run is a
// pure function of its configuration.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds.
type Time int64

// Common durations, usable as both durations and time scales.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros returns t as a floating point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fµs", t.Micros())
}

// ActorID identifies a registered actor.
type ActorID int32

// NoActor is the zero ActorID; valid actors are numbered from 1.
const NoActor ActorID = 0

// Message is any value delivered to an actor.
type Message any

// Handler is implemented by every actor.
type Handler interface {
	// Receive processes one message. It may consume virtual CPU time via
	// ctx.Spend and send messages via ctx.Send; it must not retain ctx.
	Receive(ctx *Context, m Message)
}

// event is a scheduled message delivery.
type event struct {
	at  Time
	seq uint64
	to  ActorID
	msg Message
}

type actorState struct {
	handler   Handler
	busyUntil Time
	busyTotal Time
	name      string
	dead      bool
	// pending counts events queued for this actor, so Kill can subtract the
	// victim's backlog from the scheduler's live-pending cache in O(1).
	pending int
}

// Runtime is the stepping contract shared by the single-threaded Scheduler
// and the ShardedScheduler: registration, external injection, the drive
// primitives, and the introspection the facade layers on top. Components keep
// talking to a Context; only the driver chooses the runtime.
type Runtime interface {
	// Register adds an actor and returns its ID.
	Register(name string, h Handler) ActorID
	// SendAt schedules an external message (injection point).
	SendAt(at Time, to ActorID, msg Message)
	// Step delivers one event; Run and Drain batch deliveries.
	Step() bool
	Run(until Time) int
	Drain() int
	// Now is the delivery time of the most recently delivered event.
	Now() Time
	// Stop/Resume/Stopped control the sticky halt flag.
	Stop()
	Resume()
	Stopped() bool
	// Empty reports whether no events remain queued; Pending counts queued
	// events whose destination is still alive, in O(1).
	Empty() bool
	Pending() int
	// Kill marks an actor dead; Alive reports the flag.
	Kill(id ActorID)
	Alive(id ActorID) bool
	// Introspection for metrics and diagnostics.
	BusyTime(id ActorID) Time
	Name(id ActorID) string
	Handler(id ActorID) Handler
	NumActors() int
	DeliveredCount() uint64
	DroppedCount() uint64
}

// Scheduler owns the event queue and all registered actors.
type Scheduler struct {
	heap    eventHeap
	seq     uint64
	now     Time
	actors  []actorState // index = ActorID-1
	ctx     Context
	stopped bool
	// live caches the number of queued events destined for live actors, so
	// Empty/quiescence polling and Pending are O(1) instead of a heap scan.
	// Maintained by SendAt (push), deliver (pop), and Kill (subtracting the
	// victim's per-actor pending count).
	live int

	// Delivered counts events processed, for diagnostics and tests.
	Delivered uint64
	// Dropped counts events discarded because their destination actor was
	// dead at delivery time (fail-stop crash faults).
	Dropped uint64
}

// New returns an empty scheduler at time zero.
func New() *Scheduler {
	s := &Scheduler{}
	s.ctx.k = s
	return s
}

// Register adds an actor and returns its ID. The name is used in errors only.
func (s *Scheduler) Register(name string, h Handler) ActorID {
	s.actors = append(s.actors, actorState{handler: h, name: name})
	return ActorID(len(s.actors))
}

// actor returns the state for id, panicking with a clear message on
// ActorID(0), negative or never-registered IDs — the same contract SendAt
// enforces, instead of a raw index error.
func (s *Scheduler) actor(id ActorID) *actorState {
	if id <= 0 || int(id) > len(s.actors) {
		panic(fmt.Sprintf("sim: unknown actor %d", id))
	}
	return &s.actors[id-1]
}

// Handler returns the handler registered for id.
func (s *Scheduler) Handler(id ActorID) Handler {
	return s.actor(id).handler
}

// Name returns the name the actor was registered with.
func (s *Scheduler) Name(id ActorID) string {
	return s.actor(id).name
}

// BusyTime returns the total virtual CPU time the actor has consumed, for
// utilization measurements (e.g. coordinator saturation, §5.1).
func (s *Scheduler) BusyTime(id ActorID) Time {
	return s.actor(id).busyTotal
}

// NumActors returns the number of registered actors.
func (s *Scheduler) NumActors() int { return len(s.actors) }

// Now returns the scheduler's current virtual time: the delivery time of the
// most recently dequeued event.
func (s *Scheduler) Now() Time { return s.now }

// SendAt schedules msg for delivery to the given actor at the given time.
// It is the external injection point (e.g. starting clients at t=0).
func (s *Scheduler) SendAt(at Time, to ActorID, msg Message) {
	if to <= 0 || int(to) > len(s.actors) {
		panic(fmt.Sprintf("sim: send to unknown actor %d", to))
	}
	if at < s.now {
		at = s.now
	}
	a := &s.actors[to-1]
	a.pending++
	if !a.dead {
		s.live++
	}
	s.seq++
	s.heap.push(event{at: at, seq: s.seq, to: to, msg: msg})
}

// Stop makes Run and Step return without processing further events. The flag
// is sticky until Resume clears it, so a caller (typically a completion
// callback inside a facade drive call) can halt a run mid-flight and later
// continue it from exactly where it left off.
func (s *Scheduler) Stop() { s.stopped = true }

// Resume clears a Stop, allowing Run and Step to process events again.
func (s *Scheduler) Resume() { s.stopped = false }

// Stopped reports whether the scheduler is currently stopped.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Kill marks an actor dead, modeling a fail-stop crash: every event delivered
// to it from now on — including its own pending timers — is silently dropped
// (counted in Dropped). Messages the actor sent before dying still arrive.
// A kill is permanent; there is no revival.
func (s *Scheduler) Kill(id ActorID) {
	a := s.actor(id)
	if a.dead {
		return
	}
	a.dead = true
	s.live -= a.pending
}

// Alive reports whether the actor has not been killed.
func (s *Scheduler) Alive(id ActorID) bool { return !s.actor(id).dead }

// Empty reports whether no events remain queued. In a closed-loop simulation
// an empty queue is permanent quiescence: nothing further will happen without
// external input via SendAt.
func (s *Scheduler) Empty() bool {
	_, ok := s.heap.peek()
	return !ok
}

// Pending returns the number of queued events whose destination actor is
// still alive, in O(1) from the cached count. Events addressed to killed
// actors are excluded: they can only be dropped, so they cannot advance the
// simulation, and quiescence pollers should not wait on them.
func (s *Scheduler) Pending() int { return s.live }

// DeliveredCount returns Delivered; it exists so drivers can count events
// through the Runtime interface without reaching for the struct field.
func (s *Scheduler) DeliveredCount() uint64 { return s.Delivered }

// DroppedCount returns Dropped through the Runtime interface.
func (s *Scheduler) DroppedCount() uint64 { return s.Dropped }

// deliver dispatches one dequeued event to its actor, modelling the actor's
// single-threaded CPU: service starts at max(arrival, busyUntil).
func (s *Scheduler) deliver(e event) {
	s.now = e.at
	a := &s.actors[e.to-1]
	a.pending--
	if a.dead {
		s.Dropped++
		return
	}
	s.live--
	start := e.at
	if a.busyUntil > start {
		start = a.busyUntil
	}
	s.ctx.self = e.to
	s.ctx.local = start
	a.handler.Receive(&s.ctx, e.msg)
	a.busyUntil = s.ctx.local
	a.busyTotal += s.ctx.local - start
	s.Delivered++
}

// Step delivers exactly one event and returns true, or returns false when the
// queue is empty or the scheduler is stopped. It is the fine-grained stepping
// primitive beneath Run/Drain and the facade's interactive drivers.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	e, ok := s.heap.pop()
	if !ok {
		return false
	}
	s.deliver(e)
	return true
}

// Run processes events in order until the queue is empty or the next event's
// delivery time exceeds until. It returns the number of events processed.
func (s *Scheduler) Run(until Time) int {
	n := 0
	for !s.stopped {
		e, ok := s.heap.peek()
		if !ok || e.at > until {
			break
		}
		s.heap.pop()
		s.deliver(e)
		n++
	}
	return n
}

// Drain runs until no events remain (no time bound). Intended for tests.
func (s *Scheduler) Drain() int {
	return s.Run(Time(1<<62 - 1))
}

// kernel is the scheduling backend a Context talks to. The single-threaded
// Scheduler routes every call to itself; the ShardedScheduler installs one
// kernel per shard so sends can be classified as intra- or cross-shard and
// stamped with the sender's sequence number.
type kernel interface {
	// send schedules msg at absolute time at, on behalf of actor from.
	send(from ActorID, at Time, to ActorID, msg Message)
	// kill marks an actor dead (fail-stop crash).
	kill(id ActorID)
	// stop raises the runtime's sticky halt flag.
	stop()
}

// send implements kernel for the single-threaded scheduler: the sender is
// irrelevant because a global insertion sequence already totals the order.
func (s *Scheduler) send(_ ActorID, at Time, to ActorID, msg Message) {
	s.SendAt(at, to, msg)
}

func (s *Scheduler) kill(id ActorID) { s.Kill(id) }

func (s *Scheduler) stop() { s.Stop() }

// Context is passed to Handler.Receive. It is owned by the scheduler and
// reused between deliveries; handlers must not retain it.
type Context struct {
	k     kernel
	self  ActorID
	local Time
}

// Self returns the ID of the actor handling the current message.
func (c *Context) Self() ActorID { return c.self }

// Now returns the actor's local virtual time: service start plus any time
// already consumed with Spend during this delivery.
func (c *Context) Now() Time { return c.local }

// Spend charges d of CPU time to the current actor, advancing its local
// clock. Subsequent sends depart after the charged time.
func (c *Context) Spend(d Time) {
	if d < 0 {
		panic("sim: negative Spend")
	}
	c.local += d
}

// Send delivers msg to the destination actor after the given latency,
// measured from the current local time.
func (c *Context) Send(to ActorID, msg Message, latency Time) {
	if latency < 0 {
		panic("sim: negative latency")
	}
	c.k.send(c.self, c.local+latency, to, msg)
}

// After schedules msg to be delivered back to the current actor after d.
// It is the timer primitive (e.g. distributed deadlock timeouts).
func (c *Context) After(d Time, msg Message) {
	c.k.send(c.self, c.local+d, c.self, msg)
}

// SendAt schedules msg for delivery at an absolute virtual time, for actors
// that pace themselves against the global clock (open-loop arrival ticks)
// rather than relative latencies. Times in the past are clamped to now.
func (c *Context) SendAt(at Time, to ActorID, msg Message) {
	c.k.send(c.self, at, to, msg)
}

// Kill marks an actor dead from inside a handler (fail-stop crash
// injection). On the sharded runtime only same-shard victims may be killed
// synchronously; cross-shard crashes must be pre-registered with
// ShardedScheduler.KillAt, which is how the fault controller schedules them.
func (c *Context) Kill(id ActorID) { c.k.kill(id) }

// Stop raises the runtime's sticky halt flag from inside a handler. On the
// sharded runtime the stop takes effect at the next window barrier.
func (c *Context) Stop() { c.k.stop() }
