package sim

import (
	"fmt"
	"sync/atomic"
)

// Sharded deterministic runtime: N event loops over disjoint actor groups,
// synchronized by conservative time-window barriers.
//
// Every actor is assigned to exactly one shard; a shard owns a private 4-ary
// event heap and clock and delivers its actors' events on its own goroutine.
// Execution proceeds in windows [low, low+Horizon): all shards deliver their
// events with at < bound in parallel, then a barrier exchanges the
// cross-shard sends produced during the window, and the next window begins.
// A cross-shard send executed inside a window starting at W departs at local
// time >= W and travels with latency >= Horizon, so it arrives at >= W +
// Horizon — at or after the bound — and is always merged at the barrier
// before any shard could need it. The runtime enforces this lookahead
// invariant with a panic, so a mis-tuned Horizon fails loudly instead of
// silently reordering.
//
// Determinism does not depend on the number of shards. Events are keyed
// (at, src, srcSeq): the delivery time, the sending actor, and that sender's
// own send counter. The key is a total order (srcSeq is unique per sender)
// that is computed entirely from per-actor state, so it is identical at
// every width — unlike the single-threaded Scheduler's (at, globalSeq) key,
// whose global counter reflects one particular interleaving. Because heap
// pop order is purely key-determined, the order in which the barrier pushes
// exchanged events is irrelevant, and a run with Shards=1 is bit-identical
// to the same run with Shards=N. External injections (SendAt, KillAt) use
// src = NoActor with a scheduler-level counter that only advances between
// drive calls, which is width-independent by construction.
type ShardedScheduler struct {
	width   int
	horizon Time
	shards  []shard
	actors  []shardActor // index = ActorID-1
	injSeq  uint64       // sequence for src = NoActor injections
	// low is the exclusive upper bound of virtual time processed so far:
	// every event with at < low has been delivered. The next window is
	// [low, low+horizon), clipped to the drive call's until.
	low      Time
	stopped  bool
	stopReq  atomic.Bool
	inWindow bool // true while worker goroutines own the shards

	barriers  uint64
	crossMsgs uint64
}

// shardEvent is a scheduled delivery keyed (at, src, seq) — see the type
// comment on ShardedScheduler for why this key is width-independent.
type shardEvent struct {
	at   Time
	src  ActorID // sending actor, or NoActor for external injections
	seq  uint64  // per-sender sequence (or the injection sequence)
	to   ActorID
	msg  Message
	kill bool // kill marker: mark the destination dead instead of delivering
}

func (a *shardEvent) before(b *shardEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

type shardActor struct {
	handler   Handler
	name      string
	shard     int32
	dead      bool
	busyUntil Time
	busyTotal Time
	sendSeq   uint64 // stamps this actor's outgoing events
	pending   int    // events queued for this actor (in its shard's heap)
}

// shard is one event loop: a heap, a clock, and the Context its actors see.
// During a window it is owned exclusively by its worker goroutine; between
// windows the coordinating goroutine owns all shards (the channel
// synchronization around each window establishes the happens-before edges).
type shard struct {
	h         shardHeap
	now       Time
	bound     Time // current window's exclusive bound, set before the window
	delivered uint64
	dropped   uint64
	live      int // queued events destined for live actors of this shard
	outbox    [][]shardEvent
	ctx       Context
	kern      shardKernel
}

type shardKernel struct {
	s  *ShardedScheduler
	si int
}

// NewSharded returns a sharded runtime with the given width and window
// horizon. The horizon must be positive and no larger than the minimum
// cross-shard message latency; violations surface as lookahead panics at the
// first offending send. Width 1 runs the identical windowed algorithm
// without goroutines and is the determinism baseline for every other width.
func NewSharded(width int, horizon Time) *ShardedScheduler {
	if width < 1 {
		panic("sim: NewSharded width must be >= 1")
	}
	if horizon <= 0 {
		panic("sim: NewSharded horizon must be positive")
	}
	s := &ShardedScheduler{width: width, horizon: horizon, shards: make([]shard, width)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.kern = shardKernel{s: s, si: i}
		sh.ctx.k = &sh.kern
		sh.outbox = make([][]shardEvent, width)
	}
	return s
}

// NumShards returns the configured width.
func (s *ShardedScheduler) NumShards() int { return s.width }

// Horizon returns the window length.
func (s *ShardedScheduler) Horizon() Time { return s.horizon }

// Barriers returns the number of window barriers executed so far. The window
// sequence is a function of event times only, so the count is identical at
// every width.
func (s *ShardedScheduler) Barriers() uint64 { return s.barriers }

// CrossShardMsgs returns the number of events exchanged between shards at
// barriers. Unlike Barriers this depends on placement and width (width 1
// exchanges nothing), so it is observability, not part of the deterministic
// result surface.
func (s *ShardedScheduler) CrossShardMsgs() uint64 { return s.crossMsgs }

// Register adds an actor on shard 0 and returns its ID. Use Assign to place
// it before any events are scheduled.
func (s *ShardedScheduler) Register(name string, h Handler) ActorID {
	s.actors = append(s.actors, shardActor{handler: h, name: name})
	return ActorID(len(s.actors))
}

func (s *ShardedScheduler) actor(id ActorID) *shardActor {
	if id <= 0 || int(id) > len(s.actors) {
		panicUnknownActor(id)
	}
	return &s.actors[id-1]
}

// Assign places an actor on a shard. Placement must happen before any event
// is scheduled for the actor: events already queued would sit in the wrong
// heap.
func (s *ShardedScheduler) Assign(id ActorID, shard int) {
	if shard < 0 || shard >= s.width {
		panic("sim: Assign shard out of range")
	}
	a := s.actor(id)
	if a.pending != 0 {
		panic("sim: Assign after events were scheduled for the actor")
	}
	a.shard = int32(shard)
}

// ShardOf returns the shard an actor is assigned to.
func (s *ShardedScheduler) ShardOf(id ActorID) int { return int(s.actor(id).shard) }

// Handler returns the handler registered for id.
func (s *ShardedScheduler) Handler(id ActorID) Handler { return s.actor(id).handler }

// Name returns the name the actor was registered with.
func (s *ShardedScheduler) Name(id ActorID) string { return s.actor(id).name }

// BusyTime returns the total virtual CPU time the actor has consumed.
func (s *ShardedScheduler) BusyTime(id ActorID) Time { return s.actor(id).busyTotal }

// NumActors returns the number of registered actors.
func (s *ShardedScheduler) NumActors() int { return len(s.actors) }

// Now returns the latest delivery time across all shards — the delivery time
// of the most recent event in virtual order, identical at every width.
func (s *ShardedScheduler) Now() Time {
	var t Time
	for i := range s.shards {
		if s.shards[i].now > t {
			t = s.shards[i].now
		}
	}
	return t
}

// Stop makes Run and Step return without processing further events. During a
// windowed Run the stop takes effect at the next barrier: the current window
// always completes on every shard, which keeps the stop point — and
// therefore the whole run — independent of the number of shards.
func (s *ShardedScheduler) Stop() { s.stopReq.Store(true) }

// Resume clears a Stop.
func (s *ShardedScheduler) Resume() {
	s.stopped = false
	s.stopReq.Store(false)
}

// Stopped reports whether the runtime is stopped.
func (s *ShardedScheduler) Stopped() bool { return s.stopped || s.stopReq.Load() }

// Kill marks an actor dead, as Scheduler.Kill does. It may be called between
// drive calls or from a same-shard handler (via Context.Kill); cross-shard
// kills during a window must be pre-registered with KillAt.
func (s *ShardedScheduler) Kill(id ActorID) {
	a := s.actor(id)
	if a.dead {
		return
	}
	a.dead = true
	s.shards[a.shard].live -= a.pending
}

// Alive reports whether the actor has not been killed.
func (s *ShardedScheduler) Alive(id ActorID) bool { return !s.actor(id).dead }

// SendAt schedules msg for delivery at the given time (external injection).
// Times below the processed horizon are clamped to it, mirroring the plain
// scheduler's clamp to now.
func (s *ShardedScheduler) SendAt(at Time, to ActorID, msg Message) {
	a := s.actor(to)
	if at < s.low {
		at = s.low
	}
	s.injSeq++
	s.shards[a.shard].push(shardEvent{at: at, src: NoActor, seq: s.injSeq, to: to, msg: msg}, a)
}

// KillAt schedules a fail-stop crash of an actor at an absolute virtual
// time. The kill is an event in the victim's own shard, ordered before any
// same-time deliveries from live senders (external injections sort first at
// equal times), so a statically scheduled crash lands identically at every
// width. This is how fault schedules are installed on the sharded runtime,
// replacing the plain path's synchronous Kill from the fault controller.
func (s *ShardedScheduler) KillAt(at Time, id ActorID) {
	a := s.actor(id)
	if at < s.low {
		at = s.low
	}
	s.injSeq++
	s.shards[a.shard].push(shardEvent{at: at, src: NoActor, seq: s.injSeq, to: id, kill: true}, a)
}

// push enqueues an event, maintaining the destination's pending count and
// the destination shard's live count. The caller must own the destination
// shard (its own shard during a window, or any shard between windows).
func (sh *shard) push(e shardEvent, a *shardActor) {
	a.pending++
	if !a.dead {
		sh.live++
	}
	sh.h.push(e)
}

// Empty reports whether no events remain queued on any shard. Outboxes are
// always drained at barriers, so between drive calls the heaps are the whole
// state.
func (s *ShardedScheduler) Empty() bool {
	for i := range s.shards {
		if s.shards[i].h.Len() != 0 {
			return false
		}
	}
	return true
}

// Pending returns the number of queued events destined for live actors,
// summed over shards in O(width).
func (s *ShardedScheduler) Pending() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].live
	}
	return n
}

// DeliveredCount returns the total events delivered across shards. Kill
// markers are internal and never counted, so the total matches the plain
// scheduler's accounting.
func (s *ShardedScheduler) DeliveredCount() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].delivered
	}
	return n
}

// DroppedCount returns the total events dropped on dead actors.
func (s *ShardedScheduler) DroppedCount() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].dropped
	}
	return n
}

// ShardBusy returns the summed virtual busy time of each shard's actors —
// the per-shard load-balance view the facade reports.
func (s *ShardedScheduler) ShardBusy() []Time {
	out := make([]Time, s.width)
	for i := range s.actors {
		a := &s.actors[i]
		out[a.shard] += a.busyTotal
	}
	return out
}

// send implements kernel for one shard. Intra-shard sends (and all sends
// while no window is running, e.g. under Step) go straight into the
// destination heap; cross-shard sends during a window are buffered in the
// outbox after the lookahead check and merged at the barrier.
func (k *shardKernel) send(from ActorID, at Time, to ActorID, msg Message) {
	s := k.s
	a := s.actor(to)
	sh := &s.shards[k.si]
	if at < sh.now {
		at = sh.now
	}
	src := &s.actors[from-1]
	src.sendSeq++
	e := shardEvent{at: at, src: from, seq: src.sendSeq, to: to, msg: msg}
	dst := int(a.shard)
	if dst == k.si || !s.inWindow {
		s.shards[dst].push(e, a)
		return
	}
	if at < sh.bound {
		panic("sim: cross-shard send from " + src.name + " to " + a.name +
			" arrives before the window bound; Horizon exceeds the minimum cross-shard latency")
	}
	sh.outbox[dst] = append(sh.outbox[dst], e)
}

func (k *shardKernel) kill(id ActorID) {
	s := k.s
	a := s.actor(id)
	if s.inWindow && int(a.shard) != k.si {
		panic("sim: cross-shard Kill of " + a.name + " during a window; pre-register it with KillAt")
	}
	s.Kill(id)
}

func (k *shardKernel) stop() { k.s.stopReq.Store(true) }

// minPending returns the earliest queued event time across shards.
func (s *ShardedScheduler) minPending() (Time, bool) {
	var t Time
	found := false
	for i := range s.shards {
		if e, ok := s.shards[i].h.peek(); ok && (!found || e.at < t) {
			t, found = e.at, true
		}
	}
	return t, found
}

// runWindow delivers every queued event with at < bound on one shard, in
// (at, src, seq) order, including events generated during the window that
// still fall inside it. It returns the number of events popped (delivered or
// dropped), excluding kill markers.
func (s *ShardedScheduler) runWindow(si int, bound Time) int {
	sh := &s.shards[si]
	n := 0
	for {
		e, ok := sh.h.peek()
		if !ok || e.at >= bound {
			return n
		}
		sh.h.pop()
		a := &s.actors[e.to-1]
		a.pending--
		if !a.dead {
			sh.live--
		}
		if e.kill {
			sh.now = e.at
			if !a.dead {
				a.dead = true
				sh.live -= a.pending
			}
			continue
		}
		s.deliverOn(sh, e, a)
		n++
	}
}

// deliverOn dispatches one popped event, mirroring Scheduler.deliver's
// busy-until semantics exactly.
func (s *ShardedScheduler) deliverOn(sh *shard, e shardEvent, a *shardActor) {
	sh.now = e.at
	if a.dead {
		sh.dropped++
		return
	}
	start := e.at
	if a.busyUntil > start {
		start = a.busyUntil
	}
	sh.ctx.self = e.to
	sh.ctx.local = start
	a.handler.Receive(&sh.ctx, e.msg)
	a.busyUntil = sh.ctx.local
	a.busyTotal += sh.ctx.local - start
	sh.delivered++
}

// exchange drains every outbox into the destination heaps. Heap order is
// purely key-determined, so insertion order does not matter; the lookahead
// invariant was already checked at send time.
func (s *ShardedScheduler) exchange() {
	moved := uint64(0)
	for si := range s.shards {
		sh := &s.shards[si]
		for di := range sh.outbox {
			box := sh.outbox[di]
			for i := range box {
				s.shards[di].push(box[i], &s.actors[box[i].to-1])
				box[i] = shardEvent{} // release the Message reference
			}
			sh.outbox[di] = box[:0]
			moved += uint64(len(box))
		}
	}
	s.crossMsgs += moved
}

// windowResult carries one shard's window outcome back to the coordinator.
type windowResult struct {
	n        int
	panicked any
}

// Run processes events in windows until the queue is empty, the next event's
// delivery time exceeds until, or Stop is called (taking effect at a window
// boundary). It returns the number of events processed. The window sequence
// — and therefore every observable outcome — is identical at every width.
func (s *ShardedScheduler) Run(until Time) int {
	if s.stopped || s.stopReq.Load() {
		s.stopped = true
		return 0
	}
	total := 0
	var jobs []chan Time
	var done chan windowResult
	if s.width > 1 {
		jobs = make([]chan Time, s.width)
		done = make(chan windowResult, s.width)
		for i := range jobs {
			jobs[i] = make(chan Time, 1)
			go s.worker(i, jobs[i], done)
		}
		defer func() {
			for i := range jobs {
				close(jobs[i])
			}
		}()
	}
	for {
		t, ok := s.minPending()
		if !ok || t > until {
			break
		}
		if t > s.low {
			s.low = t // skip idle gaps window-aligned to the next event
		}
		bound := s.low + s.horizon
		if until < bound-1 {
			bound = until + 1 // clip the final window so at == until is included
		}
		s.barriers++
		for i := range s.shards {
			s.shards[i].bound = bound
		}
		if s.width == 1 {
			total += s.runWindow(0, bound)
		} else {
			s.inWindow = true
			for i := range jobs {
				jobs[i] <- bound
			}
			var pan any
			for i := 0; i < s.width; i++ {
				r := <-done
				total += r.n
				if r.panicked != nil {
					pan = r.panicked
				}
			}
			s.inWindow = false
			if pan != nil {
				panic(pan)
			}
			s.exchange()
		}
		s.low = bound
		if s.stopReq.Load() {
			s.stopped = true
			break
		}
	}
	return total
}

// worker is one shard's event loop for the duration of a Run call: it waits
// for a window bound, runs the window, and reports back. Panics inside
// handlers are captured and re-raised by the coordinator after the barrier,
// so sibling shards finish their window and the runtime stays consistent.
func (s *ShardedScheduler) worker(si int, jobs <-chan Time, done chan<- windowResult) {
	for bound := range jobs {
		var r windowResult
		func() {
			defer func() { r.panicked = recover() }()
			r.n = s.runWindow(si, bound)
		}()
		done <- r
	}
}

// Drain runs until no events remain (no time bound).
func (s *ShardedScheduler) Drain() int {
	return s.Run(Time(1<<62 - 1))
}

// Step delivers exactly one event — the globally earliest by (at, src, seq)
// — and returns true, or returns false when every heap is empty or the
// runtime is stopped. Stepping is single-threaded: cross-shard sends route
// directly into the destination heap, and because the heap key totals the
// order, interleaving Step with windowed Run preserves determinism. Kill
// markers encountered on the way are applied and skipped.
func (s *ShardedScheduler) Step() bool {
	if s.stopped || s.stopReq.Load() {
		s.stopped = true
		return false
	}
	for {
		best := -1
		var bk shardEvent
		for i := range s.shards {
			if e, ok := s.shards[i].h.peek(); ok {
				if best < 0 || e.before(&bk) {
					best, bk = i, e
				}
			}
		}
		if best < 0 {
			return false
		}
		sh := &s.shards[best]
		e, _ := sh.h.pop()
		a := &s.actors[e.to-1]
		a.pending--
		if !a.dead {
			sh.live--
		}
		if e.at > s.low {
			s.low = e.at
		}
		if e.kill {
			sh.now = e.at
			if !a.dead {
				a.dead = true
				sh.live -= a.pending
			}
			continue
		}
		s.deliverOn(sh, e, a)
		return true
	}
}

func panicUnknownActor(id ActorID) {
	panic(fmt.Sprintf("sim: unknown actor %d", id))
}
