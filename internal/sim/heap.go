package sim

// eventHeap is a binary min-heap of events ordered by (at, seq). A hand
// rolled heap (rather than container/heap) avoids interface boxing on the
// hot path; the simulator delivers millions of events per benchmark run.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) peek() (event, bool) {
	if len(h.ev) == 0 {
		return event{}, false
	}
	return h.ev[0], true
}

func (h *eventHeap) pop() (event, bool) {
	if len(h.ev) == 0 {
		return event{}, false
	}
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ev) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.ev) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
	return top, true
}
