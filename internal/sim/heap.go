package sim

// eventHeap is a 4-ary min-heap of events ordered by (at, seq). A hand
// rolled heap (rather than container/heap) avoids interface boxing on the
// hot path; the simulator delivers millions of events per benchmark run.
//
// The 4-ary layout halves the sift-down depth of a binary heap: events are
// 40+ bytes, so the extra sibling comparisons stay inside one or two cache
// lines while every level saved is a (likely missed) random access. (at,
// seq) is a total order — seq is unique — so heap shape never affects pop
// order, which keeps the arity an implementation detail with no effect on
// simulation determinism.
type eventHeap struct {
	ev []event
}

// arity is the heap's branching factor. Children of node i are
// arity*i+1 .. arity*i+arity; the parent of node i is (i-1)/arity.
const arity = 4

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / arity
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) peek() (event, bool) {
	if len(h.ev) == 0 {
		return event{}, false
	}
	return h.ev[0], true
}

func (h *eventHeap) pop() (event, bool) {
	if len(h.ev) == 0 {
		return event{}, false
	}
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	// Zero the vacated tail slot: it holds a copy of the moved-from event,
	// whose Message (and everything it references) would otherwise be kept
	// alive by the backing array for as long as the heap lives.
	h.ev[last] = event{}
	h.ev = h.ev[:last]
	i := 0
	for {
		first := arity*i + 1
		if first >= len(h.ev) {
			break
		}
		end := first + arity
		if end > len(h.ev) {
			end = len(h.ev)
		}
		smallest := i
		for c := first; c < end; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
	return top, true
}
