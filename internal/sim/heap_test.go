package sim

import (
	"math/rand"
	"testing"
)

// TestPopZeroesVacatedSlot is the liveness regression test for the heap's
// moved-from tail element: pop used to leave it in the backing array, so the
// last-popped event's Message (and everything it references) stayed
// reachable — and uncollectable — for as long as the heap lived.
func TestPopZeroesVacatedSlot(t *testing.T) {
	var h eventHeap
	payloads := []*[]byte{}
	for i := 0; i < 16; i++ {
		p := make([]byte, 1)
		payloads = append(payloads, &p)
		h.push(event{at: Time(i), seq: uint64(i), to: 1, msg: &p})
	}
	for i := 0; i < 12; i++ {
		if _, ok := h.pop(); !ok {
			t.Fatal("pop failed")
		}
	}
	// Every slot beyond the live length must be fully zeroed.
	backing := h.ev[:cap(h.ev)]
	for i := len(h.ev); i < len(backing); i++ {
		if backing[i] != (event{}) {
			t.Fatalf("vacated slot %d still holds %+v", i, backing[i])
		}
	}
	_ = payloads
}

// TestHeapRandomPushPop interleaves pushes and pops and checks the pop
// sequence is always the (at, seq) minimum of what remains — the 4-ary
// sift-down must behave exactly like the binary one did.
func TestHeapRandomPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h eventHeap
	live := map[uint64]Time{}
	seq := uint64(0)
	for round := 0; round < 5000; round++ {
		if h.Len() == 0 || rng.Intn(3) != 0 {
			seq++
			at := Time(rng.Intn(50))
			h.push(event{at: at, seq: seq, to: 1})
			live[seq] = at
		} else {
			e, ok := h.pop()
			if !ok {
				t.Fatal("pop on non-empty heap failed")
			}
			// e must be the minimum of live by (at, seq).
			for s, at := range live {
				if at < e.at || (at == e.at && s < e.seq) {
					t.Fatalf("popped (%d,%d) but (%d,%d) was smaller", e.at, e.seq, at, s)
				}
			}
			delete(live, e.seq)
		}
	}
	prev := event{at: -1}
	for h.Len() > 0 {
		e, _ := h.pop()
		if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
			t.Fatalf("drain out of order: (%d,%d) after (%d,%d)", e.at, e.seq, prev.at, prev.seq)
		}
		prev = e
		delete(live, e.seq)
	}
	if len(live) != 0 {
		t.Fatalf("%d events lost", len(live))
	}
}

// TestActorAccessorsPanicOnUnknownID: every actor accessor must reject
// ActorID(0), negative and unregistered IDs with the scheduler's clear panic
// message, not a raw slice index error.
func TestActorAccessorsPanicOnUnknownID(t *testing.T) {
	s := New()
	s.Register("only", HandlerFunc(func(*Context, Message) {}))
	cases := []struct {
		name string
		call func(id ActorID)
	}{
		{"Handler", func(id ActorID) { s.Handler(id) }},
		{"Name", func(id ActorID) { s.Name(id) }},
		{"BusyTime", func(id ActorID) { s.BusyTime(id) }},
		{"Alive", func(id ActorID) { s.Alive(id) }},
		{"Kill", func(id ActorID) { s.Kill(id) }},
	}
	for _, tc := range cases {
		for _, id := range []ActorID{0, -1, 2, 99} {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s(%d) did not panic", tc.name, id)
					}
					if msg, ok := r.(string); !ok || msg != "sim: unknown actor "+itoa(int(id)) {
						t.Fatalf("%s(%d) panic = %v, want clear message", tc.name, id, r)
					}
				}()
				tc.call(id)
			}()
		}
	}
	// Valid IDs still work.
	if s.Name(1) != "only" || !s.Alive(1) {
		t.Fatal("valid actor rejected")
	}
}

// itoa avoids strconv in the panic-message comparison.
func itoa(v int) string {
	neg := v < 0
	if neg {
		v = -v
	}
	var b [8]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestStepAllocationFree pins the kernel's allocations per event at zero:
// once the heap's backing array has grown to its working size, delivering an
// event (pop, dispatch, push of the reply) must not allocate. This is the
// satellite regression gate for the ISSUE 4 kernel slimming.
func TestStepAllocationFree(t *testing.T) {
	s := New()
	var a1, a2 ActorID
	msg := &struct{ hops int }{}
	a1 = s.Register("a1", HandlerFunc(func(ctx *Context, m Message) {
		ctx.Spend(Microsecond)
		ctx.Send(a2, m, 10*Microsecond)
	}))
	a2 = s.Register("a2", HandlerFunc(func(ctx *Context, m Message) {
		ctx.Spend(Microsecond)
		ctx.Send(a1, m, 10*Microsecond)
	}))
	s.SendAt(0, a1, msg)
	// Warm the heap and scheduler state.
	for i := 0; i < 64; i++ {
		if !s.Step() {
			t.Fatal("ping-pong went quiescent")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if !s.Step() {
			t.Fatal("ping-pong went quiescent")
		}
	})
	if avg != 0 {
		t.Fatalf("Scheduler.Step allocates %.2f objects/event, want 0", avg)
	}
}
