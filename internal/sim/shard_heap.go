package sim

// shardHeap is the per-shard 4-ary min-heap, identical in layout to
// eventHeap but ordered by the width-independent (at, src, seq) key. A
// separate concrete type (rather than generics over a comparator) keeps both
// hot paths free of indirect calls.
type shardHeap struct {
	ev []shardEvent
}

func (h *shardHeap) Len() int { return len(h.ev) }

func (h *shardHeap) less(i, j int) bool {
	return h.ev[i].before(&h.ev[j])
}

func (h *shardHeap) push(e shardEvent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / arity
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *shardHeap) peek() (shardEvent, bool) {
	if len(h.ev) == 0 {
		return shardEvent{}, false
	}
	return h.ev[0], true
}

func (h *shardHeap) pop() (shardEvent, bool) {
	if len(h.ev) == 0 {
		return shardEvent{}, false
	}
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	// Zero the vacated slot so the backing array does not pin the Message.
	h.ev[last] = shardEvent{}
	h.ev = h.ev[:last]
	i := 0
	for {
		first := arity*i + 1
		if first >= len(h.ev) {
			break
		}
		end := first + arity
		if end > len(h.ev) {
			end = len(h.ev)
		}
		smallest := i
		for c := first; c < end; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
	return top, true
}
