package elastic

import (
	"reflect"
	"testing"

	"specdb/internal/msg"
)

// TestPlaceIdentity pins the zero/nil router: identity placement, inactive,
// epoch zero.
func TestPlaceIdentity(t *testing.T) {
	var nilR *Router
	for _, r := range []*Router{New(), nilR} {
		if r.Active() {
			t.Fatal("empty router reports Active")
		}
		if r.Epoch() != 0 {
			t.Fatalf("empty router epoch = %d", r.Epoch())
		}
		if got := r.Place(3, "any"); got != 3 {
			t.Fatalf("identity Place = %d, want 3", got)
		}
	}
}

// TestPlaceSingleMove pins half-open range semantics including the unbounded
// empty Hi.
func TestPlaceSingleMove(t *testing.T) {
	r := New()
	r.Add(Move{From: 0, To: 2, Lo: "k10", Hi: "k20"})
	if !r.Active() || r.Epoch() != 1 {
		t.Fatalf("Active=%v Epoch=%d after one move", r.Active(), r.Epoch())
	}
	cases := []struct {
		logical msg.PartitionID
		key     string
		want    msg.PartitionID
	}{
		{0, "k10", 2}, // Lo inclusive
		{0, "k15", 2},
		{0, "k20", 0}, // Hi exclusive
		{0, "k05", 0}, // below range
		{1, "k15", 1}, // wrong source partition
	}
	for _, tc := range cases {
		if got := r.Place(tc.logical, tc.key); got != tc.want {
			t.Errorf("Place(%d, %q) = %d, want %d", tc.logical, tc.key, got, tc.want)
		}
	}
	r2 := New()
	r2.Add(Move{From: 1, To: 0, Lo: "m", Hi: ""})
	if got := r2.Place(1, "zzz"); got != 0 {
		t.Errorf("unbounded Hi: Place = %d, want 0", got)
	}
	if got := r2.Place(1, "a"); got != 1 {
		t.Errorf("below unbounded move: Place = %d, want 1", got)
	}
}

// TestPlaceChainedMoves pins epoch-order replay: a key follows every move
// whose source matches its current location, so a later split of the
// destination carries previously migrated keys onward.
func TestPlaceChainedMoves(t *testing.T) {
	r := New()
	r.Add(Move{From: 0, To: 1, Lo: "k10", Hi: "k30"}) // epoch 1
	r.Add(Move{From: 1, To: 2, Lo: "k20", Hi: ""})    // epoch 2 splits partition 1
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", r.Epoch())
	}
	cases := []struct {
		key  string
		want msg.PartitionID
	}{
		{"k15", 1}, // first hop only
		{"k25", 2}, // both hops
		{"k35", 0}, // neither
	}
	for _, tc := range cases {
		if got := r.Place(0, tc.key); got != tc.want {
			t.Errorf("Place(0, %q) = %d, want %d", tc.key, got, tc.want)
		}
	}
	// Native partition-1 keys in the split range move too.
	if got := r.Place(1, "k40"); got != 2 {
		t.Errorf("Place(1, k40) = %d, want 2", got)
	}
}

// TestMovesCopies pins that Moves returns a defensive copy.
func TestMovesCopies(t *testing.T) {
	r := New()
	m := Move{From: 0, To: 1, Lo: "a", Hi: "b"}
	r.Add(m)
	got := r.Moves()
	if !reflect.DeepEqual(got, []Move{m}) {
		t.Fatalf("Moves = %+v", got)
	}
	got[0].To = 9
	if r.Place(0, "a") != 1 {
		t.Fatal("mutating the Moves copy changed routing")
	}
	if (*Router)(nil).Moves() != nil {
		t.Fatal("nil router Moves not nil")
	}
}
