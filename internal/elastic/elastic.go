// Package elastic implements the routing side of live repartitioning: a
// key→partition map that starts as the identity over the static layout and
// accumulates key-range moves as migrations cut over.
//
// The paper's H-Store design (§2) fixes the partition map at deployment;
// elasticity keeps the partition set fixed but lets ownership of key ranges
// move between partitions while the cluster runs. A Router holds the ordered
// list of committed moves — one per migration cutover, so the list length
// doubles as the routing epoch — and resolves a (logical partition, key)
// pair to the partition that physically owns the row now.
//
// Resolution replays the moves in commit order: a key's location starts at
// its logical (generator-assigned) partition and follows every move whose
// source matches its current location and whose half-open range [Lo, Hi)
// contains the key (empty Hi is unbounded). Replaying the full chain makes
// chained migrations exact: if range R moved 0→1 and later a range of
// partition 1 containing part of R moved 1→2, both hops apply. Moves are
// committed only at a drained quiescent point (no transaction in flight
// anywhere), so readers never observe a half-applied epoch.
//
// The zero Router routes identically to the static layout and is safe to
// consult on every issue: Place is allocation-free, and Active lets hot
// paths skip the replay entirely until a first migration commits.
package elastic

import "specdb/internal/msg"

// Move is one committed key-range migration: keys in [Lo, Hi) whose current
// physical location is From belong to To from this epoch on. An empty Hi
// means unbounded above.
type Move struct {
	From msg.PartitionID
	To   msg.PartitionID
	Lo   string
	Hi   string
}

// Contains reports whether key is inside the move's half-open range.
func (m Move) Contains(key string) bool {
	return key >= m.Lo && (m.Hi == "" || key < m.Hi)
}

// Router resolves keys to their current physical partition. It is built by
// the facade, shared with the workload generator, and mutated only at
// migration cutover points (between transactions); it is not safe for
// concurrent mutation, matching the single-driver DB contract.
type Router struct {
	moves []Move
}

// New returns an identity router (no moves committed).
func New() *Router { return &Router{} }

// Active reports whether any move has been committed. Generators use it as
// the fast-path guard: an inactive router never changes placement, so the
// pre-routed request can be issued untouched.
func (r *Router) Active() bool { return r != nil && len(r.moves) > 0 }

// Epoch returns the routing epoch: the number of committed moves. Each
// migration cutover advances it by one.
func (r *Router) Epoch() int {
	if r == nil {
		return 0
	}
	return len(r.moves)
}

// Add commits a move, advancing the routing epoch.
func (r *Router) Add(m Move) { r.moves = append(r.moves, m) }

// Moves returns a copy of the committed moves in epoch order (inspection).
func (r *Router) Moves() []Move {
	if r == nil {
		return nil
	}
	return append([]Move(nil), r.moves...)
}

// Place resolves the physical partition for a key whose logical
// (generator-assigned) home is logical, by replaying every committed move in
// epoch order. It allocates nothing.
func (r *Router) Place(logical msg.PartitionID, key string) msg.PartitionID {
	if r == nil {
		return logical
	}
	phys := logical
	for _, m := range r.moves {
		if phys == m.From && m.Contains(key) {
			phys = m.To
		}
	}
	return phys
}
