package partition

import (
	"testing"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// incProc increments the key named by the work payload.
type incProc struct{}

func (incProc) Name() string { return "inc" }
func (incProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	panic("unused")
}
func (incProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	panic("unused")
}
func (incProc) Run(view *storage.TxnView, w any) (any, error) {
	k := w.(string)
	v, _ := view.GetForUpdate("t", k)
	n := int64(0)
	if v != nil {
		n = v.(int64)
	}
	view.Put("t", k, n+1)
	return n + 1, nil
}
func (incProc) Output(args any, final []msg.FragmentResult) any { return nil }

type sink struct {
	msgs  []sim.Message
	times []sim.Time
}

func (s *sink) Receive(ctx *sim.Context, m sim.Message) {
	s.msgs = append(s.msgs, m)
	s.times = append(s.times, ctx.Now())
}

type fixture struct {
	s      *sim.Scheduler
	part   *Partition
	partID sim.ActorID
	client *sink
	cliID  sim.ActorID
	coord  *sink
	coID   sim.ActorID
	backup *sink
	bkID   sim.ActorID
	cm     costs.Model
}

// newFixture wires a real partition (blocking engine) to sink actors. The
// backup sink does NOT auto-ack, so tests control ack timing.
func newFixture(t *testing.T, withBackup bool) *fixture {
	t.Helper()
	f := &fixture{s: sim.New(), cm: costs.Default()}
	reg := txn.NewRegistry()
	reg.Register(incProc{})
	store := storage.NewStore()
	store.AddTable(storage.NewHashTable("t"))
	net := simnet.New(f.cm.OneWayLatency)
	f.part = New(Config{ID: 0, Store: store, Registry: reg, Costs: &f.cm, Net: net})
	f.partID = f.s.Register("part", f.part)
	f.client = &sink{}
	f.cliID = f.s.Register("client", f.client)
	f.coord = &sink{}
	f.coID = f.s.Register("coord", f.coord)
	if withBackup {
		f.backup = &sink{}
		f.bkID = f.s.Register("backup", f.backup)
		f.part.SetBackups([]sim.ActorID{f.bkID})
	}
	f.part.Bind(f.partID, func(env core.Env) core.Engine { return core.NewBlocking(env) })
	return f
}

func (f *fixture) spFragment(id uint64) *msg.Fragment {
	return &msg.Fragment{
		Txn: msg.TxnID(id), Proc: "inc", Last: true, Work: "x",
		Client: f.cliID, Coord: f.cliID,
	}
}

func (f *fixture) mpFragment(id uint64) *msg.Fragment {
	return &msg.Fragment{
		Txn: msg.TxnID(id), Proc: "inc", Last: true, Work: "x",
		Client: f.cliID, Coord: f.coID, MultiPartition: true,
	}
}

func TestExecutionChargesCost(t *testing.T) {
	f := newFixture(t, false)
	f.s.SendAt(0, f.partID, f.spFragment(1))
	f.s.Drain()
	// One increment: 2 row ops at 1µs + 40µs base = 42µs.
	want := f.cm.Fragment("inc", 2, 1, 0, false)
	if got := f.s.BusyTime(f.partID); got != want {
		t.Fatalf("busy = %v, want %v", got, want)
	}
	if len(f.client.msgs) != 1 {
		t.Fatalf("client msgs = %d", len(f.client.msgs))
	}
}

func TestInjectedAbortCheap(t *testing.T) {
	f := newFixture(t, false)
	fr := f.spFragment(1)
	fr.InjectAbort = true
	f.s.SendAt(0, f.partID, fr)
	f.s.Drain()
	if got := f.s.BusyTime(f.partID); got != f.cm.AbortedFragment {
		t.Fatalf("busy = %v, want %v", got, f.cm.AbortedFragment)
	}
	r := f.client.msgs[0].(*msg.ClientReply)
	if r.Committed || !r.UserAborted {
		t.Fatalf("reply = %+v", r)
	}
}

func TestSPReplyGatedOnBackupAck(t *testing.T) {
	f := newFixture(t, true)
	f.s.SendAt(0, f.partID, f.spFragment(1))
	f.s.Drain()
	// Forward went to the backup, but no ack yet: no client reply.
	if len(f.backup.msgs) != 1 {
		t.Fatalf("backup msgs = %d", len(f.backup.msgs))
	}
	fw := f.backup.msgs[0].(*msg.ReplicaForward)
	if !fw.Committed || len(fw.Works) != 1 {
		t.Fatalf("forward = %+v", fw)
	}
	if len(f.client.msgs) != 0 {
		t.Fatal("reply sent before backup ack")
	}
	// Ack releases the reply.
	f.s.SendAt(f.s.Now(), f.partID, &msg.ReplicaAck{Txn: 1, Seq: fw.Seq, From: f.bkID})
	f.s.Drain()
	if len(f.client.msgs) != 1 {
		t.Fatal("reply not released by ack")
	}
}

func TestMPVoteGatedOnBackupAck(t *testing.T) {
	f := newFixture(t, true)
	f.s.SendAt(0, f.partID, f.mpFragment(2))
	f.s.Drain()
	if len(f.coord.msgs) != 0 {
		t.Fatal("vote sent before backup ack")
	}
	fw := f.backup.msgs[0].(*msg.ReplicaForward)
	if fw.Committed {
		t.Fatal("prepared forward marked committed")
	}
	f.s.SendAt(f.s.Now(), f.partID, &msg.ReplicaAck{Txn: 2, Seq: fw.Seq, From: f.bkID})
	f.s.Drain()
	if len(f.coord.msgs) != 1 {
		t.Fatal("vote not released")
	}
	if r := f.coord.msgs[0].(*msg.FragmentResult); r.Aborted {
		t.Fatalf("vote = %+v", r)
	}
}

func TestDecisionForwardPrecedesReleasedWork(t *testing.T) {
	f := newFixture(t, true)
	f.s.SendAt(0, f.partID, f.mpFragment(2))
	f.s.Drain()
	fw := f.backup.msgs[0].(*msg.ReplicaForward)
	f.s.SendAt(f.s.Now(), f.partID, &msg.ReplicaAck{Txn: 2, Seq: fw.Seq, From: f.bkID})
	f.s.Drain()
	// Queue an SP transaction behind the MP one, then commit the MP txn:
	// the backup must see the ReplicaDecision BEFORE the SP's forward.
	f.s.SendAt(f.s.Now(), f.partID, f.spFragment(3))
	f.s.Drain()
	f.s.SendAt(f.s.Now(), f.partID, &msg.Decision{Txn: 2, Commit: true})
	f.s.Drain()
	var kinds []string
	for _, m := range f.backup.msgs {
		switch m.(type) {
		case *msg.ReplicaForward:
			kinds = append(kinds, "fwd")
		case *msg.ReplicaDecision:
			kinds = append(kinds, "dec")
		}
	}
	want := []string{"fwd", "dec", "fwd"}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("backup message order = %v, want %v", kinds, want)
	}
}

func TestStaleAckIgnored(t *testing.T) {
	f := newFixture(t, true)
	f.s.SendAt(0, f.partID, f.spFragment(1))
	f.s.Drain()
	fw := f.backup.msgs[0].(*msg.ReplicaForward)
	// Wrong sequence: must not release.
	f.s.SendAt(f.s.Now(), f.partID, &msg.ReplicaAck{Txn: 1, Seq: fw.Seq + 7, From: f.bkID})
	f.s.Drain()
	if len(f.client.msgs) != 0 {
		t.Fatal("stale ack released reply")
	}
}

func TestAbortedMPNotForwarded(t *testing.T) {
	f := newFixture(t, true)
	fr := f.mpFragment(4)
	fr.InjectAbort = true
	f.s.SendAt(0, f.partID, fr)
	f.s.Drain()
	// No-vote goes straight out (nothing to make durable).
	if len(f.backup.msgs) != 0 {
		t.Fatal("aborted transaction forwarded to backup")
	}
	if len(f.coord.msgs) != 1 || !f.coord.msgs[0].(*msg.FragmentResult).Aborted {
		t.Fatalf("coord msgs = %+v", f.coord.msgs)
	}
}

func TestGenTracking(t *testing.T) {
	f := newFixture(t, false)
	fr := f.mpFragment(1)
	fr.Gen = 5
	f.s.SendAt(0, f.partID, fr)
	f.s.Drain()
	r := f.coord.msgs[0].(*msg.FragmentResult)
	if r.Gen != 5 {
		t.Fatalf("result gen = %d, want 5", r.Gen)
	}
}

func TestSwapEngineRequiresQuiescence(t *testing.T) {
	f := newFixture(t, false)
	// A multi-partition transaction occupies the engine until its 2PC
	// decision arrives; swapping mid-transaction must fail.
	f.s.SendAt(0, f.partID, f.mpFragment(1))
	f.s.Drain()
	specFactory := func(env core.Env) core.Engine { return core.NewSpeculative(env) }
	if err := f.part.SwapEngine(specFactory); err == nil {
		t.Fatal("swap succeeded with a transaction awaiting its decision")
	}
	f.s.SendAt(f.s.Now(), f.partID, &msg.Decision{Txn: 1, Commit: true})
	f.s.Drain()
	if !f.part.Quiescent() {
		t.Fatal("partition not quiescent after decision")
	}
	if got := f.part.EngineTotals().Executed; got != 1 {
		t.Fatalf("executed = %d, want 1", got)
	}
	if err := f.part.SwapEngine(specFactory); err != nil {
		t.Fatal(err)
	}
	if got := f.part.Engine().Scheme(); got != core.SchemeSpeculative {
		t.Fatalf("scheme after swap = %v", got)
	}
	// Counters from the retired engine survive; new work stacks on top.
	f.s.SendAt(f.s.Now(), f.partID, f.spFragment(2))
	f.s.Drain()
	if got := f.part.EngineTotals().Executed; got != 2 {
		t.Fatalf("executed after swap = %d, want 2", got)
	}
}
