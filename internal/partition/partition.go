// Package partition implements the partition primary process (§3.1): a
// single-threaded actor owning one data partition, running one of the
// concurrency control engines from internal/core, and speaking to clients,
// the central coordinator and its backup replicas.
//
// The partition is the concrete implementation of core.Env: it executes
// fragment bodies against its store, owns undo buffers, prices CPU charges
// through the cost model, and gates outgoing votes and replies on backup
// acknowledgments when replication is enabled (§3.2/§3.3: sending the
// transaction to the backups "is equivalent to forcing the participant's 2PC
// vote to disk").
package partition

import (
	"fmt"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/locks"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
	"specdb/internal/undo"
)

// timerMsg wraps engine timer payloads.
type timerMsg struct{ payload any }

// Config assembles a partition.
type Config struct {
	ID       msg.PartitionID
	Store    *storage.Store
	Registry *txn.Registry
	Costs    *costs.Model
	Net      *simnet.Net
	// Backups are the replica actors for this partition (may be empty).
	Backups []sim.ActorID
}

// Partition is the primary process for one partition.
type Partition struct {
	cfg    Config
	engine core.Engine
	// retired and retiredLocks accumulate the stats of engines replaced by
	// SwapEngine, so whole-run counters survive adaptive scheme switches.
	retired      core.EngineStats
	retiredLocks locks.Stats
	self         sim.ActorID
	ctx          *sim.Context // valid only during Receive

	undos map[msg.TxnID]*undo.Buffer
	// works accumulates executed fragment inputs per transaction for
	// replica forwarding.
	works map[msg.TxnID]*workLog
	// pending holds votes/replies gated on backup acks.
	pending map[msg.TxnID]*pendingSend
	fwdSeq  uint32
	// genSeen is the latest coordinator abort-generation observed.
	genSeen uint32

	// Stats
	FragmentsIn  uint64
	DecisionsIn  uint64
	ResultsOut   uint64
	RepliesOut   uint64
	ForwardsOut  uint64
	ExecNanosCPU sim.Time // total CPU charged for execution
}

type workLog struct {
	proc  string
	works []any
	rows  int
	wr    int
}

type pendingSend struct {
	seq     uint32
	waiting int
	send    func()
}

// New builds a partition; call Bind with the actor ID and an engine factory
// after registering it with the scheduler.
func New(cfg Config) *Partition {
	return &Partition{
		cfg:     cfg,
		undos:   make(map[msg.TxnID]*undo.Buffer),
		works:   make(map[msg.TxnID]*workLog),
		pending: make(map[msg.TxnID]*pendingSend),
	}
}

// Bind attaches the actor identity and constructs the engine via factory
// (which needs the partition as its Env).
func (p *Partition) Bind(self sim.ActorID, factory func(env core.Env) core.Engine) {
	p.self = self
	p.engine = factory(p)
}

// SetBackups installs the replica actor IDs; backups register after the
// primary because they need its ID for acknowledgments.
func (p *Partition) SetBackups(ids []sim.ActorID) {
	p.cfg.Backups = ids
}

// Engine exposes the concurrency control engine (for stats).
func (p *Partition) Engine() core.Engine { return p.engine }

// EngineTotals returns scheme-level counters accumulated across every engine
// this partition has run, including engines retired by SwapEngine.
func (p *Partition) EngineTotals() core.EngineStats {
	return p.retired.Add(p.engine.Stats())
}

// LockTotals returns lock-manager counters accumulated across every locking
// engine this partition has run (retired ones included), plus whether any
// locking engine has run at all.
func (p *Partition) LockTotals() (locks.Stats, bool) {
	tot := p.retiredLocks
	ran := tot != (locks.Stats{})
	if le, ok := p.engine.(*core.LockEngine); ok {
		tot = tot.Add(le.LockStats())
		ran = true
	}
	return tot, ran
}

// Quiescent reports whether the partition holds no transaction state: the
// engine is quiescent and no undo buffers, replica forwards or gated sends
// are outstanding. Only at such a point may the engine be swapped.
func (p *Partition) Quiescent() bool {
	return p.engine.Quiescent() && len(p.undos) == 0 && len(p.works) == 0 && len(p.pending) == 0
}

// SwapEngine retires the current engine and constructs a replacement via
// factory, handing it the partition's store, undo ledger and replication
// gating (all owned by the partition, which is the engine's Env). The
// retired engine's counters are folded into EngineTotals. SwapEngine fails
// unless the partition is quiescent — callers must drain in-flight
// transactions first (see the facade's SetScheme).
func (p *Partition) SwapEngine(factory func(env core.Env) core.Engine) error {
	if !p.Quiescent() {
		return fmt.Errorf("partition %d: engine swap while not quiescent (undos=%d works=%d pending=%d engine=%v)",
			p.cfg.ID, len(p.undos), len(p.works), len(p.pending), p.engine.Quiescent())
	}
	p.retired = p.retired.Add(p.engine.Stats())
	if le, ok := p.engine.(*core.LockEngine); ok {
		p.retiredLocks = p.retiredLocks.Add(le.LockStats())
	}
	p.engine = factory(p)
	return nil
}

// Store exposes the partition store (for test verification).
func (p *Partition) Store() *storage.Store { return p.cfg.Store }

// Receive dispatches messages to the engine.
func (p *Partition) Receive(ctx *sim.Context, m sim.Message) {
	p.ctx = ctx
	defer func() { p.ctx = nil }()
	switch v := m.(type) {
	case *msg.Fragment:
		p.FragmentsIn++
		if v.Gen > p.genSeen {
			p.genSeen = v.Gen
		}
		p.engine.Fragment(v)
	case *msg.Decision:
		p.DecisionsIn++
		if v.Gen > p.genSeen {
			p.genSeen = v.Gen
		}
		// Resolve buffered multi-partition forwards at the backups
		// BEFORE the engine reacts: committing the decision may release
		// speculated single-partition transactions whose forwards must
		// follow this transaction on the (FIFO) backup link, preserving
		// the primary's commit order at the backups.
		if len(p.cfg.Backups) > 0 {
			for _, b := range p.cfg.Backups {
				p.cfg.Net.Send(ctx, b, &msg.ReplicaDecision{Txn: v.Txn, Commit: v.Commit})
			}
		}
		p.engine.Decision(v)
	case *msg.ReplicaAck:
		p.ackArrived(v)
	case timerMsg:
		p.engine.Timer(v.payload)
	default:
		panic(fmt.Sprintf("partition %d: unexpected message %T", p.cfg.ID, m))
	}
}

// --- core.Env implementation ---

// Execute runs a fragment body, charging virtual CPU per the cost model.
func (p *Partition) Execute(f *msg.Fragment, withUndo bool, locker storage.Locker) core.ExecOutcome {
	if f.InjectAbort {
		p.spend(p.cfg.Costs.AbortedFragment)
		p.Rollback(f.Txn)
		return core.ExecOutcome{Aborted: true}
	}
	var buf *undo.Buffer
	if withUndo {
		buf = p.undos[f.Txn]
		if buf == nil {
			buf = undo.New()
			p.undos[f.Txn] = buf
		}
	}
	view := storage.NewTxnView(p.cfg.Store, buf, locker)
	proc := p.cfg.Registry.Get(f.Proc)
	out, err := proc.Run(view, f.Work)
	cost := p.cfg.Costs.Fragment(f.Proc, view.Reads+view.Writes, view.Writes, view.LockAcquires, withUndo)
	p.spend(cost)
	p.ExecNanosCPU += cost
	if err != nil {
		if buf != nil {
			buf.Rollback()
		}
		return core.ExecOutcome{Output: out, Aborted: true}
	}
	// Log the work for replica forwarding.
	if len(p.cfg.Backups) > 0 {
		wl := p.works[f.Txn]
		if wl == nil {
			wl = &workLog{proc: f.Proc}
			p.works[f.Txn] = wl
		}
		wl.works = append(wl.works, f.Work)
		wl.rows += view.Reads + view.Writes
		wl.wr += view.Writes
	}
	return core.ExecOutcome{Output: out}
}

// Rollback undoes a transaction's local effects.
func (p *Partition) Rollback(id msg.TxnID) {
	if buf := p.undos[id]; buf != nil {
		buf.Rollback()
	}
	delete(p.works, id)
}

// Forget drops undo and forwarding state.
func (p *Partition) Forget(id msg.TxnID) {
	delete(p.undos, id)
}

// SendResult returns a fragment result to its coordinator, forwarding to
// backups first when this is a clean vote (the prepare is piggybacked on the
// last fragment, §3.3).
func (p *Partition) SendResult(f *msg.Fragment, r *msg.FragmentResult) {
	r.Gen = p.genSeen
	p.ResultsOut++
	if len(p.cfg.Backups) > 0 && f.Last && f.MultiPartition && !r.Aborted {
		p.forwardThenSend(f.Txn, false, func() {
			p.cfg.Net.Send(p.ctx, f.Coord, r)
		})
		return
	}
	p.cfg.Net.Send(p.ctx, f.Coord, r)
}

// ReplyClient completes a single-partition transaction, forwarding committed
// work to backups first ("the result of the transaction is sent to the
// client [when] all acknowledgments from the backups are received", §3.2).
func (p *Partition) ReplyClient(f *msg.Fragment, reply *msg.ClientReply) {
	p.RepliesOut++
	if len(p.cfg.Backups) > 0 && reply.Committed {
		p.forwardThenSend(f.Txn, true, func() {
			p.cfg.Net.Send(p.ctx, f.Client, reply)
		})
		return
	}
	p.cfg.Net.Send(p.ctx, f.Client, reply)
}

// After arms an engine timer.
func (p *Partition) After(d sim.Time, payload any) {
	p.ctx.After(d, timerMsg{payload})
}

// ChargeDecision prices 2PC outcome processing.
func (p *Partition) ChargeDecision() {
	p.spend(p.cfg.Costs.Decision)
}

func (p *Partition) spend(d sim.Time) { p.ctx.Spend(d) }

// forwardThenSend ships the transaction's executed work to every backup and
// holds send until all acks arrive. A re-forward (speculative re-execution
// after a cascade) supersedes the previous one.
func (p *Partition) forwardThenSend(id msg.TxnID, committed bool, send func()) {
	wl := p.works[id]
	if wl == nil {
		// Read-only transaction with no logged work still forwards (the
		// backups advance their sequence); synthesize an empty log.
		wl = &workLog{}
	}
	delete(p.works, id)
	p.fwdSeq++
	fw := &msg.ReplicaForward{Txn: id, Proc: wl.proc, Works: wl.works, Committed: committed, Seq: p.fwdSeq}
	for _, b := range p.cfg.Backups {
		p.cfg.Net.Send(p.ctx, b, fw)
	}
	p.ForwardsOut++
	p.pending[id] = &pendingSend{seq: p.fwdSeq, waiting: len(p.cfg.Backups), send: send}
}

func (p *Partition) ackArrived(a *msg.ReplicaAck) {
	ps := p.pending[a.Txn]
	if ps == nil || ps.seq != a.Seq {
		return // stale ack from a superseded forward
	}
	ps.waiting--
	if ps.waiting > 0 {
		return
	}
	delete(p.pending, a.Txn)
	ps.send()
}
