// Package partition implements the partition primary process (§3.1): a
// single-threaded actor owning one data partition, running one of the
// concurrency control engines from internal/core, and speaking to clients,
// the central coordinator and its backup replicas.
//
// The partition is the concrete implementation of core.Env: it executes
// fragment bodies against its store, owns undo buffers, prices CPU charges
// through the cost model, and gates outgoing votes and replies on backup
// acknowledgments when replication is enabled (§3.2/§3.3: sending the
// transaction to the backups "is equivalent to forcing the participant's 2PC
// vote to disk").
package partition

import (
	"fmt"
	"sort"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/durable"
	"specdb/internal/locks"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/oracle"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
	"specdb/internal/undo"
)

// timerMsg wraps engine timer payloads.
type timerMsg struct{ payload any }

// pulseTick and probeTick drive the heartbeat loop and the backup failure
// detector (fault-injection runs only).
type (
	pulseTick struct{}
	probeTick struct{}
)

// Config assembles a partition.
type Config struct {
	ID       msg.PartitionID
	Store    *storage.Store
	Registry *txn.Registry
	Costs    *costs.Model
	Net      *simnet.Net
	// Backups are the replica actors for this partition (may be empty).
	Backups []sim.ActorID
	// Logger is the partition's command log (nil when durability is off).
	// Appends happen at exactly the replica-forward points and gate the
	// same sends: the log is a disk-backed replica (see internal/durable).
	Logger *durable.Logger

	// Heartbeat and DetectTimeout parameterize the failure detector; they
	// are only consulted after a StartPulse/StartMonitor message, which the
	// facade sends when fault injection is enabled.
	Heartbeat     sim.Time
	DetectTimeout sim.Time
	// Rec records failover events (may be nil outside fault runs).
	Rec *metrics.Collector

	// History, when non-nil, records every committed transaction's value
	// trace and this partition's commit order for the serializability
	// oracle (internal/oracle). Test-only: production runs leave it nil,
	// which costs one pointer check per execution.
	History *oracle.PartitionHistory
}

// Partition is the primary process for one partition.
type Partition struct {
	cfg    Config
	engine core.Engine
	// retired and retiredLocks accumulate the stats of engines replaced by
	// SwapEngine, so whole-run counters survive adaptive scheme switches.
	retired      core.EngineStats
	retiredLocks locks.Stats
	self         sim.ActorID
	ctx          *sim.Context // valid only during Receive

	undos map[msg.TxnID]*undo.Buffer
	// undoFree recycles undo buffers: Forget returns a transaction's buffer
	// (cleared, capacity kept) and Execute hands it to the next transaction,
	// so steady-state undo recording allocates nothing. Safe because Forget
	// is only reached after any fiber running the transaction has unwound.
	undoFree []*undo.Buffer
	// view is the reusable fragment execution view for synchronous
	// executions (nil Locker). Lock-acquiring executions run on fibers that
	// can suspend mid-fragment — several may be in flight — so they get
	// fresh views instead.
	view storage.TxnView
	// works accumulates executed fragment inputs per transaction for
	// replica forwarding.
	works map[msg.TxnID]*workLog
	// pending holds votes/replies gated on backup acks and log durability.
	pending map[msg.TxnID]*pendingSend
	fwdSeq  uint32
	// nextCkptAt and ckptPending drive the lazy fuzzy-checkpoint trigger:
	// no timer events — checkpoint boundaries are checked on normal message
	// flow, and an overdue checkpoint fires at the next quiescent point.
	nextCkptAt  sim.Time
	ckptPending bool
	// genSeen is the latest coordinator abort-generation observed.
	genSeen uint32

	// Failure detection (fault-injection runs): the primary pulses its
	// backups so they can detect a primary crash, and monitors their
	// heartbeats so it can detach a crashed backup and release the votes
	// and replies gated on its acknowledgments.
	pulsing    bool
	monitoring bool
	lastHeard  map[sim.ActorID]sim.Time
	rank       map[sim.ActorID]int // 1-based backup index, for metrics

	// Stats
	FragmentsIn  uint64
	DecisionsIn  uint64
	ResultsOut   uint64
	RepliesOut   uint64
	ForwardsOut  uint64
	ExecNanosCPU sim.Time // total CPU charged for execution

	// MigrationsIn counts completed inbound key-range migrations; the facade
	// polls it to detect that a shipped range has been installed.
	// RowsMigratedIn/RowsMigratedOut count the rows that moved.
	MigrationsIn    uint64
	RowsMigratedIn  uint64
	RowsMigratedOut uint64
}

type workLog struct {
	proc  string
	works []any
	rows  int
	wr    int
}

type pendingSend struct {
	seq uint32
	// awaiting holds the backups whose acknowledgment is still missing;
	// the gated send fires when it empties — by acks arriving, or by a
	// crashed backup being detached — AND the log record (if any) is
	// durable.
	awaiting map[sim.ActorID]bool
	// logWait is set while the transaction's command-log record awaits its
	// group-commit batch; logRec keys the release (a speculative
	// re-execution appends a fresh record, superseding the old gate).
	logWait bool
	logRec  int
	send    func()
}

// ready reports whether every gate has cleared.
func (ps *pendingSend) ready() bool { return len(ps.awaiting) == 0 && !ps.logWait }

// New builds a partition; call Bind with the actor ID and an engine factory
// after registering it with the scheduler.
func New(cfg Config) *Partition {
	return &Partition{
		cfg:     cfg,
		undos:   make(map[msg.TxnID]*undo.Buffer),
		works:   make(map[msg.TxnID]*workLog),
		pending: make(map[msg.TxnID]*pendingSend),
	}
}

// Bind attaches the actor identity and constructs the engine via factory
// (which needs the partition as its Env).
func (p *Partition) Bind(self sim.ActorID, factory func(env core.Env) core.Engine) {
	p.self = self
	p.engine = factory(p)
}

// SetBackups installs the replica actor IDs; backups register after the
// primary because they need its ID for acknowledgments.
func (p *Partition) SetBackups(ids []sim.ActorID) {
	p.cfg.Backups = ids
	p.rank = make(map[sim.ActorID]int, len(ids))
	for i, id := range ids {
		p.rank[id] = i + 1
	}
}

// Engine exposes the concurrency control engine (for stats).
func (p *Partition) Engine() core.Engine { return p.engine }

// EngineTotals returns scheme-level counters accumulated across every engine
// this partition has run, including engines retired by SwapEngine.
func (p *Partition) EngineTotals() core.EngineStats {
	return p.retired.Add(p.engine.Stats())
}

// LockTotals returns lock-manager counters accumulated across every locking
// engine this partition has run (retired ones included), plus whether any
// locking engine has run at all.
func (p *Partition) LockTotals() (locks.Stats, bool) {
	tot := p.retiredLocks
	ran := tot != (locks.Stats{})
	if le, ok := p.engine.(*core.LockEngine); ok {
		tot = tot.Add(le.LockStats())
		ran = true
	}
	return tot, ran
}

// Quiescent reports whether the partition holds no transaction state: the
// engine is quiescent and no undo buffers, replica forwards or gated sends
// are outstanding. Only at such a point may the engine be swapped.
func (p *Partition) Quiescent() bool {
	return p.engine.Quiescent() && len(p.undos) == 0 && len(p.works) == 0 && len(p.pending) == 0
}

// SwapEngine retires the current engine and constructs a replacement via
// factory, handing it the partition's store, undo ledger and replication
// gating (all owned by the partition, which is the engine's Env). The
// retired engine's counters are folded into EngineTotals. SwapEngine fails
// unless the partition is quiescent — callers must drain in-flight
// transactions first (see the facade's SetScheme).
func (p *Partition) SwapEngine(factory func(env core.Env) core.Engine) error {
	if !p.Quiescent() {
		return fmt.Errorf("partition %d: engine swap while not quiescent (undos=%d works=%d pending=%d engine=%v)",
			p.cfg.ID, len(p.undos), len(p.works), len(p.pending), p.engine.Quiescent())
	}
	p.retired = p.retired.Add(p.engine.Stats())
	if le, ok := p.engine.(*core.LockEngine); ok {
		p.retiredLocks = p.retiredLocks.Add(le.LockStats())
	}
	p.engine = factory(p)
	return nil
}

// Store exposes the partition store (for test verification).
func (p *Partition) Store() *storage.Store { return p.cfg.Store }

// Receive dispatches messages to the engine.
func (p *Partition) Receive(ctx *sim.Context, m sim.Message) {
	p.ctx = ctx
	defer func() { p.ctx = nil }()
	switch v := m.(type) {
	case *msg.Fragment:
		p.FragmentsIn++
		if v.Gen > p.genSeen {
			p.genSeen = v.Gen
		}
		p.engine.Fragment(v)
	case *msg.Decision:
		p.DecisionsIn++
		if v.Gen > p.genSeen {
			p.genSeen = v.Gen
		}
		// Record the outcome BEFORE the engine reacts, for the same reason
		// backups get it first: committing the decision may release
		// speculated single-partition transactions whose forwards (and log
		// records) must follow this transaction, preserving the primary's
		// commit order on the (FIFO) backup link and in the log.
		if p.cfg.Logger != nil {
			p.cfg.Logger.AppendDecision(ctx, v.Txn, v.Commit)
		}
		if len(p.cfg.Backups) > 0 {
			for _, b := range p.cfg.Backups {
				p.cfg.Net.Send(ctx, b, &msg.ReplicaDecision{Txn: v.Txn, Commit: v.Commit})
			}
		}
		if p.cfg.History != nil {
			// The decision is this partition's commit point for the
			// multi-partition transaction: seal (or discard) its trace
			// before the engine releases anything serialized after it.
			if v.Commit {
				p.cfg.History.Commit(v.Txn)
			} else {
				p.cfg.History.Drop(v.Txn)
			}
		}
		p.engine.Decision(v)
	case *msg.ReplicaAck:
		p.ackArrived(v)
	case *durable.WriteDone:
		if v.Checkpoint {
			p.cfg.Logger.CheckpointDurable(v.Seq)
		} else {
			for _, g := range p.cfg.Logger.Durable(v.Seq) {
				p.logDurable(g)
			}
		}
	case durable.FlushTick:
		p.cfg.Logger.Flush(ctx, v.Batch)
	case timerMsg:
		p.engine.Timer(v.payload)
	case msg.StartPulse:
		if !p.pulsing {
			p.pulsing = true
			p.pulse(ctx)
		}
	case pulseTick:
		p.pulse(ctx)
	case msg.StartMonitor:
		if !p.monitoring {
			p.monitoring = true
			p.lastHeard = make(map[sim.ActorID]sim.Time, len(p.cfg.Backups))
			for _, b := range p.cfg.Backups {
				p.lastHeard[b] = ctx.Now()
			}
			ctx.After(p.cfg.DetectTimeout, probeTick{})
		}
	case probeTick:
		p.probe(ctx)
	case *msg.Heartbeat:
		if p.monitoring {
			p.lastHeard[v.From] = ctx.Now()
		}
	case *msg.MigrateOut:
		p.migrateOut(ctx, v)
	case *msg.MigrateIn:
		p.migrateIn(ctx, v)
	default:
		panic(fmt.Sprintf("partition %d: unexpected message %T", p.cfg.ID, m))
	}
	if p.cfg.Logger != nil {
		p.maybeCheckpoint(ctx)
	}
}

// maybeCheckpoint drives the fuzzy-checkpoint schedule without timer events
// (a self-rearming timer would keep the event queue from draining): every
// delivery checks whether a checkpoint boundary has passed, and an overdue
// checkpoint is captured at the first partition-quiescent point — where every
// appended log record's transaction is resolved and applied, so snapshot +
// log tail is exactly the committed state.
func (p *Partition) maybeCheckpoint(ctx *sim.Context) {
	every := p.cfg.Logger.CheckpointEvery()
	if every <= 0 {
		return
	}
	if p.nextCkptAt == 0 {
		p.nextCkptAt = every
	}
	if ctx.Now() >= p.nextCkptAt {
		p.ckptPending = true
		for p.nextCkptAt <= ctx.Now() {
			p.nextCkptAt += every
		}
	}
	if p.ckptPending && p.cfg.Logger.CanCheckpoint() && p.ckptQuiescent() {
		p.ckptPending = false
		p.cfg.Logger.StartCheckpoint(ctx, p.cfg.Store)
	}
}

// ckptQuiescent reports whether a fuzzy checkpoint may be captured now: the
// engine holds no live or speculative transaction state (so the store is
// exactly the committed state) and every appended log record sits in a batch
// already queued on the FIFO disk — a checkpoint write issued now completes
// after all of them, so an *installed* checkpoint can never cover a record
// whose gated send was still held at a later crash. Unlike full Quiescent(),
// sends gated on batch durability may still be pending: their transactions
// are committed and applied, and the disk's FIFO order releases them before
// the snapshot installs. Without this relaxation checkpoints would starve
// under sustained load, where some reply is almost always gated on group
// commit.
func (p *Partition) ckptQuiescent() bool {
	return p.engine.Quiescent() && len(p.undos) == 0 && len(p.works) == 0 &&
		p.cfg.Logger.OpenBatchBytes() == 0
}

// logDurable clears the log gate of one newly durable record, releasing the
// held send if its backup acknowledgments have also all arrived. A gate for a
// superseded record (speculative re-execution re-appended) is stale and
// ignored; the transaction's release is keyed on its latest record.
func (p *Partition) logDurable(g durable.Gate) {
	ps := p.pending[g.Txn]
	if ps == nil || !ps.logWait || ps.logRec != g.Rec {
		return
	}
	ps.logWait = false
	if !ps.ready() {
		return
	}
	delete(p.pending, g.Txn)
	ps.send()
}

// pulse sends one heartbeat to every attached backup and re-arms the loop.
// Heartbeats charge no CPU: only their absence is information.
func (p *Partition) pulse(ctx *sim.Context) {
	if !p.pulsing {
		return
	}
	for _, b := range p.cfg.Backups {
		p.cfg.Net.Send(ctx, b, &msg.Heartbeat{Partition: p.cfg.ID, From: ctx.Self()})
	}
	ctx.After(p.cfg.Heartbeat, pulseTick{})
}

// probe checks every backup's heartbeat age, detaching any that has been
// silent past the detection timeout, and re-arms itself for the earliest
// next deadline. The first detection ends monitoring (fault schedules allow
// one fault per partition, and the surviving backups are told to stop
// pulsing), letting the event queue drain.
func (p *Partition) probe(ctx *sim.Context) {
	if !p.monitoring {
		return
	}
	next := sim.Time(-1)
	for _, b := range append([]sim.ActorID(nil), p.cfg.Backups...) {
		deadline := p.lastHeard[b] + p.cfg.DetectTimeout
		if ctx.Now() >= deadline {
			p.dropBackup(ctx, b)
			continue
		}
		if next < 0 || deadline < next {
			next = deadline
		}
	}
	if !p.monitoring || next < 0 {
		p.monitoring = false
		return
	}
	ctx.After(next-ctx.Now(), probeTick{})
}

// dropBackup detaches a crashed backup: it stops receiving forwards, every
// send gated on its acknowledgment is released, and the surviving backups
// are told to stop their own heartbeat pulses (the fault schedule allows
// one fault per partition, so detection ends here too).
func (p *Partition) dropBackup(ctx *sim.Context, dead sim.ActorID) {
	p.monitoring = false
	if p.cfg.Rec != nil {
		p.cfg.Rec.NoteDetected(int(p.cfg.ID), metrics.RoleBackup, p.rank[dead], ctx.Now())
	}
	kept := p.cfg.Backups[:0]
	for _, b := range p.cfg.Backups {
		if b != dead {
			kept = append(kept, b)
		}
	}
	p.cfg.Backups = kept
	delete(p.lastHeard, dead)
	for _, b := range p.cfg.Backups {
		p.cfg.Net.Send(ctx, b, msg.StopPulse{})
	}
	// Release gated sends in deterministic (TxnID) order.
	ids := make([]msg.TxnID, 0, len(p.pending))
	for id := range p.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ps := p.pending[id]
		delete(ps.awaiting, dead)
		if ps.ready() {
			delete(p.pending, id)
			ps.send()
		}
	}
}

// migrateOut surrenders the key range [Lo, Hi) to the destination partition.
// The facade sends MigrateOut only at a drained quiescent point — the engine
// holds no transaction state — so the rows can be collected and deleted
// directly from the store, exactly like an engine swap mutates engine state
// there. The deletion is forwarded to this partition's backups on the same
// FIFO link as replica traffic (so it lands after every earlier decision),
// logged as a migration record when durable, and the rows ship to Dest.
func (p *Partition) migrateOut(ctx *sim.Context, m *msg.MigrateOut) {
	if !p.Quiescent() {
		panic(fmt.Sprintf("partition %d: migration while not quiescent", p.cfg.ID))
	}
	var rows []msg.MigRow
	for _, tbl := range p.cfg.Store.TableNames() {
		t := p.cfg.Store.Table(tbl)
		t.Ascend(m.Lo, m.Hi, func(k string, v any) bool {
			rows = append(rows, msg.MigRow{Table: tbl, Key: k, Val: v})
			return true
		})
	}
	for _, r := range rows {
		p.cfg.Store.Table(r.Table).Delete(r.Key)
	}
	p.spendCtx(ctx, m.Cost)
	if p.cfg.Logger != nil {
		p.cfg.Logger.AppendMigrationOut(ctx, m.Lo, m.Hi)
	}
	for _, b := range p.cfg.Backups {
		p.cfg.Net.Send(ctx, b, &msg.ReplicaMigrateOut{Lo: m.Lo, Hi: m.Hi})
	}
	if p.cfg.History != nil {
		p.cfg.History.RecordMigrationOut(rows)
	}
	p.RowsMigratedOut += uint64(len(rows))
	p.cfg.Net.Send(ctx, m.Dest, &msg.MigrateIn{Rows: rows, Cost: m.Cost})
}

// migrateIn adopts a migrated key range: rows are installed in the store,
// forwarded to this partition's backups, and logged when durable. The facade
// observes completion through MigrationsIn.
func (p *Partition) migrateIn(ctx *sim.Context, m *msg.MigrateIn) {
	if !p.Quiescent() {
		panic(fmt.Sprintf("partition %d: migration while not quiescent", p.cfg.ID))
	}
	for _, r := range m.Rows {
		p.cfg.Store.Table(r.Table).Put(r.Key, r.Val)
	}
	p.spendCtx(ctx, m.Cost)
	if p.cfg.Logger != nil {
		p.cfg.Logger.AppendMigrationIn(ctx, m.Rows)
	}
	for _, b := range p.cfg.Backups {
		p.cfg.Net.Send(ctx, b, &msg.ReplicaMigrateIn{Rows: m.Rows})
	}
	if p.cfg.History != nil {
		p.cfg.History.RecordMigrationIn(m.Rows)
	}
	p.RowsMigratedIn += uint64(len(m.Rows))
	p.MigrationsIn++
}

// spendCtx charges CPU against an explicit context (migration handlers run
// outside the Receive-scoped p.ctx convention used by engine callbacks).
func (p *Partition) spendCtx(ctx *sim.Context, d sim.Time) {
	if d > 0 {
		ctx.Spend(d)
	}
}

// --- core.Env implementation ---

// Execute runs a fragment body, charging virtual CPU per the cost model.
func (p *Partition) Execute(f *msg.Fragment, withUndo bool, locker storage.Locker) core.ExecOutcome {
	if f.InjectAbort {
		p.spend(p.cfg.Costs.AbortedFragment)
		p.Rollback(f.Txn)
		return core.ExecOutcome{Aborted: true}
	}
	var buf *undo.Buffer
	if withUndo {
		buf = p.undos[f.Txn]
		if buf == nil {
			if n := len(p.undoFree); n > 0 {
				buf = p.undoFree[n-1]
				p.undoFree = p.undoFree[:n-1]
			} else {
				buf = undo.New()
			}
			p.undos[f.Txn] = buf
		}
	}
	view := &p.view
	if locker != nil {
		view = storage.NewTxnView(p.cfg.Store, buf, locker)
	} else {
		view.Reset(p.cfg.Store, buf, nil)
	}
	if p.cfg.History != nil {
		// Installed after Reset (which wipes Obs). MVCC snapshot readers
		// serialize at their snapshot point, not their commit point: pin
		// their position in the serial order now.
		view.Obs = p.cfg.History.Observer(f.Txn)
		if f.ReadOnly && p.engine.Scheme() == core.SchemeMVCC {
			p.cfg.History.Pin(f.Txn)
		}
	}
	proc := p.cfg.Registry.Get(f.Proc)
	out, err := proc.Run(view, f.Work)
	cost := p.cfg.Costs.Fragment(f.Proc, view.Reads+view.Writes, view.Writes, view.LockAcquires, withUndo)
	p.spend(cost)
	p.ExecNanosCPU += cost
	if err != nil {
		if buf != nil {
			buf.Rollback()
		}
		if p.cfg.History != nil {
			p.cfg.History.Drop(f.Txn)
		}
		return core.ExecOutcome{Output: out, Aborted: true}
	}
	// Log the work for replica forwarding and/or command logging.
	if len(p.cfg.Backups) > 0 || p.cfg.Logger != nil {
		wl := p.works[f.Txn]
		if wl == nil {
			wl = &workLog{proc: f.Proc}
			p.works[f.Txn] = wl
		}
		wl.works = append(wl.works, f.Work)
		wl.rows += view.Reads + view.Writes
		wl.wr += view.Writes
	}
	return core.ExecOutcome{Output: out}
}

// Rollback undoes a transaction's local effects.
func (p *Partition) Rollback(id msg.TxnID) {
	if buf := p.undos[id]; buf != nil {
		buf.Rollback()
	}
	delete(p.works, id)
	if p.cfg.History != nil {
		p.cfg.History.Drop(id)
	}
}

// Forget drops undo and forwarding state, recycling the undo buffer.
func (p *Partition) Forget(id msg.TxnID) {
	if buf := p.undos[id]; buf != nil {
		delete(p.undos, id)
		buf.Discard()
		p.undoFree = append(p.undoFree, buf)
	}
}

// SendResult returns a fragment result to its coordinator, forwarding to
// backups first when this is a clean vote (the prepare is piggybacked on the
// last fragment, §3.3).
func (p *Partition) SendResult(f *msg.Fragment, r *msg.FragmentResult) {
	r.Gen = p.genSeen
	p.ResultsOut++
	if (len(p.cfg.Backups) > 0 || p.cfg.Logger != nil) && f.Last && f.MultiPartition && !r.Aborted {
		p.gateSend(f.Txn, false, 0, nil, func() {
			p.cfg.Net.Send(p.ctx, f.Coord, r)
		})
		return
	}
	if f.Last && f.MultiPartition && !r.Aborted {
		// No backups (left) to forward to — work was logged while a now-
		// detached backup was attached; drop it so nothing leaks.
		delete(p.works, f.Txn)
	}
	p.cfg.Net.Send(p.ctx, f.Coord, r)
}

// ReplyClient completes a single-partition transaction, forwarding committed
// work to backups first ("the result of the transaction is sent to the
// client [when] all acknowledgments from the backups are received", §3.2).
func (p *Partition) ReplyClient(f *msg.Fragment, reply *msg.ClientReply) {
	p.RepliesOut++
	if p.cfg.History != nil && reply.Committed {
		// The committed reply is a single-partition transaction's commit
		// point (speculative engines call this only on release, in commit
		// order).
		p.cfg.History.Commit(f.Txn)
	}
	if (len(p.cfg.Backups) > 0 || p.cfg.Logger != nil) && reply.Committed {
		p.gateSend(f.Txn, true, f.Client, reply, func() {
			p.cfg.Net.Send(p.ctx, f.Client, reply)
		})
		return
	}
	// Not forwarding (no backups left, or an abort): drop any logged work.
	delete(p.works, f.Txn)
	p.cfg.Net.Send(p.ctx, f.Client, reply)
}

// After arms an engine timer.
func (p *Partition) After(d sim.Time, payload any) {
	p.ctx.After(d, timerMsg{payload})
}

// ChargeDecision prices 2PC outcome processing.
func (p *Partition) ChargeDecision() {
	p.spend(p.cfg.Costs.Decision)
}

func (p *Partition) spend(d sim.Time) { p.ctx.Spend(d) }

// gateSend records the transaction at its durability points — appending its
// command-log record and shipping its executed work to every backup — and
// holds send until every gate clears: the record's group-commit batch is on
// disk, and all backup acks have arrived. A re-forward (speculative
// re-execution after a cascade) supersedes the previous one, in the log too:
// the fresh record's gate replaces the old record's. Committed
// single-partition records and forwards carry the client identity and reply
// so a restarted or promoted process can deduplicate recovery resends.
func (p *Partition) gateSend(id msg.TxnID, committed bool, client sim.ActorID, reply *msg.ClientReply, send func()) {
	wl := p.works[id]
	if wl == nil {
		// Read-only transaction with no logged work still forwards (the
		// backups advance their sequence); synthesize an empty log.
		wl = &workLog{}
	}
	delete(p.works, id)
	ps := &pendingSend{send: send, logRec: -1}
	if lg := p.cfg.Logger; lg != nil {
		if committed {
			ps.logRec = lg.AppendCommitted(p.ctx, id, wl.proc, wl.works, client, reply)
		} else {
			ps.logRec = lg.AppendPrepared(p.ctx, id, wl.proc, wl.works)
		}
		ps.logWait = true
	}
	if len(p.cfg.Backups) > 0 {
		p.fwdSeq++
		ps.seq = p.fwdSeq
		fw := &msg.ReplicaForward{Txn: id, Proc: wl.proc, Works: wl.works, Committed: committed, Seq: p.fwdSeq, Client: client, Reply: reply}
		ps.awaiting = make(map[sim.ActorID]bool, len(p.cfg.Backups))
		for _, b := range p.cfg.Backups {
			p.cfg.Net.Send(p.ctx, b, fw)
			ps.awaiting[b] = true
		}
		p.ForwardsOut++
	}
	p.pending[id] = ps
}

func (p *Partition) ackArrived(a *msg.ReplicaAck) {
	ps := p.pending[a.Txn]
	if ps == nil || ps.seq != a.Seq {
		return // stale ack from a superseded forward
	}
	delete(ps.awaiting, a.From)
	if !ps.ready() {
		return
	}
	delete(p.pending, a.Txn)
	ps.send()
}
