package msg

import (
	"testing"

	"specdb/internal/sim"
)

func TestMakeTxnID(t *testing.T) {
	id := MakeTxnID(3, 99)
	if id.Issuer() != 3 {
		t.Fatalf("issuer = %d", id.Issuer())
	}
	if id == NoTxn {
		t.Fatal("valid id equals NoTxn")
	}
	// Distinct issuers and sequences never collide.
	seen := map[TxnID]bool{}
	for issuer := sim.ActorID(1); issuer <= 4; issuer++ {
		for seq := uint32(0); seq < 100; seq++ {
			id := MakeTxnID(issuer, seq)
			if seen[id] {
				t.Fatalf("collision at %d/%d", issuer, seq)
			}
			seen[id] = true
		}
	}
}

func TestRequestSinglePartition(t *testing.T) {
	r := &Request{Parts: []PartitionID{1}}
	if !r.SinglePartition() {
		t.Fatal("one part")
	}
	r.Parts = append(r.Parts, 2)
	if r.SinglePartition() {
		t.Fatal("two parts")
	}
}
