// Package msg defines the message types exchanged between clients, the
// central coordinator, partition primaries and backups. Messages are plain
// in-memory values: the simulated network (internal/simnet) delivers
// references with a latency charge rather than serializing bytes, mirroring
// the paper's deliberately tiny payloads ("3 byte keys and 4 byte values to
// avoid complications caused by data transfer time", §5.1).
package msg

import "specdb/internal/sim"

// TxnID identifies a transaction. Client-issued IDs place the client's actor
// ID in the high bits so IDs are globally unique without coordination.
type TxnID uint64

// NoTxn is the zero TxnID.
const NoTxn TxnID = 0

// MakeTxnID builds a TxnID from an issuing actor and a local sequence number.
func MakeTxnID(issuer sim.ActorID, seq uint32) TxnID {
	return TxnID(uint64(issuer)<<32 | uint64(seq))
}

// Issuer returns the actor that created the ID.
func (id TxnID) Issuer() sim.ActorID { return sim.ActorID(id >> 32) }

// PartitionID numbers the logical data partitions from 0.
type PartitionID int32

// KeyRange declares a half-open scanned key range [Lo, Hi) on a table; an
// empty Hi means unbounded. Plans carry ranges so the client can route scan
// fragments, and fragments carry them so engines see the declared scan set
// up front in canonical (table, lo, hi) order.
type KeyRange struct {
	Table string
	Lo    string
	Hi    string
}

// Request is a stored procedure invocation sent by a client. Single-partition
// requests go directly to the owning partition; multi-partition requests go
// to the central coordinator (blocking and speculative schemes) or are
// coordinated by the client itself (locking scheme, §4.3).
type Request struct {
	Txn    TxnID
	Proc   string
	Args   any
	Client sim.ActorID
	// Parts lists the partitions the transaction touches, as computed by
	// the client library from the catalog.
	Parts []PartitionID
	// CanAbort marks procedures that may issue a user abort; those are
	// executed with an undo buffer even on the fast path (§3.2).
	CanAbort bool
	// ReadOnly declares that the transaction performs no writes. The MVCC
	// engine runs declared read-only transactions against a consistent
	// snapshot: they never block and never abort.
	ReadOnly bool
	// AbortAt injects a deterministic abort at the given partition
	// (§5.3); -1 disables injection.
	AbortAt PartitionID
}

// SinglePartition reports whether the request touches exactly one partition.
func (r *Request) SinglePartition() bool { return len(r.Parts) == 1 }

// Fragment is a unit of work executed at exactly one partition (§3.1).
type Fragment struct {
	Txn   TxnID
	Proc  string
	Round int
	// Last marks the final fragment this transaction will execute at this
	// partition; the 2PC "prepare" is piggybacked on it (§3.3). For
	// single-partition transactions it is always true.
	Last bool
	// Work is the procedure-specific input for this fragment.
	Work any
	// Partition is the destination partition.
	Partition PartitionID
	// Coord receives the FragmentResult: the central coordinator, or the
	// client itself in the locking scheme.
	Coord sim.ActorID
	// Client is the end client awaiting the transaction outcome.
	Client sim.ActorID
	// MultiPartition distinguishes MP fragments from single-partition
	// requests converted to fragments.
	MultiPartition bool
	// CanAbort propagates Request.CanAbort.
	CanAbort bool
	// ReadOnly propagates Request.ReadOnly: the fragment performs no
	// writes, so MVCC serves it from a snapshot without conflict checks.
	ReadOnly bool
	// Scans lists the key ranges this fragment was declared to scan at this
	// partition (Plan.Scans routing), in canonical order.
	Scans []KeyRange
	// InjectAbort makes the fragment abort at the start of execution
	// (the abort-rate microbenchmark, §5.3).
	InjectAbort bool
	// Gen is the coordinator's abort generation for the destination
	// partition; results echo the latest generation seen so the
	// coordinator can discard speculative results invalidated by an
	// abort that were still in flight (§4.2.2).
	Gen uint32
}

// FragmentResult returns a fragment's output to its coordinator. When Last
// was set, it doubles as the 2PC vote: Aborted=false means "ready to commit".
type FragmentResult struct {
	Txn       TxnID
	Round     int
	Partition PartitionID
	Output    any
	// Aborted reports a local abort (user abort, injected abort, or
	// deadlock victim). A true value is a 2PC "no" vote.
	Aborted bool
	// Killed marks an abort caused by deadlock victim selection or the
	// distributed deadlock timeout (§4.3); the client library retries.
	Killed bool
	// Speculative marks results computed before an earlier transaction's
	// outcome was known. DependsOn identifies that transaction; the
	// coordinator must discard this result if DependsOn aborts (§4.2.2).
	Speculative bool
	DependsOn   TxnID
	// Gen echoes the highest Fragment/Decision generation this partition
	// has observed from the result's coordinator.
	Gen uint32
}

// Decision is the 2PC outcome broadcast by the coordinator.
type Decision struct {
	Txn    TxnID
	Commit bool
	// Gen carries the coordinator's (possibly just incremented, on
	// abort) generation for the destination partition.
	Gen uint32
	// Recovery marks a decision for a transaction that was in flight when
	// the destination partition's primary crashed. The promoted primary
	// resolves it against its buffered prepared transactions instead of
	// its (fresh) engine, which never saw the transaction.
	Recovery bool
}

// ClientReply completes a transaction at its client.
type ClientReply struct {
	Txn       TxnID
	Output    any
	Committed bool
	// UserAborted distinguishes an intentional abort (counted as a
	// completed transaction by the abort benchmark) from a deadlock or
	// timeout kill, which the client library retries.
	UserAborted bool
	// Retryable is set on deadlock/timeout kills under locking.
	Retryable bool
}

// ReplicaForward carries an executed transaction from a primary to a backup.
// It includes every fragment the primary executed for the transaction plus
// any remote data the fragments consumed (baked into the work inputs), so
// backups never participate in distributed transactions (§4.3).
type ReplicaForward struct {
	Txn   TxnID
	Proc  string
	Works []any
	// Committed means the transaction outcome is already known (single
	// partition commits); the backup applies immediately. Otherwise it
	// buffers until a ReplicaDecision arrives.
	Committed bool
	// Seq distinguishes re-forwards after speculative re-execution.
	Seq uint32
	// Client is the end client of a committed single-partition forward,
	// and Reply the reply the primary released to it. A promoted backup
	// uses them to deduplicate client recovery resends: if the client's
	// last applied transaction matches a resent fragment, the stored
	// reply is returned instead of executing the transaction twice.
	Client sim.ActorID
	Reply  *ClientReply
}

// ReplicaAck acknowledges a ReplicaForward.
type ReplicaAck struct {
	Txn  TxnID
	From sim.ActorID
	Seq  uint32
}

// ReplicaDecision resolves a buffered multi-partition forward at a backup.
type ReplicaDecision struct {
	Txn    TxnID
	Commit bool
}

// --- Failure detection and failover (crash faults) ---

// Heartbeat is the liveness pulse exchanged between a primary and its
// backups when fault injection is enabled. Primaries pulse their backups
// (primary-crash detection); backups pulse their primary (backup-crash
// detection). Heartbeats carry no payload and cost no CPU — only their
// absence is information.
type Heartbeat struct {
	Partition PartitionID
	From      sim.ActorID
}

// StartPulse kicks an actor's heartbeat loop at simulation start.
type StartPulse struct{}

// StopPulse ends an actor's heartbeat loop; the primary sends it to
// surviving backups once a crashed backup has been detected and detached,
// so the event queue can drain to quiescence.
type StopPulse struct{}

// StartMonitor arms an actor's failure detector at simulation start.
type StartMonitor struct{}

// RecoveryQuery is sent by a backup that has promoted itself after
// detecting its primary's crash. It asks the coordinator for the outcomes
// of the prepared-but-undecided transactions the backup holds buffered,
// and doubles as the coordinator's failover notification for the
// partition.
type RecoveryQuery struct {
	Partition PartitionID
	// NewPrimary is the promoted backup's actor ID; the coordinator
	// re-targets the partition and tells the clients.
	NewPrimary sim.ActorID
	// Buffered lists the buffered transactions, in forward order.
	Buffered []TxnID
}

// TxnOutcome pairs a transaction with its decided 2PC outcome.
type TxnOutcome struct {
	Txn    TxnID
	Commit bool
}

// RecoveryOutcome answers a RecoveryQuery: the outcomes of every buffered
// transaction the coordinator had already decided, in decision order. The
// promoted primary applies the commits and drops the aborts; buffered
// transactions still pending at the coordinator are resolved later by
// Recovery-flagged Decisions.
type RecoveryOutcome struct {
	Partition PartitionID
	Outcomes  []TxnOutcome
}

// --- Elastic repartitioning (live key-range migration) ---

// MigRow is one row in flight during a key-range migration: the table it
// lives in, its key, and its value (a reference, like every simulated
// payload — rows are copy-on-write, so the reference is safe to share).
type MigRow struct {
	Table string
	Key   string
	Val   any
}

// MigrateOut starts a key-range migration at the donor partition. The facade
// sends it at a drained quiescent point (no transaction in flight anywhere),
// so the donor can collect and delete the range [Lo, Hi) directly from its
// store without racing an engine. The donor forwards the deletion to its
// backups (FIFO after every earlier replica decision), logs a migration
// record when durable, and ships the collected rows to Dest as a MigrateIn.
type MigrateOut struct {
	// Lo and Hi bound the migrated key range, half-open; empty Hi means
	// unbounded above. The range applies to every table in the store.
	Lo, Hi string
	// Dest is the receiving partition's (live primary's) actor.
	Dest sim.ActorID
	// Cost is the virtual CPU time the donor spends freezing and copying
	// the range (the facade prices it from the row bytes and the
	// configured copy bandwidth). The destination spends the same applying.
	Cost sim.Time
}

// MigrateIn delivers a migrated key range to the destination partition,
// which installs the rows, forwards them to its backups, and logs a
// migration record when durable.
type MigrateIn struct {
	Rows []MigRow
	Cost sim.Time
}

// ReplicaMigrateOut tells a donor's backup to delete the migrated range.
// It rides the same FIFO link as ReplicaForward/ReplicaDecision, so it
// applies after every transaction that committed before the migration.
type ReplicaMigrateOut struct {
	Lo, Hi string
}

// ReplicaMigrateIn tells a destination's backup to install the migrated
// rows.
type ReplicaMigrateIn struct {
	Rows []MigRow
}

// Restart tells a crashed partition's restarter actor to begin crash-restart
// recovery: load the latest checkpoint, replay the durable log tail, and take
// over as primary. The fault controller sends it one restart delay after the
// kill (modeling the supervisor noticing the dead process).
type Restart struct{}

// NewPrimary announces a completed promotion. The coordinator broadcasts it
// to every client (which re-targets the partition and resends a stalled
// single-partition attempt); the promoting backup sends it to surviving
// peer backups (which re-target their acknowledgments and stand down their
// own failure detectors).
type NewPrimary struct {
	Partition PartitionID
	Actor     sim.ActorID
}
