package model

import (
	"math"
	"testing"

	"specdb/internal/sim"
)

func TestLimitsAtZeroMP(t *testing.T) {
	p := PaperParams()
	// With no multi-partition transactions, blocking and both
	// speculation variants run at 2/tsp = 31250 tps.
	want := 2 / (64e-6)
	for name, got := range map[string]float64{
		"blocking":  p.Blocking(0),
		"localspec": p.LocalSpeculation(0),
		"spec":      p.Speculation(0),
	} {
		if math.Abs(got-want) > 1 {
			t.Errorf("%s(0) = %f, want %f", name, got, want)
		}
	}
	// Locking pays undo + lock overhead even at f=0.
	wantLock := 2 / (1.132 * 73e-6)
	if got := p.Locking(0); math.Abs(got-wantLock) > 1 {
		t.Errorf("locking(0) = %f, want %f", got, wantLock)
	}
}

func TestLimitsAtFullMP(t *testing.T) {
	p := PaperParams()
	// Pure multi-partition blocking: 1/tmp.
	if got, want := p.Blocking(1), 1/211e-6; math.Abs(got-want) > 1 {
		t.Errorf("blocking(1) = %f, want %f", got, want)
	}
	// Local speculation at f=1 degenerates to 1/tmpL (no SPs to hide).
	if got, want := p.LocalSpeculation(1), 1/55e-6; math.Abs(got-want) > 1 {
		// tmpL = max(tmpN, tmpC) = max(156µs, 55µs) = 156µs for paper
		// params; recompute.
		want = 1 / (156e-6)
		if math.Abs(got-want) > 1 {
			t.Errorf("localspec(1) = %f, want %f", got, want)
		}
	}
	// Full speculation at f=1 is CPU bound: 1/tmpC.
	if got, want := p.Speculation(1), 1/55e-6; math.Abs(got-want) > 1 {
		t.Errorf("spec(1) = %f, want %f", got, want)
	}
}

func TestMonotonicDecrease(t *testing.T) {
	p := PaperParams()
	curves := map[string]func(float64) float64{
		"blocking":  p.Blocking,
		"localspec": p.LocalSpeculation,
		"spec":      p.Speculation,
		"locking":   p.Locking,
	}
	for name, fn := range curves {
		prev := math.Inf(1)
		for f := 0.0; f <= 1.0; f += 0.05 {
			got := fn(f)
			if got > prev+1e-6 {
				t.Errorf("%s not monotonic at f=%.2f: %f > %f", name, f, got, prev)
			}
			prev = got
		}
	}
}

func TestOrderingOfSchemes(t *testing.T) {
	p := PaperParams()
	for _, f := range []float64{0.05, 0.1, 0.3, 0.5, 0.8} {
		if !(p.Speculation(f) >= p.LocalSpeculation(f)-1) {
			t.Errorf("f=%.2f: MP speculation (%f) must dominate local (%f)",
				f, p.Speculation(f), p.LocalSpeculation(f))
		}
		if !(p.LocalSpeculation(f) >= p.Blocking(f)-1) {
			t.Errorf("f=%.2f: local speculation (%f) must dominate blocking (%f)",
				f, p.LocalSpeculation(f), p.Blocking(f))
		}
	}
}

// TestSpeculationBeatsLockingAtModestMP reproduces the Figure 10 shape:
// speculation above locking across the range for the paper's parameters, and
// blocking far below both once multi-partition transactions appear.
func TestSpeculationBeatsLockingAtModestMP(t *testing.T) {
	p := PaperParams()
	for _, f := range []float64{0.1, 0.3, 0.5} {
		if !(p.Speculation(f) > p.Locking(f)) {
			t.Errorf("f=%.2f: speculation %f <= locking %f", f, p.Speculation(f), p.Locking(f))
		}
	}
	if !(p.Locking(0.3) > 1.7*p.Blocking(0.3)) {
		t.Errorf("locking (%f) should be far above blocking (%f) at f=0.3",
			p.Locking(0.3), p.Blocking(0.3))
	}
}

func TestNHiddenRegimes(t *testing.T) {
	p := PaperParams()
	// At tiny f there are plenty of single-partition transactions: the
	// idle-time bound governs.
	idleBound := float64(p.TmpN()-p.TmpC) / float64(73*sim.Microsecond)
	if got := p.nHidden(0.001); math.Abs(got-idleBound) > 1e-9 {
		// tmpI = tmpN - tmpC only when tmpN > tmpC.
		t.Logf("idle bound %f, got %f", idleBound, got)
	}
	// At f=0.5 the availability bound (1-f)/2f = 0.5 governs if smaller.
	avail := 0.5
	if got := p.nHidden(0.5); got > avail+1e-9 {
		t.Errorf("nHidden(0.5) = %f exceeds availability bound", got)
	}
}

func TestTmpN(t *testing.T) {
	p := PaperParams()
	if p.TmpN() != 156*sim.Microsecond {
		t.Errorf("TmpN = %v", p.TmpN())
	}
}
