package model

import "specdb/internal/core"

// Observed captures runtime workload statistics — the inputs §5.7 imagines a
// query executor recording — over which the model recommends a scheme. All
// fields are measured over some recent interval (see internal/metrics):
// fractions are per committed transaction, rates per completed transaction.
type Observed struct {
	// MPFraction is the fraction of transactions that are multi-partition.
	MPFraction float64
	// MultiRound is the fraction of multi-partition transactions that take
	// more than one fragment round (§5.4's "general" transactions; the
	// model approximates them as two-round).
	MultiRound float64
	// AbortRate is user aborts per completed transaction (§5.3).
	AbortRate float64
	// ConflictRate is deadlock/timeout retries per completed transaction —
	// the conflict signal measured under the retrying schemes: locking
	// (deadlock/timeout kills, §5.2), OCC (validation failures) and MVCC
	// (timestamp-order kills).
	ConflictRate float64
	// ReadFraction is the fraction of committed transactions that were
	// declared read-only — the signal MVCC needs: its snapshot reads pay
	// no versioning tax and can never conflict.
	ReadFraction float64
}

// Predict returns the modelled throughput (transactions/second on the
// two-partition microbenchmark) of running scheme sc on the observed
// workload. The core of each prediction is the corresponding §6 closed form
// at f = MPFraction; three extensions encode the caveats of Table 1 that the
// single-round, conflict-free, abort-free closed forms leave out:
//
//   - Multi-round transactions (§5.4): an intermediate round adds a network
//     round trip during which blocking and speculation hold the partition —
//     speculation may only speculate behind a transaction's LAST fragment,
//     so intermediate stalls are dead time just as under blocking. Locking
//     keeps executing other transactions under lock protection and is
//     charged nothing.
//   - Aborts (§5.3): under speculation an aborted multi-partition
//     transaction cascades, undoing and re-executing the Nhidden speculated
//     transactions queued behind it; each cascade wastes roughly
//     Nhidden·tspS of work.
//   - Conflicts (§5.2): blocking and speculation assume every transaction
//     conflicts and are insensitive to the real conflict rate, but locking
//     pays for each observed retry with a wasted execution, inflating its
//     per-transaction work by (1 + ConflictRate).
func (p Params) Predict(sc core.Scheme, o Observed) float64 {
	f := o.MPFraction
	switch sc {
	case core.SchemeBlocking:
		stall := secs(p.TmpN())
		// A two-round transaction occupies the partition for one extra
		// round trip.
		return 2 / (2*f*(secs(p.Tmp)+o.MultiRound*stall) + (1-f)*secs(p.Tsp))
	case core.SchemeSpeculative:
		if f == 0 {
			return 2 / secs(p.Tsp)
		}
		n := p.nHidden(f)
		stall := secs(p.TmpN())
		// §6.2.1 period, plus unhidden intermediate-round stalls, plus
		// cascade waste for the fraction of MP transactions that abort.
		tperiod := secs(p.TmpC) + n*secs(p.TspS) + o.MultiRound*stall
		cascade := 2 * f * o.AbortRate * n * secs(p.TspS)
		spare := (1 - f) - 2*f*n
		if spare < 0 {
			spare = 0
		}
		return 2 / (2*f*tperiod + spare*secs(p.Tsp) + cascade)
	case core.SchemeLocking:
		l := 1 + p.L
		base := 2*f*l*secs(p.TmpC) + (1-f)*l*secs(p.TspS)
		return 2 / (base * (1 + o.ConflictRate))
	case core.SchemeOCC:
		oo := 1 + p.O
		base := 2*f*oo*secs(p.TmpC) + (1-f)*oo*secs(p.TspS)
		// A conflict under OCC is discovered at validation, after the whole
		// transaction has executed: each observed retry wastes a full
		// execution on top of the retried one, so conflicts cost double
		// what they cost locking (which blocks instead of wasting work).
		// Like locking, OCC keeps executing through intermediate rounds and
		// is charged nothing for MultiRound.
		return 2 / (base * (1 + 2*o.ConflictRate))
	case core.SchemeMVCC:
		v := 1 + p.V
		r := o.ReadFraction
		base := 2*f*v*secs(p.TmpC) + (1-f)*(r*secs(p.Tsp)+(1-r)*v*secs(p.TspS))
		// Declared read-only transactions run from snapshots and never
		// conflict or retry; only the read-write fraction is exposed to
		// timestamp-order kills, each wasting an execution like OCC's
		// validation failures.
		return 2 / (base * (1 + 2*(1-r)*o.ConflictRate))
	}
	return 0
}

// Recommend returns the scheme the model predicts fastest for the observed
// workload — the §5.7 runtime planner, extended over all five schemes.
// Exact ties prefer the scheme with the least machinery: blocking before
// speculation before locking before OCC before MVCC. (At f = 0 with no
// conflicts and no read-only load, blocking's prediction ties speculation's
// — all schemes run the same lock-free fast path — and the advisor's
// hysteresis keeps such ties from causing switches.)
func (p Params) Recommend(o Observed) core.Scheme {
	best, bestT := core.SchemeBlocking, p.Predict(core.SchemeBlocking, o)
	for _, sc := range []core.Scheme{
		core.SchemeSpeculative, core.SchemeLocking, core.SchemeOCC, core.SchemeMVCC,
	} {
		if t := p.Predict(sc, o); t > bestT {
			best, bestT = sc, t
		}
	}
	return best
}
