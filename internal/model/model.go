// Package model implements the §6 analytical model: closed-form throughput
// predictions for the concurrency control schemes on the two-partition
// multi-partition-scaling microbenchmark, as a function of the fraction f of
// multi-partition transactions. The paper derives the blocking, speculation
// and locking forms; the MVCC and OCC forms extend the same style of
// reasoning (per-transaction cost weighted by workload mix) to the two
// engines this repository adds, with overheads calibrated against the
// implementation rather than Table 2.
//
// The model drives Figure 10 and is the kind of estimator a query planner
// could use to pick a scheme at runtime (§5.7).
package model

import "specdb/internal/sim"

// Params are the measured model variables of Table 2.
type Params struct {
	// Tsp is the time to execute a single-partition transaction
	// non-speculatively.
	Tsp sim.Time
	// TspS is the time to execute a single-partition transaction
	// speculatively (undo buffer overhead included).
	TspS sim.Time
	// Tmp is the time to execute a multi-partition transaction,
	// including resolving the two-phase commit.
	Tmp sim.Time
	// TmpC is the CPU time a multi-partition transaction uses at one
	// partition.
	TmpC sim.Time
	// L is the locking overhead: the fraction of additional execution
	// time when locks are acquired (13.2% in Table 2).
	L float64
	// V is the multiversioning overhead: the fraction of additional
	// execution time a read-write transaction pays under MVCC for
	// timestamp bookkeeping and before-image capture. Not measured in
	// Table 2 (the paper's prototype has no MVCC engine); the default is
	// calibrated against this repository's implementation.
	V float64
	// O is the optimistic tracking overhead: the fraction of additional
	// execution time every transaction pays under OCC for read/write-set
	// recording and commit-time validation. Like V, calibrated against
	// this repository's implementation rather than Table 2.
	O float64
}

// PaperParams returns the Table 2 measurements from the authors' testbed.
func PaperParams() Params {
	return Params{
		Tsp:  64 * sim.Microsecond,
		TspS: 73 * sim.Microsecond,
		Tmp:  211 * sim.Microsecond,
		TmpC: 55 * sim.Microsecond,
		L:    0.132,
		V:    0.08,
		O:    0.05,
	}
}

// TmpN is the network stall time of a multi-partition transaction
// (Tmp − TmpC; 40 µs in Table 2).
func (p Params) TmpN() sim.Time { return p.Tmp - p.TmpC }

func secs(t sim.Time) float64 { return float64(t) / float64(sim.Second) }

// Blocking predicts §6.1: the time to run N transactions is a weighted
// average of the pure single-partition and pure multi-partition workloads.
//
//	throughput = 2 / (2·f·tmp + (1−f)·tsp)
func (p Params) Blocking(f float64) float64 {
	return 2 / (2*f*secs(p.Tmp) + (1-f)*secs(p.Tsp))
}

// nHidden is the number of single-partition transactions hidden inside one
// multi-partition transaction's idle time (§6.2).
func (p Params) nHidden(f float64) float64 {
	tmpL := p.TmpN()
	if p.TmpC > tmpL {
		tmpL = p.TmpC
	}
	tmpI := tmpL - p.TmpC
	byIdle := secs(tmpI) / secs(p.TspS)
	if f <= 0 {
		return byIdle
	}
	byAvailable := (1 - f) / (2 * f)
	if byAvailable < byIdle {
		return byAvailable
	}
	return byIdle
}

// LocalSpeculation predicts §6.2: only the stall of the current
// multi-partition transaction is overlapped with speculative
// single-partition work.
//
//	throughput = 2 / (2·f·tmpL + ((1−f) − 2·f·Nhidden)·tsp)
func (p Params) LocalSpeculation(f float64) float64 {
	if f == 0 {
		return 2 / secs(p.Tsp)
	}
	tmpL := p.TmpN()
	if p.TmpC > tmpL {
		tmpL = p.TmpC
	}
	n := p.nHidden(f)
	return 2 / (2*f*secs(tmpL) + ((1-f)-2*f*n)*secs(p.Tsp))
}

// Speculation predicts §6.2.1: with multi-partition speculation the stall
// disappears entirely; each multi-partition transaction costs its CPU time
// plus the speculative single-partition transactions interleaved with it.
//
//	tperiod   = tmpC + Nhidden·tspS
//	throughput = 2 / (2·f·tperiod + ((1−f) − 2·f·Nhidden)·tsp)
func (p Params) Speculation(f float64) float64 {
	if f == 0 {
		return 2 / secs(p.Tsp)
	}
	n := p.nHidden(f)
	tperiod := secs(p.TmpC) + n*secs(p.TspS)
	return 2 / (2*f*tperiod + ((1-f)-2*f*n)*secs(p.Tsp))
}

// Locking predicts §6.3: no stalls (the workload is conflict-free), but
// every transaction pays the locking overhead l, undo buffers (tspS), and
// multi-partition transactions pay their 2PC CPU cost.
//
//	throughput = 2 / (2·f·l·tmpC + (1−f)·l·tspS), l = 1 + L
func (p Params) Locking(f float64) float64 {
	l := 1 + p.L
	return 2 / (2*f*l*secs(p.TmpC) + (1-f)*l*secs(p.TspS))
}

// OCC predicts the optimistic engine on a conflict-free workload: like
// locking it never stalls — transactions execute straight through the
// network gaps of multi-partition 2PC — but the per-access tax is set
// tracking (o = 1 + O) instead of lock acquisition, and every transaction
// runs with an undo buffer (tspS).
//
//	throughput = 2 / (2·f·o·tmpC + (1−f)·o·tspS), o = 1 + O
func (p Params) OCC(f float64) float64 {
	o := 1 + p.O
	return 2 / (2*f*o*secs(p.TmpC) + (1-f)*o*secs(p.TspS))
}

// MVCC predicts the multiversion engine at read fraction r: declared
// read-only transactions (fraction r of the single-partition load) run at
// the plain non-speculative cost tsp — no locks, no undo, no stall, served
// from a snapshot — while read-write transactions pay the versioning tax
// (v = 1 + V) on the undo-buffered cost, and like locking/OCC there are no
// stalls.
//
//	throughput = 2 / (2·f·v·tmpC + (1−f)·(r·tsp + (1−r)·v·tspS)), v = 1 + V
func (p Params) MVCC(f, r float64) float64 {
	v := 1 + p.V
	return 2 / (2*f*v*secs(p.TmpC) + (1-f)*(r*secs(p.Tsp)+(1-r)*v*secs(p.TspS)))
}
