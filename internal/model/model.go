// Package model implements the §6 analytical model: closed-form throughput
// predictions for the three concurrency control schemes on the two-partition
// multi-partition-scaling microbenchmark, as a function of the fraction f of
// multi-partition transactions.
//
// The model drives Figure 10 and is the kind of estimator a query planner
// could use to pick a scheme at runtime (§5.7).
package model

import "specdb/internal/sim"

// Params are the measured model variables of Table 2.
type Params struct {
	// Tsp is the time to execute a single-partition transaction
	// non-speculatively.
	Tsp sim.Time
	// TspS is the time to execute a single-partition transaction
	// speculatively (undo buffer overhead included).
	TspS sim.Time
	// Tmp is the time to execute a multi-partition transaction,
	// including resolving the two-phase commit.
	Tmp sim.Time
	// TmpC is the CPU time a multi-partition transaction uses at one
	// partition.
	TmpC sim.Time
	// L is the locking overhead: the fraction of additional execution
	// time when locks are acquired (13.2% in Table 2).
	L float64
}

// PaperParams returns the Table 2 measurements from the authors' testbed.
func PaperParams() Params {
	return Params{
		Tsp:  64 * sim.Microsecond,
		TspS: 73 * sim.Microsecond,
		Tmp:  211 * sim.Microsecond,
		TmpC: 55 * sim.Microsecond,
		L:    0.132,
	}
}

// TmpN is the network stall time of a multi-partition transaction
// (Tmp − TmpC; 40 µs in Table 2).
func (p Params) TmpN() sim.Time { return p.Tmp - p.TmpC }

func secs(t sim.Time) float64 { return float64(t) / float64(sim.Second) }

// Blocking predicts §6.1: the time to run N transactions is a weighted
// average of the pure single-partition and pure multi-partition workloads.
//
//	throughput = 2 / (2·f·tmp + (1−f)·tsp)
func (p Params) Blocking(f float64) float64 {
	return 2 / (2*f*secs(p.Tmp) + (1-f)*secs(p.Tsp))
}

// nHidden is the number of single-partition transactions hidden inside one
// multi-partition transaction's idle time (§6.2).
func (p Params) nHidden(f float64) float64 {
	tmpL := p.TmpN()
	if p.TmpC > tmpL {
		tmpL = p.TmpC
	}
	tmpI := tmpL - p.TmpC
	byIdle := secs(tmpI) / secs(p.TspS)
	if f <= 0 {
		return byIdle
	}
	byAvailable := (1 - f) / (2 * f)
	if byAvailable < byIdle {
		return byAvailable
	}
	return byIdle
}

// LocalSpeculation predicts §6.2: only the stall of the current
// multi-partition transaction is overlapped with speculative
// single-partition work.
//
//	throughput = 2 / (2·f·tmpL + ((1−f) − 2·f·Nhidden)·tsp)
func (p Params) LocalSpeculation(f float64) float64 {
	if f == 0 {
		return 2 / secs(p.Tsp)
	}
	tmpL := p.TmpN()
	if p.TmpC > tmpL {
		tmpL = p.TmpC
	}
	n := p.nHidden(f)
	return 2 / (2*f*secs(tmpL) + ((1-f)-2*f*n)*secs(p.Tsp))
}

// Speculation predicts §6.2.1: with multi-partition speculation the stall
// disappears entirely; each multi-partition transaction costs its CPU time
// plus the speculative single-partition transactions interleaved with it.
//
//	tperiod   = tmpC + Nhidden·tspS
//	throughput = 2 / (2·f·tperiod + ((1−f) − 2·f·Nhidden)·tsp)
func (p Params) Speculation(f float64) float64 {
	if f == 0 {
		return 2 / secs(p.Tsp)
	}
	n := p.nHidden(f)
	tperiod := secs(p.TmpC) + n*secs(p.TspS)
	return 2 / (2*f*tperiod + ((1-f)-2*f*n)*secs(p.Tsp))
}

// Locking predicts §6.3: no stalls (the workload is conflict-free), but
// every transaction pays the locking overhead l, undo buffers (tspS), and
// multi-partition transactions pay their 2PC CPU cost.
//
//	throughput = 2 / (2·f·l·tmpC + (1−f)·l·tspS), l = 1 + L
func (p Params) Locking(f float64) float64 {
	l := 1 + p.L
	return 2 / (2*f*l*secs(p.TmpC) + (1-f)*l*secs(p.TspS))
}
