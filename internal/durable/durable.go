// Package durable implements the durability subsystem: per-partition command
// logging with group commit, fuzzy checkpoints, and the state needed to
// recover a crashed partition from "disk" (a simulated device actor).
//
// The design follows the command-logging argument for partitioned main-memory
// engines (Wu et al., "Fast Failure Recovery for Main-Memory DBMSs on
// Multicores"): instead of physical redo images, the log records committed
// transaction *invocations* in commit order, and recovery re-executes them —
// deterministic single-threaded partitions make replay bit-identical to the
// original execution. Group commit (Larson et al.) keeps the logging path off
// the transaction critical path: appends are in-memory, and only the batched
// disk write's completion gates the release of replies and votes.
//
// The command log is, structurally, a disk-backed replica. A partition
// appends exactly where it forwards to backups (internal/partition's gating
// points) and holds the same sends: a committed single-partition reply or a
// multi-partition commit vote is released only once its record is on disk —
// the disk edition of §3.3's "sending the transaction to the backups is
// equivalent to forcing the participant's 2PC vote to disk". Decision records
// are appended ungated: a lost decision is recovered from the coordinator's
// decision log, exactly as a promoted backup resolves its buffered
// transactions.
//
// Durability is a log prefix: batches are sealed in append order and written
// FIFO by a single-queue disk actor, so a record is durable only if every
// earlier record is. A batch whose write completion had not been processed
// when the partition crashed is conservatively lost — safe, because every
// reply and vote gated on it was still held, so no client or coordinator ever
// observed the lost records.
package durable

import (
	"fmt"
	"strconv"

	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/storage"
)

// RecordKind discriminates log records.
type RecordKind uint8

const (
	// RecordCommitted is a committed single-partition transaction: replay
	// applies it immediately.
	RecordCommitted RecordKind = iota
	// RecordPrepared is a prepared multi-partition transaction whose 2PC
	// outcome was not yet known at append time: replay buffers it until a
	// RecordDecision (or the coordinator's recovery answer) resolves it.
	RecordPrepared
	// RecordDecision is a 2PC outcome for an earlier RecordPrepared.
	RecordDecision
	// RecordMigration is an elastic repartitioning step appended at a
	// drained quiescent point: an outbound record logs the key range this
	// partition surrendered, an inbound record logs the rows it adopted.
	// Replay mutates the store directly — there is no transaction to
	// re-execute — keeping the log a complete transcript of how the
	// partition's state evolved, so crash-restart recovers a post-migration
	// store from checkpoint + tail alone.
	RecordMigration
)

// Record is one command-log entry. The byte image (AppendRecord) is the
// durable representation; the in-memory Record keeps references to the same
// invocation values so replay re-executes without re-parsing.
type Record struct {
	Kind RecordKind
	Txn  msg.TxnID
	Proc string
	// Works are the fragment inputs the primary executed for the
	// transaction, in execution order (remote reads baked in, as in replica
	// forwarding) — the command to replay.
	Works []any
	// Commit is the decision outcome (RecordDecision only).
	Commit bool
	// Client and Reply are kept for committed single-partition records so a
	// restarted primary can deduplicate client recovery resends, exactly as
	// a promoted backup does. They are not part of the byte image: the log
	// stores inputs, and deterministic re-execution regenerates outputs.
	Client sim.ActorID
	Reply  *msg.ClientReply
	// MigOut, MigLo, MigHi and MigRows describe a RecordMigration: an
	// outbound record (MigOut true) deletes [MigLo, MigHi) from every
	// table on replay; an inbound record reinstalls MigRows.
	MigOut       bool
	MigLo, MigHi string
	MigRows      []msg.MigRow
	// Size is the record's encoded length in bytes.
	Size int
}

// Gate identifies a send held until its log record is durable: the
// transaction and the record index its release is keyed on (a speculative
// re-execution appends a fresh record, superseding the old gate).
type Gate struct {
	Txn msg.TxnID
	Rec int
}

// AppendEncoder is implemented by fragment work types that can encode
// themselves into the log image without reflection or allocation (the hot
// path's 0-alloc discipline). Works without it fall back to fmt, which is
// deterministic for the simulator's value types (maps print in sorted key
// order — the same discipline Store.Fingerprint relies on) but allocates.
type AppendEncoder interface {
	// AppendLog appends a deterministic encoding of the work to dst and
	// returns the extended slice.
	AppendLog(dst []byte) []byte
}

// AppendRecord appends the deterministic byte encoding of one record to dst
// and returns the extended slice. The format is a compact line per record:
//
//	C t=<txn> p=<proc> w=<work>|<work>...\n   committed single-partition
//	P t=<txn> p=<proc> w=<work>|<work>...\n   prepared multi-partition
//	D t=<txn> c=<0|1>\n                       decision
//
// With pre-grown buffers and AppendEncoder works the call performs no
// allocations (see the AllocsPerRun pin in the package tests).
func AppendRecord(dst []byte, kind RecordKind, txn msg.TxnID, proc string, works []any, commit bool) []byte {
	switch kind {
	case RecordCommitted:
		dst = append(dst, 'C')
	case RecordPrepared:
		dst = append(dst, 'P')
	case RecordDecision:
		dst = append(dst, 'D')
	}
	dst = append(dst, " t="...)
	dst = strconv.AppendUint(dst, uint64(txn), 10)
	if kind == RecordDecision {
		dst = append(dst, " c="...)
		if commit {
			dst = append(dst, '1')
		} else {
			dst = append(dst, '0')
		}
		return append(dst, '\n')
	}
	dst = append(dst, " p="...)
	dst = append(dst, proc...)
	dst = append(dst, " w="...)
	for i, w := range works {
		if i > 0 {
			dst = append(dst, '|')
		}
		if enc, ok := w.(AppendEncoder); ok {
			dst = enc.AppendLog(dst)
		} else {
			dst = fmt.Appendf(dst, "%v", w)
		}
	}
	return append(dst, '\n')
}

// AppendMigrationRecord appends the deterministic byte encoding of one
// migration record to dst and returns the extended slice:
//
//	M d=o lo=<lo> hi=<hi>\n                    outbound (range surrendered)
//	M d=i r=<table>/<key>=<val>|...\n          inbound (rows adopted)
//
// Values encode through fmt like fallback works — deterministic for the
// simulator's value types.
func AppendMigrationRecord(dst []byte, rec Record) []byte {
	dst = append(dst, "M d="...)
	if rec.MigOut {
		dst = append(dst, "o lo="...)
		dst = append(dst, rec.MigLo...)
		dst = append(dst, " hi="...)
		dst = append(dst, rec.MigHi...)
	} else {
		dst = append(dst, "i r="...)
		for i, r := range rec.MigRows {
			if i > 0 {
				dst = append(dst, '|')
			}
			dst = append(dst, r.Table...)
			dst = append(dst, '/')
			dst = append(dst, r.Key...)
			dst = append(dst, '=')
			dst = fmt.Appendf(dst, "%v", r.Val)
		}
	}
	return append(dst, '\n')
}

// Config is the resolved durability configuration for one partition.
type Config struct {
	// GroupCommitBytes seals the open batch when it reaches this size.
	GroupCommitBytes int
	// GroupCommitDelay seals a non-empty open batch after this long.
	GroupCommitDelay sim.Time
	// CheckpointEvery is the target interval between fuzzy checkpoints.
	CheckpointEvery sim.Time
	// DiskLatency is the disk's fixed per-write (and per-read) latency.
	DiskLatency sim.Time
	// DiskBandwidth is the disk's throughput in bytes per second of virtual
	// time, charged on top of DiskLatency.
	DiskBandwidth float64
}

// WriteReq asks the disk actor to persist bytes. The payload itself stays in
// the logger; the disk only models service time.
type WriteReq struct {
	// Seq identifies the write in the issuer's sequence (log batches and
	// checkpoints use separate sequences, discriminated by Checkpoint).
	Seq uint64
	// Bytes sizes the write for the bandwidth charge.
	Bytes int
	// Checkpoint marks checkpoint-image writes (no gating semantics).
	Checkpoint bool
	// Notify receives the WriteDone.
	Notify sim.ActorID
}

// WriteDone reports a completed disk write back to the log's owner.
type WriteDone struct {
	Seq        uint64
	Checkpoint bool
}

// FlushTick is the group-commit delay timer. Batch identifies the open batch
// it was armed for; a tick for an already-sealed batch is stale and ignored.
type FlushTick struct {
	Batch uint64
}

// Disk is the simulated log device: a single-queue actor whose busy-until CPU
// models serialized writes with a fixed latency plus a bandwidth term.
// Writes complete in issue order (FIFO), which is what makes durability a
// log prefix.
type Disk struct {
	Latency   sim.Time
	Bandwidth float64
}

// Receive services one write request.
func (d *Disk) Receive(ctx *sim.Context, m sim.Message) {
	req, ok := m.(*WriteReq)
	if !ok {
		panic(fmt.Sprintf("durable: disk received unexpected message %T", m))
	}
	ctx.Spend(d.serviceTime(req.Bytes))
	ctx.Send(req.Notify, &WriteDone{Seq: req.Seq, Checkpoint: req.Checkpoint}, 0)
}

func (d *Disk) serviceTime(bytes int) sim.Time {
	t := d.Latency
	if d.Bandwidth > 0 {
		t += sim.Time(float64(bytes) / d.Bandwidth * float64(sim.Second))
	}
	return t
}

// Checkpoint is one durable store snapshot: replaying the log records at
// index >= Offset on top of Store reconstructs the partition's committed
// state. Offset counts *all* records appended when the snapshot was taken —
// valid because snapshots are only captured at partition-quiescent points,
// where every appended record's transaction is fully resolved and applied.
type Checkpoint struct {
	Store  *storage.Store
	Offset int
	// Bytes is the snapshot's approximate size, pricing the checkpoint
	// write and the recovery-time load.
	Bytes uint64
	// At is the capture time.
	At sim.Time
}

// sealedBatch is one group-commit batch written to disk and awaiting its
// completion notification.
type sealedBatch struct {
	seq   uint64
	upto  int // records[:upto] are covered once this batch is durable
	bytes int
}

// Logger owns one partition's command log and checkpoint state. It is plain
// state mutated from its owner's Receive (no actor of its own): appends and
// flushes happen inside partition deliveries, disk completions are delivered
// to the owner and handed back via Durable/CheckpointDurable.
type Logger struct {
	cfg   Config
	disk  sim.ActorID
	owner sim.ActorID

	// records and image grow in lockstep: records[i]'s bytes are
	// image[sum(Size[:i]) : sum(Size[:i+1])]. The image is retained whole —
	// it is the run's deterministic byte transcript (LogBytes) and the
	// bit-identity surface the determinism tests compare.
	records []Record
	image   []byte

	// durableRecs/durableLen are the durability watermark: the prefix of
	// records/image confirmed on disk.
	durableRecs int
	durableLen  int

	// Group commit: the open batch covers records[batchFrom:] with
	// batchBytes encoded bytes. batchID increments on every seal, aging any
	// armed FlushTick for the sealed batch.
	batchID    uint64
	batchFrom  int
	batchBytes int
	writeSeq   uint64
	sealed     []sealedBatch

	// Checkpoints: ckpt is the latest durable snapshot; writing is the one
	// in flight (at most one), installed on its WriteDone.
	ckpt      Checkpoint
	writing   *Checkpoint
	ckptSeq   uint64
	ckptCount int
	truncated uint64

	// released is reused scratch for Durable's gate list.
	released []Gate

	// AppendedBytes and DurableBatches are cumulative counters for
	// observability.
	AppendedBytes  uint64
	DurableBatches uint64
}

// NewLogger builds a logger writing to the given disk actor. Call Bind after
// registering the owning partition, and InstallInitial with the loaded store.
func NewLogger(cfg Config, disk sim.ActorID) *Logger {
	return &Logger{cfg: cfg, disk: disk}
}

// Bind sets the owner actor that receives WriteDone notifications.
func (l *Logger) Bind(owner sim.ActorID) { l.owner = owner }

// InstallInitial records the freshly loaded store as checkpoint zero, so a
// crash before the first periodic checkpoint recovers from the initial load
// plus the whole log.
func (l *Logger) InstallInitial(store *storage.Store) {
	l.ckpt = Checkpoint{Store: store.Clone(), Offset: 0, Bytes: store.ApproxBytes()}
}

// CheckpointEvery returns the configured checkpoint interval.
func (l *Logger) CheckpointEvery() sim.Time { return l.cfg.CheckpointEvery }

// AppendCommitted appends a committed single-partition transaction record and
// returns its index — the gate the caller's reply release is keyed on.
func (l *Logger) AppendCommitted(ctx *sim.Context, txn msg.TxnID, proc string, works []any, client sim.ActorID, reply *msg.ClientReply) int {
	return l.append(ctx, Record{Kind: RecordCommitted, Txn: txn, Proc: proc, Works: works, Client: client, Reply: reply})
}

// AppendPrepared appends a prepared multi-partition transaction record and
// returns its index — the gate the caller's commit vote is keyed on.
func (l *Logger) AppendPrepared(ctx *sim.Context, txn msg.TxnID, proc string, works []any) int {
	return l.append(ctx, Record{Kind: RecordPrepared, Txn: txn, Proc: proc, Works: works})
}

// AppendDecision appends a 2PC outcome record. Decisions are not gated on
// durability: a lost decision recovers from the coordinator's decision log.
func (l *Logger) AppendDecision(ctx *sim.Context, txn msg.TxnID, commit bool) {
	l.append(ctx, Record{Kind: RecordDecision, Txn: txn, Commit: commit})
}

// AppendMigrationOut appends an outbound migration record: this partition
// surrendered [lo, hi) at a drained quiescent point. Migration records ride
// the normal group-commit path and, like decisions, gate nothing — the
// facade holds the cluster paused until the migration lands, so no reply
// can race the record to a client.
func (l *Logger) AppendMigrationOut(ctx *sim.Context, lo, hi string) {
	l.append(ctx, Record{Kind: RecordMigration, MigOut: true, MigLo: lo, MigHi: hi})
}

// AppendMigrationIn appends an inbound migration record carrying the adopted
// rows. The rows slice is retained; callers pass a stable copy.
func (l *Logger) AppendMigrationIn(ctx *sim.Context, rows []msg.MigRow) {
	l.append(ctx, Record{Kind: RecordMigration, MigRows: rows})
}

func (l *Logger) append(ctx *sim.Context, rec Record) int {
	start := len(l.image)
	if rec.Kind == RecordMigration {
		l.image = AppendMigrationRecord(l.image, rec)
	} else {
		l.image = AppendRecord(l.image, rec.Kind, rec.Txn, rec.Proc, rec.Works, rec.Commit)
	}
	rec.Size = len(l.image) - start
	l.AppendedBytes += uint64(rec.Size)
	l.records = append(l.records, rec)
	if l.batchBytes == 0 {
		// Opening a batch: arm its latency bound. The tick carries the
		// batch id, so it no-ops if the batch seals by size first.
		ctx.After(l.cfg.GroupCommitDelay, FlushTick{Batch: l.batchID})
	}
	l.batchBytes += rec.Size
	if l.batchBytes >= l.cfg.GroupCommitBytes {
		l.seal(ctx)
	}
	return len(l.records) - 1
}

// Flush seals the open batch if the given FlushTick is still current.
func (l *Logger) Flush(ctx *sim.Context, batch uint64) {
	if batch != l.batchID || l.batchBytes == 0 {
		return
	}
	l.seal(ctx)
}

// seal closes the open batch and issues its disk write. Log appends charge no
// partition CPU: command logging's transaction-visible cost is group-commit
// latency, not CPU (the point of logging invocations, not data).
func (l *Logger) seal(ctx *sim.Context) {
	l.writeSeq++
	l.sealed = append(l.sealed, sealedBatch{seq: l.writeSeq, upto: len(l.records), bytes: l.batchBytes})
	l.batchID++
	l.batchFrom = len(l.records)
	bytes := l.batchBytes
	l.batchBytes = 0
	ctx.Send(l.disk, &WriteReq{Seq: l.writeSeq, Bytes: bytes, Notify: l.owner}, 0)
}

// Durable processes a log batch's WriteDone: the durability watermark
// advances over the batch and every newly durable committed/prepared record's
// gate is returned, in append order. The returned slice is reused scratch.
func (l *Logger) Durable(seq uint64) []Gate {
	if len(l.sealed) == 0 || l.sealed[0].seq != seq {
		panic(fmt.Sprintf("durable: out-of-order batch completion %d", seq))
	}
	front := l.sealed[0]
	l.sealed = append(l.sealed[:0], l.sealed[1:]...)
	l.released = l.released[:0]
	for i := l.durableRecs; i < front.upto; i++ {
		r := &l.records[i]
		l.durableLen += r.Size
		if r.Kind == RecordCommitted || r.Kind == RecordPrepared {
			l.released = append(l.released, Gate{Txn: r.Txn, Rec: i})
		}
	}
	l.durableRecs = front.upto
	l.DurableBatches++
	return l.released
}

// CanCheckpoint reports whether a new checkpoint may start (one in flight).
func (l *Logger) CanCheckpoint() bool { return l.writing == nil }

// StartCheckpoint captures a fuzzy checkpoint: a shallow clone of the store
// (cheap under the copy-on-write row discipline) taken at a
// partition-quiescent point, stamped with the current record offset, and
// written to disk. The caller must hold the quiescence invariant: every
// appended record's transaction is resolved and applied, so snapshot +
// records[Offset:] is exactly the committed state.
func (l *Logger) StartCheckpoint(ctx *sim.Context, store *storage.Store) {
	if l.writing != nil {
		return
	}
	snap := &Checkpoint{Store: store.Clone(), Offset: len(l.records), Bytes: store.ApproxBytes(), At: ctx.Now()}
	l.writing = snap
	l.ckptSeq++
	ctx.Send(l.disk, &WriteReq{Seq: l.ckptSeq, Bytes: int(snap.Bytes), Checkpoint: true, Notify: l.owner}, 0)
}

// CheckpointDurable installs the in-flight checkpoint once its disk write
// completes, rotating the log: records below the new offset are retired (the
// simulator keeps the byte image for determinism checks, but accounts the
// truncation).
func (l *Logger) CheckpointDurable(seq uint64) {
	if l.writing == nil || l.ckptSeq != seq {
		return
	}
	for i := l.ckpt.Offset; i < l.writing.Offset; i++ {
		l.truncated += uint64(l.records[i].Size)
	}
	l.ckpt = *l.writing
	l.writing = nil
	l.ckptCount++
}

// Latest returns the latest durable checkpoint.
func (l *Logger) Latest() Checkpoint { return l.ckpt }

// Tail returns the durable log records recovery must replay on top of the
// latest checkpoint: those at index >= the checkpoint offset, up to the
// durability watermark. A checkpoint can cover records that never became
// durable (its snapshot is captured after they applied), in which case the
// tail is empty — the snapshot already holds their effects.
func (l *Logger) Tail() []Record {
	if l.ckpt.Offset >= l.durableRecs {
		return nil
	}
	return l.records[l.ckpt.Offset:l.durableRecs]
}

// Reattach resets the logger to its on-disk truth after a crash and hands
// ownership to the restarted process: volatile state — the open batch,
// sealed-but-unconfirmed writes, any in-flight checkpoint — is discarded,
// and records/image truncate to the durability watermark. Appends resume
// from there.
func (l *Logger) Reattach(owner sim.ActorID) {
	l.owner = owner
	l.records = l.records[:l.durableRecs]
	l.image = l.image[:l.durableLen]
	l.batchID++ // age any armed FlushTick (its timer died with the owner anyway)
	l.batchFrom = l.durableRecs
	l.batchBytes = 0
	l.sealed = l.sealed[:0]
	l.writing = nil
}

// ReadCost prices loading bytes from the disk at recovery (same latency and
// bandwidth model as writes).
func (l *Logger) ReadCost(bytes uint64) sim.Time {
	d := Disk{Latency: l.cfg.DiskLatency, Bandwidth: l.cfg.DiskBandwidth}
	return d.serviceTime(int(bytes))
}

// OpenBatchBytes returns the encoded size of the open (unsealed) batch.
// Zero means every appended record is in a batch already queued on the FIFO
// disk — the condition under which a checkpoint write issued now is ordered
// after all of them (see Partition's checkpoint-quiescence rule).
func (l *Logger) OpenBatchBytes() int { return l.batchBytes }

// Image returns the log's deterministic byte transcript (not a copy).
func (l *Logger) Image() []byte { return l.image }

// DurableLen returns the byte length of the durable log prefix.
func (l *Logger) DurableLen() int { return l.durableLen }

// Checkpoints returns how many periodic checkpoints have been installed.
func (l *Logger) Checkpoints() int { return l.ckptCount }

// TruncatedBytes returns the log bytes retired by checkpoint rotation.
func (l *Logger) TruncatedBytes() uint64 { return l.truncated }
