package durable

import (
	"bytes"
	"testing"

	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// owner is a test double for the logger's owning partition: it executes
// queued commands against the logger inside a Receive (so ctx is live) and
// collects the gates released by batch completions.
type owner struct {
	log      *Logger
	released []Gate
	ckptDone int
}

// cmd is a command the test injects into the owner's Receive.
type cmd func(ctx *sim.Context)

func (o *owner) Receive(ctx *sim.Context, m sim.Message) {
	switch v := m.(type) {
	case cmd:
		v(ctx)
	case *WriteDone:
		if v.Checkpoint {
			o.log.CheckpointDurable(v.Seq)
			o.ckptDone++
			return
		}
		o.released = append(o.released, o.log.Durable(v.Seq)...)
	case FlushTick:
		o.log.Flush(ctx, v.Batch)
	default:
		panic("unexpected message")
	}
}

// rig wires a scheduler, disk actor, and logger-owning test actor.
func rig(cfg Config) (*sim.Scheduler, *owner, sim.ActorID) {
	s := sim.New()
	disk := s.Register("disk", &Disk{Latency: cfg.DiskLatency, Bandwidth: cfg.DiskBandwidth})
	o := &owner{}
	id := s.Register("owner", o)
	o.log = NewLogger(cfg, disk)
	o.log.Bind(id)
	return s, o, id
}

func kvWorks() []any {
	return []any{&testWork{keys: []string{"a", "b"}}}
}

// testWork is a minimal AppendEncoder fragment input.
type testWork struct{ keys []string }

func (w *testWork) AppendLog(dst []byte) []byte {
	dst = append(dst, "tw"...)
	for _, k := range w.keys {
		dst = append(dst, ' ')
		dst = append(dst, k...)
	}
	return dst
}

func TestGroupCommitBySize(t *testing.T) {
	cfg := Config{GroupCommitBytes: 40, GroupCommitDelay: sim.Second, DiskLatency: 10 * sim.Microsecond}
	s, o, id := rig(cfg)
	// Two records of ~22 bytes each cross the 40-byte threshold and seal
	// without waiting for the (huge) delay timer.
	s.SendAt(0, id, cmd(func(ctx *sim.Context) {
		o.log.AppendCommitted(ctx, 1, "kv", kvWorks(), 0, nil)
		o.log.AppendCommitted(ctx, 2, "kv", kvWorks(), 0, nil)
	}))
	s.Run(100 * sim.Microsecond)
	if o.log.DurableBatches != 1 {
		t.Fatalf("DurableBatches = %d, want 1 (size-triggered seal)", o.log.DurableBatches)
	}
	if got := len(o.released); got != 2 {
		t.Fatalf("released %d gates, want 2", got)
	}
	if o.released[0] != (Gate{Txn: 1, Rec: 0}) || o.released[1] != (Gate{Txn: 2, Rec: 1}) {
		t.Fatalf("gates = %+v, want txn 1 rec 0, txn 2 rec 1", o.released)
	}
	if o.log.DurableLen() != len(o.log.Image()) {
		t.Fatalf("durable prefix %d != image %d after all batches complete", o.log.DurableLen(), len(o.log.Image()))
	}
	// Tail replays from the initial checkpoint: both records.
	if got := len(o.log.Tail()); got != 2 {
		t.Fatalf("tail has %d records, want 2", got)
	}
}

func TestGroupCommitByTimer(t *testing.T) {
	cfg := Config{GroupCommitBytes: 1 << 20, GroupCommitDelay: 50 * sim.Microsecond, DiskLatency: 10 * sim.Microsecond}
	s, o, id := rig(cfg)
	s.SendAt(0, id, cmd(func(ctx *sim.Context) {
		o.log.AppendCommitted(ctx, 7, "kv", kvWorks(), 0, nil)
	}))
	s.Run(40 * sim.Microsecond)
	if len(o.released) != 0 {
		t.Fatal("record became durable before the group-commit delay elapsed")
	}
	s.Run(200 * sim.Microsecond)
	if len(o.released) != 1 || o.released[0].Txn != 7 {
		t.Fatalf("released = %+v, want one gate for txn 7 after the delay", o.released)
	}
}

func TestStaleFlushTickIgnored(t *testing.T) {
	cfg := Config{GroupCommitBytes: 10, GroupCommitDelay: 50 * sim.Microsecond, DiskLatency: 10 * sim.Microsecond}
	s, o, id := rig(cfg)
	// The single append crosses the size threshold immediately; the armed
	// FlushTick arrives later for the already-sealed batch and must no-op.
	s.SendAt(0, id, cmd(func(ctx *sim.Context) {
		o.log.AppendCommitted(ctx, 1, "kv", kvWorks(), 0, nil)
	}))
	s.Drain()
	if o.log.DurableBatches != 1 {
		t.Fatalf("DurableBatches = %d, want exactly 1 (stale tick must not seal an empty batch)", o.log.DurableBatches)
	}
}

func TestDecisionRecordsUngated(t *testing.T) {
	cfg := Config{GroupCommitBytes: 4, GroupCommitDelay: 50 * sim.Microsecond, DiskLatency: 10 * sim.Microsecond}
	s, o, id := rig(cfg)
	s.SendAt(0, id, cmd(func(ctx *sim.Context) {
		o.log.AppendDecision(ctx, 9, true)
	}))
	s.Drain()
	if len(o.released) != 0 {
		t.Fatalf("decision record released gates %+v; decisions are not gated", o.released)
	}
	if o.log.DurableLen() == 0 {
		t.Fatal("decision record never became durable")
	}
}

func TestOutOfOrderCompletionPanics(t *testing.T) {
	cfg := Config{GroupCommitBytes: 4, GroupCommitDelay: sim.Second}
	s, o, id := rig(cfg)
	s.SendAt(0, id, cmd(func(ctx *sim.Context) {
		o.log.AppendCommitted(ctx, 1, "kv", kvWorks(), 0, nil)
		o.log.AppendCommitted(ctx, 2, "kv", kvWorks(), 0, nil)
	}))
	defer func() {
		if recover() == nil {
			t.Fatal("Durable with a non-front batch seq did not panic")
		}
	}()
	// Two sealed batches exist (seqs 1 and 2); completing 2 first violates
	// the FIFO prefix invariant.
	o.log.Durable(2)
	_ = s
}

func testStore() *storage.Store {
	st := storage.NewStore()
	tab := storage.NewHashTable("kv")
	tab.Put("k", int64(1))
	st.AddTable(tab)
	return st
}

func TestCheckpointRotatesAndTruncates(t *testing.T) {
	cfg := Config{GroupCommitBytes: 4, GroupCommitDelay: sim.Second, DiskLatency: 10 * sim.Microsecond}
	s, o, id := rig(cfg)
	st := testStore()
	o.log.InstallInitial(st)
	s.SendAt(0, id, cmd(func(ctx *sim.Context) {
		o.log.AppendCommitted(ctx, 1, "kv", kvWorks(), 0, nil)
	}))
	s.Drain()
	s.SendAt(s.Now(), id, cmd(func(ctx *sim.Context) {
		if !o.log.CanCheckpoint() {
			t.Error("CanCheckpoint false with no checkpoint in flight")
		}
		o.log.StartCheckpoint(ctx, st)
		if o.log.CanCheckpoint() {
			t.Error("CanCheckpoint true while a checkpoint write is in flight")
		}
	}))
	s.Drain()
	if o.log.Checkpoints() != 1 {
		t.Fatalf("Checkpoints = %d, want 1", o.log.Checkpoints())
	}
	ck := o.log.Latest()
	if ck.Offset != 1 {
		t.Fatalf("checkpoint offset = %d, want 1 (covers the appended record)", ck.Offset)
	}
	if o.log.TruncatedBytes() == 0 {
		t.Fatal("rotation truncated no log bytes")
	}
	// The checkpoint covers every durable record, so the replay tail is empty.
	if tail := o.log.Tail(); tail != nil {
		t.Fatalf("tail = %d records, want nil (checkpoint covers the whole durable log)", len(tail))
	}
}

func TestReattachDiscardsVolatileState(t *testing.T) {
	cfg := Config{GroupCommitBytes: 25, GroupCommitDelay: sim.Second, DiskLatency: 10 * sim.Microsecond}
	s, o, id := rig(cfg)
	o.log.InstallInitial(testStore())
	// First append seals and completes; second stays in the open batch.
	s.SendAt(0, id, cmd(func(ctx *sim.Context) {
		o.log.AppendCommitted(ctx, 1, "kv", kvWorks(), 0, nil)
	}))
	s.Drain()
	s.SendAt(s.Now(), id, cmd(func(ctx *sim.Context) {
		o.log.AppendCommitted(ctx, 2, "kv", kvWorks(), 0, nil)
	}))
	s.Run(s.Now()) // deliver the append only; leave its batch open
	durableLen := o.log.DurableLen()
	if len(o.log.Image()) <= durableLen {
		t.Fatal("test setup: second record should be appended but not durable")
	}
	o.log.Reattach(id)
	if got := len(o.log.Image()); got != durableLen {
		t.Fatalf("image length after Reattach = %d, want durable watermark %d", got, durableLen)
	}
	if got := len(o.log.Tail()); got != 1 {
		t.Fatalf("tail after Reattach = %d records, want 1 (only the durable record survives)", got)
	}
}

func TestDiskServiceTime(t *testing.T) {
	s := sim.New()
	d := &Disk{Latency: 20 * sim.Microsecond, Bandwidth: 1e6} // 1 MB/s
	disk := s.Register("disk", d)
	var doneAt sim.Time
	o := actorFunc(func(ctx *sim.Context, m sim.Message) {
		if _, ok := m.(*WriteDone); ok {
			doneAt = ctx.Now()
		}
	})
	id := s.Register("owner", o)
	// 1e6 bytes at 1 MB/s = 1 s of bandwidth time, plus 20 µs latency.
	s.SendAt(0, disk, &WriteReq{Seq: 1, Bytes: 1e6, Notify: id})
	s.Drain()
	want := sim.Second + 20*sim.Microsecond
	if doneAt != want {
		t.Fatalf("WriteDone arrived at %v, want %v (latency + bytes/bandwidth)", doneAt, want)
	}
}

type actorFunc func(ctx *sim.Context, m sim.Message)

func (f actorFunc) Receive(ctx *sim.Context, m sim.Message) { f(ctx, m) }

func TestAppendRecordFormat(t *testing.T) {
	var dst []byte
	dst = AppendRecord(dst, RecordCommitted, 5, "kv", kvWorks(), false)
	dst = AppendRecord(dst, RecordPrepared, 6, "kv", kvWorks(), false)
	dst = AppendRecord(dst, RecordDecision, 6, "", nil, true)
	want := "C t=5 p=kv w=tw a b\nP t=6 p=kv w=tw a b\nD t=6 c=1\n"
	if !bytes.Equal(dst, []byte(want)) {
		t.Fatalf("encoded image:\n%q\nwant:\n%q", dst, want)
	}
}

func TestAppendRecordZeroAllocs(t *testing.T) {
	works := kvWorks()
	dst := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendRecord(dst[:0], RecordCommitted, 12345, "kv", works, false)
	})
	if allocs != 0 {
		t.Fatalf("AppendRecord allocates %.1f times per record on the warm path, want 0", allocs)
	}
}

func TestKVWorkEncodeZeroAllocs(t *testing.T) {
	// The real microbenchmark fragment input must encode through the
	// AppendEncoder fast path, not the allocating fmt fallback.
	p := kvstore.Proc{}
	plan := p.Plan(&kvstore.Args{Keys: map[msg.PartitionID][]string{0: {"c000.p00.k00", "c000.p00.k01"}}},
		&txn.Catalog{NumPartitions: 2})
	works := []any{plan.Work[0]}
	if _, ok := works[0].(AppendEncoder); !ok {
		t.Fatal("kvstore fragment input does not implement AppendEncoder")
	}
	dst := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendRecord(dst[:0], RecordCommitted, 12345, "kv", works, false)
	})
	if allocs != 0 {
		t.Fatalf("kvstore log append allocates %.1f times per record on the warm path, want 0", allocs)
	}
}
