// Package oracle is the serializability test harness: it records, per
// partition, the value trace of every committed transaction — each row read
// (with the value seen) and each row written (with the value installed), in
// program order — together with the partition's commit order, and verifies
// offline that the history is equivalent to a serial execution.
//
// The check replays the committed transactions in commit order against a
// clone of the initial store: every recorded read must see exactly the value
// the replay store holds at that point (a mismatch means the transaction
// observed state that no serial execution in commit order could have shown
// it — a serializability violation, e.g. a dirty read of a later-aborted
// write), and after the full replay the store must equal the partition's
// actual final store. Together the two checks catch lost updates, dirty
// reads, non-repeatable reads and phantom values without re-executing any
// procedure logic, so the oracle is independent of the engines it audits.
//
// Every engine in this repository serializes committed transactions in
// partition commit order, with one deliberate exception: a declared
// read-only transaction under MVCC serializes at its snapshot point (its
// arrival), which may precede writers that committed before the reader's
// 2PC decision arrived. The partition pins such transactions to a sequence
// number at first execution (Pin) so the replay inserts them where their
// snapshot lives.
//
// Recording hooks into storage.TxnView's Observer seam and is enabled by a
// test-only configuration flag; production runs never construct a history.
package oracle

import (
	"fmt"
	"sort"

	"specdb/internal/msg"
	"specdb/internal/storage"
)

// Op is a row access kind.
type Op uint8

// Row access kinds.
const (
	OpRead Op = iota
	OpWrite
	OpDelete
	// OpScan records a completed range scan: bounds and limit in the scan
	// fields, plus the exact key/value sequence the transaction saw.
	// Point-read replay cannot catch phantoms — a row that was absent is
	// never observed — so Verify re-executes the scan against the replay
	// store and compares the full sequences.
	OpScan
)

// Row is one observed row access.
type Row struct {
	Op         Op
	Table, Key string
	// Val is the value read (OpRead, when Existed) or written (OpWrite).
	Val any
	// Existed reports whether a read found the row.
	Existed bool
	// ScanHi, ScanReverse and ScanLimit are the scan's declared bounds
	// (OpScan only; Key doubles as the low bound). ScanKeys/ScanVals are
	// the observed result sequence, in visit order.
	ScanHi      string
	ScanReverse bool
	ScanLimit   int
	ScanKeys    []string
	ScanVals    []any
}

// TxnRecord is one transaction's value trace on one partition.
type TxnRecord struct {
	Txn msg.TxnID
	// Seq is the transaction's position in the partition's serial order:
	// assigned at commit, or at first execution for pinned snapshot
	// readers.
	Seq  uint64
	Rows []Row
}

// PartitionHistory accumulates one partition's transaction traces. It is
// single-threaded, like the partition that feeds it.
type PartitionHistory struct {
	open      map[msg.TxnID]*TxnRecord
	committed []*TxnRecord
	nextSeq   uint64
	pinned    map[msg.TxnID]bool
}

// NewPartitionHistory returns an empty history.
func NewPartitionHistory() *PartitionHistory {
	return &PartitionHistory{
		open:   make(map[msg.TxnID]*TxnRecord),
		pinned: make(map[msg.TxnID]bool),
	}
}

// Observer returns a storage.Observer that appends txn's accesses to its
// open record.
func (h *PartitionHistory) Observer(txn msg.TxnID) storage.Observer {
	return recorder{h: h, txn: txn}
}

// rec returns txn's open record, creating it on first touch.
func (h *PartitionHistory) rec(txn msg.TxnID) *TxnRecord {
	r := h.open[txn]
	if r == nil {
		r = &TxnRecord{Txn: txn}
		h.open[txn] = r
	}
	return r
}

// Pin assigns txn its serial position now instead of at commit — used for
// MVCC's declared read-only transactions, which serialize at their snapshot
// point even though their 2PC decision (and thus Commit) arrives later.
// Pinning is idempotent.
func (h *PartitionHistory) Pin(txn msg.TxnID) {
	if h.pinned[txn] {
		return
	}
	h.pinned[txn] = true
	h.nextSeq++
	h.rec(txn).Seq = h.nextSeq
}

// Commit seals txn's record into the committed history at the next serial
// position (or its pinned position). A commit for a transaction with no open
// record is ignored — it performed no data access on this partition.
func (h *PartitionHistory) Commit(txn msg.TxnID) {
	r := h.open[txn]
	if r == nil {
		delete(h.pinned, txn)
		return
	}
	delete(h.open, txn)
	if h.pinned[txn] {
		delete(h.pinned, txn)
	} else {
		h.nextSeq++
		r.Seq = h.nextSeq
	}
	h.committed = append(h.committed, r)
}

// RecordMigrationOut seals a synthetic record at the next serial position
// for an outbound key-range migration: every surrendered row becomes an
// OpDelete. Migrations happen only at drained quiescent points, so "next
// serial position" is exact — no transaction is open. Without these records
// the replay store would diverge from the partition's final store after a
// migration, and Verify would report a false violation.
func (h *PartitionHistory) RecordMigrationOut(rows []msg.MigRow) {
	rec := &TxnRecord{Txn: msg.NoTxn}
	for _, r := range rows {
		rec.Rows = append(rec.Rows, Row{Op: OpDelete, Table: r.Table, Key: r.Key})
	}
	h.nextSeq++
	rec.Seq = h.nextSeq
	h.committed = append(h.committed, rec)
}

// RecordMigrationIn seals a synthetic record for an inbound migration: every
// adopted row becomes an OpWrite installing the migrated value.
func (h *PartitionHistory) RecordMigrationIn(rows []msg.MigRow) {
	rec := &TxnRecord{Txn: msg.NoTxn}
	for _, r := range rows {
		rec.Rows = append(rec.Rows, Row{Op: OpWrite, Table: r.Table, Key: r.Key, Val: r.Val, Existed: true})
	}
	h.nextSeq++
	rec.Seq = h.nextSeq
	h.committed = append(h.committed, rec)
}

// Drop discards txn's open record: it aborted, or was rolled back for
// re-execution (the re-execution re-records from scratch).
func (h *PartitionHistory) Drop(txn msg.TxnID) {
	delete(h.open, txn)
	delete(h.pinned, txn)
}

// Committed returns the sealed records in serial order.
func (h *PartitionHistory) Committed() []*TxnRecord {
	out := append([]*TxnRecord(nil), h.committed...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of committed records.
func (h *PartitionHistory) Len() int { return len(h.committed) }

// recorder adapts a PartitionHistory to storage.Observer for one txn.
type recorder struct {
	h   *PartitionHistory
	txn msg.TxnID
}

// ObserveGet implements storage.Observer.
func (r recorder) ObserveGet(table, key string, val any, ok bool) {
	rec := r.h.rec(r.txn)
	rec.Rows = append(rec.Rows, Row{Op: OpRead, Table: table, Key: key, Val: val, Existed: ok})
}

// ObservePut implements storage.Observer.
func (r recorder) ObservePut(table, key string, val any) {
	rec := r.h.rec(r.txn)
	rec.Rows = append(rec.Rows, Row{Op: OpWrite, Table: table, Key: key, Val: val, Existed: true})
}

// ObserveDelete implements storage.Observer.
func (r recorder) ObserveDelete(table, key string) {
	rec := r.h.rec(r.txn)
	rec.Rows = append(rec.Rows, Row{Op: OpDelete, Table: table, Key: key})
}

// ObserveScan implements storage.Observer.
func (r recorder) ObserveScan(table, lo, hi string, reverse bool, limit int, keys []string, vals []any) {
	rec := r.h.rec(r.txn)
	rec.Rows = append(rec.Rows, Row{
		Op: OpScan, Table: table, Key: lo,
		ScanHi: hi, ScanReverse: reverse, ScanLimit: limit,
		ScanKeys: append([]string(nil), keys...),
		ScanVals: append([]any(nil), vals...),
	})
}

// Verify replays the committed history serially against a clone of initial
// and checks both that every recorded read saw exactly the serial state and
// that the replayed store equals final. A non-nil error pinpoints the first
// divergence: the partition's execution was not equivalent to the serial
// order its commits claim.
//
// Values are compared by their fmt representation, the same discipline as
// storage.DiffStores and Store.Fingerprint (safe under the copy-on-write row
// discipline: observed values are never mutated in place).
func (h *PartitionHistory) Verify(initial, final *storage.Store) error {
	replay := initial.Clone()
	for _, rec := range h.Committed() {
		for i, row := range rec.Rows {
			tbl := replay.Table(row.Table)
			switch row.Op {
			case OpRead:
				cur, ok := tbl.Get(row.Key)
				if ok != row.Existed {
					return fmt.Errorf("oracle: txn %d (seq %d) row %d: read %s/%q existed=%v, serial replay has existed=%v",
						rec.Txn, rec.Seq, i, row.Table, row.Key, row.Existed, ok)
				}
				if ok && fmt.Sprintf("%v", cur) != fmt.Sprintf("%v", row.Val) {
					return fmt.Errorf("oracle: txn %d (seq %d) row %d: read %s/%q saw %v, serial replay has %v",
						rec.Txn, rec.Seq, i, row.Table, row.Key, row.Val, cur)
				}
			case OpWrite:
				tbl.Put(row.Key, row.Val)
			case OpDelete:
				tbl.Delete(row.Key)
			case OpScan:
				var gotKeys []string
				var gotVals []any
				n := 0
				visit := func(k string, v any) bool {
					gotKeys = append(gotKeys, k)
					gotVals = append(gotVals, v)
					n++
					return row.ScanLimit <= 0 || n < row.ScanLimit
				}
				if row.ScanReverse {
					tbl.Descend(row.Key, row.ScanHi, visit)
				} else {
					tbl.Ascend(row.Key, row.ScanHi, visit)
				}
				if len(gotKeys) != len(row.ScanKeys) {
					return fmt.Errorf("oracle: txn %d (seq %d) row %d: scan %s[%q,%q) saw %d rows %v, serial replay has %d rows %v (phantom)",
						rec.Txn, rec.Seq, i, row.Table, row.Key, row.ScanHi, len(row.ScanKeys), row.ScanKeys, len(gotKeys), gotKeys)
				}
				for j, k := range gotKeys {
					if k != row.ScanKeys[j] {
						return fmt.Errorf("oracle: txn %d (seq %d) row %d: scan %s[%q,%q) position %d saw key %q, serial replay has %q (phantom)",
							rec.Txn, rec.Seq, i, row.Table, row.Key, row.ScanHi, j, row.ScanKeys[j], k)
					}
					if fmt.Sprintf("%v", gotVals[j]) != fmt.Sprintf("%v", row.ScanVals[j]) {
						return fmt.Errorf("oracle: txn %d (seq %d) row %d: scan %s[%q,%q) key %q saw %v, serial replay has %v",
							rec.Txn, rec.Seq, i, row.Table, row.Key, row.ScanHi, k, row.ScanVals[j], gotVals[j])
					}
				}
			}
		}
	}
	if err := storage.DiffStores(replay, final); err != nil {
		return fmt.Errorf("oracle: final state diverges from serial replay of %d committed txns: %w",
			len(h.committed), err)
	}
	return nil
}
