// Package tpcc is the TPC-C execution engine of §5.5: a custom in-memory
// engine executing the five-transaction order processing mix directly on
// typed rows, partitioned by warehouse as described by Stonebraker et al.
//
// Layout follows the paper exactly:
//   - Warehouses are distributed round-robin over partitions.
//   - The read-only ITEM table is replicated to every partition.
//   - STOCK is vertically partitioned: the read-only columns (S_DATA and the
//     ten S_DIST_xx strings) are replicated everywhere as STOCK_INFO, while
//     the updated columns (quantity, YTD, counts) stay at the supplying
//     warehouse's partition.
//
// With this layout every distributed transaction is a "simple
// multi-partition transaction" — one fragment per partition, one round of
// communication — which is what makes TPC-C such a good fit for speculation.
package tpcc

import (
	"specdb/internal/msg"
	"specdb/internal/storage"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	TCustName  = "customer_name" // secondary index: last name → customer id
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrder     = "order"
	TOrderCust = "order_customer" // secondary index: customer → order ids
	TOrderLine = "order_line"
	TItem      = "item"      // replicated, read-only
	TStock     = "stock"     // updated columns, home partition only
	TStockInfo = "stockinfo" // replicated, read-only columns
)

// DistrictsPerWarehouse is fixed by the TPC-C specification.
const DistrictsPerWarehouse = 10

// Row types. Rows are stored by value-copy discipline: readers must not
// mutate a fetched row; updates Put a modified copy.

// Warehouse is the home row of one warehouse.
type Warehouse struct {
	ID   int
	Name string
	Tax  float64
	YTD  float64
}

// District is one of ten districts per warehouse.
type District struct {
	ID       int
	WID      int
	Name     string
	Tax      float64
	YTD      float64
	NextOID  int
	Delivers int // oldest undelivered order id cursor (engine-internal)
}

// Customer is a TPC-C customer.
type Customer struct {
	ID          int
	DID         int
	WID         int
	First       string
	Last        string
	Credit      string // "GC" or "BC"
	Discount    float64
	Balance     float64
	YTDPayment  float64
	PaymentCnt  int
	DeliveryCnt int
}

// History records a payment.
type History struct {
	CID, CDID, CWID int
	DID, WID        int
	Amount          float64
	When            int64
}

// Order is a placed order.
type Order struct {
	ID        int
	DID, WID  int
	CID       int
	EntryD    int64
	CarrierID int // 0 = undelivered
	OLCnt     int
	AllLocal  bool
}

// NewOrderRow marks an undelivered order.
type NewOrderRow struct {
	OID, DID, WID int
}

// OrderLine is one line of an order.
type OrderLine struct {
	OID, DID, WID int
	Number        int
	IID           int
	SupplyWID     int
	Qty           int
	Amount        float64
	DistInfo      string
	DeliveryD     int64
}

// Item is a catalog item (replicated, read-only).
type Item struct {
	ID    int
	Name  string
	Price float64
	Data  string
}

// Stock holds the updated stock columns (home partition only).
type Stock struct {
	IID, WID  int
	Quantity  int
	YTD       int
	OrderCnt  int
	RemoteCnt int
}

// StockInfo holds the replicated read-only stock columns.
type StockInfo struct {
	IID, WID int
	Dists    [DistrictsPerWarehouse]string
	Data     string
}

// Key builders. Warehouse/district/customer ids are small ints; fixed-width
// big-endian encoding keeps byte order equal to logical order for scans.

func ku(v int) string { return storage.KeyUint32(uint32(v)) }

// WarehouseKey returns the warehouse row key.
func WarehouseKey(w int) string { return ku(w) }

// DistrictKey returns the district row key.
func DistrictKey(w, d int) string { return storage.Key(ku(w), ku(d)) }

// CustomerKey returns the customer row key.
func CustomerKey(w, d, c int) string { return storage.Key(ku(w), ku(d), ku(c)) }

// CustNameKey indexes customers by last name.
func CustNameKey(w, d int, last string, c int) string {
	return storage.Key(ku(w), ku(d), last+"\x00", ku(c))
}

// CustNamePrefix is the scan prefix for all customers with a last name.
func CustNamePrefix(w, d int, last string) string {
	return storage.Key(ku(w), ku(d), last+"\x00")
}

// OrderKey returns the order row key.
func OrderKey(w, d, o int) string { return storage.Key(ku(w), ku(d), ku(o)) }

// OrderCustKey indexes orders by customer.
func OrderCustKey(w, d, c, o int) string {
	return storage.Key(ku(w), ku(d), ku(c), ku(o))
}

// OrderCustPrefix is the scan prefix for one customer's orders.
func OrderCustPrefix(w, d, c int) string {
	return storage.Key(ku(w), ku(d), ku(c))
}

// NewOrderKey returns the new-order row key.
func NewOrderKey(w, d, o int) string { return storage.Key(ku(w), ku(d), ku(o)) }

// NewOrderPrefix is the scan prefix for a district's undelivered orders.
func NewOrderPrefix(w, d int) string { return storage.Key(ku(w), ku(d)) }

// OrderLineKey returns the order line row key.
func OrderLineKey(w, d, o, n int) string {
	return storage.Key(ku(w), ku(d), ku(o), ku(n))
}

// OrderLinePrefix is the scan prefix for one order's lines.
func OrderLinePrefix(w, d, o int) string {
	return storage.Key(ku(w), ku(d), ku(o))
}

// ItemKey returns the item row key.
func ItemKey(i int) string { return ku(i) }

// StockKey returns the stock row key.
func StockKey(w, i int) string { return storage.Key(ku(w), ku(i)) }

// HistoryKey returns a unique history row key.
func HistoryKey(w, d int, seq uint64) string {
	return storage.Key(ku(w), ku(d), storage.KeyUint64(seq))
}

// AddSchema installs the TPC-C tables on a partition store. Ordered tables
// use B+trees; point-access tables use hash tables ("each table is
// represented as either a B-Tree, a binary tree, or hash table, as
// appropriate", §5).
func AddSchema(s *storage.Store) {
	s.AddTable(storage.NewHashTable(TWarehouse))
	s.AddTable(storage.NewHashTable(TDistrict))
	s.AddTable(storage.NewHashTable(TCustomer))
	s.AddTable(storage.NewBTreeTable(TCustName))
	s.AddTable(storage.NewBTreeTable(THistory))
	s.AddTable(storage.NewBTreeTable(TNewOrder))
	s.AddTable(storage.NewBTreeTable(TOrder))
	s.AddTable(storage.NewBTreeTable(TOrderCust))
	s.AddTable(storage.NewBTreeTable(TOrderLine))
	s.AddTable(storage.NewHashTable(TItem))
	s.AddTable(storage.NewHashTable(TStock))
	s.AddTable(storage.NewHashTable(TStockInfo))
}

// Layout maps warehouses to partitions (round-robin, matching "warehouses
// divided evenly across two partitions", §5.5).
type Layout struct {
	Warehouses int
	Partitions int
}

// PartitionOf returns the home partition of warehouse w (1-based ids).
func (l Layout) PartitionOf(w int) msg.PartitionID {
	return msg.PartitionID((w - 1) % l.Partitions)
}

// WarehousesOn lists the warehouses homed on partition p.
func (l Layout) WarehousesOn(p msg.PartitionID) []int {
	var out []int
	for w := 1; w <= l.Warehouses; w++ {
		if l.PartitionOf(w) == p {
			out = append(out, w)
		}
	}
	return out
}
