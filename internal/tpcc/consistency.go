package tpcc

import (
	"fmt"
	"math"

	"specdb/internal/storage"
)

// CheckConsistency verifies the TPC-C consistency conditions (clause 3.3.2)
// across the partition stores, returning the first violation found. It is
// the end-to-end oracle for the concurrency control schemes: any lost
// update, phantom commit or mis-ordered speculative re-execution breaks one
// of these identities.
//
//	C1: W_YTD = Σ D_YTD for each warehouse.
//	C2: D_NEXT_O_ID − 1 = max(O_ID) for each district.
//	C3: the NEW-ORDER ids of a district are contiguous.
//	C4: Σ O_OL_CNT = number of ORDER-LINE rows for each district.
func CheckConsistency(layout Layout, stores []*storage.Store) error {
	for w := 1; w <= layout.Warehouses; w++ {
		s := stores[layout.PartitionOf(w)]
		wr, ok := s.Table(TWarehouse).Get(WarehouseKey(w))
		if !ok {
			return fmt.Errorf("warehouse %d missing", w)
		}
		sumDYTD := 0.0
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			dr, ok := s.Table(TDistrict).Get(DistrictKey(w, d))
			if !ok {
				return fmt.Errorf("district %d-%d missing", w, d)
			}
			district := dr.(*District)
			sumDYTD += district.YTD
			if err := checkDistrict(s, w, d, district); err != nil {
				return err
			}
		}
		if diff := math.Abs(wr.(*Warehouse).YTD - sumDYTD); diff > 0.01 {
			return fmt.Errorf("C1: warehouse %d YTD %.2f != sum of district YTD %.2f",
				w, wr.(*Warehouse).YTD, sumDYTD)
		}
	}
	return nil
}

// CheckReplicaConsistency verifies replication correctness at quiescence:
// every backup store must match its primary key-for-key (backups re-execute
// the primary's commit stream, so any divergence means a lost, duplicated or
// re-ordered forward), and the backup stores must themselves satisfy the
// TPC-C consistency conditions.
func CheckReplicaConsistency(layout Layout, primaries []*storage.Store, backups [][]*storage.Store) error {
	for p, reps := range backups {
		for r, b := range reps {
			if err := storage.DiffStores(primaries[p], b); err != nil {
				return fmt.Errorf("partition %d backup %d diverges from primary: %w", p, r+1, err)
			}
		}
	}
	// The per-warehouse conditions also hold on each backup set (replica
	// index r of every partition forms a consistent copy of the database).
	if len(backups) > 0 {
		for r := 0; r < len(backups[0]); r++ {
			set := make([]*storage.Store, len(backups))
			for p := range backups {
				if r >= len(backups[p]) {
					return fmt.Errorf("partition %d has %d backups, expected %d", p, len(backups[p]), len(backups[0]))
				}
				set[p] = backups[p][r]
			}
			if err := CheckConsistency(layout, set); err != nil {
				return fmt.Errorf("backup set %d: %w", r+1, err)
			}
		}
	}
	return nil
}

func checkDistrict(s *storage.Store, w, d int, district *District) error {
	// C2: max order id.
	maxOID, orders := 0, 0
	sumOLCnt := 0
	prefix := OrderKey(w, d, 0)[:8]
	s.Table(TOrder).Ascend(prefix, storage.PrefixEnd(prefix), func(k string, v any) bool {
		o := v.(*Order)
		if o.ID > maxOID {
			maxOID = o.ID
		}
		orders++
		sumOLCnt += o.OLCnt
		return true
	})
	if district.NextOID-1 != maxOID {
		return fmt.Errorf("C2: district %d-%d NextOID-1=%d but max(O_ID)=%d",
			w, d, district.NextOID-1, maxOID)
	}
	if orders != maxOID {
		return fmt.Errorf("C2: district %d-%d has %d orders but max id %d (ids must be dense)",
			w, d, orders, maxOID)
	}
	// C3: NEW-ORDER contiguity.
	noMin, noMax, noCount := 0, 0, 0
	nop := NewOrderPrefix(w, d)
	s.Table(TNewOrder).Ascend(nop, storage.PrefixEnd(nop), func(k string, v any) bool {
		oid := v.(*NewOrderRow).OID
		if noCount == 0 {
			noMin = oid
		}
		noMax = oid
		noCount++
		return true
	})
	if noCount > 0 && noMax-noMin+1 != noCount {
		return fmt.Errorf("C3: district %d-%d NEW-ORDER ids not contiguous: [%d,%d] count %d",
			w, d, noMin, noMax, noCount)
	}
	if noCount > 0 && noMax != district.NextOID-1 {
		return fmt.Errorf("C3: district %d-%d newest NEW-ORDER %d != NextOID-1 %d",
			w, d, noMax, district.NextOID-1)
	}
	// C4: order line count.
	olCount := 0
	olp := OrderKey(w, d, 0)[:8]
	s.Table(TOrderLine).Ascend(olp, storage.PrefixEnd(olp), func(k string, v any) bool {
		olCount++
		return true
	})
	if olCount != sumOLCnt {
		return fmt.Errorf("C4: district %d-%d has %d order lines but Σ O_OL_CNT = %d",
			w, d, olCount, sumOLCnt)
	}
	return nil
}
