package tpcc

import (
	"fmt"
	"sort"

	"specdb/internal/msg"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// Procedure names.
const (
	ProcNewOrder    = "tpcc.neworder"
	ProcPayment     = "tpcc.payment"
	ProcOrderStatus = "tpcc.orderstatus"
	ProcDelivery    = "tpcc.delivery"
	ProcStockLevel  = "tpcc.stocklevel"
)

// RegisterAll registers the five TPC-C procedures.
func RegisterAll(reg *txn.Registry) {
	reg.Register(NewOrderProc{})
	reg.Register(PaymentProc{})
	reg.Register(OrderStatusProc{})
	reg.Register(DeliveryProc{})
	reg.Register(StockLevelProc{})
}

func layoutOf(cat *txn.Catalog) Layout {
	l, ok := cat.Meta.(Layout)
	if !ok {
		panic("tpcc: catalog Meta must be a tpcc.Layout")
	}
	return l
}

// --- NewOrder ---

// NewOrderLine is one requested line.
type NewOrderLine struct {
	IID       int
	SupplyWID int
	Qty       int
}

// NewOrderArgs invokes NewOrder.
type NewOrderArgs struct {
	WID, DID, CID int
	Lines         []NewOrderLine
	EntryD        int64
}

// noHomeWork runs at the home warehouse's partition: item validation first
// (the §5.5 reordering that removes the need for an undo buffer on the user
// abort path), then the order insertion and the local stock updates.
type noHomeWork struct {
	A *NewOrderArgs
	// LocalLines indexes A.Lines supplied by warehouses on this
	// partition (including remote warehouses that happen to be
	// co-resident).
	LocalLines []int
	AllLocal   bool
}

// noRemoteWork updates stock rows at a remote partition.
type noRemoteWork struct {
	A     *NewOrderArgs
	Lines []int // indexes of A.Lines supplied from this partition
}

// NewOrderProc implements txn.Procedure.
type NewOrderProc struct{}

func (NewOrderProc) Name() string { return ProcNewOrder }

// Plan splits stock updates by supplying partition. The transaction is a
// simple multi-partition transaction: one fragment per partition, one round.
func (NewOrderProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	a := args.(*NewOrderArgs)
	l := layoutOf(cat)
	home := l.PartitionOf(a.WID)
	byPart := map[msg.PartitionID][]int{}
	allLocal := true
	for i, ln := range a.Lines {
		p := l.PartitionOf(ln.SupplyWID)
		byPart[p] = append(byPart[p], i)
		if ln.SupplyWID != a.WID {
			allLocal = false
		}
	}
	parts := []msg.PartitionID{home}
	work := map[msg.PartitionID]any{
		home: &noHomeWork{A: a, LocalLines: byPart[home], AllLocal: allLocal},
	}
	for p, lines := range byPart {
		if p == home {
			continue
		}
		parts = append(parts, p)
		work[p] = &noRemoteWork{A: a, Lines: lines}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	// CanAbort stays false: the 1% invalid-item abort happens before any
	// write at the home partition, so the fast path needs no undo buffer
	// (the paper's reordering, §5.5).
	return txn.Plan{Parts: parts, Work: work, Rounds: 1}
}

func (NewOrderProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	panic("tpcc: NewOrder is single-round")
}

func (NewOrderProc) Run(view *storage.TxnView, w any) (any, error) {
	switch wk := w.(type) {
	case *noHomeWork:
		return runNewOrderHome(view, wk)
	case *noRemoteWork:
		return nil, runStockUpdates(view, wk.A, wk.Lines)
	default:
		panic(fmt.Sprintf("tpcc: bad NewOrder work %T", w))
	}
}

func runNewOrderHome(view *storage.TxnView, wk *noHomeWork) (any, error) {
	a := wk.A
	// Validation before any write: every item must exist.
	prices := make([]float64, len(a.Lines))
	for i, ln := range a.Lines {
		it, ok := view.Get(TItem, ItemKey(ln.IID))
		if !ok {
			return nil, txn.ErrUserAbort
		}
		prices[i] = it.(*Item).Price
	}
	wr, _ := view.Get(TWarehouse, WarehouseKey(a.WID))
	warehouse := wr.(*Warehouse)
	dr, ok := view.GetForUpdate(TDistrict, DistrictKey(a.WID, a.DID))
	if !ok {
		panic(fmt.Sprintf("tpcc: missing district %d-%d", a.WID, a.DID))
	}
	district := *dr.(*District)
	oid := district.NextOID
	district.NextOID++
	view.Put(TDistrict, DistrictKey(a.WID, a.DID), &district)
	cr, _ := view.Get(TCustomer, CustomerKey(a.WID, a.DID, a.CID))
	customer := cr.(*Customer)

	view.Put(TOrder, OrderKey(a.WID, a.DID, oid), &Order{
		ID: oid, DID: a.DID, WID: a.WID, CID: a.CID,
		EntryD: a.EntryD, OLCnt: len(a.Lines), AllLocal: wk.AllLocal,
	})
	view.Put(TOrderCust, OrderCustKey(a.WID, a.DID, a.CID, oid), oid)
	view.Put(TNewOrder, NewOrderKey(a.WID, a.DID, oid), &NewOrderRow{OID: oid, DID: a.DID, WID: a.WID})

	total := 0.0
	for i, ln := range a.Lines {
		sir, ok := view.Get(TStockInfo, StockKey(ln.SupplyWID, ln.IID))
		if !ok {
			return nil, txn.ErrUserAbort
		}
		info := sir.(*StockInfo)
		amount := float64(ln.Qty) * prices[i]
		total += amount
		view.Put(TOrderLine, OrderLineKey(a.WID, a.DID, oid, i+1), &OrderLine{
			OID: oid, DID: a.DID, WID: a.WID, Number: i + 1,
			IID: ln.IID, SupplyWID: ln.SupplyWID, Qty: ln.Qty,
			Amount: amount, DistInfo: info.Dists[a.DID-1],
		})
	}
	if err := runStockUpdates(view, a, wk.LocalLines); err != nil {
		return nil, err
	}
	total *= (1 - customer.Discount) * (1 + warehouse.Tax)
	return &NewOrderResult{OID: oid, Total: total}, nil
}

// runStockUpdates applies the stock-decrement rule (clause 2.4.2.2) for the
// given line indexes, whose supplying warehouses live on this partition.
func runStockUpdates(view *storage.TxnView, a *NewOrderArgs, lines []int) error {
	for _, i := range lines {
		ln := a.Lines[i]
		sr, ok := view.GetForUpdate(TStock, StockKey(ln.SupplyWID, ln.IID))
		if !ok {
			return txn.ErrUserAbort
		}
		stock := *sr.(*Stock)
		if stock.Quantity-ln.Qty >= 10 {
			stock.Quantity -= ln.Qty
		} else {
			stock.Quantity = stock.Quantity - ln.Qty + 91
		}
		stock.YTD += ln.Qty
		stock.OrderCnt++
		if ln.SupplyWID != a.WID {
			stock.RemoteCnt++
		}
		view.Put(TStock, StockKey(ln.SupplyWID, ln.IID), &stock)
	}
	return nil
}

// NewOrderResult is the client-visible outcome.
type NewOrderResult struct {
	OID   int
	Total float64
}

func (NewOrderProc) Output(args any, final []msg.FragmentResult) any {
	for _, r := range final {
		if res, ok := r.Output.(*NewOrderResult); ok {
			return res
		}
	}
	return nil
}

// --- Payment ---

// PaymentArgs invokes Payment. Either CID or CLast selects the customer.
type PaymentArgs struct {
	WID, DID   int
	CWID, CDID int
	CID        int
	CLast      string
	Amount     float64
	When       int64
}

type payWork struct {
	A *PaymentArgs
	// Home updates the warehouse/district YTD and writes history;
	// Customer updates the customer row. Both may be set when the
	// customer is co-resident.
	Home     bool
	Customer bool
}

// PaymentProc implements txn.Procedure.
type PaymentProc struct{}

func (PaymentProc) Name() string { return ProcPayment }

func (PaymentProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	a := args.(*PaymentArgs)
	l := layoutOf(cat)
	home := l.PartitionOf(a.WID)
	cust := l.PartitionOf(a.CWID)
	if home == cust {
		return txn.Plan{
			Parts:  []msg.PartitionID{home},
			Work:   map[msg.PartitionID]any{home: &payWork{A: a, Home: true, Customer: true}},
			Rounds: 1,
		}
	}
	parts := []msg.PartitionID{home, cust}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	return txn.Plan{
		Parts: parts,
		Work: map[msg.PartitionID]any{
			home: &payWork{A: a, Home: true},
			cust: &payWork{A: a, Customer: true},
		},
		Rounds: 1,
	}
}

func (PaymentProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	panic("tpcc: Payment is single-round")
}

func (PaymentProc) Run(view *storage.TxnView, w any) (any, error) {
	wk := w.(*payWork)
	a := wk.A
	var out *PaymentResult
	if wk.Home {
		wr, _ := view.GetForUpdate(TWarehouse, WarehouseKey(a.WID))
		warehouse := *wr.(*Warehouse)
		warehouse.YTD += a.Amount
		view.Put(TWarehouse, WarehouseKey(a.WID), &warehouse)
		dr, _ := view.GetForUpdate(TDistrict, DistrictKey(a.WID, a.DID))
		district := *dr.(*District)
		district.YTD += a.Amount
		view.Put(TDistrict, DistrictKey(a.WID, a.DID), &district)
		view.Put(THistory, HistoryKey(a.WID, a.DID, uint64(a.When)), &History{
			CID: a.CID, CDID: a.CDID, CWID: a.CWID,
			DID: a.DID, WID: a.WID, Amount: a.Amount, When: a.When,
		})
	}
	if wk.Customer {
		cid := a.CID
		if cid == 0 {
			cid = findCustomerByName(view, a.CWID, a.CDID, a.CLast)
		}
		cr, ok := view.GetForUpdate(TCustomer, CustomerKey(a.CWID, a.CDID, cid))
		if !ok {
			panic(fmt.Sprintf("tpcc: missing customer %d-%d-%d", a.CWID, a.CDID, cid))
		}
		customer := *cr.(*Customer)
		customer.Balance -= a.Amount
		customer.YTDPayment += a.Amount
		customer.PaymentCnt++
		view.Put(TCustomer, CustomerKey(a.CWID, a.CDID, cid), &customer)
		out = &PaymentResult{CID: cid, Balance: customer.Balance}
	}
	return out, nil
}

// findCustomerByName implements clause 2.5.2.2: all customers with the last
// name, sorted by first name, pick the one at position ceil(n/2). Our
// generator gives customers distinct first names ordered by id, and the
// index is ordered by id, so position in the index scan is equivalent.
func findCustomerByName(view *storage.TxnView, w, d int, last string) int {
	prefix := CustNamePrefix(w, d, last)
	var ids []int
	view.Ascend(TCustName, prefix, storage.PrefixEnd(prefix), func(k string, v any) bool {
		ids = append(ids, v.(int))
		return true
	})
	if len(ids) == 0 {
		panic(fmt.Sprintf("tpcc: no customer named %q in %d-%d", last, w, d))
	}
	return ids[(len(ids)+1)/2-1]
}

// PaymentResult is the client-visible outcome.
type PaymentResult struct {
	CID     int
	Balance float64
}

func (PaymentProc) Output(args any, final []msg.FragmentResult) any {
	for _, r := range final {
		if res, ok := r.Output.(*PaymentResult); ok {
			return res
		}
	}
	return nil
}

// --- OrderStatus ---

// OrderStatusArgs invokes OrderStatus (read-only, single partition).
type OrderStatusArgs struct {
	WID, DID int
	CID      int
	CLast    string
}

// OrderStatusProc implements txn.Procedure.
type OrderStatusProc struct{}

func (OrderStatusProc) Name() string { return ProcOrderStatus }

func (OrderStatusProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	a := args.(*OrderStatusArgs)
	p := layoutOf(cat).PartitionOf(a.WID)
	return txn.Plan{Parts: []msg.PartitionID{p}, Work: map[msg.PartitionID]any{p: a}, Rounds: 1}
}

func (OrderStatusProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	panic("tpcc: OrderStatus is single-round")
}

func (OrderStatusProc) Run(view *storage.TxnView, w any) (any, error) {
	a := w.(*OrderStatusArgs)
	cid := a.CID
	if cid == 0 {
		cid = findCustomerByName(view, a.WID, a.DID, a.CLast)
	}
	cr, _ := view.Get(TCustomer, CustomerKey(a.WID, a.DID, cid))
	customer := cr.(*Customer)
	// Most recent order: highest order id in the customer index.
	prefix := OrderCustPrefix(a.WID, a.DID, cid)
	lastOID := 0
	view.Descend(TOrderCust, prefix, storage.PrefixEnd(prefix), func(k string, v any) bool {
		lastOID = v.(int)
		return false
	})
	res := &OrderStatusResult{CID: cid, Balance: customer.Balance}
	if lastOID == 0 {
		return res, nil
	}
	or, _ := view.Get(TOrder, OrderKey(a.WID, a.DID, lastOID))
	order := or.(*Order)
	res.OID = order.ID
	res.CarrierID = order.CarrierID
	olp := OrderLinePrefix(a.WID, a.DID, lastOID)
	view.Ascend(TOrderLine, olp, storage.PrefixEnd(olp), func(k string, v any) bool {
		ol := v.(*OrderLine)
		res.Lines = append(res.Lines, *ol)
		return true
	})
	return res, nil
}

// OrderStatusResult is the client-visible outcome.
type OrderStatusResult struct {
	CID       int
	Balance   float64
	OID       int
	CarrierID int
	Lines     []OrderLine
}

func (OrderStatusProc) Output(args any, final []msg.FragmentResult) any {
	return final[0].Output
}

// --- Delivery ---

// DeliveryArgs invokes Delivery (single partition, batch over 10 districts).
type DeliveryArgs struct {
	WID       int
	CarrierID int
	When      int64
}

// DeliveryProc implements txn.Procedure.
type DeliveryProc struct{}

func (DeliveryProc) Name() string { return ProcDelivery }

func (DeliveryProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	a := args.(*DeliveryArgs)
	p := layoutOf(cat).PartitionOf(a.WID)
	return txn.Plan{Parts: []msg.PartitionID{p}, Work: map[msg.PartitionID]any{p: a}, Rounds: 1}
}

func (DeliveryProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	panic("tpcc: Delivery is single-round")
}

func (DeliveryProc) Run(view *storage.TxnView, w any) (any, error) {
	a := w.(*DeliveryArgs)
	delivered := make([]int, 0, DistrictsPerWarehouse)
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		// Oldest undelivered order for the district.
		prefix := NewOrderPrefix(a.WID, d)
		oid := 0
		view.Ascend(TNewOrder, prefix, storage.PrefixEnd(prefix), func(k string, v any) bool {
			oid = v.(*NewOrderRow).OID
			return false
		})
		if oid == 0 {
			delivered = append(delivered, 0)
			continue
		}
		view.Delete(TNewOrder, NewOrderKey(a.WID, d, oid))
		or, _ := view.GetForUpdate(TOrder, OrderKey(a.WID, d, oid))
		order := *or.(*Order)
		order.CarrierID = a.CarrierID
		view.Put(TOrder, OrderKey(a.WID, d, oid), &order)
		total := 0.0
		olp := OrderLinePrefix(a.WID, d, oid)
		type olUpdate struct {
			key string
			ol  OrderLine
		}
		var updates []olUpdate
		view.Ascend(TOrderLine, olp, storage.PrefixEnd(olp), func(k string, v any) bool {
			ol := *v.(*OrderLine)
			total += ol.Amount
			ol.DeliveryD = a.When
			updates = append(updates, olUpdate{k, ol})
			return true
		})
		for _, u := range updates {
			ol := u.ol
			view.Put(TOrderLine, u.key, &ol)
		}
		cr, _ := view.GetForUpdate(TCustomer, CustomerKey(a.WID, d, order.CID))
		customer := *cr.(*Customer)
		customer.Balance += total
		customer.DeliveryCnt++
		view.Put(TCustomer, CustomerKey(a.WID, d, order.CID), &customer)
		delivered = append(delivered, oid)
	}
	return delivered, nil
}

func (DeliveryProc) Output(args any, final []msg.FragmentResult) any {
	return final[0].Output
}

// --- StockLevel ---

// StockLevelArgs invokes StockLevel (read-only, single partition).
type StockLevelArgs struct {
	WID, DID  int
	Threshold int
}

// StockLevelProc implements txn.Procedure.
type StockLevelProc struct{}

func (StockLevelProc) Name() string { return ProcStockLevel }

func (StockLevelProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	a := args.(*StockLevelArgs)
	p := layoutOf(cat).PartitionOf(a.WID)
	return txn.Plan{Parts: []msg.PartitionID{p}, Work: map[msg.PartitionID]any{p: a}, Rounds: 1}
}

func (StockLevelProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	panic("tpcc: StockLevel is single-round")
}

func (StockLevelProc) Run(view *storage.TxnView, w any) (any, error) {
	a := w.(*StockLevelArgs)
	dr, _ := view.Get(TDistrict, DistrictKey(a.WID, a.DID))
	district := dr.(*District)
	lo := district.NextOID - 20
	if lo < 1 {
		lo = 1
	}
	// Distinct items in the district's last 20 orders.
	items := map[int]bool{}
	from := OrderLineKey(a.WID, a.DID, lo, 0)
	to := OrderLineKey(a.WID, a.DID, district.NextOID, 0)
	view.Ascend(TOrderLine, from, to, func(k string, v any) bool {
		ol := v.(*OrderLine)
		// Stock rows live at the supplying warehouse; only local ones
		// are visible here, which matches counting the home
		// warehouse's stock (clause 2.8: the district's own stock).
		if ol.SupplyWID == a.WID {
			items[ol.IID] = true
		}
		return true
	})
	// Deterministic iteration for replica re-execution.
	ids := make([]int, 0, len(items))
	for i := range items {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	low := 0
	for _, i := range ids {
		sr, ok := view.Get(TStock, StockKey(a.WID, i))
		if ok && sr.(*Stock).Quantity < a.Threshold {
			low++
		}
	}
	return low, nil
}

func (StockLevelProc) Output(args any, final []msg.FragmentResult) any {
	return final[0].Output
}
