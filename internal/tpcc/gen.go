package tpcc

import (
	"fmt"
	"math/rand"

	"specdb/internal/msg"
	"specdb/internal/storage"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// Scale controls population sizes. Full is the TPC-C specification; smaller
// scales preserve the contention structure (which lives in the warehouse and
// district rows) while keeping simulation runs fast.
type Scale struct {
	Items             int
	StockPerWarehouse int
	CustomersPerDist  int
	InitialOrders     int // pre-loaded orders per district
}

// DefaultScale is the simulation default.
func DefaultScale() Scale {
	return Scale{Items: 1000, StockPerWarehouse: 1000, CustomersPerDist: 120, InitialOrders: 30}
}

// FullScale matches the TPC-C specification sizes.
func FullScale() Scale {
	return Scale{Items: 100000, StockPerWarehouse: 100000, CustomersPerDist: 3000, InitialOrders: 3000}
}

// lastNameSyllables is the TPC-C last-name generator table (clause 4.3.2.3).
var lastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// lastNames interns all 1000 last names. Payment and OrderStatus format a
// name on 60% of issues (clause 2.5.1.2), which made LastName's string
// concatenation a per-invocation allocation on the generation hot path.
var lastNames = func() (names [1000]string) {
	for n := range names {
		names[n] = lastNameSyllables[n/100] + lastNameSyllables[(n/10)%10] + lastNameSyllables[n%10]
	}
	return
}()

// LastName returns the deterministic TPC-C last name for a number in 0..999.
func LastName(num int) string {
	return lastNames[num]
}

// nuRand constants (clause 2.1.6). C values are fixed per run for
// determinism; the spec only requires they be constant within a run.
const (
	cLast  = 123
	cCID   = 259
	cOLIID = 4171
)

// nuRand is the TPC-C non-uniform random distribution NURand(A, x, y).
func nuRand(rng *rand.Rand, a, c, x, y int) int {
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// Loader populates partitions deterministically.
type Loader struct {
	Layout Layout
	Scale  Scale
	Seed   int64
}

// Load installs schema and populates partition p's share of the database:
// its warehouses' rows plus the replicated ITEM and STOCK_INFO tables.
func (ld Loader) Load(p msg.PartitionID, s *storage.Store) {
	AddSchema(s)
	rng := rand.New(rand.NewSource(ld.Seed + 7))
	// Replicated tables are identical everywhere, so they are generated
	// from a fixed stream independent of p.
	for i := 1; i <= ld.Scale.Items; i++ {
		s.Table(TItem).Put(ItemKey(i), &Item{
			ID:    i,
			Name:  fmt.Sprintf("item-%d", i),
			Price: 1 + float64(rng.Intn(9900))/100,
			Data:  genData(rng),
		})
	}
	for w := 1; w <= ld.Layout.Warehouses; w++ {
		for i := 1; i <= ld.Scale.StockPerWarehouse; i++ {
			si := &StockInfo{IID: i, WID: w, Data: genData(rng)}
			for d := 0; d < DistrictsPerWarehouse; d++ {
				si.Dists[d] = fmt.Sprintf("dist-%d-%d-%d", w, i, d+1)
			}
			s.Table(TStockInfo).Put(StockKey(w, i), si)
		}
	}
	// Home rows for this partition's warehouses.
	for _, w := range ld.Layout.WarehousesOn(p) {
		wrng := rand.New(rand.NewSource(ld.Seed + int64(w)*1_000_003))
		ld.loadWarehouse(s, w, wrng)
	}
}

func genData(rng *rand.Rand) string {
	if rng.Intn(10) == 0 {
		return "ORIGINAL"
	}
	return "generic"
}

func (ld Loader) loadWarehouse(s *storage.Store, w int, rng *rand.Rand) {
	// W_YTD starts equal to the sum of its districts' D_YTD (consistency
	// condition 1 of TPC-C clause 3.3.2).
	s.Table(TWarehouse).Put(WarehouseKey(w), &Warehouse{
		ID:   w,
		Name: fmt.Sprintf("wh-%d", w),
		Tax:  float64(rng.Intn(2000)) / 10000,
		YTD:  30000 * DistrictsPerWarehouse,
	})
	for i := 1; i <= ld.Scale.StockPerWarehouse; i++ {
		s.Table(TStock).Put(StockKey(w, i), &Stock{
			IID: i, WID: w, Quantity: 10 + rng.Intn(91),
		})
	}
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		nextOID := ld.Scale.InitialOrders + 1
		s.Table(TDistrict).Put(DistrictKey(w, d), &District{
			ID: d, WID: w,
			Name:    fmt.Sprintf("dist-%d-%d", w, d),
			Tax:     float64(rng.Intn(2000)) / 10000,
			YTD:     30000,
			NextOID: nextOID,
		})
		for c := 1; c <= ld.Scale.CustomersPerDist; c++ {
			credit := "GC"
			if rng.Intn(10) == 0 {
				credit = "BC"
			}
			// The spec maps the first 1000 customers through the
			// name generator; beyond that it hashes NURand.
			nameNum := c - 1
			if nameNum >= 1000 {
				nameNum = nuRand(rng, 255, cLast, 0, 999)
			}
			cust := &Customer{
				ID: c, DID: d, WID: w,
				First:    fmt.Sprintf("first-%d", c),
				Last:     LastName(nameNum),
				Credit:   credit,
				Discount: float64(rng.Intn(5000)) / 10000,
				Balance:  -10,
			}
			s.Table(TCustomer).Put(CustomerKey(w, d, c), cust)
			s.Table(TCustName).Put(CustNameKey(w, d, cust.Last, c), c)
		}
		// Pre-loaded orders: the most recent 30% are undelivered.
		for o := 1; o <= ld.Scale.InitialOrders; o++ {
			cid := 1 + rng.Intn(ld.Scale.CustomersPerDist)
			olCnt := 5 + rng.Intn(11)
			delivered := o <= ld.Scale.InitialOrders*7/10
			carrier := 0
			if delivered {
				carrier = 1 + rng.Intn(10)
			}
			s.Table(TOrder).Put(OrderKey(w, d, o), &Order{
				ID: o, DID: d, WID: w, CID: cid,
				CarrierID: carrier, OLCnt: olCnt, AllLocal: true,
			})
			s.Table(TOrderCust).Put(OrderCustKey(w, d, cid, o), o)
			if !delivered {
				s.Table(TNewOrder).Put(NewOrderKey(w, d, o), &NewOrderRow{OID: o, DID: d, WID: w})
			}
			for n := 1; n <= olCnt; n++ {
				iid := 1 + rng.Intn(ld.Scale.Items)
				amount := 0.0
				deliveryD := int64(0)
				if delivered {
					amount = float64(1+rng.Intn(9999)) / 100
					deliveryD = 1
				}
				s.Table(TOrderLine).Put(OrderLineKey(w, d, o, n), &OrderLine{
					OID: o, DID: d, WID: w, Number: n,
					IID: iid, SupplyWID: w, Qty: 5,
					Amount: amount, DistInfo: fmt.Sprintf("dist-%d-%d-%d", w, iid, d),
					DeliveryD: deliveryD,
				})
			}
		}
	}
}

// Mix generates the five-transaction TPC-C workload. Per §5.5's methodology:
// clients are assigned a warehouse (round-robin) but pick a random district
// on every request, and have no think time.
type Mix struct {
	Layout Layout
	Scale  Scale
	// RemoteItemProb is the per-item probability that a NewOrder line is
	// supplied by a remote warehouse (TPC-C default 0.01; the x-axis knob
	// of Figure 9).
	RemoteItemProb float64
	// RemotePaymentProb is the probability a Payment pays a customer of a
	// remote warehouse (TPC-C default 0.15).
	RemotePaymentProb float64
	// RemoteSkew, when in (0,1), draws the remote warehouse (NewOrder
	// supply lines and Payment customer warehouses) from a Zipfian over
	// the other warehouses in index order — warehouse 1 (or 2, from
	// warehouse 1's view) is the hottest remote partner — instead of
	// uniformly. This is the hot-partition knob for TPC-C: skewed remote
	// choice concentrates multi-partition traffic on the partitions owning
	// the low-numbered warehouses.
	RemoteSkew float64
	// NewOrderOnly issues 100% NewOrder transactions (§5.6).
	NewOrderOnly bool
	// clock provides order entry timestamps; it only needs to be unique
	// per generator, not synchronized.
	clock int64
	// perClient reuses each client's Invocation shell across issues (the
	// closed-loop ownership contract of workload.Generator). Unlike the
	// microbenchmark, the Args must stay freshly allocated: TPC-C fragment
	// works alias their args (noHomeWork.A and friends), works are forwarded
	// to replicas, and a backup applies a buffered multi-partition forward
	// when its decision arrives — possibly after the client has already
	// issued its next transaction. SetShape switches even the shell to
	// fresh allocation when an open-loop window lets one client hold
	// several invocations in flight.
	perClient  []*txn.Invocation
	fresh      bool
	remoteZipf *workload.Zipf
}

// SetShape implements workload.ShapeAware: shells cannot be reused when a
// client may hold more than one invocation in flight.
func (m *Mix) SetShape(s workload.Shape) {
	m.fresh = s.MaxInFlight > 1
}

// inv returns client ci's reusable invocation shell (or a fresh one when
// reuse is unsafe; see SetShape).
func (m *Mix) inv(ci int) *txn.Invocation {
	if m.fresh {
		return &txn.Invocation{}
	}
	for ci >= len(m.perClient) {
		m.perClient = append(m.perClient, nil)
	}
	if m.perClient[ci] == nil {
		m.perClient[ci] = &txn.Invocation{}
	}
	return m.perClient[ci]
}

// Standard mix weights (TPC-C clause 5.2.3 steady state).
const (
	weightNewOrder    = 0.45
	weightPayment     = 0.43
	weightOrderStatus = 0.04
	weightDelivery    = 0.04
	weightStockLevel  = 0.04
)

// Next implements workload.Generator. The returned Invocation is client
// ci's reused shell — valid until the client's next call, per the Generator
// contract; its Args are freshly built (see perClient).
func (m *Mix) Next(ci int, rng *rand.Rand) *txn.Invocation {
	w := (ci % m.Layout.Warehouses) + 1
	m.clock++
	inv := m.inv(ci)
	inv.AbortAt = txn.NoAbort
	if m.NewOrderOnly {
		return m.newOrder(inv, w, rng)
	}
	x := rng.Float64()
	switch {
	case x < weightNewOrder:
		return m.newOrder(inv, w, rng)
	case x < weightNewOrder+weightPayment:
		return m.payment(inv, w, rng)
	case x < weightNewOrder+weightPayment+weightOrderStatus:
		return m.orderStatus(inv, w, rng)
	case x < weightNewOrder+weightPayment+weightOrderStatus+weightDelivery:
		return m.delivery(inv, w, rng)
	default:
		return m.stockLevel(inv, w, rng)
	}
}

func (m *Mix) district(rng *rand.Rand) int { return 1 + rng.Intn(DistrictsPerWarehouse) }

func (m *Mix) customerID(rng *rand.Rand) int {
	max := m.Scale.CustomersPerDist
	if max > 1024 {
		return nuRand(rng, 1023, cCID, 1, max)
	}
	return 1 + rng.Intn(max)
}

func (m *Mix) itemID(rng *rand.Rand) int {
	max := m.Scale.Items
	if max > 8192 {
		return nuRand(rng, 8191, cOLIID, 1, max)
	}
	return 1 + rng.Intn(max)
}

func (m *Mix) remoteWarehouse(rng *rand.Rand, home int) int {
	if m.Layout.Warehouses == 1 {
		return home
	}
	var w int
	if m.RemoteSkew > 0 {
		if m.remoteZipf == nil {
			m.remoteZipf = workload.NewZipf(m.Layout.Warehouses-1, m.RemoteSkew)
		}
		w = 1 + m.remoteZipf.Sample(rng)
	} else {
		w = 1 + rng.Intn(m.Layout.Warehouses-1)
	}
	if w >= home {
		w++
	}
	return w
}

func (m *Mix) newOrder(inv *txn.Invocation, w int, rng *rand.Rand) *txn.Invocation {
	nItems := 5 + rng.Intn(11)
	lines := make([]NewOrderLine, nItems)
	for i := range lines {
		supply := w
		if m.RemoteItemProb > 0 && rng.Float64() < m.RemoteItemProb {
			supply = m.remoteWarehouse(rng, w)
		}
		lines[i] = NewOrderLine{
			IID:       m.itemID(rng),
			SupplyWID: supply,
			Qty:       1 + rng.Intn(10),
		}
	}
	// TPC-C clause 2.4.1.4: 1% of NewOrders carry an unused item number
	// and abort at the home warehouse after validation.
	if rng.Intn(100) == 0 {
		lines[nItems-1].IID = m.Scale.Items + 1
	}
	inv.Proc = ProcNewOrder
	inv.Args = &NewOrderArgs{
		WID: w, DID: m.district(rng), CID: m.customerID(rng),
		Lines: lines, EntryD: m.clock,
	}
	return inv
}

func (m *Mix) payment(inv *txn.Invocation, w int, rng *rand.Rand) *txn.Invocation {
	cw, cd := w, m.district(rng)
	if m.RemotePaymentProb > 0 && rng.Float64() < m.RemotePaymentProb {
		cw = m.remoteWarehouse(rng, w)
	}
	args := &PaymentArgs{
		WID: w, DID: m.district(rng),
		CWID: cw, CDID: cd,
		Amount: 1 + float64(rng.Intn(499999))/100,
		When:   m.clock,
	}
	// Clause 2.5.1.2: 60% select the customer by last name.
	if rng.Intn(100) < 60 {
		args.CLast = LastName(m.nameNum(rng))
	} else {
		args.CID = m.customerID(rng)
	}
	inv.Proc = ProcPayment
	inv.Args = args
	return inv
}

func (m *Mix) nameNum(rng *rand.Rand) int {
	limit := m.Scale.CustomersPerDist
	if limit > 1000 {
		limit = 1000
	}
	return nuRand(rng, 255, cLast, 0, limit-1)
}

func (m *Mix) orderStatus(inv *txn.Invocation, w int, rng *rand.Rand) *txn.Invocation {
	args := &OrderStatusArgs{WID: w, DID: m.district(rng)}
	if rng.Intn(100) < 60 {
		args.CLast = LastName(m.nameNum(rng))
	} else {
		args.CID = m.customerID(rng)
	}
	inv.Proc = ProcOrderStatus
	inv.Args = args
	return inv
}

func (m *Mix) delivery(inv *txn.Invocation, w int, rng *rand.Rand) *txn.Invocation {
	inv.Proc = ProcDelivery
	inv.Args = &DeliveryArgs{WID: w, CarrierID: 1 + rng.Intn(10), When: m.clock}
	return inv
}

func (m *Mix) stockLevel(inv *txn.Invocation, w int, rng *rand.Rand) *txn.Invocation {
	inv.Proc = ProcStockLevel
	inv.Args = &StockLevelArgs{WID: w, DID: m.district(rng), Threshold: 10 + rng.Intn(11)}
	return inv
}

var _ workload.Generator = (*Mix)(nil)
