package tpcc

import (
	"math"
	"math/rand"
	"testing"

	"specdb/internal/storage"
	"specdb/internal/txn"
)

func testLayout() Layout { return Layout{Warehouses: 2, Partitions: 1} }

func testCatalog() *txn.Catalog {
	return &txn.Catalog{NumPartitions: 1, Meta: testLayout()}
}

func loadedStore(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	ld := Loader{Layout: testLayout(), Scale: Scale{
		Items: 50, StockPerWarehouse: 50, CustomersPerDist: 30, InitialOrders: 10,
	}, Seed: 42}
	ld.Load(0, s)
	return s
}

func view(s *storage.Store) *storage.TxnView {
	return storage.NewTxnView(s, nil, nil)
}

func TestLastNameGenerator(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", LastName(999))
	}
}

func TestNURandRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := nuRand(rng, 255, cLast, 0, 999)
		if v < 0 || v > 999 {
			t.Fatalf("nuRand out of range: %d", v)
		}
	}
}

func TestLayoutRoundRobin(t *testing.T) {
	l := Layout{Warehouses: 6, Partitions: 2}
	if l.PartitionOf(1) != 0 || l.PartitionOf(2) != 1 || l.PartitionOf(3) != 0 {
		t.Fatal("round robin broken")
	}
	on0 := l.WarehousesOn(0)
	if len(on0) != 3 || on0[0] != 1 || on0[2] != 5 {
		t.Fatalf("WarehousesOn(0) = %v", on0)
	}
}

func TestLoaderConsistentAtStart(t *testing.T) {
	s := loadedStore(t)
	if err := CheckConsistency(testLayout(), []*storage.Store{s}); err != nil {
		t.Fatalf("fresh database inconsistent: %v", err)
	}
	// Loading must be deterministic.
	s2 := loadedStore(t)
	if s.Fingerprint() != s2.Fingerprint() {
		t.Fatal("loader is not deterministic")
	}
}

func TestLoaderNameIndexMatchesCustomers(t *testing.T) {
	s := loadedStore(t)
	count := 0
	s.Table(TCustName).Ascend("", "", func(k string, v any) bool {
		count++
		return true
	})
	if count != s.Table(TCustomer).Len() {
		t.Fatalf("name index has %d entries, customers %d", count, s.Table(TCustomer).Len())
	}
}

func runNewOrder(t *testing.T, s *storage.Store, a *NewOrderArgs) (*NewOrderResult, error) {
	t.Helper()
	plan := NewOrderProc{}.Plan(a, testCatalog())
	if len(plan.Parts) != 1 {
		t.Fatalf("single-partition layout produced %d parts", len(plan.Parts))
	}
	out, err := NewOrderProc{}.Run(view(s), plan.Work[plan.Parts[0]])
	if err != nil {
		return nil, err
	}
	return out.(*NewOrderResult), nil
}

func TestNewOrderHappyPath(t *testing.T) {
	s := loadedStore(t)
	dr, _ := s.Table(TDistrict).Get(DistrictKey(1, 1))
	nextBefore := dr.(*District).NextOID
	stockBefore := *mustStock(t, s, 1, 7)

	res, err := runNewOrder(t, s, &NewOrderArgs{
		WID: 1, DID: 1, CID: 3,
		Lines:  []NewOrderLine{{IID: 7, SupplyWID: 1, Qty: 4}},
		EntryD: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OID != nextBefore {
		t.Fatalf("order id %d, want %d", res.OID, nextBefore)
	}
	dr, _ = s.Table(TDistrict).Get(DistrictKey(1, 1))
	if dr.(*District).NextOID != nextBefore+1 {
		t.Fatal("NextOID not advanced")
	}
	or, ok := s.Table(TOrder).Get(OrderKey(1, 1, res.OID))
	if !ok || or.(*Order).CID != 3 || or.(*Order).OLCnt != 1 {
		t.Fatalf("order row = %+v", or)
	}
	if _, ok := s.Table(TNewOrder).Get(NewOrderKey(1, 1, res.OID)); !ok {
		t.Fatal("NEW-ORDER row missing")
	}
	ol, ok := s.Table(TOrderLine).Get(OrderLineKey(1, 1, res.OID, 1))
	if !ok || ol.(*OrderLine).IID != 7 || ol.(*OrderLine).Qty != 4 {
		t.Fatalf("order line = %+v", ol)
	}
	stockAfter := mustStock(t, s, 1, 7)
	wantQty := stockBefore.Quantity - 4
	if stockBefore.Quantity-4 < 10 {
		wantQty = stockBefore.Quantity - 4 + 91
	}
	if stockAfter.Quantity != wantQty || stockAfter.YTD != stockBefore.YTD+4 || stockAfter.OrderCnt != stockBefore.OrderCnt+1 {
		t.Fatalf("stock = %+v, want qty %d", stockAfter, wantQty)
	}
	if stockAfter.RemoteCnt != stockBefore.RemoteCnt {
		t.Fatal("local supply counted as remote")
	}
	if err := CheckConsistency(testLayout(), []*storage.Store{s}); err != nil {
		t.Fatal(err)
	}
}

func mustStock(t *testing.T, s *storage.Store, w, i int) *Stock {
	t.Helper()
	sr, ok := s.Table(TStock).Get(StockKey(w, i))
	if !ok {
		t.Fatalf("stock %d-%d missing", w, i)
	}
	return sr.(*Stock)
}

func TestNewOrderStockWraparound(t *testing.T) {
	s := loadedStore(t)
	st := *mustStock(t, s, 1, 9)
	st.Quantity = 12
	s.Table(TStock).Put(StockKey(1, 9), &st)
	if _, err := runNewOrder(t, s, &NewOrderArgs{
		WID: 1, DID: 2, CID: 1,
		Lines: []NewOrderLine{{IID: 9, SupplyWID: 1, Qty: 5}},
	}); err != nil {
		t.Fatal(err)
	}
	// 12-5=7 < 10 → wrap to 7+91=98.
	if got := mustStock(t, s, 1, 9).Quantity; got != 98 {
		t.Fatalf("quantity = %d, want 98", got)
	}
}

func TestNewOrderInvalidItemAbortsBeforeWrites(t *testing.T) {
	s := loadedStore(t)
	before := s.Fingerprint()
	_, err := runNewOrder(t, s, &NewOrderArgs{
		WID: 1, DID: 1, CID: 1,
		Lines: []NewOrderLine{{IID: 7, SupplyWID: 1, Qty: 1}, {IID: 9999, SupplyWID: 1, Qty: 1}},
	})
	if err != txn.ErrUserAbort {
		t.Fatalf("err = %v, want user abort", err)
	}
	// The §5.5 reordering: validation precedes every write, so the abort
	// leaves the store untouched even with no undo buffer.
	if s.Fingerprint() != before {
		t.Fatal("aborted NewOrder modified the store")
	}
}

func TestNewOrderRemoteSupplyCounts(t *testing.T) {
	s := loadedStore(t)
	// Warehouse 2 is on the same (only) partition; supply from it is
	// still "remote" in TPC-C terms.
	before := *mustStock(t, s, 2, 5)
	if _, err := runNewOrder(t, s, &NewOrderArgs{
		WID: 1, DID: 3, CID: 2,
		Lines: []NewOrderLine{{IID: 5, SupplyWID: 2, Qty: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	after := mustStock(t, s, 2, 5)
	if after.RemoteCnt != before.RemoteCnt+1 {
		t.Fatal("remote supply not counted")
	}
}

func TestNewOrderPlanSplitsByPartition(t *testing.T) {
	cat := &txn.Catalog{NumPartitions: 2, Meta: Layout{Warehouses: 2, Partitions: 2}}
	a := &NewOrderArgs{
		WID: 1, DID: 1, CID: 1,
		Lines: []NewOrderLine{
			{IID: 1, SupplyWID: 1, Qty: 1},
			{IID: 2, SupplyWID: 2, Qty: 1},
			{IID: 3, SupplyWID: 1, Qty: 1},
		},
	}
	plan := NewOrderProc{}.Plan(a, cat)
	if len(plan.Parts) != 2 || plan.Rounds != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	home := plan.Work[0].(*noHomeWork)
	if len(home.LocalLines) != 2 || home.AllLocal {
		t.Fatalf("home work = %+v", home)
	}
	remote := plan.Work[1].(*noRemoteWork)
	if len(remote.Lines) != 1 || remote.Lines[0] != 1 {
		t.Fatalf("remote work = %+v", remote)
	}
}

func TestPaymentById(t *testing.T) {
	s := loadedStore(t)
	wr, _ := s.Table(TWarehouse).Get(WarehouseKey(1))
	wYTD := wr.(*Warehouse).YTD
	cr, _ := s.Table(TCustomer).Get(CustomerKey(1, 2, 5))
	balBefore := cr.(*Customer).Balance

	a := &PaymentArgs{WID: 1, DID: 4, CWID: 1, CDID: 2, CID: 5, Amount: 123.45, When: 77}
	plan := PaymentProc{}.Plan(a, testCatalog())
	out, err := PaymentProc{}.Run(view(s), plan.Work[plan.Parts[0]])
	if err != nil {
		t.Fatal(err)
	}
	res := out.(*PaymentResult)
	if res.CID != 5 || math.Abs(res.Balance-(balBefore-123.45)) > 1e-9 {
		t.Fatalf("result = %+v", res)
	}
	wr, _ = s.Table(TWarehouse).Get(WarehouseKey(1))
	if math.Abs(wr.(*Warehouse).YTD-(wYTD+123.45)) > 1e-9 {
		t.Fatal("warehouse YTD not updated")
	}
	if _, ok := s.Table(THistory).Get(HistoryKey(1, 4, 77)); !ok {
		t.Fatal("history row missing")
	}
	cr, _ = s.Table(TCustomer).Get(CustomerKey(1, 2, 5))
	c := cr.(*Customer)
	if c.PaymentCnt != 1 || math.Abs(c.YTDPayment-123.45) > 1e-9 {
		t.Fatalf("customer = %+v", c)
	}
	// W_YTD now exceeds ΣD_YTD only if the district was missed.
	if err := CheckConsistency(testLayout(), []*storage.Store{s}); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentByLastNamePicksMiddle(t *testing.T) {
	s := loadedStore(t)
	// Find a last name with multiple customers in district 1.
	byName := map[string][]int{}
	s.Table(TCustomer).Ascend("", "", func(k string, v any) bool {
		c := v.(*Customer)
		if c.WID == 1 && c.DID == 1 {
			byName[c.Last] = append(byName[c.Last], c.ID)
		}
		return true
	})
	var name string
	var ids []int
	for n, l := range byName {
		if len(l) >= 2 {
			name, ids = n, l
			break
		}
	}
	if name == "" {
		t.Skip("no duplicate last names at this scale")
	}
	got := findCustomerByName(view(s), 1, 1, name)
	want := ids[(len(ids)+1)/2-1]
	if got != want {
		t.Fatalf("picked customer %d, want middle %d of %v", got, want, ids)
	}
}

func TestPaymentRemotePlanTwoFragments(t *testing.T) {
	cat := &txn.Catalog{NumPartitions: 2, Meta: Layout{Warehouses: 2, Partitions: 2}}
	a := &PaymentArgs{WID: 1, DID: 1, CWID: 2, CDID: 3, CID: 1, Amount: 1}
	plan := PaymentProc{}.Plan(a, cat)
	if len(plan.Parts) != 2 {
		t.Fatalf("parts = %v", plan.Parts)
	}
	hw := plan.Work[0].(*payWork)
	cw := plan.Work[1].(*payWork)
	if !hw.Home || hw.Customer || cw.Home || !cw.Customer {
		t.Fatalf("work split wrong: %+v %+v", hw, cw)
	}
}

func TestOrderStatusLatestOrder(t *testing.T) {
	s := loadedStore(t)
	// Create two orders for customer 4 in district 5.
	for i := 0; i < 2; i++ {
		if _, err := runNewOrder(t, s, &NewOrderArgs{
			WID: 1, DID: 5, CID: 4,
			Lines: []NewOrderLine{{IID: 3, SupplyWID: 1, Qty: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	a := &OrderStatusArgs{WID: 1, DID: 5, CID: 4}
	plan := OrderStatusProc{}.Plan(a, testCatalog())
	out, err := OrderStatusProc{}.Run(view(s), plan.Work[plan.Parts[0]])
	if err != nil {
		t.Fatal(err)
	}
	res := out.(*OrderStatusResult)
	dr, _ := s.Table(TDistrict).Get(DistrictKey(1, 5))
	if res.OID != dr.(*District).NextOID-1 {
		t.Fatalf("latest order = %d, want %d", res.OID, dr.(*District).NextOID-1)
	}
	if len(res.Lines) != 1 {
		t.Fatalf("lines = %d", len(res.Lines))
	}
}

func TestDeliveryOldestFirstAndBalance(t *testing.T) {
	s := loadedStore(t)
	// District 1's oldest undelivered order.
	prefix := NewOrderPrefix(1, 1)
	oldest := 0
	s.Table(TNewOrder).Ascend(prefix, storage.PrefixEnd(prefix), func(k string, v any) bool {
		oldest = v.(*NewOrderRow).OID
		return false
	})
	if oldest == 0 {
		t.Fatal("no undelivered orders in fresh load")
	}
	or, _ := s.Table(TOrder).Get(OrderKey(1, 1, oldest))
	cid := or.(*Order).CID
	cr, _ := s.Table(TCustomer).Get(CustomerKey(1, 1, cid))
	balBefore := cr.(*Customer).Balance

	a := &DeliveryArgs{WID: 1, CarrierID: 7, When: 123}
	plan := DeliveryProc{}.Plan(a, testCatalog())
	out, err := DeliveryProc{}.Run(view(s), plan.Work[plan.Parts[0]])
	if err != nil {
		t.Fatal(err)
	}
	delivered := out.([]int)
	if delivered[0] != oldest {
		t.Fatalf("district 1 delivered %d, want oldest %d", delivered[0], oldest)
	}
	if _, ok := s.Table(TNewOrder).Get(NewOrderKey(1, 1, oldest)); ok {
		t.Fatal("NEW-ORDER row not removed")
	}
	or, _ = s.Table(TOrder).Get(OrderKey(1, 1, oldest))
	if or.(*Order).CarrierID != 7 {
		t.Fatal("carrier not set")
	}
	// Customer balance grew by the sum of the order's line amounts.
	total := 0.0
	olp := OrderLinePrefix(1, 1, oldest)
	s.Table(TOrderLine).Ascend(olp, storage.PrefixEnd(olp), func(k string, v any) bool {
		ol := v.(*OrderLine)
		total += ol.Amount
		if ol.DeliveryD != 123 {
			t.Fatal("delivery date not set on order line")
		}
		return true
	})
	cr, _ = s.Table(TCustomer).Get(CustomerKey(1, 1, cid))
	c := cr.(*Customer)
	if math.Abs(c.Balance-(balBefore+total)) > 1e-9 || c.DeliveryCnt != 1 {
		t.Fatalf("customer = %+v, want balance %f", c, balBefore+total)
	}
	if err := CheckConsistency(testLayout(), []*storage.Store{s}); err != nil {
		t.Fatal(err)
	}
}

func TestStockLevelMatchesBruteForce(t *testing.T) {
	s := loadedStore(t)
	a := &StockLevelArgs{WID: 1, DID: 1, Threshold: 50}
	plan := StockLevelProc{}.Plan(a, testCatalog())
	out, err := StockLevelProc{}.Run(view(s), plan.Work[plan.Parts[0]])
	if err != nil {
		t.Fatal(err)
	}
	// Brute force the same definition.
	dr, _ := s.Table(TDistrict).Get(DistrictKey(1, 1))
	lo := dr.(*District).NextOID - 20
	if lo < 1 {
		lo = 1
	}
	items := map[int]bool{}
	s.Table(TOrderLine).Ascend("", "", func(k string, v any) bool {
		ol := v.(*OrderLine)
		if ol.WID == 1 && ol.DID == 1 && ol.OID >= lo && ol.SupplyWID == 1 {
			items[ol.IID] = true
		}
		return true
	})
	want := 0
	for i := range items {
		sr, _ := s.Table(TStock).Get(StockKey(1, i))
		if sr.(*Stock).Quantity < 50 {
			want++
		}
	}
	if out.(int) != want {
		t.Fatalf("stock level = %d, want %d", out, want)
	}
}

func TestMixGeneratesValidInvocations(t *testing.T) {
	m := &Mix{
		Layout:            Layout{Warehouses: 4, Partitions: 2},
		Scale:             DefaultScale(),
		RemoteItemProb:    0.01,
		RemotePaymentProb: 0.15,
	}
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		inv := m.Next(i%8, rng)
		counts[inv.Proc]++
		switch a := inv.Args.(type) {
		case *NewOrderArgs:
			if a.WID < 1 || a.WID > 4 || a.DID < 1 || a.DID > 10 {
				t.Fatalf("bad NewOrder args %+v", a)
			}
			if len(a.Lines) < 5 || len(a.Lines) > 15 {
				t.Fatalf("bad line count %d", len(a.Lines))
			}
		case *PaymentArgs:
			if a.CID == 0 && a.CLast == "" {
				t.Fatal("payment selects no customer")
			}
		}
	}
	// Mix ratios within 2 percentage points of spec.
	tot := 20000.0
	if r := float64(counts[ProcNewOrder]) / tot; math.Abs(r-0.45) > 0.02 {
		t.Fatalf("NewOrder ratio %f", r)
	}
	if r := float64(counts[ProcPayment]) / tot; math.Abs(r-0.43) > 0.02 {
		t.Fatalf("Payment ratio %f", r)
	}
}

// TestMixMultiPartitionFraction reproduces the §5.5 observation: with the
// default TPC-C parameters, the multi-partition fraction is ~10.7% with 2
// warehouses and ~5.7% with 20 (on 2 partitions).
func TestMixMultiPartitionFraction(t *testing.T) {
	measure := func(warehouses int) float64 {
		l := Layout{Warehouses: warehouses, Partitions: 2}
		m := &Mix{Layout: l, Scale: DefaultScale(), RemoteItemProb: 0.01, RemotePaymentProb: 0.15}
		cat := &txn.Catalog{NumPartitions: 2, Meta: l}
		rng := rand.New(rand.NewSource(9))
		reg := txn.NewRegistry()
		RegisterAll(reg)
		mp := 0
		const n = 40000
		for i := 0; i < n; i++ {
			inv := m.Next(i%40, rng)
			if len(reg.Get(inv.Proc).Plan(inv.Args, cat).Parts) > 1 {
				mp++
			}
		}
		return float64(mp) / n
	}
	got2 := measure(2)
	if math.Abs(got2-0.107) > 0.02 {
		t.Errorf("2 warehouses: MP fraction %f, paper says 0.107", got2)
	}
	got20 := measure(20)
	if math.Abs(got20-0.057) > 0.015 {
		t.Errorf("20 warehouses: MP fraction %f, paper says 0.057", got20)
	}
	if got2 < got20 {
		t.Error("MP fraction should fall as warehouses grow")
	}
}
