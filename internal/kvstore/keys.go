package kvstore

import (
	"sync"

	"specdb/internal/msg"
)

// Key-name interning. The microbenchmark issues millions of transactions
// over a tiny fixed key population, and formatting every name with
// fmt.Sprintf on the issue path dominated CPU and allocation profiles —
// exactly the per-transaction overhead the paper says decides which scheme
// wins (§4, Figure 4). Names and per-client key slices are built once and
// cached process-wide; steady-state lookups take a read lock and allocate
// nothing.
//
// Interned slices are SHARED and MUST NOT be mutated. Fragment works alias
// them, and replicas may replay those works long after the issuing client
// has moved on to its next transaction (a backup applies a buffered
// multi-partition forward when the decision arrives, which can be after the
// client's reply) — immutability is what makes the workload generator's
// buffer reuse safe under replication and speculative re-execution.

type keyID struct {
	c, i int
	p    msg.PartitionID
}

type sliceID struct {
	c, n int
	p    msg.PartitionID
	// hot marks the conflict variant: element 0 is the partition's
	// contended key instead of the client's own first key (§5.2).
	hot bool
}

var intern struct {
	sync.RWMutex
	names  map[keyID]string
	slices map[sliceID][]string
}

// formatKey builds the canonical "cCCC.pPP.kKK" name without fmt: the
// fields are fixed-width decimal, which keeps names sortable and identical
// to the historical fmt.Sprintf("c%03d.p%02d.k%02d", ...) format.
func formatKey(c int, p msg.PartitionID, i int) string {
	var b [12]byte
	b[0] = 'c'
	putWide(b[1:4], c)
	b[4] = '.'
	b[5] = 'p'
	putWide(b[6:8], int(p))
	b[8] = '.'
	b[9] = 'k'
	putWide(b[10:12], i)
	return string(b[:])
}

// putWide writes v right-aligned in decimal with leading zeros. Values wider
// than the field (clients beyond 999, say) widen it like %03d would; they
// never occur in the paper's configurations, so the slow path is fine.
func putWide(dst []byte, v int) {
	if v < 0 {
		panic("kvstore: negative key field")
	}
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = byte('0' + v%10)
		v /= 10
	}
	if v > 0 {
		panic("kvstore: key field overflow") // widen the key format first
	}
}

// ClientKey names client c's i-th private key on partition p. The §5.1
// microbenchmark gives every client its own keys so that, absent the
// deliberate conflict knob, transactions never contend. Names are interned:
// repeated calls return the same string without formatting.
func ClientKey(c int, p msg.PartitionID, i int) string {
	id := keyID{c: c, i: i, p: p}
	intern.RLock()
	s, ok := intern.names[id]
	intern.RUnlock()
	if ok {
		return s
	}
	intern.Lock()
	defer intern.Unlock()
	return nameLocked(id)
}

// nameLocked returns (interning if absent) the name for id. Callers must
// hold the intern write lock.
func nameLocked(id keyID) string {
	if s, ok := intern.names[id]; ok {
		return s
	}
	if intern.names == nil {
		intern.names = make(map[keyID]string)
	}
	s := formatKey(id.c, id.p, id.i)
	intern.names[id] = s
	return s
}

// SharedKey views a partition's whole loaded key population — every
// client's keysPerClient keys — as one flat rank space and returns the
// interned name of rank idx: client idx/keysPerClient's key idx mod
// keysPerClient. Skewed workloads (workload.Micro's KeySkew) sample ranks
// from this space, so rank 0 (client 0's first key) is the hottest key
// without any loader changes.
func SharedKey(p msg.PartitionID, keysPerClient, idx int) string {
	return ClientKey(idx/keysPerClient, p, idx%keysPerClient)
}

// HotKey is the contended key of §5.2 on partition p: the first client's
// (partition 0) or second client's (partition 1) first key, which those
// pinned clients write in nearly every transaction.
func HotKey(p msg.PartitionID) string {
	return ClientKey(int(p), p, 0)
}

// PartitionKeys returns client c's first n key names on partition p as an
// interned slice: [ClientKey(c,p,0) .. ClientKey(c,p,n-1)]. The slice is
// shared across callers and must not be mutated.
func PartitionKeys(c int, p msg.PartitionID, n int) []string {
	return internedSlice(sliceID{c: c, p: p, n: n})
}

// ConflictKeys is PartitionKeys with the first key replaced by the
// partition's contended key (§5.2's conflict injection). Shared; do not
// mutate.
func ConflictKeys(c int, p msg.PartitionID, n int) []string {
	return internedSlice(sliceID{c: c, p: p, n: n, hot: true})
}

func internedSlice(id sliceID) []string {
	intern.RLock()
	s, ok := intern.slices[id]
	intern.RUnlock()
	if ok {
		return s
	}
	intern.Lock()
	defer intern.Unlock()
	if s, ok := intern.slices[id]; ok {
		return s
	}
	if intern.slices == nil {
		intern.slices = make(map[sliceID][]string)
	}
	// Elements go through the name table too, so ClientKey and the slices
	// hand out the identical string values.
	s = make([]string, id.n)
	for i := range s {
		s[i] = nameLocked(keyID{c: id.c, i: i, p: id.p})
	}
	if id.hot && id.n > 0 {
		// The partition's contended key is its pinned client's first key
		// (HotKey, not callable here: it would re-enter the lock).
		s[0] = nameLocked(keyID{c: int(id.p), i: 0, p: id.p})
	}
	intern.slices[id] = s
	return s
}
