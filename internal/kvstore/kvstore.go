// Package kvstore is the microbenchmark execution engine of §5.1: "a simple
// key/value store, where keys and values are arbitrary byte strings. One
// transaction is supported, which reads a set of values then updates them."
//
// Values here are integer counters, which keeps transaction effects
// verifiable (every committed transaction increments its keys exactly once)
// while exercising the same code paths; the paper deliberately uses tiny
// values so data transfer time is irrelevant.
package kvstore

import (
	"fmt"
	"slices"
	"strconv"

	"specdb/internal/msg"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// Table is the key/value table name.
const Table = "kv"

// ProcName is the registry name of the read/write procedure.
const ProcName = "kv.readwrite"

// Args invokes the read/write transaction: for each partition, the listed
// keys are read and incremented. TwoRound splits the work into a read round
// and a write round with a coordinator hop between them (§5.4's "general"
// multi-partition transactions). ReadOnly reads the keys without updating
// them — a declared read-only transaction (always single-round), which the
// MVCC engine serves from a snapshot.
type Args struct {
	Keys     map[msg.PartitionID][]string
	TwoRound bool
	ReadOnly bool
	// Scans, when non-empty, makes the invocation a declared read-only
	// range scan (YCSB-E's short-range workload): each listed partition
	// scans its [Lo, Hi) slice of the kv table, summing the counters it
	// visits. Keys is ignored for scan invocations.
	Scans map[msg.PartitionID]ScanArg
}

// ScanArg is one partition's share of a range-scan invocation. Lo and Hi
// bound the scan half-open ([Lo, Hi); empty Hi means "to the end of the
// table") and Limit caps the number of rows visited (0 = unlimited).
type ScanArg struct {
	Lo, Hi string
	Limit  int
}

// work is the per-partition fragment input.
type work struct {
	Keys  []string
	Round int
	// ReadOnly marks round 0 of a two-round transaction (reads only;
	// the writes come back in round 1). The keys are still read with
	// update intent: the writes follow in round 1.
	ReadOnly bool
	// Shared marks a declared read-only transaction's fragment: keys are
	// read with shared access and never written.
	Shared bool
	// Vals carries the round-1 write values for two-round transactions,
	// computed at the coordinator from the round-0 reads.
	Vals []int64
	// Scan marks a range-scan fragment (always Shared): the fragment scans
	// [ScanLo, ScanHi) visiting at most ScanLimit rows, instead of reading
	// Keys.
	Scan           bool
	ScanLo, ScanHi string
	ScanLimit      int
}

// AppendLog appends a deterministic encoding of the fragment input to dst,
// satisfying durable.AppendEncoder so command-log appends on the
// microbenchmark hot path stay allocation-free (keys, round, and any
// round-1 write values, all via append/strconv).
func (w *work) AppendLog(dst []byte) []byte {
	dst = append(dst, "kv r="...)
	dst = strconv.AppendInt(dst, int64(w.Round), 10)
	if w.ReadOnly {
		dst = append(dst, " ro"...)
	}
	if w.Shared {
		dst = append(dst, " s"...)
	}
	if w.Scan {
		dst = append(dst, " scan["...)
		dst = append(dst, w.ScanLo...)
		dst = append(dst, ',')
		dst = append(dst, w.ScanHi...)
		dst = append(dst, ")l="...)
		dst = strconv.AppendInt(dst, int64(w.ScanLimit), 10)
	}
	for i, k := range w.Keys {
		dst = append(dst, ' ')
		dst = append(dst, k...)
		if w.Vals != nil {
			dst = append(dst, '=')
			dst = strconv.AppendInt(dst, w.Vals[i], 10)
		}
	}
	return dst
}

// Proc implements the read/write stored procedure.
type Proc struct{}

// Name implements txn.Procedure.
func (Proc) Name() string { return ProcName }

// Plan implements txn.Procedure.
func (Proc) Plan(args any, cat *txn.Catalog) txn.Plan {
	a := args.(*Args)
	if len(a.Scans) > 0 {
		// Declared read-only range scan: one round, no writes. The scanned
		// ranges are declared on the plan so engines can take range coverage
		// before touching rows.
		parts := make([]msg.PartitionID, 0, len(a.Scans))
		for p := range a.Scans {
			parts = append(parts, p)
		}
		slices.Sort(parts)
		w := make(map[msg.PartitionID]any, len(parts))
		ranges := make(map[msg.PartitionID][]msg.KeyRange, len(parts))
		for _, p := range parts {
			s := a.Scans[p]
			w[p] = &work{Round: 0, Shared: true, Scan: true, ScanLo: s.Lo, ScanHi: s.Hi, ScanLimit: s.Limit}
			ranges[p] = []msg.KeyRange{{Table: Table, Lo: s.Lo, Hi: s.Hi}}
		}
		return txn.Plan{Parts: parts, Work: w, Rounds: 1, ReadOnly: true, Scans: ranges}
	}
	parts := make([]msg.PartitionID, 0, len(a.Keys))
	for p := range a.Keys {
		parts = append(parts, p)
	}
	slices.Sort(parts)
	if a.ReadOnly {
		// Declared read-only: one round of shared reads, no writes.
		w := make(map[msg.PartitionID]any, len(parts))
		for _, p := range parts {
			w[p] = &work{Keys: a.Keys[p], Round: 0, Shared: true}
		}
		return txn.Plan{Parts: parts, Work: w, Rounds: 1, ReadOnly: true}
	}
	rounds := 1
	if a.TwoRound {
		rounds = 2
	}
	w := make(map[msg.PartitionID]any, len(parts))
	for _, p := range parts {
		w[p] = &work{Keys: a.Keys[p], Round: 0, ReadOnly: a.TwoRound}
	}
	return txn.Plan{Parts: parts, Work: w, Rounds: rounds}
}

// Continue implements txn.Procedure: round 1 of a two-round transaction
// writes back each key's value + 1, computed from the round-0 reads.
func (Proc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	a := args.(*Args)
	if round != 1 || !a.TwoRound {
		panic(fmt.Sprintf("kvstore: unexpected round %d", round))
	}
	out := make(map[msg.PartitionID]any, len(prior))
	for _, r := range prior {
		reads := r.Output.([]int64)
		keys := a.Keys[r.Partition]
		vals := make([]int64, len(reads))
		for i, v := range reads {
			vals[i] = v + 1
		}
		out[r.Partition] = &work{Keys: keys, Round: 1, Vals: vals}
	}
	return out
}

// Run implements txn.Procedure.
func (Proc) Run(view *storage.TxnView, w any) (any, error) {
	wk := w.(*work)
	if wk.Round == 1 {
		// Write round of a two-round transaction. The keys were read
		// with update intent in round 0, so the X locks are held.
		for i, k := range wk.Keys {
			view.Put(Table, k, wk.Vals[i])
		}
		return int64(len(wk.Keys)), nil
	}
	if wk.Scan {
		// Range scan: visit [ScanLo, ScanHi) in order. The output is the
		// visited-row count — deterministic under serializable execution.
		n := view.Scan(Table, wk.ScanLo, wk.ScanHi, wk.ScanLimit, func(k string, v any) bool {
			return true
		})
		return int64(n), nil
	}
	if wk.Shared {
		// Declared read-only transaction: shared reads, no update intent.
		vals := make([]int64, len(wk.Keys))
		for i, k := range wk.Keys {
			v, ok := view.Get(Table, k)
			if !ok {
				return nil, fmt.Errorf("kvstore: missing key %q", k)
			}
			vals[i] = v.(int64)
		}
		return vals, nil
	}
	vals := make([]int64, len(wk.Keys))
	for i, k := range wk.Keys {
		v, ok := view.GetForUpdate(Table, k)
		if !ok {
			return nil, fmt.Errorf("kvstore: missing key %q", k)
		}
		vals[i] = v.(int64)
	}
	if !wk.ReadOnly {
		// Single-round form: read the set of values, then update them.
		for i, k := range wk.Keys {
			view.Put(Table, k, vals[i]+1)
		}
	}
	return vals, nil
}

// Output implements txn.Procedure.
func (Proc) Output(args any, final []msg.FragmentResult) any {
	var total int64
	for _, r := range final {
		switch v := r.Output.(type) {
		case []int64:
			total += int64(len(v))
		case int64:
			total += v
		}
	}
	return total
}
