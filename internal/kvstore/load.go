package kvstore

import (
	"fmt"

	"specdb/internal/msg"
	"specdb/internal/storage"
)

// ClientKey names client c's i-th private key on partition p. The §5.1
// microbenchmark gives every client its own keys so that, absent the
// deliberate conflict knob, transactions never contend.
func ClientKey(c int, p msg.PartitionID, i int) string {
	return fmt.Sprintf("c%03d.p%02d.k%02d", c, p, i)
}

// HotKey is the contended key of §5.2 on partition p: the first client's
// (partition 0) or second client's (partition 1) first key, which those
// pinned clients write in nearly every transaction.
func HotKey(p msg.PartitionID) string {
	return ClientKey(int(p), p, 0)
}

// AddSchema registers the kv table on a partition store.
func AddSchema(s *storage.Store) {
	s.AddTable(storage.NewHashTable(Table))
}

// Load preloads partition p's share of every client's keys with zero
// counters.
func Load(s *storage.Store, p msg.PartitionID, clients, keysPerClient int) {
	t := s.Table(Table)
	for c := 0; c < clients; c++ {
		for i := 0; i < keysPerClient; i++ {
			t.Put(ClientKey(c, p, i), int64(0))
		}
	}
}

// Sum returns the total of all counters on a store, used by invariant tests:
// every committed transaction increments exactly KeysPerTxn counters.
func Sum(s *storage.Store) int64 {
	var total int64
	s.Table(Table).Ascend("", "", func(k string, v any) bool {
		total += v.(int64)
		return true
	})
	return total
}
