package kvstore

import (
	"specdb/internal/msg"
	"specdb/internal/storage"
)

// AddSchema registers the kv table on a partition store, hash-layout: the
// right choice for pure point workloads (O(1) access, no ordering cost).
func AddSchema(s *storage.Store) {
	s.AddTable(storage.NewHashTable(Table))
}

// AddOrderedSchema registers the kv table as a B-tree, the layout
// scan-bearing workloads need: HashTable serves Ascend by re-sorting the
// whole key population per call, while BTreeTable scans are a tree descent
// plus an in-order walk.
func AddOrderedSchema(s *storage.Store) {
	s.AddTable(storage.NewBTreeTable(Table))
}

// Load preloads partition p's share of every client's keys with zero
// counters.
func Load(s *storage.Store, p msg.PartitionID, clients, keysPerClient int) {
	t := s.Table(Table)
	for c := 0; c < clients; c++ {
		for i := 0; i < keysPerClient; i++ {
			t.Put(ClientKey(c, p, i), int64(0))
		}
	}
}

// Sum returns the total of all counters on a store, used by invariant tests:
// every committed transaction increments exactly KeysPerTxn counters.
func Sum(s *storage.Store) int64 {
	var total int64
	s.Table(Table).Ascend("", "", func(k string, v any) bool {
		total += v.(int64)
		return true
	})
	return total
}
