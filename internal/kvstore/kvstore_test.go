package kvstore

import (
	"sync"
	"testing"

	"specdb/internal/msg"
	"specdb/internal/storage"
	"specdb/internal/txn"
	"specdb/internal/undo"
)

func loaded() *storage.Store {
	s := storage.NewStore()
	AddSchema(s)
	Load(s, 0, 2, 4)
	return s
}

func cat() *txn.Catalog { return &txn.Catalog{NumPartitions: 2} }

func TestPlanSortsPartitions(t *testing.T) {
	a := &Args{Keys: map[msg.PartitionID][]string{1: {"x"}, 0: {"y"}}}
	p := Proc{}.Plan(a, cat())
	if len(p.Parts) != 2 || p.Parts[0] != 0 || p.Parts[1] != 1 {
		t.Fatalf("parts = %v", p.Parts)
	}
	if p.Rounds != 1 {
		t.Fatalf("rounds = %d", p.Rounds)
	}
	a.TwoRound = true
	if (Proc{}).Plan(a, cat()).Rounds != 2 {
		t.Fatal("two-round plan")
	}
}

func TestRunIncrementsAndReturnsPriorValues(t *testing.T) {
	s := loaded()
	k := ClientKey(0, 0, 0)
	a := &Args{Keys: map[msg.PartitionID][]string{0: {k}}}
	p := Proc{}.Plan(a, cat())
	view := storage.NewTxnView(s, nil, nil)
	out, err := Proc{}.Run(view, p.Work[0])
	if err != nil {
		t.Fatal(err)
	}
	if vals := out.([]int64); len(vals) != 1 || vals[0] != 0 {
		t.Fatalf("out = %v", out)
	}
	if v, _ := s.Table(Table).Get(k); v.(int64) != 1 {
		t.Fatalf("value = %v", v)
	}
}

func TestRunMissingKeyAborts(t *testing.T) {
	s := loaded()
	a := &Args{Keys: map[msg.PartitionID][]string{0: {"nope"}}}
	p := Proc{}.Plan(a, cat())
	if _, err := (Proc{}).Run(storage.NewTxnView(s, nil, nil), p.Work[0]); err == nil {
		t.Fatal("missing key must abort")
	}
}

func TestTwoRoundFlow(t *testing.T) {
	s := loaded()
	k := ClientKey(1, 0, 2)
	a := &Args{Keys: map[msg.PartitionID][]string{0: {k}}, TwoRound: true}
	p := Proc{}.Plan(a, cat())
	view := storage.NewTxnView(s, nil, nil)
	out, err := Proc{}.Run(view, p.Work[0])
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 is read-only.
	if v, _ := s.Table(Table).Get(k); v.(int64) != 0 {
		t.Fatal("round 0 wrote")
	}
	prior := []msg.FragmentResult{{Partition: 0, Output: out}}
	work1 := Proc{}.Continue(a, 1, prior, cat())
	if _, err := (Proc{}).Run(view, work1[0]); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Table(Table).Get(k); v.(int64) != 1 {
		t.Fatalf("after round 1: %v", v)
	}
}

func TestRunWithUndoRollsBack(t *testing.T) {
	s := loaded()
	before := s.Fingerprint()
	k := ClientKey(0, 0, 1)
	a := &Args{Keys: map[msg.PartitionID][]string{0: {k}}}
	p := Proc{}.Plan(a, cat())
	buf := undo.New()
	if _, err := (Proc{}).Run(storage.NewTxnView(s, buf, nil), p.Work[0]); err != nil {
		t.Fatal(err)
	}
	if s.Fingerprint() == before {
		t.Fatal("no effect")
	}
	buf.Rollback()
	if s.Fingerprint() != before {
		t.Fatal("rollback incomplete")
	}
}

func TestOutputCounts(t *testing.T) {
	out := Proc{}.Output(nil, []msg.FragmentResult{
		{Output: []int64{1, 2, 3}},
		{Output: int64(4)},
	})
	if out.(int64) != 7 {
		t.Fatalf("output = %v", out)
	}
}

func TestSumCountsAllCounters(t *testing.T) {
	s := loaded()
	if Sum(s) != 0 {
		t.Fatal("fresh store sum nonzero")
	}
	s.Table(Table).Put(ClientKey(0, 0, 0), int64(5))
	if Sum(s) != 5 {
		t.Fatalf("sum = %d", Sum(s))
	}
}

func TestHotKeyIsPinnedClientsFirstKey(t *testing.T) {
	if HotKey(0) != ClientKey(0, 0, 0) {
		t.Fatal("hot key 0")
	}
	if HotKey(1) != ClientKey(1, 1, 0) {
		t.Fatal("hot key 1")
	}
}

func TestClientKeyFormat(t *testing.T) {
	// The interned names must match the historical Sprintf format exactly:
	// stores loaded by older fixtures and the docs both spell keys this way.
	cases := []struct {
		c, i int
		p    msg.PartitionID
		want string
	}{
		{0, 0, 0, "c000.p00.k00"},
		{39, 11, 1, "c039.p01.k11"},
		{7, 3, 12, "c007.p12.k03"},
		{123, 45, 67, "c123.p67.k45"},
	}
	for _, tc := range cases {
		if got := ClientKey(tc.c, tc.p, tc.i); got != tc.want {
			t.Fatalf("ClientKey(%d,%d,%d) = %q, want %q", tc.c, tc.p, tc.i, got, tc.want)
		}
	}
}

func TestInternedSlicesAreStableAndShared(t *testing.T) {
	a := PartitionKeys(3, 1, 6)
	b := PartitionKeys(3, 1, 6)
	if len(a) != 6 || &a[0] != &b[0] {
		t.Fatal("repeated PartitionKeys must return the identical slice")
	}
	for i, k := range a {
		if k != ClientKey(3, 1, i) {
			t.Fatalf("slice element %d = %q, want %q", i, k, ClientKey(3, 1, i))
		}
	}
	c := ConflictKeys(3, 1, 6)
	if c[0] != HotKey(1) {
		t.Fatalf("conflict slice head = %q, want hot key %q", c[0], HotKey(1))
	}
	for i := 1; i < 6; i++ {
		if c[i] != a[i] {
			t.Fatalf("conflict slice tail diverges at %d", i)
		}
	}
	if &c[0] == &a[0] {
		t.Fatal("conflict variant must be a distinct slice")
	}
}

func TestInterningIsConcurrencySafe(t *testing.T) {
	// Parallel sweeps run many simulations at once; the intern tables are
	// process-wide and must tolerate concurrent warming.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := (g*31 + i) % 50
				p := msg.PartitionID(i % 4)
				if PartitionKeys(c, p, 1+i%12)[0] != ClientKey(c, p, 0) {
					panic("interned slice head mismatch")
				}
				_ = ConflictKeys(c, p, 1+i%12)
				_ = HotKey(p)
			}
		}(g)
	}
	wg.Wait()
}
