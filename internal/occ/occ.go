// Package occ implements optimistic concurrency control behind the
// core.Engine interface: transactions execute immediately — even while
// earlier multi-partition transactions are stalled in 2PC — tracking the
// read set and write set of every access, and are validated at their commit
// point. Validation fails when a read overlapped a concurrent writer (a
// pending uncommitted write, or a write committed after the transaction
// began — backward validation); the victim aborts and the client retries it
// with a fresh transaction ID through the same resend path the locking
// scheme's deadlock kills use.
//
// Because the partition is single-threaded, writes go directly into the
// store under an undo buffer. Uncommitted-write overlap (two live writers of
// one row) is prevented eagerly at access time — allowing it would make
// undo-based rollback order-dependent — and a writer also aborts rather than
// invalidate the read set of a transaction that has already voted in 2PC,
// since a vote cannot be retracted. Everything else is resolved at
// validation time, which is where OCC's optimism pays off: conflict-free
// workloads never block and never queue.
package occ

import (
	"fmt"

	"specdb/internal/core"
	"specdb/internal/msg"
)

// Config tunes the OCC engine.
type Config struct {
	// DisableValidation skips commit-time validation and conflict dooming,
	// yielding an intentionally unserializable engine. It exists solely as
	// the negative control for the serializability oracle; no production
	// path sets it. Eager uncommitted-write-overlap prevention stays on
	// (without it rollback itself corrupts the store).
	DisableValidation bool
}

// vkey identifies a row.
type vkey struct {
	table, key string
}

// scanRange is a scanned key range [lo, hi) in a transaction's read set;
// empty hi means unbounded. Recording the *range* rather than the visited
// rows is what makes validation phantom-safe: a write to a key that was
// absent at scan time still lands inside the range.
type scanRange struct {
	table, lo, hi string
}

func (r scanRange) contains(k vkey) bool {
	return k.table == r.table && k.key >= r.lo && (r.hi == "" || k.key < r.hi)
}

// otxn is one live transaction's validation state.
type otxn struct {
	id   msg.TxnID
	frag *msg.Fragment
	// start is the engine's commit sequence number when the transaction
	// began; backward validation compares it against the commit sequence
	// of writes to the read set.
	start    uint64
	readSet  map[vkey]struct{}
	writeSet map[vkey]struct{}
	// scans extends the read set to scanned key ranges; validation checks
	// them against writes by containment instead of key equality.
	scans []scanRange
	// voted means the yes vote for this transaction has been sent (2PC);
	// its read set can no longer be invalidated by a writer.
	voted bool
	// doomed marks a transaction whose read set included a write that was
	// rolled back (it may have read a value that never existed); it fails
	// validation unconditionally.
	doomed bool
}

// Engine is the OCC concurrency control engine for one partition.
type Engine struct {
	env     core.Env
	cfg     Config
	pending map[msg.TxnID]*otxn
	// pendingWrites maps each uncommitted-written row to its single live
	// writer (eager overlap prevention guarantees uniqueness).
	pendingWrites map[vkey]msg.TxnID
	// commitSeq numbers commits; committedWrites records, per row, the
	// commit sequence of its latest committed write while any transaction
	// is pending (cleared when the partition quiesces).
	commitSeq       uint64
	committedWrites map[vkey]uint64
	stats           core.EngineStats
}

// New returns an OCC engine bound to env.
func New(env core.Env, cfg Config) *Engine {
	return &Engine{
		env:             env,
		cfg:             cfg,
		pending:         make(map[msg.TxnID]*otxn),
		pendingWrites:   make(map[vkey]msg.TxnID),
		committedWrites: make(map[vkey]uint64),
	}
}

// Scheme identifies the engine.
func (e *Engine) Scheme() core.Scheme { return core.SchemeOCC }

// Stats returns activity counters.
func (e *Engine) Stats() core.EngineStats { return e.stats }

// Quiescent reports whether no transaction state is live. Stale timers from
// a retired engine are ignored by Timer, so a quiescent OCC engine can be
// swapped out.
func (e *Engine) Quiescent() bool { return len(e.pending) == 0 }

// conflictKill is the panic sentinel the recording locker throws when an
// access conflicts eagerly; the fragment runner recovers it.
type conflictKill struct{}

// recorder implements storage.Locker: it records the read/write sets and
// enforces the eager write rules.
type recorder struct {
	e *Engine
	t *otxn
}

// Lock records one access. Shared accesses always proceed (dirty reads are
// permitted and settled at validation). Exclusive accesses abort the
// accessor when the row has another live writer, or a reader that has
// already voted.
func (r *recorder) Lock(table, key string, exclusive bool) {
	k := vkey{table, key}
	if !exclusive {
		r.t.readSet[k] = struct{}{}
		return
	}
	if w, ok := r.e.pendingWrites[k]; ok && w != r.t.id {
		panic(conflictKill{})
	}
	for _, u := range r.e.pending {
		if u != r.t && u.voted {
			if _, read := u.readSet[k]; read {
				panic(conflictKill{})
			}
			for _, sr := range u.scans {
				if sr.contains(k) {
					// A voted scanner's range is as irrevocable as its
					// read set: inserting a phantom into it must fail.
					panic(conflictKill{})
				}
			}
		}
	}
	r.t.writeSet[k] = struct{}{}
	r.e.pendingWrites[k] = r.t.id
}

// LockRange records a scanned range in the read set. Like point reads, scans
// proceed optimistically — overlap with live or committed-since-start writers
// is settled at validation (the phantom check).
func (r *recorder) LockRange(table, lo, hi string) {
	r.t.scans = append(r.t.scans, scanRange{table: table, lo: lo, hi: hi})
}

// Fragment handles an arriving fragment.
func (e *Engine) Fragment(f *msg.Fragment) {
	if t, ok := e.pending[f.Txn]; ok {
		// A later round of a live multi-partition transaction.
		if t.doomed && !e.cfg.DisableValidation {
			t.frag = f
			e.stats.ValidationAborts++
			e.finishKilled(t)
			return
		}
		e.run(t, f)
		return
	}
	if len(e.pending) == 0 && !f.MultiPartition {
		// Idle fast path, identical to every other scheme: nothing can
		// conflict, so skip tracking and validation entirely.
		out := e.env.Execute(f, f.CanAbort, nil)
		e.stats.Executed++
		e.stats.FastPath++
		e.env.Forget(f.Txn)
		if out.Aborted {
			e.stats.LocalAborts++
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, UserAborted: true})
		} else {
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, Committed: true})
		}
		return
	}
	t := &otxn{
		id:       f.Txn,
		start:    e.commitSeq,
		readSet:  make(map[vkey]struct{}),
		writeSet: make(map[vkey]struct{}),
	}
	e.pending[f.Txn] = t
	e.run(t, f)
}

// run executes one fragment for a tracked transaction and drives the commit
// protocol: single-partition transactions validate and commit (or abort)
// immediately; multi-partition transactions validate when casting their 2PC
// vote.
func (e *Engine) run(t *otxn, f *msg.Fragment) {
	t.frag = f
	killed := false
	var out core.ExecOutcome
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(conflictKill); ok {
					killed = true
					return
				}
				panic(r)
			}
		}()
		out = e.env.Execute(f, true, &recorder{e: e, t: t})
	}()
	if killed {
		e.stats.ValidationAborts++
		e.env.Rollback(t.id)
		e.finishKilled(t)
		return
	}
	e.stats.Executed++
	if out.Aborted {
		// User or injected abort: Execute already rolled back.
		e.stats.LocalAborts++
		e.abortCleanup(t)
		e.env.Forget(t.id)
		if f.MultiPartition {
			e.env.SendResult(f, &msg.FragmentResult{
				Txn: f.Txn, Round: f.Round, Partition: f.Partition,
				Output: out.Output, Aborted: true,
			})
		} else {
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, UserAborted: true})
		}
		return
	}
	if !f.MultiPartition {
		if e.validate(t) {
			e.commitLocal(t)
			e.env.Forget(t.id)
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, Committed: true})
		} else {
			e.stats.ValidationAborts++
			e.env.Rollback(t.id)
			e.finishKilled(t)
		}
		return
	}
	if !f.Last {
		e.env.SendResult(f, &msg.FragmentResult{
			Txn: f.Txn, Round: f.Round, Partition: f.Partition, Output: out.Output,
		})
		return
	}
	// Commit point of a multi-partition transaction: validate before
	// casting the yes vote.
	if e.validate(t) {
		t.voted = true
		e.env.SendResult(f, &msg.FragmentResult{
			Txn: f.Txn, Round: f.Round, Partition: f.Partition, Output: out.Output,
		})
		return
	}
	e.stats.ValidationAborts++
	e.env.Rollback(t.id)
	e.finishKilled(t)
}

// validate is the commit-point check: the transaction passes unless it was
// doomed by a rolled-back writer, a row it read has a live uncommitted
// writer, or a row it read was overwritten by a commit since it began
// (backward validation).
func (e *Engine) validate(t *otxn) bool {
	if e.cfg.DisableValidation {
		return true
	}
	if t.doomed {
		return false
	}
	for k := range t.readSet {
		if w, ok := e.pendingWrites[k]; ok && w != t.id {
			return false
		}
		if e.committedWrites[k] > t.start {
			return false
		}
	}
	// Phantom check: a live or committed-since-start write anywhere inside a
	// scanned range invalidates the scan, whether or not the scan visited
	// that key. Only existence is tested, so map iteration order is moot.
	for _, r := range t.scans {
		for k, w := range e.pendingWrites {
			if w != t.id && r.contains(k) {
				return false
			}
		}
		for k, seq := range e.committedWrites {
			if seq > t.start && r.contains(k) {
				return false
			}
		}
	}
	return true
}

// commitLocal applies commit bookkeeping: stamp the write set with a fresh
// commit sequence number and release the transaction.
func (e *Engine) commitLocal(t *otxn) {
	e.commitSeq++
	for k := range t.writeSet {
		e.committedWrites[k] = e.commitSeq
		delete(e.pendingWrites, k)
	}
	delete(e.pending, t.id)
	e.maybeQuiesce()
}

// abortCleanup releases a transaction whose effects are rolled back (or
// never happened) and dooms live transactions that may have read its
// now-vanished writes. Voted transactions are exempt by construction: a
// write to a voted reader's read set aborts the writer eagerly, so a voted
// read set never contains uncommitted data.
func (e *Engine) abortCleanup(t *otxn) {
	delete(e.pending, t.id)
	for k := range t.writeSet {
		delete(e.pendingWrites, k)
		if e.cfg.DisableValidation {
			continue
		}
		for _, u := range e.pending {
			if u.voted {
				continue
			}
			if _, read := u.readSet[k]; read {
				u.doomed = true
				continue
			}
			for _, sr := range u.scans {
				if sr.contains(k) {
					// The scan may have visited the rolled-back write.
					u.doomed = true
					break
				}
			}
		}
	}
	e.maybeQuiesce()
}

// finishKilled completes a transaction killed by validation or an eager
// conflict: its effects are already rolled back; the client retries it with
// a fresh transaction ID, exactly like a deadlock victim under locking.
func (e *Engine) finishKilled(t *otxn) {
	e.abortCleanup(t)
	e.env.Forget(t.id)
	f := t.frag
	if f.MultiPartition {
		e.env.SendResult(f, &msg.FragmentResult{
			Txn: f.Txn, Round: f.Round, Partition: f.Partition,
			Aborted: true, Killed: true,
		})
	} else {
		e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Retryable: true})
	}
}

// maybeQuiesce clears the committed-write log once nothing is pending: new
// transactions start at the current commit sequence, so entries at or below
// it can never fail a future backward validation.
func (e *Engine) maybeQuiesce() {
	if len(e.pending) == 0 && len(e.committedWrites) > 0 {
		clear(e.committedWrites)
	}
}

// Decision finalizes a multi-partition transaction.
func (e *Engine) Decision(d *msg.Decision) {
	e.env.ChargeDecision()
	t, ok := e.pending[d.Txn]
	if !ok {
		if d.Commit {
			panic(fmt.Sprintf("occ: commit decision for unknown txn %d", d.Txn))
		}
		// The transaction was already killed here (its no vote triggered
		// this abort), or was aborted at failover; nothing to do.
		return
	}
	if d.Commit {
		if !t.voted {
			panic(fmt.Sprintf("occ: commit decision for unvoted txn %d", d.Txn))
		}
		e.commitLocal(t)
		e.env.Forget(t.id)
		return
	}
	e.env.Rollback(t.id)
	e.abortCleanup(t)
	e.env.Forget(t.id)
}

// Timer ignores all payloads: OCC arms no timers, and stale timers from a
// retired engine must be dropped.
func (e *Engine) Timer(payload any) {}
