package occ

import (
	"testing"

	"specdb/internal/core"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/storage"
	"specdb/internal/undo"
)

// workFn is the fragment body representation used by these tests: fragments
// carry executable closures so no procedure registry is needed.
type workFn func(v *storage.TxnView) (any, error)

// fakeEnv implements core.Env against a real store, recording all outputs.
type fakeEnv struct {
	t     *testing.T
	store *storage.Store
	undos map[msg.TxnID]*undo.Buffer

	results   []*msg.FragmentResult
	replies   []*msg.ClientReply
	decisions int
}

func newFakeEnv(t *testing.T) *fakeEnv {
	s := storage.NewStore()
	s.AddTable(storage.NewBTreeTable("kv"))
	return &fakeEnv{t: t, store: s, undos: make(map[msg.TxnID]*undo.Buffer)}
}

func (e *fakeEnv) Execute(f *msg.Fragment, withUndo bool, locker storage.Locker) core.ExecOutcome {
	var buf *undo.Buffer
	if withUndo {
		buf = e.undos[f.Txn]
		if buf == nil {
			buf = undo.New()
			e.undos[f.Txn] = buf
		}
	}
	if f.InjectAbort {
		if buf != nil {
			buf.Rollback()
		}
		return core.ExecOutcome{Aborted: true}
	}
	view := storage.NewTxnView(e.store, buf, locker)
	out, err := f.Work.(workFn)(view)
	if err != nil {
		if buf != nil {
			buf.Rollback()
		}
		return core.ExecOutcome{Output: out, Aborted: true}
	}
	return core.ExecOutcome{Output: out}
}

func (e *fakeEnv) Rollback(id msg.TxnID) {
	if buf := e.undos[id]; buf != nil {
		buf.Rollback()
	}
}

func (e *fakeEnv) Forget(id msg.TxnID) { delete(e.undos, id) }

func (e *fakeEnv) SendResult(f *msg.Fragment, r *msg.FragmentResult) {
	e.results = append(e.results, r)
}

func (e *fakeEnv) ReplyClient(f *msg.Fragment, reply *msg.ClientReply) {
	e.replies = append(e.replies, reply)
}

func (e *fakeEnv) After(d sim.Time, payload any) {}

func (e *fakeEnv) ChargeDecision() { e.decisions++ }

func (e *fakeEnv) get(key string) int {
	v, ok := e.store.Table("kv").Get(key)
	if !ok {
		e.t.Fatalf("key %q missing", key)
	}
	return v.(int)
}

func (e *fakeEnv) set(key string, v int) {
	e.store.Table("kv").Put(key, v)
}

// Fragment builders.

func spFrag(id uint64, fn workFn) *msg.Fragment {
	return &msg.Fragment{Txn: msg.TxnID(id), Proc: "w", Last: true, Work: fn, Client: 99}
}

func mpFrag(id uint64, round int, last bool, fn workFn) *msg.Fragment {
	return &msg.Fragment{
		Txn: msg.TxnID(id), Proc: "w", Round: round, Last: last,
		Work: fn, Coord: 7, MultiPartition: true,
	}
}

func readKey(key string) workFn {
	return func(v *storage.TxnView) (any, error) {
		val, _ := v.Get("kv", key)
		return val, nil
	}
}

func writeKey(key string, val int) workFn {
	return func(v *storage.TxnView) (any, error) {
		v.Put("kv", key, val)
		return val, nil
	}
}

func newEngine(t *testing.T) (*Engine, *fakeEnv) {
	env := newFakeEnv(t)
	return New(env, Config{}), env
}

func lastReply(t *testing.T, env *fakeEnv) *msg.ClientReply {
	t.Helper()
	if len(env.replies) == 0 {
		t.Fatal("no client replies")
	}
	return env.replies[len(env.replies)-1]
}

func lastResult(t *testing.T, env *fakeEnv) *msg.FragmentResult {
	t.Helper()
	if len(env.results) == 0 {
		t.Fatal("no fragment results")
	}
	return env.results[len(env.results)-1]
}

func TestIdleFastPath(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)
	e.Fragment(spFrag(1, writeKey("a", 2)))
	r := lastReply(t, env)
	if !r.Committed || env.get("a") != 2 {
		t.Fatalf("fast-path txn not committed: %+v, a=%d", r, env.get("a"))
	}
	if s := e.Stats(); s.FastPath != 1 || s.Executed != 1 {
		t.Fatalf("stats = %+v, want FastPath=1", s)
	}
	if !e.Quiescent() {
		t.Fatal("engine not quiescent after fast path")
	}
}

// TestStaleReadSetAtValidation: a multi-partition reader whose read set is
// overwritten by a commit between its rounds must fail backward validation at
// its vote and be killed for client retry.
func TestStaleReadSetAtValidation(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	// T1 reads a in round 0 and stays live.
	e.Fragment(mpFrag(1, 0, false, readKey("a")))
	if r := lastResult(t, env); r.Aborted {
		t.Fatalf("round 0 aborted: %+v", r)
	}
	// T2 (single-partition, tracked because T1 is pending) overwrites a and
	// commits.
	e.Fragment(spFrag(2, writeKey("a", 2)))
	if r := lastReply(t, env); !r.Committed {
		t.Fatalf("T2 not committed: %+v", r)
	}
	// T1's vote must fail validation: its read of a is stale.
	e.Fragment(mpFrag(1, 1, true, readKey("a")))
	r := lastResult(t, env)
	if !r.Aborted || !r.Killed {
		t.Fatalf("T1 vote = %+v, want Aborted+Killed", r)
	}
	if s := e.Stats(); s.ValidationAborts != 1 {
		t.Fatalf("ValidationAborts = %d, want 1", s.ValidationAborts)
	}
	if !e.Quiescent() {
		t.Fatal("engine not quiescent after kill")
	}
}

// TestWriteWriteOverlapKilledEagerly: two live writers of one row are never
// admitted — the second aborts at access time, before validation.
func TestWriteWriteOverlapKilledEagerly(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	e.Fragment(mpFrag(1, 0, false, writeKey("a", 10)))
	e.Fragment(spFrag(2, writeKey("a", 20)))
	r := lastReply(t, env)
	if !r.Retryable || r.Committed {
		t.Fatalf("overlapping writer reply = %+v, want Retryable", r)
	}
	if s := e.Stats(); s.ValidationAborts != 1 {
		t.Fatalf("ValidationAborts = %d, want 1", s.ValidationAborts)
	}
	// T1's dirty write survives its rival's rollback and commits.
	e.Fragment(mpFrag(1, 1, true, readKey("a")))
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if env.get("a") != 10 {
		t.Fatalf("a = %d, want 10", env.get("a"))
	}
}

// TestVotedReadSetIsInviolable: once a transaction has voted yes, a writer
// that would invalidate its read set aborts instead — a vote cannot be
// retracted.
func TestVotedReadSetIsInviolable(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	// T1 reads a and votes (last fragment of a one-round MP transaction).
	e.Fragment(mpFrag(1, 0, true, readKey("a")))
	if r := lastResult(t, env); r.Aborted {
		t.Fatalf("T1 vote aborted: %+v", r)
	}
	// T2 tries to overwrite a while T1's vote is outstanding.
	e.Fragment(spFrag(2, writeKey("a", 2)))
	if r := lastReply(t, env); !r.Retryable {
		t.Fatalf("writer against voted reader = %+v, want Retryable", r)
	}
	// T1's commit decision lands cleanly.
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if !e.Quiescent() || env.get("a") != 1 {
		t.Fatalf("post-commit: quiescent=%v a=%d", e.Quiescent(), env.get("a"))
	}
}

// TestDirtyReaderDoomedByRollback: a transaction that read another's
// uncommitted write is doomed when that write rolls back, and fails its own
// validation even though the conflicting state is gone.
func TestDirtyReaderDoomedByRollback(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	// T1 writes a uncommitted.
	e.Fragment(mpFrag(1, 0, false, writeKey("a", 10)))
	// T2 dirty-reads a (allowed; settled at validation).
	e.Fragment(mpFrag(2, 0, false, readKey("a")))
	if out := lastResult(t, env).Output; out != 10 {
		t.Fatalf("dirty read = %v, want 10", out)
	}
	// T1 aborts: its write vanishes, dooming T2.
	e.Decision(&msg.Decision{Txn: 1, Commit: false})
	if env.get("a") != 1 {
		t.Fatalf("rollback failed: a = %d", env.get("a"))
	}
	// T2's vote must fail.
	e.Fragment(mpFrag(2, 1, true, readKey("a")))
	r := lastResult(t, env)
	if !r.Aborted || !r.Killed {
		t.Fatalf("doomed T2 vote = %+v, want Aborted+Killed", r)
	}
}

// TestValidateAfterDrain: draining the engine clears the committed-write log;
// a transaction beginning after the drain must still validate correctly
// against writes committed before it began.
func TestValidateAfterDrain(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	// A tracked commit populates committedWrites...
	e.Fragment(mpFrag(1, 0, true, writeKey("a", 2)))
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if !e.Quiescent() {
		t.Fatal("not quiescent after commit")
	}
	// ...which the drain clears.
	if len(e.committedWrites) != 0 {
		t.Fatalf("committedWrites not cleared at quiesce: %v", e.committedWrites)
	}
	// A new transaction starting after the drain reads a and must commit:
	// the cleared entries are all at or below its start sequence.
	e.Fragment(mpFrag(2, 0, true, readKey("a")))
	e.Decision(&msg.Decision{Txn: 2, Commit: true})
	if !e.Quiescent() {
		t.Fatal("post-drain reader did not commit")
	}
	if s := e.Stats(); s.ValidationAborts != 0 {
		t.Fatalf("ValidationAborts = %d, want 0", s.ValidationAborts)
	}
}

// TestDisableValidationAdmitsStaleRead: the negative-control configuration
// commits a transaction whose read set went stale — the unserializable
// behavior the oracle must catch.
func TestDisableValidationAdmitsStaleRead(t *testing.T) {
	env := newFakeEnv(t)
	e := New(env, Config{DisableValidation: true})
	env.set("a", 1)

	e.Fragment(mpFrag(1, 0, false, readKey("a")))
	e.Fragment(spFrag(2, writeKey("a", 2)))
	e.Fragment(mpFrag(1, 1, true, readKey("a")))
	r := lastResult(t, env)
	if r.Aborted || r.Killed {
		t.Fatalf("broken engine validated: %+v", r)
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if s := e.Stats(); s.ValidationAborts != 0 {
		t.Fatalf("ValidationAborts = %d, want 0", s.ValidationAborts)
	}
}

// TestValidationAllocsFree pins the validation path at zero allocations: it
// runs on every single-partition commit and every 2PC vote.
func TestValidationAllocsFree(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)
	env.set("b", 1)

	// A live transaction with a populated read set.
	e.Fragment(mpFrag(1, 0, false, func(v *storage.TxnView) (any, error) {
		v.Get("kv", "a")
		v.Get("kv", "b")
		return nil, nil
	}))
	tx := e.pending[1]
	if tx == nil || len(tx.readSet) != 2 {
		t.Fatalf("read set not tracked: %+v", tx)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if !e.validate(tx) {
			t.Fatal("validate failed")
		}
	}); avg != 0 {
		t.Fatalf("validate allocates %v per run, want 0", avg)
	}
}
