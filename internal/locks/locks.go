// Package locks implements the single-threaded lock manager of §4.3. Because
// each partition runs one thread, there is no latching: the manager is plain
// data manipulated between transaction steps, which is exactly the property
// the paper exploits to make locking "much lower overhead than traditional
// locking schemes".
//
// Locks are row-granularity shared/exclusive with FIFO wait queues and
// shared→exclusive upgrades. The manager exposes the waits-for graph so the
// engine can run cycle detection at block time and choose a victim (the paper
// prefers killing single-partition transactions, which waste less work).
package locks

import (
	"fmt"
	"slices"

	"specdb/internal/msg"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// compatible reports whether a lock in mode a coexists with one in mode b.
// The same S/X row applies to range keys, through the overlap predicate: two
// locks conflict iff their keys overlap and their modes are incompatible.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Key identifies a lockable unit: a single row, or — when IsRange is set — the
// half-open key range [Row, Hi). Range keys are how scans take next-key/gap
// coverage: an insert's point-X on any key inside the range conflicts with the
// scanner's range-S even though the scanner never touched that row.
type Key struct {
	Table string
	// Row is the point row, or the inclusive low bound of a range.
	Row string
	// Hi is the exclusive high bound of a range key; empty means unbounded.
	Hi string
	// IsRange marks the key as covering [Row, Hi) rather than the single Row.
	IsRange bool
}

func (k Key) String() string {
	if k.IsRange {
		return fmt.Sprintf("%s[%q,%q)", k.Table, k.Row, k.Hi)
	}
	return fmt.Sprintf("%s[%q]", k.Table, k.Row)
}

// overlaps reports whether two keys cover a common row (same table, and point
// equality, point-in-range containment, or range intersection).
func overlaps(a, b Key) bool {
	if a.Table != b.Table {
		return false
	}
	switch {
	case !a.IsRange && !b.IsRange:
		return a.Row == b.Row
	case a.IsRange && !b.IsRange:
		return b.Row >= a.Row && (a.Hi == "" || b.Row < a.Hi)
	case !a.IsRange && b.IsRange:
		return a.Row >= b.Row && (b.Hi == "" || a.Row < b.Hi)
	default:
		return (a.Hi == "" || b.Row < a.Hi) && (b.Hi == "" || a.Row < b.Hi)
	}
}

// compareKeys is the deterministic total order used wherever keys are sorted.
func compareKeys(a, b Key) int {
	if a.Table != b.Table {
		if a.Table < b.Table {
			return -1
		}
		return 1
	}
	if a.Row != b.Row {
		if a.Row < b.Row {
			return -1
		}
		return 1
	}
	if a.Hi != b.Hi {
		if a.Hi < b.Hi {
			return -1
		}
		return 1
	}
	if a.IsRange != b.IsRange {
		if !a.IsRange {
			return -1
		}
		return 1
	}
	return 0
}

// Grant reports a lock granted to a previously waiting transaction.
type Grant struct {
	Txn  msg.TxnID
	K    Key
	Mode Mode
}

// Stats counts lock manager activity for the cost model and the §5.6
// profiler-style breakdown.
type Stats struct {
	Acquires  uint64 // Acquire calls
	Immediate uint64 // granted without waiting
	Waits     uint64 // had to queue
	Upgrades  uint64 // S→X upgrades (immediate or queued)
	Releases  uint64 // locks released
}

// Add returns the field-wise sum of two stat sets; the hosting partition
// uses it to carry lock statistics across engine swaps.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Acquires:  s.Acquires + o.Acquires,
		Immediate: s.Immediate + o.Immediate,
		Waits:     s.Waits + o.Waits,
		Upgrades:  s.Upgrades + o.Upgrades,
		Releases:  s.Releases + o.Releases,
	}
}

type waiter struct {
	txn     msg.TxnID
	mode    Mode
	upgrade bool
}

type entry struct {
	holders map[msg.TxnID]Mode
	queue   []waiter
}

// Manager is one partition's lock table.
type Manager struct {
	table map[Key]*entry
	// held tracks every key held per transaction, for release.
	held map[msg.TxnID]map[Key]Mode
	// waitingOn maps a blocked transaction to the key it is queued for.
	waitingOn map[msg.TxnID]Key
	stats     Stats

	// freeEntries and freeHeld recycle emptied lock entries and per-txn held
	// maps. Every transaction acquires and fully releases a handful of row
	// locks, and without recycling each acquire/release cycle re-allocates
	// the entry, its holders map and the held map — the lock manager was a
	// top allocator in whole-run profiles, the opposite of the paper's
	// "much lower overhead than traditional locking" claim (§4.3).
	freeEntries []*entry
	freeHeld    []map[Key]Mode
	// scratch reuses Release's deterministic key-ordering buffer.
	scratch []Key

	// rangeKeys lists the range keys currently in the table. While it is
	// empty — every run without scans — the point path takes no overlap
	// checks and behaves byte-identically to a range-free manager.
	rangeKeys []Key
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{
		table:     make(map[Key]*entry),
		held:      make(map[msg.TxnID]map[Key]Mode),
		waitingOn: make(map[msg.TxnID]Key),
	}
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// Active reports whether any transaction holds or awaits any lock.
func (m *Manager) Active() bool { return len(m.table) > 0 }

// HeldCount returns how many keys txn currently holds.
func (m *Manager) HeldCount(txn msg.TxnID) int { return len(m.held[txn]) }

// Holds reports whether txn holds k at least in the given mode.
func (m *Manager) Holds(txn msg.TxnID, k Key, mode Mode) bool {
	got, ok := m.held[txn][k]
	return ok && (got == Exclusive || mode == Shared)
}

// Waiting reports whether txn is queued for some lock.
func (m *Manager) Waiting(txn msg.TxnID) bool {
	_, ok := m.waitingOn[txn]
	return ok
}

// Acquire requests k in the given mode for txn. It returns true if the lock
// was granted immediately; false means txn is now queued and must suspend
// until a Grant for it is returned by Release or Remove.
func (m *Manager) Acquire(txn msg.TxnID, k Key, mode Mode) bool {
	m.stats.Acquires++
	if m.Waiting(txn) {
		panic("locks: Acquire while already waiting")
	}
	e := m.table[k]
	if e == nil {
		if n := len(m.freeEntries); n > 0 {
			e = m.freeEntries[n-1]
			m.freeEntries = m.freeEntries[:n-1]
		} else {
			e = &entry{holders: make(map[msg.TxnID]Mode)}
		}
		m.table[k] = e
		if k.IsRange {
			m.rangeKeys = append(m.rangeKeys, k)
		}
	}
	if cur, holds := e.holders[txn]; holds {
		if cur == Exclusive || mode == Shared {
			m.stats.Immediate++
			return true // reentrant, already sufficient
		}
		// Upgrade request.
		m.stats.Upgrades++
		if len(e.holders) == 1 && !m.conflictsElsewhere(txn, k, Exclusive) {
			e.holders[txn] = Exclusive
			m.held[txn][k] = Exclusive
			m.stats.Immediate++
			return true
		}
		// Queue the upgrade ahead of ordinary waiters.
		e.queue = append([]waiter{{txn: txn, mode: Exclusive, upgrade: true}}, e.queue...)
		m.waitingOn[txn] = k
		m.stats.Waits++
		return false
	}
	if len(e.queue) == 0 && m.compatibleWithHolders(e, mode) && !m.conflictsElsewhere(txn, k, mode) {
		m.grant(e, txn, k, mode)
		m.stats.Immediate++
		return true
	}
	e.queue = append(e.queue, waiter{txn: txn, mode: mode})
	m.waitingOn[txn] = k
	m.stats.Waits++
	return false
}

func (m *Manager) compatibleWithHolders(e *entry, mode Mode) bool {
	for _, hm := range e.holders {
		if !compatible(mode, hm) {
			return false
		}
	}
	return true
}

// conflictsElsewhere reports whether a request on k conflicts with a holder of
// a *different*, overlapping key: a point request landing inside a held range,
// or a range request overlapping held points and ranges. With no range keys in
// the table there is nothing to overlap (point keys only meet at equality,
// which is the same entry) and the check is one length comparison — the point
// path stays exactly as fast and as ordered as before ranges existed. Only
// holder existence matters, so iterating Go's unordered maps is deterministic.
func (m *Manager) conflictsElsewhere(txn msg.TxnID, k Key, mode Mode) bool {
	if len(m.rangeKeys) == 0 {
		return false
	}
	for _, rk := range m.rangeKeys {
		if rk == k || !overlaps(k, rk) {
			continue
		}
		for h, hm := range m.table[rk].holders {
			if h != txn && !compatible(mode, hm) {
				return true
			}
		}
	}
	if !k.IsRange {
		return false
	}
	for pk, e := range m.table {
		if pk.IsRange || pk == k || !overlaps(k, pk) {
			continue
		}
		for h, hm := range e.holders {
			if h != txn && !compatible(mode, hm) {
				return true
			}
		}
	}
	return false
}

func (m *Manager) grant(e *entry, txn msg.TxnID, k Key, mode Mode) {
	e.holders[txn] = mode
	hm := m.held[txn]
	if hm == nil {
		if n := len(m.freeHeld); n > 0 {
			hm = m.freeHeld[n-1]
			m.freeHeld = m.freeHeld[:n-1]
		} else {
			hm = make(map[Key]Mode)
		}
		m.held[txn] = hm
	}
	hm[k] = mode
}

// Release releases every lock held by txn and removes any queued request it
// has, returning the locks newly granted to waiting transactions. Strict two
// phase locking releases only at commit/abort, so there is no single-lock
// release.
func (m *Manager) Release(txn msg.TxnID) []Grant {
	var grants []Grant
	ranged := len(m.rangeKeys) > 0
	// Cancel a pending wait first.
	if k, ok := m.waitingOn[txn]; ok {
		e := m.table[k]
		for i, w := range e.queue {
			if w.txn == txn {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		delete(m.waitingOn, txn)
		grants = m.drainQueue(e, k, grants)
		m.maybeFree(k, e)
	}
	// Sort keys: deterministic grant order keeps whole-system runs
	// reproducible (map iteration order is randomized).
	keys := m.scratch[:0]
	for k := range m.held[txn] {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compareKeys)
	for _, k := range keys {
		e := m.table[k]
		delete(e.holders, txn)
		m.stats.Releases++
		grants = m.drainQueue(e, k, grants)
		m.maybeFree(k, e)
	}
	m.scratch = keys
	if hm := m.held[txn]; hm != nil {
		delete(m.held, txn)
		clear(hm)
		m.freeHeld = append(m.freeHeld, hm)
	}
	if ranged {
		// Releasing range coverage can unblock waiters queued on *other*
		// entries (points inside the range, overlapping ranges); the per-key
		// drains above only saw their own queues. Run a global pass to
		// fixpoint, in sorted key order for determinism.
		grants = m.drainAll(grants)
	}
	return grants
}

// drainAll repeatedly sweeps every queued entry in sorted key order, granting
// whatever has become grantable under the overlap rule, until a full pass
// grants nothing. Only invoked when range keys are (or were just) in play.
func (m *Manager) drainAll(grants []Grant) []Grant {
	for {
		var pending []Key
		for k, e := range m.table {
			if len(e.queue) > 0 {
				pending = append(pending, k)
			}
		}
		if len(pending) == 0 {
			return grants
		}
		slices.SortFunc(pending, compareKeys)
		progress := false
		for _, k := range pending {
			e := m.table[k]
			if e == nil {
				continue
			}
			before := len(grants)
			grants = m.drainQueue(e, k, grants)
			m.maybeFree(k, e)
			if len(grants) > before {
				progress = true
			}
		}
		if !progress {
			return grants
		}
	}
}

// drainQueue grants as many queued requests as now fit, in FIFO order.
func (m *Manager) drainQueue(e *entry, k Key, grants []Grant) []Grant {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if w.upgrade {
			// Grantable only when w.txn is the sole holder.
			if len(e.holders) == 1 && !m.conflictsElsewhere(w.txn, k, Exclusive) {
				if _, ok := e.holders[w.txn]; ok {
					e.holders[w.txn] = Exclusive
					m.held[w.txn][k] = Exclusive
					delete(m.waitingOn, w.txn)
					grants = append(grants, Grant{Txn: w.txn, K: k, Mode: Exclusive})
					e.queue = e.queue[1:]
					continue
				}
			}
			return grants
		}
		if !m.compatibleWithHolders(e, w.mode) || m.conflictsElsewhere(w.txn, k, w.mode) {
			return grants
		}
		m.grant(e, w.txn, k, w.mode)
		delete(m.waitingOn, w.txn)
		grants = append(grants, Grant{Txn: w.txn, K: k, Mode: w.mode})
		e.queue = e.queue[1:]
	}
	return grants
}

func (m *Manager) maybeFree(k Key, e *entry) {
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.table, k)
		if k.IsRange {
			for i, rk := range m.rangeKeys {
				if rk == k {
					m.rangeKeys = append(m.rangeKeys[:i], m.rangeKeys[i+1:]...)
					break
				}
			}
		}
		// holders is already empty and the queue drained, so the entry —
		// map and queue capacity included — is ready for the next acquire.
		m.freeEntries = append(m.freeEntries, e)
	}
}

// WaitsFor returns the transactions that txn is directly waiting on: holders
// of the contested lock with an incompatible mode, plus incompatible requests
// queued ahead of it.
func (m *Manager) WaitsFor(txn msg.TxnID) []msg.TxnID {
	k, ok := m.waitingOn[txn]
	if !ok {
		return nil
	}
	e := m.table[k]
	var pos int = -1
	var mode Mode
	for i, w := range e.queue {
		if w.txn == txn {
			pos, mode = i, w.mode
			break
		}
	}
	if pos < 0 {
		return nil
	}
	var out []msg.TxnID
	for h, hm := range e.holders {
		if h == txn {
			continue // upgrade: we hold S ourselves
		}
		if !compatible(mode, hm) || mode == Exclusive {
			out = append(out, h)
		}
	}
	// Cross-entry edges: holders of overlapping range keys (and, for a range
	// request, overlapping point keys) block this request just like holders
	// of the contested entry do.
	if len(m.rangeKeys) > 0 {
		for _, rk := range m.rangeKeys {
			if rk == k || !overlaps(k, rk) {
				continue
			}
			for h, hm := range m.table[rk].holders {
				if h != txn && !compatible(mode, hm) {
					out = append(out, h)
				}
			}
		}
		if k.IsRange {
			for pk, pe := range m.table {
				if pk.IsRange || pk == k || !overlaps(k, pk) {
					continue
				}
				for h, hm := range pe.holders {
					if h != txn && !compatible(mode, hm) {
						out = append(out, h)
					}
				}
			}
		}
	}
	// Deterministic edge order (holders are maps).
	slices.Sort(out)
	out = slices.Compact(out)
	for i := 0; i < pos; i++ {
		w := e.queue[i]
		if w.txn != txn && (!compatible(mode, w.mode) || mode == Exclusive) {
			out = append(out, w.txn)
		}
	}
	return out
}

// FindCycle searches the waits-for graph from start and returns the
// transactions forming a cycle that includes blocked transactions, or nil.
// It is invoked each time a transaction blocks, per §4.3 ("cycle detection to
// handle local deadlocks").
func (m *Manager) FindCycle(start msg.TxnID) []msg.TxnID {
	// Iterative DFS with path tracking. The graph is tiny (bounded by
	// concurrently active transactions at one partition).
	onPath := map[msg.TxnID]bool{}
	var path []msg.TxnID
	var dfs func(t msg.TxnID) []msg.TxnID
	visited := map[msg.TxnID]bool{}
	dfs = func(t msg.TxnID) []msg.TxnID {
		if onPath[t] {
			// Extract the cycle suffix.
			for i, p := range path {
				if p == t {
					return append([]msg.TxnID(nil), path[i:]...)
				}
			}
			return append([]msg.TxnID(nil), path...)
		}
		if visited[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		for _, next := range m.WaitsFor(t) {
			if cyc := dfs(next); cyc != nil {
				return cyc
			}
		}
		path = path[:len(path)-1]
		onPath[t] = false
		return nil
	}
	return dfs(start)
}
