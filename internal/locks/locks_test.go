package locks

import (
	"testing"

	"specdb/internal/msg"
)

var (
	t1 = msg.TxnID(1)
	t2 = msg.TxnID(2)
	t3 = msg.TxnID(3)
	t4 = msg.TxnID(4)
	ka = Key{Table: "t", Row: "a"}
	kb = Key{Table: "t", Row: "b"}
)

func TestSharedCompatibility(t *testing.T) {
	m := NewManager()
	if !m.Acquire(t1, ka, Shared) {
		t.Fatal("first S not granted")
	}
	if !m.Acquire(t2, ka, Shared) {
		t.Fatal("second S not granted")
	}
	if m.Acquire(t3, ka, Exclusive) {
		t.Fatal("X granted alongside S holders")
	}
	if !m.Waiting(t3) {
		t.Fatal("t3 not waiting")
	}
}

func TestExclusiveBlocksAll(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	if m.Acquire(t2, ka, Shared) {
		t.Fatal("S granted under X")
	}
	if m.Acquire(t3, ka, Exclusive) {
		t.Fatal("X granted under X")
	}
}

func TestReentrantAcquire(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	if !m.Acquire(t1, ka, Shared) {
		t.Fatal("S under own X not granted")
	}
	if !m.Acquire(t1, ka, Exclusive) {
		t.Fatal("re-X not granted")
	}
	if m.HeldCount(t1) != 1 {
		t.Fatalf("HeldCount = %d", m.HeldCount(t1))
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Shared)
	if !m.Acquire(t1, ka, Exclusive) {
		t.Fatal("sole-holder upgrade not granted")
	}
	if !m.Holds(t1, ka, Exclusive) {
		t.Fatal("upgrade not recorded")
	}
	if m.Acquire(t2, ka, Shared) {
		t.Fatal("S granted under upgraded X")
	}
}

func TestUpgradeWaitsForOtherSharers(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Shared)
	m.Acquire(t2, ka, Shared)
	if m.Acquire(t1, ka, Exclusive) {
		t.Fatal("upgrade granted while another sharer exists")
	}
	grants := m.Release(t2)
	if len(grants) != 1 || grants[0].Txn != t1 || grants[0].Mode != Exclusive {
		t.Fatalf("grants = %v", grants)
	}
	if !m.Holds(t1, ka, Exclusive) {
		t.Fatal("upgrade not applied after release")
	}
}

func TestUpgradeJumpsQueue(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Shared)
	m.Acquire(t2, ka, Shared)
	m.Acquire(t3, ka, Exclusive) // queued
	m.Acquire(t1, ka, Exclusive) // upgrade, must jump ahead of t3
	grants := m.Release(t2)
	if len(grants) != 1 || grants[0].Txn != t1 {
		t.Fatalf("grants = %v; upgrade should win over queued X", grants)
	}
}

func TestFIFOWakeups(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, ka, Exclusive)
	m.Acquire(t3, ka, Shared)
	grants := m.Release(t1)
	// FIFO: t2 (X) first, t3 must keep waiting behind it.
	if len(grants) != 1 || grants[0].Txn != t2 {
		t.Fatalf("grants = %v", grants)
	}
	grants = m.Release(t2)
	if len(grants) != 1 || grants[0].Txn != t3 || grants[0].Mode != Shared {
		t.Fatalf("grants = %v", grants)
	}
}

func TestBatchSharedWakeup(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, ka, Shared)
	m.Acquire(t3, ka, Shared)
	grants := m.Release(t1)
	if len(grants) != 2 {
		t.Fatalf("grants = %v; both shared waiters should wake", grants)
	}
}

func TestReleaseCancelsOwnWait(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, ka, Exclusive) // t2 queued
	m.Acquire(t3, ka, Shared)    // t3 queued behind
	// t2 is aborted (deadlock victim elsewhere): its wait must vanish and
	// t3 must still be blocked by t1's X.
	grants := m.Release(t2)
	if len(grants) != 0 {
		t.Fatalf("grants = %v", grants)
	}
	if m.Waiting(t2) {
		t.Fatal("t2 still waiting")
	}
	grants = m.Release(t1)
	if len(grants) != 1 || grants[0].Txn != t3 {
		t.Fatalf("grants = %v", grants)
	}
}

func TestVictimWaitRemovalUnblocksQueue(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Shared)
	m.Acquire(t2, ka, Exclusive) // queued on S holder
	m.Acquire(t3, ka, Shared)    // queued behind X
	grants := m.Release(t2)      // victim cancels: t3's S is compatible with t1's S
	if len(grants) != 1 || grants[0].Txn != t3 || grants[0].Mode != Shared {
		t.Fatalf("grants = %v", grants)
	}
}

func TestWaitsForEdges(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, ka, Exclusive)
	edges := m.WaitsFor(t2)
	if len(edges) != 1 || edges[0] != t1 {
		t.Fatalf("WaitsFor(t2) = %v", edges)
	}
	if m.WaitsFor(t1) != nil {
		t.Fatal("holder has waits-for edges")
	}
	// Queued-ahead incompatible waiter also creates an edge.
	m.Acquire(t3, ka, Exclusive)
	edges = m.WaitsFor(t3)
	if len(edges) != 2 {
		t.Fatalf("WaitsFor(t3) = %v", edges)
	}
}

func TestFindSimpleCycle(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, kb, Exclusive)
	m.Acquire(t1, kb, Exclusive) // t1 waits on t2
	if c := m.FindCycle(t1); c != nil {
		t.Fatalf("premature cycle: %v", c)
	}
	// t2 cannot call Acquire while not yet waiting... it requests ka:
	m.Acquire(t2, ka, Exclusive) // t2 waits on t1 → cycle
	c := m.FindCycle(t2)
	if len(c) != 2 {
		t.Fatalf("cycle = %v", c)
	}
	members := map[msg.TxnID]bool{c[0]: true, c[1]: true}
	if !members[t1] || !members[t2] {
		t.Fatalf("cycle = %v", c)
	}
}

func TestFindUpgradeDeadlock(t *testing.T) {
	// Classic: two sharers both request upgrades.
	m := NewManager()
	m.Acquire(t1, ka, Shared)
	m.Acquire(t2, ka, Shared)
	m.Acquire(t1, ka, Exclusive) // waits for t2
	m.Acquire(t2, ka, Exclusive) // waits for t1 → cycle
	c := m.FindCycle(t2)
	if len(c) != 2 {
		t.Fatalf("upgrade deadlock not found: %v", c)
	}
}

func TestFindThreeCycle(t *testing.T) {
	m := NewManager()
	kc := Key{Table: "t", Row: "c"}
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, kb, Exclusive)
	m.Acquire(t3, kc, Exclusive)
	m.Acquire(t1, kb, Exclusive)
	m.Acquire(t2, kc, Exclusive)
	m.Acquire(t3, ka, Exclusive)
	c := m.FindCycle(t3)
	if len(c) != 3 {
		t.Fatalf("cycle = %v", c)
	}
}

func TestNoCycleOnChain(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, ka, Exclusive)
	m.Acquire(t3, ka, Exclusive)
	if c := m.FindCycle(t3); c != nil {
		t.Fatalf("found cycle in a chain: %v", c)
	}
}

func TestVictimBreaksDeadlock(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, kb, Exclusive)
	m.Acquire(t1, kb, Exclusive)
	m.Acquire(t2, ka, Exclusive)
	if c := m.FindCycle(t1); c == nil {
		t.Fatal("no cycle found")
	}
	grants := m.Release(t2) // kill t2
	// t1 gets kb.
	if len(grants) != 1 || grants[0].Txn != t1 || grants[0].K != kb {
		t.Fatalf("grants = %v", grants)
	}
	if m.FindCycle(t1) != nil {
		t.Fatal("cycle persists after victim release")
	}
}

func TestActiveAndFree(t *testing.T) {
	m := NewManager()
	if m.Active() {
		t.Fatal("fresh manager active")
	}
	m.Acquire(t1, ka, Shared)
	m.Acquire(t1, kb, Exclusive)
	if !m.Active() {
		t.Fatal("manager with holders not active")
	}
	m.Release(t1)
	if m.Active() {
		t.Fatal("entries leaked after release")
	}
}

func TestStatsCounting(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Shared)    // immediate
	m.Acquire(t1, ka, Exclusive) // upgrade immediate
	m.Acquire(t2, ka, Shared)    // wait
	m.Release(t1)
	s := m.Stats()
	if s.Acquires != 3 || s.Immediate != 2 || s.Waits != 1 || s.Upgrades != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Releases != 1 {
		t.Fatalf("releases = %d", s.Releases)
	}
}

func TestAcquireWhileWaitingPanics(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Exclusive)
	m.Acquire(t2, ka, Exclusive)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Acquire(t2, kb, Shared)
}

func TestManyKeysIndependent(t *testing.T) {
	m := NewManager()
	for i := 0; i < 100; i++ {
		k := Key{Table: "t", Row: string(rune('a' + i))}
		if !m.Acquire(msg.TxnID(uint64(i+1)), k, Exclusive) {
			t.Fatalf("independent key %d blocked", i)
		}
	}
	for i := 0; i < 100; i++ {
		m.Release(msg.TxnID(uint64(i + 1)))
	}
	if m.Active() {
		t.Fatal("lock table not empty")
	}
}

func TestHoldsModeSemantics(t *testing.T) {
	m := NewManager()
	m.Acquire(t1, ka, Shared)
	if !m.Holds(t1, ka, Shared) {
		t.Fatal("S not held")
	}
	if m.Holds(t1, ka, Exclusive) {
		t.Fatal("X reported for S holder")
	}
	if m.Holds(t2, ka, Shared) {
		t.Fatal("non-holder reported holding")
	}
}
