package txn

import (
	"testing"

	"specdb/internal/msg"
	"specdb/internal/storage"
)

type fakeProc struct{ name string }

func (f fakeProc) Name() string { return f.name }
func (f fakeProc) Plan(args any, cat *Catalog) Plan {
	return Plan{Parts: []msg.PartitionID{0}, Rounds: 1}
}
func (f fakeProc) Continue(args any, round int, prior []msg.FragmentResult, cat *Catalog) map[msg.PartitionID]any {
	return nil
}
func (f fakeProc) Run(view *storage.TxnView, w any) (any, error) { return nil, nil }
func (f fakeProc) Output(args any, final []msg.FragmentResult) any {
	return nil
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeProc{name: "a"})
	r.Register(fakeProc{name: "b"})
	if r.Get("a").Name() != "a" {
		t.Fatal("lookup failed")
	}
	names := r.Names()
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register(fakeProc{name: "a"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Register(fakeProc{name: "a"})
}

func TestRegistryUnknownPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Get("missing")
}

func TestPlanSinglePartition(t *testing.T) {
	p := Plan{Parts: []msg.PartitionID{2}}
	req := &msg.Request{Parts: p.Parts}
	if !req.SinglePartition() {
		t.Fatal("one partition must be single-partition")
	}
	req.Parts = []msg.PartitionID{0, 1}
	if req.SinglePartition() {
		t.Fatal("two partitions is multi-partition")
	}
}

func TestTxnIDComposition(t *testing.T) {
	id := msg.MakeTxnID(7, 42)
	if id.Issuer() != 7 {
		t.Fatalf("issuer = %d", id.Issuer())
	}
	id2 := msg.MakeTxnID(7, 43)
	if id == id2 {
		t.Fatal("ids collide")
	}
	if msg.MakeTxnID(8, 42) == id {
		t.Fatal("issuer not encoded")
	}
}

func TestErrUserAbortIdentity(t *testing.T) {
	if ErrUserAbort.Error() == "" {
		t.Fatal("empty error string")
	}
}
