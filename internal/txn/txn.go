// Package txn defines the stored procedure framework. H-Store only executes
// pre-declared stored procedures (§2.1): each invocation is one transaction,
// divided into fragments — units of work that each run at exactly one
// partition (§3.1). A procedure supplies the fragment plan, the
// coordinator-side continuation logic between rounds, and the partition-side
// fragment body.
package txn

import (
	"errors"
	"fmt"

	"specdb/internal/msg"
	"specdb/internal/storage"
)

// ErrUserAbort is returned by a fragment body to abort the transaction
// deliberately. Any other non-nil error also aborts, but ErrUserAbort marks
// the abort as an application outcome rather than a failure.
var ErrUserAbort = errors.New("txn: user abort")

// Catalog describes how data is distributed, mirroring the catalog a client
// library downloads on connect (§3.1).
type Catalog struct {
	// NumPartitions is the number of logical data partitions.
	NumPartitions int
	// Meta carries workload-specific routing state (e.g. warehouses per
	// partition for TPC-C). Procedures downcast as needed.
	Meta any
}

// Plan is the initial fragment layout for one transaction.
type Plan struct {
	// Parts lists the partitions the transaction touches, in ascending
	// order; a single entry means a single-partition transaction.
	Parts []msg.PartitionID
	// Work holds the round-0 fragment input per partition.
	Work map[msg.PartitionID]any
	// Rounds is the total number of communication rounds (1 for "simple
	// multi-partition transactions", §4.2.2).
	Rounds int
	// CanAbort marks transactions that may issue a user abort and hence
	// need an undo buffer even on the no-concurrency fast path (§3.2).
	CanAbort bool
	// ReadOnly declares that no fragment of the transaction writes. The
	// client propagates it so the MVCC engine can serve the transaction
	// from a consistent snapshot (never blocking, never aborting).
	ReadOnly bool
	// Scans declares the key ranges each partition's fragments will scan,
	// in canonical (table, lo, hi) order per partition. The client copies a
	// partition's ranges onto its fragments so routing and lock order stay
	// canonical; procedures that scan ad hoc may leave this nil.
	Scans map[msg.PartitionID][]msg.KeyRange
}

// Procedure is a stored procedure. Implementations must be deterministic:
// replicas re-execute fragment bodies from the same inputs (§4.3), and
// speculative re-execution assumes identical results given identical state.
type Procedure interface {
	// Name returns the procedure's registry key.
	Name() string
	// Plan splits an invocation into partitions and round-0 work.
	Plan(args any, cat *Catalog) Plan
	// Continue computes the work for round (>=1) from the results of all
	// previous rounds. Only multi-round procedures are ever asked.
	Continue(args any, round int, prior []msg.FragmentResult, cat *Catalog) map[msg.PartitionID]any
	// Run executes one fragment against partition-local data. A non-nil
	// error aborts the transaction.
	Run(view *storage.TxnView, work any) (any, error)
	// Output combines the final round's fragment results into the
	// client-visible transaction output.
	Output(args any, final []msg.FragmentResult) any
}

// Invocation is a client's intent to run a procedure, produced by workload
// generators.
type Invocation struct {
	Proc string
	Args any
	// AbortAt injects a deterministic local abort at the given partition
	// (the §5.3 abort microbenchmark); NoAbort means none.
	AbortAt msg.PartitionID
}

// NoAbort disables abort injection.
const NoAbort msg.PartitionID = -1

// Registry maps procedure names to implementations.
type Registry struct {
	procs map[string]Procedure
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{procs: make(map[string]Procedure)}
}

// Register adds a procedure, panicking on duplicates (static configuration).
func (r *Registry) Register(p Procedure) {
	if _, dup := r.procs[p.Name()]; dup {
		panic(fmt.Sprintf("txn: duplicate procedure %q", p.Name()))
	}
	r.procs[p.Name()] = p
}

// Get returns the named procedure, panicking if absent: an unknown procedure
// is a configuration error, not a runtime condition.
func (r *Registry) Get(name string) Procedure {
	p, ok := r.procs[name]
	if !ok {
		panic(fmt.Sprintf("txn: unknown procedure %q", name))
	}
	return p
}

// Names returns the registered procedure names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.procs))
	for n := range r.procs {
		out = append(out, n)
	}
	return out
}
