// Package undo implements the in-memory undo buffers of §3.2: a log of
// before-images that is discarded on commit and replayed in reverse on abort.
// Transactions that cannot abort are executed without a buffer at all — that
// is the "very low overhead" fast path the paper measures as tsp vs tspS.
package undo

// Restorer reinstates one captured before-image. Implementations live next
// to the state they restore (internal/storage tables implement it for row
// images).
type Restorer interface {
	// Restore puts back the captured state: the previous value when the key
	// existed, or removal when it did not.
	Restore(key string, prev any, existed bool)
}

// Entry is one undoable effect, held by value: recording appends to the
// buffer's slice instead of allocating a per-entry object. Undo recording
// sits on the per-write hot path of every transaction that can abort, so
// this is a measured allocs/txn matter, not a style one.
type Entry struct {
	Target  Restorer
	Key     string
	Prev    any
	Existed bool
}

// Buffer accumulates entries for one transaction. Buffers are reusable:
// Rollback and Discard clear the log but keep its capacity, so a pooled
// buffer's steady state records without growing.
type Buffer struct {
	entries []Entry
}

// New returns an empty buffer.
func New() *Buffer { return &Buffer{} }

// Record appends an entry. Entries must be recorded before the corresponding
// mutation's before-state is lost.
func (b *Buffer) Record(e Entry) {
	b.entries = append(b.entries, e)
}

// Len returns the number of recorded entries.
func (b *Buffer) Len() int { return len(b.entries) }

// Rollback undoes all entries in reverse order and clears the buffer.
func (b *Buffer) Rollback() {
	for i := len(b.entries) - 1; i >= 0; i-- {
		e := &b.entries[i]
		e.Target.Restore(e.Key, e.Prev, e.Existed)
	}
	b.reset()
}

// Discard drops all entries without applying them (commit path).
func (b *Buffer) Discard() {
	b.reset()
}

// reset empties the log, zeroing the slots so retained capacity does not pin
// old row values against the garbage collector.
func (b *Buffer) reset() {
	clear(b.entries)
	b.entries = b.entries[:0]
}

// Func adapts a closure to Restorer, for callers with one-off restoration
// logic; the captured entry fields are ignored.
type Func func()

// Restore calls the closure.
func (f Func) Restore(string, any, bool) { f() }
