// Package undo implements the in-memory undo buffers of §3.2: a log of
// before-images that is discarded on commit and replayed in reverse on abort.
// Transactions that cannot abort are executed without a buffer at all — that
// is the "very low overhead" fast path the paper measures as tsp vs tspS.
package undo

// Entry is one undoable effect. Implementations live next to the state they
// restore (e.g. internal/storage row images).
type Entry interface {
	// Undo restores the state captured by the entry.
	Undo()
}

// Buffer accumulates entries for one transaction.
type Buffer struct {
	entries []Entry
}

// New returns an empty buffer.
func New() *Buffer { return &Buffer{} }

// Record appends an entry. Entries must be recorded before the corresponding
// mutation's before-state is lost.
func (b *Buffer) Record(e Entry) {
	b.entries = append(b.entries, e)
}

// Len returns the number of recorded entries.
func (b *Buffer) Len() int { return len(b.entries) }

// Rollback undoes all entries in reverse order and clears the buffer.
func (b *Buffer) Rollback() {
	for i := len(b.entries) - 1; i >= 0; i-- {
		b.entries[i].Undo()
	}
	b.entries = b.entries[:0]
}

// Discard drops all entries without applying them (commit path).
func (b *Buffer) Discard() {
	b.entries = b.entries[:0]
}

// Func adapts a closure to Entry, for callers with one-off restoration logic.
type Func func()

// Undo calls the closure.
func (f Func) Undo() { f() }
