package undo

import "testing"

type probe struct {
	log *[]int
	id  int
}

func (p probe) Restore(string, any, bool) { *p.log = append(*p.log, p.id) }

func TestRollbackReverseOrder(t *testing.T) {
	var log []int
	b := New()
	for i := 1; i <= 4; i++ {
		b.Record(Entry{Target: probe{&log, i}})
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Rollback()
	want := []int{4, 3, 2, 1}
	for i, w := range want {
		if log[i] != w {
			t.Fatalf("rollback order = %v", log)
		}
	}
	if b.Len() != 0 {
		t.Fatal("buffer not cleared")
	}
}

func TestRollbackIdempotentAfterClear(t *testing.T) {
	var log []int
	b := New()
	b.Record(Entry{Target: probe{&log, 1}})
	b.Rollback()
	b.Rollback()
	if len(log) != 1 {
		t.Fatalf("entries re-applied: %v", log)
	}
}

func TestDiscardDropsWithoutApplying(t *testing.T) {
	var log []int
	b := New()
	b.Record(Entry{Target: probe{&log, 1}})
	b.Discard()
	if len(log) != 0 || b.Len() != 0 {
		t.Fatalf("discard applied entries: %v", log)
	}
	// Buffer is reusable after Discard.
	b.Record(Entry{Target: probe{&log, 2}})
	b.Rollback()
	if len(log) != 1 || log[0] != 2 {
		t.Fatalf("reuse failed: %v", log)
	}
}

func TestFuncEntry(t *testing.T) {
	n := 0
	b := New()
	b.Record(Entry{Target: Func(func() { n = 7 })})
	b.Rollback()
	if n != 7 {
		t.Fatal("Func entry not applied")
	}
}

// TestResetReleasesReferences pins the buffer-reuse contract: clearing the
// log must zero the retained slots (so pooled buffers do not pin old row
// values) while keeping capacity (so steady-state recording does not grow).
func TestResetReleasesReferences(t *testing.T) {
	b := New()
	for i := 0; i < 8; i++ {
		b.Record(Entry{Target: Func(func() {}), Key: "k", Prev: i})
	}
	b.Discard()
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Discard", b.Len())
	}
	for i, e := range b.entries[:cap(b.entries)] {
		if e != (Entry{}) {
			t.Fatalf("slot %d not zeroed: %+v", i, e)
		}
	}
}
