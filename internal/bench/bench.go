// Package bench regenerates every table and figure of the paper's
// evaluation (§5–§6). Each experiment produces named series that
// cmd/ccbench renders as text, CSV or JSON and EXPERIMENTS.md records
// against the paper's curves. Absolute numbers come from the simulator's
// cost model; the comparisons (who wins, by what factor, where the
// crossovers fall) are the reproduction targets.
//
// Experiments are built on the public specdb.Sweep layer: each figure is a
// grid of option sets (scheme × x-axis value) rather than a hand-rolled
// loop, so the bench harness exercises the same experiment machinery the
// library exposes to users.
package bench

import (
	"fmt"
	"sort"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/sim"
	"specdb/internal/tpcc"
	"specdb/internal/workload"
)

// Opts trades precision for runtime.
type Opts struct {
	Warmup  sim.Time
	Measure sim.Time
	// Coarse reduces the number of x-axis points.
	Coarse bool
	Seed   int64
	// Shards >= 1 runs every microbenchmark-family cell on the sharded
	// parallel runtime (specdb.WithParallelism) at that width; zero keeps
	// the plain single-threaded scheduler. Width 1 is the sharded runtime's
	// single-shard mode — deterministically equivalent to every other
	// width, but with a different (also deterministic) event tie-break
	// order than the plain scheduler, so baselines recorded on one path
	// are only tolerance-compatible with the other. TPC-C cells ignore the
	// knob: tpcc.Mix keeps state across clients and is restricted to the
	// plain path.
	Shards int
	// Tally, when non-nil, accumulates every cell's events and completed
	// transactions as the experiment runs — the simulator-side half of the
	// host perf measurements (see MeasurePerf).
	Tally *Tally
}

// DefaultOpts is the full-fidelity configuration used for EXPERIMENTS.md.
func DefaultOpts() Opts {
	return Opts{Warmup: 50 * sim.Millisecond, Measure: 400 * sim.Millisecond, Seed: 42}
}

// QuickOpts is used by the Go benchmarks for fast regeneration.
func QuickOpts() Opts {
	return Opts{Warmup: 20 * sim.Millisecond, Measure: 100 * sim.Millisecond, Coarse: true, Seed: 42}
}

// Point is one measurement: the series' Y value at X, plus the cell's
// completion-latency percentiles in microseconds (zero when the experiment
// has no simulated cell behind the point, e.g. model curves). Cells of the
// recovery experiments also carry the durability counters: recovery latency,
// log bytes replayed, and transactions re-executed (zero elsewhere), and
// cells of the elasticity experiment the migration counters: total dip and
// rows moved (zero when no migration fired).
type Point struct {
	X, Y          float64
	P50, P95, P99 float64
	RecoveryMs    float64
	LogBytes      uint64
	ReplayTxns    uint64
	DipMs         float64
	RowsMoved     uint64
	// Shards is the runtime width behind the cell (1 for the plain
	// scheduler) and Barriers the sharded runtime's window count (zero on
	// the plain path). Zero Shards marks model-curve points with no
	// simulated cell behind them.
	Shards   int
	Barriers uint64
}

// pointFor builds a measured point from a sweep cell: throughput as Y and
// the window latency percentiles alongside.
func pointFor(x float64, r specdb.Result) Point {
	p := Point{
		X:      x,
		Y:      r.Throughput,
		P50:    r.P50.Micros(),
		P95:    r.P95.Micros(),
		P99:    r.P99.Micros(),
		DipMs:  r.MigrationDip.Micros() / 1000,
		Shards: 1,
	}
	for _, m := range r.Migrations {
		p.RowsMoved += m.RowsMoved
	}
	if r.Parallel != nil {
		p.Shards = r.Parallel.Shards
		p.Barriers = r.Parallel.Barriers
	}
	return p
}

// Series is one labelled curve.
type Series struct {
	Name   string
	Points []Point
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Ref   string
	XAxis string
	YAxis string
	Run   func(o Opts) []Series
}

// All returns every experiment: the paper's figures and tables in paper
// order, the ablations, then the beyond-the-paper load experiments
// (open-loop tail latency, Zipfian skew).
func All() []Experiment {
	return []Experiment{
		Figure4(), Figure5(), Figure6(), Figure7(),
		Figure8(), Figure9(), Figure10(),
		Table1(), Table2(),
		AblationAlwaysLock(), AblationLocalSpec(), AblationReplication(),
		LatencyOpenLoop(), ZipfSkew(), YCSBScan(),
		RecoveryCheckpoint(), DurableOverhead(),
		MVCCCrossover(), OCCRetry(),
		ParallelSpeedup(), ElasticSplit(),
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// mpFractions returns the x-axis grid for the microbenchmark figures.
func mpFractions(o Opts) []float64 {
	step := 5
	if o.Coarse {
		step = 20
	}
	var out []float64
	for pct := 0; pct <= 100; pct += step {
		out = append(out, float64(pct)/100)
	}
	return out
}

// microCfg is a parameterized §5.1-§5.4 microbenchmark run.
type microCfg struct {
	scheme     specdb.Scheme
	mpFrac     float64
	conflict   float64
	pinned     bool
	abortProb  float64
	twoRound   bool
	alwaysLock bool
	localOnly  bool
	replicas   int
	keySkew    float64
	partSkew   float64
	readFrac   float64
	scanFrac   float64
	scanLen    int
	// ordered loads the kv table as a B-tree even when scanFrac is zero —
	// set on sweeps whose axis varies the scan fraction, so every cell of
	// the series runs the same storage layout.
	ordered bool
	// parts overrides the partition count; zero keeps the figures'
	// two-partition cluster.
	parts int
}

// partitions returns the cell's partition count.
func (c microCfg) partitions() int {
	if c.parts > 0 {
		return c.parts
	}
	return 2
}

const (
	microClients = 40
	microKeys    = 12
)

// microGen builds the §5.1 workload generator for one configuration. Micro
// keeps per-client issue buffers, so every cell needs its own instance —
// cells install it via WithWorkloadFactory, never by sharing one value.
func microGen(c microCfg) specdb.Generator {
	return &workload.Micro{
		Partitions:    c.partitions(),
		KeysPerTxn:    microKeys,
		MPFraction:    c.mpFrac,
		ConflictProb:  c.conflict,
		Pinned:        c.pinned,
		AbortProb:     c.abortProb,
		TwoRound:      c.twoRound,
		KeySkew:       c.keySkew,
		PartitionSkew: c.partSkew,
		ReadFraction:  c.readFrac,
		ScanFraction:  c.scanFrac,
		ScanLength:    c.scanLen,
	}
}

// microWorkload is the WithWorkloadFactory option for one micro config.
func microWorkload(c microCfg) specdb.Option {
	return specdb.WithWorkloadFactory(func() specdb.Generator { return microGen(c) })
}

// microOpts builds the full option set for one microbenchmark cell.
func microOpts(o Opts, c microCfg) []specdb.Option {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	opts := []specdb.Option{
		specdb.WithPartitions(c.partitions()),
		specdb.WithClients(microClients),
		specdb.WithScheme(c.scheme),
		specdb.WithSeed(o.Seed),
		specdb.WithWarmup(o.Warmup),
		specdb.WithMeasure(o.Measure),
		specdb.WithRegistry(reg),
		specdb.WithLockConfig(specdb.LockConfig{AlwaysLock: c.alwaysLock}),
		specdb.WithSpecConfig(specdb.SpecConfig{LocalOnly: c.localOnly}),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			// Scan-bearing cells get the ordered layout; pure point cells
			// keep the hash layout (and its baseline numbers).
			if c.ordered || c.scanFrac > 0 {
				kvstore.AddOrderedSchema(s)
			} else {
				kvstore.AddSchema(s)
			}
			kvstore.Load(s, p, microClients, microKeys)
		}),
		microWorkload(c),
	}
	if c.replicas > 0 {
		opts = append(opts, specdb.WithReplicas(c.replicas))
	}
	if o.Shards > 0 {
		opts = append(opts, specdb.WithParallelism(specdb.ParallelismConfig{Shards: o.Shards}))
	}
	return opts
}

// runMicro executes one microbenchmark cell (Table 2 calibration and tests).
func runMicro(o Opts, c microCfg) specdb.Result {
	db, err := specdb.Open(microOpts(o, c)...)
	if err != nil {
		panic(fmt.Sprintf("bench: invalid micro config: %v", err))
	}
	r := db.Run()
	o.tally(r)
	return r
}

// mpAxis sweeps the multi-partition fraction for one base configuration.
func mpAxis(base microCfg, grid []float64) specdb.Axis {
	return specdb.NumAxis("mp-fraction", grid, func(f float64) []specdb.Option {
		c := base
		c.mpFrac = f
		return []specdb.Option{microWorkload(c)}
	})
}

// sweep runs one scheme across the multi-partition fractions.
func sweep(o Opts, name string, base microCfg) Series {
	return sweepGrid(o, name, base, mpFractions(o))
}

// sweepGrid is sweep over an explicit fraction grid.
func sweepGrid(o Opts, name string, base microCfg, grid []float64) Series {
	cells, err := specdb.Sweep{
		Name: name,
		Base: microOpts(o, base),
		Axes: []specdb.Axis{mpAxis(base, grid)},
	}.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: sweep %s: %v", name, err))
	}
	o.tallyCells(cells)
	s := Series{Name: name}
	for _, cell := range cells {
		s.Points = append(s.Points, pointFor(cell.Xs[0]*100, cell.Result))
	}
	return s
}

// Figure4 is the microbenchmark without conflicts (§5.1).
func Figure4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Microbenchmark Without Conflicts",
		Ref:   "§5.1, Figure 4",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			return []Series{
				sweep(o, "Speculation", microCfg{scheme: specdb.Speculation}),
				sweep(o, "Locking", microCfg{scheme: specdb.Locking}),
				sweep(o, "Blocking", microCfg{scheme: specdb.Blocking}),
			}
		},
	}
}

// Figure5 is the conflict microbenchmark (§5.2).
func Figure5() Experiment {
	return Experiment{
		ID:    "fig5",
		Title: "Microbenchmark With Conflicts",
		Ref:   "§5.2, Figure 5",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			out := []Series{}
			for _, p := range []float64{0, 0.2, 0.6, 1.0} {
				out = append(out, sweep(o, fmt.Sprintf("Locking %d%% conflict", int(p*100)),
					microCfg{scheme: specdb.Locking, conflict: p, pinned: true}))
			}
			out = append(out,
				sweep(o, "Speculation", microCfg{scheme: specdb.Speculation, conflict: 1.0, pinned: true}),
				sweep(o, "Blocking", microCfg{scheme: specdb.Blocking, conflict: 1.0, pinned: true}),
			)
			return out
		},
	}
}

// Figure6 is the abort microbenchmark (§5.3).
func Figure6() Experiment {
	return Experiment{
		ID:    "fig6",
		Title: "Microbenchmark With Aborts",
		Ref:   "§5.3, Figure 6",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			out := []Series{}
			for _, p := range []float64{0, 0.03, 0.05, 0.10} {
				out = append(out, sweep(o, fmt.Sprintf("Speculation %g%% aborts", p*100),
					microCfg{scheme: specdb.Speculation, abortProb: p}))
			}
			out = append(out,
				sweep(o, "Blocking 10% aborts", microCfg{scheme: specdb.Blocking, abortProb: 0.10}),
				sweep(o, "Locking 10% aborts", microCfg{scheme: specdb.Locking, abortProb: 0.10}),
			)
			return out
		},
	}
}

// Figure7 is the general (two-round) transaction microbenchmark (§5.4).
func Figure7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "General Transaction Microbenchmark",
		Ref:   "§5.4, Figure 7",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			return []Series{
				sweep(o, "Speculation", microCfg{scheme: specdb.Speculation, twoRound: true}),
				sweep(o, "Blocking", microCfg{scheme: specdb.Blocking, twoRound: true}),
				sweep(o, "Locking", microCfg{scheme: specdb.Locking, twoRound: true}),
			}
		},
	}
}

// tpccCellOpts builds the layout-dependent options for one TPC-C cell:
// registry, catalog, loader and workload all derive from the warehouse count.
func tpccCellOpts(o Opts, warehouses int, newOrderOnly bool, remoteItem float64) []specdb.Option {
	layout := tpcc.Layout{Warehouses: warehouses, Partitions: 2}
	scale := tpcc.DefaultScale()
	reg := specdb.NewRegistry()
	tpcc.RegisterAll(reg)
	loader := tpcc.Loader{Layout: layout, Scale: scale, Seed: o.Seed}
	return []specdb.Option{
		specdb.WithRegistry(reg),
		specdb.WithCatalog(&specdb.Catalog{Meta: layout}),
		specdb.WithSetup(loader.Load),
		// Mix is stateful (it advances a clock), so every cell run needs
		// a fresh instance.
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &tpcc.Mix{
				Layout: layout, Scale: scale,
				RemoteItemProb:    remoteItem,
				RemotePaymentProb: 0.15,
				NewOrderOnly:      newOrderOnly,
			}
		}),
	}
}

// tpccBase is the shared TPC-C cluster configuration.
func tpccBase(o Opts) []specdb.Option {
	return []specdb.Option{
		specdb.WithPartitions(2),
		specdb.WithClients(40),
		specdb.WithSeed(o.Seed),
		specdb.WithWarmup(o.Warmup),
		specdb.WithMeasure(o.Measure),
	}
}

// Figure8 is TPC-C throughput while varying warehouses (§5.5).
func Figure8() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "TPC-C Throughput Varying Warehouses",
		Ref:   "§5.5, Figure 8",
		XAxis: "warehouses",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			ws := []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
			if o.Coarse {
				ws = []float64{2, 6, 12, 20}
			}
			schemes := []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking}
			cells, err := specdb.Sweep{
				Name: "fig8",
				Base: tpccBase(o),
				Axes: []specdb.Axis{
					specdb.SchemeAxis(schemes...),
					specdb.NumAxis("warehouses", ws, func(w float64) []specdb.Option {
						return tpccCellOpts(o, int(w), false, 0.01)
					}),
				},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: fig8: %v", err))
			}
			o.tallyCells(cells)
			return schemeSeries(cells, schemes)
		},
	}
}

// Figure9 is TPC-C 100% NewOrder with the remote-item probability swept so
// the multi-partition fraction covers the full range (§5.6).
func Figure9() Experiment {
	return Experiment{
		ID:    "fig9",
		Title: "TPC-C 100% New Order",
		Ref:   "§5.6, Figure 9",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			probs := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.04, 0.07, 0.12, 0.2, 0.35, 0.6, 1.0}
			if o.Coarse {
				probs = []float64{0, 0.01, 0.07, 0.35, 1.0}
			}
			schemes := []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking}
			cells, err := specdb.Sweep{
				Name: "fig9",
				Base: tpccBase(o),
				Axes: []specdb.Axis{
					specdb.SchemeAxis(schemes...),
					specdb.NumAxis("remote-item-prob", probs, func(q float64) []specdb.Option {
						return tpccCellOpts(o, 6, true, q)
					}),
				},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: fig9: %v", err))
			}
			o.tallyCells(cells)
			series := schemeSeries(cells, schemes)
			// Re-express the x-axis as the expected MP fraction.
			for si := range series {
				for pi := range series[si].Points {
					q := series[si].Points[pi].X
					series[si].Points[pi].X = 100 * expectedMPFraction(q, 6, 2)
				}
			}
			return series
		},
	}
}

// schemeSeries groups sweep cells (scheme-major order) into one series per
// scheme, carrying the inner axis value as X.
func schemeSeries(cells []specdb.Cell, schemes []specdb.Scheme) []Series {
	per := len(cells) / len(schemes)
	var out []Series
	for i, scheme := range schemes {
		s := Series{Name: schemeName(scheme)}
		for _, cell := range cells[i*per : (i+1)*per] {
			s.Points = append(s.Points, pointFor(cell.Xs[1], cell.Result))
		}
		out = append(out, s)
	}
	return out
}

// Figure10 overlays the §6 analytical model on measured (replication-free)
// runs.
func Figure10() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "Model Throughput vs Measured",
		Ref:   "§6.4, Figure 10",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			p := measuredParams(o)
			mSpec := Series{Name: "Model Spec."}
			mLocal := Series{Name: "Model Local Spec."}
			mBlock := Series{Name: "Model Blocking"}
			mLock := Series{Name: "Model Locking"}
			for _, f := range mpFractions(o) {
				mSpec.Points = append(mSpec.Points, Point{X: f * 100, Y: p.Speculation(f)})
				mLocal.Points = append(mLocal.Points, Point{X: f * 100, Y: p.LocalSpeculation(f)})
				mBlock.Points = append(mBlock.Points, Point{X: f * 100, Y: p.Blocking(f)})
				mLock.Points = append(mLock.Points, Point{X: f * 100, Y: p.Locking(f)})
			}
			return []Series{
				mSpec, mLocal, mBlock, mLock,
				sweep(o, "Measured Spec.", microCfg{scheme: specdb.Speculation}),
				sweep(o, "Measured Local Spec.", microCfg{scheme: specdb.Speculation, localOnly: true}),
				sweep(o, "Measured Blocking", microCfg{scheme: specdb.Blocking}),
				sweep(o, "Measured Locking", microCfg{scheme: specdb.Locking}),
			}
		},
	}
}

// expectedMPFraction computes the probability that a NewOrder with per-item
// remote probability q is multi-partition: at least one of its 5–15 items is
// supplied by a warehouse on another partition. A remote warehouse lands on
// another partition with probability (W − W/P)/(W − 1).
func expectedMPFraction(q float64, warehouses, partitions int) float64 {
	rho := float64(warehouses-warehouses/partitions) / float64(warehouses-1)
	p := rho * q
	sum := 0.0
	for k := 5; k <= 15; k++ {
		term := 1.0
		for i := 0; i < k; i++ {
			term *= 1 - p
		}
		sum += term
	}
	return 1 - sum/11
}

func schemeName(s specdb.Scheme) string {
	switch s {
	case specdb.Speculation:
		return "Speculation"
	case specdb.Blocking:
		return "Blocking"
	case specdb.MVCC:
		return "MVCC"
	case specdb.OCC:
		return "OCC"
	default:
		return "Locking"
	}
}

// AblationAlwaysLock reproduces the Figure 4 discussion: "If we force locks
// to always be acquired, blocking does outperform locking from 0% to 6%
// multi-partition transactions."
func AblationAlwaysLock() Experiment {
	return Experiment{
		ID:    "ablation-alwayslock",
		Title: "Locking fast path ablation (always acquire locks)",
		Ref:   "§5.1, Figure 4 discussion",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			grid := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.16}
			return []Series{
				sweepGrid(o, "Blocking", microCfg{scheme: specdb.Blocking}, grid),
				sweepGrid(o, "Locking (fast path)", microCfg{scheme: specdb.Locking}, grid),
				sweepGrid(o, "Locking (always lock)", microCfg{scheme: specdb.Locking, alwaysLock: true}, grid),
			}
		},
	}
}

// AblationLocalSpec compares full speculation against local-only (§4.2.1 vs
// §4.2.2).
func AblationLocalSpec() Experiment {
	return Experiment{
		ID:    "ablation-localspec",
		Title: "Local-only vs multi-partition speculation",
		Ref:   "§4.2.2, §6.2.1",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			return []Series{
				sweep(o, "Speculation (MP)", microCfg{scheme: specdb.Speculation}),
				sweep(o, "Speculation (local only)", microCfg{scheme: specdb.Speculation, localOnly: true}),
			}
		},
	}
}

// AblationReplication measures the cost of k-replication (§2.2/§3.2).
func AblationReplication() Experiment {
	return Experiment{
		ID:    "ablation-replication",
		Title: "Replication factor sweep",
		Ref:   "§3.2",
		XAxis: "replicas (k)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			var out []Series
			for _, scheme := range []specdb.Scheme{specdb.Speculation, specdb.Blocking} {
				base := microCfg{scheme: scheme, mpFrac: 0.1}
				cells, err := specdb.Sweep{
					Name: "ablation-replication",
					Base: microOpts(o, base),
					Axes: []specdb.Axis{
						specdb.NumAxis("replicas", []float64{1, 2, 3}, func(k float64) []specdb.Option {
							return []specdb.Option{specdb.WithReplicas(int(k))}
						}),
					},
				}.Run()
				if err != nil {
					panic(fmt.Sprintf("bench: replication sweep: %v", err))
				}
				o.tallyCells(cells)
				s := Series{Name: schemeName(scheme)}
				for _, cell := range cells {
					s.Points = append(s.Points, pointFor(cell.Xs[0], cell.Result))
				}
				out = append(out, s)
			}
			return out
		},
	}
}

// winner returns the scheme index with the highest throughput.
func winner(vals map[string]float64) string {
	type kv struct {
		k string
		v float64
	}
	var list []kv
	for k, v := range vals {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v > list[j].v
		}
		return list[i].k < list[j].k
	})
	// Report ties within 5% like the paper's "Blocking or Locking".
	best := list[0]
	if len(list) > 1 && list[1].v > 0.95*best.v {
		return best.k + " or " + list[1].k
	}
	return best.k
}
