// Package bench regenerates every table and figure of the paper's
// evaluation (§5–§6). Each experiment produces named series that
// cmd/ccbench renders as text or CSV and EXPERIMENTS.md records against the
// paper's curves. Absolute numbers come from the simulator's cost model; the
// comparisons (who wins, by what factor, where the crossovers fall) are the
// reproduction targets.
package bench

import (
	"fmt"
	"sort"

	"specdb"
	"specdb/internal/core"
	"specdb/internal/kvstore"
	"specdb/internal/sim"
	"specdb/internal/tpcc"
	"specdb/internal/workload"
)

// Opts trades precision for runtime.
type Opts struct {
	Warmup  sim.Time
	Measure sim.Time
	// Coarse reduces the number of x-axis points.
	Coarse bool
	Seed   int64
}

// DefaultOpts is the full-fidelity configuration used for EXPERIMENTS.md.
func DefaultOpts() Opts {
	return Opts{Warmup: 50 * sim.Millisecond, Measure: 400 * sim.Millisecond, Seed: 42}
}

// QuickOpts is used by the Go benchmarks for fast regeneration.
func QuickOpts() Opts {
	return Opts{Warmup: 20 * sim.Millisecond, Measure: 100 * sim.Millisecond, Coarse: true, Seed: 42}
}

// Point is one measurement.
type Point struct {
	X, Y float64
}

// Series is one labelled curve.
type Series struct {
	Name   string
	Points []Point
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Ref   string
	XAxis string
	YAxis string
	Run   func(o Opts) []Series
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		Figure4(), Figure5(), Figure6(), Figure7(),
		Figure8(), Figure9(), Figure10(),
		Table1(), Table2(),
		AblationAlwaysLock(), AblationLocalSpec(), AblationReplication(),
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// mpFractions returns the x-axis grid for the microbenchmark figures.
func mpFractions(o Opts) []float64 {
	step := 5
	if o.Coarse {
		step = 20
	}
	var out []float64
	for pct := 0; pct <= 100; pct += step {
		out = append(out, float64(pct)/100)
	}
	return out
}

// microCfg is a parameterized §5.1-§5.4 microbenchmark run.
type microCfg struct {
	scheme     specdb.Scheme
	mpFrac     float64
	conflict   float64
	pinned     bool
	abortProb  float64
	twoRound   bool
	alwaysLock bool
	localOnly  bool
	replicas   int
}

const (
	microClients = 40
	microKeys    = 12
)

func runMicro(o Opts, c microCfg) specdb.Result {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	return specdb.Run(specdb.Config{
		Partitions: 2,
		Clients:    microClients,
		Scheme:     c.scheme,
		Replicas:   c.replicas,
		Seed:       o.Seed,
		Warmup:     o.Warmup,
		Measure:    o.Measure,
		Registry:   reg,
		LockCfg:    specdb.LockConfig{AlwaysLock: c.alwaysLock},
		SpecCfg:    core.SpecConfig{LocalOnly: c.localOnly},
		Setup: func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, microClients, microKeys)
		},
		Workload: &workload.Micro{
			Partitions:   2,
			KeysPerTxn:   microKeys,
			MPFraction:   c.mpFrac,
			ConflictProb: c.conflict,
			Pinned:       c.pinned,
			AbortProb:    c.abortProb,
			TwoRound:     c.twoRound,
		},
	})
}

// sweep runs one scheme across the multi-partition fractions.
func sweep(o Opts, name string, base microCfg) Series {
	s := Series{Name: name}
	for _, f := range mpFractions(o) {
		c := base
		c.mpFrac = f
		r := runMicro(o, c)
		s.Points = append(s.Points, Point{X: f * 100, Y: r.Throughput})
	}
	return s
}

// Figure4 is the microbenchmark without conflicts (§5.1).
func Figure4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Microbenchmark Without Conflicts",
		Ref:   "§5.1, Figure 4",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			return []Series{
				sweep(o, "Speculation", microCfg{scheme: specdb.Speculation}),
				sweep(o, "Locking", microCfg{scheme: specdb.Locking}),
				sweep(o, "Blocking", microCfg{scheme: specdb.Blocking}),
			}
		},
	}
}

// Figure5 is the conflict microbenchmark (§5.2).
func Figure5() Experiment {
	return Experiment{
		ID:    "fig5",
		Title: "Microbenchmark With Conflicts",
		Ref:   "§5.2, Figure 5",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			out := []Series{}
			for _, p := range []float64{0, 0.2, 0.6, 1.0} {
				out = append(out, sweep(o, fmt.Sprintf("Locking %d%% conflict", int(p*100)),
					microCfg{scheme: specdb.Locking, conflict: p, pinned: true}))
			}
			out = append(out,
				sweep(o, "Speculation", microCfg{scheme: specdb.Speculation, conflict: 1.0, pinned: true}),
				sweep(o, "Blocking", microCfg{scheme: specdb.Blocking, conflict: 1.0, pinned: true}),
			)
			return out
		},
	}
}

// Figure6 is the abort microbenchmark (§5.3).
func Figure6() Experiment {
	return Experiment{
		ID:    "fig6",
		Title: "Microbenchmark With Aborts",
		Ref:   "§5.3, Figure 6",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			out := []Series{}
			for _, p := range []float64{0, 0.03, 0.05, 0.10} {
				out = append(out, sweep(o, fmt.Sprintf("Speculation %g%% aborts", p*100),
					microCfg{scheme: specdb.Speculation, abortProb: p}))
			}
			out = append(out,
				sweep(o, "Blocking 10% aborts", microCfg{scheme: specdb.Blocking, abortProb: 0.10}),
				sweep(o, "Locking 10% aborts", microCfg{scheme: specdb.Locking, abortProb: 0.10}),
			)
			return out
		},
	}
}

// Figure7 is the general (two-round) transaction microbenchmark (§5.4).
func Figure7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "General Transaction Microbenchmark",
		Ref:   "§5.4, Figure 7",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			return []Series{
				sweep(o, "Speculation", microCfg{scheme: specdb.Speculation, twoRound: true}),
				sweep(o, "Blocking", microCfg{scheme: specdb.Blocking, twoRound: true}),
				sweep(o, "Locking", microCfg{scheme: specdb.Locking, twoRound: true}),
			}
		},
	}
}

// tpccRun executes one TPC-C configuration.
func tpccRun(o Opts, scheme specdb.Scheme, warehouses int, newOrderOnly bool, remoteItem float64) specdb.Result {
	layout := tpcc.Layout{Warehouses: warehouses, Partitions: 2}
	scale := tpcc.DefaultScale()
	reg := specdb.NewRegistry()
	tpcc.RegisterAll(reg)
	loader := tpcc.Loader{Layout: layout, Scale: scale, Seed: o.Seed}
	return specdb.Run(specdb.Config{
		Partitions: 2,
		Clients:    40,
		Scheme:     scheme,
		Seed:       o.Seed,
		Warmup:     o.Warmup,
		Measure:    o.Measure,
		Registry:   reg,
		Catalog:    &specdb.Catalog{Meta: layout},
		Setup:      loader.Load,
		Workload: &tpcc.Mix{
			Layout: layout, Scale: scale,
			RemoteItemProb:    remoteItem,
			RemotePaymentProb: 0.15,
			NewOrderOnly:      newOrderOnly,
		},
	})
}

// Figure8 is TPC-C throughput while varying warehouses (§5.5).
func Figure8() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "TPC-C Throughput Varying Warehouses",
		Ref:   "§5.5, Figure 8",
		XAxis: "warehouses",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			ws := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
			if o.Coarse {
				ws = []int{2, 6, 12, 20}
			}
			var out []Series
			for _, scheme := range []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking} {
				s := Series{Name: schemeName(scheme)}
				for _, w := range ws {
					r := tpccRun(o, scheme, w, false, 0.01)
					s.Points = append(s.Points, Point{X: float64(w), Y: r.Throughput})
				}
				out = append(out, s)
			}
			return out
		},
	}
}

// Figure9 is TPC-C 100% NewOrder with the remote-item probability swept so
// the multi-partition fraction covers the full range (§5.6).
func Figure9() Experiment {
	return Experiment{
		ID:    "fig9",
		Title: "TPC-C 100% New Order",
		Ref:   "§5.6, Figure 9",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			probs := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.04, 0.07, 0.12, 0.2, 0.35, 0.6, 1.0}
			if o.Coarse {
				probs = []float64{0, 0.01, 0.07, 0.35, 1.0}
			}
			var out []Series
			for _, scheme := range []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking} {
				s := Series{Name: schemeName(scheme)}
				for _, q := range probs {
					r := tpccRun(o, scheme, 6, true, q)
					x := 100 * expectedMPFraction(q, 6, 2)
					s.Points = append(s.Points, Point{X: x, Y: r.Throughput})
				}
				out = append(out, s)
			}
			return out
		},
	}
}

// Figure10 overlays the §6 analytical model on measured (replication-free)
// runs.
func Figure10() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "Model Throughput vs Measured",
		Ref:   "§6.4, Figure 10",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			p := measuredParams(o)
			mSpec := Series{Name: "Model Spec."}
			mLocal := Series{Name: "Model Local Spec."}
			mBlock := Series{Name: "Model Blocking"}
			mLock := Series{Name: "Model Locking"}
			for _, f := range mpFractions(o) {
				mSpec.Points = append(mSpec.Points, Point{f * 100, p.Speculation(f)})
				mLocal.Points = append(mLocal.Points, Point{f * 100, p.LocalSpeculation(f)})
				mBlock.Points = append(mBlock.Points, Point{f * 100, p.Blocking(f)})
				mLock.Points = append(mLock.Points, Point{f * 100, p.Locking(f)})
			}
			return []Series{
				mSpec, mLocal, mBlock, mLock,
				sweep(o, "Measured Spec.", microCfg{scheme: specdb.Speculation}),
				sweep(o, "Measured Local Spec.", microCfg{scheme: specdb.Speculation, localOnly: true}),
				sweep(o, "Measured Blocking", microCfg{scheme: specdb.Blocking}),
				sweep(o, "Measured Locking", microCfg{scheme: specdb.Locking}),
			}
		},
	}
}

// expectedMPFraction computes the probability that a NewOrder with per-item
// remote probability q is multi-partition: at least one of its 5–15 items is
// supplied by a warehouse on another partition. A remote warehouse lands on
// another partition with probability (W − W/P)/(W − 1).
func expectedMPFraction(q float64, warehouses, partitions int) float64 {
	rho := float64(warehouses-warehouses/partitions) / float64(warehouses-1)
	p := rho * q
	sum := 0.0
	for k := 5; k <= 15; k++ {
		term := 1.0
		for i := 0; i < k; i++ {
			term *= 1 - p
		}
		sum += term
	}
	return 1 - sum/11
}

func schemeName(s specdb.Scheme) string {
	switch s {
	case specdb.Speculation:
		return "Speculation"
	case specdb.Blocking:
		return "Blocking"
	default:
		return "Locking"
	}
}

// AblationAlwaysLock reproduces the Figure 4 discussion: "If we force locks
// to always be acquired, blocking does outperform locking from 0% to 6%
// multi-partition transactions."
func AblationAlwaysLock() Experiment {
	return Experiment{
		ID:    "ablation-alwayslock",
		Title: "Locking fast path ablation (always acquire locks)",
		Ref:   "§5.1, Figure 4 discussion",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			fine := o
			fine.Coarse = false
			grid := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.16}
			mk := func(name string, c microCfg) Series {
				s := Series{Name: name}
				for _, f := range grid {
					c.mpFrac = f
					r := runMicro(fine, c)
					s.Points = append(s.Points, Point{f * 100, r.Throughput})
				}
				return s
			}
			return []Series{
				mk("Blocking", microCfg{scheme: specdb.Blocking}),
				mk("Locking (fast path)", microCfg{scheme: specdb.Locking}),
				mk("Locking (always lock)", microCfg{scheme: specdb.Locking, alwaysLock: true}),
			}
		},
	}
}

// AblationLocalSpec compares full speculation against local-only (§4.2.1 vs
// §4.2.2).
func AblationLocalSpec() Experiment {
	return Experiment{
		ID:    "ablation-localspec",
		Title: "Local-only vs multi-partition speculation",
		Ref:   "§4.2.2, §6.2.1",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			return []Series{
				sweep(o, "Speculation (MP)", microCfg{scheme: specdb.Speculation}),
				sweep(o, "Speculation (local only)", microCfg{scheme: specdb.Speculation, localOnly: true}),
			}
		},
	}
}

// AblationReplication measures the cost of k-replication (§2.2/§3.2).
func AblationReplication() Experiment {
	return Experiment{
		ID:    "ablation-replication",
		Title: "Replication factor sweep",
		Ref:   "§3.2",
		XAxis: "replicas (k)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			var out []Series
			for _, scheme := range []specdb.Scheme{specdb.Speculation, specdb.Blocking} {
				s := Series{Name: schemeName(scheme)}
				for _, k := range []int{1, 2, 3} {
					r := runMicro(o, microCfg{scheme: scheme, mpFrac: 0.1, replicas: k})
					s.Points = append(s.Points, Point{float64(k), r.Throughput})
				}
				out = append(out, s)
			}
			return out
		},
	}
}

// winner returns the scheme index with the highest throughput.
func winner(vals map[string]float64) string {
	type kv struct {
		k string
		v float64
	}
	var list []kv
	for k, v := range vals {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v > list[j].v
		}
		return list[i].k < list[j].k
	})
	// Report ties within 5% like the paper's "Blocking or Locking".
	best := list[0]
	if len(list) > 1 && list[1].v > 0.95*best.v {
		return best.k + " or " + list[1].k
	}
	return best.k
}
