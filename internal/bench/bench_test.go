package bench

import (
	"math"
	"strings"
	"testing"
)

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Ref == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "table2"} {
		if !seen[want] {
			t.Fatalf("missing paper experiment %q", want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestExpectedMPFraction(t *testing.T) {
	// q=0: never multi-partition.
	if got := expectedMPFraction(0, 6, 2); got != 0 {
		t.Fatalf("q=0 → %f", got)
	}
	// TPC-C default q=0.01 with 6 warehouses: ~5.8% (§5.6 reports 9.5%
	// for their parameterization at W=6; ours uses rho=3/5).
	got := expectedMPFraction(0.01, 6, 2)
	if got < 0.04 || got > 0.08 {
		t.Fatalf("q=0.01 → %f", got)
	}
	// Monotonic in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.1 {
		v := expectedMPFraction(q, 6, 2)
		if v < prev {
			t.Fatalf("not monotonic at q=%.1f", q)
		}
		prev = v
	}
	// W=2: every remote item is on the other partition.
	if got := expectedMPFraction(1, 2, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("W=2 q=1 → %f", got)
	}
}

func TestWinnerTieReporting(t *testing.T) {
	if w := winner(map[string]float64{"A": 100, "B": 50}); w != "A" {
		t.Fatalf("winner = %q", w)
	}
	if w := winner(map[string]float64{"A": 100, "B": 97}); w != "A or B" {
		t.Fatalf("tie = %q", w)
	}
}

func TestFormatColumnar(t *testing.T) {
	e := Experiment{ID: "x", Title: "T", Ref: "§0", XAxis: "x", YAxis: "y"}
	series := []Series{
		{Name: "s1", Points: []Point{{0, 10}, {1, 20}}},
		{Name: "s2", Points: []Point{{0, 30}, {1, 40}}},
	}
	var sb strings.Builder
	Format(&sb, e, series)
	out := sb.String()
	for _, want := range []string{"s1", "s2", "10", "40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatCSV(t *testing.T) {
	e := Experiment{ID: "x"}
	series := []Series{{Name: "a,b", Points: []Point{{1, 2}}}}
	var sb strings.Builder
	FormatCSV(&sb, e, series)
	if !strings.Contains(sb.String(), "x,a;b,1,2") {
		t.Fatalf("csv = %q", sb.String())
	}
}

// TestQuickFigure4Shape runs the flagship experiment end to end at reduced
// fidelity and validates the headline claims of §5.1.
func TestQuickFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := QuickOpts()
	o.Measure = 60 * 1000 * 1000 // 60ms
	series := Figure4().Run(o)
	byName := map[string][]Point{}
	for _, s := range series {
		byName[s.Name] = s.Points
	}
	spec, lock, block := byName["Speculation"], byName["Locking"], byName["Blocking"]
	if spec == nil || lock == nil || block == nil {
		t.Fatalf("missing series: %v", byName)
	}
	// At 0% everything is close.
	if math.Abs(spec[0].Y-block[0].Y) > 0.05*block[0].Y {
		t.Errorf("schemes differ at 0%%: %f vs %f", spec[0].Y, block[0].Y)
	}
	last := len(spec) - 1
	// At 100% locking wins (coordinator saturation), blocking loses.
	if !(lock[last].Y > spec[last].Y && spec[last].Y > block[last].Y) {
		t.Errorf("100%% ordering wrong: lock=%f spec=%f block=%f",
			lock[last].Y, spec[last].Y, block[last].Y)
	}
}
