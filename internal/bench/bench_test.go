package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Ref == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "table2"} {
		if !seen[want] {
			t.Fatalf("missing paper experiment %q", want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestExpectedMPFraction(t *testing.T) {
	// q=0: never multi-partition.
	if got := expectedMPFraction(0, 6, 2); got != 0 {
		t.Fatalf("q=0 → %f", got)
	}
	// TPC-C default q=0.01 with 6 warehouses: ~5.8% (§5.6 reports 9.5%
	// for their parameterization at W=6; ours uses rho=3/5).
	got := expectedMPFraction(0.01, 6, 2)
	if got < 0.04 || got > 0.08 {
		t.Fatalf("q=0.01 → %f", got)
	}
	// Monotonic in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.1 {
		v := expectedMPFraction(q, 6, 2)
		if v < prev {
			t.Fatalf("not monotonic at q=%.1f", q)
		}
		prev = v
	}
	// W=2: every remote item is on the other partition.
	if got := expectedMPFraction(1, 2, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("W=2 q=1 → %f", got)
	}
}

func TestWinnerTieReporting(t *testing.T) {
	if w := winner(map[string]float64{"A": 100, "B": 50}); w != "A" {
		t.Fatalf("winner = %q", w)
	}
	if w := winner(map[string]float64{"A": 100, "B": 97}); w != "A or B" {
		t.Fatalf("tie = %q", w)
	}
}

func TestFormatColumnar(t *testing.T) {
	e := Experiment{ID: "x", Title: "T", Ref: "§0", XAxis: "x", YAxis: "y"}
	series := []Series{
		{Name: "s1", Points: []Point{{X: 0, Y: 10}, {X: 1, Y: 20}}},
		{Name: "s2", Points: []Point{{X: 0, Y: 30}, {X: 1, Y: 40}}},
	}
	var sb strings.Builder
	Format(&sb, e, series)
	out := sb.String()
	for _, want := range []string{"s1", "s2", "10", "40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatCSV(t *testing.T) {
	e := Experiment{ID: "x"}
	series := []Series{{Name: "a,b", Points: []Point{{X: 1, Y: 2}}}}
	var sb strings.Builder
	FormatCSV(&sb, e, series)
	if !strings.Contains(sb.String(), "x,a;b,1,2") {
		t.Fatalf("csv = %q", sb.String())
	}
}

// TestQuickFigure4Shape runs the flagship experiment end to end at reduced
// fidelity and validates the headline claims of §5.1.
func TestQuickFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := QuickOpts()
	o.Measure = 60 * 1000 * 1000 // 60ms
	series := Figure4().Run(o)
	byName := map[string][]Point{}
	for _, s := range series {
		byName[s.Name] = s.Points
	}
	spec, lock, block := byName["Speculation"], byName["Locking"], byName["Blocking"]
	if spec == nil || lock == nil || block == nil {
		t.Fatalf("missing series: %v", byName)
	}
	// At 0% everything is close.
	if math.Abs(spec[0].Y-block[0].Y) > 0.05*block[0].Y {
		t.Errorf("schemes differ at 0%%: %f vs %f", spec[0].Y, block[0].Y)
	}
	last := len(spec) - 1
	// At 100% locking wins (coordinator saturation), blocking loses.
	if !(lock[last].Y > spec[last].Y && spec[last].Y > block[last].Y) {
		t.Errorf("100%% ordering wrong: lock=%f spec=%f block=%f",
			lock[last].Y, spec[last].Y, block[last].Y)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	e := Experiment{ID: "x"}
	series := []Series{{Name: "s", Points: []Point{{X: 0, Y: 100}, {X: 20, Y: 80}}}}
	var sb strings.Builder
	if err := FormatJSON(&sb, e, series); err != nil {
		t.Fatal(err)
	}
	FormatPerfJSON(&sb, Perf{Experiment: "x", Perf: true, Allocs: 5})
	cells, err := ReadBaseline(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells (perf record must be skipped), want 2", len(cells))
	}
	if cells[1] != (BaselineCell{Experiment: "x", Series: "s", X: 20, Y: 80}) {
		t.Fatalf("cell = %+v", cells[1])
	}
}

func TestCompareBaseline(t *testing.T) {
	base := []BaselineCell{
		{"fig4", "Speculation", 0, 1000, 0},
		{"fig4", "Speculation", 50, 500, 0},
		{"fig9", "Locking", 0, 800, 0},
	}
	// Within tolerance, above baseline, and a baseline-only cell from an
	// experiment that was not re-run: all pass.
	// Fresh cells carry Shards 1 (the plain scheduler): they must fold onto
	// the pre-sharding baseline's zero-valued cells.
	fresh := []BaselineCell{
		{"fig4", "Speculation", 0, 800, 1},
		{"fig4", "Speculation", 50, 700, 1},
		{"fig4", "NewSeries", 0, 1, 1}, // not in baseline: ignored
	}
	if bad := CompareBaseline(base, fresh, 0.25); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
	// A drop beyond tolerance fails.
	fresh[0].Y = 700
	bad := CompareBaseline(base, fresh, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "fig4/Speculation/x=0") {
		t.Fatalf("regressions = %v, want one for fig4/Speculation/x=0", bad)
	}
	// A baseline cell that vanished from a re-run experiment fails.
	fresh[0].Y = 1000
	bad = CompareBaseline(base, fresh[:1], 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing from fresh run") {
		t.Fatalf("regressions = %v, want one missing-cell failure", bad)
	}
}

// TestBaselineKeyStabilityElasticCells pins the cell-key contract for the
// elasticity experiment: dip_ms and rows_moved are payload, not identity, so
// a cell re-measured with a different migration outcome still compares
// against the same baseline cell, and elastic cells never collide with other
// experiments' cells of the same series and x.
func TestBaselineKeyStabilityElasticCells(t *testing.T) {
	e := Experiment{ID: "elastic-split"}
	withMig := []Series{{Name: "Speculation", Points: []Point{
		{X: 0.9, Y: 50000, DipMs: 3.2, RowsMoved: 240, Shards: 1}}}}
	noMig := []Series{{Name: "Speculation", Points: []Point{
		{X: 0.9, Y: 50000, Shards: 1}}}}
	parse := func(series []Series) BaselineCell {
		var sb strings.Builder
		if err := FormatJSON(&sb, e, series); err != nil {
			t.Fatal(err)
		}
		cells, err := ReadBaseline(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 1 {
			t.Fatalf("got %d cells", len(cells))
		}
		return cells[0]
	}
	a, b := parse(withMig), parse(noMig)
	if a.key() != b.key() {
		t.Fatalf("migration payload leaked into the cell key: %q vs %q", a.key(), b.key())
	}
	if bad := CompareBaseline([]BaselineCell{a}, []BaselineCell{b}, 0.01); len(bad) != 0 {
		t.Fatalf("same-throughput cells flagged: %v", bad)
	}
	other := a
	other.Experiment = "zipf-skew"
	if a.key() == other.key() {
		t.Fatal("elastic cell key collides with another experiment")
	}
}

// TestCommittedBaselinesRoundTrip re-encodes the repository's committed
// BENCH_*.json baselines through the NDJSON cell format and compares the
// round trip against the original at zero tolerance: the format changes that
// added migration columns must not disturb a single committed cell.
func TestCommittedBaselinesRoundTrip(t *testing.T) {
	for _, name := range []string{"BENCH_4.json", "BENCH_8.json"} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("..", "..", name))
			if err != nil {
				t.Skipf("no committed baseline: %v", err)
			}
			orig, err := ReadBaseline(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if len(orig) == 0 {
				t.Fatal("baseline parsed to zero cells")
			}
			var sb strings.Builder
			enc := json.NewEncoder(&sb)
			for _, c := range orig {
				if err := enc.Encode(c); err != nil {
					t.Fatal(err)
				}
			}
			again, err := ReadBaseline(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatal(err)
			}
			if bad := CompareBaseline(orig, again, 0); len(bad) != 0 {
				t.Fatalf("round trip vs original: %v", bad)
			}
			if bad := CompareBaseline(again, orig, 0); len(bad) != 0 {
				t.Fatalf("original vs round trip: %v", bad)
			}
		})
	}
}
