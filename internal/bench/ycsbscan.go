package bench

import (
	"fmt"

	"specdb"
)

// scanFractions is the ycsb-scan x-axis grid.
func scanFractions(o Opts) []float64 {
	if o.Coarse {
		return []float64{0, 0.5, 1.0}
	}
	return []float64{0, 0.25, 0.5, 0.75, 1.0}
}

// scanAxis sweeps the scan fraction for one base configuration.
func scanAxis(base microCfg, grid []float64) specdb.Axis {
	return specdb.NumAxis("scan-fraction", grid, func(f float64) []specdb.Option {
		c := base
		c.scanFrac = f
		return []specdb.Option{microWorkload(c)}
	})
}

// YCSBScan is the scan workload (YCSB-E, beyond the paper): short Zipfian
// range scans mixed into the update microbenchmark, swept over the scan
// fraction for all five schemes. Every cell runs the ordered (B-tree) kv
// layout so the axis isolates concurrency control, not storage layout.
//
// The interesting comparisons: MVCC serves declared read-only scans from a
// snapshot and never blocks or aborts them; locking's shared range locks
// make writers into a scanned range wait instead of killing anyone; OCC
// pays phantom validation — a committed write landing in a scanned range
// kills the scanner at its commit check, so its curve collapses as scans
// lengthen relative to the update stream.
func YCSBScan() Experiment {
	return Experiment{
		ID:    "ycsb-scan",
		Title: "YCSB-E Short Range Scans",
		Ref:   "beyond the paper; YCSB workload E",
		XAxis: "scan transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			grid := scanFractions(o)
			schemes := []struct {
				name   string
				scheme specdb.Scheme
			}{
				{"Speculation", specdb.Speculation},
				{"Blocking", specdb.Blocking},
				{"Locking", specdb.Locking},
				{"MVCC", specdb.MVCC},
				{"OCC", specdb.OCC},
			}
			var out []Series
			for _, sc := range schemes {
				base := microCfg{scheme: sc.scheme, mpFrac: 0.1, keySkew: 0.99, scanLen: 20, ordered: true}
				cells, err := specdb.Sweep{
					Name: sc.name,
					Base: microOpts(o, base),
					Axes: []specdb.Axis{scanAxis(base, grid)},
				}.Run()
				if err != nil {
					panic(fmt.Sprintf("bench: ycsb-scan sweep %s: %v", sc.name, err))
				}
				o.tallyCells(cells)
				s := Series{Name: sc.name}
				for _, cell := range cells {
					s.Points = append(s.Points, pointFor(cell.Xs[0]*100, cell.Result))
				}
				out = append(out, s)
			}
			return out
		},
	}
}
