package bench

import (
	"fmt"

	"specdb"
	"specdb/internal/costs"
	"specdb/internal/model"
	"specdb/internal/sim"
)

// Table1 regenerates the §5.7 best-scheme summary: a grid over workload
// properties, each cell reporting which scheme measured fastest. Series are
// abused slightly: each cell is a one-point series named like the paper's
// table cells.
func Table1() Experiment {
	return Experiment{
		ID:    "table1",
		Title: "Best concurrency control scheme by workload",
		Ref:   "§5.7, Table 1",
		XAxis: "cell",
		YAxis: "winner",
		Run: func(o Opts) []Series {
			type cell struct {
				name   string
				mp     float64
				abort  float64
				confl  float64
				rounds bool
			}
			var cells []cell
			for _, rounds := range []struct {
				name string
				two  bool
			}{{"few multi-round", false}, {"many multi-round", true}} {
				for _, mp := range []struct {
					name string
					f    float64
				}{{"many MP", 0.5}, {"few MP", 0.1}} {
					for _, ab := range []struct {
						name string
						p    float64
					}{{"few aborts", 0}, {"many aborts", 0.1}} {
						for _, cf := range []struct {
							name string
							p    float64
						}{{"few conflicts", 0}, {"many conflicts", 0.6}} {
							cells = append(cells, cell{
								name:   mp.name + ", " + rounds.name + ", " + ab.name + ", " + cf.name,
								mp:     mp.f,
								abort:  ab.p,
								confl:  cf.p,
								rounds: rounds.two,
							})
						}
					}
				}
			}
			// One sweep: workload-cell axis × scheme axis.
			schemes := []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking}
			cellAxis := specdb.Axis{Name: "workload"}
			for i, c := range cells {
				cfg := microCfg{
					mpFrac:    c.mp,
					abortProb: c.abort,
					conflict:  c.confl,
					pinned:    c.confl > 0,
					twoRound:  c.rounds,
				}
				cellAxis.Points = append(cellAxis.Points, specdb.AxisPoint{
					Label: c.name,
					X:     float64(i),
					Opts:  []specdb.Option{microWorkload(cfg)},
				})
			}
			grid, err := specdb.Sweep{
				Name: "table1",
				Base: microOpts(o, microCfg{}),
				Axes: []specdb.Axis{cellAxis, specdb.SchemeAxis(schemes...)},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: table1: %v", err))
			}
			o.tallyCells(grid)
			var out []Series
			for i, c := range cells {
				vals := map[string]float64{}
				for j, scheme := range schemes {
					vals[schemeName(scheme)] = grid[i*len(schemes)+j].Result.Throughput
				}
				// Encode the winner in the series name; Y carries the
				// winning throughput.
				best := winner(vals)
				out = append(out, Series{
					Name:   c.name + " → " + best,
					Points: []Point{{X: 0, Y: vals[firstWord(best)]}},
				})
			}
			return out
		},
	}
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}

// measuredParams extracts the Table 2 model variables from the simulator:
// configured quantities come straight from the cost model, tmp and tmpN are
// measured from dedicated runs (as the authors did on their testbed).
func measuredParams(o Opts) model.Params {
	cm := costs.Default()
	// The 12-key read/write transaction: 24 row operations, 12 writes.
	tsp := cm.Fragment(kvProcName, 24, 12, 0, false)
	tspS := cm.Fragment(kvProcName, 24, 12, 0, true)
	// Multi-partition fragment at one partition: 6 keys = 12 ops.
	tmpC := cm.Fragment(kvProcName, 12, 6, 0, true) + cm.Decision
	// l: surcharge of 24 lock-manager calls.
	locked := cm.Fragment(kvProcName, 24, 12, 24, true)
	l := float64(locked-tspS) / float64(tspS)
	// tmp measured: a pure multi-partition blocking workload commits one
	// transaction per tmp.
	r := runMicro(o, microCfg{scheme: specdb.Blocking, mpFrac: 1.0})
	tmp := sim.Time(0)
	if r.Throughput > 0 {
		tmp = sim.Time(float64(sim.Second) / r.Throughput)
	}
	return model.Params{Tsp: tsp, TspS: tspS, Tmp: tmp, TmpC: tmpC, L: l}
}

const kvProcName = "kv.readwrite"

// Table2 reports the model variables: paper measurement vs this system.
func Table2() Experiment {
	return Experiment{
		ID:    "table2",
		Title: "Analytical model variables",
		Ref:   "§6.4, Table 2",
		XAxis: "variable",
		YAxis: "µs (paper vs ours)",
		Run: func(o Opts) []Series {
			paper := model.PaperParams()
			ours := measuredParams(o)
			row := func(name string, p, g float64) Series {
				return Series{Name: name, Points: []Point{{X: p, Y: g}}}
			}
			return []Series{
				row("tsp (µs)", paper.Tsp.Micros(), ours.Tsp.Micros()),
				row("tspS (µs)", paper.TspS.Micros(), ours.TspS.Micros()),
				row("tmp (µs)", paper.Tmp.Micros(), ours.Tmp.Micros()),
				row("tmpC (µs)", paper.TmpC.Micros(), ours.TmpC.Micros()),
				row("tmpN = tmp - tmpC (µs)", paper.TmpN().Micros(), ours.TmpN().Micros()),
				row("l (%)", paper.L*100, ours.L*100),
			}
		},
	}
}
