package bench

import (
	"fmt"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/sim"
	"specdb/internal/workload"
)

// recoveryCfg parameterizes one crash-restart cell: a durable 4-partition
// cluster with a configurable checkpoint interval and a set of partitions
// crashed simultaneously mid-run.
type recoveryCfg struct {
	ckptInterval sim.Time
	crashed      int
}

const (
	recoveryParts   = 4
	recoveryClients = 16
)

// recoveryOpts assembles the option set for one recovery cell. Crashes land
// on partitions 0..crashed-1 at the midpoint of the measurement window, so
// every cell replays a comparable log tail.
func recoveryOpts(o Opts, c recoveryCfg) []specdb.Option {
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	crashAt := o.Warmup + o.Measure/2
	var faults []specdb.FaultEvent
	for p := 0; p < c.crashed; p++ {
		faults = append(faults, specdb.CrashRestart(specdb.PartitionID(p), crashAt))
	}
	return []specdb.Option{
		specdb.WithPartitions(recoveryParts),
		specdb.WithClients(recoveryClients),
		specdb.WithScheme(specdb.Speculation),
		specdb.WithSeed(o.Seed),
		specdb.WithWarmup(o.Warmup),
		specdb.WithMeasure(o.Measure),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, recoveryClients, microKeys)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{
				Partitions: recoveryParts,
				KeysPerTxn: microKeys,
				MPFraction: 0.05,
			}
		}),
		specdb.WithDurability(specdb.DurabilityConfig{CheckpointInterval: c.ckptInterval}),
		specdb.WithFaults(faults...),
	}
}

// runRecovery executes one crash-restart cell and condenses its recovery
// events: Y is the mean per-partition recovery latency in milliseconds, with
// the replayed log bytes and transactions summed across crashed partitions.
func runRecovery(o Opts, c recoveryCfg) Point {
	db, err := specdb.Open(recoveryOpts(o, c)...)
	if err != nil {
		panic(fmt.Sprintf("bench: invalid recovery config: %v", err))
	}
	r := db.Run()
	o.tally(r)
	p := Point{X: c.ckptInterval.Micros() / 1000}
	if len(r.Recovery) == 0 {
		return p
	}
	var lat sim.Time
	for _, e := range r.Recovery {
		lat += e.RecoveryLatency()
		p.LogBytes += e.LogBytes
		p.ReplayTxns += uint64(e.ReplayTxns)
	}
	p.RecoveryMs = (lat / sim.Time(len(r.Recovery))).Micros() / 1000
	p.Y = p.RecoveryMs
	return p
}

// RecoveryCheckpoint measures crash-restart recovery latency against the
// checkpoint interval: tighter checkpoints leave a shorter log tail to
// replay, so recovery time shrinks as the interval does. One series per
// simultaneous-crash width shows parallel replay: partitions recover
// independently, so widening the crash barely moves the per-partition
// latency.
func RecoveryCheckpoint() Experiment {
	return Experiment{
		ID:    "recovery-checkpoint",
		Title: "Recovery Latency vs Checkpoint Interval",
		Ref:   "command logging + fuzzy checkpoints",
		XAxis: "checkpoint interval (ms)",
		YAxis: "mean recovery latency (ms)",
		Run: func(o Opts) []Series {
			intervals := []sim.Time{2, 5, 10, 20, 40}
			if o.Coarse {
				intervals = []sim.Time{2, 10, 40}
			}
			var out []Series
			for _, crashed := range []int{1, 2, 4} {
				s := Series{Name: fmt.Sprintf("%d crashed", crashed)}
				for _, iv := range intervals {
					s.Points = append(s.Points,
						runRecovery(o, recoveryCfg{ckptInterval: iv * sim.Millisecond, crashed: crashed}))
				}
				out = append(out, s)
			}
			return out
		},
	}
}

// DurableOverhead measures what command logging costs when nothing crashes:
// durable vs non-durable throughput across the multi-partition fraction.
// Group commit keeps the overhead to added latency, not lost throughput, on
// closed-loop clients with enough concurrency to cover the commit delay.
func DurableOverhead() Experiment {
	return Experiment{
		ID:    "durable-overhead",
		Title: "Command Logging Overhead (durable vs non-durable)",
		Ref:   "group commit",
		XAxis: "multi-partition transactions (%)",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			grid := mpFractions(o)
			durable := specdb.WithDurability(specdb.DurabilityConfig{})
			return []Series{
				sweepExtra(o, "Speculation", microCfg{scheme: specdb.Speculation}, grid),
				sweepExtra(o, "Speculation durable", microCfg{scheme: specdb.Speculation}, grid, durable),
				sweepExtra(o, "Blocking", microCfg{scheme: specdb.Blocking}, grid),
				sweepExtra(o, "Blocking durable", microCfg{scheme: specdb.Blocking}, grid, durable),
			}
		},
	}
}

// sweepExtra is sweepGrid with extra base options appended to every cell.
func sweepExtra(o Opts, name string, base microCfg, grid []float64, extra ...specdb.Option) Series {
	cells, err := specdb.Sweep{
		Name: name,
		Base: append(microOpts(o, base), extra...),
		Axes: []specdb.Axis{mpAxis(base, grid)},
	}.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: sweep %s: %v", name, err))
	}
	o.tallyCells(cells)
	s := Series{Name: name}
	for _, cell := range cells {
		s.Points = append(s.Points, pointFor(cell.Xs[0]*100, cell.Result))
	}
	return s
}
