package bench

import (
	"runtime"
	"sync"
	"time"

	"specdb"
)

// The paper's claim is *low overhead*: the schemes win or lose by the CPU
// cost of the concurrency-control path itself (§4, Figure 4). Virtual-time
// throughput alone cannot see that cost — the simulator charges CPU through
// the cost model, not through the Go runtime. Perf is the host-side
// counterpart: wall-clock time, simulation events delivered, and heap
// allocations for one experiment run, normalized to events/second and
// allocations per transaction. cmd/ccbench records these next to each
// experiment's series, and BENCH_*.json carries them as the repository's
// performance trajectory across PRs.

// Tally accumulates simulator-side totals across every cell an experiment
// runs. Experiments add each cell's Result as it completes; the mutex makes
// that safe under parallel sweeps.
type Tally struct {
	mu sync.Mutex
	// Events is the total number of simulation events delivered.
	Events uint64
	// Completed is the total number of completed transactions, warm-up
	// included (allocations accrue over the whole run).
	Completed uint64
	// Cells is the number of simulation runs tallied.
	Cells int
}

// Add folds one cell's Result into the tally.
func (t *Tally) Add(r specdb.Result) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Events += r.Events
	t.Completed += r.CompletedTotal
	t.Cells++
	t.mu.Unlock()
}

// tally records a cell Result against the Opts' tally, if one is attached.
func (o Opts) tally(r specdb.Result) { o.Tally.Add(r) }

// tallyCells records every cell of a completed sweep.
func (o Opts) tallyCells(cells []specdb.Cell) {
	if o.Tally == nil {
		return
	}
	for i := range cells {
		o.Tally.Add(cells[i].Result)
	}
}

// Perf is the host-side measurement of one experiment run.
type Perf struct {
	Experiment string `json:"experiment"`
	// Perf marks the record so NDJSON consumers (and the ccbench baseline
	// comparison) can tell it apart from grid cells.
	Perf bool `json:"perf"`
	// WallSeconds is real elapsed time for the whole experiment.
	WallSeconds float64 `json:"wall_seconds"`
	// Cells is the number of simulation runs the experiment performed.
	Cells int `json:"cells"`
	// Events and EventsPerSec measure kernel speed: simulation events
	// delivered, total and per wall-clock second.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Txns counts completed transactions across all cells (whole runs,
	// warm-up included).
	Txns uint64 `json:"txns"`
	// Allocs and AllocsPerTxn measure hot-path garbage: heap allocations
	// (runtime.MemStats.Mallocs delta) total and per completed transaction.
	Allocs       uint64  `json:"allocs"`
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	// AllocBytes is the matching MemStats.TotalAlloc delta.
	AllocBytes uint64 `json:"alloc_bytes"`
}

// MeasurePerf runs one experiment while measuring it: the experiment's series
// come back unchanged, alongside wall time, events/sec and allocs/txn. The
// allocation numbers cover everything the experiment does (setup and data
// loading included), so they are an upper bound on the transaction path
// itself — comparable across commits, which is what the BENCH_*.json
// trajectory needs.
func MeasurePerf(e Experiment, o Opts) ([]Series, Perf) {
	t := &Tally{}
	o.Tally = t
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	series := e.Run(o)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	p := Perf{
		Experiment:  e.ID,
		Perf:        true,
		WallSeconds: wall,
		Cells:       t.Cells,
		Events:      t.Events,
		Txns:        t.Completed,
		Allocs:      after.Mallocs - before.Mallocs,
		AllocBytes:  after.TotalAlloc - before.TotalAlloc,
	}
	if wall > 0 {
		p.EventsPerSec = float64(t.Events) / wall
	}
	if t.Completed > 0 {
		p.AllocsPerTxn = float64(p.Allocs) / float64(t.Completed)
	}
	return series, p
}
