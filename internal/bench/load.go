package bench

import (
	"fmt"

	"specdb"
)

// The paper evaluates its schemes only under closed-loop uniform load, where
// a saturated system slows its own arrival rate and tail latency is
// invisible. These experiments probe the regime the later literature
// (Larson et al., STAR) reports: open-loop arrivals sweeping the offered
// load through saturation, and Zipfian key popularity concentrating writes
// on hot keys. Every cell's NDJSON row carries p50/p95/p99 alongside
// throughput.

// LatencyOpenLoop sweeps open-loop offered load across the schemes,
// reporting delivered throughput with latency percentiles per cell: below
// the knee all schemes serve the offered rate and differ only in latency;
// past it the pending queues fill, p99 explodes, and shedding begins.
func LatencyOpenLoop() Experiment {
	return Experiment{
		ID:    "latency-openloop",
		Title: "Open-Loop Tail Latency vs Offered Load",
		Ref:   "beyond the paper: open-loop methodology",
		XAxis: "offered load (txn/s)",
		YAxis: "transactions/second (cells carry p50/p95/p99 µs)",
		Run: func(o Opts) []Series {
			rates := []float64{5000, 10000, 15000, 20000, 25000, 30000, 40000}
			if o.Coarse {
				rates = []float64{5000, 15000, 25000, 40000}
			}
			schemes := []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking}
			cells, err := specdb.Sweep{
				Name: "latency-openloop",
				Base: microOpts(o, microCfg{mpFrac: 0.1}),
				Axes: []specdb.Axis{
					specdb.SchemeAxis(schemes...),
					specdb.RateAxis(rates, specdb.OpenLoopConfig{Window: 4}),
				},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: latency-openloop: %v", err))
			}
			o.tallyCells(cells)
			return schemeSeries(cells, schemes)
		},
	}
}

// ZipfSkew sweeps Zipfian key popularity (YCSB-style theta) over the shared
// key population with closed-loop clients: uniform private keys at theta 0,
// increasingly contended hot keys toward 0.99. Locking pays for conflicts
// with deadlock kills and retries, speculation with cascades — the
// percentile columns show where each starts hurting.
func ZipfSkew() Experiment {
	return Experiment{
		ID:    "zipf-skew",
		Title: "Zipfian Key Skew",
		Ref:   "beyond the paper: skewed popularity",
		XAxis: "zipf theta",
		YAxis: "transactions/second (cells carry p50/p95/p99 µs)",
		Run: func(o Opts) []Series {
			thetas := []float64{0, 0.5, 0.8, 0.9, 0.99}
			if o.Coarse {
				thetas = []float64{0, 0.8, 0.99}
			}
			schemes := []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking}
			cells, err := specdb.Sweep{
				Name: "zipf-skew",
				Base: microOpts(o, microCfg{mpFrac: 0.1}),
				Axes: []specdb.Axis{
					specdb.SchemeAxis(schemes...),
					specdb.NumAxis("key-skew", thetas, func(theta float64) []specdb.Option {
						c := microCfg{mpFrac: 0.1, keySkew: theta}
						return []specdb.Option{microWorkload(c)}
					}),
				},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: zipf-skew: %v", err))
			}
			o.tallyCells(cells)
			return schemeSeries(cells, schemes)
		},
	}
}
