package bench

import (
	"fmt"

	"specdb"
)

// ParallelSpeedup measures the sharded parallel runtime (WithParallelism)
// on a fig4-style microbenchmark scaled out to larger clusters: each series
// fixes a partition count and sweeps the shard width across the x-axis.
//
// Y is virtual-time throughput, which the runtime's determinism contract
// requires to be identical at every width — a flat line is the correct
// result, and the committed baseline (BENCH_8.json) gates exactly that.
// The host-side speedup of fanning the event loop over OS threads shows up
// in the perf records (events/sec per cell batch), which are informational:
// they depend on the machine's core count and are never compared.
func ParallelSpeedup() Experiment {
	return Experiment{
		ID:    "parallel-speedup",
		Title: "Sharded Runtime: Width Invariance and Host Speedup",
		Ref:   "beyond the paper; deterministic parallel runtime",
		XAxis: "shards",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			widths := []int{1, 2, 4, 8}
			if o.Coarse {
				widths = []int{1, 2, 4}
			}
			var out []Series
			for _, parts := range []int{4, 8} {
				s := Series{Name: fmt.Sprintf("%d partitions", parts)}
				for _, w := range widths {
					oo := o
					oo.Shards = w
					r := runMicro(oo, microCfg{
						scheme: specdb.Speculation,
						mpFrac: 0.10,
						parts:  parts,
					})
					s.Points = append(s.Points, pointFor(float64(w), r))
				}
				out = append(out, s)
			}
			return out
		},
	}
}
