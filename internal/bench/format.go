package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Format renders an experiment's series as an aligned text table. Series
// sharing x-values become columns; otherwise each series prints its own
// block (Table 1/2 style experiments print one row per series).
func Format(w io.Writer, e Experiment, series []Series) {
	fmt.Fprintf(w, "# %s — %s [%s]\n", e.ID, e.Title, e.Ref)
	fmt.Fprintf(w, "# x: %s   y: %s\n", e.XAxis, e.YAxis)
	if oneRowPerSeries(series) {
		for _, s := range series {
			if len(s.Points) == 1 && e.ID == "table2" {
				fmt.Fprintf(w, "%-28s paper=%10.1f   ours=%10.1f\n", s.Name, s.Points[0].X, s.Points[0].Y)
			} else if len(s.Points) == 1 {
				fmt.Fprintf(w, "%-72s %12.0f\n", s.Name, s.Points[0].Y)
			}
		}
		fmt.Fprintln(w)
		return
	}
	// Column layout keyed by x. Series whose points carry latency
	// percentiles get a p99 column next to their value column.
	xs := sortedXs(series)
	fmt.Fprintf(w, "%10s", "x")
	for _, s := range series {
		fmt.Fprintf(w, "  %*s", colWidth(s.Name), s.Name)
		if seriesHasLat(s) {
			fmt.Fprintf(w, "  %8s", "p99µs")
		}
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%10.1f", x)
		for _, s := range series {
			p, ok := pointAt(s, x)
			if ok {
				fmt.Fprintf(w, "  %*.0f", colWidth(s.Name), p.Y)
			} else {
				fmt.Fprintf(w, "  %*s", colWidth(s.Name), "-")
			}
			if !seriesHasLat(s) {
				continue
			}
			if ok {
				fmt.Fprintf(w, "  %8.0f", p.P99)
			} else {
				fmt.Fprintf(w, "  %8s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// seriesHasLat reports whether any point of the series carries latency
// percentiles (model curves do not).
func seriesHasLat(s Series) bool {
	for _, p := range s.Points {
		if p.P99 > 0 {
			return true
		}
	}
	return false
}

// FormatCSV renders the series as CSV: x,series,y rows with the latency
// percentile columns alongside (zero when the point has no simulated cell
// behind it).
func FormatCSV(w io.Writer, e Experiment, series []Series) {
	fmt.Fprintf(w, "experiment,series,x,y,p50_us,p95_us,p99_us,recovery_ms,log_bytes,replay_txns,dip_ms,rows_moved,shards,barriers\n")
	for _, s := range series {
		name := strings.ReplaceAll(s.Name, ",", ";")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%g,%g,%d,%d,%g,%d,%d,%d\n", e.ID, name, p.X, p.Y, p.P50, p.P95, p.P99,
				p.RecoveryMs, p.LogBytes, p.ReplayTxns, p.DipMs, p.RowsMoved, p.Shards, p.Barriers)
		}
	}
}

// FormatJSON emits one JSON object per measured point (grid cell), newline
// delimited, so bench trajectories can be consumed without scraping the
// aligned text output. Measured cells carry their latency percentiles (in
// microseconds) next to the throughput; model-curve points omit them.
func FormatJSON(w io.Writer, e Experiment, series []Series) error {
	enc := json.NewEncoder(w)
	for _, s := range series {
		for _, p := range s.Points {
			rec := struct {
				Experiment string  `json:"experiment"`
				Title      string  `json:"title,omitempty"`
				Ref        string  `json:"ref,omitempty"`
				Series     string  `json:"series"`
				XAxis      string  `json:"x_axis,omitempty"`
				YAxis      string  `json:"y_axis,omitempty"`
				X          float64 `json:"x"`
				Y          float64 `json:"y"`
				P50        float64 `json:"p50_us,omitempty"`
				P95        float64 `json:"p95_us,omitempty"`
				P99        float64 `json:"p99_us,omitempty"`
				RecoveryMs float64 `json:"recovery_ms,omitempty"`
				LogBytes   uint64  `json:"log_bytes,omitempty"`
				ReplayTxns uint64  `json:"replay_txns,omitempty"`
				DipMs      float64 `json:"dip_ms,omitempty"`
				RowsMoved  uint64  `json:"rows_moved,omitempty"`
				Shards     int     `json:"shards,omitempty"`
				Barriers   uint64  `json:"barriers,omitempty"`
			}{e.ID, e.Title, e.Ref, s.Name, e.XAxis, e.YAxis, p.X, p.Y, p.P50, p.P95, p.P99,
				p.RecoveryMs, p.LogBytes, p.ReplayTxns, p.DipMs, p.RowsMoved, p.Shards, p.Barriers}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// FormatPerf renders an experiment's host-side measurements as a comment
// line under the text table.
func FormatPerf(w io.Writer, p Perf) {
	fmt.Fprintf(w, "# perf %s: %.2fs wall, %d cells, %.3gM events (%.3gM events/s), %d txns, %.1f allocs/txn\n\n",
		p.Experiment, p.WallSeconds, p.Cells,
		float64(p.Events)/1e6, p.EventsPerSec/1e6, p.Txns, p.AllocsPerTxn)
}

// FormatPerfJSON appends the perf record to an NDJSON stream.
func FormatPerfJSON(w io.Writer, p Perf) error {
	return json.NewEncoder(w).Encode(p)
}

func colWidth(name string) int {
	if len(name) < 12 {
		return 12
	}
	return len(name)
}

func oneRowPerSeries(series []Series) bool {
	for _, s := range series {
		if len(s.Points) != 1 {
			return false
		}
	}
	// Heterogeneous single points (Table 1/2 style).
	return len(series) > 0
}

func sortedXs(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func pointAt(s Series, x float64) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}
