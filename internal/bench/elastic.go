package bench

import (
	"fmt"

	"specdb"
)

// ElasticSplit sweeps Zipfian partition skew with elastic repartitioning on:
// a four-partition cluster whose home-partition popularity concentrates on
// partition 0 as theta grows. At low skew the saturation trigger never fires
// and the cells match a static cluster; past the trigger's skew ratio the
// hot partition is split mid-run and the cell's dip_ms / rows_moved columns
// record what the cutover cost. The y column stays whole-run throughput, so
// the experiment reads as "what does a split buy (and cost) at this skew".
func ElasticSplit() Experiment {
	return Experiment{
		ID:    "elastic-split",
		Title: "Elastic Hot-Partition Split vs Partition Skew",
		Ref:   "beyond the paper: elasticity (cf. §2 static partition map)",
		XAxis: "partition zipf theta",
		YAxis: "transactions/second (cells carry dip_ms / rows_moved)",
		Run: func(o Opts) []Series {
			thetas := []float64{0, 0.5, 0.8, 0.9, 0.99}
			if o.Coarse {
				thetas = []float64{0, 0.9, 0.99}
			}
			schemes := []specdb.Scheme{specdb.Speculation, specdb.Blocking, specdb.Locking}
			cells, err := specdb.Sweep{
				Name: "elastic-split",
				Base: append(microOpts(o, microCfg{parts: 4, mpFrac: 0.1}),
					specdb.WithElasticity(specdb.ElasticityConfig{})),
				Axes: []specdb.Axis{
					specdb.SchemeAxis(schemes...),
					specdb.NumAxis("part-skew", thetas, func(theta float64) []specdb.Option {
						c := microCfg{parts: 4, mpFrac: 0.1, partSkew: theta}
						return []specdb.Option{microWorkload(c)}
					}),
				},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: elastic-split: %v", err))
			}
			o.tallyCells(cells)
			return schemeSeries(cells, schemes)
		},
	}
}
