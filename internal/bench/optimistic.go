package bench

import (
	"fmt"

	"specdb"
)

// The optimistic engines (MVCC and OCC) trade pessimistic waiting for
// aborts: MVCC pays a per-version bookkeeping overhead to give declared
// read-only transactions abort-free snapshots, and OCC pays wasted execution
// for every transaction that fails backward validation. Neither trade is
// uniformly good, so these experiments chart the two crossovers the §6-style
// model predicts: MVCC overtakes the pessimistic schemes as the read
// fraction grows, and OCC falls behind locking as the conflict rate grows.

// MVCCCrossover sweeps the declared read-only fraction under a contended
// write mix. At read fraction 0 MVCC is all overhead — its versioned writes
// and timestamp kills buy nothing — while at high read fractions its
// snapshot reads never wait and never abort, and the other schemes keep
// paying for conflicts on the write side. The locking engine's lock-free
// fast path keeps it ahead until reads almost fully dominate: the measured
// crossover sits between read fractions 0.90 and 0.95, so the grid samples
// that corner densely.
func MVCCCrossover() Experiment {
	return Experiment{
		ID:    "mvcc-crossover",
		Title: "MVCC Read-Fraction Crossover",
		Ref:   "beyond the paper: multiversion read path",
		XAxis: "declared read-only fraction",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			fracs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98}
			if o.Coarse {
				fracs = []float64{0, 0.5, 0.9, 0.95}
			}
			base := microCfg{mpFrac: 0.2, conflict: 0.6, pinned: true}
			schemes := []specdb.Scheme{specdb.Blocking, specdb.Locking, specdb.MVCC, specdb.OCC}
			cells, err := specdb.Sweep{
				Name: "mvcc-crossover",
				Base: microOpts(o, base),
				Axes: []specdb.Axis{
					specdb.SchemeAxis(schemes...),
					specdb.NumAxis("read-fraction", fracs, func(r float64) []specdb.Option {
						c := base
						c.readFrac = r
						return []specdb.Option{microWorkload(c)}
					}),
				},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: mvcc-crossover: %v", err))
			}
			o.tallyCells(cells)
			return schemeSeries(cells, schemes)
		},
	}
}

// OCCRetry sweeps the hot-key conflict probability. OCC starts ahead — no
// lock table, no coordinator queues — but every conflict it admits is a full
// execution thrown away at validation and resent by the client, so its curve
// decays roughly twice as fast as locking's, whose conflicts only wait.
func OCCRetry() Experiment {
	return Experiment{
		ID:    "occ-retry",
		Title: "OCC Retry Cost vs Conflict Rate",
		Ref:   "beyond the paper: optimistic validation",
		XAxis: "hot-key conflict probability",
		YAxis: "transactions/second",
		Run: func(o Opts) []Series {
			probs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
			if o.Coarse {
				probs = []float64{0, 0.4, 0.8}
			}
			base := microCfg{mpFrac: 0.3, pinned: true}
			schemes := []specdb.Scheme{specdb.Speculation, specdb.Locking, specdb.OCC}
			cells, err := specdb.Sweep{
				Name: "occ-retry",
				Base: microOpts(o, base),
				Axes: []specdb.Axis{
					specdb.SchemeAxis(schemes...),
					specdb.NumAxis("conflict-prob", probs, func(p float64) []specdb.Option {
						c := base
						c.conflict = p
						return []specdb.Option{microWorkload(c)}
					}),
				},
			}.Run()
			if err != nil {
				panic(fmt.Sprintf("bench: occ-retry: %v", err))
			}
			o.tallyCells(cells)
			return schemeSeries(cells, schemes)
		},
	}
}
