package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// BENCH_*.json files commit ccbench NDJSON output as performance baselines:
// one JSON object per grid cell plus one perf record per experiment. The
// cells are virtual-time throughput and therefore deterministic — the same
// code, seed and options reproduce them bit for bit on any host — so CI can
// diff a fresh run against the committed baseline and fail on regressions.
// The perf records (events/sec, allocs/txn) are host-dependent and are
// ignored by the comparison; they document the trajectory on the machine
// that produced the baseline.

// BaselineCell is one comparable measurement: a grid cell identified by
// (experiment, series, x) with its throughput y.
type BaselineCell struct {
	Experiment string  `json:"experiment"`
	Series     string  `json:"series"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	// Shards is the runtime width behind the cell. Zero (baselines
	// recorded before the sharded runtime existed) and one (the plain
	// scheduler) share a key: throughputs on the two paths agree to well
	// within any useful tolerance, and folding them keeps old BENCH_*.json
	// files comparable.
	Shards int `json:"shards,omitempty"`
}

// key identifies a cell across runs.
func (c BaselineCell) key() string {
	s := c.Shards
	if s == 0 {
		s = 1
	}
	return fmt.Sprintf("%s/%s/x=%g/shards=%d", c.Experiment, c.Series, c.X, s)
}

// ReadBaseline parses ccbench NDJSON, returning the grid cells and skipping
// perf records and blank lines.
func ReadBaseline(r io.Reader) ([]BaselineCell, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []BaselineCell
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec struct {
			BaselineCell
			Perf bool `json:"perf"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("baseline line %d: %w", line, err)
		}
		if rec.Perf {
			continue
		}
		out = append(out, rec.BaselineCell)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SeriesCells flattens an experiment's series into comparable cells.
func SeriesCells(e Experiment, series []Series) []BaselineCell {
	var out []BaselineCell
	for _, s := range series {
		for _, p := range s.Points {
			out = append(out, BaselineCell{Experiment: e.ID, Series: s.Name, X: p.X, Y: p.Y, Shards: p.Shards})
		}
	}
	return out
}

// CompareBaseline checks fresh cells against a committed baseline with a
// relative tolerance band: a fresh y below (1−tol)·baseline y is a
// regression (cells carry throughput, so only drops fail — improvements
// raise the bar when the baseline file is regenerated). Baseline cells with
// no fresh counterpart are errors only when their experiment was re-run:
// a vanished cell would otherwise hide a regression, but comparing a
// baseline of one experiment against a run of another must not demand cells
// the run never produced. Fresh cells absent from the baseline pass — new
// experiments extend the grid. It returns one message per violation, in
// fresh-cell order.
func CompareBaseline(baseline, fresh []BaselineCell, tol float64) []string {
	base := make(map[string]BaselineCell, len(baseline))
	for _, c := range baseline {
		base[c.key()] = c
	}
	ranExp := make(map[string]bool)
	seen := make(map[string]bool)
	var bad []string
	for _, f := range fresh {
		ranExp[f.Experiment] = true
		b, ok := base[f.key()]
		if !ok {
			continue
		}
		seen[f.key()] = true
		if f.Y < (1-tol)*b.Y {
			bad = append(bad, fmt.Sprintf("%s: %.1f is %.1f%% below baseline %.1f (tolerance %.0f%%)",
				f.key(), f.Y, 100*(1-f.Y/b.Y), b.Y, 100*tol))
		}
	}
	for _, c := range baseline {
		if ranExp[c.Experiment] && !seen[c.key()] {
			bad = append(bad, fmt.Sprintf("%s: baseline cell missing from fresh run", c.key()))
		}
	}
	return bad
}
