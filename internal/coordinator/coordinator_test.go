package coordinator

import (
	"testing"

	"specdb/internal/costs"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// capture records every message an actor receives.
type capture struct {
	got []sim.Message
}

func (c *capture) Receive(ctx *sim.Context, m sim.Message) {
	c.got = append(c.got, m)
}

func (c *capture) fragments() []*msg.Fragment {
	var out []*msg.Fragment
	for _, m := range c.got {
		if f, ok := m.(*msg.Fragment); ok {
			out = append(out, f)
		}
	}
	return out
}

func (c *capture) decisions() []*msg.Decision {
	var out []*msg.Decision
	for _, m := range c.got {
		if d, ok := m.(*msg.Decision); ok {
			out = append(out, d)
		}
	}
	return out
}

func (c *capture) replies() []*msg.ClientReply {
	var out []*msg.ClientReply
	for _, m := range c.got {
		if r, ok := m.(*msg.ClientReply); ok {
			out = append(out, r)
		}
	}
	return out
}

// twoPartProc is a trivial 2-partition, possibly 2-round procedure.
type twoPartProc struct{ rounds int }

func (p twoPartProc) Name() string { return "test.proc" }
func (p twoPartProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	return txn.Plan{
		Parts:  []msg.PartitionID{0, 1},
		Work:   map[msg.PartitionID]any{0: "w0r0", 1: "w1r0"},
		Rounds: p.rounds,
	}
}
func (p twoPartProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	return map[msg.PartitionID]any{0: "w0r1", 1: "w1r1"}
}
func (p twoPartProc) Run(view *storage.TxnView, w any) (any, error) { return w, nil }
func (p twoPartProc) Output(args any, final []msg.FragmentResult) any {
	return "done"
}

type harness struct {
	s       *sim.Scheduler
	coord   *Coordinator
	coordID sim.ActorID
	parts   []*capture
	partIDs []sim.ActorID
	client  *capture
	cliID   sim.ActorID
}

func newHarness(t *testing.T, rounds int) *harness {
	t.Helper()
	h := &harness{s: sim.New()}
	reg := txn.NewRegistry()
	reg.Register(twoPartProc{rounds: rounds})
	cm := costs.Default()
	net := simnet.New(cm.OneWayLatency)
	for i := 0; i < 2; i++ {
		c := &capture{}
		h.parts = append(h.parts, c)
		h.partIDs = append(h.partIDs, h.s.Register("p", c))
	}
	h.coord = New(reg, &txn.Catalog{NumPartitions: 2}, &cm, net, h.partIDs)
	h.coordID = h.s.Register("coord", h.coord)
	h.coord.Bind(h.coordID)
	h.client = &capture{}
	h.cliID = h.s.Register("client", h.client)
	return h
}

func (h *harness) request(id uint64) {
	h.s.SendAt(h.s.Now(), h.coordID, &msg.Request{
		Txn: msg.TxnID(id), Proc: "test.proc", Client: h.cliID,
		Parts: []msg.PartitionID{0, 1}, AbortAt: txn.NoAbort,
	})
	h.s.Drain()
}

func (h *harness) vote(id uint64, part msg.PartitionID, round int, aborted bool, spec bool, dep uint64, gen uint32) {
	h.s.SendAt(h.s.Now(), h.coordID, &msg.FragmentResult{
		Txn: msg.TxnID(id), Partition: part, Round: round,
		Aborted: aborted, Speculative: spec, DependsOn: msg.TxnID(dep), Gen: gen,
	})
	h.s.Drain()
}

func TestSimpleCommitFlow(t *testing.T) {
	h := newHarness(t, 1)
	h.request(1)
	for p, c := range h.parts {
		fs := c.fragments()
		if len(fs) != 1 || !fs[0].Last || fs[0].Round != 0 {
			t.Fatalf("partition %d fragments = %+v", p, fs)
		}
		if !fs[0].MultiPartition || fs[0].Coord != h.coordID {
			t.Fatalf("fragment misaddressed: %+v", fs[0])
		}
	}
	h.vote(1, 0, 0, false, false, 0, 0)
	if len(h.parts[0].decisions()) != 0 {
		t.Fatal("decided with one vote")
	}
	h.vote(1, 1, 0, false, false, 0, 0)
	for p, c := range h.parts {
		ds := c.decisions()
		if len(ds) != 1 || !ds[0].Commit {
			t.Fatalf("partition %d decisions = %+v", p, ds)
		}
	}
	rs := h.client.replies()
	if len(rs) != 1 || !rs[0].Committed || rs[0].Output != "done" {
		t.Fatalf("client replies = %+v", rs)
	}
	if h.coord.Pending() != 0 {
		t.Fatal("transaction leaked")
	}
}

func TestNoVoteAborts(t *testing.T) {
	h := newHarness(t, 1)
	h.request(1)
	h.vote(1, 0, 0, true, false, 0, 0) // vote no
	h.vote(1, 1, 0, false, false, 0, 0)
	for _, c := range h.parts {
		ds := c.decisions()
		if len(ds) != 1 || ds[0].Commit {
			t.Fatalf("decisions = %+v", ds)
		}
		if ds[0].Gen != 1 {
			t.Fatalf("abort decision must carry bumped generation, got %d", ds[0].Gen)
		}
	}
	rs := h.client.replies()
	if len(rs) != 1 || rs[0].Committed || !rs[0].UserAborted {
		t.Fatalf("replies = %+v", rs)
	}
	if h.coord.Aborts != 1 {
		t.Fatalf("aborts = %d", h.coord.Aborts)
	}
}

func TestKilledVoteMarksRetryable(t *testing.T) {
	h := newHarness(t, 1)
	h.request(1)
	h.s.SendAt(h.s.Now(), h.coordID, &msg.FragmentResult{
		Txn: 1, Partition: 0, Aborted: true, Killed: true,
	})
	h.s.Drain()
	h.vote(1, 1, 0, false, false, 0, 0)
	rs := h.client.replies()
	if len(rs) != 1 || !rs[0].Retryable || rs[0].UserAborted {
		t.Fatalf("replies = %+v", rs)
	}
}

func TestMultiRoundAdvance(t *testing.T) {
	h := newHarness(t, 2)
	h.request(1)
	fs := h.parts[0].fragments()
	if len(fs) != 1 || fs[0].Last {
		t.Fatalf("round 0 must not be Last: %+v", fs)
	}
	h.vote(1, 0, 0, false, false, 0, 0)
	h.vote(1, 1, 0, false, false, 0, 0)
	fs = h.parts[0].fragments()
	if len(fs) != 2 || !fs[1].Last || fs[1].Round != 1 || fs[1].Work != "w0r1" {
		t.Fatalf("round 1 fragment = %+v", fs)
	}
	h.vote(1, 0, 1, false, false, 0, 0)
	h.vote(1, 1, 1, false, false, 0, 0)
	if len(h.parts[0].decisions()) != 1 {
		t.Fatal("no decision after final round")
	}
}

func TestInOrderDecisionRelease(t *testing.T) {
	h := newHarness(t, 1)
	h.request(1)
	h.request(2)
	// Transaction 2's votes arrive first.
	h.vote(2, 0, 0, false, true, 1, 0)
	h.vote(2, 1, 0, false, true, 1, 0)
	if len(h.parts[0].decisions()) != 0 {
		t.Fatal("decision released out of order")
	}
	h.vote(1, 0, 0, false, false, 0, 0)
	h.vote(1, 1, 0, false, false, 0, 0)
	ds := h.parts[0].decisions()
	if len(ds) != 2 || ds[0].Txn != 1 || ds[1].Txn != 2 {
		t.Fatalf("decisions = %+v", ds)
	}
	if !ds[0].Commit || !ds[1].Commit {
		t.Fatal("both should commit")
	}
}

func TestDependencyAbortDiscardsAndAwaitsResend(t *testing.T) {
	h := newHarness(t, 1)
	h.request(1)
	h.request(2)
	// Transaction 1 votes no at partition 0; both partitions had already
	// speculated transaction 2 on top of it.
	h.vote(2, 0, 0, false, true, 1, 0)
	h.vote(2, 1, 0, false, true, 1, 0)
	h.vote(1, 0, 0, true, false, 0, 0)
	h.vote(1, 1, 0, false, false, 0, 0)
	// Transaction 1 aborted; transaction 2's speculative results must be
	// discarded, not committed.
	ds := h.parts[0].decisions()
	if len(ds) != 1 || ds[0].Txn != 1 || ds[0].Commit {
		t.Fatalf("decisions = %+v", ds)
	}
	if h.coord.Discarded != 2 {
		t.Fatalf("discarded = %d", h.coord.Discarded)
	}
	// Partitions re-execute and resend with the bumped generation.
	h.vote(2, 0, 0, false, false, 0, 1)
	h.vote(2, 1, 0, false, false, 0, 1)
	ds = h.parts[0].decisions()
	if len(ds) != 2 || ds[1].Txn != 2 || !ds[1].Commit {
		t.Fatalf("decisions = %+v", ds)
	}
}

func TestStaleGenerationResultDropped(t *testing.T) {
	h := newHarness(t, 1)
	h.request(1)
	h.request(2)
	h.vote(1, 0, 0, true, false, 0, 0)
	h.vote(1, 1, 0, false, false, 0, 0)
	// An in-flight speculative result for txn 2 stamped with the old
	// generation arrives after the abort: it must be ignored.
	h.vote(2, 0, 0, false, true, 1, 0)
	h.vote(2, 1, 0, false, true, 1, 0)
	if len(h.parts[0].decisions()) != 1 {
		t.Fatal("stale speculative results were consumed")
	}
	// Fresh resends complete the transaction.
	h.vote(2, 0, 0, false, false, 0, 1)
	h.vote(2, 1, 0, false, false, 0, 1)
	if len(h.parts[0].decisions()) != 2 {
		t.Fatal("resent results not consumed")
	}
}

func TestCoordinatorChargesCPU(t *testing.T) {
	h := newHarness(t, 1)
	h.request(1)
	h.vote(1, 0, 0, false, false, 0, 0)
	h.vote(1, 1, 0, false, false, 0, 0)
	if h.s.BusyTime(h.coordID) == 0 {
		t.Fatal("coordinator consumed no CPU")
	}
}
