// Package coordinator implements the central coordinator of §3.3: the single
// process through which all multi-partition transactions flow under the
// blocking and speculative schemes. It assigns a global order, dispatches
// fragments round by round (the 2PC prepare piggybacked on the last round),
// collects votes — including speculative votes tagged with dependencies — and
// releases commit/abort decisions strictly in order.
//
// Speculative bookkeeping (§4.2.2): a result tagged DependsOn=A is valid only
// if A commits. When a transaction aborts, the coordinator bumps a
// per-partition generation, discards dependent results (including in-flight
// ones, which arrive stamped with a stale generation), and waits for the
// partitions to re-execute and resend.
//
// The coordinator's per-message CPU charge is what saturates it past ~50%
// multi-partition transactions in Figure 4.
package coordinator

import (
	"fmt"

	"specdb/internal/costs"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/txn"
)

// Coordinator is the central coordinator actor.
type Coordinator struct {
	Registry *txn.Registry
	Catalog  *txn.Catalog
	Costs    *costs.Model
	Net      *simnet.Net
	// Parts maps PartitionID to the primary's actor ID. The coordinator
	// owns this slice: a failover re-targets an entry to the promoted
	// backup.
	Parts []sim.ActorID
	// Clients lists every client actor, for the NewPrimary broadcast on
	// failover (set by the facade; nil outside fault runs).
	Clients []sim.ActorID
	// Rec records failover events (may be nil outside fault runs).
	Rec *metrics.Collector

	self  sim.ActorID
	txns  map[msg.TxnID]*ctxn
	order []msg.TxnID
	gen   []uint32 // per-partition abort generation
	// decided logs every finalized transaction's outcome. It backs
	// failover recovery: a promoted backup asks for the outcomes of its
	// buffered prepared transactions, whose decisions may have died with
	// the old primary. (Unbounded by design — this is a simulation; a real
	// system would truncate it at replica acknowledgment.)
	decided map[msg.TxnID]bool

	// Stats
	Requests  uint64
	Commits   uint64
	Aborts    uint64
	Discarded uint64 // speculative results discarded by aborts
}

type ctxn struct {
	id    msg.TxnID
	req   *msg.Request
	plan  txn.Plan
	round int
	// results[p] is the latest result from partition p for the current
	// round; cleared when the round advances.
	results map[msg.PartitionID]*msg.FragmentResult
	// votes holds the final-round results (the 2PC votes).
	votes map[msg.PartitionID]*msg.FragmentResult
	// prior accumulates every round's results for Procedure.Continue.
	prior []msg.FragmentResult
	// ready is set when all final-round votes are present and valid.
	ready bool
	// failed marks participants whose primary crashed while this
	// transaction was in flight; their decisions are sent Recovery-flagged
	// so the promoted backup resolves them against its prepared buffer
	// instead of its fresh engine.
	failed map[msg.PartitionID]bool
	// doomed marks a transaction force-aborted at failover (its state at
	// the dead partition was unrecoverable). Doomed transactions abort no
	// matter what else happens: cascade discards must not clear their
	// ready flag, or they would go back to waiting for a result the dead
	// partition can never send.
	doomed bool
}

// New builds a coordinator.
func New(reg *txn.Registry, cat *txn.Catalog, c *costs.Model, net *simnet.Net, parts []sim.ActorID) *Coordinator {
	return &Coordinator{
		Registry: reg,
		Catalog:  cat,
		Costs:    c,
		Net:      net,
		Parts:    parts,
		txns:     make(map[msg.TxnID]*ctxn),
		gen:      make([]uint32, len(parts)),
		decided:  make(map[msg.TxnID]bool),
	}
}

// Bind sets the coordinator's actor ID.
func (c *Coordinator) Bind(self sim.ActorID) { c.self = self }

// Pending reports undecided transactions (tests).
func (c *Coordinator) Pending() int { return len(c.txns) }

// Receive handles requests and fragment results.
func (c *Coordinator) Receive(ctx *sim.Context, m sim.Message) {
	switch v := m.(type) {
	case *msg.Request:
		c.request(ctx, v)
	case *msg.FragmentResult:
		c.result(ctx, v)
	case *msg.RecoveryQuery:
		c.recover(ctx, v)
	default:
		panic(fmt.Sprintf("coordinator: unexpected message %T", m))
	}
}

// recover handles a partition failover: the promoted backup announces itself
// and asks for the outcomes of its buffered prepared transactions. The
// coordinator re-targets the partition, tells every client (clients then
// resend stalled single-partition attempts to the new primary), answers the
// outcome query from its decision log, and resolves in-flight transactions
// touching the dead partition — aborting any whose state there is
// unrecoverable (no final vote, or only a speculative one, §4.2.2: a
// speculative vote's re-execution can no longer happen). Transactions that
// had already voted non-speculatively at the dead primary survive: their
// prepared work sits in the promoted backup's buffer, and their eventual
// decisions are sent Recovery-flagged.
func (c *Coordinator) recover(ctx *sim.Context, q *msg.RecoveryQuery) {
	ctx.Spend(c.Costs.CoordMessage)
	p := q.Partition
	c.Parts[p] = q.NewPrimary
	// Clients first, then the outcome reply, then any abort decisions from
	// release(): FIFO links guarantee the new primary sees the outcomes
	// before Recovery-flagged decisions, and clients learn the new target
	// before their retryable abort replies arrive.
	for _, cl := range c.Clients {
		c.Net.Send(ctx, cl, &msg.NewPrimary{Partition: p, Actor: q.NewPrimary})
	}
	out := &msg.RecoveryOutcome{Partition: p}
	for _, id := range q.Buffered {
		if commit, ok := c.decided[id]; ok {
			out.Outcomes = append(out.Outcomes, msg.TxnOutcome{Txn: id, Commit: commit})
		}
	}
	ctx.Spend(c.Costs.CoordMessage)
	c.Net.Send(ctx, q.NewPrimary, out)

	aborted := 0
	for _, id := range c.order {
		t := c.txns[id]
		if t == nil || !t.touches(p) {
			continue
		}
		if t.failed == nil {
			t.failed = make(map[msg.PartitionID]bool, 1)
		}
		t.failed[p] = true
		if v := t.votes[p]; v != nil && !v.Speculative {
			// A final vote (yes or no) from p is in hand: a yes-vote's
			// prepared work sits in the promoted backup's buffer, a
			// no-vote aborts through the normal path either way.
			continue
		}
		// No vote, or only a speculative one whose re-execution died with
		// the primary: the transaction cannot complete. Synthesize a
		// killed no-vote so it aborts (retryable) in global order.
		t.votes[p] = &msg.FragmentResult{Txn: id, Partition: p, Aborted: true, Killed: true}
		t.ready = true
		t.doomed = true
		aborted++
	}
	if c.Rec != nil && aborted > 0 {
		c.Rec.NoteInFlightAborted(int(p), aborted)
	}
	c.release(ctx)
}

func (c *Coordinator) request(ctx *sim.Context, r *msg.Request) {
	ctx.Spend(c.Costs.CoordMessage)
	c.Requests++
	proc := c.Registry.Get(r.Proc)
	plan := proc.Plan(r.Args, c.Catalog)
	t := &ctxn{
		id:      r.Txn,
		req:     r,
		plan:    plan,
		results: make(map[msg.PartitionID]*msg.FragmentResult, len(plan.Parts)),
		votes:   make(map[msg.PartitionID]*msg.FragmentResult, len(plan.Parts)),
	}
	c.txns[r.Txn] = t
	c.order = append(c.order, r.Txn)
	c.sendRound(ctx, t, plan.Work)
}

// sendRound dispatches one round of fragments.
func (c *Coordinator) sendRound(ctx *sim.Context, t *ctxn, work map[msg.PartitionID]any) {
	last := t.round == t.plan.Rounds-1
	for _, p := range t.plan.Parts {
		f := &msg.Fragment{
			Txn:            t.id,
			Proc:           t.req.Proc,
			Round:          t.round,
			Last:           last,
			Work:           work[p],
			Partition:      p,
			Coord:          c.self,
			Client:         t.req.Client,
			MultiPartition: true,
			CanAbort:       t.req.CanAbort,
			ReadOnly:       t.req.ReadOnly,
			Scans:          t.plan.Scans[p],
			Gen:            c.gen[p],
		}
		if t.round == 0 && t.req.AbortAt == p {
			f.InjectAbort = true
		}
		ctx.Spend(c.Costs.CoordMessage)
		c.Net.Send(ctx, c.Parts[p], f)
	}
}

func (c *Coordinator) result(ctx *sim.Context, r *msg.FragmentResult) {
	ctx.Spend(c.Costs.CoordMessage)
	t := c.txns[r.Txn]
	if t == nil {
		return // transaction already finalized (e.g. late duplicate)
	}
	if r.Speculative && r.Gen < c.gen[r.Partition] {
		// Stale in-flight speculative result from before an abort the
		// partition had not yet seen.
		c.Discarded++
		return
	}
	if r.Round != t.round {
		return // stale round after a cascade; a resend will follow
	}
	t.results[r.Partition] = r
	c.advance(ctx, t)
	c.release(ctx)
}

// advance moves t forward when the current round is fully reported.
func (c *Coordinator) advance(ctx *sim.Context, t *ctxn) {
	if t.ready || t.doomed || len(t.results) < len(t.plan.Parts) {
		return
	}
	aborted := false
	for _, r := range t.results {
		if r.Aborted {
			aborted = true
		}
	}
	final := t.round == t.plan.Rounds-1
	if final || aborted {
		// These results are the votes.
		for p, r := range t.results {
			t.votes[p] = r
		}
		t.ready = true
		return
	}
	// Intermediate round: the next round may only be issued once every
	// dependency has committed — the work for round r+1 is computed from
	// round-r outputs, which must be final.
	if !c.depsResolved(t) {
		return
	}
	for _, p := range t.plan.Parts {
		t.prior = append(t.prior, *t.results[p])
	}
	t.round++
	proc := c.Registry.Get(t.req.Proc)
	work := proc.Continue(t.req.Args, t.round, t.prior, c.Catalog)
	t.results = make(map[msg.PartitionID]*msg.FragmentResult, len(t.plan.Parts))
	c.sendRound(ctx, t, work)
}

// touches reports whether the transaction's plan includes partition p.
func (t *ctxn) touches(p msg.PartitionID) bool {
	for _, q := range t.plan.Parts {
		if q == p {
			return true
		}
	}
	return false
}

// depsResolved reports whether every speculative result's dependency has
// committed. Dependencies are earlier transactions in the global order; a
// committed dependency has been removed from c.txns.
func (c *Coordinator) depsResolved(t *ctxn) bool {
	for _, r := range t.results {
		if r.Speculative && r.DependsOn != msg.NoTxn {
			if _, pending := c.txns[r.DependsOn]; pending {
				return false
			}
		}
	}
	return true
}

// release finalizes ready transactions strictly in global order, preserving
// the invariant that a partition's decisions arrive in the same order as the
// transactions entered its uncommitted queue.
func (c *Coordinator) release(ctx *sim.Context) {
	for len(c.order) > 0 {
		head := c.txns[c.order[0]]
		if head == nil {
			c.order = c.order[1:]
			continue
		}
		if !head.ready || !c.depsResolved(head) {
			return
		}
		c.finalize(ctx, head)
		c.order = c.order[1:]
		// Finalizing may unblock round advancement of later txns whose
		// dependencies just committed.
		for _, id := range c.order {
			if t := c.txns[id]; t != nil {
				c.advance(ctx, t)
			}
		}
	}
}

// finalize sends the decision, replies to the client, and on abort discards
// dependent speculative state.
func (c *Coordinator) finalize(ctx *sim.Context, t *ctxn) {
	commit := true
	for _, v := range t.votes {
		if v.Aborted {
			commit = false
		}
	}
	if !commit {
		// Bump generations first so the decisions carry them and any
		// in-flight speculative results can be recognized as stale.
		for _, p := range t.plan.Parts {
			c.gen[p]++
		}
		c.discardDependents(t)
	}
	for _, p := range t.plan.Parts {
		ctx.Spend(c.Costs.CoordMessage)
		c.Net.Send(ctx, c.Parts[p], &msg.Decision{Txn: t.id, Commit: commit, Gen: c.gen[p], Recovery: t.failed[p]})
	}
	delete(c.txns, t.id)
	c.decided[t.id] = commit

	reply := &msg.ClientReply{Txn: t.id, Committed: commit}
	if commit {
		c.Commits++
		final := make([]msg.FragmentResult, 0, len(t.votes))
		for _, p := range t.plan.Parts {
			final = append(final, *t.votes[p])
		}
		proc := c.Registry.Get(t.req.Proc)
		reply.Output = proc.Output(t.req.Args, final)
	} else {
		c.Aborts++
		killed := false
		for _, v := range t.votes {
			if v.Killed {
				killed = true
			}
		}
		reply.Retryable = killed
		reply.UserAborted = !killed
	}
	ctx.Spend(c.Costs.CoordMessage)
	c.Net.Send(ctx, t.req.Client, reply)
}

// discardDependents drops held speculative results invalidated by an abort:
// everything received from the aborting transaction's partitions whose
// generation predates the bump. The partitions will undo, re-execute and
// resend (§4.2.2).
func (c *Coordinator) discardDependents(t *ctxn) {
	for _, id := range c.order {
		o := c.txns[id]
		if o == nil || o == t {
			continue
		}
		if o.doomed {
			// Aborting regardless; a stale speculative vote cannot change
			// that outcome, and clearing ready would strand the
			// transaction waiting on a dead partition.
			continue
		}
		for p, r := range o.results {
			if r.Speculative && r.Gen < c.gen[p] {
				delete(o.results, p)
				delete(o.votes, p)
				o.ready = false
				c.Discarded++
			}
		}
	}
}
