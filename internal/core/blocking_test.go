package core

import (
	"testing"

	"specdb/internal/msg"
)

func TestBlockingSinglePartitionFastPath(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewBlocking(env)
	e.Fragment(spFrag(1, incrKey("x")))
	requireReplies(t, env, 1)
	r := env.replies[0]
	if !r.Committed || r.Output != 6 {
		t.Fatalf("reply = %+v", r)
	}
	if env.get("x") != 6 {
		t.Fatalf("x = %d", env.get("x"))
	}
	if s := e.Stats(); s.FastPath != 1 || s.Executed != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if len(env.undos) != 0 {
		t.Fatal("fast path left undo state")
	}
}

func TestBlockingUserAbortRollsBack(t *testing.T) {
	env := newFakeEnv(t)
	e := NewBlocking(env)
	e.Fragment(spFragAbortable(1, userAbort()))
	requireReplies(t, env, 1)
	if env.replies[0].Committed || !env.replies[0].UserAborted {
		t.Fatalf("reply = %+v", env.replies[0])
	}
	if _, ok := env.store.Table("kv").Get("scratch"); ok {
		t.Fatal("aborted write persisted")
	}
}

func TestBlockingQueuesBehindMultiPartition(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewBlocking(env)
	// Multi-partition txn arrives and waits for its decision.
	e.Fragment(mpFrag(10, 0, true, 7, writeKey("x", 100)))
	requireResults(t, env, 1)
	if env.results[0].Aborted || env.results[0].Speculative {
		t.Fatalf("vote = %+v", env.results[0])
	}
	// Single-partition txns queue; nothing executes.
	e.Fragment(spFrag(2, incrKey("x")))
	e.Fragment(spFrag(3, incrKey("x")))
	requireReplies(t, env, 0)
	if e.QueueLen() != 2 {
		t.Fatalf("queue = %d", e.QueueLen())
	}
	if env.get("x") != 100 {
		t.Fatalf("x = %d (MP effect must be applied)", env.get("x"))
	}
	// Commit: queue drains in order.
	e.Decision(&msg.Decision{Txn: 10, Commit: true})
	requireReplies(t, env, 2)
	if env.replies[0].Txn != 2 || env.replies[1].Txn != 3 {
		t.Fatal("queue drained out of order")
	}
	if env.get("x") != 102 {
		t.Fatalf("x = %d", env.get("x"))
	}
	if env.decisions != 1 {
		t.Fatalf("decision charges = %d", env.decisions)
	}
}

func TestBlockingAbortUndoesMultiPartition(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewBlocking(env)
	e.Fragment(mpFrag(10, 0, true, 7, writeKey("x", 100)))
	e.Fragment(spFrag(2, incrKey("x")))
	e.Decision(&msg.Decision{Txn: 10, Commit: false})
	if env.get("x") != 6 {
		t.Fatalf("x = %d; abort must restore 5 before the queued increment", env.get("x"))
	}
	requireReplies(t, env, 1)
	if env.replies[0].Output != 6 {
		t.Fatalf("reply = %+v", env.replies[0])
	}
}

func TestBlockingMultiRound(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewBlocking(env)
	e.Fragment(mpFrag(10, 0, false, 7, readKey("x")))
	requireResults(t, env, 1)
	if env.results[0].Output != 5 {
		t.Fatalf("round 0 output = %v", env.results[0].Output)
	}
	// A queued SP txn must not run between rounds.
	e.Fragment(spFrag(2, incrKey("x")))
	e.Fragment(mpFrag(10, 1, true, 7, writeKey("x", 17)))
	requireResults(t, env, 2)
	requireReplies(t, env, 0)
	e.Decision(&msg.Decision{Txn: 10, Commit: true})
	requireReplies(t, env, 1)
	if env.get("x") != 18 {
		t.Fatalf("x = %d", env.get("x"))
	}
}

func TestBlockingQueuedMultiPartitionBecomesActive(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 0)
	e := NewBlocking(env)
	e.Fragment(mpFrag(10, 0, true, 7, incrKey("x")))
	e.Fragment(mpFrag(11, 0, true, 7, incrKey("x"))) // queued
	e.Fragment(spFrag(2, incrKey("x")))              // queued behind
	e.Decision(&msg.Decision{Txn: 10, Commit: true})
	// 11 became active and executed; SP 2 still waits.
	requireResults(t, env, 2)
	requireReplies(t, env, 0)
	e.Decision(&msg.Decision{Txn: 11, Commit: true})
	requireReplies(t, env, 1)
	if env.get("x") != 3 {
		t.Fatalf("x = %d", env.get("x"))
	}
}

func TestBlockingLocalAbortVotesNo(t *testing.T) {
	env := newFakeEnv(t)
	e := NewBlocking(env)
	f := mpFrag(10, 0, true, 7, writeKey("x", 1))
	f.InjectAbort = true
	e.Fragment(f)
	requireResults(t, env, 1)
	if !env.results[0].Aborted {
		t.Fatal("expected no-vote")
	}
	// Coordinator aborts globally.
	e.Decision(&msg.Decision{Txn: 10, Commit: false})
	if _, ok := env.store.Table("kv").Get("x"); ok {
		t.Fatal("injected abort persisted a write")
	}
}

func TestBlockingDecisionMismatchPanics(t *testing.T) {
	env := newFakeEnv(t)
	e := NewBlocking(env)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Decision(&msg.Decision{Txn: 42, Commit: true})
}
