package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specdb/internal/msg"
)

// TestQuickSpeculativeScheduleInvariants drives the speculative engine with
// randomized schedules — interleaved single-partition increments and
// multi-partition transactions whose 2PC outcomes are chosen at random — and
// checks the conservation invariant: the counter's final value equals the
// number of increments whose transactions actually committed, regardless of
// how many cascades and re-executions happened along the way.
func TestQuickSpeculativeScheduleInvariants(t *testing.T) {
	f := func(seed int64, steps []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newFakeEnv(t)
		env.set("x", 0)
		e := NewSpeculative(env)

		nextID := uint64(1)
		var pendingMP []uint64 // MP txns awaiting decisions, FIFO
		committedIncr := 0     // increments known committed
		spOutstanding := map[msg.TxnID]bool{}
		mpCommitted := map[msg.TxnID]bool{}

		decide := func() {
			if len(pendingMP) == 0 {
				return
			}
			id := pendingMP[0]
			pendingMP = pendingMP[1:]
			commit := rng.Intn(4) != 0 // 25% aborts
			if commit {
				mpCommitted[msg.TxnID(id)] = true
			}
			e.Decision(&msg.Decision{Txn: msg.TxnID(id), Commit: commit})
		}

		for _, s := range steps {
			switch s % 3 {
			case 0: // single-partition increment
				id := nextID
				nextID++
				spOutstanding[msg.TxnID(id)] = true
				e.Fragment(spFrag(id, incrKey("x")))
			case 1: // simple multi-partition increment
				id := nextID
				nextID++
				pendingMP = append(pendingMP, id)
				e.Fragment(mpFrag(id, 0, true, 7, incrKey("x")))
			case 2: // deliver the oldest pending decision
				decide()
			}
		}
		for len(pendingMP) > 0 {
			decide()
		}
		// All SP replies must be out now (commit path releases them).
		for _, r := range env.replies {
			if spOutstanding[r.Txn] && r.Committed {
				committedIncr++
				delete(spOutstanding, r.Txn)
			}
		}
		for id := range mpCommitted {
			_ = id
			committedIncr++
		}
		if e.UncommittedLen() != 0 || e.UnexecutedLen() != 0 {
			t.Logf("seed %d: queues not drained", seed)
			return false
		}
		if len(env.undos) != 0 {
			t.Logf("seed %d: leaked undo buffers", seed)
			return false
		}
		if got := env.get("x"); got != committedIncr {
			t.Logf("seed %d: x=%d, committed increments=%d", seed, got, committedIncr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBlockingScheduleInvariants is the same conservation property for
// the blocking engine.
func TestQuickBlockingScheduleInvariants(t *testing.T) {
	f := func(seed int64, steps []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newFakeEnv(t)
		env.set("x", 0)
		e := NewBlocking(env)

		nextID := uint64(1)
		var pendingMP []uint64
		mpCommits := 0

		decide := func() {
			if len(pendingMP) == 0 {
				return
			}
			id := pendingMP[0]
			pendingMP = pendingMP[1:]
			commit := rng.Intn(4) != 0
			if commit {
				mpCommits++
			}
			e.Decision(&msg.Decision{Txn: msg.TxnID(id), Commit: commit})
		}

		spCount := 0
		for _, s := range steps {
			switch s % 3 {
			case 0:
				id := nextID
				nextID++
				spCount++
				e.Fragment(spFrag(id, incrKey("x")))
			case 1:
				id := nextID
				nextID++
				pendingMP = append(pendingMP, id)
				e.Fragment(mpFrag(id, 0, true, 7, incrKey("x")))
			case 2:
				decide()
			}
		}
		for len(pendingMP) > 0 {
			decide()
		}
		// Blocking never aborts SP transactions: all of them commit.
		want := spCount + mpCommits
		if got := env.get("x"); got != want {
			t.Logf("seed %d: x=%d want %d", seed, got, want)
			return false
		}
		return e.QueueLen() == 0 && len(env.undos) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
