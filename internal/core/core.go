// Package core implements the paper's contribution: low-overhead
// concurrency control schemes for single-threaded, partitioned, main-memory
// execution engines.
//
//   - Blocking (§4.1, Figure 2): one transaction at a time; the partition
//     idles during the network stalls of multi-partition transactions.
//   - Speculative execution (§4.2, Figure 3): during the 2PC stall of a
//     finished multi-partition transaction, queued transactions execute
//     speculatively with undo buffers; aborts cascade, commits release.
//   - Locking (§4.3): strict two-phase locking specialized for logical (not
//     physical) concurrency, with a lock-free fast path when no transactions
//     are active, waits-for cycle detection, and distributed-deadlock
//     timeouts.
//
// Two beyond-the-paper schemes from the main-memory literature (Larson et
// al.) live in sibling packages behind the same Engine interface:
// multiversion timestamp ordering (internal/mvcc) and optimistic validation
// (internal/occ).
//
// Engines are pure state machines: all I/O, storage, timing and replication
// effects go through the Env interface provided by the hosting partition
// process (internal/partition), which keeps the schemes directly
// unit-testable.
package core

import (
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/storage"
)

// Scheme names a concurrency control scheme.
type Scheme int

const (
	// SchemeBlocking executes one transaction at a time (§4.1).
	SchemeBlocking Scheme = iota
	// SchemeSpeculative overlaps 2PC stalls with speculative work (§4.2).
	SchemeSpeculative
	// SchemeLocking is single-threaded strict two-phase locking (§4.3).
	SchemeLocking
	// SchemeMVCC is multiversion timestamp ordering (internal/mvcc):
	// read-only transactions read a consistent snapshot and never block or
	// abort; conflicting writes abort the later timestamp.
	SchemeMVCC
	// SchemeOCC is optimistic concurrency control (internal/occ): read/write
	// sets are tracked during execution and validated at commit; validation
	// failure aborts and retries through the client resend path.
	SchemeOCC
)

func (s Scheme) String() string {
	switch s {
	case SchemeBlocking:
		return "blocking"
	case SchemeSpeculative:
		return "speculation"
	case SchemeLocking:
		return "locking"
	case SchemeMVCC:
		return "mvcc"
	case SchemeOCC:
		return "occ"
	}
	return "unknown"
}

// ExecOutcome is the result of running one fragment body.
type ExecOutcome struct {
	Output any
	// Aborted is true after a user abort or an injected abort. The
	// transaction's effects at this partition have already been rolled
	// back when Aborted is true.
	Aborted bool
}

// Env is the environment a concurrency control engine drives. It is
// implemented by the partition process (and by lightweight fakes in tests).
type Env interface {
	// Execute runs f's body against partition storage. withUndo records
	// before-images under f.Txn so the transaction can roll back; locker,
	// when non-nil, receives a Lock call for every row touched (locking
	// scheme only). On a user or injected abort Execute rolls the
	// transaction back before returning.
	Execute(f *msg.Fragment, withUndo bool, locker storage.Locker) ExecOutcome
	// Rollback undoes everything f.Txn has executed at this partition.
	// It is a no-op if the transaction already rolled back.
	Rollback(txn msg.TxnID)
	// Forget releases undo state for a finished transaction.
	Forget(txn msg.TxnID)
	// SendResult returns a fragment result (and, when f.Last, the 2PC
	// vote) to f.Coord. The partition layer may gate it on replication.
	SendResult(f *msg.Fragment, r *msg.FragmentResult)
	// ReplyClient completes a single-partition transaction at f.Client.
	ReplyClient(f *msg.Fragment, reply *msg.ClientReply)
	// After delivers payload to Engine.Timer after d of virtual time.
	After(d sim.Time, payload any)
	// ChargeDecision charges the CPU cost of commit/abort processing.
	ChargeDecision()
}

// Engine is a partition's concurrency control state machine. The partition
// process feeds it arriving fragments, 2PC decisions and timer expirations.
//
// Engines are swappable at quiescent points: when Quiescent reports true the
// engine holds no transaction state, so the hosting partition may retire it
// and hand the partition's store and undo ledger to a freshly constructed
// engine of a different scheme (online adaptive concurrency control, §5.7).
type Engine interface {
	Scheme() Scheme
	Fragment(f *msg.Fragment)
	Decision(d *msg.Decision)
	Timer(payload any)
	Stats() EngineStats
	// Quiescent reports whether the engine holds no transaction state: no
	// active, queued, uncommitted or lock-holding transactions. A quiescent
	// engine will never again touch storage, undo buffers or the network
	// unless a new fragment arrives, so it can be retired and replaced.
	// Stale timer expirations armed by a retired engine are delivered to
	// its successor, which must ignore payloads it does not recognize.
	Quiescent() bool
}

// EngineStats counts scheme-level activity.
type EngineStats struct {
	// Executed counts fragment executions, including re-executions.
	Executed uint64
	// FastPath counts single-partition transactions run with no undo, no
	// locks and no queueing.
	FastPath uint64
	// Speculated counts speculative fragment executions.
	Speculated uint64
	// Redone counts transactions undone and re-executed by cascading
	// aborts (§4.2.1).
	Redone uint64
	// LocalAborts counts user/injected aborts observed at this partition.
	LocalAborts uint64
	// DeadlockKills and TimeoutKills count victims of local cycle
	// detection and of the distributed deadlock timeout (§4.3).
	DeadlockKills uint64
	TimeoutKills  uint64
	// ValidationAborts counts transactions the OCC engine killed because
	// commit-time validation failed (stale read set or conflicting write).
	ValidationAborts uint64
	// TSOrderAborts counts transactions the MVCC engine killed because an
	// access conflicted with a concurrent transaction in timestamp order.
	TSOrderAborts uint64
}

// Add returns the field-wise sum of two stat sets. The hosting partition uses
// it to carry counters across engine swaps, so whole-run statistics survive
// adaptive scheme switches.
func (s EngineStats) Add(o EngineStats) EngineStats {
	return EngineStats{
		Executed:         s.Executed + o.Executed,
		FastPath:         s.FastPath + o.FastPath,
		Speculated:       s.Speculated + o.Speculated,
		Redone:           s.Redone + o.Redone,
		LocalAborts:      s.LocalAborts + o.LocalAborts,
		DeadlockKills:    s.DeadlockKills + o.DeadlockKills,
		TimeoutKills:     s.TimeoutKills + o.TimeoutKills,
		ValidationAborts: s.ValidationAborts + o.ValidationAborts,
		TSOrderAborts:    s.TSOrderAborts + o.TSOrderAborts,
	}
}

// newAbortReply builds the client reply for a user-aborted single-partition
// transaction. User aborts are completed transactions, not failures (§5.3).
func newAbortReply(f *msg.Fragment, out any) *msg.ClientReply {
	return &msg.ClientReply{Txn: f.Txn, Output: out, Committed: false, UserAborted: true}
}

func newCommitReply(f *msg.Fragment, out any) *msg.ClientReply {
	return &msg.ClientReply{Txn: f.Txn, Output: out, Committed: true}
}
