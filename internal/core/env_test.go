package core

import (
	"testing"

	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/storage"
	"specdb/internal/undo"
)

// workFn is the fragment body representation used by core tests: fragments
// carry executable closures so tests need no procedure registry.
type workFn func(v *storage.TxnView) (any, error)

// fakeEnv implements Env against a real store, recording all outputs.
type fakeEnv struct {
	t     *testing.T
	store *storage.Store
	undos map[msg.TxnID]*undo.Buffer

	results   []*msg.FragmentResult
	replies   []*msg.ClientReply
	timers    []timerEntry
	decisions int
}

type timerEntry struct {
	d       sim.Time
	payload any
}

func newFakeEnv(t *testing.T) *fakeEnv {
	s := storage.NewStore()
	s.AddTable(storage.NewBTreeTable("kv"))
	return &fakeEnv{t: t, store: s, undos: make(map[msg.TxnID]*undo.Buffer)}
}

func (e *fakeEnv) Execute(f *msg.Fragment, withUndo bool, locker storage.Locker) ExecOutcome {
	var buf *undo.Buffer
	if withUndo {
		buf = e.undos[f.Txn]
		if buf == nil {
			buf = undo.New()
			e.undos[f.Txn] = buf
		}
	}
	if f.InjectAbort {
		if buf != nil {
			buf.Rollback()
		}
		return ExecOutcome{Aborted: true}
	}
	view := storage.NewTxnView(e.store, buf, locker)
	out, err := f.Work.(workFn)(view)
	if err != nil {
		if buf != nil {
			buf.Rollback()
		}
		return ExecOutcome{Output: out, Aborted: true}
	}
	return ExecOutcome{Output: out}
}

func (e *fakeEnv) Rollback(id msg.TxnID) {
	if buf := e.undos[id]; buf != nil {
		buf.Rollback()
	}
}

func (e *fakeEnv) Forget(id msg.TxnID) { delete(e.undos, id) }

func (e *fakeEnv) SendResult(f *msg.Fragment, r *msg.FragmentResult) {
	e.results = append(e.results, r)
}

func (e *fakeEnv) ReplyClient(f *msg.Fragment, reply *msg.ClientReply) {
	e.replies = append(e.replies, reply)
}

func (e *fakeEnv) After(d sim.Time, payload any) {
	e.timers = append(e.timers, timerEntry{d, payload})
}

func (e *fakeEnv) ChargeDecision() { e.decisions++ }

// get reads a key directly, bypassing concurrency control.
func (e *fakeEnv) get(key string) int {
	v, ok := e.store.Table("kv").Get(key)
	if !ok {
		e.t.Fatalf("key %q missing", key)
	}
	return v.(int)
}

func (e *fakeEnv) set(key string, v int) {
	e.store.Table("kv").Put(key, v)
}

// Fragment builders.

func spFrag(id uint64, fn workFn) *msg.Fragment {
	return &msg.Fragment{Txn: msg.TxnID(id), Proc: "w", Last: true, Work: fn, Client: 99}
}

func spFragAbortable(id uint64, fn workFn) *msg.Fragment {
	f := spFrag(id, fn)
	f.CanAbort = true
	return f
}

func mpFrag(id uint64, round int, last bool, coord sim.ActorID, fn workFn) *msg.Fragment {
	return &msg.Fragment{
		Txn: msg.TxnID(id), Proc: "w", Round: round, Last: last,
		Work: fn, Coord: coord, MultiPartition: true,
	}
}

// Common fragment bodies.

func readKey(key string) workFn {
	return func(v *storage.TxnView) (any, error) {
		val, _ := v.Get("kv", key)
		return val, nil
	}
}

func writeKey(key string, val int) workFn {
	return func(v *storage.TxnView) (any, error) {
		v.Put("kv", key, val)
		return val, nil
	}
}

func incrKey(key string) workFn {
	return func(v *storage.TxnView) (any, error) {
		cur, _ := v.GetForUpdate("kv", key)
		n := cur.(int) + 1
		v.Put("kv", key, n)
		return n, nil
	}
}

func userAbort() workFn {
	return func(v *storage.TxnView) (any, error) {
		v.Put("kv", "scratch", -1)
		return nil, errTestAbort
	}
}

var errTestAbort = errTest("user abort")

type errTest string

func (e errTest) Error() string { return string(e) }

// assertion helpers

func requireReplies(t *testing.T, env *fakeEnv, n int) {
	t.Helper()
	if len(env.replies) != n {
		t.Fatalf("replies = %d, want %d (%+v)", len(env.replies), n, env.replies)
	}
}

func requireResults(t *testing.T, env *fakeEnv, n int) {
	t.Helper()
	if len(env.results) != n {
		t.Fatalf("results = %d, want %d", len(env.results), n)
	}
}
