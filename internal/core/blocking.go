package core

import (
	"fmt"

	"specdb/internal/msg"
)

// BlockingEngine implements §4.1 (Figure 2): the partition executes one
// transaction at a time. Single-partition transactions run to completion on
// arrival when the partition is idle; a multi-partition transaction occupies
// the partition from its first fragment until its 2PC decision, and every
// other transaction queues behind it.
type BlockingEngine struct {
	env Env
	// active is the multi-partition transaction currently occupying the
	// partition, or nil.
	active *blockedTxn
	// queue holds round-0 fragments awaiting the active transaction.
	// Invariant: empty whenever active == nil at event boundaries.
	queue []*msg.Fragment
	stats EngineStats
}

type blockedTxn struct {
	id   msg.TxnID
	frag *msg.Fragment
}

// NewBlocking returns a blocking engine bound to env.
func NewBlocking(env Env) *BlockingEngine {
	return &BlockingEngine{env: env}
}

// Scheme identifies the engine.
func (e *BlockingEngine) Scheme() Scheme { return SchemeBlocking }

// Stats returns activity counters.
func (e *BlockingEngine) Stats() EngineStats { return e.stats }

// QueueLen reports the number of waiting fragments (for tests).
func (e *BlockingEngine) QueueLen() int { return len(e.queue) }

// Quiescent reports whether no transaction occupies the partition and the
// queue is empty.
func (e *BlockingEngine) Quiescent() bool { return e.active == nil && len(e.queue) == 0 }

// Fragment handles an arriving transaction fragment per Figure 2.
func (e *BlockingEngine) Fragment(f *msg.Fragment) {
	if e.active != nil {
		if f.Txn == e.active.id {
			// Continues the active multi-partition transaction.
			e.execMultiFragment(e.active, f)
			return
		}
		e.queue = append(e.queue, f)
		return
	}
	e.start(f)
}

// start runs a fragment when the partition is idle.
func (e *BlockingEngine) start(f *msg.Fragment) {
	if !f.MultiPartition {
		e.execSingle(f)
		return
	}
	e.active = &blockedTxn{id: f.Txn, frag: f}
	e.execMultiFragment(e.active, f)
}

// execSingle runs a single-partition transaction to completion: no undo
// buffer unless a user abort is possible, commit immediately (§3.2).
func (e *BlockingEngine) execSingle(f *msg.Fragment) {
	out := e.env.Execute(f, f.CanAbort, nil)
	e.stats.Executed++
	e.stats.FastPath++
	e.env.Forget(f.Txn)
	if out.Aborted {
		e.stats.LocalAborts++
		e.env.ReplyClient(f, newAbortReply(f, out.Output))
		return
	}
	e.env.ReplyClient(f, newCommitReply(f, out.Output))
}

// execMultiFragment executes one fragment of the active multi-partition
// transaction with an undo buffer and returns the result (the 2PC vote when
// f.Last).
func (e *BlockingEngine) execMultiFragment(t *blockedTxn, f *msg.Fragment) {
	t.frag = f
	out := e.env.Execute(f, true, nil)
	e.stats.Executed++
	if out.Aborted {
		e.stats.LocalAborts++
	}
	e.env.SendResult(f, &msg.FragmentResult{
		Txn:       f.Txn,
		Round:     f.Round,
		Partition: f.Partition,
		Output:    out.Output,
		Aborted:   out.Aborted,
	})
}

// Decision finalizes the active multi-partition transaction and drains the
// queue.
func (e *BlockingEngine) Decision(d *msg.Decision) {
	e.env.ChargeDecision()
	if e.active == nil || e.active.id != d.Txn {
		if d.Commit {
			panic(fmt.Sprintf("blocking: commit for %d but active is %+v", d.Txn, e.active))
		}
		// An abort may target a transaction this partition never started:
		// when a participant crashes, the coordinator aborts its in-flight
		// transactions, and this partition may still hold their fragments
		// queued behind the active transaction (or have none at all).
		e.dropQueued(d.Txn)
		return
	}
	if d.Commit {
		e.env.Forget(d.Txn)
	} else {
		e.env.Rollback(d.Txn)
		e.env.Forget(d.Txn)
	}
	e.active = nil
	e.pump()
}

// dropQueued discards every queued fragment of an aborted-before-execution
// transaction (participant-failure 2PC abort).
func (e *BlockingEngine) dropQueued(id msg.TxnID) {
	kept := e.queue[:0]
	for _, f := range e.queue {
		if f.Txn != id {
			kept = append(kept, f)
		}
	}
	e.queue = kept
	e.env.Forget(id)
}

// pump executes queued transactions until a multi-partition transaction
// becomes active or the queue empties.
func (e *BlockingEngine) pump() {
	for len(e.queue) > 0 && e.active == nil {
		f := e.queue[0]
		e.queue = e.queue[1:]
		e.start(f)
	}
}

// Timer is unused by the blocking scheme.
func (e *BlockingEngine) Timer(payload any) {}
