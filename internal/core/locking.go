package core

import (
	"errors"
	"fmt"
	"sort"

	"specdb/internal/locks"
	"specdb/internal/msg"
	"specdb/internal/sim"
)

// LockConfig tunes the locking engine.
type LockConfig struct {
	// DeadlockTimeout bounds how long a blocked multi-partition
	// transaction waits before being killed, resolving distributed
	// deadlocks (§4.3). Zero selects a default.
	DeadlockTimeout sim.Time
	// AlwaysLock disables the lock-free fast path, for the ablation
	// discussed with Figure 4 ("If we force locks to always be
	// acquired...").
	AlwaysLock bool
}

// DefaultDeadlockTimeout is used when LockConfig.DeadlockTimeout is zero.
const DefaultDeadlockTimeout = 2 * sim.Millisecond

// LockEngine implements §4.3: strict two-phase locking specialized for a
// single-threaded partition. When no transactions are active, an arriving
// single-partition transaction runs without locks or undo, exactly like the
// other schemes' fast path. Otherwise transactions acquire row locks as they
// access data and suspend on conflict.
//
// Suspension uses fibers: each executing fragment runs on its own goroutine
// with strict synchronous handoff (engine and fiber are never runnable
// simultaneously), so execution can block mid-fragment while the engine
// stays deterministic. Local deadlocks are detected by waits-for cycle
// search at block time, preferring single-partition victims; distributed
// deadlocks fall to a timeout.
type LockEngine struct {
	env    Env
	cfg    LockConfig
	lm     *locks.Manager
	active map[msg.TxnID]*ltxn
	stats  EngineStats
}

type ltxn struct {
	id       msg.TxnID
	mp       bool
	frag     *msg.Fragment
	fiber    *fiber
	blocked  bool
	finished bool // voted (last fragment executed)
	// waitEpoch increments on every suspension so that a stale timeout
	// (armed for an earlier wait that was granted) is ignored.
	waitEpoch int
}

// NewLocking returns a locking engine bound to env.
func NewLocking(env Env, cfg LockConfig) *LockEngine {
	if cfg.DeadlockTimeout == 0 {
		cfg.DeadlockTimeout = DefaultDeadlockTimeout
	}
	return &LockEngine{
		env:    env,
		cfg:    cfg,
		lm:     locks.NewManager(),
		active: make(map[msg.TxnID]*ltxn),
	}
}

// Scheme identifies the engine.
func (e *LockEngine) Scheme() Scheme { return SchemeLocking }

// Stats returns activity counters.
func (e *LockEngine) Stats() EngineStats { return e.stats }

// LockStats exposes the lock manager's counters (§5.6 profiling).
func (e *LockEngine) LockStats() locks.Stats { return e.lm.Stats() }

// ActiveCount reports transactions currently holding the partition.
func (e *LockEngine) ActiveCount() int { return len(e.active) }

// Quiescent reports whether no transaction is active; with strict 2PL that
// also means every lock has been released. Stale deadlock timeouts may still
// be scheduled, but Timer ignores expirations for unknown transactions.
func (e *LockEngine) Quiescent() bool { return len(e.active) == 0 }

// Fragment handles an arriving fragment.
func (e *LockEngine) Fragment(f *msg.Fragment) {
	if lt, ok := e.active[f.Txn]; ok {
		// A later round of an active multi-partition transaction.
		e.runFragment(lt, f)
		return
	}
	if len(e.active) == 0 && !f.MultiPartition && !e.cfg.AlwaysLock {
		// Lock-free fast path (§4.3): no active transactions can
		// conflict, and the transaction runs to completion before the
		// partition does anything else.
		out := e.env.Execute(f, f.CanAbort, nil)
		e.stats.Executed++
		e.stats.FastPath++
		e.env.Forget(f.Txn)
		if out.Aborted {
			e.stats.LocalAborts++
			e.env.ReplyClient(f, newAbortReply(f, out.Output))
		} else {
			e.env.ReplyClient(f, newCommitReply(f, out.Output))
		}
		return
	}
	lt := &ltxn{id: f.Txn, mp: f.MultiPartition, frag: f}
	e.active[f.Txn] = lt
	e.runFragment(lt, f)
}

// Decision finalizes a multi-partition transaction: strict 2PL releases all
// its locks, waking waiters.
func (e *LockEngine) Decision(d *msg.Decision) {
	e.env.ChargeDecision()
	lt, ok := e.active[d.Txn]
	if !ok {
		// The transaction was already killed here (deadlock victim
		// whose no-vote triggered this abort); nothing to do.
		return
	}
	if lt.fiber != nil {
		// An abort decided elsewhere (another participant voted no)
		// can arrive while our fragment is still blocked on a lock:
		// unwind the fiber first.
		if d.Commit || !lt.blocked {
			panic(fmt.Sprintf("locking: decision commit=%v for %d while fragment in flight", d.Commit, d.Txn))
		}
		lt.blocked = false
		lt.fiber.resume <- false
		if y := <-lt.fiber.yield; !y.done || y.err != errKilled {
			panic("locking: fiber did not unwind on abort decision")
		}
		lt.fiber = nil
	}
	if d.Commit {
		e.env.Forget(d.Txn)
	} else {
		e.env.Rollback(d.Txn)
		e.env.Forget(d.Txn)
	}
	delete(e.active, d.Txn)
	e.resume(e.lm.Release(d.Txn))
}

// timeoutMsg asks the engine to check a blocked transaction.
type timeoutMsg struct {
	txn   msg.TxnID
	epoch int
}

// Timer handles distributed-deadlock timeouts.
func (e *LockEngine) Timer(payload any) {
	tm, ok := payload.(timeoutMsg)
	if !ok {
		return
	}
	lt, ok := e.active[tm.txn]
	if !ok || !lt.blocked || lt.waitEpoch != tm.epoch {
		return
	}
	e.stats.TimeoutKills++
	e.kill(lt)
}

// errKilled marks a fragment terminated as a deadlock or timeout victim.
var errKilled = errors.New("locking: killed")

// killSentinel is the panic value used to unwind a victim's fiber.
type killSentinel struct{}

// fiber is a suspended fragment execution. Handoff is strictly synchronous:
// the engine blocks on yield whenever the fiber is runnable, and the fiber
// blocks on resume whenever the engine is runnable.
type fiber struct {
	resume chan bool // engine → fiber: true = lock granted, false = killed
	yield  chan fiberYield
}

type fiberYield struct {
	done bool
	out  any
	err  error
}

// fiberLocker implements storage.Locker for a fragment running on a fiber.
type fiberLocker struct {
	eng *LockEngine
	lt  *ltxn
}

// Lock acquires the row lock, suspending the fiber on conflict. The handoff
// guarantees the lock manager is only touched while the engine goroutine is
// parked, so there is no physical concurrency — matching the paper's
// latch-free single-threaded lock manager.
func (l *fiberLocker) Lock(table, key string, exclusive bool) {
	mode := locks.Shared
	if exclusive {
		mode = locks.Exclusive
	}
	l.acquire(locks.Key{Table: table, Row: key}, mode)
}

// LockRange acquires shared gap coverage of [lo, hi) for a scan, suspending
// the fiber like Lock when a writer holds or wants a key inside the range.
// Strict 2PL holds the range until commit, so no writer can slip a phantom
// into a scanned range before the scanner finishes.
func (l *fiberLocker) LockRange(table, lo, hi string) {
	l.acquire(locks.Key{Table: table, Row: lo, Hi: hi, IsRange: true}, locks.Shared)
}

func (l *fiberLocker) acquire(k locks.Key, mode locks.Mode) {
	if l.eng.lm.Acquire(l.lt.id, k, mode) {
		return
	}
	l.lt.fiber.yield <- fiberYield{done: false}
	if granted := <-l.lt.fiber.resume; !granted {
		panic(killSentinel{})
	}
}

// runFragment starts f's body on a fresh fiber and services it until it
// completes or suspends.
func (e *LockEngine) runFragment(lt *ltxn, f *msg.Fragment) {
	lt.frag = f
	fb := &fiber{resume: make(chan bool), yield: make(chan fiberYield)}
	lt.fiber = fb
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSentinel); isKill {
					fb.yield <- fiberYield{done: true, err: errKilled}
					return
				}
				panic(r)
			}
		}()
		out := e.env.Execute(f, true, &fiberLocker{eng: e, lt: lt})
		var err error
		if out.Aborted {
			err = errUserAborted
		}
		fb.yield <- fiberYield{done: true, out: out.Output, err: err}
	}()
	e.service(lt)
}

var errUserAborted = errors.New("locking: user aborted")

// service waits for lt's fiber to yield and reacts.
func (e *LockEngine) service(lt *ltxn) {
	y := <-lt.fiber.yield
	if !y.done {
		// Suspended on a lock conflict.
		lt.blocked = true
		lt.waitEpoch++
		if cycle := e.lm.FindCycle(lt.id); cycle != nil {
			e.stats.DeadlockKills++
			e.kill(e.chooseVictim(cycle))
			return
		}
		if lt.mp {
			e.env.After(e.cfg.DeadlockTimeout, timeoutMsg{txn: lt.id, epoch: lt.waitEpoch})
		}
		return
	}
	lt.fiber = nil
	switch y.err {
	case nil:
		e.fragmentCommitted(lt, y.out)
	case errUserAborted:
		e.stats.Executed++
		e.stats.LocalAborts++
		e.finishAborted(lt, y.out, false)
	case errKilled:
		// kill() completes the cleanup.
	default:
		panic(y.err)
	}
}

// fragmentCommitted handles a fragment body that ran to completion.
func (e *LockEngine) fragmentCommitted(lt *ltxn, out any) {
	e.stats.Executed++
	f := lt.frag
	if lt.mp {
		if f.Last {
			lt.finished = true
		}
		// Locks are held until the 2PC decision (strict 2PL).
		e.env.SendResult(f, &msg.FragmentResult{
			Txn:       f.Txn,
			Round:     f.Round,
			Partition: f.Partition,
			Output:    out,
		})
		return
	}
	// Single-partition: the transaction is complete — commit, release.
	e.env.Forget(lt.id)
	delete(e.active, lt.id)
	grants := e.lm.Release(lt.id)
	e.env.ReplyClient(f, newCommitReply(f, out))
	e.resume(grants)
}

// finishAborted cleans up a transaction aborted during execution (user abort)
// or by a kill. Execute already rolled back its effects for user aborts;
// kills roll back here.
func (e *LockEngine) finishAborted(lt *ltxn, out any, killed bool) {
	e.env.Rollback(lt.id)
	e.env.Forget(lt.id)
	delete(e.active, lt.id)
	grants := e.lm.Release(lt.id)
	f := lt.frag
	if lt.mp {
		// Vote no; the coordinator aborts the other participants.
		e.env.SendResult(f, &msg.FragmentResult{
			Txn:       f.Txn,
			Round:     f.Round,
			Partition: f.Partition,
			Output:    out,
			Aborted:   true,
			Killed:    killed,
		})
	} else {
		reply := newAbortReply(f, out)
		reply.UserAborted = !killed
		reply.Retryable = killed
		e.env.ReplyClient(f, reply)
	}
	e.resume(grants)
}

// kill terminates a blocked victim: unwind its fiber, roll back, release its
// locks and waits, and tell its coordinator/client.
func (e *LockEngine) kill(lt *ltxn) {
	if !lt.blocked {
		panic("locking: kill of non-blocked transaction")
	}
	lt.blocked = false
	lt.fiber.resume <- false
	y := <-lt.fiber.yield
	if !y.done || y.err != errKilled {
		panic("locking: victim fiber did not unwind")
	}
	lt.fiber = nil
	e.finishAborted(lt, nil, true)
}

// resume restarts fibers whose lock requests were just granted.
func (e *LockEngine) resume(grants []locks.Grant) {
	for _, g := range grants {
		lt, ok := e.active[g.Txn]
		if !ok || !lt.blocked {
			continue
		}
		lt.blocked = false
		lt.fiber.resume <- true
		e.service(lt)
	}
}

// chooseVictim picks which member of a deadlock cycle to kill: prefer
// single-partition transactions, which waste less work when re-executed
// (§4.3); fall back to the transaction with the fewest held locks.
func (e *LockEngine) chooseVictim(cycle []msg.TxnID) *ltxn {
	var candidates []*ltxn
	for _, id := range cycle {
		if lt, ok := e.active[id]; ok && lt.blocked {
			candidates = append(candidates, lt)
		}
	}
	if len(candidates) == 0 {
		panic("locking: deadlock cycle with no blocked members")
	}
	sort.Slice(candidates, func(i, j int) bool {
		ci, cj := candidates[i], candidates[j]
		if ci.mp != cj.mp {
			return !ci.mp // single-partition first
		}
		hi, hj := e.lm.HeldCount(ci.id), e.lm.HeldCount(cj.id)
		if hi != hj {
			return hi < hj
		}
		return ci.id < cj.id
	})
	return candidates[0]
}
