package core

import (
	"fmt"

	"specdb/internal/msg"
)

// SpecEngine implements speculative concurrency control (§4.2, Figure 3).
//
// The partition keeps two queues: unexecuted fragments, and an uncommitted
// queue of executed transactions awaiting 2PC outcomes whose head is the only
// non-speculative entry. Once the head has executed its last local fragment,
// queued transactions execute speculatively with undo buffers:
//
//   - Single-partition transactions execute and their replies are held until
//     every earlier uncommitted transaction commits (local speculation,
//     §4.2.1), because clients are unaware of the speculation.
//   - Multi-partition fragments from the same coordinator execute and their
//     results are returned immediately, tagged with a dependency on the
//     previous multi-partition transaction, letting the coordinator overlap
//     2PC for a chain of simple multi-partition transactions (§4.2.2).
//
// If the head aborts, every speculative transaction is undone in reverse
// order and requeued for re-execution in the original order — speculation
// assumes all transactions conflict, trading occasional wasted work for zero
// read/write-set tracking.
type SpecEngine struct {
	env Env
	cfg SpecConfig
	// unexecuted holds fragments of transactions not yet started.
	unexecuted []*msg.Fragment
	// unc is the uncommitted transaction queue.
	unc   []*specTxn
	stats EngineStats
}

type specTxn struct {
	id   msg.TxnID
	frag *msg.Fragment // most recent fragment (round 0 unless head)
	mp   bool
	// finished means the last local fragment has executed; only then may
	// later transactions speculate (§4.2).
	finished bool
	// speculative is cleared when the transaction reaches the head of the
	// queue ("the head ... is always a non-speculative transaction").
	speculative bool
	// dependsOn is the previous multi-partition transaction this one's
	// speculative results are conditioned on.
	dependsOn msg.TxnID
	// heldReply buffers a speculated single-partition transaction's reply
	// until it is known to be correct.
	heldReply *msg.ClientReply
	// abortedLocally records a user/injected abort during execution; its
	// effects were rolled back immediately.
	abortedLocally bool
}

// SpecConfig tunes the speculative engine.
type SpecConfig struct {
	// LocalOnly restricts the engine to local speculation (§4.2.1):
	// multi-partition transactions are never speculated, only queued.
	// This is the ablation behind Figure 10's "Local Spec" curves.
	LocalOnly bool
}

// NewSpeculative returns a speculative engine bound to env.
func NewSpeculative(env Env) *SpecEngine {
	return &SpecEngine{env: env}
}

// NewSpeculativeWith returns a speculative engine with explicit options.
func NewSpeculativeWith(env Env, cfg SpecConfig) *SpecEngine {
	return &SpecEngine{env: env, cfg: cfg}
}

// Scheme identifies the engine.
func (e *SpecEngine) Scheme() Scheme { return SchemeSpeculative }

// Stats returns activity counters.
func (e *SpecEngine) Stats() EngineStats { return e.stats }

// UncommittedLen and UnexecutedLen expose queue depths for tests.
func (e *SpecEngine) UncommittedLen() int { return len(e.unc) }
func (e *SpecEngine) UnexecutedLen() int  { return len(e.unexecuted) }

// Quiescent reports whether both the uncommitted and unexecuted queues are
// empty.
func (e *SpecEngine) Quiescent() bool { return len(e.unc) == 0 && len(e.unexecuted) == 0 }

func (e *SpecEngine) find(id msg.TxnID) *specTxn {
	for _, u := range e.unc {
		if u.id == id {
			return u
		}
	}
	return nil
}

// Fragment handles an arriving fragment per Figure 3.
func (e *SpecEngine) Fragment(f *msg.Fragment) {
	if u := e.find(f.Txn); u != nil {
		// A later round of an uncommitted multi-partition transaction.
		e.execContinue(u, f)
		if u.finished {
			e.pump()
		}
		return
	}
	if len(e.unc) == 0 && len(e.unexecuted) == 0 {
		// No active transactions.
		e.startFresh(f)
		return
	}
	e.unexecuted = append(e.unexecuted, f)
	e.pump()
}

// startFresh runs a fragment when the partition has no active transactions.
func (e *SpecEngine) startFresh(f *msg.Fragment) {
	if !f.MultiPartition {
		// Fast path: no undo buffer unless a user abort is possible.
		out := e.env.Execute(f, f.CanAbort, nil)
		e.stats.Executed++
		e.stats.FastPath++
		e.env.Forget(f.Txn)
		if out.Aborted {
			e.stats.LocalAborts++
			e.env.ReplyClient(f, newAbortReply(f, out.Output))
		} else {
			e.env.ReplyClient(f, newCommitReply(f, out.Output))
		}
		return
	}
	u := &specTxn{id: f.Txn, frag: f, mp: true}
	e.unc = append(e.unc, u)
	e.execContinue(u, f)
}

// execContinue executes a fragment of an uncommitted transaction and sends
// its result (the vote, when last).
func (e *SpecEngine) execContinue(u *specTxn, f *msg.Fragment) {
	u.frag = f
	out := e.env.Execute(f, true, nil)
	e.stats.Executed++
	if out.Aborted {
		u.abortedLocally = true
		e.stats.LocalAborts++
	}
	if f.Last {
		u.finished = true
	}
	r := &msg.FragmentResult{
		Txn:       f.Txn,
		Round:     f.Round,
		Partition: f.Partition,
		Output:    out.Output,
		Aborted:   out.Aborted,
	}
	if u.speculative {
		r.Speculative = true
		r.DependsOn = u.dependsOn
	}
	e.env.SendResult(f, r)
}

// pump speculates queued transactions while permitted (Figure 3's
// "speculate queued transactions" / "execute/speculate queued transactions").
func (e *SpecEngine) pump() {
	for len(e.unexecuted) > 0 {
		f := e.unexecuted[0]
		if len(e.unc) == 0 {
			// Queue drained back to non-speculative execution.
			e.unexecuted = e.unexecuted[1:]
			e.startFresh(f)
			continue
		}
		tail := e.unc[len(e.unc)-1]
		if !tail.finished {
			return
		}
		if f.MultiPartition && (e.cfg.LocalOnly || !e.sameCoordinator(f)) {
			// Multi-partition speculation requires one coordinator
			// aware of the whole chain (§4.2.2), and is disabled
			// entirely under local-only speculation (§4.2.1).
			return
		}
		e.unexecuted = e.unexecuted[1:]
		e.speculate(f)
	}
}

// sameCoordinator reports whether every uncommitted multi-partition
// transaction shares f's coordinator.
func (e *SpecEngine) sameCoordinator(f *msg.Fragment) bool {
	for _, u := range e.unc {
		if u.mp && u.frag.Coord != f.Coord {
			return false
		}
	}
	return true
}

// lastMP returns the most recent multi-partition transaction in the
// uncommitted queue. The queue is never empty here: speculation only happens
// behind an uncommitted multi-partition head.
func (e *SpecEngine) lastMP() *specTxn {
	for i := len(e.unc) - 1; i >= 0; i-- {
		if e.unc[i].mp {
			return e.unc[i]
		}
	}
	panic("speculation: uncommitted queue has no multi-partition transaction")
}

// speculate executes f speculatively with an undo buffer.
func (e *SpecEngine) speculate(f *msg.Fragment) {
	dep := e.lastMP()
	u := &specTxn{
		id:          f.Txn,
		frag:        f,
		mp:          f.MultiPartition,
		speculative: true,
		dependsOn:   dep.id,
	}
	out := e.env.Execute(f, true, nil)
	e.stats.Executed++
	e.stats.Speculated++
	if out.Aborted {
		u.abortedLocally = true
		e.stats.LocalAborts++
	}
	u.finished = f.Last
	e.unc = append(e.unc, u)
	if u.mp {
		// Same coordinator: expose the speculative result immediately,
		// tagged with its dependency (§4.2.2).
		e.env.SendResult(f, &msg.FragmentResult{
			Txn:         f.Txn,
			Round:       f.Round,
			Partition:   f.Partition,
			Output:      out.Output,
			Aborted:     out.Aborted,
			Speculative: true,
			DependsOn:   u.dependsOn,
		})
		return
	}
	// Single-partition: the client is unaware of speculation, so the
	// reply is buffered until all earlier transactions commit (§4.2.1).
	if out.Aborted {
		u.heldReply = newAbortReply(f, out.Output)
	} else {
		u.heldReply = newCommitReply(f, out.Output)
	}
}

// Decision applies a 2PC outcome. Decisions arrive in global order, so they
// always target the head of the uncommitted queue — except for participant-
// failure aborts, which may reach this partition before it ever executed the
// transaction.
func (e *SpecEngine) Decision(d *msg.Decision) {
	e.env.ChargeDecision()
	if len(e.unc) == 0 || e.unc[0].id != d.Txn {
		if d.Commit {
			panic(fmt.Sprintf("speculation: commit for %d does not match head", d.Txn))
		}
		if u := e.find(d.Txn); u != nil {
			panic(fmt.Sprintf("speculation: abort for uncommitted non-head %d (ordering violated)", d.Txn))
		}
		// Failover abort for a transaction still waiting in the unexecuted
		// queue (or never seen at all): discard its fragments.
		e.dropUnexecuted(d.Txn)
		return
	}
	if d.Commit {
		e.commitHead()
	} else {
		e.abortHead()
	}
	e.pump()
}

// dropUnexecuted discards every unexecuted fragment of an aborted-before-
// execution transaction (participant-failure 2PC abort), then undoes and
// re-executes the uncommitted queue. The re-execution is not optional: the
// abort bumped the coordinator's generation for this partition, so any
// speculative result sent before it may have been discarded — and unlike a
// normal abort (whose victim executed here, so its decision triggers the
// abortHead cascade), dropping a never-executed fragment would otherwise
// resend nothing, deadlocking the coordinator (§4.2.2's "undo, re-execute
// and resend" contract).
func (e *SpecEngine) dropUnexecuted(id msg.TxnID) {
	kept := e.unexecuted[:0]
	for _, f := range e.unexecuted {
		if f.Txn != id {
			kept = append(kept, f)
		}
	}
	e.unexecuted = kept
	e.env.Forget(id)
	low := 0
	if len(e.unc) > 0 && e.unc[0].frag.Round > 0 {
		// A mid-round head keeps its place: its current-round results are
		// non-speculative (round advancement implies its dependencies
		// committed and it executed as head), so nothing of its round was
		// discarded — and only its latest fragment is requeueable anyway.
		low = 1
	}
	for i := len(e.unc) - 1; i >= low; i-- {
		u := e.unc[i]
		e.env.Rollback(u.id)
		e.env.Forget(u.id)
		e.unexecuted = append([]*msg.Fragment{u.frag}, e.unexecuted...)
		e.stats.Redone++
	}
	e.unc = e.unc[:low]
	e.pump()
}

// commitHead commits the head and releases speculated single-partition
// transactions up to the next multi-partition one, which becomes the new
// non-speculative head.
func (e *SpecEngine) commitHead() {
	head := e.unc[0]
	e.unc = e.unc[1:]
	e.env.Forget(head.id)
	for len(e.unc) > 0 && !e.unc[0].mp {
		u := e.unc[0]
		e.unc = e.unc[1:]
		e.env.Forget(u.id)
		e.env.ReplyClient(u.frag, u.heldReply)
	}
	if len(e.unc) > 0 {
		e.unc[0].speculative = false
	}
}

// abortHead rolls back the head and every speculative transaction, requeueing
// the speculative ones for re-execution in their original order (§4.2.1).
func (e *SpecEngine) abortHead() {
	for i := len(e.unc) - 1; i >= 1; i-- {
		u := e.unc[i]
		e.env.Rollback(u.id)
		e.env.Forget(u.id)
		// Push onto the head of the unexecuted queue; walking from the
		// tail preserves original order.
		e.unexecuted = append([]*msg.Fragment{u.frag}, e.unexecuted...)
		e.stats.Redone++
	}
	head := e.unc[0]
	e.env.Rollback(head.id)
	e.env.Forget(head.id)
	e.unc = e.unc[:0]
}

// Timer is unused by the speculative scheme.
func (e *SpecEngine) Timer(payload any) {}
