package core

import (
	"testing"

	"specdb/internal/msg"
	"specdb/internal/storage"
)

func TestLockingFastPathNoLocks(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewLocking(env, LockConfig{})
	e.Fragment(spFrag(1, incrKey("x")))
	requireReplies(t, env, 1)
	if !env.replies[0].Committed || env.replies[0].Output != 6 {
		t.Fatalf("reply = %+v", env.replies[0])
	}
	if s := e.LockStats(); s.Acquires != 0 {
		t.Fatalf("fast path acquired %d locks", s.Acquires)
	}
	if e.Stats().FastPath != 1 {
		t.Fatal("fast path not counted")
	}
}

func TestLockingAlwaysLockDisablesFastPath(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewLocking(env, LockConfig{AlwaysLock: true})
	e.Fragment(spFrag(1, incrKey("x")))
	requireReplies(t, env, 1)
	if s := e.LockStats(); s.Acquires == 0 {
		t.Fatal("AlwaysLock did not acquire locks")
	}
	if e.Stats().FastPath != 0 {
		t.Fatal("fast path used despite AlwaysLock")
	}
	if e.ActiveCount() != 0 {
		t.Fatal("transaction leaked")
	}
}

func TestLockingSPDuringMPAcquiresLocks(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	env.set("y", 1)
	e := NewLocking(env, LockConfig{})
	// MP txn holds x and stalls awaiting decision.
	e.Fragment(mpFrag(1, 0, true, 7, incrKey("x")))
	requireResults(t, env, 1)
	// Non-conflicting SP txn runs concurrently with locks.
	e.Fragment(spFrag(2, incrKey("y")))
	requireReplies(t, env, 1)
	if env.replies[0].Output != 2 {
		t.Fatalf("y increment = %+v", env.replies[0])
	}
	if s := e.LockStats(); s.Acquires == 0 {
		t.Fatal("no locks acquired while MP active")
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if e.ActiveCount() != 0 {
		t.Fatal("active transactions leaked")
	}
}

func TestLockingConflictBlocksUntilCommit(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, true, 7, writeKey("x", 100)))
	// Conflicting SP txn blocks mid-execution.
	e.Fragment(spFrag(2, incrKey("x")))
	requireReplies(t, env, 0)
	// Commit of the MP txn releases the lock; the SP txn resumes, sees
	// the committed value, and replies.
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	requireReplies(t, env, 1)
	if env.replies[0].Output != 101 {
		t.Fatalf("reply = %+v; SP must read committed x=100", env.replies[0])
	}
}

func TestLockingConflictSeesRollbackOnAbort(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, true, 7, writeKey("x", 100)))
	e.Fragment(spFrag(2, incrKey("x")))
	e.Decision(&msg.Decision{Txn: 1, Commit: false})
	requireReplies(t, env, 1)
	if env.replies[0].Output != 6 {
		t.Fatalf("reply = %+v; SP must read rolled-back x=5", env.replies[0])
	}
}

// twoStepWork writes k1 then k2, giving interleavings that can deadlock when
// run as two rounds.
func lockStep(k string, val int) workFn {
	return writeKey(k, val)
}

func TestLockingLocalDeadlockPrefersSPVictim(t *testing.T) {
	env := newFakeEnv(t)
	env.set("a", 0)
	env.set("b", 0)
	e := NewLocking(env, LockConfig{})
	// MP txn 1 takes a in round 0 (more rounds coming).
	e.Fragment(mpFrag(1, 0, false, 7, lockStep("a", 1)))
	// SP txn 2 takes b, then wants a: blocks (no cycle yet).
	e.Fragment(spFrag(2, func(v *storage.TxnView) (any, error) {
		v.Put("kv", "b", 2)
		v.Put("kv", "a", 2)
		return nil, nil
	}))
	requireReplies(t, env, 0)
	// MP txn 1 round 1 wants b: cycle {1,2}. SP txn 2 is the victim.
	e.Fragment(mpFrag(1, 1, true, 7, lockStep("b", 1)))
	requireReplies(t, env, 1)
	if !env.replies[0].Retryable || env.replies[0].Committed {
		t.Fatalf("victim reply = %+v", env.replies[0])
	}
	if e.Stats().DeadlockKills != 1 {
		t.Fatalf("kills = %d", e.Stats().DeadlockKills)
	}
	// MP txn 1 proceeded after the kill and voted.
	requireResults(t, env, 2)
	if env.results[1].Aborted {
		t.Fatal("MP txn should have survived")
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if env.get("a") != 1 || env.get("b") != 1 {
		t.Fatalf("a=%d b=%d", env.get("a"), env.get("b"))
	}
	// The victim's writes were rolled back.
	if e.ActiveCount() != 0 {
		t.Fatal("leaked active transactions")
	}
}

func TestLockingMPMPDeadlockKillsOne(t *testing.T) {
	env := newFakeEnv(t)
	env.set("a", 0)
	env.set("b", 0)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, false, 7, lockStep("a", 1)))
	e.Fragment(mpFrag(2, 0, false, 7, lockStep("b", 2)))
	e.Fragment(mpFrag(1, 1, true, 7, lockStep("b", 1))) // 1 waits on 2
	requireResults(t, env, 2)
	e.Fragment(mpFrag(2, 1, true, 7, lockStep("a", 2))) // cycle
	if e.Stats().DeadlockKills != 1 {
		t.Fatalf("kills = %d", e.Stats().DeadlockKills)
	}
	// One of them voted abort; the other completed its fragment.
	aborts, oks := 0, 0
	for _, r := range env.results[2:] {
		if r.Aborted {
			aborts++
		} else {
			oks++
		}
	}
	if aborts != 1 || oks != 1 {
		t.Fatalf("aborts=%d oks=%d results=%+v", aborts, oks, env.results)
	}
}

func TestLockingDistributedDeadlockTimeout(t *testing.T) {
	env := newFakeEnv(t)
	env.set("a", 0)
	e := NewLocking(env, LockConfig{})
	// MP txn 1 holds a, stalled remotely (never finishes its rounds).
	e.Fragment(mpFrag(1, 0, false, 7, lockStep("a", 1)))
	// MP txn 2 wants a: blocks with no local cycle → timer armed.
	e.Fragment(mpFrag(2, 0, true, 8, lockStep("a", 2)))
	if len(env.timers) != 1 {
		t.Fatalf("timers = %d", len(env.timers))
	}
	e.Timer(env.timers[0].payload)
	if e.Stats().TimeoutKills != 1 {
		t.Fatalf("timeout kills = %d", e.Stats().TimeoutKills)
	}
	// Txn 2 voted abort.
	last := env.results[len(env.results)-1]
	if last.Txn != 2 || !last.Aborted {
		t.Fatalf("result = %+v", last)
	}
}

func TestLockingStaleTimeoutIgnored(t *testing.T) {
	env := newFakeEnv(t)
	env.set("a", 0)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, true, 7, lockStep("a", 1)))
	e.Fragment(mpFrag(2, 0, true, 8, lockStep("a", 2))) // blocks, timer armed
	e.Decision(&msg.Decision{Txn: 1, Commit: true})     // unblocks 2, which votes
	// Stale timer fires after txn 2 was granted; it must not kill.
	e.Timer(env.timers[0].payload)
	if e.Stats().TimeoutKills != 0 {
		t.Fatal("stale timeout killed a granted transaction")
	}
	e.Decision(&msg.Decision{Txn: 2, Commit: true})
	if env.get("a") != 2 {
		t.Fatalf("a = %d", env.get("a"))
	}
}

func TestLockingAbortDecisionWhileBlocked(t *testing.T) {
	env := newFakeEnv(t)
	env.set("a", 0)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, false, 7, lockStep("a", 1)))
	e.Fragment(mpFrag(2, 0, true, 8, lockStep("a", 2))) // blocked on a
	// Another participant of txn 2 was killed: the coordinator aborts it
	// while our fragment is still waiting.
	e.Decision(&msg.Decision{Txn: 2, Commit: false})
	if e.ActiveCount() != 1 {
		t.Fatalf("active = %d; txn 2 must be gone", e.ActiveCount())
	}
	// Txn 1 can finish normally.
	e.Fragment(mpFrag(1, 1, true, 7, lockStep("a", 3)))
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if env.get("a") != 3 {
		t.Fatalf("a = %d", env.get("a"))
	}
}

func TestLockingUserAbortReleasesLocks(t *testing.T) {
	env := newFakeEnv(t)
	env.set("a", 0)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, true, 7, lockStep("a", 1))) // holds a
	ab := spFragAbortable(2, func(v *storage.TxnView) (any, error) {
		v.Put("kv", "scratch", 1)
		return nil, errTestAbort
	})
	e.Fragment(ab)
	requireReplies(t, env, 1)
	if !env.replies[0].UserAborted || env.replies[0].Retryable {
		t.Fatalf("reply = %+v", env.replies[0])
	}
	if _, ok := env.store.Table("kv").Get("scratch"); ok {
		t.Fatal("aborted write persisted")
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if e.ActiveCount() != 0 {
		t.Fatal("leaked transactions")
	}
}

func TestLockingSharedReadersProceed(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 42)
	e := NewLocking(env, LockConfig{})
	// MP reader holds S on x.
	e.Fragment(mpFrag(1, 0, true, 7, readKey("x")))
	// SP reader shares the lock and completes immediately.
	e.Fragment(spFrag(2, readKey("x")))
	requireReplies(t, env, 1)
	if env.replies[0].Output != 42 {
		t.Fatalf("reply = %+v", env.replies[0])
	}
	// SP writer blocks.
	e.Fragment(spFrag(3, incrKey("x")))
	requireReplies(t, env, 1)
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	requireReplies(t, env, 2)
	if env.replies[1].Output != 43 {
		t.Fatalf("writer reply = %+v", env.replies[1])
	}
}

func TestLockingUpgradeWithinTransaction(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 1)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, true, 7, readKey("y"))) // make partition non-idle
	// Plain Get then Put: a sole-holder S→X upgrade must succeed.
	e.Fragment(spFrag(2, func(v *storage.TxnView) (any, error) {
		cur, _ := v.Get("kv", "x")
		n := cur.(int) + 1
		v.Put("kv", "x", n)
		return n, nil
	}))
	requireReplies(t, env, 1)
	if env.replies[0].Output != 2 {
		t.Fatalf("reply = %+v", env.replies[0])
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
}

func TestLockingChainedGrants(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 0)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, true, 7, incrKey("x")))
	// Three SP increments pile up on x.
	e.Fragment(spFrag(2, incrKey("x")))
	e.Fragment(spFrag(3, incrKey("x")))
	e.Fragment(spFrag(4, incrKey("x")))
	requireReplies(t, env, 0)
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	// All three resume in FIFO order within the decision event.
	requireReplies(t, env, 3)
	if env.get("x") != 4 {
		t.Fatalf("x = %d", env.get("x"))
	}
	for i, want := range []any{2, 3, 4} {
		if env.replies[i].Output != want {
			t.Fatalf("reply %d = %+v", i, env.replies[i])
		}
	}
}

func TestLockingMultiRoundHoldsLocksAcrossRounds(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewLocking(env, LockConfig{})
	e.Fragment(mpFrag(1, 0, false, 7, readKey("x")))
	// Reacquiring x in round 1 (upgrade) must succeed without deadlock.
	e.Fragment(mpFrag(1, 1, true, 7, writeKey("x", 17)))
	requireResults(t, env, 2)
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if env.get("x") != 17 {
		t.Fatalf("x = %d", env.get("x"))
	}
}
