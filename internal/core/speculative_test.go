package core

import (
	"testing"

	"specdb/internal/msg"
	"specdb/internal/storage"
)

// TestSpecPaperExampleCommit reproduces the §4.2.1 example on partition P1:
// x=5; A is a multi-partition swap (read round, then write x=17), B1 and B2
// are single-partition increments. Speculation may only begin after A's last
// fragment; B1/B2 replies are held until A commits.
func TestSpecPaperExampleCommit(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewSpeculative(env)

	// Round 0 of A: read x.
	e.Fragment(mpFrag(1, 0, false, 7, readKey("x")))
	requireResults(t, env, 1)
	if env.results[0].Output != 5 {
		t.Fatalf("A read %v", env.results[0].Output)
	}
	// B1 arrives. A is not finished locally: no speculation ("If it did,
	// the result for transaction B1 would be x = 6, which is incorrect").
	e.Fragment(spFrag(2, incrKey("x")))
	if e.Stats().Speculated != 0 {
		t.Fatal("speculated before A finished")
	}
	if e.UnexecutedLen() != 1 {
		t.Fatalf("unexecuted = %d", e.UnexecutedLen())
	}
	// Final fragment of A: write x=17; speculation begins.
	e.Fragment(mpFrag(1, 1, true, 7, writeKey("x", 17)))
	requireResults(t, env, 2)
	// B2 arrives and speculates too.
	e.Fragment(spFrag(3, incrKey("x")))
	if s := e.Stats(); s.Speculated != 2 {
		t.Fatalf("speculated = %d", s.Speculated)
	}
	// Replies are buffered inside the partition.
	requireReplies(t, env, 0)
	if env.get("x") != 19 {
		t.Fatalf("x = %d after speculative increments", env.get("x"))
	}
	// A commits: results for B1 and B2 are sent and undo buffers dropped.
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	requireReplies(t, env, 2)
	if env.replies[0].Txn != 2 || env.replies[0].Output != 18 {
		t.Fatalf("B1 reply = %+v", env.replies[0])
	}
	if env.replies[1].Txn != 3 || env.replies[1].Output != 19 {
		t.Fatalf("B2 reply = %+v", env.replies[1])
	}
	if e.UncommittedLen() != 0 || len(env.undos) != 0 {
		t.Fatal("state not drained after commit")
	}
}

// TestSpecPaperExampleAbort is the abort path: B1/B2 are undone and
// re-executed from the pre-A state.
func TestSpecPaperExampleAbort(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewSpeculative(env)
	e.Fragment(mpFrag(1, 0, false, 7, readKey("x")))
	e.Fragment(mpFrag(1, 1, true, 7, writeKey("x", 17)))
	e.Fragment(spFrag(2, incrKey("x")))
	e.Fragment(spFrag(3, incrKey("x")))
	if env.get("x") != 19 {
		t.Fatalf("x = %d", env.get("x"))
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: false})
	// A undone (x back to 5), then B1 and B2 re-executed in order,
	// non-speculatively (no active transactions remain), replies sent.
	requireReplies(t, env, 2)
	if env.replies[0].Txn != 2 || env.replies[0].Output != 6 {
		t.Fatalf("B1 reply = %+v", env.replies[0])
	}
	if env.replies[1].Txn != 3 || env.replies[1].Output != 7 {
		t.Fatalf("B2 reply = %+v", env.replies[1])
	}
	if env.get("x") != 7 {
		t.Fatalf("x = %d", env.get("x"))
	}
	if s := e.Stats(); s.Redone != 2 {
		t.Fatalf("redone = %d", s.Redone)
	}
}

// TestSpecMultiPartitionSpeculation reproduces the §4.2.2 example: A, B1, C
// (multi-partition increment), B2. C's speculative result is sent immediately
// with a dependency on A; B2's reply is held.
func TestSpecMultiPartitionSpeculation(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewSpeculative(env)
	e.Fragment(mpFrag(1, 0, false, 7, readKey("x")))
	e.Fragment(spFrag(2, incrKey("x"))) // B1 queued
	e.Fragment(mpFrag(1, 1, true, 7, writeKey("x", 17)))
	// B1 speculated upon A finishing. Now C, from the same coordinator.
	e.Fragment(mpFrag(4, 0, true, 7, incrKey("x")))
	requireResults(t, env, 3)
	c := env.results[2]
	if !c.Speculative || c.DependsOn != 1 {
		t.Fatalf("C result = %+v; want speculative depending on A", c)
	}
	if c.Output != 19 {
		t.Fatalf("C computed %v (A=17, B1=18, C=19)", c.Output)
	}
	// B2 speculates behind C; its reply is held.
	e.Fragment(spFrag(5, incrKey("x")))
	requireReplies(t, env, 0)
	if env.get("x") != 20 {
		t.Fatalf("x = %d", env.get("x"))
	}
	// A commits: B1 released; C becomes the new non-speculative head.
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	requireReplies(t, env, 1)
	if env.replies[0].Txn != 2 || env.replies[0].Output != 18 {
		t.Fatalf("B1 reply = %+v", env.replies[0])
	}
	// C commits: B2 released.
	e.Decision(&msg.Decision{Txn: 4, Commit: true})
	requireReplies(t, env, 2)
	if env.replies[1].Txn != 5 || env.replies[1].Output != 20 {
		t.Fatalf("B2 reply = %+v", env.replies[1])
	}
}

// TestSpecCascadingAbortResendsWithoutDependency: when A aborts, C is undone,
// re-executed non-speculatively, and its result re-sent with no dependency
// ("The resent results would not depend on previous transactions").
func TestSpecCascadingAbortResends(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewSpeculative(env)
	e.Fragment(mpFrag(1, 0, false, 7, readKey("x")))
	e.Fragment(spFrag(2, incrKey("x")))
	e.Fragment(mpFrag(1, 1, true, 7, writeKey("x", 17)))
	e.Fragment(mpFrag(4, 0, true, 7, incrKey("x")))
	e.Fragment(spFrag(5, incrKey("x")))
	nResults := len(env.results)
	e.Decision(&msg.Decision{Txn: 1, Commit: false})
	// B1 re-executed (fast path, reply 6), C re-executed (new head,
	// result resent, x=7), B2 re-speculated behind C (held, x=8).
	requireReplies(t, env, 1)
	if env.replies[0].Txn != 2 || env.replies[0].Output != 6 {
		t.Fatalf("B1 reply = %+v", env.replies[0])
	}
	if len(env.results) != nResults+1 {
		t.Fatalf("results = %d, want resend", len(env.results))
	}
	resent := env.results[len(env.results)-1]
	if resent.Txn != 4 || resent.Speculative || resent.DependsOn != 0 {
		t.Fatalf("resent C = %+v", resent)
	}
	if resent.Output != 7 {
		t.Fatalf("resent C output = %v", resent.Output)
	}
	if env.get("x") != 8 {
		t.Fatalf("x = %d (B2 re-speculated)", env.get("x"))
	}
	if s := e.Stats(); s.Redone != 3 {
		t.Fatalf("redone = %d", s.Redone)
	}
	e.Decision(&msg.Decision{Txn: 4, Commit: true})
	requireReplies(t, env, 2)
	if env.replies[1].Txn != 5 || env.replies[1].Output != 8 {
		t.Fatalf("B2 reply = %+v", env.replies[1])
	}
}

func TestSpecDifferentCoordinatorBlocksMPSpeculation(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewSpeculative(env)
	e.Fragment(mpFrag(1, 0, true, 7, incrKey("x")))
	// MP txn from a different coordinator cannot be speculated.
	e.Fragment(mpFrag(2, 0, true, 8, incrKey("x")))
	requireResults(t, env, 1)
	if e.UnexecutedLen() != 1 {
		t.Fatalf("unexecuted = %d", e.UnexecutedLen())
	}
	// But a single-partition txn behind it must also wait (FIFO).
	e.Fragment(spFrag(3, incrKey("x")))
	if e.Stats().Speculated != 0 {
		t.Fatal("speculation happened despite foreign coordinator at queue head")
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	// Queue drains: txn 2 becomes the new head, txn 3 speculates behind.
	requireResults(t, env, 2)
	requireReplies(t, env, 0)
	e.Decision(&msg.Decision{Txn: 2, Commit: true})
	requireReplies(t, env, 1)
	if env.get("x") != 8 {
		t.Fatalf("x = %d", env.get("x"))
	}
}

func TestSpecMultiRoundGatesSpeculation(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewSpeculative(env)
	// Two-round MP txn: after round 0 the txn is not finished locally,
	// so nothing speculates (§5.4's "general" transactions).
	e.Fragment(mpFrag(1, 0, false, 7, readKey("x")))
	e.Fragment(spFrag(2, incrKey("x")))
	e.Fragment(spFrag(3, incrKey("x")))
	if e.Stats().Speculated != 0 || e.UnexecutedLen() != 2 {
		t.Fatalf("speculated=%d unexecuted=%d", e.Stats().Speculated, e.UnexecutedLen())
	}
	e.Fragment(mpFrag(1, 1, true, 7, writeKey("x", 17)))
	if e.Stats().Speculated != 2 {
		t.Fatalf("speculated = %d after finish", e.Stats().Speculated)
	}
}

func TestSpecLocalAbortOfSpeculatedSP(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 5)
	e := NewSpeculative(env)
	e.Fragment(mpFrag(1, 0, true, 7, writeKey("x", 17)))
	// Speculated SP txn aborts (user abort): held reply must carry the
	// abort, and its effects must be rolled back immediately.
	ab := spFragAbortable(2, userAbort())
	e.Fragment(ab)
	e.Fragment(spFrag(3, incrKey("x")))
	if _, ok := env.store.Table("kv").Get("scratch"); ok {
		t.Fatal("aborted speculative write persisted")
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	requireReplies(t, env, 2)
	if env.replies[0].Committed || !env.replies[0].UserAborted {
		t.Fatalf("aborted reply = %+v", env.replies[0])
	}
	if env.replies[1].Output != 18 {
		t.Fatalf("increment reply = %+v; must see x=17+1", env.replies[1])
	}
}

func TestSpecChainedDependencies(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 0)
	e := NewSpeculative(env)
	// Three simple MP txns from one coordinator speculate as a chain.
	e.Fragment(mpFrag(1, 0, true, 7, incrKey("x")))
	e.Fragment(mpFrag(2, 0, true, 7, incrKey("x")))
	e.Fragment(mpFrag(3, 0, true, 7, incrKey("x")))
	requireResults(t, env, 3)
	if env.results[1].DependsOn != 1 || env.results[2].DependsOn != 2 {
		t.Fatalf("dependency chain = %v, %v", env.results[1].DependsOn, env.results[2].DependsOn)
	}
	if env.get("x") != 3 {
		t.Fatalf("x = %d", env.get("x"))
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	e.Decision(&msg.Decision{Txn: 2, Commit: true})
	e.Decision(&msg.Decision{Txn: 3, Commit: true})
	if e.UncommittedLen() != 0 {
		t.Fatalf("uncommitted = %d", e.UncommittedLen())
	}
}

func TestSpecAbortMidChainReexecutesSuffix(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 0)
	e := NewSpeculative(env)
	e.Fragment(mpFrag(1, 0, true, 7, incrKey("x")))
	e.Fragment(mpFrag(2, 0, true, 7, incrKey("x")))
	e.Fragment(mpFrag(3, 0, true, 7, incrKey("x")))
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	// Abort 2: txn 3 must be undone and re-executed on top of x=1.
	e.Decision(&msg.Decision{Txn: 2, Commit: false})
	if env.get("x") != 2 {
		t.Fatalf("x = %d; want 1 (committed) + 1 (txn 3 redo)", env.get("x"))
	}
	last := env.results[len(env.results)-1]
	if last.Txn != 3 || last.Speculative || last.Output != 2 {
		t.Fatalf("resent txn3 = %+v", last)
	}
	e.Decision(&msg.Decision{Txn: 3, Commit: true})
	if e.UncommittedLen() != 0 || len(env.undos) != 0 {
		t.Fatal("residual state")
	}
}

func TestSpecFastPathNoUndo(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 1)
	e := NewSpeculative(env)
	probe := func(v *storage.TxnView) (any, error) {
		if v.Undoing() {
			t.Fatal("fast path ran with undo buffer")
		}
		return nil, nil
	}
	e.Fragment(spFrag(1, probe))
	requireReplies(t, env, 1)
	// With CanAbort set, the fast path must keep an undo buffer.
	probe2 := func(v *storage.TxnView) (any, error) {
		if !v.Undoing() {
			t.Fatal("abortable txn ran without undo buffer")
		}
		return nil, nil
	}
	e.Fragment(spFragAbortable(2, probe2))
	requireReplies(t, env, 2)
}

func TestSpecSpeculatedTxnsAlwaysUndo(t *testing.T) {
	env := newFakeEnv(t)
	env.set("x", 1)
	e := NewSpeculative(env)
	e.Fragment(mpFrag(1, 0, true, 7, incrKey("x")))
	probe := func(v *storage.TxnView) (any, error) {
		if !v.Undoing() {
			t.Fatal("speculative txn ran without undo buffer")
		}
		return nil, nil
	}
	e.Fragment(spFrag(2, probe))
	if e.Stats().Speculated != 1 {
		t.Fatal("probe was not speculated")
	}
}

func TestSpecDecisionMismatchPanics(t *testing.T) {
	env := newFakeEnv(t)
	e := NewSpeculative(env)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Decision(&msg.Decision{Txn: 9, Commit: true})
}
