package metrics

import (
	"testing"

	"specdb/internal/sim"
)

func TestWindowFiltering(t *testing.T) {
	c := NewCollector(100*sim.Millisecond, 200*sim.Millisecond)
	c.TxnDone(50*sim.Millisecond, 0, true, false, false, false, false)                    // before window
	c.TxnDone(150*sim.Millisecond, 149*sim.Millisecond, true, false, false, false, false) // inside
	c.TxnDone(150*sim.Millisecond, 149*sim.Millisecond, false, true, false, false, false) // inside, user abort
	c.TxnDone(250*sim.Millisecond, 0, true, false, false, false, false)                   // after window
	if c.Window.Committed != 1 || c.Window.UserAborted != 1 {
		t.Fatalf("committed=%d aborted=%d", c.Window.Committed, c.Window.UserAborted)
	}
	if c.Completed() != 2 {
		t.Fatalf("completed = %d", c.Completed())
	}
	if c.Totals.Completed() != 4 {
		t.Fatalf("total = %d", c.Totals.Completed())
	}
}

func TestTotalsIgnoreWindow(t *testing.T) {
	c := NewCollector(100*sim.Millisecond, 200*sim.Millisecond)
	c.TxnDone(50*sim.Millisecond, 0, true, false, false, false, false)  // before window
	c.TxnDone(250*sim.Millisecond, 0, true, true, false, false, false)  // after window
	c.TxnDone(260*sim.Millisecond, 0, false, true, false, false, false) // after window, abort
	c.Retry(10 * sim.Millisecond)                                       // before window
	want := Counts{Committed: 2, UserAborted: 1, CommittedSP: 1, CommittedMP: 1, Retries: 1}
	if c.Totals != want {
		t.Fatalf("totals = %+v, want %+v", c.Totals, want)
	}
	if c.Window != (Counts{}) {
		t.Fatalf("window counters leaked: %+v", c.Window)
	}
}

func TestCountsSub(t *testing.T) {
	c := NewCollector(0, sim.Second)
	c.TxnDone(1, 0, true, false, false, false, false)
	before := c.Totals
	c.TxnDone(2, 0, true, true, false, false, false)
	c.TxnDone(3, 0, false, false, false, false, false)
	c.Retry(4)
	d := c.Totals.Sub(before)
	want := Counts{Committed: 1, UserAborted: 1, CommittedMP: 1, Retries: 1}
	if d != want {
		t.Fatalf("delta = %+v, want %+v", d, want)
	}
	if d.Completed() != 2 {
		t.Fatalf("delta completed = %d", d.Completed())
	}
}

func TestThroughputPerSecond(t *testing.T) {
	c := NewCollector(0, sim.Second/2)
	for i := 0; i < 100; i++ {
		c.TxnDone(sim.Time(i)*sim.Millisecond, 0, true, false, false, false, false)
	}
	if got := c.Throughput(); got != 200 {
		t.Fatalf("throughput = %f, want 200 (100 txns in half a second)", got)
	}
}

func TestSPMPSplit(t *testing.T) {
	c := NewCollector(0, sim.Second)
	c.TxnDone(1, 0, true, false, false, false, false)
	c.TxnDone(2, 0, true, true, false, false, false)
	c.TxnDone(3, 0, true, true, false, false, false)
	if c.Window.CommittedSP != 1 || c.Window.CommittedMP != 2 {
		t.Fatalf("sp=%d mp=%d", c.Window.CommittedSP, c.Window.CommittedMP)
	}
}

func TestRetriesCounted(t *testing.T) {
	c := NewCollector(0, sim.Second)
	c.Retry(10)
	c.Retry(20)
	c.Retry(2 * sim.Second) // outside window
	if c.Window.Retries != 2 {
		t.Fatalf("retries = %d", c.Window.Retries)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(sim.Time(i) * sim.Microsecond)
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400*sim.Microsecond || p50 > 700*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*sim.Microsecond || p99 > 1000*sim.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Quantile(0) != 1*sim.Microsecond {
		t.Fatalf("min = %v", h.Quantile(0))
	}
	if h.Quantile(1) != 1000*sim.Microsecond {
		t.Fatalf("max = %v", h.Quantile(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramTinyValues(t *testing.T) {
	var h Histogram
	h.Add(1 * sim.Microsecond) // below first bucket base
	h.Add(2 * sim.Microsecond)
	if h.Quantile(0.5) > 10*sim.Microsecond {
		t.Fatalf("p50 = %v", h.Quantile(0.5))
	}
}

func TestLatencyQuantileThroughCollector(t *testing.T) {
	c := NewCollector(0, sim.Second)
	for i := 0; i < 100; i++ {
		start := sim.Time(i) * sim.Millisecond
		c.TxnDone(start+100*sim.Microsecond, start, true, false, false, false, false)
	}
	m := c.WindowLat.Merged()
	p50 := m.Quantile(0.5)
	if p50 < 80*sim.Microsecond || p50 > 130*sim.Microsecond {
		t.Fatalf("p50 latency = %v, want ≈100µs", p50)
	}
}

func TestWorkloadRates(t *testing.T) {
	c := NewCollector(0, sim.Second)
	c.TxnDone(1, 0, true, false, false, false, false) // SP commit
	c.TxnDone(2, 0, true, true, false, false, false)  // single-round MP commit
	c.TxnDone(3, 0, true, true, true, false, false)   // two-round MP commit
	c.TxnDone(4, 0, false, true, false, false, false) // user abort
	c.Retry(5)
	got := c.Totals
	if got.CommittedMR != 1 {
		t.Fatalf("committedMR = %d", got.CommittedMR)
	}
	if f := got.MPFraction(); f != 2.0/3.0 {
		t.Fatalf("mp fraction = %v", f)
	}
	if f := got.MultiRoundFraction(); f != 0.5 {
		t.Fatalf("multi-round fraction = %v", f)
	}
	if r := got.AbortRate(); r != 0.25 {
		t.Fatalf("abort rate = %v", r)
	}
	if r := got.ConflictRate(); r != 0.25 {
		t.Fatalf("conflict rate = %v", r)
	}
}

func TestWorkloadRatesEmpty(t *testing.T) {
	var z Counts
	if z.MPFraction() != 0 || z.MultiRoundFraction() != 0 || z.AbortRate() != 0 || z.ConflictRate() != 0 {
		t.Fatal("zero counts should yield zero rates")
	}
}

// TestHistogramEdgeCases is the table-driven audit of the histogram's
// boundary behavior (ISSUE 4 satellite): an empty histogram's quantiles,
// samples below histBase, and samples past the last of the 128 log buckets —
// which must clamp into the top bucket rather than index out of range.
func TestHistogramEdgeCases(t *testing.T) {
	const top = 1 << 62 // far beyond the last bucket boundary
	cases := []struct {
		name    string
		samples []sim.Time
		q       float64
		want    func(got sim.Time) bool
		desc    string
	}{
		{"empty q=0", nil, 0, func(g sim.Time) bool { return g == 0 }, "0"},
		{"empty q=0.5", nil, 0.5, func(g sim.Time) bool { return g == 0 }, "0"},
		{"empty q=1", nil, 1, func(g sim.Time) bool { return g == 0 }, "0"},
		{"zero sample", []sim.Time{0}, 0.5, func(g sim.Time) bool { return g == 0 }, "exact max"},
		{"below base", []sim.Time{1, 2, 3}, 0.5,
			func(g sim.Time) bool { return g >= 0 && g <= 3 }, "clamped to observed max"},
		{"at base boundary", []sim.Time{10 * sim.Microsecond}, 0.5,
			func(g sim.Time) bool { return g == 10*sim.Microsecond }, "exact max"},
		{"past last bucket", []sim.Time{top}, 0.5,
			func(g sim.Time) bool { return g == top }, "clamped to max, no panic"},
		{"mixed extremes", []sim.Time{1, top}, 0,
			func(g sim.Time) bool { return g == 1 }, "min"},
		{"mixed extremes q=1", []sim.Time{1, top}, 1,
			func(g sim.Time) bool { return g == top }, "max"},
		{"q below range", []sim.Time{5 * sim.Microsecond}, -1,
			func(g sim.Time) bool { return g == 5*sim.Microsecond }, "min"},
		{"q above range", []sim.Time{5 * sim.Microsecond}, 2,
			func(g sim.Time) bool { return g == 5*sim.Microsecond }, "max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, s := range tc.samples {
				h.Add(s)
			}
			got := h.Quantile(tc.q)
			if !tc.want(got) {
				t.Fatalf("Quantile(%g) = %v, want %s", tc.q, got, tc.desc)
			}
		})
	}
}

// TestHistogramMerge is the table-driven gate for Merge on the new latency
// path (LatencySet.Merged feeds Result's percentiles): merging must behave
// exactly as if every sample had been Added to one histogram — including
// the edge cases the ISSUE 4 audit pinned (empty operands, single samples,
// samples past the last bucket).
func TestHistogramMerge(t *testing.T) {
	const top = sim.Time(1) << 62 // beyond the last bucket boundary
	cases := []struct {
		name string
		a, b []sim.Time
	}{
		{"both empty", nil, nil},
		{"empty into empty-a", nil, []sim.Time{5 * sim.Microsecond}},
		{"empty b", []sim.Time{5 * sim.Microsecond}, nil},
		{"single samples", []sim.Time{10 * sim.Microsecond}, []sim.Time{20 * sim.Microsecond}},
		{"min from b", []sim.Time{100 * sim.Microsecond}, []sim.Time{1}},
		{"max from b", []sim.Time{1}, []sim.Time{100 * sim.Microsecond}},
		{"beyond last bucket", []sim.Time{50 * sim.Microsecond}, []sim.Time{top}},
		{"overlapping buckets", []sim.Time{10, 20, 30, 40, 50}, []sim.Time{15, 25, 35}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var a, b, want Histogram
			for _, s := range tc.a {
				a.Add(s)
				want.Add(s)
			}
			for _, s := range tc.b {
				b.Add(s)
				want.Add(s)
			}
			a.Merge(&b)
			if a != want {
				t.Fatalf("merge differs from direct adds:\n%+v\nvs\n%+v", a, want)
			}
			for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
				if got, w := a.Quantile(q), want.Quantile(q); got != w {
					t.Fatalf("Quantile(%g) = %v, direct = %v", q, got, w)
				}
			}
		})
	}
}

// TestHistogramSub covers the interval-latency path: Sub of two snapshots of
// a growing histogram yields exactly the delta's bucket counts, quantiles of
// the delta stay within the delta's sample range (to bucket resolution, top
// bucket clamped to the whole-run max), and edge cases (empty delta, single
// sample, beyond-last-bucket) hold.
func TestHistogramSub(t *testing.T) {
	const top = sim.Time(1) << 62
	cases := []struct {
		name   string
		before []sim.Time
		after  []sim.Time
	}{
		{"empty delta", []sim.Time{10 * sim.Microsecond}, nil},
		{"delta from empty baseline", nil, []sim.Time{10 * sim.Microsecond}},
		{"single sample delta", []sim.Time{20 * sim.Microsecond}, []sim.Time{40 * sim.Microsecond}},
		{"beyond last bucket delta", []sim.Time{10 * sim.Microsecond}, []sim.Time{top}},
		{"many", []sim.Time{10, 20, 30}, []sim.Time{100 * sim.Microsecond, 200 * sim.Microsecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, s := range tc.before {
				h.Add(s)
			}
			snap := h
			for _, s := range tc.after {
				h.Add(s)
			}
			d := h.Sub(snap)
			if d.N() != uint64(len(tc.after)) {
				t.Fatalf("delta N = %d, want %d", d.N(), len(tc.after))
			}
			if len(tc.after) == 0 {
				if d != (Histogram{}) {
					t.Fatalf("empty delta not zero: %+v", d)
				}
				return
			}
			// Quantiles stay within [whole-run min, whole-run max]: the
			// delta's own extremes are unknowable from buckets alone.
			for _, q := range []float64{0, 0.5, 1} {
				got := d.Quantile(q)
				if got < h.Quantile(0) || got > h.Quantile(1) {
					t.Fatalf("delta Quantile(%g) = %v outside run range", q, got)
				}
			}
		})
	}
}

// TestHistogramSubTightensStaleExtremes pins the interval-percentile fix: a
// quiet interval must not inherit the whole run's min and max. Before the
// fix, Sub copied both verbatim, so an interval of uniformly fast samples
// after one slow warm-up outlier reported Quantile(1) at the stale warm-up
// max (and the symmetric stale min for slow intervals after a fast start).
func TestHistogramSubTightensStaleExtremes(t *testing.T) {
	const top = sim.Time(1) << 62
	cases := []struct {
		name   string
		before []sim.Time
		after  []sim.Time
		// inclusive bounds the tightened delta extremes must satisfy
		maxAtMost  sim.Time
		minAtLeast sim.Time
	}{
		{
			// Slow warm-up outlier, fast quiet interval: the 10ms max is
			// stale; the tightened max is the interval bucket's upper edge.
			name:      "stale max dropped",
			before:    []sim.Time{10 * sim.Millisecond},
			after:     []sim.Time{50 * sim.Microsecond, 55 * sim.Microsecond},
			maxAtMost: 80 * sim.Microsecond,
		},
		{
			// Fast warm-up, slow interval: the 2µs min is stale; the
			// tightened min is the interval bucket's lower edge.
			name:       "stale min raised",
			before:     []sim.Time{2 * sim.Microsecond},
			after:      []sim.Time{5 * sim.Millisecond},
			minAtLeast: 1 * sim.Millisecond,
		},
		{
			// The interval's extreme shares its bucket with the whole-run
			// extreme, so the exact values survive untightened.
			name:       "shared bucket keeps exact extremes",
			before:     []sim.Time{100 * sim.Microsecond},
			after:      []sim.Time{42 * sim.Microsecond, 500 * sim.Microsecond},
			minAtLeast: 42 * sim.Microsecond,
			maxAtMost:  500 * sim.Microsecond,
		},
		{
			// Top bucket is unbounded: the whole-run max is the only honest
			// upper bound and must be kept even when stale.
			name:      "top bucket keeps run max",
			before:    []sim.Time{top},
			after:     []sim.Time{top / 2},
			maxAtMost: top,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, s := range tc.before {
				h.Add(s)
			}
			snap := h
			for _, s := range tc.after {
				h.Add(s)
			}
			d := h.Sub(snap)
			if d.N() != uint64(len(tc.after)) {
				t.Fatalf("delta N = %d, want %d", d.N(), len(tc.after))
			}
			if tc.maxAtMost != 0 && d.Quantile(1) > tc.maxAtMost {
				t.Errorf("delta max = %v, want <= %v", d.Quantile(1), tc.maxAtMost)
			}
			if d.Quantile(0) < tc.minAtLeast {
				t.Errorf("delta min = %v, want >= %v", d.Quantile(0), tc.minAtLeast)
			}
		})
	}
	t.Run("zero-sample interval is all zero", func(t *testing.T) {
		var h Histogram
		h.Add(3 * sim.Millisecond)
		d := h.Sub(h)
		if d != (Histogram{}) {
			t.Fatalf("quiet-interval delta not zeroed: %+v", d)
		}
		if d.Quantile(0) != 0 || d.Quantile(1) != 0 {
			t.Fatalf("quiet-interval quantiles [%v, %v], want zero", d.Quantile(0), d.Quantile(1))
		}
	})
}

// TestMigrationEventDip pins the dip timeline semantics: zero until cutover,
// then the triggered-to-cutover span; NoteMigration appends in order.
func TestMigrationEventDip(t *testing.T) {
	e := MigrationEvent{From: 0, To: 1, TriggeredAt: 10 * sim.Millisecond}
	if e.Dip() != 0 {
		t.Fatalf("pre-cutover Dip = %v, want 0", e.Dip())
	}
	e.CutoverAt = 12 * sim.Millisecond
	if e.Dip() != 2*sim.Millisecond {
		t.Fatalf("Dip = %v, want 2ms", e.Dip())
	}
	c := NewCollector(0, 0)
	c.NoteMigration(e)
	c.NoteMigration(MigrationEvent{From: 1, To: 2})
	if len(c.Migrations) != 2 || c.Migrations[0].To != 1 || c.Migrations[1].To != 2 {
		t.Fatalf("migration log out of order: %+v", c.Migrations)
	}
}

// TestLatencySetSplit pins the 2×2 classification: each (multiPartition,
// aborted) combination lands in its own histogram, Merged sees all of them,
// and Sub distributes over the classes.
func TestLatencySetSplit(t *testing.T) {
	var s LatencySet
	s.Add(10*sim.Microsecond, false, false)
	s.Add(20*sim.Microsecond, false, false)
	s.Add(30*sim.Microsecond, true, false)
	s.Add(40*sim.Microsecond, false, true)
	s.Add(50*sim.Microsecond, true, true)
	if n := s.Hist(false, false).N(); n != 2 {
		t.Fatalf("SP committed N = %d", n)
	}
	for _, c := range []struct{ mp, ab bool }{{true, false}, {false, true}, {true, true}} {
		if n := s.Hist(c.mp, c.ab).N(); n != 1 {
			t.Fatalf("class %+v N = %d", c, n)
		}
	}
	m := s.Merged()
	if m.N() != 5 || s.N() != 5 {
		t.Fatalf("merged N = %d, set N = %d", m.N(), s.N())
	}
	if m.Quantile(0) != 10*sim.Microsecond || m.Quantile(1) != 50*sim.Microsecond {
		t.Fatalf("merged range [%v, %v]", m.Quantile(0), m.Quantile(1))
	}
	snap := s
	s.Add(60*sim.Microsecond, true, false)
	d := s.Sub(snap)
	if d.N() != 1 || d.Hist(true, false).N() != 1 {
		t.Fatalf("delta misclassified: %+v", d)
	}
}

// TestCollectorLatencySplit drives the collector and checks the window/total
// split of the latency classes alongside the shed counter.
func TestCollectorLatencySplit(t *testing.T) {
	c := NewCollector(100*sim.Millisecond, 200*sim.Millisecond)
	at := func(t sim.Time) sim.Time { return t * sim.Millisecond }
	c.TxnDone(at(50), at(49), true, false, false, false, false) // warm-up: totals only
	c.TxnDone(at(150), at(149), true, false, false, false, false)
	c.TxnDone(at(160), at(158), true, true, false, false, false)
	c.TxnDone(at(170), at(169), false, true, false, false, false)
	c.NoteShed(at(50))  // warm-up shed
	c.NoteShed(at(150)) // window shed
	if c.WindowLat.N() != 3 || c.TotalLat.N() != 4 {
		t.Fatalf("window lat N=%d total lat N=%d", c.WindowLat.N(), c.TotalLat.N())
	}
	if c.WindowLat.Hist(true, false).N() != 1 || c.WindowLat.Hist(true, true).N() != 1 {
		t.Fatal("MP classes misfiled")
	}
	if c.Window.Shed != 1 || c.Totals.Shed != 2 {
		t.Fatalf("shed window=%d totals=%d", c.Window.Shed, c.Totals.Shed)
	}
	sum := Summarize(c.WindowLat.Hist(false, false))
	if sum.N != 1 || sum.P50 != sim.Millisecond || sum.Max != sim.Millisecond {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestHistogramOverflowAccumulates fills the top bucket with many oversized
// samples: every one must land in bucket 127 (not panic, not vanish), and
// quantiles over them must stay within [min, max].
func TestHistogramOverflowAccumulates(t *testing.T) {
	var h Histogram
	const huge = sim.Time(1) << 60
	for i := 0; i < 100; i++ {
		h.Add(huge + sim.Time(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < huge || got > huge+99 {
			t.Fatalf("Quantile(%g) = %v outside sample range", q, got)
		}
	}
}
