// Package metrics collects the measurements the paper reports: completed
// transactions within a measurement window (throughput), latency quantiles,
// and abort/retry/redo counters.
package metrics

import (
	"math"
	"sync"

	"specdb/internal/sim"
)

// Counts is a set of cumulative transaction counters. The Collector keeps
// two: one restricted to the measurement window (the paper's methodology)
// and one covering the whole run, which backs live snapshots — interval
// rates are differences of whole-run Counts taken at two instants.
type Counts struct {
	Committed   uint64
	UserAborted uint64
	CommittedSP uint64
	CommittedMP uint64
	// CommittedMR counts committed multi-partition transactions that took
	// more than one fragment round (§5.4's "general" transactions).
	CommittedMR uint64
	// CommittedRO counts committed transactions declared read-only — the
	// read-fraction signal the MVCC cost term needs.
	CommittedRO uint64
	// CommittedScan counts committed transactions whose plan declared at
	// least one key-range scan (the YCSB-E-style scan mix fraction).
	CommittedScan uint64
	Retries       uint64
	// Shed counts open-loop arrivals dropped because the client's in-flight
	// window and pending queue were both full — the backpressure signal of
	// an overloaded open-loop run. Closed-loop runs never shed.
	Shed uint64
}

// Completed returns committed plus user-aborted transactions (user aborts
// are completions, §5.3).
func (c Counts) Completed() uint64 { return c.Committed + c.UserAborted }

// Sub returns the counter deltas c − prev, the interval between two
// snapshots of the same collector.
func (c Counts) Sub(prev Counts) Counts {
	return Counts{
		Committed:     c.Committed - prev.Committed,
		UserAborted:   c.UserAborted - prev.UserAborted,
		CommittedSP:   c.CommittedSP - prev.CommittedSP,
		CommittedMP:   c.CommittedMP - prev.CommittedMP,
		CommittedMR:   c.CommittedMR - prev.CommittedMR,
		CommittedRO:   c.CommittedRO - prev.CommittedRO,
		CommittedScan: c.CommittedScan - prev.CommittedScan,
		Retries:       c.Retries - prev.Retries,
		Shed:          c.Shed - prev.Shed,
	}
}

// MPFraction returns the fraction of committed transactions that were
// multi-partition — the measured x-coordinate of Figures 4–10 and the main
// input to the §6 scheme-recommendation model.
func (c Counts) MPFraction() float64 {
	if c.Committed == 0 {
		return 0
	}
	return float64(c.CommittedMP) / float64(c.Committed)
}

// MultiRoundFraction returns the fraction of committed multi-partition
// transactions that took more than one fragment round.
func (c Counts) MultiRoundFraction() float64 {
	if c.CommittedMP == 0 {
		return 0
	}
	return float64(c.CommittedMR) / float64(c.CommittedMP)
}

// ReadFraction returns the fraction of committed transactions that were
// declared read-only — the signal that makes MVCC attractive in the §6-style
// model extension.
func (c Counts) ReadFraction() float64 {
	if c.Committed == 0 {
		return 0
	}
	return float64(c.CommittedRO) / float64(c.Committed)
}

// AbortRate returns user aborts per completed transaction (§5.3's abort
// frequency, measured).
func (c Counts) AbortRate() float64 {
	if n := c.Completed(); n > 0 {
		return float64(c.UserAborted) / float64(n)
	}
	return 0
}

// ConflictRate returns retries — attempts killed as deadlock or timeout
// victims and re-submitted — per completed transaction. It measures lock
// conflicts under the locking scheme; blocking and speculation never retry.
func (c Counts) ConflictRate() float64 {
	if n := c.Completed(); n > 0 {
		return float64(c.Retries) / float64(n)
	}
	return 0
}

// ScanFraction returns the fraction of committed transactions that declared
// a key-range scan.
func (c Counts) ScanFraction() float64 {
	if c.Committed == 0 {
		return 0
	}
	return float64(c.CommittedScan) / float64(c.Committed)
}

// record classifies one completion.
func (c *Counts) record(committed, multiPartition, multiRound, readOnly, scan bool) {
	if committed {
		c.Committed++
		if multiPartition {
			c.CommittedMP++
			if multiRound {
				c.CommittedMR++
			}
		} else {
			c.CommittedSP++
		}
		if readOnly {
			c.CommittedRO++
		}
		if scan {
			c.CommittedScan++
		}
	} else {
		c.UserAborted++
	}
}

// Role identifies which replica of a partition a failover event concerns.
type Role string

// Failover event roles.
const (
	RolePrimary Role = "primary"
	RoleBackup  Role = "backup"
)

// FailoverEvent records one crash fault and its handling: the crash itself,
// its detection by the failure detector, and — for primary crashes — the
// backup's promotion and the recovery work it entailed. Times are zero for
// stages not (yet) reached.
type FailoverEvent struct {
	// Partition is the affected partition.
	Partition int
	// Role says whether the crashed process was the partition's primary
	// or one of its backups; Replica is the 1-based backup index for
	// backup crashes.
	Role    Role
	Replica int
	// CrashedAt is the injected fault time; DetectedAt is when the
	// failure detector declared the process dead; PromotedAt is when the
	// promoted backup finished resolving its buffered transactions and
	// took over as primary (primary crashes only).
	CrashedAt, DetectedAt, PromotedAt sim.Time
	// BufferedCommitted and BufferedDropped count the prepared-but-
	// undecided transactions the promoted backup resolved at promotion
	// from the coordinator's decision log.
	BufferedCommitted, BufferedDropped int
	// AbortedInFlight counts multi-partition transactions the coordinator
	// aborted at failover because their state at the crashed primary was
	// unrecoverable (no final vote, or only a speculative one).
	AbortedInFlight int
}

// Downtime returns how long the partition was without a primary: promotion
// minus crash time. Zero for backup crashes and unfinished failovers.
func (e FailoverEvent) Downtime() sim.Time {
	if e.Role != RolePrimary || e.PromotedAt == 0 {
		return 0
	}
	return e.PromotedAt - e.CrashedAt
}

// RecoveryLatency returns detection-to-promotion time (the failover work
// itself, excluding the detection timeout). Zero until promotion completes.
func (e FailoverEvent) RecoveryLatency() sim.Time {
	if e.Role != RolePrimary || e.PromotedAt == 0 {
		return 0
	}
	return e.PromotedAt - e.DetectedAt
}

// RecoveryEvent records one crash-restart fault and its recovery timeline:
// the crash, the restart (supervisor brings the process back and it begins
// loading from disk), and the resume (checkpoint loaded, log tail replayed,
// in-flight transactions resolved, partition open for business). Times are
// zero for stages not (yet) reached.
type RecoveryEvent struct {
	// Partition is the crashed (and restarted) partition.
	Partition int
	// CrashedAt is the injected fault time; RestartedAt is when the
	// restarted process began recovery; ResumedAt is when it finished and
	// took over as primary.
	CrashedAt, RestartedAt, ResumedAt sim.Time
	// CheckpointBytes is the size of the checkpoint image loaded;
	// LogBytes is the durable log tail replayed on top of it, and
	// ReplayTxns the transactions re-executed from that tail.
	CheckpointBytes, LogBytes uint64
	ReplayTxns                int
	// BufferedCommitted and BufferedDropped count replayed prepared-but-
	// undecided transactions resolved from the coordinator's decision log.
	BufferedCommitted, BufferedDropped int
}

// Downtime returns how long the partition was without a primary: resume
// minus crash time. Zero until the restart completes.
func (e RecoveryEvent) Downtime() sim.Time {
	if e.ResumedAt == 0 {
		return 0
	}
	return e.ResumedAt - e.CrashedAt
}

// RecoveryLatency returns restart-to-resume time — the recovery work itself
// (checkpoint load, log replay, in-flight resolution), excluding the restart
// delay. Zero until the restart completes.
func (e RecoveryEvent) RecoveryLatency() sim.Time {
	if e.ResumedAt == 0 {
		return 0
	}
	return e.ResumedAt - e.RestartedAt
}

// MigrationEvent records one elastic repartitioning step and its timeline:
// the advisor trigger (or manual request), the completion of the row copy at
// the destination, and the routing cutover that re-opened the clients. Times
// are zero for stages not (yet) reached.
type MigrationEvent struct {
	// From is the donor partition, To the destination.
	From, To int
	// TriggeredAt is when the saturation trigger fired (or Migrate was
	// called); CopiedAt is when the destination finished adopting the
	// rows; CutoverAt is when the routing epoch advanced and paused
	// clients resumed.
	TriggeredAt, CopiedAt, CutoverAt sim.Time
	// RowsMoved and BytesMoved size the migrated key range.
	RowsMoved, BytesMoved uint64
	// LoKey and HiKey are the migrated key range [LoKey, HiKey); an empty
	// HiKey means unbounded above.
	LoKey, HiKey string
	// Auto distinguishes advisor-triggered migrations from manual
	// DB.Migrate calls.
	Auto bool
}

// Dip returns how long the migration stalled the workload: cutover minus
// trigger time (the freeze–copy–cutover window during which clients were
// paused). Zero until the cutover completes.
func (e MigrationEvent) Dip() sim.Time {
	if e.CutoverAt == 0 {
		return 0
	}
	return e.CutoverAt - e.TriggeredAt
}

// Collector accumulates transaction completions. The paper's methodology is
// a warm-up period followed by a measurement window; only completions inside
// the window count (§5).
type Collector struct {
	// WarmupEnd and End bound the measurement window [WarmupEnd, End).
	WarmupEnd sim.Time
	End       sim.Time

	// Window counts completions inside the measurement window; Totals
	// covers the whole run (including warm-up and post-window), backing
	// live observability.
	Window Counts
	Totals Counts

	// Failovers records crash faults and their handling, in the order the
	// stages were observed. At most one event exists per (partition, role,
	// replica): fault schedules allow one fault per partition.
	Failovers []FailoverEvent
	// FailoverResends counts single-partition attempts a client re-sent to
	// a promoted primary after its original target crashed.
	FailoverResends uint64

	// Recoveries records crash-restart faults and their recovery timelines,
	// in the order the stages were observed (at most one per partition).
	Recoveries []RecoveryEvent

	// Migrations records elastic repartitioning steps in cutover order.
	// Migrations run one at a time from the facade's drained quiescent
	// points, so each event is appended complete.
	Migrations []MigrationEvent

	// WindowLat holds issue-to-completion latency histograms restricted to
	// the measurement window, split single-/multi-partition and
	// committed/aborted; TotalLat covers the whole run and backs live
	// interval snapshots (interval latency is the Sub of two TotalLat
	// copies, like interval Counts).
	WindowLat LatencySet
	TotalLat  LatencySet

	// mu serializes the mutators when actors run on the sharded parallel
	// runtime: every counter and histogram update is commutative, so values
	// stay deterministic, and Failover/Recovery entries are separated by at
	// least a detection timeout (orders of magnitude more than a window), so
	// their append order is the virtual-time crash order at any width.
	// Readers — snapshots, Completed, Result assembly — run between windows,
	// after the barrier's happens-before edge, and need no lock.
	mu sync.Mutex
}

// failover returns (appending if needed) the event slot for a partition/role.
func (c *Collector) failover(part int, role Role, replica int) *FailoverEvent {
	for i := range c.Failovers {
		e := &c.Failovers[i]
		if e.Partition == part && e.Role == role && e.Replica == replica {
			return e
		}
	}
	c.Failovers = append(c.Failovers, FailoverEvent{Partition: part, Role: role, Replica: replica})
	return &c.Failovers[len(c.Failovers)-1]
}

// NoteCrash records a fault injection.
func (c *Collector) NoteCrash(part int, role Role, replica int, at sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failover(part, role, replica).CrashedAt = at
}

// NoteDetected records a failure detector declaring a process dead.
func (c *Collector) NoteDetected(part int, role Role, replica int, at sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failover(part, role, replica).DetectedAt = at
}

// NotePromoted records a backup completing its promotion to primary, with
// the buffered-transaction resolution counts.
func (c *Collector) NotePromoted(part int, at sim.Time, committed, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.failover(part, RolePrimary, 0)
	e.PromotedAt = at
	e.BufferedCommitted = committed
	e.BufferedDropped = dropped
}

// NoteInFlightAborted records coordinator-side failover aborts.
func (c *Collector) NoteInFlightAborted(part, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failover(part, RolePrimary, 0).AbortedInFlight = n
}

// NoteResend records a client re-sending a stalled single-partition attempt
// to a promoted primary.
func (c *Collector) NoteResend() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.FailoverResends++
}

// Promotions returns the number of completed backup promotions.
func (c *Collector) Promotions() int {
	n := 0
	for i := range c.Failovers {
		if c.Failovers[i].Role == RolePrimary && c.Failovers[i].PromotedAt > 0 {
			n++
		}
	}
	return n
}

// recovery returns (appending if needed) the event slot for a partition.
func (c *Collector) recovery(part int) *RecoveryEvent {
	for i := range c.Recoveries {
		if c.Recoveries[i].Partition == part {
			return &c.Recoveries[i]
		}
	}
	c.Recoveries = append(c.Recoveries, RecoveryEvent{Partition: part})
	return &c.Recoveries[len(c.Recoveries)-1]
}

// NoteRestartCrash records a crash-restart fault injection.
func (c *Collector) NoteRestartCrash(part int, at sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recovery(part).CrashedAt = at
}

// NoteRestartBegun records a restarted process beginning recovery, with the
// checkpoint and log-tail sizes it is loading.
func (c *Collector) NoteRestartBegun(part int, at sim.Time, ckptBytes, logBytes uint64, replayTxns int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.recovery(part)
	e.RestartedAt = at
	e.CheckpointBytes = ckptBytes
	e.LogBytes = logBytes
	e.ReplayTxns = replayTxns
}

// NoteRestartResumed records a restarted partition completing recovery and
// resuming service, with the buffered-transaction resolution counts.
func (c *Collector) NoteRestartResumed(part int, at sim.Time, committed, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.recovery(part)
	e.ResumedAt = at
	e.BufferedCommitted = committed
	e.BufferedDropped = dropped
}

// NoteMigration appends one completed elastic repartitioning event. The
// facade runs migrations serially between paused windows, so the event
// arrives complete and append order is cutover order.
func (c *Collector) NoteMigration(e MigrationEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Migrations = append(c.Migrations, e)
}

// Restarts returns the number of completed crash-restart recoveries.
func (c *Collector) Restarts() int {
	n := 0
	for i := range c.Recoveries {
		if c.Recoveries[i].ResumedAt > 0 {
			n++
		}
	}
	return n
}

// NewCollector builds a collector for the given window.
func NewCollector(warmupEnd, end sim.Time) *Collector {
	return &Collector{WarmupEnd: warmupEnd, End: end}
}

func (c *Collector) inWindow(now sim.Time) bool {
	return now >= c.WarmupEnd && now < c.End
}

// TxnDone records a completed transaction. User aborts count as completions
// (§5.3: the abort is the transaction's outcome); deadlock/timeout kills must
// be reported via Retry instead, followed eventually by a completion.
// multiRound marks multi-partition transactions that took more than one
// fragment round; readOnly marks declared read-only transactions; scan marks
// transactions whose plan declared a key-range scan.
func (c *Collector) TxnDone(now, start sim.Time, committed, multiPartition, multiRound, readOnly, scan bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Totals.record(committed, multiPartition, multiRound, readOnly, scan)
	c.TotalLat.Add(now-start, multiPartition, !committed)
	if !c.inWindow(now) {
		return
	}
	c.Window.record(committed, multiPartition, multiRound, readOnly, scan)
	c.WindowLat.Add(now-start, multiPartition, !committed)
}

// Retry records a transaction attempt killed and re-submitted.
func (c *Collector) Retry(now sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Totals.Retries++
	if c.inWindow(now) {
		c.Window.Retries++
	}
}

// Shed records an open-loop arrival dropped by a full client window and
// queue (overload backpressure).
func (c *Collector) NoteShed(now sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Totals.Shed++
	if c.inWindow(now) {
		c.Window.Shed++
	}
}

// Completed returns the number of completed transactions in the window.
func (c *Collector) Completed() uint64 { return c.Window.Completed() }

// Throughput returns completed transactions per second of measurement window.
func (c *Collector) Throughput() float64 {
	window := c.End - c.WarmupEnd
	if window <= 0 {
		return 0
	}
	return float64(c.Completed()) / (float64(window) / float64(sim.Second))
}

// LatencySet is the 2×2 latency split the evaluation reports: single- vs
// multi-partition crossed with committed vs user-aborted. The value is plain
// data (fixed-size arrays), so snapshots are struct copies and interval
// histograms are Subs of two copies.
type LatencySet struct {
	// hists is indexed [multiPartition][aborted].
	hists [2][2]Histogram
}

func idx(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Add records one completion latency in the matching class histogram.
func (s *LatencySet) Add(d sim.Time, multiPartition, aborted bool) {
	s.hists[idx(multiPartition)][idx(aborted)].Add(d)
}

// Hist returns the class histogram for in-place inspection.
func (s *LatencySet) Hist(multiPartition, aborted bool) *Histogram {
	return &s.hists[idx(multiPartition)][idx(aborted)]
}

// Merged returns all four class histograms merged into one.
func (s *LatencySet) Merged() Histogram {
	var out Histogram
	for i := range s.hists {
		for j := range s.hists[i] {
			out.Merge(&s.hists[i][j])
		}
	}
	return out
}

// Sub returns the per-class histogram deltas s − prev, the interval between
// two snapshots of the same collector (see Histogram.Sub for the min/max
// caveat).
func (s LatencySet) Sub(prev LatencySet) LatencySet {
	var out LatencySet
	for i := range s.hists {
		for j := range s.hists[i] {
			out.hists[i][j] = s.hists[i][j].Sub(prev.hists[i][j])
		}
	}
	return out
}

// N returns the total number of samples across all classes.
func (s *LatencySet) N() uint64 {
	var n uint64
	for i := range s.hists {
		for j := range s.hists[i] {
			n += s.hists[i][j].N()
		}
	}
	return n
}

// LatencySummary condenses one histogram into the percentiles the
// evaluation reports.
type LatencySummary struct {
	// N is the number of samples summarized.
	N uint64
	// P50, P95 and P99 are latency quantiles; Max is the largest sample.
	P50, P95, P99, Max sim.Time
}

// Summarize condenses a histogram into its reporting percentiles.
func Summarize(h *Histogram) LatencySummary {
	return LatencySummary{
		N:   h.N(),
		P50: h.Quantile(0.50),
		P95: h.Quantile(0.95),
		P99: h.Quantile(0.99),
		Max: h.Quantile(1),
	}
}

// Histogram is a log-bucketed latency histogram: bucket i covers
// [10µs·1.2^i, 10µs·1.2^(i+1)).
type Histogram struct {
	counts [128]uint64
	n      uint64
	min    sim.Time
	max    sim.Time
}

const (
	histBase   = 10 * sim.Microsecond
	histGrowth = 1.2
)

func (h *Histogram) bucket(v sim.Time) int {
	if v < histBase {
		return 0
	}
	b := int(math.Log(float64(v)/float64(histBase)) / math.Log(histGrowth))
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	return b
}

// Add records one sample.
func (h *Histogram) Add(v sim.Time) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[h.bucket(v)]++
	h.n++
}

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.n }

// Merge folds o's samples into h. Bucket counts add exactly; min and max
// combine, so quantiles of the merged histogram behave as if every sample
// had been Added to h directly.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
}

// Sub returns the histogram of samples recorded after prev was copied from
// the same (monotonically growing) histogram: bucket counts and n subtract
// exactly. The interval's true min and max are not recoverable from bucket
// counts, so they are tightened to the bounds of the interval's nonempty
// buckets: the whole-run min (max) is kept only when it falls inside the
// interval's lowest (highest) nonempty bucket, and otherwise the bucket edge
// is used. Without the tightening, a quiet interval after a slow warm-up
// inherits the warm-up's extremes — Quantile(0) and Quantile(1) report
// samples the interval never saw, and the top-bucket clamp drags P99 toward
// a stale whole-run max.
func (h Histogram) Sub(prev Histogram) Histogram {
	out := h
	lo, hi := -1, -1
	for i := range out.counts {
		out.counts[i] -= prev.counts[i]
		if out.counts[i] > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	out.n -= prev.n
	if out.n == 0 {
		return Histogram{}
	}
	// h.min is the min over all samples, so bucket(h.min) ≤ lo; equality
	// means the interval's lowest sample shares its bucket and the exact
	// value is as good a bound as the bucket edge. Same argument for max,
	// except the unbounded top bucket, whose only honest bound is the
	// whole-run max.
	if h.bucket(out.min) != lo {
		out.min = bucketLo(lo)
	}
	if hi < len(out.counts)-1 && h.bucket(out.max) != hi {
		out.max = bucketHi(hi)
	}
	return out
}

// bucketLo returns the lower bound of bucket i (zero for the first bucket,
// which absorbs everything below histBase).
func bucketLo(i int) sim.Time {
	if i <= 0 {
		return 0
	}
	return sim.Time(float64(histBase) * math.Pow(histGrowth, float64(i)))
}

// bucketHi returns the (exclusive) upper bound of bucket i.
func bucketHi(i int) sim.Time {
	return sim.Time(float64(histBase) * math.Pow(histGrowth, float64(i+1)))
}

// Quantile returns an upper bound of the q-quantile.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.n))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i == len(h.counts)-1 {
				// The top bucket is unbounded (overflow clamps into it),
				// so its only honest upper bound is the observed maximum.
				return h.max
			}
			hi := sim.Time(float64(histBase) * math.Pow(histGrowth, float64(i+1)))
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}
