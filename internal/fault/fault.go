// Package fault implements deterministic crash-fault injection. A fault
// schedule is a fixed list of fail-stop events — "kill partition 2's primary
// at t=150ms" — executed by a controller actor on the simulation's own event
// queue, so a faulted run remains a pure function of its configuration: the
// same seed and the same schedule reproduce the same crash, the same
// detection, the same promotion and the same Result, bit for bit.
//
// The controller only injects the faults. Detection (heartbeat timeouts) and
// recovery (backup promotion, in-flight transaction resolution) live in
// internal/replication, internal/partition and internal/coordinator; see
// docs/ARCHITECTURE.md "Failures and recovery".
package fault

import (
	"fmt"

	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/sim"
)

// Kind discriminates fault events.
type Kind int

const (
	// KindCrashPrimary kills a partition's primary process.
	KindCrashPrimary Kind = iota
	// KindCrashBackup kills one backup replica of a partition.
	KindCrashBackup
	// KindCrashRestart kills a partition's primary and, after a restart
	// delay, brings it back from disk: the restarter actor loads the latest
	// checkpoint, replays the durable command-log tail, and takes over.
	// Requires durability (WithDurability) and no replication.
	KindCrashRestart
)

// Event is one scheduled fail-stop crash.
type Event struct {
	Kind      Kind
	Partition msg.PartitionID
	// Replica is the 1-based backup index for KindCrashBackup.
	Replica int
	// At is the virtual time the process dies.
	At sim.Time
}

// Default failure-detector parameters: a heartbeat every millisecond and a
// 10 ms silence threshold. The threshold must comfortably exceed the worst
// heartbeat delivery delay (network latency plus the receiver's CPU
// backlog), or a loaded-but-alive process is declared dead.
const (
	DefaultHeartbeat = 1 * sim.Millisecond
	DefaultTimeout   = 10 * sim.Millisecond
)

// Detection parameterizes the timeout-based failure detector.
type Detection struct {
	// Heartbeat is the pulse interval.
	Heartbeat sim.Time
	// Timeout is the silence threshold after which a process is declared
	// dead. Backups stagger it by replica rank so exactly one promotes.
	Timeout sim.Time
}

// WithDefaults fills zero fields with the package defaults.
func (d Detection) WithDefaults() Detection {
	if d.Heartbeat == 0 {
		d.Heartbeat = DefaultHeartbeat
	}
	if d.Timeout == 0 {
		d.Timeout = DefaultTimeout
	}
	return d
}

// Validate checks a fault schedule against a cluster shape. The supported
// envelope is deliberately tight: each partition may appear in at most one
// event (a partition that lost its primary has no further redundancy to
// lose, and a second fault on the same replica chain is outside the one-
// promotion state machine).
func Validate(events []Event, partitions, replicas int, det Detection, durable bool) error {
	if len(events) == 0 {
		return nil
	}
	if det.Heartbeat <= 0 || det.Timeout < 2*det.Heartbeat {
		return fmt.Errorf("failure detection needs heartbeat > 0 and timeout >= 2*heartbeat (got heartbeat=%v timeout=%v)", det.Heartbeat, det.Timeout)
	}
	seen := make(map[msg.PartitionID]bool, len(events))
	for i, ev := range events {
		if ev.Partition < 0 || int(ev.Partition) >= partitions {
			return fmt.Errorf("fault %d: partition %d out of range [0,%d)", i, ev.Partition, partitions)
		}
		if ev.At < 0 {
			return fmt.Errorf("fault %d: negative time %v", i, ev.At)
		}
		if seen[ev.Partition] {
			return fmt.Errorf("fault %d: partition %d already has a scheduled fault (one per partition)", i, ev.Partition)
		}
		seen[ev.Partition] = true
		switch ev.Kind {
		case KindCrashPrimary:
			if replicas < 2 {
				return fmt.Errorf("fault %d: crashing partition %d's primary needs replicas >= 2 (got %d)", i, ev.Partition, replicas)
			}
		case KindCrashBackup:
			if ev.Replica < 1 || ev.Replica > replicas-1 {
				return fmt.Errorf("fault %d: backup replica %d out of range [1,%d]", i, ev.Replica, replicas-1)
			}
		case KindCrashRestart:
			if !durable {
				return fmt.Errorf("fault %d: crash-restart of partition %d needs durability (WithDurability)", i, ev.Partition)
			}
			if replicas != 1 {
				return fmt.Errorf("fault %d: crash-restart models recovery from disk and needs replicas == 1 (got %d; use CrashPrimary for failover)", i, replicas)
			}
		default:
			return fmt.Errorf("fault %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// Controller is the fault-injection actor: each scheduled Event is delivered
// to it at the event's time, and it kills the target process in the sim
// kernel (messages to a dead actor are dropped — fail-stop).
type Controller struct {
	Rec       *metrics.Collector
	Primaries []sim.ActorID
	Backups   [][]sim.ActorID
	// Restarters maps partitions to their restarter actors (crash-restart
	// schedules only; zero entries elsewhere). RestartDelay is how long
	// after the kill the restarter is told to begin recovery — the
	// supervisor noticing the dead process and re-launching it.
	Restarters   []sim.ActorID
	RestartDelay sim.Time
	// SkipKill suppresses the synchronous Context.Kill: the sharded runtime
	// pre-registers every crash as a KillAt marker in the victim's own shard
	// (a synchronous cross-shard kill would race the victim's event loop), so
	// the controller only records metrics and drives the restart path there.
	SkipKill bool
}

// Receive executes one scheduled fault.
func (c *Controller) Receive(ctx *sim.Context, m sim.Message) {
	ev, ok := m.(Event)
	if !ok {
		panic(fmt.Sprintf("fault: unexpected message %T", m))
	}
	switch ev.Kind {
	case KindCrashPrimary:
		if !c.SkipKill {
			ctx.Kill(c.Primaries[ev.Partition])
		}
		c.Rec.NoteCrash(int(ev.Partition), metrics.RolePrimary, 0, ctx.Now())
	case KindCrashBackup:
		if !c.SkipKill {
			ctx.Kill(c.Backups[ev.Partition][ev.Replica-1])
		}
		c.Rec.NoteCrash(int(ev.Partition), metrics.RoleBackup, ev.Replica, ctx.Now())
	case KindCrashRestart:
		if !c.SkipKill {
			ctx.Kill(c.Primaries[ev.Partition])
		}
		c.Rec.NoteRestartCrash(int(ev.Partition), ctx.Now())
		ctx.Send(c.Restarters[ev.Partition], msg.Restart{}, c.RestartDelay)
	}
}
