// Package simnet models the cluster interconnect: a single switch with a
// constant one-way latency between any two processes (the paper's gigabit
// Ethernet with a ~40 µs round trip, §3.3). Constant per-link latency plus
// the simulator's deterministic tie-breaking makes every link FIFO, which the
// central coordinator's global ordering relies on (§3.3).
package simnet

import (
	"sync/atomic"

	"specdb/internal/sim"
)

// Net sends messages with the configured latency.
type Net struct {
	oneWay sim.Time
	// sent counts messages, for diagnostics. It is atomic because on the
	// sharded parallel runtime every shard sends through the one shared Net;
	// the count is a pure sum and stays deterministic.
	sent atomic.Uint64
}

// New returns a network with the given one-way latency.
func New(oneWay sim.Time) *Net {
	return &Net{oneWay: oneWay}
}

// OneWay returns the configured latency.
func (n *Net) OneWay() sim.Time { return n.oneWay }

// Sent returns the number of messages sent so far.
func (n *Net) Sent() uint64 { return n.sent.Load() }

// Send delivers m to the destination actor after the one-way latency,
// measured from the sender's current local time.
func (n *Net) Send(ctx *sim.Context, to sim.ActorID, m sim.Message) {
	n.sent.Add(1)
	ctx.Send(to, m, n.oneWay)
}
