package simnet

import (
	"testing"

	"specdb/internal/sim"
)

type recorder struct {
	at []sim.Time
}

func (r *recorder) Receive(ctx *sim.Context, m sim.Message) {
	r.at = append(r.at, ctx.Now())
}

type sender struct {
	net *Net
	to  sim.ActorID
}

func (s *sender) Receive(ctx *sim.Context, m sim.Message) {
	ctx.Spend(5 * sim.Microsecond)
	s.net.Send(ctx, s.to, "hi")
}

func TestSendAddsLatencyAfterLocalWork(t *testing.T) {
	s := sim.New()
	n := New(20 * sim.Microsecond)
	r := &recorder{}
	rid := s.Register("dst", r)
	snd := &sender{net: n, to: rid}
	sid := s.Register("src", snd)
	s.SendAt(0, sid, "go")
	s.Drain()
	// Delivery = 5µs local spend + 20µs wire.
	if len(r.at) != 1 || r.at[0] != 25*sim.Microsecond {
		t.Fatalf("delivered at %v", r.at)
	}
	if n.Sent() != 1 {
		t.Fatalf("sent = %d", n.Sent())
	}
	if n.OneWay() != 20*sim.Microsecond {
		t.Fatalf("OneWay = %v", n.OneWay())
	}
}

// TestFIFOPerLink: constant latency plus deterministic tie-breaking keeps
// every link FIFO, which the central coordinator's global ordering relies on.
func TestFIFOPerLink(t *testing.T) {
	s := sim.New()
	n := New(20 * sim.Microsecond)
	var order []int
	dst := s.Register("dst", handlerFunc(func(ctx *sim.Context, m sim.Message) {
		order = append(order, m.(int))
	}))
	src := s.Register("src", handlerFunc(func(ctx *sim.Context, m sim.Message) {
		for i := 0; i < 10; i++ {
			n.Send(ctx, dst, i)
		}
	}))
	s.SendAt(0, src, "go")
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("link reordered: %v", order)
		}
	}
}

type handlerFunc func(*sim.Context, sim.Message)

func (f handlerFunc) Receive(ctx *sim.Context, m sim.Message) { f(ctx, m) }
