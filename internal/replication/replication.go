// Package replication implements the backup processes of §3.2/§4.3. H-Store
// uses k-replication instead of disk for durability: a transaction commits
// once k replicas have received it. Backups re-execute forwarded transactions
// sequentially, in the order the primary committed them, without locks or
// undo buffers — any data from remote partitions is baked into the forwarded
// work, so backups never participate in distributed transactions.
package replication

import (
	"fmt"

	"specdb/internal/costs"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// Backup is one backup replica of a partition.
type Backup struct {
	Store    *storage.Store
	Registry *txn.Registry
	Costs    *costs.Model
	Net      *simnet.Net
	Primary  sim.ActorID
	self     sim.ActorID

	// buffered holds prepared multi-partition transactions awaiting the
	// primary's decision forward.
	buffered map[msg.TxnID]*msg.ReplicaForward

	// Applied counts transactions applied to the backup store.
	Applied uint64
}

// New builds a backup.
func New(store *storage.Store, reg *txn.Registry, c *costs.Model, net *simnet.Net) *Backup {
	return &Backup{
		Store:    store,
		Registry: reg,
		Costs:    c,
		Net:      net,
		buffered: make(map[msg.TxnID]*msg.ReplicaForward),
	}
}

// Bind sets the backup's own actor ID (after scheduler registration).
func (b *Backup) Bind(self sim.ActorID) { b.self = self }

// Receive handles primary traffic.
func (b *Backup) Receive(ctx *sim.Context, m sim.Message) {
	switch v := m.(type) {
	case *msg.ReplicaForward:
		if v.Committed {
			b.apply(ctx, v)
		} else {
			// Prepared but undecided: buffer (a re-forward after a
			// speculative cascade supersedes the previous one).
			b.buffered[v.Txn] = v
		}
		b.Net.Send(ctx, b.Primary, &msg.ReplicaAck{Txn: v.Txn, From: ctx.Self(), Seq: v.Seq})
	case *msg.ReplicaDecision:
		fw, ok := b.buffered[v.Txn]
		if !ok {
			return // aborted before preparing, or never forwarded
		}
		delete(b.buffered, v.Txn)
		if v.Commit {
			b.apply(ctx, fw)
		}
	default:
		panic(fmt.Sprintf("backup: unexpected message %T", m))
	}
}

// apply re-executes a transaction's fragments against the backup store.
func (b *Backup) apply(ctx *sim.Context, fw *msg.ReplicaForward) {
	for _, w := range fw.Works {
		proc := b.Registry.Get(fw.Proc)
		view := storage.NewTxnView(b.Store, nil, nil)
		if _, err := proc.Run(view, w); err != nil {
			panic(fmt.Sprintf("backup: forwarded transaction %d aborted on replay: %v", fw.Txn, err))
		}
		ctx.Spend(b.Costs.ReplicaApply(fw.Proc, view.Reads+view.Writes, view.Writes))
	}
	b.Applied++
}
