// Package replication implements the backup processes of §3.2/§4.3 and the
// failover that makes the k-safety machinery worth having. H-Store uses
// k-replication instead of disk for durability: a transaction commits once k
// replicas have received it. Backups re-execute forwarded transactions
// sequentially, in the order the primary committed them, without locks or
// undo buffers — any data from remote partitions is baked into the forwarded
// work, so backups never participate in distributed transactions.
//
// When fault injection is enabled, a backup also runs a timeout-based
// failure detector over its primary's heartbeats. On detecting a crash, it
// promotes itself: it already holds all committed state plus the
// prepared-but-undecided buffer, so it builds a fresh partition process
// around its own store, asks the coordinator for the outcomes of the
// buffered transactions (and, implicitly, for in-flight transactions
// touching the dead partition to be resolved), and takes over as primary —
// deduplicating client recovery resends so no transaction commits twice.
// See docs/ARCHITECTURE.md "Failures and recovery".
package replication

import (
	"fmt"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/partition"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// pulseTick and checkTick drive the backup's heartbeat loop (backup-crash
// detection by the primary) and its failure detector over the primary.
type (
	pulseTick struct{}
	checkTick struct{}
)

// Backup is one backup replica of a partition.
type Backup struct {
	Store    *storage.Store
	Registry *txn.Registry
	Costs    *costs.Model
	Net      *simnet.Net
	Primary  sim.ActorID

	// Failover wiring (set by the facade when fault injection is enabled).
	// Partition is the replicated partition; Replica is this backup's
	// 1-based rank, which staggers the detection timeout so exactly one
	// surviving backup promotes. Peers are the partition's other backups.
	Partition   msg.PartitionID
	Replica     int
	Coordinator sim.ActorID
	Peers       []sim.ActorID
	// Heartbeat and Timeout parameterize the failure detector.
	Heartbeat sim.Time
	Timeout   sim.Time
	// EngineFactory builds the concurrency control engine on promotion;
	// the facade keeps it current across adaptive scheme switches.
	EngineFactory func(env core.Env) core.Engine
	// Rec records failover events (may be nil outside fault runs).
	Rec *metrics.Collector

	self sim.ActorID

	// buffered holds prepared multi-partition transactions awaiting the
	// primary's decision forward; bufOrder preserves forward order for the
	// recovery query.
	buffered map[msg.TxnID]*msg.ReplicaForward
	bufOrder []msg.TxnID

	// lastReply remembers, per client, the most recently applied committed
	// single-partition transaction and its reply. Clients are closed-loop
	// (at most one transaction outstanding), so one entry per client is
	// exactly the deduplication state a promoted primary needs.
	lastReply map[sim.ActorID]*msg.ClientReply

	// Failure detection and promotion state.
	pulsing    bool
	monitoring bool
	lastHeard  sim.Time
	// promoted is the partition process this backup becomes on promotion.
	// resolved is set once the RecoveryOutcome has arrived AND every
	// buffered transaction has been resolved; until then new fragments
	// are stashed, because applying a late old-world commit directly to
	// the store underneath an engine holding uncommitted undo state could
	// let a later rollback erase the committed write.
	promoted    *partition.Partition
	outcomeSeen bool
	resolved    bool
	stash       []*msg.Fragment
	// bufCommitted and bufDropped count buffered transactions resolved
	// during recovery (for the failover metrics).
	bufCommitted, bufDropped int

	// view is the reusable replay view (apply is synchronous).
	view storage.TxnView

	// Applied counts transactions applied to the backup store.
	Applied uint64
}

// New builds a backup.
func New(store *storage.Store, reg *txn.Registry, c *costs.Model, net *simnet.Net) *Backup {
	return &Backup{
		Store:     store,
		Registry:  reg,
		Costs:     c,
		Net:       net,
		buffered:  make(map[msg.TxnID]*msg.ReplicaForward),
		lastReply: make(map[sim.ActorID]*msg.ClientReply),
	}
}

// Bind sets the backup's own actor ID (after scheduler registration).
func (b *Backup) Bind(self sim.ActorID) { b.self = self }

// BufferedLen reports the number of buffered prepared-but-undecided
// transactions (tests: must be zero at quiescence).
func (b *Backup) BufferedLen() int { return len(b.buffered) }

// Promoted returns the partition process this backup became after promotion,
// or nil while it is still a passive backup.
func (b *Backup) Promoted() *partition.Partition { return b.promoted }

// Recovering reports whether a promotion is in flight: the backup has taken
// over but old-world transactions are still being resolved (the coordinator's
// RecoveryOutcome, plus Recovery-flagged decisions for any buffered
// transaction that was still undecided at promotion).
func (b *Backup) Recovering() bool { return b.promoted != nil && !b.resolved }

// Receive handles primary traffic, failure detection, and — after promotion
// — everything a partition primary handles.
func (b *Backup) Receive(ctx *sim.Context, m sim.Message) {
	if b.promoted != nil {
		b.receivePromoted(ctx, m)
		return
	}
	switch v := m.(type) {
	case *msg.ReplicaForward:
		if v.Committed {
			b.apply(ctx, v)
			if v.Reply != nil {
				b.lastReply[v.Client] = v.Reply
			}
		} else {
			// Prepared but undecided: buffer (a re-forward after a
			// speculative cascade supersedes the previous one).
			if _, seen := b.buffered[v.Txn]; !seen {
				b.bufOrder = append(b.bufOrder, v.Txn)
			}
			b.buffered[v.Txn] = v
		}
		b.Net.Send(ctx, b.Primary, &msg.ReplicaAck{Txn: v.Txn, From: ctx.Self(), Seq: v.Seq})
	case *msg.ReplicaDecision:
		fw, ok := b.buffered[v.Txn]
		if !ok {
			return // aborted before preparing, or never forwarded
		}
		b.unbuffer(v.Txn)
		if v.Commit {
			b.apply(ctx, fw)
		}
	case *msg.Heartbeat:
		b.lastHeard = ctx.Now()
	case msg.StartMonitor:
		if !b.monitoring {
			b.monitoring = true
			b.lastHeard = ctx.Now()
			ctx.After(b.staggeredTimeout(), checkTick{})
		}
	case checkTick:
		b.check(ctx)
	case msg.StartPulse:
		if !b.pulsing {
			b.pulsing = true
			b.pulse(ctx)
		}
	case pulseTick:
		b.pulse(ctx)
	case msg.StopPulse:
		b.pulsing = false
	case *msg.NewPrimary:
		// A lower-ranked peer promoted first: re-target acknowledgments
		// and stand down this backup's own failure detector.
		b.Primary = v.Actor
		b.monitoring = false
	case *msg.ReplicaMigrateOut:
		// The primary surrendered a key range at a drained quiescent point.
		// The FIFO link guarantees every decision for a transaction that
		// committed before the migration has already been delivered, so no
		// buffered transaction can touch the departing rows.
		b.applyMigrateOut(v.Lo, v.Hi)
	case *msg.ReplicaMigrateIn:
		for _, r := range v.Rows {
			b.Store.Table(r.Table).Put(r.Key, r.Val)
		}
	default:
		panic(fmt.Sprintf("backup: unexpected message %T", m))
	}
}

// applyMigrateOut deletes the migrated range from the backup store, mirroring
// the primary's surrender.
func (b *Backup) applyMigrateOut(lo, hi string) {
	var doomed []struct{ table, key string }
	for _, tbl := range b.Store.TableNames() {
		b.Store.Table(tbl).Ascend(lo, hi, func(k string, v any) bool {
			doomed = append(doomed, struct{ table, key string }{tbl, k})
			return true
		})
	}
	for _, d := range doomed {
		b.Store.Table(d.table).Delete(d.key)
	}
}

// staggeredTimeout widens the detection timeout by replica rank so that the
// lowest-ranked surviving backup always declares the crash first and
// higher-ranked peers learn of its promotion before their own timers fire.
func (b *Backup) staggeredTimeout() sim.Time {
	return b.Timeout * sim.Time(b.Replica)
}

// pulse heartbeats the primary (backup-crash detection) and re-arms.
func (b *Backup) pulse(ctx *sim.Context) {
	if !b.pulsing {
		return
	}
	b.Net.Send(ctx, b.Primary, &msg.Heartbeat{Partition: b.Partition, From: ctx.Self()})
	ctx.After(b.Heartbeat, pulseTick{})
}

// check is the failure detector: if the primary has been silent past the
// (rank-staggered) timeout, promote; otherwise re-arm for the next deadline.
func (b *Backup) check(ctx *sim.Context) {
	if !b.monitoring {
		return
	}
	deadline := b.lastHeard + b.staggeredTimeout()
	if ctx.Now() < deadline {
		ctx.After(deadline-ctx.Now(), checkTick{})
		return
	}
	b.promote(ctx)
}

// promote turns this backup into the partition's primary. The store already
// holds every committed transaction; the buffered prepared transactions are
// resolved through the coordinator's decision log (RecoveryQuery →
// RecoveryOutcome). Surviving peer backups become the new primary's backups.
func (b *Backup) promote(ctx *sim.Context) {
	b.monitoring = false
	if b.Rec != nil {
		b.Rec.NoteDetected(int(b.Partition), metrics.RolePrimary, 0, ctx.Now())
	}
	inner := partition.New(partition.Config{
		ID:       b.Partition,
		Store:    b.Store,
		Registry: b.Registry,
		Costs:    b.Costs,
		Net:      b.Net,
		Backups:  append([]sim.ActorID(nil), b.Peers...),
	})
	inner.Bind(b.self, b.EngineFactory)
	b.promoted = inner
	for _, p := range b.Peers {
		b.Net.Send(ctx, p, &msg.NewPrimary{Partition: b.Partition, Actor: b.self})
	}
	b.Net.Send(ctx, b.Coordinator, &msg.RecoveryQuery{
		Partition:  b.Partition,
		NewPrimary: b.self,
		Buffered:   append([]msg.TxnID(nil), b.bufOrder...),
	})
}

// receivePromoted dispatches messages after promotion: recovery traffic and
// old-world decisions are resolved against the buffered transactions; all
// normal partition traffic is delegated to the inner partition process.
func (b *Backup) receivePromoted(ctx *sim.Context, m sim.Message) {
	switch v := m.(type) {
	case *msg.RecoveryOutcome:
		for _, o := range v.Outcomes {
			b.resolveBuffered(ctx, o.Txn, o.Commit)
		}
		b.outcomeSeen = true
		b.maybeResume(ctx)
	case *msg.Fragment:
		if !b.resolved {
			// Recovery still in flight: hold new work until every
			// buffered old-world transaction has been resolved, so their
			// writes land before anything new executes (and records undo)
			// on top of them.
			b.stash = append(b.stash, v)
			return
		}
		b.fragment(ctx, v)
	case *msg.Decision:
		if _, old := b.buffered[v.Txn]; old {
			// Old-world transaction decided after promotion: resolve the
			// buffered forward; the inner engine never saw it.
			b.resolveBuffered(ctx, v.Txn, v.Commit)
			b.maybeResume(ctx)
			return
		}
		if v.Recovery {
			return // old-world transaction with no state here
		}
		b.promoted.Receive(ctx, m)
	case *msg.ReplicaForward, *msg.ReplicaDecision, *msg.Heartbeat,
		msg.StartMonitor, msg.StartPulse, msg.StopPulse, checkTick, pulseTick, *msg.NewPrimary,
		*msg.ReplicaMigrateOut, *msg.ReplicaMigrateIn:
		// Stale pre-crash traffic or detector machinery; promotion is
		// final and the old primary is dead. (Migration forwards reach a
		// promoted backup as MigrateOut/MigrateIn via the default case —
		// replica-directed copies could only come from the dead primary.)
	default:
		// Everything else — engine timers, peer acks — belongs to the
		// inner partition process.
		b.promoted.Receive(ctx, m)
	}
}

// fragment delivers a fragment to the inner partition, deduplicating client
// recovery resends: if the client's last applied committed transaction is
// the one being resent, the stored reply is returned instead of executing
// the transaction a second time.
func (b *Backup) fragment(ctx *sim.Context, f *msg.Fragment) {
	if lr := b.lastReply[f.Client]; lr != nil && lr.Txn == f.Txn {
		b.Net.Send(ctx, f.Client, lr)
		return
	}
	b.promoted.Receive(ctx, f)
}

// maybeResume opens the promoted primary for business once the recovery
// outcome has arrived and no buffered transaction remains (transactions
// still pending at the coordinator resolve through Recovery-flagged
// decisions; holding new work until then keeps old-world commits strictly
// before new-world execution). Stashed fragments replay in arrival order.
func (b *Backup) maybeResume(ctx *sim.Context) {
	if b.resolved || !b.outcomeSeen || len(b.buffered) > 0 {
		return
	}
	b.resolved = true
	if b.Rec != nil {
		b.Rec.NotePromoted(int(b.Partition), ctx.Now(), b.bufCommitted, b.bufDropped)
	}
	stash := b.stash
	b.stash = nil
	for _, f := range stash {
		b.fragment(ctx, f)
	}
}

// resolveBuffered applies or drops one buffered transaction and relays the
// outcome to peer backups (whose buffers mirror this one).
func (b *Backup) resolveBuffered(ctx *sim.Context, id msg.TxnID, commit bool) {
	fw, ok := b.buffered[id]
	if !ok {
		return
	}
	b.unbuffer(id)
	if commit {
		b.apply(ctx, fw)
		b.bufCommitted++
	} else {
		b.bufDropped++
	}
	for _, p := range b.Peers {
		b.Net.Send(ctx, p, &msg.ReplicaDecision{Txn: id, Commit: commit})
	}
}

// unbuffer removes a transaction from the prepared buffer and its order.
func (b *Backup) unbuffer(id msg.TxnID) {
	delete(b.buffered, id)
	for i, t := range b.bufOrder {
		if t == id {
			b.bufOrder = append(b.bufOrder[:i], b.bufOrder[i+1:]...)
			break
		}
	}
}

// apply re-executes a transaction's fragments against the backup store.
// Replay is synchronous (no locks, no undo), so one reusable view serves
// every work.
func (b *Backup) apply(ctx *sim.Context, fw *msg.ReplicaForward) {
	proc := b.Registry.Get(fw.Proc)
	for _, w := range fw.Works {
		view := &b.view
		view.Reset(b.Store, nil, nil)
		if _, err := proc.Run(view, w); err != nil {
			panic(fmt.Sprintf("backup: forwarded transaction %d aborted on replay: %v", fw.Txn, err))
		}
		ctx.Spend(b.Costs.ReplicaApply(fw.Proc, view.Reads+view.Writes, view.Writes))
	}
	b.Applied++
}
