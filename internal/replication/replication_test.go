package replication

import (
	"testing"

	"specdb/internal/costs"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// incProc increments the key given as work.
type incProc struct{}

func (incProc) Name() string { return "inc" }
func (incProc) Plan(args any, cat *txn.Catalog) txn.Plan {
	panic("unused")
}
func (incProc) Continue(args any, round int, prior []msg.FragmentResult, cat *txn.Catalog) map[msg.PartitionID]any {
	panic("unused")
}
func (incProc) Run(view *storage.TxnView, w any) (any, error) {
	k := w.(string)
	v, _ := view.GetForUpdate("t", k)
	n := int64(0)
	if v != nil {
		n = v.(int64)
	}
	view.Put("t", k, n+1)
	return n + 1, nil
}
func (incProc) Output(args any, final []msg.FragmentResult) any { return nil }

type primaryStub struct{ acks []*msg.ReplicaAck }

func (p *primaryStub) Receive(ctx *sim.Context, m sim.Message) {
	if a, ok := m.(*msg.ReplicaAck); ok {
		p.acks = append(p.acks, a)
	}
}

type fixture struct {
	s       *sim.Scheduler
	b       *Backup
	bID     sim.ActorID
	primary *primaryStub
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{s: sim.New()}
	reg := txn.NewRegistry()
	reg.Register(incProc{})
	store := storage.NewStore()
	store.AddTable(storage.NewHashTable("t"))
	cm := costs.Default()
	f.b = New(store, reg, &cm, simnet.New(cm.OneWayLatency))
	f.primary = &primaryStub{}
	pid := f.s.Register("primary", f.primary)
	f.b.Primary = pid
	f.bID = f.s.Register("backup", f.b)
	f.b.Bind(f.bID)
	return f
}

func (f *fixture) get(k string) int64 {
	v, ok := f.b.Store.Table("t").Get(k)
	if !ok {
		return 0
	}
	return v.(int64)
}

func TestCommittedForwardAppliesImmediately(t *testing.T) {
	f := newFixture(t)
	f.s.SendAt(0, f.bID, &msg.ReplicaForward{
		Txn: 1, Proc: "inc", Works: []any{"x", "x"}, Committed: true, Seq: 1,
	})
	f.s.Drain()
	if f.get("x") != 2 {
		t.Fatalf("x = %d", f.get("x"))
	}
	if len(f.primary.acks) != 1 || f.primary.acks[0].Seq != 1 {
		t.Fatalf("acks = %+v", f.primary.acks)
	}
	if f.b.Applied != 1 {
		t.Fatalf("applied = %d", f.b.Applied)
	}
}

func TestPreparedForwardWaitsForDecision(t *testing.T) {
	f := newFixture(t)
	f.s.SendAt(0, f.bID, &msg.ReplicaForward{
		Txn: 2, Proc: "inc", Works: []any{"y"}, Seq: 1,
	})
	f.s.Drain()
	if f.get("y") != 0 {
		t.Fatal("prepared transaction applied before decision")
	}
	if len(f.primary.acks) != 1 {
		t.Fatal("prepare not acked")
	}
	f.s.SendAt(f.s.Now(), f.bID, &msg.ReplicaDecision{Txn: 2, Commit: true})
	f.s.Drain()
	if f.get("y") != 1 {
		t.Fatalf("y = %d after commit", f.get("y"))
	}
}

func TestAbortDecisionDropsBuffer(t *testing.T) {
	f := newFixture(t)
	f.s.SendAt(0, f.bID, &msg.ReplicaForward{Txn: 3, Proc: "inc", Works: []any{"z"}, Seq: 1})
	f.s.SendAt(1, f.bID, &msg.ReplicaDecision{Txn: 3, Commit: false})
	f.s.Drain()
	if f.get("z") != 0 {
		t.Fatal("aborted transaction applied")
	}
	// A later decision for the same id is a no-op.
	f.s.SendAt(f.s.Now(), f.bID, &msg.ReplicaDecision{Txn: 3, Commit: true})
	f.s.Drain()
	if f.get("z") != 0 {
		t.Fatal("dropped buffer resurrected")
	}
}

func TestReforwardSupersedes(t *testing.T) {
	f := newFixture(t)
	// First speculative execution forwarded, then superseded after a
	// cascade re-execution with different work.
	f.s.SendAt(0, f.bID, &msg.ReplicaForward{Txn: 4, Proc: "inc", Works: []any{"a"}, Seq: 1})
	f.s.SendAt(1, f.bID, &msg.ReplicaForward{Txn: 4, Proc: "inc", Works: []any{"b"}, Seq: 2})
	f.s.SendAt(2, f.bID, &msg.ReplicaDecision{Txn: 4, Commit: true})
	f.s.Drain()
	if f.get("a") != 0 || f.get("b") != 1 {
		t.Fatalf("a=%d b=%d; the re-forward must win", f.get("a"), f.get("b"))
	}
	if len(f.primary.acks) != 2 {
		t.Fatalf("acks = %d", len(f.primary.acks))
	}
}

func TestDecisionForUnknownTxnIgnored(t *testing.T) {
	f := newFixture(t)
	f.s.SendAt(0, f.bID, &msg.ReplicaDecision{Txn: 9, Commit: true})
	f.s.Drain()
	if f.b.Applied != 0 {
		t.Fatal("applied a never-forwarded transaction")
	}
}

func TestApplyChargesCPU(t *testing.T) {
	f := newFixture(t)
	f.s.SendAt(0, f.bID, &msg.ReplicaForward{
		Txn: 1, Proc: "inc", Works: []any{"x"}, Committed: true, Seq: 1,
	})
	f.s.Drain()
	if f.s.BusyTime(f.bID) == 0 {
		t.Fatal("backup consumed no CPU")
	}
}
