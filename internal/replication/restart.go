package replication

import (
	"fmt"

	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/durable"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/partition"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
)

// Restarter is the crash-restart actor for a durable, unreplicated partition:
// the "process supervisor re-launching the database" half of crash-restart
// faults. It idles until the fault controller's msg.Restart, then recovers the
// partition from disk — load the latest checkpoint, replay the durable command-
// log tail in commit order — and takes over as primary through the same
// recovery protocol a promoted backup uses: prepared-but-undecided transactions
// resolve through the coordinator's decision log (RecoveryQuery →
// RecoveryOutcome plus Recovery-flagged Decisions), new fragments are held
// until the old world is fully resolved, and client recovery resends are
// deduplicated against the replayed replies.
type Restarter struct {
	Log      *durable.Logger
	Registry *txn.Registry
	Costs    *costs.Model
	Net      *simnet.Net

	// Partition is the partition this restarter recovers; Coordinator
	// receives its RecoveryQuery.
	Partition   msg.PartitionID
	Coordinator sim.ActorID
	// EngineFactory builds the concurrency control engine on restart; the
	// facade keeps it current across adaptive scheme switches.
	EngineFactory func(env core.Env) core.Engine
	// Rec records the recovery timeline (may be nil in unit tests).
	Rec *metrics.Collector

	self sim.ActorID

	// store is the recovered store: the checkpoint snapshot with the log
	// tail replayed on top.
	store *storage.Store

	// promoted is the partition process this restarter becomes; resolved is
	// set once the RecoveryOutcome has arrived AND every buffered prepared
	// transaction has been resolved (same hold-the-new-world discipline as
	// backup promotion).
	promoted    *partition.Partition
	outcomeSeen bool
	resolved    bool
	stash       []*msg.Fragment

	// buffered holds replayed prepared-but-undecided records awaiting the
	// coordinator's outcome; bufOrder preserves log order for the query.
	buffered map[msg.TxnID]*durable.Record
	bufOrder []msg.TxnID

	// lastReply is rebuilt from committed records during replay and
	// deduplicates client recovery resends, exactly as on a promoted backup.
	lastReply map[sim.ActorID]*msg.ClientReply

	bufCommitted, bufDropped int

	// view is the reusable replay view (replay is synchronous).
	view storage.TxnView

	replayTxns int
	logBytes   uint64

	// Replayed counts transactions re-executed from the log (tail replay
	// plus recovered commits).
	Replayed uint64
}

// NewRestarter builds a restarter for one partition's command log.
func NewRestarter(log *durable.Logger, reg *txn.Registry, c *costs.Model, net *simnet.Net) *Restarter {
	return &Restarter{
		Log:       log,
		Registry:  reg,
		Costs:     c,
		Net:       net,
		buffered:  make(map[msg.TxnID]*durable.Record),
		lastReply: make(map[sim.ActorID]*msg.ClientReply),
	}
}

// Bind sets the restarter's own actor ID (after scheduler registration).
func (r *Restarter) Bind(self sim.ActorID) { r.self = self }

// Promoted returns the partition process this restarter became after
// recovery, or nil while the partition is still down.
func (r *Restarter) Promoted() *partition.Partition { return r.promoted }

// Recovering reports whether a restart is in flight: the process is back up
// but old-world transactions are still being resolved.
func (r *Restarter) Recovering() bool { return r.promoted != nil && !r.resolved }

// Receive idles until the restart order, then behaves like a promoted backup.
func (r *Restarter) Receive(ctx *sim.Context, m sim.Message) {
	if r.promoted != nil {
		r.receivePromoted(ctx, m)
		return
	}
	if _, ok := m.(msg.Restart); !ok {
		panic(fmt.Sprintf("restarter: unexpected message %T before restart", m))
	}
	r.restart(ctx)
}

// restart performs crash recovery: pay the disk read for the checkpoint
// image, adopt its snapshot, replay the durable log tail in commit order
// (committed records apply; prepared records buffer, latest re-append wins;
// decision records resolve), rebuild the reply-deduplication table, then
// reattach the log, build the partition process around the recovered store,
// and ask the coordinator for the outcomes of the still-undecided buffer.
func (r *Restarter) restart(ctx *sim.Context) {
	began := ctx.Now()
	ck := r.Log.Latest()
	ctx.Spend(r.Log.ReadCost(ck.Bytes))
	r.store = ck.Store
	tail := r.Log.Tail()
	for i := range tail {
		rec := &tail[i]
		r.logBytes += uint64(rec.Size)
		switch rec.Kind {
		case durable.RecordCommitted:
			r.apply(ctx, rec)
			if rec.Reply != nil {
				r.lastReply[rec.Client] = rec.Reply
			}
			r.replayTxns++
		case durable.RecordPrepared:
			// A re-appended record (speculative re-execution before the
			// crash) supersedes the earlier one, keeping first-seen order.
			if _, seen := r.buffered[rec.Txn]; !seen {
				r.bufOrder = append(r.bufOrder, rec.Txn)
			}
			r.buffered[rec.Txn] = rec
		case durable.RecordDecision:
			rb, ok := r.buffered[rec.Txn]
			if !ok {
				continue // aborted before preparing, or resolved below the checkpoint
			}
			r.unbufferRec(rec.Txn)
			if rec.Commit {
				r.apply(ctx, rb)
				r.replayTxns++
			}
		case durable.RecordMigration:
			// Elastic repartitioning step, appended at a drained quiescent
			// point: no transaction to re-execute, the store mutates
			// directly. Replaying it restores the post-migration key
			// placement, so re-executed later transactions find (or miss)
			// exactly the rows the original run did.
			if rec.MigOut {
				var doomed []msg.MigRow
				for _, tbl := range r.store.TableNames() {
					r.store.Table(tbl).Ascend(rec.MigLo, rec.MigHi, func(k string, v any) bool {
						doomed = append(doomed, msg.MigRow{Table: tbl, Key: k})
						return true
					})
				}
				for _, d := range doomed {
					r.store.Table(d.Table).Delete(d.Key)
				}
			} else {
				for _, mr := range rec.MigRows {
					r.store.Table(mr.Table).Put(mr.Key, mr.Val)
				}
			}
		}
	}
	ctx.Spend(r.Log.ReadCost(r.logBytes))
	r.Log.Reattach(r.self)
	inner := partition.New(partition.Config{
		ID:       r.Partition,
		Store:    r.store,
		Registry: r.Registry,
		Costs:    r.Costs,
		Net:      r.Net,
		Logger:   r.Log,
		Rec:      r.Rec,
	})
	inner.Bind(r.self, r.EngineFactory)
	r.promoted = inner
	if r.Rec != nil {
		r.Rec.NoteRestartBegun(int(r.Partition), began, ck.Bytes, r.logBytes, r.replayTxns)
	}
	r.Net.Send(ctx, r.Coordinator, &msg.RecoveryQuery{
		Partition:  r.Partition,
		NewPrimary: r.self,
		Buffered:   append([]msg.TxnID(nil), r.bufOrder...),
	})
}

// receivePromoted dispatches messages after the process is back up: recovery
// traffic and old-world decisions resolve against the buffered records; all
// normal partition traffic is delegated to the inner partition process.
func (r *Restarter) receivePromoted(ctx *sim.Context, m sim.Message) {
	switch v := m.(type) {
	case *msg.RecoveryOutcome:
		for _, o := range v.Outcomes {
			r.resolveBuffered(ctx, o.Txn, o.Commit)
		}
		r.outcomeSeen = true
		r.maybeResume(ctx)
	case *msg.Fragment:
		if !r.resolved {
			// Recovery still in flight: hold new work until every buffered
			// old-world transaction has been resolved, so their writes land
			// before anything new executes on top of them.
			r.stash = append(r.stash, v)
			return
		}
		r.fragment(ctx, v)
	case *msg.Decision:
		if _, old := r.buffered[v.Txn]; old {
			r.resolveBuffered(ctx, v.Txn, v.Commit)
			r.maybeResume(ctx)
			return
		}
		if v.Recovery {
			return // old-world transaction with no state here
		}
		r.promoted.Receive(ctx, m)
	default:
		// Everything else — disk completions, group-commit flush ticks,
		// engine timers — belongs to the inner partition process.
		r.promoted.Receive(ctx, m)
	}
}

// fragment delivers a fragment to the inner partition, deduplicating client
// recovery resends against the replies replayed from the log.
func (r *Restarter) fragment(ctx *sim.Context, f *msg.Fragment) {
	if lr := r.lastReply[f.Client]; lr != nil && lr.Txn == f.Txn {
		r.Net.Send(ctx, f.Client, lr)
		return
	}
	r.promoted.Receive(ctx, f)
}

// maybeResume opens the recovered partition for business once the recovery
// outcome has arrived and no buffered record remains. Stashed fragments
// replay in arrival order.
func (r *Restarter) maybeResume(ctx *sim.Context) {
	if r.resolved || !r.outcomeSeen || len(r.buffered) > 0 {
		return
	}
	r.resolved = true
	if r.Rec != nil {
		r.Rec.NoteRestartResumed(int(r.Partition), ctx.Now(), r.bufCommitted, r.bufDropped)
	}
	stash := r.stash
	r.stash = nil
	for _, f := range stash {
		r.fragment(ctx, f)
	}
}

// resolveBuffered applies or drops one buffered prepared record and appends
// the recovered outcome to the log, keeping it self-contained: the decision
// record the crash lost is re-created from the coordinator's answer.
func (r *Restarter) resolveBuffered(ctx *sim.Context, id msg.TxnID, commit bool) {
	rec, ok := r.buffered[id]
	if !ok {
		return
	}
	r.unbufferRec(id)
	if commit {
		r.apply(ctx, rec)
		r.bufCommitted++
	} else {
		r.bufDropped++
	}
	r.Log.AppendDecision(ctx, id, commit)
}

// unbufferRec removes a record from the prepared buffer and its order.
func (r *Restarter) unbufferRec(id msg.TxnID) {
	delete(r.buffered, id)
	for i, t := range r.bufOrder {
		if t == id {
			r.bufOrder = append(r.bufOrder[:i], r.bufOrder[i+1:]...)
			break
		}
	}
}

// apply re-executes one logged transaction against the recovered store.
// Replay is synchronous and deterministic (no locks, no undo — the log only
// holds transactions whose commit was decided), priced like replica apply.
func (r *Restarter) apply(ctx *sim.Context, rec *durable.Record) {
	if len(rec.Works) == 0 {
		return
	}
	proc := r.Registry.Get(rec.Proc)
	for _, w := range rec.Works {
		view := &r.view
		view.Reset(r.store, nil, nil)
		if _, err := proc.Run(view, w); err != nil {
			panic(fmt.Sprintf("restarter: logged transaction %d aborted on replay: %v", rec.Txn, err))
		}
		ctx.Spend(r.Costs.ReplicaApply(rec.Proc, view.Reads+view.Writes, view.Writes))
	}
	r.Replayed++
}
