// Package costs defines the virtual-time cost model. The paper's results are
// driven by the ratios between per-transaction CPU time and network latency
// (§3.3: 26 µs of CPU per TPC-C transaction vs a 40 µs round trip); this
// package makes every such quantity an explicit parameter.
//
// Defaults are calibrated so the two-partition microbenchmark reproduces the
// measured model variables of Table 2:
//
// A 12-key read/write transaction performs 24 row operations (12 reads, 12
// writes) and 24 lock-manager calls when locking is engaged:
//
//	tsp  ≈ 64 µs   single-partition execution      = Base + 24 ops · PerRow
//	tspS ≈ 73 µs   speculative (undo) execution    = tsp + 12 writes · UndoPerWrite
//	tmpC ≈ 55 µs   multi-partition CPU/partition   = Base + 12 ops · PerRow + Decision
//	l    ≈ 13 %    locking surcharge               = 24 lock calls · LockPerAcquire / tspS
package costs

import (
	"specdb/internal/sim"
)

// Model holds every virtual-time cost parameter.
type Model struct {
	// FragmentBase is the fixed CPU charge per fragment execution.
	FragmentBase sim.Time
	// PerProcBase overrides FragmentBase for specific procedures.
	PerProcBase map[string]sim.Time
	// PerRow is charged per row operation (each read and each write).
	PerRow sim.Time
	// UndoPerWrite is the surcharge per write when recording undo
	// information (the tspS − tsp gap).
	UndoPerWrite sim.Time
	// LockPerAcquire is the surcharge per lock-manager call (the l
	// overhead of §6.3: acquiring, releasing and managing the table).
	LockPerAcquire sim.Time
	// AbortedFragment is the (cheaper) charge for a fragment that aborts
	// at the start of execution (§5.3).
	AbortedFragment sim.Time
	// Decision is the charge for processing a 2PC outcome at a partition.
	Decision sim.Time
	// CoordMessage is the central coordinator's CPU charge per message
	// received or sent; it produces the §5.1 coordinator saturation.
	CoordMessage sim.Time
	// ClientMessage is the client library's charge per message (clients
	// are not a bottleneck in the paper; default 0).
	ClientMessage sim.Time
	// OneWayLatency is the network latency between any two processes
	// (half the 40 µs ping RTT of §3.3).
	OneWayLatency sim.Time
	// ReplicaApplyFactor scales fragment cost when a backup re-executes
	// forwarded work.
	ReplicaApplyFactor float64
}

// Default returns the Table 2 calibration.
func Default() Model {
	return Model{
		FragmentBase:       40 * sim.Microsecond,
		PerRow:             1 * sim.Microsecond,
		UndoPerWrite:       750 * sim.Nanosecond,
		LockPerAcquire:     400 * sim.Nanosecond,
		AbortedFragment:    10 * sim.Microsecond,
		Decision:           3 * sim.Microsecond,
		CoordMessage:       15 * sim.Microsecond,
		ClientMessage:      0,
		OneWayLatency:      20 * sim.Microsecond,
		ReplicaApplyFactor: 1.0,
	}
}

// Fragment prices one fragment execution from its observed work.
func (m *Model) Fragment(proc string, rows, writes, lockCalls int, undoing bool) sim.Time {
	base := m.FragmentBase
	if b, ok := m.PerProcBase[proc]; ok {
		base = b
	}
	t := base + sim.Time(rows)*m.PerRow
	if undoing {
		t += sim.Time(writes) * m.UndoPerWrite
	}
	t += sim.Time(lockCalls) * m.LockPerAcquire
	return t
}

// ReplicaApply prices a backup's re-execution of a fragment.
func (m *Model) ReplicaApply(proc string, rows, writes int) sim.Time {
	t := m.Fragment(proc, rows, writes, 0, false)
	return sim.Time(float64(t) * m.ReplicaApplyFactor)
}
