package costs

import (
	"testing"

	"specdb/internal/sim"
)

// TestTable2Calibration pins the default cost model to the paper's Table 2:
// these identities are what every benchmark's absolute scale rests on.
func TestTable2Calibration(t *testing.T) {
	m := Default()
	// tsp: 12-key read/write = 24 row ops, no undo, no locks.
	if got := m.Fragment("kv", 24, 12, 0, false); got != 64*sim.Microsecond {
		t.Errorf("tsp = %v, want 64µs", got)
	}
	// tspS: with undo.
	if got := m.Fragment("kv", 24, 12, 0, true); got != 73*sim.Microsecond {
		t.Errorf("tspS = %v, want 73µs", got)
	}
	// l: 24 lock calls ≈ 13.2% of tspS.
	locked := m.Fragment("kv", 24, 12, 24, true)
	l := float64(locked-73*sim.Microsecond) / float64(73*sim.Microsecond)
	if l < 0.12 || l < 0 || l > 0.145 {
		t.Errorf("l = %f, want ≈0.132", l)
	}
	// Multi-partition fragment CPU (6 keys) plus decision ≈ tmpC.
	tmpC := m.Fragment("kv", 12, 6, 0, true) + m.Decision
	if tmpC < 52*sim.Microsecond || tmpC > 62*sim.Microsecond {
		t.Errorf("tmpC = %v, want ≈55µs", tmpC)
	}
	// RTT = 40µs (§3.3 ping measurement).
	if m.OneWayLatency*2 != 40*sim.Microsecond {
		t.Errorf("RTT = %v", m.OneWayLatency*2)
	}
}

func TestPerProcOverride(t *testing.T) {
	m := Default()
	m.PerProcBase = map[string]sim.Time{"special": 100 * sim.Microsecond}
	if got := m.Fragment("special", 0, 0, 0, false); got != 100*sim.Microsecond {
		t.Errorf("override = %v", got)
	}
	if got := m.Fragment("other", 0, 0, 0, false); got != m.FragmentBase {
		t.Errorf("default = %v", got)
	}
}

func TestAbortCheaperThanExecution(t *testing.T) {
	m := Default()
	if m.AbortedFragment >= m.Fragment("kv", 24, 12, 0, false) {
		t.Error("aborted fragments must be cheaper (§5.3)")
	}
}

func TestReplicaApplyScaling(t *testing.T) {
	m := Default()
	base := m.Fragment("kv", 10, 5, 0, false)
	if got := m.ReplicaApply("kv", 10, 5); got != base {
		t.Errorf("factor 1.0: %v != %v", got, base)
	}
	m.ReplicaApplyFactor = 0.5
	if got := m.ReplicaApply("kv", 10, 5); got != base/2 {
		t.Errorf("factor 0.5: %v", got)
	}
}
