package advisor

import (
	"testing"

	"specdb/internal/core"
	"specdb/internal/model"
	"specdb/internal/sim"
)

func stats(completed uint64, o model.Observed) Stats {
	return Stats{Completed: completed, Observed: o}
}

func TestDefaultsApplied(t *testing.T) {
	a := New(Config{})
	if a.cfg.Params != model.PaperParams() {
		t.Error("zero Params did not default to PaperParams")
	}
	if a.cfg.Interval != DefaultInterval || a.cfg.MinCompleted != DefaultMinCompleted ||
		a.cfg.Margin != DefaultMargin || a.cfg.Holdoff != DefaultHoldoff {
		t.Errorf("defaults not applied: %+v", a.cfg)
	}
	if a.Interval() != DefaultInterval {
		t.Errorf("Interval() = %v", a.Interval())
	}
}

func TestRecommendFollowsModel(t *testing.T) {
	a := New(Config{})
	cases := []struct {
		o    model.Observed
		want core.Scheme
	}{
		{model.Observed{MPFraction: 0}, core.SchemeBlocking}, // exact tie → least machinery
		{model.Observed{MPFraction: 0.2}, core.SchemeSpeculative},
		// Conflict-free multi-round: the non-stalling schemes win, and
		// OCC's tracking overhead (O) undercuts locking's (L).
		{model.Observed{MPFraction: 0.6, MultiRound: 1}, core.SchemeOCC},
		// Contended multi-round: each OCC conflict wastes a whole
		// execution, so locking's blocking discipline takes over.
		{model.Observed{MPFraction: 0.6, MultiRound: 1, ConflictRate: 0.5}, core.SchemeLocking},
		// Read-heavy: MVCC's snapshot reads dodge both the undo buffer
		// and the tracking tax.
		{model.Observed{MPFraction: 0.2, ReadFraction: 0.8}, core.SchemeMVCC},
	}
	for _, c := range cases {
		if got := a.Recommend(c.o); got != c.want {
			t.Errorf("Recommend(%+v) = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestObserveSwitchesOnClearGain(t *testing.T) {
	a := New(Config{})
	sc, ok := a.Observe(core.SchemeBlocking, stats(100, model.Observed{MPFraction: 0.2}))
	if !ok || sc != core.SchemeSpeculative {
		t.Fatalf("Observe = (%v, %v), want (speculation, true)", sc, ok)
	}
}

func TestObserveSampleSizeGate(t *testing.T) {
	a := New(Config{})
	if sc, ok := a.Observe(core.SchemeBlocking, stats(DefaultMinCompleted-1, model.Observed{MPFraction: 0.2})); ok {
		t.Fatalf("switched to %v on an undersized interval", sc)
	}
}

func TestObserveMarginGate(t *testing.T) {
	// At f=0 the model ties blocking and speculation exactly, and the
	// tie-break recommends blocking. A speculative cluster must not flap
	// over for a zero predicted gain.
	a := New(Config{})
	if a.Recommend(model.Observed{}) != core.SchemeBlocking {
		t.Fatal("precondition: f=0 recommendation should be blocking")
	}
	if sc, ok := a.Observe(core.SchemeSpeculative, stats(100, model.Observed{})); ok {
		t.Fatalf("switched to %v on a gain inside the hysteresis margin", sc)
	}
}

// TestLatencyCeilingWaivesMargin: the same zero-gain scenario the margin
// gate blocks must go through when the interval's p99 breaches the
// configured tail-latency SLO — any predicted improvement then justifies
// escaping the current scheme — while an interval inside the SLO keeps the
// margin.
func TestLatencyCeilingWaivesMargin(t *testing.T) {
	mk := func(p99 sim.Time) (core.Scheme, bool) {
		a := New(Config{LatencyCeiling: sim.Millisecond})
		s := stats(100, model.Observed{})
		s.P99 = p99
		return a.Observe(core.SchemeSpeculative, s)
	}
	if sc, ok := mk(5 * sim.Millisecond); !ok || sc != core.SchemeBlocking {
		t.Fatalf("SLO breach: got (%v, %v), want switch to blocking", sc, ok)
	}
	if sc, ok := mk(100 * sim.Microsecond); ok {
		t.Fatalf("inside SLO: switched to %v despite margin", sc)
	}
	// Zero ceiling disables the signal entirely.
	a := New(Config{})
	s := stats(100, model.Observed{})
	s.P99 = sim.Second
	if sc, ok := a.Observe(core.SchemeSpeculative, s); ok {
		t.Fatalf("disabled ceiling: switched to %v", sc)
	}
}

func TestObserveHoldoffAfterSwitch(t *testing.T) {
	a := New(Config{Holdoff: 2})
	s := stats(100, model.Observed{MPFraction: 0.2})
	if _, ok := a.Observe(core.SchemeBlocking, s); !ok {
		t.Fatal("first observation should switch")
	}
	// The cluster is now speculative; feed stats that recommend OCC.
	s2 := stats(100, model.Observed{MPFraction: 0.6, MultiRound: 1})
	for i := 0; i < 2; i++ {
		if sc, ok := a.Observe(core.SchemeSpeculative, s2); ok {
			t.Fatalf("observation %d switched to %v during holdoff", i, sc)
		}
	}
	if sc, ok := a.Observe(core.SchemeSpeculative, s2); !ok || sc != core.SchemeOCC {
		t.Fatalf("post-holdoff Observe = (%v, %v), want (occ, true)", sc, ok)
	}
}

func TestObserveStaysOnCurrentBest(t *testing.T) {
	a := New(Config{})
	if sc, ok := a.Observe(core.SchemeSpeculative, stats(100, model.Observed{MPFraction: 0.2})); ok {
		t.Fatalf("switched away from the recommended scheme to %v", sc)
	}
}

func TestConflictMemoryPreventsFlapBack(t *testing.T) {
	a := New(Config{Holdoff: 1})
	// Heavily contended two-round workload under locking: retries make
	// locking look bad enough that the advisor switches away...
	contended := model.Observed{MPFraction: 0.6, MultiRound: 1, ConflictRate: 3}
	sc, ok := a.Observe(core.SchemeLocking, stats(100, contended))
	if !ok || sc == core.SchemeLocking {
		t.Fatalf("Observe = (%v, %v), want a switch away from locking", sc, ok)
	}
	// ...after which the raw conflict signal collapses to zero (only
	// locking retries). The remembered, decaying rate must keep the
	// advisor from flapping straight back.
	calm := model.Observed{MPFraction: 0.6, MultiRound: 1}
	a.Observe(sc, stats(100, calm)) // holdoff interval
	if back, ok2 := a.Observe(sc, stats(100, calm)); ok2 && back == core.SchemeLocking {
		t.Fatal("flapped back to locking on the first eligible interval")
	}
}

func TestNoteSwitchArmsHoldoff(t *testing.T) {
	a := New(Config{Holdoff: 2})
	a.NoteSwitch() // e.g. a manual SetScheme the advisor did not decide
	s := stats(100, model.Observed{MPFraction: 0.2})
	for i := 0; i < 2; i++ {
		if sc, ok := a.Observe(core.SchemeBlocking, s); ok {
			t.Fatalf("observation %d switched to %v during manual-switch holdoff", i, sc)
		}
	}
	if sc, ok := a.Observe(core.SchemeBlocking, s); !ok || sc != core.SchemeSpeculative {
		t.Fatalf("post-holdoff Observe = (%v, %v), want (speculation, true)", sc, ok)
	}
}
