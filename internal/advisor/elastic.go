package advisor

import (
	"specdb/internal/sim"
)

// Defaults applied by NewElastic for zero ElasticConfig fields.
const (
	// DefaultElasticInterval is the saturation evaluation period.
	DefaultElasticInterval = 10 * sim.Millisecond
	// DefaultSaturationFraction is the busy fraction of the interval above
	// which a partition counts as saturated.
	DefaultSaturationFraction = 0.75
	// DefaultSaturationRatio is how many times busier than the mean of the
	// other partitions the hottest one must be before a migration pays.
	DefaultSaturationRatio = 2.0
	// DefaultElasticHoldoff is the number of evaluation intervals skipped
	// after a migration, letting the rebalanced load stabilize.
	DefaultElasticHoldoff = 1
)

// ElasticConfig tunes the elastic repartitioning trigger.
type ElasticConfig struct {
	// Interval is the evaluation period in virtual time (default 10 ms).
	Interval sim.Time
	// SaturationFraction is the busy-time fraction of the interval above
	// which the hottest partition counts as saturated (default 0.75).
	SaturationFraction float64
	// SaturationRatio is the skew threshold: the hottest partition's busy
	// time must be at least this multiple of the mean busy time of the
	// remaining partitions (default 2.0). The two conditions together are
	// the trigger's hysteresis — a uniformly loaded cluster never
	// migrates, however busy, and a skewed but idle one does not either.
	SaturationRatio float64
	// Holdoff is how many evaluation intervals to skip after a migration
	// (default 1).
	Holdoff int
}

// withDefaults fills zero fields.
func (c ElasticConfig) withDefaults() ElasticConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultElasticInterval
	}
	if c.SaturationFraction <= 0 {
		c.SaturationFraction = DefaultSaturationFraction
	}
	if c.SaturationRatio <= 0 {
		c.SaturationRatio = DefaultSaturationRatio
	}
	if c.Holdoff <= 0 {
		c.Holdoff = DefaultElasticHoldoff
	}
	return c
}

// Elastic is the elastic repartitioning trigger: it watches per-partition
// busy time per evaluation interval and fires when one partition is
// saturated while the rest idle — the hot-partition signal that a key-range
// split can fix but a scheme switch cannot. Like the scheme Advisor it is
// deliberately passive: Observe names a donor and a destination and the
// facade performs the actual freeze–copy–cutover.
type Elastic struct {
	cfg     ElasticConfig
	holdoff int
}

// NewElastic returns an elastic trigger with zero ElasticConfig fields
// defaulted.
func NewElastic(cfg ElasticConfig) *Elastic {
	return &Elastic{cfg: cfg.withDefaults()}
}

// Interval returns the evaluation period the host should observe at.
func (e *Elastic) Interval() sim.Time { return e.cfg.Interval }

// NoteMigration tells the trigger a migration just completed — by its own
// recommendation or by a manual DB.Migrate — arming the holdoff so the next
// intervals, whose busy times were partly measured under the old routing,
// are not used to trigger another move.
func (e *Elastic) NoteMigration() { e.holdoff = e.cfg.Holdoff }

// Observe feeds one interval's per-partition busy times (busy[i] is how much
// of span partition i's primary spent executing) and returns a donor and
// destination when the saturation trigger fires. The donor is the busiest
// partition and the destination the idlest; ties break to the lowest index,
// keeping the choice deterministic. It returns ok=false when a holdoff is
// pending, the busiest partition is below the saturation fraction, or the
// skew ratio over the mean of the other partitions is not met.
func (e *Elastic) Observe(busy []sim.Time, span sim.Time) (from, to int, ok bool) {
	if e.holdoff > 0 {
		e.holdoff--
		return 0, 0, false
	}
	if len(busy) < 2 || span <= 0 {
		return 0, 0, false
	}
	donor, dest := 0, 0
	var total sim.Time
	for i, b := range busy {
		total += b
		if b > busy[donor] {
			donor = i
		}
		if b < busy[dest] {
			dest = i
		}
	}
	if donor == dest {
		return 0, 0, false // uniform load, nothing to rebalance
	}
	if float64(busy[donor]) < e.cfg.SaturationFraction*float64(span) {
		return 0, 0, false
	}
	meanOthers := float64(total-busy[donor]) / float64(len(busy)-1)
	if meanOthers > 0 && float64(busy[donor]) < e.cfg.SaturationRatio*meanOthers {
		return 0, 0, false
	}
	return donor, dest, true
}
