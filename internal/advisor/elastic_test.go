package advisor

import (
	"testing"

	"specdb/internal/sim"
)

const span = 10 * sim.Millisecond

func ms(v int) sim.Time { return sim.Time(v) * sim.Millisecond }

// TestElasticTrigger drives the saturation trigger through its truth table:
// both conditions (busy fraction and skew ratio) must hold, ties break low,
// and degenerate inputs never fire.
func TestElasticTrigger(t *testing.T) {
	cases := []struct {
		name     string
		busy     []sim.Time
		from, to int
		fire     bool
	}{
		{"saturated and skewed", []sim.Time{ms(9), ms(2), ms(1), ms(2)}, 0, 2, true},
		{"saturated but uniform", []sim.Time{ms(9), ms(9) - 1, ms(9) - 2, ms(9) - 1}, 0, 0, false},
		{"skewed but idle", []sim.Time{ms(4), ms(1), ms(1), ms(1)}, 0, 0, false},
		{"exactly at both thresholds", []sim.Time{ms(8), ms(4), ms(4), ms(4)}, 0, 1, true},
		{"just under fraction", []sim.Time{ms(8) - 1, ms(1), ms(1), ms(1)}, 0, 0, false},
		{"just under ratio", []sim.Time{ms(8), ms(4) + 1, ms(4), ms(4)}, 0, 0, false},
		{"hot in the middle", []sim.Time{ms(2), ms(9), ms(1), ms(2)}, 1, 2, true},
		{"donor tie breaks low", []sim.Time{ms(1), ms(9), ms(9), ms(1)}, 1, 0, true},
		{"dest tie breaks low", []sim.Time{ms(9), ms(3), ms(3), ms(4)}, 0, 1, true},
		{"all idle partitions", []sim.Time{ms(9), 0, 0, 0}, 0, 1, true},
		{"single partition", []sim.Time{ms(9)}, 0, 0, false},
		{"fully uniform", []sim.Time{ms(9), ms(9)}, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Fraction 0.8, ratio 2.0 over a 10ms span: fire iff the hottest
			// partition is >= 8ms busy and >= 2x the mean of the others.
			e := NewElastic(ElasticConfig{SaturationFraction: 0.8})
			from, to, ok := e.Observe(tc.busy, span)
			if ok != tc.fire {
				t.Fatalf("Observe fired=%v, want %v", ok, tc.fire)
			}
			if ok && (from != tc.from || to != tc.to) {
				t.Fatalf("Observe = (%d, %d), want (%d, %d)", from, to, tc.from, tc.to)
			}
		})
	}
}

// TestElasticHoldoff pins the hysteresis: NoteMigration suppresses exactly
// Holdoff observations, however saturated, then the trigger re-arms.
func TestElasticHoldoff(t *testing.T) {
	e := NewElastic(ElasticConfig{Holdoff: 2})
	hot := []sim.Time{ms(9), ms(1)}
	if _, _, ok := e.Observe(hot, span); !ok {
		t.Fatal("armed trigger did not fire")
	}
	e.NoteMigration()
	for i := 0; i < 2; i++ {
		if _, _, ok := e.Observe(hot, span); ok {
			t.Fatalf("observation %d fired during holdoff", i)
		}
	}
	if _, _, ok := e.Observe(hot, span); !ok {
		t.Fatal("trigger did not re-arm after holdoff expired")
	}
}

// TestElasticDefaults pins the zero-config defaults.
func TestElasticDefaults(t *testing.T) {
	e := NewElastic(ElasticConfig{})
	if e.Interval() != DefaultElasticInterval {
		t.Fatalf("Interval = %v, want %v", e.Interval(), DefaultElasticInterval)
	}
	// 7.4ms busy over 10ms is below the default 0.75 fraction; 7.6ms with an
	// idle peer clears both default thresholds.
	if _, _, ok := e.Observe([]sim.Time{7400 * sim.Microsecond, ms(1)}, span); ok {
		t.Fatal("fired below the default saturation fraction")
	}
	from, to, ok := e.Observe([]sim.Time{7600 * sim.Microsecond, ms(1)}, span)
	if !ok || from != 0 || to != 1 {
		t.Fatalf("Observe = (%d, %d, %v), want (0, 1, true)", from, to, ok)
	}
}
