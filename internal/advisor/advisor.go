// Package advisor is the runtime concurrency-control planner of §5.7: "a
// query executor might record statistics at runtime and use a model like
// that presented in Section 6 to make the best choice of concurrency control
// strategy". It watches per-interval workload statistics (multi-partition
// fraction, multi-round fraction, abort and conflict rates), feeds them
// through the §6 analytical model's Recommend entry point, and decides when
// the running cluster should switch schemes.
//
// Switching is not free — the cluster drains to a quiescent point — so the
// advisor applies hysteresis: it acts only on intervals with enough
// completions to be statistically meaningful, requires the candidate
// scheme's predicted throughput to beat the current scheme's by a margin,
// and holds off re-evaluating for a few intervals after each switch. That
// keeps it from flapping between schemes whose predictions are close (e.g.
// blocking vs speculation on a pure single-partition workload).
//
// The advisor is deliberately passive: Observe returns a recommendation and
// the facade (DB.SetScheme) performs the actual drain-and-swap, so the same
// logic is unit-testable without a cluster.
package advisor

import (
	"specdb/internal/core"
	"specdb/internal/model"
	"specdb/internal/sim"
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultInterval is the evaluation period in virtual time.
	DefaultInterval = 10 * sim.Millisecond
	// DefaultMinCompleted is the fewest completions an interval needs
	// before its statistics are trusted.
	DefaultMinCompleted = 20
	// DefaultMargin is the predicted relative improvement required to
	// switch (0.15 = 15% faster).
	DefaultMargin = 0.15
	// DefaultHoldoff is the number of evaluation intervals skipped after a
	// switch, letting the new scheme's statistics stabilize.
	DefaultHoldoff = 1
)

// Config tunes the advisor.
type Config struct {
	// Params are the §6 model variables; the zero value selects the
	// Table 2 paper parameters, which match the default cost model.
	Params model.Params
	// Interval is the evaluation period in virtual time (default 10 ms).
	Interval sim.Time
	// MinCompleted gates evaluation on interval sample size (default 20).
	MinCompleted uint64
	// Margin is the hysteresis threshold: the candidate's predicted
	// throughput must exceed the current scheme's by this relative margin
	// (default 0.15).
	Margin float64
	// Holdoff is how many evaluation intervals to skip after a switch
	// (default 1).
	Holdoff int
	// LatencyCeiling, when positive, is a tail-latency SLO: an interval
	// whose p99 completion latency exceeds it is treated as evidence the
	// current scheme is failing the workload, and the hysteresis margin is
	// waived for that evaluation — any predicted improvement justifies the
	// switch. The sample-size gate and post-switch holdoff still apply, so
	// a single noisy interval cannot flap the cluster. Zero disables the
	// signal.
	LatencyCeiling sim.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if (c.Params == model.Params{}) {
		c.Params = model.PaperParams()
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.MinCompleted == 0 {
		c.MinCompleted = DefaultMinCompleted
	}
	if c.Margin <= 0 {
		c.Margin = DefaultMargin
	}
	if c.Holdoff <= 0 {
		c.Holdoff = DefaultHoldoff
	}
	return c
}

// Stats is one evaluation interval's measured workload, produced by the
// metrics layer (see metrics.Counts' MPFraction, MultiRoundFraction,
// AbortRate and ConflictRate).
type Stats struct {
	// Completed is the number of transactions completed in the interval.
	Completed uint64
	// P99 is the interval's 99th-percentile completion latency (zero when
	// unmeasured); it only matters when Config.LatencyCeiling is set.
	P99 sim.Time
	// Observed are the model inputs measured over the interval.
	Observed model.Observed
}

// conflictDecay is the per-interval decay applied to the remembered lock
// conflict rate while a non-locking scheme runs (see Observe).
const conflictDecay = 0.9

// Advisor decides when a running cluster should switch schemes.
type Advisor struct {
	cfg     Config
	holdoff int
	// lockConflict remembers the conflict rate last measured under a
	// retrying scheme (locking, OCC or MVCC). Blocking and speculation
	// never retry, so the raw measurement collapses to zero the moment the
	// cluster switches away — without memory the advisor would immediately
	// flap back. The memory decays while away, so a contended scheme is
	// re-tried only occasionally on workloads whose contention may have
	// subsided.
	lockConflict float64
}

// New returns an advisor with zero Config fields defaulted.
func New(cfg Config) *Advisor {
	return &Advisor{cfg: cfg.withDefaults()}
}

// Interval returns the evaluation period the host should observe at.
func (a *Advisor) Interval() sim.Time { return a.cfg.Interval }

// Recommend returns the model's unconditional scheme choice for the observed
// workload, with no hysteresis applied.
func (a *Advisor) Recommend(o model.Observed) core.Scheme {
	return a.cfg.Params.Recommend(o)
}

// NoteSwitch tells the advisor the cluster's scheme just changed — by its
// own recommendation or by a manual SetScheme — arming the holdoff so the
// next intervals, whose statistics were partly measured under the previous
// scheme, are not used to second-guess the new one.
func (a *Advisor) NoteSwitch() { a.holdoff = a.cfg.Holdoff }

// Observe feeds one interval's statistics and returns the scheme the cluster
// should run plus whether that is a change from current. It returns
// (current, false) when the interval is too small, a holdoff is pending, or
// the best candidate's predicted gain over the current scheme is within the
// hysteresis margin.
//
// The conflict rate is only observable while a retrying scheme runs —
// locking (deadlock/timeout kills), OCC (validation failures) or MVCC
// (timestamp-order kills); blocking and speculation never retry — so
// Observe substitutes the decaying remembered value whenever it exceeds the
// measurement. Without it, switching away from a contended run would zero
// the signal and invite an immediate flap back.
func (a *Advisor) Observe(current core.Scheme, s Stats) (core.Scheme, bool) {
	obs := s.Observed
	switch current {
	case core.SchemeLocking, core.SchemeOCC, core.SchemeMVCC:
		a.lockConflict = obs.ConflictRate
	default:
		a.lockConflict *= conflictDecay
		if a.lockConflict > obs.ConflictRate {
			obs.ConflictRate = a.lockConflict
		}
	}
	if s.Completed < a.cfg.MinCompleted {
		return current, false
	}
	if a.holdoff > 0 {
		a.holdoff--
		return current, false
	}
	best := a.cfg.Params.Recommend(obs)
	if best == current {
		return current, false
	}
	cur := a.cfg.Params.Predict(current, obs)
	cand := a.cfg.Params.Predict(best, obs)
	margin := a.cfg.Margin
	if a.cfg.LatencyCeiling > 0 && s.P99 > a.cfg.LatencyCeiling {
		// Tail-latency SLO breach: stop demanding a comfortable throughput
		// margin before escaping the current scheme.
		margin = 0
	}
	if cand < cur*(1+margin) {
		return current, false
	}
	a.holdoff = a.cfg.Holdoff
	return best, true
}
