package mvcc

import (
	"testing"

	"specdb/internal/core"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/storage"
	"specdb/internal/undo"
)

// workFn is the fragment body representation used by these tests: fragments
// carry executable closures so no procedure registry is needed.
type workFn func(v *storage.TxnView) (any, error)

// fakeEnv implements core.Env (and Storer) against a real store, recording
// all outputs.
type fakeEnv struct {
	t     *testing.T
	store *storage.Store
	undos map[msg.TxnID]*undo.Buffer

	results   []*msg.FragmentResult
	replies   []*msg.ClientReply
	decisions int
}

func newFakeEnv(t *testing.T) *fakeEnv {
	s := storage.NewStore()
	s.AddTable(storage.NewBTreeTable("kv"))
	return &fakeEnv{t: t, store: s, undos: make(map[msg.TxnID]*undo.Buffer)}
}

// Store satisfies Storer, the extra capability New demands of its env.
func (e *fakeEnv) Store() *storage.Store { return e.store }

func (e *fakeEnv) Execute(f *msg.Fragment, withUndo bool, locker storage.Locker) core.ExecOutcome {
	var buf *undo.Buffer
	if withUndo {
		buf = e.undos[f.Txn]
		if buf == nil {
			buf = undo.New()
			e.undos[f.Txn] = buf
		}
	}
	if f.InjectAbort {
		if buf != nil {
			buf.Rollback()
		}
		return core.ExecOutcome{Aborted: true}
	}
	view := storage.NewTxnView(e.store, buf, locker)
	out, err := f.Work.(workFn)(view)
	if err != nil {
		if buf != nil {
			buf.Rollback()
		}
		return core.ExecOutcome{Output: out, Aborted: true}
	}
	return core.ExecOutcome{Output: out}
}

func (e *fakeEnv) Rollback(id msg.TxnID) {
	if buf := e.undos[id]; buf != nil {
		buf.Rollback()
	}
}

func (e *fakeEnv) Forget(id msg.TxnID) { delete(e.undos, id) }

func (e *fakeEnv) SendResult(f *msg.Fragment, r *msg.FragmentResult) {
	e.results = append(e.results, r)
}

func (e *fakeEnv) ReplyClient(f *msg.Fragment, reply *msg.ClientReply) {
	e.replies = append(e.replies, reply)
}

func (e *fakeEnv) After(d sim.Time, payload any) {}

func (e *fakeEnv) ChargeDecision() { e.decisions++ }

func (e *fakeEnv) get(key string) int {
	v, ok := e.store.Table("kv").Get(key)
	if !ok {
		e.t.Fatalf("key %q missing", key)
	}
	return v.(int)
}

func (e *fakeEnv) set(key string, v int) {
	e.store.Table("kv").Put(key, v)
}

// Fragment builders.

func spFrag(id uint64, fn workFn) *msg.Fragment {
	return &msg.Fragment{Txn: msg.TxnID(id), Proc: "w", Last: true, Work: fn, Client: 99}
}

func roFrag(id uint64, fn workFn) *msg.Fragment {
	f := spFrag(id, fn)
	f.ReadOnly = true
	return f
}

func mpFrag(id uint64, round int, last bool, fn workFn) *msg.Fragment {
	return &msg.Fragment{
		Txn: msg.TxnID(id), Proc: "w", Round: round, Last: last,
		Work: fn, Coord: 7, MultiPartition: true,
	}
}

func mpROFrag(id uint64, round int, last bool, fn workFn) *msg.Fragment {
	f := mpFrag(id, round, last, fn)
	f.ReadOnly = true
	return f
}

func readKey(key string) workFn {
	return func(v *storage.TxnView) (any, error) {
		val, _ := v.Get("kv", key)
		return val, nil
	}
}

func writeKey(key string, val int) workFn {
	return func(v *storage.TxnView) (any, error) {
		v.Put("kv", key, val)
		return val, nil
	}
}

func newEngine(t *testing.T) (*Engine, *fakeEnv) {
	env := newFakeEnv(t)
	return New(env), env
}

func lastReply(t *testing.T, env *fakeEnv) *msg.ClientReply {
	t.Helper()
	if len(env.replies) == 0 {
		t.Fatal("no client replies")
	}
	return env.replies[len(env.replies)-1]
}

func lastResult(t *testing.T, env *fakeEnv) *msg.FragmentResult {
	t.Helper()
	if len(env.results) == 0 {
		t.Fatal("no fragment results")
	}
	return env.results[len(env.results)-1]
}

func TestIdleFastPath(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)
	e.Fragment(spFrag(1, writeKey("a", 2)))
	r := lastReply(t, env)
	if !r.Committed || env.get("a") != 2 {
		t.Fatalf("fast-path txn not committed: %+v, a=%d", r, env.get("a"))
	}
	if s := e.Stats(); s.FastPath != 1 || s.Executed != 1 {
		t.Fatalf("stats = %+v, want FastPath=1", s)
	}
	if !e.Quiescent() {
		t.Fatal("engine not quiescent after fast path")
	}
}

// TestVisibilityAtSnapshotBoundary is the version-visibility edge case: a
// write pending when the read-only transaction arrives is invisible to it —
// even after the writer commits — while a write committed before arrival is
// visible.
func TestVisibilityAtSnapshotBoundary(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	// Writer W holds an uncommitted write of a when RO arrives.
	e.Fragment(mpFrag(1, 0, false, writeKey("a", 2)))
	e.Fragment(roFrag(2, readKey("a")))
	if r := lastReply(t, env); !r.Committed || r.Output != 1 {
		t.Fatalf("RO during pending write = %+v, want committed read of 1", r)
	}
	// A long-lived RO arrives, then W commits: the retired version must be
	// captured into the snapshot, so the RO still reads 1 at its next round.
	e.Fragment(mpROFrag(3, 0, false, readKey("a")))
	if r := lastResult(t, env); r.Output != 1 {
		t.Fatalf("RO round 0 read = %v, want 1 (before-image)", r.Output)
	}
	e.Fragment(mpFrag(1, 1, true, readKey("a")))
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if env.get("a") != 2 {
		t.Fatalf("W did not commit: a = %d", env.get("a"))
	}
	e.Fragment(mpROFrag(3, 1, true, readKey("a")))
	if r := lastResult(t, env); r.Output != 1 {
		t.Fatalf("RO round 1 read = %v, want snapshot value 1", r.Output)
	}
	e.Decision(&msg.Decision{Txn: 3, Commit: true})
	// A fresh RO arriving after the commit sees the new version.
	e.Fragment(roFrag(4, readKey("a")))
	if r := lastReply(t, env); r.Output != 2 {
		t.Fatalf("post-commit RO read = %v, want 2", r.Output)
	}
}

// TestSnapshotFirstCaptureWins: when multiple writers of one row commit under
// a live read-only transaction, its snapshot keeps the oldest retired
// version — the committed state as of its arrival.
func TestSnapshotFirstCaptureWins(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	e.Fragment(mpROFrag(1, 0, false, readKey("a")))
	e.Fragment(spFrag(2, writeKey("a", 2))) // retires version 1 into the snapshot
	e.Fragment(spFrag(3, writeKey("a", 3))) // retires version 2 — must not displace it
	if env.get("a") != 3 {
		t.Fatalf("writers did not commit: a = %d", env.get("a"))
	}
	e.Fragment(mpROFrag(1, 1, true, readKey("a")))
	if r := lastResult(t, env); r.Output != 1 {
		t.Fatalf("RO read = %v, want first-captured version 1", r.Output)
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if !e.Quiescent() {
		t.Fatal("engine not quiescent")
	}
}

// TestReadOnlyNeverAborts: read-only transactions neither block nor abort —
// not even when touching a row with a live uncommitted writer — and never
// constrain that writer.
func TestReadOnlyNeverAborts(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	e.Fragment(mpFrag(1, 0, false, writeKey("a", 2)))
	e.Fragment(roFrag(2, readKey("a")))
	r := lastReply(t, env)
	if !r.Committed || r.Retryable {
		t.Fatalf("RO reply = %+v, want Committed", r)
	}
	if s := e.Stats(); s.TSOrderAborts != 0 {
		t.Fatalf("TSOrderAborts = %d, want 0", s.TSOrderAborts)
	}
	// The writer is unconstrained by the snapshot read.
	e.Fragment(mpFrag(1, 1, true, readKey("a")))
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if env.get("a") != 2 {
		t.Fatalf("writer constrained by RO: a = %d", env.get("a"))
	}
}

// TestWriteWriteKillsLaterWriter: the transaction serialized later by arrival
// order loses a write-write conflict and is returned for client retry.
func TestWriteWriteKillsLaterWriter(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	e.Fragment(mpFrag(1, 0, false, writeKey("a", 10)))
	e.Fragment(spFrag(2, writeKey("a", 20)))
	r := lastReply(t, env)
	if !r.Retryable || r.Committed {
		t.Fatalf("later writer reply = %+v, want Retryable", r)
	}
	if s := e.Stats(); s.TSOrderAborts != 1 {
		t.Fatalf("TSOrderAborts = %d, want 1", s.TSOrderAborts)
	}
	e.Fragment(mpFrag(1, 1, true, readKey("a")))
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if env.get("a") != 10 {
		t.Fatalf("a = %d, want 10", env.get("a"))
	}
}

// TestReadOfUncommittedWriteKills: a read-write transaction reading another's
// uncommitted write loses (no dirty reads outside snapshots).
func TestReadOfUncommittedWriteKills(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	e.Fragment(mpFrag(1, 0, false, writeKey("a", 10)))
	e.Fragment(spFrag(2, readKey("a")))
	if r := lastReply(t, env); !r.Retryable {
		t.Fatalf("dirty reader reply = %+v, want Retryable", r)
	}
	if s := e.Stats(); s.TSOrderAborts != 1 {
		t.Fatalf("TSOrderAborts = %d, want 1", s.TSOrderAborts)
	}
}

// TestWriteIntoLiveReadSetKills: a write into a row a live multi-round
// transaction has read aborts the writer — the read must stay valid through
// its reader's commit.
func TestWriteIntoLiveReadSetKills(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	e.Fragment(mpFrag(1, 0, false, readKey("a")))
	e.Fragment(spFrag(2, writeKey("a", 2)))
	if r := lastReply(t, env); !r.Retryable {
		t.Fatalf("writer into read set = %+v, want Retryable", r)
	}
	// The reader finishes untouched.
	e.Fragment(mpFrag(1, 1, true, readKey("a")))
	if r := lastResult(t, env); r.Output != 1 {
		t.Fatalf("reader round 1 = %v, want 1", r.Output)
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: true})
	if !e.Quiescent() {
		t.Fatal("engine not quiescent")
	}
}

// TestAbortRestoresBeforeImage: a killed writer's store effects are rolled
// back and its pending-write entry vanishes, so later transactions see the
// committed head again.
func TestAbortRestoresBeforeImage(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)

	e.Fragment(mpFrag(1, 0, false, writeKey("a", 10)))
	if env.get("a") != 10 {
		t.Fatal("uncommitted write not in store")
	}
	e.Decision(&msg.Decision{Txn: 1, Commit: false})
	if env.get("a") != 1 {
		t.Fatalf("rollback failed: a = %d", env.get("a"))
	}
	if !e.Quiescent() {
		t.Fatal("engine not quiescent after abort")
	}
	// The row is writable again.
	e.Fragment(spFrag(2, writeKey("a", 5)))
	if !lastReply(t, env).Committed || env.get("a") != 5 {
		t.Fatalf("post-abort write failed: a = %d", env.get("a"))
	}
}

// TestReadPathAllocsFree pins the read-only snapshot path (overlay +
// execute + restore) at zero steady-state allocations: the displaced-row
// buffer is reused across transactions.
func TestReadPathAllocsFree(t *testing.T) {
	e, env := newEngine(t)
	env.set("a", 1)
	env.set("b", 1)

	// Keep a writer pending so read-only transactions take the overlay
	// path rather than the idle fast path.
	e.Fragment(mpFrag(1, 0, false, writeKey("a", 2)))
	frag := &msg.Fragment{Txn: 100, Proc: "w", Last: true, ReadOnly: true, Client: 99}
	work := readKey("b")
	tx := &mtxn{id: frag.Txn, ro: true, shadow: map[vkey]version{}}
	// Warm the buffer once, then measure.
	e.overlay(tx, func() { e.env.Execute(frag2(frag, work), false, roLocker{}) })
	if avg := testing.AllocsPerRun(100, func() {
		e.overlay(tx, func() {})
	}); avg != 0 {
		t.Fatalf("overlay allocates %v per run, want 0", avg)
	}
}

// frag2 returns f with its work body set.
func frag2(f *msg.Fragment, fn workFn) *msg.Fragment {
	f.Work = fn
	return f
}

// TestRejectsStorelessEnv: New must refuse an env that cannot expose the
// store — snapshots would be unmaterializable.
func TestRejectsStorelessEnv(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an env without Store()")
		}
	}()
	New(storelessEnv{})
}

type storelessEnv struct{ core.Env }
