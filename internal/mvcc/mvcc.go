// Package mvcc implements multiversion timestamp ordering behind the
// core.Engine interface. Each transaction is stamped with an arrival
// timestamp; conceptually every row carries a chain of versions, each valid
// over a [begin, end) timestamp interval. Because the partition is
// single-threaded and at most one uncommitted writer per row is admitted,
// the chain never needs more than two links: the committed head lives in
// the store itself, and the engine keeps the uncommitted successor's
// before-image (the committed version it supersedes) on the side.
//
// The payoff is for declared read-only transactions: they execute against a
// consistent snapshot — the committed state as of their arrival timestamp —
// and therefore never block, never abort, and never constrain writers. The
// snapshot is materialized lazily: at execution time the engine overlays
// the before-images of all uncommitted writes (hiding dirty data), and when
// a writer commits, the versions it retires are captured into the snapshots
// of the read-only transactions still live at that point.
//
// Read-write transactions order themselves by timestamp: an access that
// conflicts with a live transaction's write (or a write that conflicts with
// a live read) aborts the accessor — the transaction serialized later by
// arrival order loses — and the client retries it with a fresh transaction
// ID through the same resend path the locking scheme's deadlock kills use.
package mvcc

import (
	"fmt"

	"specdb/internal/core"
	"specdb/internal/msg"
	"specdb/internal/storage"
)

// vkey identifies a row.
type vkey struct {
	table, key string
}

// version is one row version's payload: the value and whether the row
// existed at all (a before-image of an insert has existed=false).
type version struct {
	val     any
	existed bool
}

// writeRec tracks one uncommitted write: who holds it and the committed
// version it supersedes (the head of the row's version chain, valid until
// the writer's commit timestamp closes it).
type writeRec struct {
	writer msg.TxnID
	prev   version
}

// scanRange is a scanned key range [lo, hi) recorded for a live read-write
// transaction; empty hi means unbounded.
type scanRange struct {
	table, lo, hi string
}

func (r scanRange) contains(k vkey) bool {
	return k.table == r.table && k.key >= r.lo && (r.hi == "" || k.key < r.hi)
}

// mtxn is one live transaction's versioning state.
type mtxn struct {
	id   msg.TxnID
	ts   uint64
	frag *msg.Fragment
	ro   bool
	// readSet is tracked for multi-partition read-write transactions only:
	// their reads span events, so later-arriving writers must be ordered
	// (aborted) against them. Single-partition reads finish within one
	// event and need no tracking.
	readSet map[vkey]struct{}
	// scans extends the read set to scanned ranges (multi-partition
	// read-write transactions only, same reasoning as readSet): a writer
	// into a live reader's scanned range loses to the earlier arrival even
	// when the written key was absent at scan time — phantom protection.
	scans []scanRange
	// writes lists the rows this transaction has uncommitted writes for.
	writes []vkey
	// shadow is the read-only snapshot: versions retired by writers that
	// committed after this transaction arrived, keyed by row. First
	// capture wins — the oldest retired version is the snapshot version.
	shadow map[vkey]version
}

// Storer is the slice of the host environment the MVCC engine needs beyond
// core.Env: direct store access for materializing snapshots.
// partition.Partition satisfies it.
type Storer interface {
	Store() *storage.Store
}

// Engine is the MVCC concurrency control engine for one partition.
type Engine struct {
	env   core.Env
	store *storage.Store
	// nextTS is the arrival-order timestamp counter.
	nextTS  uint64
	pending map[msg.TxnID]*mtxn
	// pendingWrites is the aggregate uncommitted-write table: at most one
	// live writer per row.
	pendingWrites map[vkey]writeRec
	// saved is the reusable LIFO buffer for snapshot overlay swaps.
	saved []savedRow
	stats core.EngineStats
}

// savedRow remembers a store row displaced by a snapshot overlay.
type savedRow struct {
	k vkey
	v version
}

// New returns an MVCC engine bound to env, which must also satisfy Storer.
func New(env core.Env) *Engine {
	st, ok := env.(Storer)
	if !ok {
		panic("mvcc: env does not provide Store()")
	}
	return &Engine{
		env:           env,
		store:         st.Store(),
		pending:       make(map[msg.TxnID]*mtxn),
		pendingWrites: make(map[vkey]writeRec),
	}
}

// Scheme identifies the engine.
func (e *Engine) Scheme() core.Scheme { return core.SchemeMVCC }

// Stats returns activity counters.
func (e *Engine) Stats() core.EngineStats { return e.stats }

// Quiescent reports whether no transaction state is live. Stale timers from
// a retired engine are ignored by Timer, so a quiescent MVCC engine can be
// swapped out.
func (e *Engine) Quiescent() bool { return len(e.pending) == 0 }

// tsKill is the panic sentinel thrown when an access loses a timestamp-order
// conflict; the fragment runner recovers it.
type tsKill struct{}

// rwLocker implements storage.Locker for read-write transactions: it
// enforces timestamp ordering eagerly and records before-images.
type rwLocker struct {
	e *Engine
	t *mtxn
}

// Lock orders one access against the live transactions. A read of another
// transaction's uncommitted write aborts the reader (no dirty reads, and
// read-write transactions read the committed head, not a snapshot). A write
// aborts when the row already has another live writer or appears in a live
// multi-round transaction's read set. On the first write to a row, the
// committed head is captured as the before-image.
func (l *rwLocker) Lock(table, key string, exclusive bool) {
	k := vkey{table, key}
	if w, ok := l.e.pendingWrites[k]; ok && w.writer != l.t.id {
		panic(tsKill{})
	}
	if !exclusive {
		if l.t.readSet != nil {
			l.t.readSet[k] = struct{}{}
		}
		return
	}
	for _, u := range l.e.pending {
		if u == l.t {
			continue
		}
		if u.readSet != nil {
			if _, read := u.readSet[k]; read {
				panic(tsKill{})
			}
		}
		for _, r := range u.scans {
			if r.contains(k) {
				// Writing into a live reader's scanned range would create
				// a phantom for the earlier arrival: the writer loses.
				panic(tsKill{})
			}
		}
	}
	if w, ok := l.e.pendingWrites[k]; !ok || w.writer != l.t.id {
		val, existed := l.e.store.Table(table).Get(key)
		l.e.pendingWrites[k] = writeRec{writer: l.t.id, prev: version{val, existed}}
		l.t.writes = append(l.t.writes, k)
	}
}

// LockRange orders a read-write transaction's scan against the live writers:
// any other transaction's uncommitted write inside [lo, hi) kills the scanner
// (it would read dirty data or miss the writer's insert, either way a
// timestamp-order violation). Multi-partition transactions also record the
// range so later writers into it are killed — the scan-set analogue of the
// read set.
func (l *rwLocker) LockRange(table, lo, hi string) {
	r := scanRange{table: table, lo: lo, hi: hi}
	for k, w := range l.e.pendingWrites {
		if w.writer != l.t.id && r.contains(k) {
			panic(tsKill{})
		}
	}
	if l.t.readSet != nil {
		l.t.scans = append(l.t.scans, r)
	}
}

// roLocker implements storage.Locker for declared read-only transactions:
// reads are free, writes are a procedure bug.
type roLocker struct{}

func (roLocker) Lock(table, key string, exclusive bool) {
	if exclusive {
		panic("mvcc: declared read-only transaction attempted a write")
	}
}

// LockRange is free for snapshot readers: the overlay already serves the
// committed state as of arrival, so scans can never see (or be broken by) a
// concurrent writer. This is the YCSB-E payoff of MVCC — read-only scans
// never block and never abort.
func (roLocker) LockRange(table, lo, hi string) {}

// Fragment handles an arriving fragment.
func (e *Engine) Fragment(f *msg.Fragment) {
	if t, ok := e.pending[f.Txn]; ok {
		e.run(t, f)
		return
	}
	if len(e.pending) == 0 && !f.MultiPartition {
		// Idle fast path, identical to every other scheme. With nothing
		// pending there are no uncommitted writes, so the store already is
		// the snapshot — read-only transactions need no overlay either.
		out := e.env.Execute(f, f.CanAbort, nil)
		e.stats.Executed++
		e.stats.FastPath++
		e.env.Forget(f.Txn)
		if out.Aborted {
			e.stats.LocalAborts++
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, UserAborted: true})
		} else {
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, Committed: true})
		}
		return
	}
	t := &mtxn{id: f.Txn, ts: e.nextTS, ro: f.ReadOnly}
	e.nextTS++
	if t.ro {
		t.shadow = make(map[vkey]version)
	} else if f.MultiPartition {
		t.readSet = make(map[vkey]struct{})
	}
	e.pending[f.Txn] = t
	e.run(t, f)
}

// run executes one fragment for a tracked transaction.
func (e *Engine) run(t *mtxn, f *msg.Fragment) {
	t.frag = f
	if t.ro {
		e.runReadOnly(t, f)
		return
	}
	killed := false
	var out core.ExecOutcome
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(tsKill); ok {
					killed = true
					return
				}
				panic(r)
			}
		}()
		out = e.env.Execute(f, true, &rwLocker{e: e, t: t})
	}()
	if killed {
		e.stats.TSOrderAborts++
		e.env.Rollback(t.id)
		e.finishKilled(t)
		return
	}
	e.stats.Executed++
	if out.Aborted {
		// User or injected abort: Execute already rolled back. Nobody read
		// the rolled-back writes (reads of uncommitted data abort, and
		// snapshots serve before-images), so no cascades.
		e.stats.LocalAborts++
		e.release(t)
		e.env.Forget(t.id)
		if f.MultiPartition {
			e.env.SendResult(f, &msg.FragmentResult{
				Txn: f.Txn, Round: f.Round, Partition: f.Partition,
				Output: out.Output, Aborted: true,
			})
		} else {
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, UserAborted: true})
		}
		return
	}
	if !f.MultiPartition {
		e.commitLocal(t)
		e.env.Forget(t.id)
		e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, Committed: true})
		return
	}
	// Multi-partition rounds: conflicts were resolved eagerly, so the last
	// round's yes vote needs no further validation.
	e.env.SendResult(f, &msg.FragmentResult{
		Txn: f.Txn, Round: f.Round, Partition: f.Partition, Output: out.Output,
	})
}

// runReadOnly executes a read-only fragment against the transaction's
// snapshot and votes/replies. Read-only transactions cannot fail timestamp
// ordering — they hold no locks-equivalent state and touch no writer.
func (e *Engine) runReadOnly(t *mtxn, f *msg.Fragment) {
	var out core.ExecOutcome
	e.overlay(t, func() {
		out = e.env.Execute(f, f.CanAbort, roLocker{})
	})
	e.stats.Executed++
	if out.Aborted {
		// Only an injected fault can abort a read-only transaction; there
		// is no state to roll back.
		e.stats.LocalAborts++
		e.release(t)
		e.env.Forget(t.id)
		if f.MultiPartition {
			e.env.SendResult(f, &msg.FragmentResult{
				Txn: f.Txn, Round: f.Round, Partition: f.Partition,
				Output: out.Output, Aborted: true,
			})
		} else {
			e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, UserAborted: true})
		}
		return
	}
	if f.MultiPartition {
		e.env.SendResult(f, &msg.FragmentResult{
			Txn: f.Txn, Round: f.Round, Partition: f.Partition, Output: out.Output,
		})
		return
	}
	e.release(t)
	e.env.Forget(t.id)
	e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Output: out.Output, Committed: true})
}

// overlay materializes t's snapshot in the store, runs fn, and restores the
// store exactly. The snapshot is the committed state as of t's arrival:
// before-images of all uncommitted writes (hiding dirty data) plus the
// versions captured into t.shadow when later writers committed. Displaced
// rows are restored in reverse order, so overlapping overlays (a shadow
// entry for a row that also has a live writer) unwind correctly.
func (e *Engine) overlay(t *mtxn, fn func()) {
	for k, w := range e.pendingWrites {
		e.apply(k, w.prev)
	}
	for k, v := range t.shadow {
		e.apply(k, v)
	}
	fn()
	for i := len(e.saved) - 1; i >= 0; i-- {
		s := e.saved[i]
		tbl := e.store.Table(s.k.table)
		if s.v.existed {
			tbl.Put(s.k.key, s.v.val)
		} else {
			tbl.Delete(s.k.key)
		}
	}
	e.saved = e.saved[:0]
}

// apply installs one snapshot version, remembering the displaced row.
func (e *Engine) apply(k vkey, v version) {
	tbl := e.store.Table(k.table)
	cur, ok := tbl.Get(k.key)
	e.saved = append(e.saved, savedRow{k, version{cur, ok}})
	if v.existed {
		tbl.Put(k.key, v.val)
	} else {
		tbl.Delete(k.key)
	}
}

// commitLocal commits t's writes: each retired version (the before-image)
// is captured into the snapshot of every read-only transaction still live,
// then the uncommitted-write entries are released — the store head becomes
// the committed version beginning at t's commit timestamp.
func (e *Engine) commitLocal(t *mtxn) {
	for _, k := range t.writes {
		w := e.pendingWrites[k]
		for _, u := range e.pending {
			if u.ro && u != t {
				if _, ok := u.shadow[k]; !ok {
					u.shadow[k] = w.prev
				}
			}
		}
		delete(e.pendingWrites, k)
	}
	delete(e.pending, t.id)
}

// release drops t without committing: its uncommitted writes (if any) have
// already been rolled back in the store, so the entries just vanish.
func (e *Engine) release(t *mtxn) {
	for _, k := range t.writes {
		delete(e.pendingWrites, k)
	}
	delete(e.pending, t.id)
}

// finishKilled completes a transaction killed by timestamp ordering: its
// effects are already rolled back; the client retries it with a fresh
// transaction ID (and thus a fresh, later timestamp), exactly like a
// deadlock victim under locking.
func (e *Engine) finishKilled(t *mtxn) {
	e.release(t)
	e.env.Forget(t.id)
	f := t.frag
	if f.MultiPartition {
		e.env.SendResult(f, &msg.FragmentResult{
			Txn: f.Txn, Round: f.Round, Partition: f.Partition,
			Aborted: true, Killed: true,
		})
	} else {
		e.env.ReplyClient(f, &msg.ClientReply{Txn: f.Txn, Retryable: true})
	}
}

// Decision finalizes a multi-partition transaction.
func (e *Engine) Decision(d *msg.Decision) {
	e.env.ChargeDecision()
	t, ok := e.pending[d.Txn]
	if !ok {
		if d.Commit {
			panic(fmt.Sprintf("mvcc: commit decision for unknown txn %d", d.Txn))
		}
		// The transaction was already killed here (its no vote triggered
		// this abort), or was aborted at failover; nothing to do.
		return
	}
	if d.Commit {
		e.commitLocal(t)
		e.env.Forget(t.id)
		return
	}
	if !t.ro {
		e.env.Rollback(t.id)
	}
	e.release(t)
	e.env.Forget(t.id)
}

// Timer ignores all payloads: MVCC arms no timers, and stale timers from a
// retired engine must be dropped.
func (e *Engine) Timer(payload any) {}
