package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"specdb/internal/elastic"
	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/txn"
)

func micro() *Micro {
	return &Micro{Partitions: 2, KeysPerTxn: 12, MPFraction: 0.3}
}

func TestMicroMPFraction(t *testing.T) {
	m := micro()
	rng := rand.New(rand.NewSource(1))
	mp := 0
	const n = 20000
	for i := 0; i < n; i++ {
		inv := m.Next(i%40, rng)
		a := inv.Args.(*kvstore.Args)
		if len(a.Keys) > 1 {
			mp++
			// Keys split evenly.
			for _, keys := range a.Keys {
				if len(keys) != 6 {
					t.Fatalf("MP keys per partition = %d", len(keys))
				}
			}
		} else {
			for _, keys := range a.Keys {
				if len(keys) != 12 {
					t.Fatalf("SP keys = %d", len(keys))
				}
			}
		}
	}
	if got := float64(mp) / n; math.Abs(got-0.3) > 0.02 {
		t.Fatalf("MP fraction = %f", got)
	}
}

func TestMicroPinnedClients(t *testing.T) {
	m := micro()
	m.Pinned = true
	m.MPFraction = 0
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		inv := m.Next(0, rng)
		a := inv.Args.(*kvstore.Args)
		if _, ok := a.Keys[0]; !ok || len(a.Keys) != 1 {
			t.Fatal("pinned client 0 must stay on partition 0")
		}
		inv = m.Next(1, rng)
		a = inv.Args.(*kvstore.Args)
		if _, ok := a.Keys[1]; !ok {
			t.Fatal("pinned client 1 must stay on partition 1")
		}
	}
}

func TestMicroConflictInjection(t *testing.T) {
	m := micro()
	m.Pinned = true
	m.ConflictProb = 1.0
	rng := rand.New(rand.NewSource(3))
	hot := 0
	const n = 2000
	for i := 0; i < n; i++ {
		inv := m.Next(5, rng) // non-pinned client
		a := inv.Args.(*kvstore.Args)
		count := 0
		for p, keys := range a.Keys {
			if keys[0] == kvstore.HotKey(p) {
				count++
			}
		}
		if count > 1 {
			t.Fatal("conflict injected at more than one partition (deadlock risk the paper excludes)")
		}
		hot += count
	}
	if hot != n {
		t.Fatalf("conflict rate = %d/%d, want every txn", hot, n)
	}
	// Pinned clients never get hot-key substitution (they own the hot keys).
	for i := 0; i < 100; i++ {
		inv := m.Next(0, rng)
		a := inv.Args.(*kvstore.Args)
		if a.Keys[0][0] != kvstore.ClientKey(0, 0, 0) {
			t.Fatal("pinned client keys rewritten")
		}
	}
}

func TestMicroAbortInjection(t *testing.T) {
	m := micro()
	m.AbortProb = 0.5
	rng := rand.New(rand.NewSource(4))
	aborts := 0
	const n = 10000
	for i := 0; i < n; i++ {
		inv := m.Next(0, rng)
		if inv.AbortAt != txn.NoAbort {
			aborts++
			if _, ok := inv.Args.(*kvstore.Args).Keys[inv.AbortAt]; !ok {
				t.Fatal("abort injected at uninvolved partition")
			}
		}
	}
	if got := float64(aborts) / n; math.Abs(got-0.5) > 0.02 {
		t.Fatalf("abort rate = %f", got)
	}
}

func TestMicroTwoRound(t *testing.T) {
	m := micro()
	m.TwoRound = true
	m.MPFraction = 1.0
	rng := rand.New(rand.NewSource(5))
	inv := m.Next(0, rng)
	if !inv.Args.(*kvstore.Args).TwoRound {
		t.Fatal("TwoRound not propagated")
	}
}

func TestScriptExhaustion(t *testing.T) {
	s := &Script{Invs: []*txn.Invocation{
		{Proc: "a"}, {Proc: "b"},
	}}
	rng := rand.New(rand.NewSource(1))
	if s.Next(0, rng).Proc != "a" || s.Next(1, rng).Proc != "b" {
		t.Fatal("script order broken")
	}
	if s.Next(0, rng) != nil {
		t.Fatal("script did not end")
	}
}

func TestLimitCapsGenerator(t *testing.T) {
	l := &Limit{Gen: micro(), N: 5}
	rng := rand.New(rand.NewSource(1))
	count := 0
	for l.Next(0, rng) != nil {
		count++
		if count > 5 {
			break
		}
	}
	if count != 5 {
		t.Fatalf("limit produced %d", count)
	}
}

func TestMixedWeights(t *testing.T) {
	a := &Script{Invs: make([]*txn.Invocation, 0)}
	_ = a
	g1 := &constGen{proc: "one"}
	g2 := &constGen{proc: "two"}
	m := &Mixed{Gens: []Generator{g1, g2}, Weights: []float64{0.8, 0.2}}
	rng := rand.New(rand.NewSource(6))
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.Next(0, rng).Proc == "one" {
			ones++
		}
	}
	if got := float64(ones) / n; math.Abs(got-0.8) > 0.02 {
		t.Fatalf("weight = %f", got)
	}
}

type constGen struct{ proc string }

func (c *constGen) Next(ci int, rng *rand.Rand) *txn.Invocation {
	return &txn.Invocation{Proc: c.proc, AbortAt: txn.NoAbort}
}

// TestMicroMPKeyDistribution is the regression test for the remainder bug:
// multi-partition transactions must carry exactly KeysPerTxn keys total
// (never silently dropping KeysPerTxn mod Partitions of them), spread as
// evenly as possible, and must never issue zero-key fragments.
func TestMicroMPKeyDistribution(t *testing.T) {
	cases := []struct{ partitions, keys int }{
		{2, 12}, // even split
		{2, 7},  // remainder 1
		{5, 12}, // remainder 2
		{4, 1},  // fewer keys than partitions: single-partition plan
		{3, 2},  // fewer keys than partitions: two participants
	}
	for _, tc := range cases {
		m := &Micro{Partitions: tc.partitions, KeysPerTxn: tc.keys, MPFraction: 1}
		rng := rand.New(rand.NewSource(3))
		remTouch := make(map[msg.PartitionID]int)
		for i := 0; i < 500; i++ {
			inv := m.Next(7, rng)
			args := inv.Args.(*kvstore.Args)
			total, minK, maxK := 0, math.MaxInt, 0
			for p, keys := range args.Keys {
				if len(keys) == 0 {
					t.Fatalf("%d/%d: zero-key fragment at partition %d", tc.partitions, tc.keys, p)
				}
				total += len(keys)
				if len(keys) < minK {
					minK = len(keys)
				}
				if len(keys) > maxK {
					maxK = len(keys)
				}
				if len(keys) > tc.keys/tc.partitions {
					remTouch[p]++
				}
			}
			if total != tc.keys {
				t.Fatalf("%d/%d: transaction carries %d keys, want %d", tc.partitions, tc.keys, total, tc.keys)
			}
			if maxK-minK > 1 {
				t.Fatalf("%d/%d: uneven split min=%d max=%d", tc.partitions, tc.keys, minK, maxK)
			}
			want := tc.keys
			if want > tc.partitions {
				want = tc.partitions
			}
			if len(args.Keys) != want {
				t.Fatalf("%d/%d: touches %d partitions, want %d", tc.partitions, tc.keys, len(args.Keys), want)
			}
		}
		// The remainder must not systematically favor one partition.
		if tc.keys%tc.partitions != 0 {
			for p := 0; p < tc.partitions; p++ {
				if remTouch[msg.PartitionID(p)] == 0 {
					t.Errorf("%d/%d: partition %d never received a remainder key", tc.partitions, tc.keys, p)
				}
			}
		}
	}
}

// TestMicroNextAllocationFree pins the issue path's allocations at zero:
// once a client's buffer and the interned key slices are warm, generating an
// invocation — SP, MP, conflict and abort variants included — must not
// allocate. This is the regression gate for the ISSUE 4 hot-path overhaul;
// if it fires, something reintroduced per-issue garbage (the pre-overhaul
// path allocated ~17 objects per call).
func TestMicroNextAllocationFree(t *testing.T) {
	m := &Micro{
		Partitions:   2,
		KeysPerTxn:   12,
		MPFraction:   0.5,
		ConflictProb: 0.3,
		Pinned:       true,
		AbortProb:    0.2,
	}
	rng := rand.New(rand.NewSource(9))
	// Warm every (client, partition, n) slice the grid can produce.
	for i := 0; i < 4000; i++ {
		m.Next(i%8, rng)
	}
	avg := testing.AllocsPerRun(500, func() {
		m.Next(5, rng)
	})
	if avg != 0 {
		t.Fatalf("Micro.Next allocates %.2f objects/issue, want 0", avg)
	}
}

// TestZipfDistribution checks the Gray/YCSB sampler against first
// principles: rank 0's frequency must match 1/zeta(n,theta) and the rank
// frequencies must decay.
func TestZipfDistribution(t *testing.T) {
	const n, theta = 100, 0.99
	z := NewZipf(n, theta)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := z.Sample(rng)
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// zeta(100, 0.99) ≈ 4.863; P(0) ≈ 0.2056.
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	p0 := float64(counts[0]) / draws
	if math.Abs(p0-1/zetan) > 0.01 {
		t.Fatalf("P(rank 0) = %f, want ≈ %f", p0, 1/zetan)
	}
	// Aggregate decay: the top decile must dominate the bottom half.
	top, bottom := 0, 0
	for i := 0; i < n/10; i++ {
		top += counts[i]
	}
	for i := n / 2; i < n; i++ {
		bottom += counts[i]
	}
	if top <= bottom {
		t.Fatalf("no skew: top decile %d vs bottom half %d", top, bottom)
	}
}

// TestZipfSampleDistinct: distinct, ascending, in-range ranks — including
// the degenerate full-keyspace draw where rejection must fall back.
func TestZipfSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct{ n, k int }{{100, 12}, {12, 12}, {2, 2}, {5, 3}} {
		z := NewZipf(tc.n, 0.99)
		dst := make([]int, tc.k)
		for iter := 0; iter < 200; iter++ {
			z.SampleDistinct(rng, dst)
			for i := range dst {
				if dst[i] < 0 || dst[i] >= tc.n {
					t.Fatalf("n=%d k=%d: rank %d out of range", tc.n, tc.k, dst[i])
				}
				if i > 0 && dst[i] <= dst[i-1] {
					t.Fatalf("n=%d k=%d: not ascending-distinct: %v", tc.n, tc.k, dst)
				}
			}
		}
	}
}

// TestZipfSampleAllocationFree pins the sampler at zero allocations — the
// skewed issue path inherits the ISSUE 4 zero-garbage contract.
func TestZipfSampleAllocationFree(t *testing.T) {
	z := NewZipf(480, 0.99)
	rng := rand.New(rand.NewSource(9))
	dst := make([]int, 12)
	if avg := testing.AllocsPerRun(500, func() { z.Sample(rng) }); avg != 0 {
		t.Fatalf("Zipf.Sample allocates %.2f objects/draw, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, func() { z.SampleDistinct(rng, dst) }); avg != 0 {
		t.Fatalf("Zipf.SampleDistinct allocates %.2f objects/draw, want 0", avg)
	}
}

// TestMicroZipfNextAllocationFree extends the Micro.Next=0 gate to the
// skewed path: with reuse proven safe (no replication, window 1 — the shape
// SetShape encodes), a warmed skewed generator must not allocate per issue.
func TestMicroZipfNextAllocationFree(t *testing.T) {
	m := &Micro{
		Partitions:    2,
		KeysPerTxn:    12,
		MPFraction:    0.5,
		KeySkew:       0.9,
		PartitionSkew: 0.6,
	}
	m.SetShape(Shape{Clients: 8, Partitions: 2, Replicas: 1, MaxInFlight: 1})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 4000; i++ {
		m.Next(i%8, rng)
	}
	avg := testing.AllocsPerRun(500, func() {
		m.Next(5, rng)
	})
	if avg != 0 {
		t.Fatalf("skewed Micro.Next allocates %.2f objects/issue, want 0", avg)
	}
}

// TestMicroZipfKeys: skewed issues draw KeysPerTxn distinct interned keys
// from the shared keyspace, and hot ranks dominate.
func TestMicroZipfKeys(t *testing.T) {
	m := &Micro{Partitions: 2, KeysPerTxn: 4, KeySkew: 0.99}
	m.SetShape(Shape{Clients: 4, Partitions: 2, Replicas: 1, MaxInFlight: 1})
	rng := rand.New(rand.NewSource(11))
	hot := kvstore.SharedKey(0, 4, 0)
	hotSeen := 0
	const n = 2000
	for i := 0; i < n; i++ {
		inv := m.Next(0, rng)
		keys := inv.Args.(*kvstore.Args).Keys[0]
		if keys == nil {
			continue // SP txn landed on partition 1
		}
		if len(keys) != 4 {
			t.Fatalf("keys = %v", keys)
		}
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate key %q in %v", k, keys)
			}
			seen[k] = true
		}
		if seen[hot] {
			hotSeen++
		}
	}
	// Rank 0 of a 16-key zipf(0.99) keyspace appears in far more than the
	// uniform 4/16 of transactions.
	if hotSeen < n/3 {
		t.Fatalf("hot key in %d/%d issues, want skewed dominance", hotSeen, n)
	}
}

// TestMicroFreshModeDistinctInvocations: when the shape makes buffer reuse
// unsafe (open-loop window above one), consecutive issues must return
// distinct invocations with distinct args.
func TestMicroFreshModeDistinctInvocations(t *testing.T) {
	m := micro()
	m.SetShape(Shape{Clients: 4, Partitions: 2, Replicas: 1, MaxInFlight: 4})
	rng := rand.New(rand.NewSource(12))
	a := m.Next(0, rng)
	b := m.Next(0, rng)
	if a == b || a.Args == b.Args {
		t.Fatal("fresh mode must not reuse buffers across in-flight invocations")
	}
	// Replicated skew also forces fresh keys.
	ms := &Micro{Partitions: 2, KeysPerTxn: 4, KeySkew: 0.9}
	ms.SetShape(Shape{Clients: 4, Partitions: 2, Replicas: 2, MaxInFlight: 1})
	x := ms.Next(0, rng)
	kx := x.Args.(*kvstore.Args).Keys
	var firstKeys []string
	for _, ks := range kx {
		firstKeys = ks
	}
	y := ms.Next(0, rng)
	if x == y {
		t.Fatal("replicated skew must allocate fresh invocations")
	}
	// x's key slice must be left untouched by y's issue.
	for _, ks := range kx {
		if &ks[0] != &firstKeys[0] {
			t.Fatal("prior invocation's keys were rewritten")
		}
	}
}

// TestMicroBufferReuseContract: the invocation returned for a client is that
// client's reused buffer (stable pointer), while different clients get
// distinct buffers — the closed-loop ownership contract documented on
// Generator.
func TestMicroBufferReuseContract(t *testing.T) {
	m := micro()
	rng := rand.New(rand.NewSource(10))
	a1 := m.Next(0, rng)
	b1 := m.Next(1, rng)
	a2 := m.Next(0, rng)
	if a1 != a2 {
		t.Fatal("same client must reuse its invocation buffer")
	}
	if a1 == b1 {
		t.Fatal("distinct clients must not share a buffer")
	}
	// The key slices handed out are the interned ones: immutable and shared,
	// so two issues of the same shape alias the same backing array.
	ka := a1.Args.(*kvstore.Args)
	for p, keys := range ka.Keys {
		want := kvstore.PartitionKeys(0, p, len(keys))
		if len(keys) != len(want) || &keys[0] != &want[0] {
			t.Fatalf("partition %d keys are not the interned slice", p)
		}
	}
}

// TestMicroSetShapeFillsPartitions is the Partitions-captured-at-Open
// regression: a Micro left with Partitions zero must pick up the cluster's
// partition count from SetShape instead of running degenerate, and a
// partition zipf built against a stale count must be rebuilt to the filled
// one.
func TestMicroSetShapeFillsPartitions(t *testing.T) {
	m := &Micro{KeysPerTxn: 4, MPFraction: 1, PartitionSkew: 0.9}
	m.SetShape(Shape{Clients: 8, Partitions: 4})
	if m.Partitions != 4 || m.Clients != 8 {
		t.Fatalf("shape not filled: Partitions=%d Clients=%d", m.Partitions, m.Clients)
	}
	if m.partZipf.N() != 4 {
		t.Fatalf("partition zipf sized %d, want 4", m.partZipf.N())
	}
	// Explicit knobs survive a SetShape with a different cluster shape, but
	// a sampler sized for the stale count is rebuilt.
	m2 := &Micro{KeysPerTxn: 4, Partitions: 2, Clients: 4, KeySkew: 0.8, PartitionSkew: 0.9}
	m2.samplers()
	m2.Partitions, m2.Clients = 8, 16
	m2.SetShape(Shape{Clients: 32, Partitions: 32})
	if m2.Partitions != 8 || m2.Clients != 16 {
		t.Fatalf("explicit knobs overwritten: Partitions=%d Clients=%d", m2.Partitions, m2.Clients)
	}
	if m2.partZipf.N() != 8 {
		t.Fatalf("stale partition zipf kept: N=%d, want 8", m2.partZipf.N())
	}
	if want := m2.Clients * m2.KeysPerTxn; m2.keyZipf.N() != want {
		t.Fatalf("stale key zipf kept: N=%d, want %d", m2.keyZipf.N(), want)
	}
}

// TestMicroApplyRouting pins the elastic regrouping: keys whose range moved
// land in the new partition's group, merged groups stay sorted, AbortAt
// follows its group's first key, and an untouched invocation passes through
// on the reuse fast path (same map, no regrouping).
func TestMicroApplyRouting(t *testing.T) {
	m := &Micro{Partitions: 2, KeysPerTxn: 2, Clients: 4}
	r := elastic.New()
	if err := m.SetRouter(r); err != nil {
		t.Fatalf("SetRouter: %v", err)
	}
	k00 := kvstore.PartitionKeys(0, 0, 2) // partition 0 keys of client 0
	k01 := kvstore.PartitionKeys(0, 1, 2) // partition 1 keys of client 0
	mkInv := func() *txn.Invocation {
		return &txn.Invocation{
			Proc: kvstore.ProcName,
			Args: &kvstore.Args{Keys: map[msg.PartitionID][]string{
				0: append([]string(nil), k00...),
				1: append([]string(nil), k01...),
			}},
			AbortAt: 0,
		}
	}
	// No moves: the exact map passes through on the fast path.
	inv := mkInv()
	before := inv.Args.(*kvstore.Args).Keys
	m.applyRouting(inv)
	got := inv.Args.(*kvstore.Args).Keys
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("identity routing regrouped: %v", got)
	}
	if &got[0][0] != &before[0][0] {
		t.Fatal("identity routing replaced the key slices")
	}

	// Move everything from partition 0 into partition 1: groups merge, the
	// merged slice is sorted, and AbortAt follows.
	r.Add(elastic.Move{From: 0, To: 1, Lo: "", Hi: ""})
	inv = mkInv()
	m.applyRouting(inv)
	got = inv.Args.(*kvstore.Args).Keys
	if len(got) != 1 || len(got[1]) != 4 {
		t.Fatalf("regrouped keys = %v, want all 4 under partition 1", got)
	}
	if !sort.StringsAreSorted(got[1]) {
		t.Fatalf("merged group not sorted: %v", got[1])
	}
	if inv.AbortAt != 1 {
		t.Fatalf("AbortAt = %d, want remapped to 1", inv.AbortAt)
	}
}

// TestSetRouterRejections pins which generators accept elastic routing:
// scan-bearing Micro refuses, Script has no routing hook, and the wrappers
// forward both the router and the refusal.
func TestSetRouterRejections(t *testing.T) {
	r := elastic.New()
	if err := (&Micro{ScanFraction: 0.1}).SetRouter(r); err == nil {
		t.Fatal("scan-bearing Micro accepted a router")
	}
	if err := (&Limit{Gen: &Micro{}, N: 10}).SetRouter(r); err != nil {
		t.Fatalf("Limit over Micro refused: %v", err)
	}
	if err := (&Limit{Gen: &Script{}, N: 10}).SetRouter(r); err == nil {
		t.Fatal("Limit over Script accepted a router")
	}
	if err := (&Mixed{Gens: []Generator{&Micro{}, &Script{}}, Weights: []float64{1, 1}}).SetRouter(r); err == nil {
		t.Fatal("Mixed with a Script member accepted a router")
	}
	if err := (&Mixed{Gens: []Generator{&Micro{}}, Weights: []float64{1}}).SetRouter(r); err != nil {
		t.Fatalf("all-Micro Mixed refused: %v", err)
	}
}
