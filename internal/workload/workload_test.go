package workload

import (
	"math"
	"math/rand"
	"testing"

	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/txn"
)

func micro() *Micro {
	return &Micro{Partitions: 2, KeysPerTxn: 12, MPFraction: 0.3}
}

func TestMicroMPFraction(t *testing.T) {
	m := micro()
	rng := rand.New(rand.NewSource(1))
	mp := 0
	const n = 20000
	for i := 0; i < n; i++ {
		inv := m.Next(i%40, rng)
		a := inv.Args.(*kvstore.Args)
		if len(a.Keys) > 1 {
			mp++
			// Keys split evenly.
			for _, keys := range a.Keys {
				if len(keys) != 6 {
					t.Fatalf("MP keys per partition = %d", len(keys))
				}
			}
		} else {
			for _, keys := range a.Keys {
				if len(keys) != 12 {
					t.Fatalf("SP keys = %d", len(keys))
				}
			}
		}
	}
	if got := float64(mp) / n; math.Abs(got-0.3) > 0.02 {
		t.Fatalf("MP fraction = %f", got)
	}
}

func TestMicroPinnedClients(t *testing.T) {
	m := micro()
	m.Pinned = true
	m.MPFraction = 0
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		inv := m.Next(0, rng)
		a := inv.Args.(*kvstore.Args)
		if _, ok := a.Keys[0]; !ok || len(a.Keys) != 1 {
			t.Fatal("pinned client 0 must stay on partition 0")
		}
		inv = m.Next(1, rng)
		a = inv.Args.(*kvstore.Args)
		if _, ok := a.Keys[1]; !ok {
			t.Fatal("pinned client 1 must stay on partition 1")
		}
	}
}

func TestMicroConflictInjection(t *testing.T) {
	m := micro()
	m.Pinned = true
	m.ConflictProb = 1.0
	rng := rand.New(rand.NewSource(3))
	hot := 0
	const n = 2000
	for i := 0; i < n; i++ {
		inv := m.Next(5, rng) // non-pinned client
		a := inv.Args.(*kvstore.Args)
		count := 0
		for p, keys := range a.Keys {
			if keys[0] == kvstore.HotKey(p) {
				count++
			}
		}
		if count > 1 {
			t.Fatal("conflict injected at more than one partition (deadlock risk the paper excludes)")
		}
		hot += count
	}
	if hot != n {
		t.Fatalf("conflict rate = %d/%d, want every txn", hot, n)
	}
	// Pinned clients never get hot-key substitution (they own the hot keys).
	for i := 0; i < 100; i++ {
		inv := m.Next(0, rng)
		a := inv.Args.(*kvstore.Args)
		if a.Keys[0][0] != kvstore.ClientKey(0, 0, 0) {
			t.Fatal("pinned client keys rewritten")
		}
	}
}

func TestMicroAbortInjection(t *testing.T) {
	m := micro()
	m.AbortProb = 0.5
	rng := rand.New(rand.NewSource(4))
	aborts := 0
	const n = 10000
	for i := 0; i < n; i++ {
		inv := m.Next(0, rng)
		if inv.AbortAt != txn.NoAbort {
			aborts++
			if _, ok := inv.Args.(*kvstore.Args).Keys[inv.AbortAt]; !ok {
				t.Fatal("abort injected at uninvolved partition")
			}
		}
	}
	if got := float64(aborts) / n; math.Abs(got-0.5) > 0.02 {
		t.Fatalf("abort rate = %f", got)
	}
}

func TestMicroTwoRound(t *testing.T) {
	m := micro()
	m.TwoRound = true
	m.MPFraction = 1.0
	rng := rand.New(rand.NewSource(5))
	inv := m.Next(0, rng)
	if !inv.Args.(*kvstore.Args).TwoRound {
		t.Fatal("TwoRound not propagated")
	}
}

func TestScriptExhaustion(t *testing.T) {
	s := &Script{Invs: []*txn.Invocation{
		{Proc: "a"}, {Proc: "b"},
	}}
	rng := rand.New(rand.NewSource(1))
	if s.Next(0, rng).Proc != "a" || s.Next(1, rng).Proc != "b" {
		t.Fatal("script order broken")
	}
	if s.Next(0, rng) != nil {
		t.Fatal("script did not end")
	}
}

func TestLimitCapsGenerator(t *testing.T) {
	l := &Limit{Gen: micro(), N: 5}
	rng := rand.New(rand.NewSource(1))
	count := 0
	for l.Next(0, rng) != nil {
		count++
		if count > 5 {
			break
		}
	}
	if count != 5 {
		t.Fatalf("limit produced %d", count)
	}
}

func TestMixedWeights(t *testing.T) {
	a := &Script{Invs: make([]*txn.Invocation, 0)}
	_ = a
	g1 := &constGen{proc: "one"}
	g2 := &constGen{proc: "two"}
	m := &Mixed{Gens: []Generator{g1, g2}, Weights: []float64{0.8, 0.2}}
	rng := rand.New(rand.NewSource(6))
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.Next(0, rng).Proc == "one" {
			ones++
		}
	}
	if got := float64(ones) / n; math.Abs(got-0.8) > 0.02 {
		t.Fatalf("weight = %f", got)
	}
}

type constGen struct{ proc string }

func (c *constGen) Next(ci int, rng *rand.Rand) *txn.Invocation {
	return &txn.Invocation{Proc: c.proc, AbortAt: txn.NoAbort}
}

// TestMicroMPKeyDistribution is the regression test for the remainder bug:
// multi-partition transactions must carry exactly KeysPerTxn keys total
// (never silently dropping KeysPerTxn mod Partitions of them), spread as
// evenly as possible, and must never issue zero-key fragments.
func TestMicroMPKeyDistribution(t *testing.T) {
	cases := []struct{ partitions, keys int }{
		{2, 12}, // even split
		{2, 7},  // remainder 1
		{5, 12}, // remainder 2
		{4, 1},  // fewer keys than partitions: single-partition plan
		{3, 2},  // fewer keys than partitions: two participants
	}
	for _, tc := range cases {
		m := &Micro{Partitions: tc.partitions, KeysPerTxn: tc.keys, MPFraction: 1}
		rng := rand.New(rand.NewSource(3))
		remTouch := make(map[msg.PartitionID]int)
		for i := 0; i < 500; i++ {
			inv := m.Next(7, rng)
			args := inv.Args.(*kvstore.Args)
			total, minK, maxK := 0, math.MaxInt, 0
			for p, keys := range args.Keys {
				if len(keys) == 0 {
					t.Fatalf("%d/%d: zero-key fragment at partition %d", tc.partitions, tc.keys, p)
				}
				total += len(keys)
				if len(keys) < minK {
					minK = len(keys)
				}
				if len(keys) > maxK {
					maxK = len(keys)
				}
				if len(keys) > tc.keys/tc.partitions {
					remTouch[p]++
				}
			}
			if total != tc.keys {
				t.Fatalf("%d/%d: transaction carries %d keys, want %d", tc.partitions, tc.keys, total, tc.keys)
			}
			if maxK-minK > 1 {
				t.Fatalf("%d/%d: uneven split min=%d max=%d", tc.partitions, tc.keys, minK, maxK)
			}
			want := tc.keys
			if want > tc.partitions {
				want = tc.partitions
			}
			if len(args.Keys) != want {
				t.Fatalf("%d/%d: touches %d partitions, want %d", tc.partitions, tc.keys, len(args.Keys), want)
			}
		}
		// The remainder must not systematically favor one partition.
		if tc.keys%tc.partitions != 0 {
			for p := 0; p < tc.partitions; p++ {
				if remTouch[msg.PartitionID(p)] == 0 {
					t.Errorf("%d/%d: partition %d never received a remainder key", tc.partitions, tc.keys, p)
				}
			}
		}
	}
}

// TestMicroNextAllocationFree pins the issue path's allocations at zero:
// once a client's buffer and the interned key slices are warm, generating an
// invocation — SP, MP, conflict and abort variants included — must not
// allocate. This is the regression gate for the ISSUE 4 hot-path overhaul;
// if it fires, something reintroduced per-issue garbage (the pre-overhaul
// path allocated ~17 objects per call).
func TestMicroNextAllocationFree(t *testing.T) {
	m := &Micro{
		Partitions:   2,
		KeysPerTxn:   12,
		MPFraction:   0.5,
		ConflictProb: 0.3,
		Pinned:       true,
		AbortProb:    0.2,
	}
	rng := rand.New(rand.NewSource(9))
	// Warm every (client, partition, n) slice the grid can produce.
	for i := 0; i < 4000; i++ {
		m.Next(i%8, rng)
	}
	avg := testing.AllocsPerRun(500, func() {
		m.Next(5, rng)
	})
	if avg != 0 {
		t.Fatalf("Micro.Next allocates %.2f objects/issue, want 0", avg)
	}
}

// TestMicroBufferReuseContract: the invocation returned for a client is that
// client's reused buffer (stable pointer), while different clients get
// distinct buffers — the closed-loop ownership contract documented on
// Generator.
func TestMicroBufferReuseContract(t *testing.T) {
	m := micro()
	rng := rand.New(rand.NewSource(10))
	a1 := m.Next(0, rng)
	b1 := m.Next(1, rng)
	a2 := m.Next(0, rng)
	if a1 != a2 {
		t.Fatal("same client must reuse its invocation buffer")
	}
	if a1 == b1 {
		t.Fatal("distinct clients must not share a buffer")
	}
	// The key slices handed out are the interned ones: immutable and shared,
	// so two issues of the same shape alias the same backing array.
	ka := a1.Args.(*kvstore.Args)
	for p, keys := range ka.Keys {
		want := kvstore.PartitionKeys(0, p, len(keys))
		if len(keys) != len(want) || &keys[0] != &want[0] {
			t.Fatalf("partition %d keys are not the interned slice", p)
		}
	}
}
