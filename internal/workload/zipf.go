package workload

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Zipf samples ranks 0..N-1 with Zipfian popularity: rank 0 is the hottest,
// and P(rank = k) ∝ 1/(k+1)^Theta. It implements the Gray et al. "Quickly
// generating billion-record synthetic databases" method that YCSB
// popularized, which supports the skew range benchmarks actually use
// (0 < Theta < 1; YCSB's default is 0.99) — math/rand's Zipf requires s > 1
// and cannot express it.
//
// Sampling consumes exactly one Float64 from the caller's rng and allocates
// nothing, so generators built on it keep the issue path deterministic and
// garbage-free (see TestZipfSampleAllocationFree). The constants are
// precomputed once at construction (O(N) zeta sum).
type Zipf struct {
	n     int
	theta float64

	alpha float64
	zetan float64
	eta   float64
	zeta2 float64 // zeta(2, theta) = 1 + 0.5^theta, also the rank-1 cutoff
}

// NewZipf builds a sampler over n ranks with skew theta. It panics unless
// n >= 1 and 0 < theta < 1 — the range the Gray method is defined on; use
// uniform selection for theta = 0.
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("workload: zipf over %d ranks", n))
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipf skew %v outside (0,1)", theta))
	}
	z := &Zipf{n: n, theta: theta}
	for i := 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.zeta2 = 1 + math.Pow(0.5, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Sample draws one rank in [0, N), consuming one Float64 from rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if z.n >= 2 && uz < z.zeta2 {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	if k < 0 {
		k = 0
	}
	return k
}

// SampleDistinct fills dst with k distinct ranks in ascending order,
// rejection-sampling duplicates. When skew concentrates so hard that
// rejection stalls (bounded attempts), remaining slots fall back to the
// smallest unused ranks — deterministic, and exactly the hot ranks a
// maximally skewed draw would favor anyway. It panics if k exceeds N.
// dst must have length k; nothing is allocated.
func (z *Zipf) SampleDistinct(rng *rand.Rand, dst []int) {
	k := len(dst)
	if k > z.n {
		panic(fmt.Sprintf("workload: %d distinct ranks from a %d-rank zipf", k, z.n))
	}
	got := 0
	attempts := 0
	for got < k && attempts < 8*k+32 {
		attempts++
		r := z.Sample(rng)
		dup := false
		for i := 0; i < got; i++ {
			if dst[i] == r {
				dup = true
				break
			}
		}
		if !dup {
			dst[got] = r
			got++
		}
	}
	for r := 0; got < k; r++ {
		dup := false
		for i := 0; i < got; i++ {
			if dst[i] == r {
				dup = true
				break
			}
		}
		if !dup {
			dst[got] = r
			got++
		}
	}
	// Ascending order gives every transaction the same canonical lock
	// acquisition order within a partition, so skewed workloads contend
	// without deadlocking inside a partition.
	slices.Sort(dst)
}

// Shape describes the cluster a generator feeds: how many clients call Next,
// how the data is partitioned and replicated, and how many invocations per
// client may be outstanding at once (1 = closed loop; open-loop windows are
// larger). Open passes it to generators implementing ShapeAware before the
// run starts.
type Shape struct {
	Clients     int
	Partitions  int
	Replicas    int
	MaxInFlight int
}

// ShapeAware is implemented by generators that adapt to the cluster shape —
// sizing a shared keyspace by the client count, or switching from per-client
// buffer reuse to per-issue allocation when the in-flight window or
// replication makes reuse unsafe (see the Generator ownership contract).
type ShapeAware interface {
	SetShape(Shape)
}
