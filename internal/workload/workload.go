// Package workload generates client request streams: the §5.1–§5.4
// microbenchmark family and a scripted generator for examples and tests
// (TPC-C has its own generator in internal/tpcc).
package workload

import (
	"errors"
	"math/rand"
	"sort"

	"specdb/internal/elastic"
	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/txn"
)

// Generator produces the next invocation for a closed-loop client, or nil
// when the client should stop.
//
// Ownership: the returned Invocation (and its Args) belongs to the generator
// and is only valid until the next Next call with the same clientIdx.
// Closed-loop clients issue exactly one transaction at a time, so generators
// may reuse a per-client buffer across calls — Micro does, which keeps the
// issue path allocation-free. Anything with a longer lifetime than the
// transaction (fragment works shipped to replicas, for example) must not
// alias mutable parts of the Args; Micro satisfies this by building Args
// exclusively from interned immutable key slices (kvstore.PartitionKeys).
// A generator instance is stateful and belongs to one DB: concurrent cells
// of a parallel Sweep need WithWorkloadFactory.
type Generator interface {
	Next(clientIdx int, rng *rand.Rand) *txn.Invocation
}

// RouterAware marks generators that can re-target invocations through an
// elastic routing table: after a key-range migration, the keys a transaction
// names may live on a different partition than the static layout says, and
// the generator must regroup its per-partition key map through Router.Place
// before issue. WithElasticity requires the workload (after unwrapping) to
// implement it; a generator may return an error when one of its modes cannot
// be re-targeted.
type RouterAware interface {
	SetRouter(r *elastic.Router) error
}

// Micro is the §5.1 microbenchmark client: each transaction reads and
// updates KeysPerTxn keys — all on one random partition (single-partition),
// or split evenly across all partitions (multi-partition) with probability
// MPFraction.
type Micro struct {
	Partitions int
	KeysPerTxn int
	// MPFraction is the fraction of multi-partition transactions (the
	// x-axis of Figures 4–7).
	MPFraction float64
	// ConflictProb makes non-pinned clients write a contended key with
	// probability p (§5.2). Pinned mode assigns clients 0 and 1 to
	// partitions 0 and 1, whose first keys become the contended keys.
	ConflictProb float64
	Pinned       bool
	// AbortProb aborts the transaction at one participant (§5.3).
	AbortProb float64
	// TwoRound issues multi-partition transactions with separate read
	// and write rounds (§5.4).
	TwoRound bool
	// ReadFraction, when in (0,1], makes that fraction of transactions
	// declared read-only: the keys are read but not updated, and the plan
	// is flagged ReadOnly so MVCC serves it from a snapshot. Read-only
	// transactions are always single-round (TwoRound does not apply) and
	// never inject aborts.
	ReadFraction float64
	// ScanFraction, when in (0,1], makes that fraction of transactions
	// declared read-only range scans over the partition's shared keyspace
	// (YCSB-E's short-range workload): a uniform — or, with KeySkew,
	// Zipfian — start rank and a uniform length in [1, ScanLength]. A scan
	// is single-partition, or covers the same rank range on every
	// partition with probability MPFraction. Scan-bearing setups should
	// load the kv table ordered (kvstore.AddOrderedSchema).
	ScanFraction float64
	// ScanLength is the maximum scan length in rows; zero defaults to 10
	// (YCSB-E's average short range).
	ScanLength int

	// KeySkew, when in (0,1), replaces each client's private key range with
	// Zipfian draws over the partition's shared keyspace (all Clients ×
	// KeysPerTxn loaded keys; rank 0 hottest) — the skewed-popularity regime
	// of Larson et al. and YCSB (0.99 is YCSB's default skew). Zero keeps
	// the paper's uniform private-key workload. Skewed draws produce real
	// key conflicts on their own, so ConflictProb's hot-key substitution is
	// not applied when KeySkew is set.
	KeySkew float64
	// PartitionSkew, when in (0,1), picks each single-partition
	// transaction's home partition from a Zipfian over partitions
	// (partition 0 hottest) instead of uniformly — the hot-partition knob.
	// Pinned clients stay pinned.
	PartitionSkew float64
	// Clients is the number of clients sharing the skewed keyspace
	// (KeySkew mode sizes its rank space as Clients × KeysPerTxn, matching
	// what kvstore.Load populates). Zero is filled from the cluster shape
	// when Open runs the generator (SetShape).
	Clients int

	// perClient holds each client's reusable issue buffer, grown lazily on
	// first use. Clients are closed-loop — at most one transaction
	// outstanding — so by the time a client asks for its next invocation,
	// nothing mutable from its previous one is referenced anywhere: the key
	// slices placed in Args are interned and immutable (safe to alias from
	// replica forwards), and the Invocation, Args struct and Keys map are
	// only read between issue and reply. Reuse makes the steady-state issue
	// path allocation-free (see TestMicroNextAllocationFree).
	//
	// Two run shapes void that reasoning, and SetShape switches Next to
	// fresh per-issue allocation for them: open-loop windows above one (a
	// client holds several invocations in flight at once), and KeySkew
	// under replication (skewed key slices are written per issue, but a
	// backup may replay a forwarded work that aliases them after the client
	// has moved on — interned slices tolerate that by immutability, mutable
	// buffers do not).
	perClient []*microBuf
	fresh     bool
	keyZipf   *Zipf
	partZipf  *Zipf

	// router, when set and active, re-targets each invocation's key groups
	// to the partitions that actually hold the keys after elastic
	// migrations (see SetRouter and applyRouting).
	router *elastic.Router
}

// microBuf is one client's reusable invocation state.
type microBuf struct {
	inv   txn.Invocation
	args  kvstore.Args
	parts []msg.PartitionID
	// ranks is the zipf scratch buffer; skew holds per-partition reusable
	// key slices for KeySkew mode. ranks never escapes the call; skew
	// slices are reused only when SetShape proved reuse safe (see fresh).
	ranks []int
	skew  [][]string
}

// buf returns (growing if needed) client ci's issue buffer. Pointers keep
// buffer addresses stable across growth. SetShape pre-sizes the slice and
// pre-builds every client's buffer, so on the sharded parallel runtime —
// where clients on different shards call Next concurrently — the only
// mutations here are to client ci's own buffer, which belongs to exactly one
// actor. Lazy growth remains only for direct Next calls outside Open.
func (m *Micro) buf(ci int) *microBuf {
	for ci >= len(m.perClient) {
		m.perClient = append(m.perClient, nil)
	}
	b := m.perClient[ci]
	if b == nil {
		b = &microBuf{}
		b.args.Keys = make(map[msg.PartitionID][]string, m.Partitions)
		b.inv.Proc = kvstore.ProcName
		b.inv.Args = &b.args
		m.perClient[ci] = b
	}
	return b
}

// SetShape implements ShapeAware: it fills the shared-keyspace client count
// and the partition count from the cluster shape, and decides whether
// per-client buffer reuse is safe for this shape (see perClient).
func (m *Micro) SetShape(s Shape) {
	if m.Clients == 0 {
		m.Clients = s.Clients
	}
	if m.Partitions == 0 {
		m.Partitions = s.Partitions
	}
	m.fresh = s.MaxInFlight > 1 || (m.KeySkew > 0 && s.Replicas > 1)
	// Pre-build every client's buffer and the zipf samplers now, while
	// single-threaded: Next must not mutate cross-client state once clients
	// run on different shards of the parallel runtime.
	for ci := 0; ci < s.Clients; ci++ {
		m.buf(ci)
	}
	m.samplers()
}

// samplers lazily builds the zipf samplers once the keyspace size is known,
// and rebuilds one whose rank space no longer matches its knob — SetShape may
// legitimately fill Clients or Partitions after a first direct Next call, and
// a sampler sized for the stale count would silently truncate (or overflow)
// the keyspace.
func (m *Micro) samplers() {
	if m.KeySkew > 0 {
		if m.Clients <= 0 {
			panic("workload: Micro.KeySkew needs Clients (set it or run via Open, which calls SetShape)")
		}
		if n := m.Clients * m.KeysPerTxn; m.keyZipf == nil || m.keyZipf.N() != n {
			m.keyZipf = NewZipf(n, m.KeySkew)
		}
	}
	if m.PartitionSkew > 0 {
		if m.partZipf == nil || m.partZipf.N() != m.Partitions {
			m.partZipf = NewZipf(m.Partitions, m.PartitionSkew)
		}
	}
}

// skewKeys fills a key slice with n distinct Zipfian draws over partition
// pid's shared keyspace, ascending by rank (canonical lock order). The slice
// is client ci's reusable buffer when reuse is safe, or a fresh allocation
// when it is not (see perClient).
func (m *Micro) skewKeys(b *microBuf, pid msg.PartitionID, n int, rng *rand.Rand) []string {
	if cap(b.ranks) < n {
		b.ranks = make([]int, n)
	}
	ranks := b.ranks[:n]
	m.keyZipf.SampleDistinct(rng, ranks)
	var dst []string
	if m.fresh {
		dst = make([]string, n)
	} else {
		if b.skew == nil {
			b.skew = make([][]string, m.Partitions)
		}
		if cap(b.skew[pid]) < n {
			b.skew[pid] = make([]string, n)
		}
		dst = b.skew[pid][:n]
	}
	for i, r := range ranks {
		dst[i] = kvstore.SharedKey(pid, m.KeysPerTxn, r)
	}
	return dst
}

// SetRouter implements RouterAware. Scan-bearing workloads are rejected:
// scan bounds are rank intervals over one partition's interned keyspace, and
// a migrated sub-range would make the physical scan silently miss (or
// double-count) the moved rows — the facade surfaces the error as
// ErrBadElasticity instead.
func (m *Micro) SetRouter(r *elastic.Router) error {
	if m.ScanFraction > 0 {
		return errors.New("workload: elastic routing cannot re-target range scans")
	}
	m.router = r
	return nil
}

// Next implements Generator. The returned Invocation is client ci's reused
// buffer — valid until the client's next call, per the Generator contract —
// unless SetShape switched to fresh allocation (open-loop windows,
// replicated skew). When an elastic router is installed and has recorded
// migrations, the invocation's key groups are re-targeted to the partitions
// that hold the keys now.
func (m *Micro) Next(ci int, rng *rand.Rand) *txn.Invocation {
	inv := m.next(ci, rng)
	if inv != nil && m.router.Active() {
		m.applyRouting(inv)
	}
	return inv
}

// applyRouting regroups inv's per-partition key map through the elastic
// routing table: each key lands in the group of the partition that holds it
// after all recorded migrations. Untouched invocations (no key moved) pass
// through unchanged on the reuse fast path; a touched one gets fresh sorted
// slices — regrouping can merge keys from different source groups, and the
// interned source slices are immutable. AbortAt is remapped through the
// placement of its group's first key, so the abort still fires at a
// partition the transaction actually visits.
func (m *Micro) applyRouting(inv *txn.Invocation) {
	args, ok := inv.Args.(*kvstore.Args)
	if !ok {
		return
	}
	moved := false
	for pid, keys := range args.Keys {
		for _, k := range keys {
			if m.router.Place(pid, k) != pid {
				moved = true
				break
			}
		}
		if moved {
			break
		}
	}
	if !moved {
		return
	}
	if inv.AbortAt != txn.NoAbort {
		if keys := args.Keys[inv.AbortAt]; len(keys) > 0 {
			inv.AbortAt = m.router.Place(inv.AbortAt, keys[0])
		}
	}
	pids := make([]msg.PartitionID, 0, len(args.Keys))
	for pid := range args.Keys {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	regrouped := make(map[msg.PartitionID][]string, len(args.Keys))
	for _, pid := range pids {
		for _, k := range args.Keys[pid] {
			np := m.router.Place(pid, k)
			regrouped[np] = append(regrouped[np], k)
		}
	}
	for _, keys := range regrouped {
		sort.Strings(keys)
	}
	args.Keys = regrouped
}

// next builds the invocation against the static partition layout.
func (m *Micro) next(ci int, rng *rand.Rand) *txn.Invocation {
	m.samplers()
	mp := rng.Float64() < m.MPFraction
	readOnly := m.ReadFraction > 0 && rng.Float64() < m.ReadFraction
	scan := m.ScanFraction > 0 && rng.Float64() < m.ScanFraction
	b := m.buf(ci)
	var inv *txn.Invocation
	var args *kvstore.Args
	if m.fresh {
		args = &kvstore.Args{Keys: make(map[msg.PartitionID][]string, m.Partitions)}
		inv = &txn.Invocation{Proc: kvstore.ProcName, Args: args}
	} else {
		inv = &b.inv
		args = &b.args
		clear(args.Keys)
		clear(args.Scans)
		args.TwoRound = false
	}
	args.ReadOnly = readOnly
	if scan {
		return m.nextScan(ci, inv, args, mp, rng)
	}
	parts := b.parts[:0]
	if mp {
		// Keys divided as evenly as possible across every partition:
		// KeysPerTxn/Partitions each, with the remainder spread one key
		// apiece from a random starting partition so no partition is
		// systematically favored and MP transactions do exactly as much
		// work as SP ones (the Figure 4–7 comparisons depend on it).
		// Partitions left with zero keys are not participants at all —
		// with KeysPerTxn < Partitions the transaction simply touches
		// fewer partitions, never issuing empty fragments.
		per := m.KeysPerTxn / m.Partitions
		rem := m.KeysPerTxn % m.Partitions
		off := 0
		if rem > 0 {
			off = rng.Intn(m.Partitions)
		}
		for p := 0; p < m.Partitions; p++ {
			n := per
			if (p-off+m.Partitions)%m.Partitions < rem {
				n++
			}
			if n == 0 {
				continue
			}
			pid := msg.PartitionID(p)
			if m.KeySkew > 0 {
				args.Keys[pid] = m.skewKeys(b, pid, n, rng)
			} else {
				args.Keys[pid] = kvstore.PartitionKeys(ci, pid, n)
			}
			parts = append(parts, pid)
		}
		args.TwoRound = m.TwoRound
	} else {
		var pid msg.PartitionID
		switch {
		case m.Pinned && ci < m.Partitions:
			pid = msg.PartitionID(ci)
		case m.PartitionSkew > 0:
			pid = msg.PartitionID(m.partZipf.Sample(rng))
		default:
			pid = msg.PartitionID(rng.Intn(m.Partitions))
		}
		if m.KeySkew > 0 {
			args.Keys[pid] = m.skewKeys(b, pid, m.KeysPerTxn, rng)
		} else {
			args.Keys[pid] = kvstore.PartitionKeys(ci, pid, m.KeysPerTxn)
		}
		parts = append(parts, pid)
	}
	// Conflicts (§5.2): non-pinned clients hit the contended key on one
	// of their partitions with probability p. Each transaction conflicts
	// at a single partition only, so deadlock remains impossible. The
	// interned slices are immutable, so the substitution swaps in the
	// conflict variant of the slice rather than rewriting its first key.
	// KeySkew mode skips the knob: skewed draws already collide.
	if m.ConflictProb > 0 && m.KeySkew == 0 && !(m.Pinned && ci < m.Partitions) && rng.Float64() < m.ConflictProb {
		target := parts[rng.Intn(len(parts))]
		args.Keys[target] = kvstore.ConflictKeys(ci, target, len(args.Keys[target]))
	}
	b.parts = parts
	inv.AbortAt = txn.NoAbort
	if readOnly {
		// Read-only transactions are single-round and never abort.
		args.TwoRound = false
		return inv
	}
	if m.AbortProb > 0 && rng.Float64() < m.AbortProb {
		// Multi-partition transactions abort locally at one partition;
		// the other participants abort during 2PC (§5.3).
		inv.AbortAt = parts[rng.Intn(len(parts))]
	}
	return inv
}

// nextScan builds a declared read-only range-scan invocation (YCSB-E): a
// start rank over the partition's shared keyspace — uniform, or Zipfian
// under KeySkew — and a uniform length in [1, ScanLength]. Key names sort in
// rank order within a partition, so the rank interval [r, r+n) is exactly
// the key range [SharedKey(r), SharedKey(r+n)).
func (m *Micro) nextScan(ci int, inv *txn.Invocation, args *kvstore.Args, mp bool, rng *rand.Rand) *txn.Invocation {
	if m.Clients <= 0 {
		panic("workload: Micro.ScanFraction needs Clients (set it or run via Open, which calls SetShape)")
	}
	maxLen := m.ScanLength
	if maxLen <= 0 {
		maxLen = 10
	}
	space := m.Clients * m.KeysPerTxn
	n := rng.Intn(maxLen) + 1
	var r int
	if m.KeySkew > 0 {
		r = m.keyZipf.Sample(rng)
	} else {
		r = rng.Intn(space)
	}
	if args.Scans == nil {
		args.Scans = make(map[msg.PartitionID]kvstore.ScanArg, m.Partitions)
	}
	args.ReadOnly = true
	args.TwoRound = false
	lo, hi := 0, m.Partitions
	if !mp {
		var pid int
		switch {
		case m.Pinned && ci < m.Partitions:
			pid = ci
		case m.PartitionSkew > 0:
			pid = m.partZipf.Sample(rng)
		default:
			pid = rng.Intn(m.Partitions)
		}
		lo, hi = pid, pid+1
	}
	for p := lo; p < hi; p++ {
		pid := msg.PartitionID(p)
		end := ""
		if r+n < space {
			end = kvstore.SharedKey(pid, m.KeysPerTxn, r+n)
		}
		args.Scans[pid] = kvstore.ScanArg{Lo: kvstore.SharedKey(pid, m.KeysPerTxn, r), Hi: end, Limit: n}
	}
	inv.AbortAt = txn.NoAbort
	return inv
}

// Script replays a fixed sequence of invocations and then stops. It serves
// examples and integration tests that need precise control.
type Script struct {
	Invs []*txn.Invocation
	next int
}

// Next implements Generator.
func (s *Script) Next(ci int, rng *rand.Rand) *txn.Invocation {
	if s.next >= len(s.Invs) {
		return nil
	}
	inv := s.Invs[s.next]
	s.next++
	return inv
}

// Limit caps a generator at N total invocations, turning an infinite
// workload into one that can run to quiescence (needed by invariant tests,
// which must not observe in-flight transactions).
type Limit struct {
	Gen  Generator
	N    int
	used int
}

// Next implements Generator.
func (l *Limit) Next(ci int, rng *rand.Rand) *txn.Invocation {
	if l.used >= l.N {
		return nil
	}
	l.used++
	return l.Gen.Next(ci, rng)
}

// SetShape forwards the cluster shape to the wrapped generator.
func (l *Limit) SetShape(s Shape) {
	if sa, ok := l.Gen.(ShapeAware); ok {
		sa.SetShape(s)
	}
}

// SetRouter forwards the elastic routing table to the wrapped generator.
func (l *Limit) SetRouter(r *elastic.Router) error {
	if ra, ok := l.Gen.(RouterAware); ok {
		return ra.SetRouter(r)
	}
	return errors.New("workload: wrapped generator is not router-aware")
}

// Mixed interleaves generators by weight, for composite workloads.
type Mixed struct {
	Gens    []Generator
	Weights []float64
}

// SetShape forwards the cluster shape to every wrapped generator.
func (m *Mixed) SetShape(s Shape) {
	for _, g := range m.Gens {
		if sa, ok := g.(ShapeAware); ok {
			sa.SetShape(s)
		}
	}
}

// SetRouter forwards the elastic routing table to every wrapped generator;
// all of them must accept it, or the mix would issue a blend of re-targeted
// and stale-routed invocations.
func (m *Mixed) SetRouter(r *elastic.Router) error {
	for _, g := range m.Gens {
		ra, ok := g.(RouterAware)
		if !ok {
			return errors.New("workload: mixed generator is not router-aware")
		}
		if err := ra.SetRouter(r); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Generator.
func (m *Mixed) Next(ci int, rng *rand.Rand) *txn.Invocation {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range m.Weights {
		if x < w || i == len(m.Gens)-1 {
			return m.Gens[i].Next(ci, rng)
		}
		x -= w
	}
	return nil
}
