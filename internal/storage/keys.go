package storage

import "encoding/binary"

// Composite keys are encoded with fixed-width big-endian fields so that
// bytewise string order equals logical order, which the B+tree range scans
// rely on (e.g. all order lines of one order are a contiguous key range).

// KeyUint32 encodes a uint32 field.
func KeyUint32(v uint32) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return string(b[:])
}

// KeyUint64 encodes a uint64 field.
func KeyUint64(v uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return string(b[:])
}

// KeyInt32 encodes an int32 field, order-preserving for negative values.
func KeyInt32(v int32) string {
	return KeyUint32(uint32(v) ^ 0x80000000)
}

// Key concatenates encoded fields into one composite key.
func Key(fields ...string) string {
	n := 0
	for _, f := range fields {
		n += len(f)
	}
	b := make([]byte, 0, n)
	for _, f := range fields {
		b = append(b, f...)
	}
	return string(b)
}

// PrefixEnd returns the smallest key greater than every key with the given
// prefix, suitable as the hi bound of a scan over that prefix. It returns ""
// (unbounded) if the prefix is all 0xff bytes.
func PrefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}
