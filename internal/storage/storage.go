// Package storage implements a partition's in-memory store: a set of named
// tables backed by either a B+tree (ordered, scannable) or a hash table.
//
// Rows follow a copy-on-write discipline: Get returns the stored value, and
// updates must Put a fresh value rather than mutating the returned one. All
// access from stored procedures flows through TxnView, the single choke point
// where undo before-images are recorded and, under the locking scheme, row
// locks are acquired. This mirrors the paper's engine, where concurrency
// control can be switched on and off around an otherwise identical executor.
package storage

import (
	"fmt"
	"sort"

	"specdb/internal/btree"
	"specdb/internal/undo"
)

// Table is a single-partition table. Implementations are not safe for
// concurrent use; each partition is single-threaded by construction.
type Table interface {
	Name() string
	Get(key string) (any, bool)
	// Put stores v under key, returning the previous value if any.
	Put(key string, v any) (prev any, existed bool)
	// Delete removes key, returning the previous value if any.
	Delete(key string) (prev any, existed bool)
	// Ascend visits lo <= key < hi ascending; empty hi means unbounded.
	Ascend(lo, hi string, fn func(k string, v any) bool)
	// Descend visits lo <= key < hi descending; empty hi means unbounded.
	Descend(lo, hi string, fn func(k string, v any) bool)
	Len() int
	// Restore reinstates a before-image captured by Put or Delete; tables
	// are the undo.Restorer of their own rows, which lets TxnView record
	// value-typed undo entries without a per-entry allocation.
	Restore(key string, prev any, existed bool)
}

// BTreeTable is an ordered table.
type BTreeTable struct {
	name string
	t    *btree.Tree[any]
}

// NewBTreeTable returns an empty ordered table.
func NewBTreeTable(name string) *BTreeTable {
	return &BTreeTable{name: name, t: btree.New[any]()}
}

func (b *BTreeTable) Name() string { return b.name }

func (b *BTreeTable) Get(key string) (any, bool) { return b.t.Get(key) }

func (b *BTreeTable) Put(key string, v any) (any, bool) {
	prev, existed := b.t.Get(key)
	b.t.Put(key, v)
	return prev, existed
}

func (b *BTreeTable) Delete(key string) (any, bool) { return b.t.Delete(key) }

func (b *BTreeTable) Ascend(lo, hi string, fn func(k string, v any) bool) {
	b.t.Ascend(lo, hi, fn)
}

func (b *BTreeTable) Descend(lo, hi string, fn func(k string, v any) bool) {
	b.t.Descend(lo, hi, fn)
}

func (b *BTreeTable) Len() int { return b.t.Len() }

func (b *BTreeTable) Restore(key string, prev any, existed bool) {
	restoreRow(b, key, prev, existed)
}

// HashTable is an unordered table. Scans are supported for completeness but
// cost a sort; schema authors should use BTreeTable where scans matter.
type HashTable struct {
	name string
	m    map[string]any
}

// NewHashTable returns an empty hash table.
func NewHashTable(name string) *HashTable {
	return &HashTable{name: name, m: make(map[string]any)}
}

func (h *HashTable) Name() string { return h.name }

func (h *HashTable) Get(key string) (any, bool) {
	v, ok := h.m[key]
	return v, ok
}

func (h *HashTable) Put(key string, v any) (any, bool) {
	prev, existed := h.m[key]
	h.m[key] = v
	return prev, existed
}

func (h *HashTable) Delete(key string) (any, bool) {
	prev, existed := h.m[key]
	if existed {
		delete(h.m, key)
	}
	return prev, existed
}

func (h *HashTable) sortedKeys(lo, hi string) []string {
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		if k >= lo && (hi == "" || k < hi) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func (h *HashTable) Ascend(lo, hi string, fn func(k string, v any) bool) {
	for _, k := range h.sortedKeys(lo, hi) {
		if !fn(k, h.m[k]) {
			return
		}
	}
}

func (h *HashTable) Descend(lo, hi string, fn func(k string, v any) bool) {
	keys := h.sortedKeys(lo, hi)
	for i := len(keys) - 1; i >= 0; i-- {
		if !fn(keys[i], h.m[keys[i]]) {
			return
		}
	}
}

func (h *HashTable) Len() int { return len(h.m) }

func (h *HashTable) Restore(key string, prev any, existed bool) {
	restoreRow(h, key, prev, existed)
}

// restoreRow applies one undo before-image to a table.
func restoreRow(t Table, key string, prev any, existed bool) {
	if existed {
		t.Put(key, prev)
	} else {
		t.Delete(key)
	}
}

// Store is the collection of tables owned by one partition.
type Store struct {
	tables map[string]Table
	order  []string // registration order, for deterministic iteration
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]Table)}
}

// AddTable registers a table. It panics on duplicate names: schemas are
// static configuration, so a duplicate is a programming error.
func (s *Store) AddTable(t Table) {
	if _, dup := s.tables[t.Name()]; dup {
		panic(fmt.Sprintf("storage: duplicate table %q", t.Name()))
	}
	s.tables[t.Name()] = t
	s.order = append(s.order, t.Name())
}

// Table returns the named table, panicking if absent (static schema).
func (s *Store) Table(name string) Table {
	t, ok := s.tables[name]
	if !ok {
		panic(fmt.Sprintf("storage: unknown table %q", name))
	}
	return t
}

// TableNames returns table names in registration order.
func (s *Store) TableNames() []string {
	return append([]string(nil), s.order...)
}

// Fingerprint folds every table's contents into a 64-bit hash (FNV-1a over
// keys and formatted values). Tests use it to compare end states across
// schemes and replicas.
func (s *Store) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b string) {
		for i := 0; i < len(b); i++ {
			h ^= uint64(b[i])
			h *= prime64
		}
	}
	for _, name := range s.order {
		mix(name)
		s.tables[name].Ascend("", "", func(k string, v any) bool {
			mix(k)
			mix(fmt.Sprintf("%v", v))
			return true
		})
	}
	return h
}

// Clone returns a snapshot of the store: fresh tables of the same kinds
// holding the same keys and row values. Row values are shared, not copied —
// safe under the copy-on-write row discipline (updates Put fresh values,
// never mutate in place), so a clone taken at a quiescent instant stays
// consistent while the original keeps mutating. Fuzzy checkpoints
// (internal/durable) are built on exactly this property.
func (s *Store) Clone() *Store {
	out := NewStore()
	for _, name := range s.order {
		t := s.tables[name]
		var nt Table
		if _, ordered := t.(*BTreeTable); ordered {
			nt = NewBTreeTable(name)
		} else {
			nt = NewHashTable(name)
		}
		t.Ascend("", "", func(k string, v any) bool {
			nt.Put(k, v)
			return true
		})
		out.AddTable(nt)
	}
	return out
}

// ApproxBytes estimates the store's serialized size — keys plus a fixed
// per-row value charge — for pricing checkpoint writes and recovery loads.
// The paper's workloads use deliberately tiny values (§5.1), so a coarse
// estimate is plenty.
func (s *Store) ApproxBytes() uint64 {
	const perRow = 16
	var n uint64
	for _, name := range s.order {
		n += uint64(len(name))
		s.tables[name].Ascend("", "", func(k string, v any) bool {
			n += uint64(len(k)) + perRow
			return true
		})
	}
	return n
}

// DiffStores compares two stores key-for-key, returning a descriptive error
// for the first divergence found (table sets, row counts, keys, or values —
// values compared by their fmt representation, matching Fingerprint's
// discipline) and nil when the stores are equivalent. Replica tests use it
// to verify each backup converged to its primary's exact state.
func DiffStores(a, b *Store) error {
	an, bn := a.TableNames(), b.TableNames()
	if len(an) != len(bn) {
		return fmt.Errorf("storage: table count differs: %d vs %d", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return fmt.Errorf("storage: table %d differs: %q vs %q", i, an[i], bn[i])
		}
	}
	for _, name := range an {
		ta, tb := a.Table(name), b.Table(name)
		if ta.Len() != tb.Len() {
			return fmt.Errorf("storage: table %q row count differs: %d vs %d", name, ta.Len(), tb.Len())
		}
		var diff error
		ta.Ascend("", "", func(k string, v any) bool {
			w, ok := tb.Get(k)
			if !ok {
				diff = fmt.Errorf("storage: table %q key %q missing from second store", name, k)
				return false
			}
			if fmt.Sprintf("%v", v) != fmt.Sprintf("%v", w) {
				diff = fmt.Errorf("storage: table %q key %q differs: %v vs %v", name, k, v, w)
				return false
			}
			return true
		})
		if diff != nil {
			return diff
		}
	}
	return nil
}

// Locker acquires row locks on behalf of an executing transaction. It is
// implemented by the locking scheme's per-partition engine; the other schemes
// run with a nil Locker ("assume everything conflicts" — §4.2).
type Locker interface {
	// Lock acquires the row lock in shared or exclusive mode. It may
	// suspend the calling fiber until granted; if the transaction is
	// chosen as a deadlock victim while waiting, Lock panics with an
	// abort sentinel that the fragment runner recovers.
	Lock(table, key string, exclusive bool)
}

// RangeLocker is the optional extension lockers implement to cover a scanned
// key range as a unit instead of row by row. Covering the range (not just the
// rows present in it) is what provides phantom protection: an insert into
// [lo,hi) conflicts with the range even though no visited row does. Lockers
// without this extension fall back to per-row shared locks, which admit
// phantoms.
type RangeLocker interface {
	Locker
	// LockRange acquires shared coverage of lo <= key < hi (empty hi means
	// unbounded). Like Lock, it may suspend the calling fiber or panic
	// with the engine's kill sentinel.
	LockRange(table, lo, hi string)
}

// Observer sees every row access a TxnView performs, with the value read or
// written. The serializability oracle (internal/oracle) installs one to build
// per-transaction value traces; a nil Observer costs one branch per access.
// Retaining observed values is safe under the copy-on-write row discipline.
type Observer interface {
	// ObserveGet records a read (point read or scan visit) of a row that
	// held val (ok) or was absent (!ok).
	ObserveGet(table, key string, val any, ok bool)
	// ObservePut records a write of val.
	ObservePut(table, key string, val any)
	// ObserveDelete records a delete.
	ObserveDelete(table, key string)
	// ObserveScan records a completed range scan: the bounds and limit the
	// transaction asked for, plus the exact key/value sequence it saw. The
	// oracle re-executes the scan at replay; a row present at replay but
	// absent from keys (or vice versa) is a phantom.
	ObserveScan(table, lo, hi string, reverse bool, limit int, keys []string, vals []any)
}

// TxnView is the data access handle given to stored procedure fragments.
type TxnView struct {
	store  *Store
	undo   *undo.Buffer
	locker Locker
	// Obs, when non-nil, observes every access with its value. Reset wipes
	// it; hosts that install an Observer must re-set it after Reset.
	Obs Observer
	// Counters for the cost model and Table 2 instrumentation.
	Reads, Writes, LockAcquires int
}

// NewTxnView builds a view. undoBuf may be nil (no-abort fast path); locker
// may be nil (blocking/speculation, or locking's lock-free fast path).
func NewTxnView(store *Store, undoBuf *undo.Buffer, locker Locker) *TxnView {
	return &TxnView{store: store, undo: undoBuf, locker: locker}
}

// Reset re-initializes a view in place, zeroing its counters. Executors that
// run fragments to completion on one goroutine (everything except the
// locking engine's suspended fibers) reuse a single view across fragments
// instead of allocating one per execution; procedures must not retain the
// view beyond Run, which the txn.Procedure contract already demands.
func (v *TxnView) Reset(store *Store, undoBuf *undo.Buffer, locker Locker) {
	*v = TxnView{store: store, undo: undoBuf, locker: locker}
}

// Store returns the underlying store (for schema-aware helpers).
func (v *TxnView) Store() *Store { return v.store }

// Undoing reports whether the view records undo information.
func (v *TxnView) Undoing() bool { return v.undo != nil }

func (v *TxnView) lock(table, key string, exclusive bool) {
	if v.locker != nil {
		v.LockAcquires++
		v.locker.Lock(table, key, exclusive)
	}
}

// Get reads a row.
func (v *TxnView) Get(table, key string) (any, bool) {
	v.lock(table, key, false)
	v.Reads++
	val, ok := v.store.Table(table).Get(key)
	if v.Obs != nil {
		v.Obs.ObserveGet(table, key, val, ok)
	}
	return val, ok
}

// GetForUpdate reads a row taking an exclusive lock up front. Read-modify-
// write accesses must use it: acquiring S and upgrading to X later deadlocks
// as soon as two transactions race on the same row.
func (v *TxnView) GetForUpdate(table, key string) (any, bool) {
	v.lock(table, key, true)
	v.Reads++
	val, ok := v.store.Table(table).Get(key)
	if v.Obs != nil {
		v.Obs.ObserveGet(table, key, val, ok)
	}
	return val, ok
}

// Put writes a row (insert or update). The caller must not mutate a value
// obtained from Get; it must Put a fresh copy.
func (v *TxnView) Put(table, key string, val any) {
	v.lock(table, key, true)
	v.Writes++
	t := v.store.Table(table)
	prev, existed := t.Put(key, val)
	if v.undo != nil {
		v.undo.Record(undo.Entry{Target: t, Key: key, Prev: prev, Existed: existed})
	}
	if v.Obs != nil {
		v.Obs.ObservePut(table, key, val)
	}
}

// Delete removes a row.
func (v *TxnView) Delete(table, key string) bool {
	v.lock(table, key, true)
	v.Writes++
	t := v.store.Table(table)
	prev, existed := t.Delete(key)
	if v.undo != nil && existed {
		v.undo.Record(undo.Entry{Target: t, Key: key, Prev: prev, Existed: true})
	}
	if v.Obs != nil {
		v.Obs.ObserveDelete(table, key)
	}
	return existed
}

// Ascend scans lo <= key < hi ascending, acquiring shared locks on visited
// rows. Phantom protection is not provided (row-level locking only), matching
// the paper's prototype granularity.
func (v *TxnView) Ascend(table, lo, hi string, fn func(k string, val any) bool) {
	v.store.Table(table).Ascend(lo, hi, func(k string, val any) bool {
		v.lock(table, k, false)
		v.Reads++
		if v.Obs != nil {
			v.Obs.ObserveGet(table, k, val, true)
		}
		return fn(k, val)
	})
}

// Descend scans lo <= key < hi descending, acquiring shared locks.
func (v *TxnView) Descend(table, lo, hi string, fn func(k string, val any) bool) {
	v.store.Table(table).Descend(lo, hi, func(k string, val any) bool {
		v.lock(table, k, false)
		v.Reads++
		if v.Obs != nil {
			v.Obs.ObserveGet(table, k, val, true)
		}
		return fn(k, val)
	})
}

// Scan visits lo <= key < hi ascending, stopping after limit rows (limit <= 0
// means unbounded), and returns the number of rows visited. Unlike Ascend it
// is phantom-safe: a RangeLocker covers the whole range as a unit before any
// row is read, so concurrent inserts into the range conflict with the scan
// even though they touch no visited row. Lockers without range support fall
// back to per-row shared locks.
func (v *TxnView) Scan(table, lo, hi string, limit int, fn func(k string, val any) bool) int {
	return v.scan(table, lo, hi, limit, false, fn)
}

// ScanReverse is Scan in descending key order over the same half-open range.
func (v *TxnView) ScanReverse(table, lo, hi string, limit int, fn func(k string, val any) bool) int {
	return v.scan(table, lo, hi, limit, true, fn)
}

// scanVisitor carries a scan's traversal state. Hoisting it into a struct —
// with the visitor as a method rather than a func literal — lets the struct
// live on the caller's stack when the traversal is dispatched on the concrete
// *BTreeTable, so the warm ordered scan allocates nothing. The table-interface
// fallback uses a second struct instance whose address does escape; keeping
// the two instances distinct is what stops that path from poisoning this one.
type scanVisitor struct {
	v      *TxnView
	table  string
	fn     func(k string, val any) bool
	limit  int
	locked bool // no per-row locks: lock-free view, or a range lock covers us
	n      int
	// Collected only for the oracle; production runs (nil Obs) pay nothing.
	keys []string
	vals []any
}

func (sv *scanVisitor) visit(k string, val any) bool {
	if !sv.locked {
		sv.v.lock(sv.table, k, false)
	}
	sv.v.Reads++
	sv.n++
	if sv.v.Obs != nil {
		sv.keys = append(sv.keys, k)
		sv.vals = append(sv.vals, val)
	}
	if !sv.fn(k, val) {
		return false
	}
	return sv.limit <= 0 || sv.n < sv.limit
}

func (v *TxnView) scan(table, lo, hi string, limit int, reverse bool, fn func(k string, val any) bool) int {
	locked := v.locker == nil
	if v.locker != nil {
		if rl, ok := v.locker.(RangeLocker); ok {
			v.LockAcquires++
			rl.LockRange(table, lo, hi)
			locked = true
		}
	}
	t := v.store.Table(table)
	if bt, ok := t.(*BTreeTable); ok {
		sv := scanVisitor{v: v, table: table, fn: fn, limit: limit, locked: locked}
		if reverse {
			bt.Descend(lo, hi, sv.visit)
		} else {
			bt.Ascend(lo, hi, sv.visit)
		}
		if v.Obs != nil {
			v.Obs.ObserveScan(table, lo, hi, reverse, limit, sv.keys, sv.vals)
		}
		return sv.n
	}
	sv := scanVisitor{v: v, table: table, fn: fn, limit: limit, locked: locked}
	if reverse {
		t.Descend(lo, hi, sv.visit)
	} else {
		t.Ascend(lo, hi, sv.visit)
	}
	if v.Obs != nil {
		v.Obs.ObserveScan(table, lo, hi, reverse, limit, sv.keys, sv.vals)
	}
	return sv.n
}
