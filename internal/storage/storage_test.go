package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"specdb/internal/undo"
)

func TestTableKinds(t *testing.T) {
	for _, tbl := range []Table{NewBTreeTable("b"), NewHashTable("h")} {
		t.Run(tbl.Name(), func(t *testing.T) {
			if _, existed := tbl.Put("k1", "v1"); existed {
				t.Fatal("fresh Put reported existing")
			}
			prev, existed := tbl.Put("k1", "v2")
			if !existed || prev != "v1" {
				t.Fatalf("replace Put = %v,%v", prev, existed)
			}
			v, ok := tbl.Get("k1")
			if !ok || v != "v2" {
				t.Fatalf("Get = %v,%v", v, ok)
			}
			prev, existed = tbl.Delete("k1")
			if !existed || prev != "v2" {
				t.Fatalf("Delete = %v,%v", prev, existed)
			}
			if tbl.Len() != 0 {
				t.Fatalf("Len = %d", tbl.Len())
			}
		})
	}
}

func TestHashTableScansSorted(t *testing.T) {
	h := NewHashTable("h")
	for i := 9; i >= 0; i-- {
		h.Put(fmt.Sprintf("k%d", i), i)
	}
	var asc []any
	h.Ascend("k2", "k5", func(k string, v any) bool {
		asc = append(asc, v)
		return true
	})
	if len(asc) != 3 || asc[0] != 2 || asc[2] != 4 {
		t.Fatalf("Ascend = %v", asc)
	}
	var desc []any
	h.Descend("", "", func(k string, v any) bool {
		desc = append(desc, v)
		return len(desc) < 2
	})
	if len(desc) != 2 || desc[0] != 9 || desc[1] != 8 {
		t.Fatalf("Descend = %v", desc)
	}
}

func TestStoreDuplicateTablePanics(t *testing.T) {
	s := NewStore()
	s.AddTable(NewHashTable("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AddTable(NewBTreeTable("x"))
}

func TestStoreUnknownTablePanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Table("nope")
}

func newTestStore() *Store {
	s := NewStore()
	s.AddTable(NewBTreeTable("t"))
	return s
}

func TestTxnViewUndoRestoresExactState(t *testing.T) {
	s := newTestStore()
	base := NewTxnView(s, nil, nil)
	base.Put("t", "a", 1)
	base.Put("t", "b", 2)
	before := s.Fingerprint()

	buf := undo.New()
	v := NewTxnView(s, buf, nil)
	v.Put("t", "a", 100)    // update
	v.Put("t", "c", 3)      // insert
	v.Delete("t", "b")      // delete
	v.Put("t", "c", 30)     // update the inserted row
	v.Delete("t", "nosuch") // no-op delete
	if s.Fingerprint() == before {
		t.Fatal("mutations had no effect")
	}
	buf.Rollback()
	if got := s.Fingerprint(); got != before {
		t.Fatalf("rollback did not restore state: %d != %d", got, before)
	}
	if v2, ok := s.Table("t").Get("a"); !ok || v2 != 1 {
		t.Fatalf("a = %v,%v", v2, ok)
	}
	if _, ok := s.Table("t").Get("c"); ok {
		t.Fatal("c still present after rollback")
	}
}

func TestTxnViewDiscardKeepsChanges(t *testing.T) {
	s := newTestStore()
	buf := undo.New()
	v := NewTxnView(s, buf, nil)
	v.Put("t", "a", 1)
	buf.Discard()
	buf.Rollback() // must be a no-op now
	if _, ok := s.Table("t").Get("a"); !ok {
		t.Fatal("committed row lost")
	}
}

// TestQuickUndoIdentity: any random mutation sequence followed by rollback
// leaves the store exactly as it began.
func TestQuickUndoIdentity(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newTestStore()
		init := NewTxnView(s, nil, nil)
		for i := 0; i < 20; i++ {
			init.Put("t", fmt.Sprintf("k%d", i), rng.Intn(100))
		}
		before := s.Fingerprint()
		buf := undo.New()
		v := NewTxnView(s, buf, nil)
		for _, op := range ops {
			k := fmt.Sprintf("k%d", int(op)%30)
			switch int(op) % 3 {
			case 0:
				v.Put("t", k, rng.Intn(1000))
			case 1:
				v.Delete("t", k)
			case 2:
				v.Get("t", k)
			}
		}
		buf.Rollback()
		return s.Fingerprint() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

type recordingLocker struct {
	calls []string
}

func (r *recordingLocker) Lock(table, key string, exclusive bool) {
	mode := "S"
	if exclusive {
		mode = "X"
	}
	r.calls = append(r.calls, table+"/"+key+"/"+mode)
}

func TestTxnViewLockChokePoint(t *testing.T) {
	s := newTestStore()
	NewTxnView(s, nil, nil).Put("t", "a", 1)
	rl := &recordingLocker{}
	v := NewTxnView(s, nil, rl)
	v.Get("t", "a")
	v.Put("t", "b", 2)
	v.Delete("t", "a")
	v.Ascend("t", "", "", func(k string, val any) bool { return true })
	v.GetForUpdate("t", "b")
	want := []string{"t/a/S", "t/b/X", "t/a/X", "t/b/S", "t/b/X"}
	if len(rl.calls) != len(want) {
		t.Fatalf("lock calls = %v", rl.calls)
	}
	for i, w := range want {
		if rl.calls[i] != w {
			t.Fatalf("lock call %d = %q, want %q", i, rl.calls[i], w)
		}
	}
	if v.LockAcquires != 5 || v.Reads != 3 || v.Writes != 2 {
		t.Fatalf("counters = %d/%d/%d", v.LockAcquires, v.Reads, v.Writes)
	}
}

func TestTxnViewScans(t *testing.T) {
	s := newTestStore()
	v := NewTxnView(s, nil, nil)
	for i := 0; i < 10; i++ {
		v.Put("t", Key(KeyUint32(uint32(i))), i)
	}
	var asc, desc []int
	v.Ascend("t", KeyUint32(3), KeyUint32(7), func(k string, val any) bool {
		asc = append(asc, val.(int))
		return true
	})
	v.Descend("t", KeyUint32(3), KeyUint32(7), func(k string, val any) bool {
		desc = append(desc, val.(int))
		return true
	})
	if len(asc) != 4 || asc[0] != 3 || asc[3] != 6 {
		t.Fatalf("asc = %v", asc)
	}
	if len(desc) != 4 || desc[0] != 6 || desc[3] != 3 {
		t.Fatalf("desc = %v", desc)
	}
}

func TestKeyEncodingOrder(t *testing.T) {
	if KeyUint32(1) >= KeyUint32(2) {
		t.Fatal("uint32 order broken")
	}
	if KeyUint32(255) >= KeyUint32(256) {
		t.Fatal("uint32 byte boundary order broken")
	}
	if KeyUint64(1<<40) >= KeyUint64(1<<40+1) {
		t.Fatal("uint64 order broken")
	}
	if KeyInt32(-5) >= KeyInt32(3) {
		t.Fatal("int32 sign order broken")
	}
	if KeyInt32(-5) >= KeyInt32(-4) {
		t.Fatal("int32 negative order broken")
	}
	comp1 := Key(KeyUint32(1), KeyUint32(999))
	comp2 := Key(KeyUint32(2), KeyUint32(0))
	if comp1 >= comp2 {
		t.Fatal("composite order broken")
	}
}

func TestPrefixEnd(t *testing.T) {
	p := Key(KeyUint32(7))
	end := PrefixEnd(p)
	inside := Key(KeyUint32(7), KeyUint32(4000000000))
	if !(inside >= p && inside < end) {
		t.Fatal("prefix range does not contain member")
	}
	outside := Key(KeyUint32(8))
	if outside < end {
		t.Fatal("prefix range contains non-member")
	}
	if PrefixEnd("\xff\xff") != "" {
		t.Fatal("all-0xff prefix should be unbounded")
	}
	if PrefixEnd("a\xff") != "b" {
		t.Fatalf("PrefixEnd(a\\xff) = %q", PrefixEnd("a\xff"))
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	s1, s2 := newTestStore(), newTestStore()
	NewTxnView(s1, nil, nil).Put("t", "a", 1)
	NewTxnView(s2, nil, nil).Put("t", "a", 2)
	if s1.Fingerprint() == s2.Fingerprint() {
		t.Fatal("fingerprint blind to value change")
	}
	NewTxnView(s2, nil, nil).Put("t", "a", 1)
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatal("equal stores have different fingerprints")
	}
}

func TestUndoFuncAdapter(t *testing.T) {
	n := 0
	b := undo.New()
	b.Record(undo.Entry{Target: undo.Func(func() { n++ })})
	b.Record(undo.Entry{Target: undo.Func(func() { n += 10 })})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Rollback()
	if n != 11 {
		t.Fatalf("n = %d", n)
	}
	b.Rollback() // idempotent after clear
	if n != 11 {
		t.Fatalf("n = %d after second rollback", n)
	}
}
