package storage

import (
	"fmt"
	"testing"
)

// scanStore builds a store with n rows in table tbl (ordered or hash
// layout), keys zero-padded so byte order equals insertion rank.
func scanStore(ordered bool, n int) *Store {
	s := NewStore()
	if ordered {
		s.AddTable(NewBTreeTable("kv"))
	} else {
		s.AddTable(NewHashTable("kv"))
	}
	t := s.Table("kv")
	for i := 0; i < n; i++ {
		t.Put(fmt.Sprintf("k%06d", i), int64(i))
	}
	return s
}

// TestBTreeTableScanAllocationFree pins the warm TxnView scan path at zero
// allocations: no observer, no locker (the blocking/speculation/fast-path
// configuration every point-op benchmark runs in), a B-tree walk must not
// produce garbage. This is the scan edition of the ISSUE 4 zero-garbage
// contract — scan support must not tax the hot path.
func TestBTreeTableScanAllocationFree(t *testing.T) {
	s := scanStore(true, 512)
	v := NewTxnView(s, nil, nil)
	var sum int64
	// The row callback is hoisted out of the measured region: Scan's fn
	// escapes (the interface-fallback path stores it), so a capturing
	// closure literal would cost one allocation at the call site. Real hot
	// callers (kvstore.Run) pass a capture-free literal, which is static.
	body := func(k string, val any) bool {
		sum += val.(int64)
		return true
	}
	scan := func() {
		v.Scan("kv", "k000100", "k000150", 0, body)
	}
	scan() // warm
	if avg := testing.AllocsPerRun(200, scan); avg != 0 {
		t.Fatalf("warm BTreeTable scan allocates %.2f objects/scan, want 0 (sum=%d)", avg, sum)
	}
}

// benchScan measures a 50-row scan through TxnView against either layout.
func benchScan(b *testing.B, ordered bool) {
	s := scanStore(ordered, 4096)
	v := NewTxnView(s, nil, nil)
	var sum int64
	body := func(k string, val any) bool {
		sum += val.(int64)
		return true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Scan("kv", "k002000", "k002050", 0, body)
	}
	_ = sum
}

// BenchmarkBTreeTableScan is the warm ordered-layout scan path: a tree
// descent plus an in-order walk of 50 rows.
func BenchmarkBTreeTableScan(b *testing.B) { benchScan(b, true) }

// BenchmarkHashTableScan is the same scan against the hash layout, which
// re-sorts the full key population on every call — the O(n log n) cost that
// makes BTreeTable the default for scan-bearing tables.
func BenchmarkHashTableScan(b *testing.B) { benchScan(b, false) }
