// Package btree implements an in-memory B+tree with string keys, used as the
// ordered table structure of the execution engine ("Each table is represented
// as either a B-Tree, a binary tree, or hash table, as appropriate", §5).
//
// Keys are ordered bytewise; composite keys are encoded with fixed-width
// big-endian fields (see internal/storage/keys.go) so byte order equals
// logical order. Values are generic. The tree supports point operations and
// ascending/descending range scans; scans visit a consistent snapshot of the
// structure as long as the callback does not modify the tree.
package btree

// degree is the maximum number of children of an internal node. Leaves hold
// up to degree-1 entries. 32 keeps nodes within a couple of cache lines
// without making rebalancing tests unwieldy.
const degree = 32

const (
	maxKeys = degree - 1
	minKeys = maxKeys / 2
)

// Tree is a B+tree mapping string keys to values of type V. The zero value
// is not usable; call New.
type Tree[V any] struct {
	root   *node[V]
	height int // number of levels; 1 = root is a leaf
	size   int
}

// node is either a leaf (children == nil) or an internal node. In an internal
// node, keys[i] is the smallest key reachable under children[i+1]; there are
// len(keys)+1 children.
type node[V any] struct {
	keys     []string
	vals     []V        // leaves only
	children []*node[V] // internal only
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &node[V]{}, height: 1}
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

func (n *node[V]) leaf() bool { return n.children == nil }

// search returns the index of the first key >= k.
func (n *node[V]) search(k string) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child to descend into for key k.
func (n *node[V]) childIndex(k string) int {
	// keys[i] is the minimum of children[i+1], so we want the last
	// separator <= k.
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under k.
func (t *Tree[V]) Get(k string) (V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[n.childIndex(k)]
	}
	i := n.search(k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under k. It reports whether a new entry
// was created.
func (t *Tree[V]) Put(k string, v V) bool {
	created, split, sepKey, right := t.insert(t.root, k, v)
	if split {
		newRoot := &node[V]{
			keys:     []string{sepKey},
			children: []*node[V]{t.root, right},
		}
		t.root = newRoot
		t.height++
	}
	if created {
		t.size++
	}
	return created
}

// insert adds k/v under n. If n overflows it splits, returning the separator
// key and the new right sibling.
func (t *Tree[V]) insert(n *node[V], k string, v V) (created, split bool, sepKey string, right *node[V]) {
	if n.leaf() {
		i := n.search(k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			return false, false, "", nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		created = true
	} else {
		ci := n.childIndex(k)
		var childSplit bool
		created, childSplit, sepKey, right = t.insert(n.children[ci], k, v)
		if !childSplit {
			return created, false, "", nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sepKey
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
	}
	if len(n.keys) <= maxKeys {
		return created, false, "", nil
	}
	sepKey, right = t.split(n)
	return created, true, sepKey, right
}

// split divides an overfull node, returning the separator to push up and the
// new right sibling.
func (t *Tree[V]) split(n *node[V]) (string, *node[V]) {
	mid := len(n.keys) / 2
	r := &node[V]{}
	if n.leaf() {
		// Right leaf keeps keys[mid:]; separator is its first key
		// (B+tree: all keys stay in leaves).
		r.keys = append(r.keys, n.keys[mid:]...)
		r.vals = append(r.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		return r.keys[0], r
	}
	// Internal: separator moves up, not into the right node.
	sep := n.keys[mid]
	r.keys = append(r.keys, n.keys[mid+1:]...)
	r.children = append(r.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, r
}

// Delete removes k, returning its value if present.
func (t *Tree[V]) Delete(k string) (V, bool) {
	v, removed := t.remove(t.root, k)
	if removed {
		t.size--
		if !t.root.leaf() && len(t.root.children) == 1 {
			t.root = t.root.children[0]
			t.height--
		}
	}
	return v, removed
}

func (t *Tree[V]) remove(n *node[V], k string) (V, bool) {
	var zero V
	if n.leaf() {
		i := n.search(k)
		if i >= len(n.keys) || n.keys[i] != k {
			return zero, false
		}
		v := n.vals[i]
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return v, true
	}
	ci := n.childIndex(k)
	v, removed := t.remove(n.children[ci], k)
	if !removed {
		return zero, false
	}
	if t.underflow(n.children[ci]) {
		t.rebalance(n, ci)
	}
	return v, true
}

func (t *Tree[V]) underflow(n *node[V]) bool {
	return len(n.keys) < minKeys
}

// rebalance fixes an underfull child at index ci of parent p by borrowing
// from or merging with a sibling.
func (t *Tree[V]) rebalance(p *node[V], ci int) {
	child := p.children[ci]
	// Try borrowing from the left sibling.
	if ci > 0 {
		left := p.children[ci-1]
		if len(left.keys) > minKeys {
			if child.leaf() {
				last := len(left.keys) - 1
				child.keys = append([]string{left.keys[last]}, child.keys...)
				child.vals = append([]V{left.vals[last]}, child.vals...)
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				p.keys[ci-1] = child.keys[0]
			} else {
				// Rotate through the parent separator.
				lastK := len(left.keys) - 1
				child.keys = append([]string{p.keys[ci-1]}, child.keys...)
				p.keys[ci-1] = left.keys[lastK]
				left.keys = left.keys[:lastK]
				lastC := len(left.children) - 1
				child.children = append([]*node[V]{left.children[lastC]}, child.children...)
				left.children = left.children[:lastC]
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(p.children)-1 {
		right := p.children[ci+1]
		if len(right.keys) > minKeys {
			if child.leaf() {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				p.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, p.keys[ci])
				p.keys[ci] = right.keys[0]
				right.keys = right.keys[1:]
				child.children = append(child.children, right.children[0])
				right.children = right.children[1:]
			}
			return
		}
	}
	// Merge with a sibling.
	if ci > 0 {
		t.merge(p, ci-1)
	} else {
		t.merge(p, ci)
	}
}

// merge combines children i and i+1 of p into children[i].
func (t *Tree[V]) merge(p *node[V], i int) {
	left, right := p.children[i], p.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
	} else {
		left.keys = append(left.keys, p.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = append(p.keys[:i], p.keys[i+1:]...)
	p.children = append(p.children[:i+1], p.children[i+2:]...)
}

// Ascend visits entries with lo <= key < hi in ascending order, stopping if
// fn returns false. An empty hi means "to the end".
func (t *Tree[V]) Ascend(lo, hi string, fn func(k string, v V) bool) {
	t.ascend(t.root, lo, hi, fn)
}

func (t *Tree[V]) ascend(n *node[V], lo, hi string, fn func(k string, v V) bool) bool {
	if n.leaf() {
		for i := n.search(lo); i < len(n.keys); i++ {
			if hi != "" && n.keys[i] >= hi {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	for ci := n.childIndex(lo); ci < len(n.children); ci++ {
		if ci > 0 && hi != "" && n.keys[ci-1] >= hi {
			return true
		}
		if !t.ascend(n.children[ci], lo, hi, fn) {
			return false
		}
	}
	return true
}

// Descend visits entries with lo <= key < hi in descending order, stopping if
// fn returns false. An empty hi means "from the end".
func (t *Tree[V]) Descend(lo, hi string, fn func(k string, v V) bool) {
	t.descend(t.root, lo, hi, fn)
}

func (t *Tree[V]) descend(n *node[V], lo, hi string, fn func(k string, v V) bool) bool {
	if n.leaf() {
		start := len(n.keys) - 1
		if hi != "" {
			start = n.search(hi) - 1
		}
		for i := start; i >= 0; i-- {
			if n.keys[i] < lo {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	start := len(n.children) - 1
	if hi != "" {
		start = n.childIndex(hi)
	}
	for ci := start; ci >= 0; ci-- {
		if !t.descend(n.children[ci], lo, hi, fn) {
			return false
		}
	}
	return true
}

// Min returns the smallest key and its value.
func (t *Tree[V]) Min() (string, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		var zero V
		return "", zero, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[V]) Max() (string, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		var zero V
		return "", zero, false
	}
	i := len(n.keys) - 1
	return n.keys[i], n.vals[i], true
}

// Height returns the number of levels in the tree (1 for a single leaf).
// Exposed for invariant tests.
func (t *Tree[V]) Height() int { return t.height }

// Check validates structural invariants, returning a description of the
// first violation or "" if the tree is well formed. Used by tests.
func (t *Tree[V]) Check() string {
	count, _, _, problem := t.check(t.root, 1, "", "")
	if problem != "" {
		return problem
	}
	if count != t.size {
		return "size mismatch"
	}
	return ""
}

func (t *Tree[V]) check(n *node[V], depth int, lo, hi string) (count int, minK, maxK, problem string) {
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return 0, "", "", "keys out of order"
		}
	}
	if n.leaf() {
		if depth != t.height {
			return 0, "", "", "leaf at wrong depth"
		}
		if len(n.keys) != len(n.vals) {
			return 0, "", "", "leaf keys/vals mismatch"
		}
		if n != t.root && len(n.keys) < minKeys {
			return 0, "", "", "leaf underfull"
		}
		for _, k := range n.keys {
			if k < lo || (hi != "" && k >= hi) {
				return 0, "", "", "leaf key outside separator bounds"
			}
		}
		if len(n.keys) == 0 {
			return 0, "", "", ""
		}
		return len(n.keys), n.keys[0], n.keys[len(n.keys)-1], ""
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, "", "", "internal child count mismatch"
	}
	if n != t.root && len(n.keys) < minKeys {
		return 0, "", "", "internal underfull"
	}
	total := 0
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		cnt, _, _, prob := t.check(c, depth+1, clo, chi)
		if prob != "" {
			return 0, "", "", prob
		}
		total += cnt
	}
	return total, lo, hi, ""
}
