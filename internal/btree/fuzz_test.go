package btree

import (
	"sort"
	"testing"
)

// FuzzBTree drives a Tree through a byte-coded op stream — Put, Delete,
// Ascend, Descend over a small key universe — against a map-plus-sort
// reference model, asserting the structural invariants (Check) after every
// mutation and exact agreement on every lookup and traversal. The small
// universe (64 keys) forces heavy node splitting/merging churn at degree 32:
// the same key is inserted and deleted many times, which is where rebalance
// bugs live.
func FuzzBTree(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xC3, 0x04, 0x45, 0x86, 0xC7})
	f.Add([]byte{0xFF, 0xFE, 0xFD, 0x00, 0x01, 0x02, 0x80, 0x81, 0x82})
	big := make([]byte, 512)
	for i := range big {
		big[i] = byte(i*7 + 3)
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New[int]()
		ref := make(map[string]int)

		// sortedRef returns the reference keys in [lo, hi) order.
		sortedRef := func(lo, hi string) []string {
			var ks []string
			for k := range ref {
				if k >= lo && (hi == "" || k < hi) {
					ks = append(ks, k)
				}
			}
			sort.Strings(ks)
			return ks
		}

		for i, op := range ops {
			k := key(int(op & 0x3F)) // 64-key universe
			switch op >> 6 {
			case 0: // Put
				created := tr.Put(k, i)
				if _, existed := ref[k]; created == existed {
					t.Fatalf("op %d: Put(%q) created=%v, ref existed=%v", i, k, created, existed)
				}
				ref[k] = i
			case 1: // Delete
				v, ok := tr.Delete(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("op %d: Delete(%q) = %d,%v, ref %d,%v", i, k, v, ok, rv, rok)
				}
				delete(ref, k)
			case 2: // Ascend over [k, k+16)
				hi := ""
				if b := int(op&0x3F) + 16; b < 64 {
					hi = key(b)
				}
				want := sortedRef(k, hi)
				j := 0
				tr.Ascend(k, hi, func(gk string, gv int) bool {
					if j >= len(want) || gk != want[j] || gv != ref[gk] {
						t.Fatalf("op %d: Ascend[%q,%q) position %d: got %q, want %v", i, k, hi, j, gk, want)
					}
					j++
					return true
				})
				if j != len(want) {
					t.Fatalf("op %d: Ascend[%q,%q) visited %d keys, want %d", i, k, hi, j, len(want))
				}
			default: // Descend over [k, k+16)
				hi := ""
				if b := int(op&0x3F) + 16; b < 64 {
					hi = key(b)
				}
				want := sortedRef(k, hi)
				j := len(want) - 1
				tr.Descend(k, hi, func(gk string, gv int) bool {
					if j < 0 || gk != want[j] || gv != ref[gk] {
						t.Fatalf("op %d: Descend[%q,%q) got %q at reverse position %d, want %v", i, k, hi, gk, j, want)
					}
					j--
					return true
				})
				if j != -1 {
					t.Fatalf("op %d: Descend[%q,%q) left %d keys unvisited", i, k, hi, j+1)
				}
			}
			if p := tr.Check(); p != "" {
				t.Fatalf("op %d (%#x): invariant violated: %s", i, op, p)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("op %d: Len = %d, ref %d", i, tr.Len(), len(ref))
			}
		}
		// Final full-traversal agreement.
		want := sortedRef("", "")
		var got []string
		tr.Ascend("", "", func(k string, _ int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			t.Fatalf("final Ascend: %d keys, ref %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("final Ascend position %d: %q, ref %q", i, got[i], want[i])
			}
		}
	})
}
