package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) string { return fmt.Sprintf("k%08d", i) }

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete("x"); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree returned ok")
	}
	if p := tr.Check(); p != "" {
		t.Fatalf("Check: %s", p)
	}
}

func TestPutGetSequential(t *testing.T) {
	tr := New[int]()
	const n = 2000
	for i := 0; i < n; i++ {
		if !tr.Put(key(i), i) {
			t.Fatalf("Put(%d) reported existing", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if p := tr.Check(); p != "" {
		t.Fatalf("Check: %s", p)
	}
	if tr.Height() < 2 {
		t.Fatalf("expected multi-level tree, height=%d", tr.Height())
	}
}

func TestPutReplace(t *testing.T) {
	tr := New[string]()
	tr.Put("a", "one")
	if tr.Put("a", "two") {
		t.Fatal("replacing Put reported created")
	}
	if v, _ := tr.Get("a"); v != "two" {
		t.Fatalf("Get = %q", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteEverythingRandomOrder(t *testing.T) {
	tr := New[int]()
	const n = 3000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for i := 0; i < n; i++ {
		tr.Put(key(i), i)
	}
	for _, i := range perm {
		v, ok := tr.Delete(key(i))
		if !ok || v != i {
			t.Fatalf("Delete(%d) = %d,%v", i, v, ok)
		}
		if tr.Len()%500 == 0 {
			if p := tr.Check(); p != "" {
				t.Fatalf("Check after deletes at len %d: %s", tr.Len(), p)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d after deleting all", tr.Height())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New[int]()
	tr.Put("b", 1)
	if _, ok := tr.Delete("a"); ok {
		t.Fatal("deleted missing key")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	var got []int
	tr.Ascend(key(10), key(20), func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("got %d entries: %v", len(got), got)
	}
	for i, v := range got {
		if v != 10+i {
			t.Fatalf("entry %d = %d", i, v)
		}
	}
}

func TestAscendUnbounded(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 50; i++ {
		tr.Put(key(i), i)
	}
	count := 0
	tr.Ascend("", "", func(k string, v int) bool {
		if v != count {
			t.Fatalf("out of order at %d: %d", count, v)
		}
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("visited %d", count)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	count := 0
	tr.Ascend("", "", func(k string, v int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("visited %d, want 7", count)
	}
}

func TestDescendRange(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	var got []int
	tr.Descend(key(10), key(20), func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("got %d entries: %v", len(got), got)
	}
	for i, v := range got {
		if v != 19-i {
			t.Fatalf("entry %d = %d", i, v)
		}
	}
}

func TestDescendUnbounded(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 75; i++ {
		tr.Put(key(i), i)
	}
	want := 74
	tr.Descend("", "", func(k string, v int) bool {
		if v != want {
			t.Fatalf("descend out of order: got %d want %d", v, want)
		}
		want--
		return true
	})
	if want != -1 {
		t.Fatalf("visited %d entries", 74-want)
	}
}

func TestDescendFirstN(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	var got []int
	tr.Descend("", "", func(k string, v int) bool {
		got = append(got, v)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 99 || got[2] != 97 {
		t.Fatalf("got %v", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int]()
	for i := 100; i < 200; i++ {
		tr.Put(key(i), i)
	}
	if k, v, _ := tr.Min(); k != key(100) || v != 100 {
		t.Fatalf("Min = %q,%d", k, v)
	}
	if k, v, _ := tr.Max(); k != key(199) || v != 199 {
		t.Fatalf("Max = %q,%d", k, v)
	}
}

// TestAgainstMapOracle performs a long random operation sequence and compares
// every result against a map + sorted-slice reference model.
func TestAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int]()
	oracle := map[string]int{}
	for step := 0; step < 20000; step++ {
		k := key(rng.Intn(500))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := rng.Int()
			created := tr.Put(k, v)
			_, existed := oracle[k]
			if created == existed {
				t.Fatalf("step %d: Put created=%v existed=%v", step, created, existed)
			}
			oracle[k] = v
		case 2: // get
			v, ok := tr.Get(k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Get(%q) = %d,%v want %d,%v", step, k, v, ok, ov, ook)
			}
		case 3: // delete
			v, ok := tr.Delete(k)
			ov, ook := oracle[k]
			if ok != ook || (ok && v != ov) {
				t.Fatalf("step %d: Delete(%q) = %d,%v want %d,%v", step, k, v, ok, ov, ook)
			}
			delete(oracle, k)
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("step %d: Len=%d oracle=%d", step, tr.Len(), len(oracle))
		}
		if step%2500 == 0 {
			if p := tr.Check(); p != "" {
				t.Fatalf("step %d: Check: %s", step, p)
			}
			assertSameContents(t, tr, oracle)
		}
	}
	if p := tr.Check(); p != "" {
		t.Fatalf("final Check: %s", p)
	}
	assertSameContents(t, tr, oracle)
}

func assertSameContents(t *testing.T, tr *Tree[int], oracle map[string]int) {
	t.Helper()
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.Ascend("", "", func(k string, v int) bool {
		if i >= len(keys) || k != keys[i] || v != oracle[k] {
			t.Fatalf("ascend mismatch at %d: %q", i, k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("ascend visited %d of %d", i, len(keys))
	}
}

// TestQuickInOrder property: for any key set, ascending traversal yields the
// sorted deduplicated keys, and structural invariants hold.
func TestQuickInOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := New[int]()
		set := map[string]bool{}
		for _, r := range raw {
			k := key(int(r))
			tr.Put(k, int(r))
			set[k] = true
		}
		if tr.Check() != "" || tr.Len() != len(set) {
			return false
		}
		var got []string
		tr.Ascend("", "", func(k string, v int) bool {
			got = append(got, k)
			return true
		})
		if !sort.StringsAreSorted(got) || len(got) != len(set) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteHalf property: deleting an arbitrary subset leaves exactly
// the complement, with invariants intact.
func TestQuickDeleteHalf(t *testing.T) {
	f := func(raw []uint16, delMask []bool) bool {
		tr := New[int]()
		set := map[string]bool{}
		for _, r := range raw {
			k := key(int(r))
			tr.Put(k, 1)
			set[k] = true
		}
		for i, r := range raw {
			if i < len(delMask) && delMask[i] {
				k := key(int(r))
				_, ok := tr.Delete(k)
				if ok != set[k] {
					return false
				}
				delete(set, k)
			}
		}
		if tr.Check() != "" || tr.Len() != len(set) {
			return false
		}
		for k := range set {
			if _, ok := tr.Get(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScanAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New[int]()
	live := map[int]bool{}
	for i := 0; i < 5000; i++ {
		n := rng.Intn(1000)
		if live[n] {
			tr.Delete(key(n))
			delete(live, n)
		} else {
			tr.Put(key(n), n)
			live[n] = true
		}
	}
	// Scan [250, 750) and verify against the model.
	var got []int
	tr.Ascend(key(250), key(750), func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	var want []int
	for n := 250; n < 750; n++ {
		if live[n] {
			want = append(want, n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
