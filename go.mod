module specdb

go 1.24
