package specdb

import (
	"testing"

	"specdb/internal/kvstore"
	"specdb/internal/msg"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

const (
	testClients = 8
	testKeys    = 12
)

// allSchemes is every concurrency control scheme the facade exposes.
var allSchemes = []Scheme{Blocking, Speculation, Locking, MVCC, OCC}

func kvRegistry() *Registry {
	reg := NewRegistry()
	reg.Register(kvstore.Proc{})
	return reg
}

func kvSetup(clients int) func(PartitionID, *Store) {
	return func(p PartitionID, s *Store) {
		kvstore.AddSchema(s)
		kvstore.Load(s, p, clients, testKeys)
	}
}

// kvOrderedSetup is kvSetup on the ordered (B-tree) kv layout, for
// scan-bearing workloads.
func kvOrderedSetup(clients int) func(PartitionID, *Store) {
	return func(p PartitionID, s *Store) {
		kvstore.AddOrderedSchema(s)
		kvstore.Load(s, p, clients, testKeys)
	}
}

// mustOpen fails the test on an invalid configuration.
func mustOpen(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := Open(opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// scriptOf builds n invocations alternating single- and multi-partition per
// the given fraction, using each client's private keys.
func scriptOf(n int, everyNthMP int) *workload.Script {
	var invs []*txn.Invocation
	for i := 0; i < n; i++ {
		ci := i % testClients
		args := &kvstore.Args{Keys: map[msg.PartitionID][]string{}}
		if everyNthMP > 0 && i%everyNthMP == 0 {
			for p := 0; p < 2; p++ {
				pid := msg.PartitionID(p)
				for k := 0; k < testKeys/2; k++ {
					args.Keys[pid] = append(args.Keys[pid], kvstore.ClientKey(ci, pid, k))
				}
			}
		} else {
			pid := msg.PartitionID(i % 2)
			for k := 0; k < testKeys; k++ {
				args.Keys[pid] = append(args.Keys[pid], kvstore.ClientKey(ci, pid, k))
			}
		}
		invs = append(invs, &txn.Invocation{Proc: kvstore.ProcName, Args: args, AbortAt: txn.NoAbort})
	}
	return &workload.Script{Invs: invs}
}

// drainOpts configures a finite run driven to quiescence.
func drainOpts(scheme Scheme, gen Generator) []Option {
	return []Option{
		WithPartitions(2),
		WithClients(testClients),
		WithScheme(scheme),
		WithSeed(1),
		WithRegistry(kvRegistry()),
		WithSetup(kvSetup(testClients)),
		WithWorkload(gen),
	}
}

func TestAllSchemesRunScriptToCompletion(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			const n = 120
			completions := 0
			opts := append(drainOpts(scheme, scriptOf(n, 3)),
				WithOnComplete(func(ci int, inv *Invocation, r *Reply) {
					if !r.Committed {
						t.Fatalf("transaction aborted: %+v", r)
					}
					completions++
				}))
			db := mustOpen(t, opts...)
			db.Run()
			if completions != n {
				t.Fatalf("completions = %d, want %d", completions, n)
			}
			// Every committed transaction increments exactly 12
			// counters.
			total := kvstore.Sum(db.PartitionStore(0)) + kvstore.Sum(db.PartitionStore(1))
			if total != int64(n*testKeys) {
				t.Fatalf("counter sum = %d, want %d", total, n*testKeys)
			}
		})
	}
}

func TestSchemesAgreeOnFinalState(t *testing.T) {
	var prints []uint64
	for _, scheme := range allSchemes {
		db := mustOpen(t, drainOpts(scheme, scriptOf(90, 4))...)
		db.Run()
		prints = append(prints, db.PartitionStore(0).Fingerprint()^db.PartitionStore(1).Fingerprint())
	}
	for i, p := range prints {
		if p != prints[0] {
			t.Fatalf("final state under %v diverges from %v: %v",
				allSchemes[i], allSchemes[0], prints)
		}
	}
}

func TestInjectedAbortsLeaveNoTrace(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			// Every third transaction aborts at one partition.
			script := scriptOf(90, 3)
			aborted := 0
			for i, inv := range script.Invs {
				if i%3 == 0 {
					a := inv.Args.(*kvstore.Args)
					for p := range a.Keys {
						inv.AbortAt = p
						break
					}
					aborted++
				}
			}
			committed, userAborted := 0, 0
			opts := append(drainOpts(scheme, script),
				WithOnComplete(func(ci int, inv *Invocation, r *Reply) {
					if r.Committed {
						committed++
					} else if r.UserAborted {
						userAborted++
					} else {
						t.Fatalf("unexpected reply %+v", r)
					}
				}))
			db := mustOpen(t, opts...)
			db.Run()
			if userAborted != aborted {
				t.Fatalf("userAborted = %d, want %d", userAborted, aborted)
			}
			total := kvstore.Sum(db.PartitionStore(0)) + kvstore.Sum(db.PartitionStore(1))
			if total != int64(committed*testKeys) {
				t.Fatalf("counter sum = %d, want %d (committed=%d)", total, committed*testKeys, committed)
			}
		})
	}
}

func TestReplicationBackupsConverge(t *testing.T) {
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		t.Run(scheme.String(), func(t *testing.T) {
			opts := append(drainOpts(scheme, scriptOf(60, 3)), WithReplicas(3))
			db := mustOpen(t, opts...)
			db.Run()
			for p := PartitionID(0); p < 2; p++ {
				want := db.PartitionStore(p).Fingerprint()
				for bi, bs := range db.BackupStores(p) {
					if got := bs.Fingerprint(); got != want {
						t.Fatalf("partition %d backup %d diverged: %d != %d", p, bi, got, want)
					}
				}
			}
		})
	}
}

// timedOpts configures a warm-up + measurement-window run of the §5.1
// microbenchmark.
func timedOpts(scheme Scheme, mpFrac float64) []Option {
	return []Option{
		WithPartitions(2),
		WithClients(40),
		WithScheme(scheme),
		WithSeed(7),
		WithWarmup(50 * Millisecond),
		WithMeasure(250 * Millisecond),
		WithRegistry(kvRegistry()),
		WithSetup(kvSetup(40)),
		WithWorkload(&workload.Micro{
			Partitions: 2,
			KeysPerTxn: testKeys,
			MPFraction: mpFrac,
		}),
	}
}

func TestDeterministicRuns(t *testing.T) {
	for _, scheme := range allSchemes {
		a := mustOpen(t, timedOpts(scheme, 0.2)...).Run()
		b := mustOpen(t, timedOpts(scheme, 0.2)...).Run()
		if a.Committed != b.Committed || a.Events != b.Events || a.P99 != b.P99 {
			t.Fatalf("%v: runs diverge: %+v vs %+v", scheme, a, b)
		}
	}
}

// TestThroughputShape checks the coarse shape of Figure 4 at three points:
// at 0%% multi-partition all schemes are close to 2/tsp; blocking degrades
// steeply with multi-partition transactions; speculation beats blocking.
func TestThroughputShape(t *testing.T) {
	tputs := map[Scheme]map[int]float64{}
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		tputs[scheme] = map[int]float64{}
		for _, pct := range []int{0, 20} {
			r := mustOpen(t, timedOpts(scheme, float64(pct)/100)...).Run()
			tputs[scheme][pct] = r.Throughput
		}
	}
	// 2 partitions / 64µs ≈ 31250 tps at f=0.
	for _, scheme := range []Scheme{Blocking, Speculation, Locking} {
		got := tputs[scheme][0]
		if got < 28000 || got > 33000 {
			t.Errorf("%v at 0%% MP: %.0f tps, want ≈31250", scheme, got)
		}
	}
	if !(tputs[Blocking][20] < 0.55*tputs[Blocking][0]) {
		t.Errorf("blocking should degrade steeply: %.0f → %.0f", tputs[Blocking][0], tputs[Blocking][20])
	}
	if !(tputs[Speculation][20] > 1.4*tputs[Blocking][20]) {
		t.Errorf("speculation (%.0f) should clearly beat blocking (%.0f) at 20%%",
			tputs[Speculation][20], tputs[Blocking][20])
	}
	if !(tputs[Locking][20] > tputs[Blocking][20]) {
		t.Errorf("locking (%.0f) should beat blocking (%.0f) at 20%%",
			tputs[Locking][20], tputs[Blocking][20])
	}
}

func TestConflictsDegradeLockingOnly(t *testing.T) {
	run := func(scheme Scheme, conflict float64) float64 {
		opts := append(timedOpts(scheme, 0.4),
			WithWorkload(&workload.Micro{
				Partitions:   2,
				KeysPerTxn:   testKeys,
				MPFraction:   0.4,
				ConflictProb: conflict,
				Pinned:       true,
			}))
		return mustOpen(t, opts...).Run().Throughput
	}
	lock0 := run(Locking, 0)
	lock100 := run(Locking, 1.0)
	if !(lock100 < 0.93*lock0) {
		t.Errorf("locking should degrade with conflicts: %.0f → %.0f", lock0, lock100)
	}
	spec0 := run(Speculation, 0)
	spec100 := run(Speculation, 1.0)
	if spec100 < 0.95*spec0 {
		t.Errorf("speculation should be conflict-insensitive: %.0f → %.0f", spec0, spec100)
	}
}
