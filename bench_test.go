// Benchmarks regenerating every table and figure of the paper (virtual-time
// experiments via the harness in internal/bench), plus real-CPU component
// benchmarks measuring what Table 2 measured on the authors' testbed —
// per-fragment execution cost, undo overhead and lock overhead — for this
// repository's actual Go engine.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFigure4
package specdb_test

import (
	"fmt"
	"math/rand"
	"testing"

	"specdb/internal/bench"
	"specdb/internal/btree"
	"specdb/internal/kvstore"
	"specdb/internal/locks"
	"specdb/internal/msg"
	"specdb/internal/sim"
	"specdb/internal/storage"
	"specdb/internal/tpcc"
	"specdb/internal/txn"
	"specdb/internal/undo"
)

// benchExperiment runs one paper experiment per iteration and reports the
// first series' peak throughput as a metric.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := bench.QuickOpts()
	var peak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := e.Run(o)
		peak = 0
		for _, s := range series {
			for _, p := range s.Points {
				if p.Y > peak {
					peak = p.Y
				}
			}
		}
	}
	b.ReportMetric(peak, "peak_tps")
}

func BenchmarkFigure4Microbenchmark(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFigure5Conflicts(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFigure6Aborts(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFigure7GeneralTxns(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFigure8TPCCWarehouses(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFigure9TPCCNewOrder(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFigure10Model(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkTable1SchemeSummary(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2ModelVariables(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkAblationAlwaysLock(b *testing.B)    { benchExperiment(b, "ablation-alwayslock") }
func BenchmarkAblationLocalSpec(b *testing.B)     { benchExperiment(b, "ablation-localspec") }
func BenchmarkAblationReplication(b *testing.B)   { benchExperiment(b, "ablation-replication") }
func BenchmarkRecoveryCheckpoint(b *testing.B)    { benchExperiment(b, "recovery-checkpoint") }
func BenchmarkDurableOverhead(b *testing.B)       { benchExperiment(b, "durable-overhead") }

// --- Real-CPU component benchmarks (this engine's Table 2 equivalents) ---

// BenchmarkRealTspKVFragment measures the actual Go cost of the paper's
// 12-key read/write fragment without undo: our real tsp.
func BenchmarkRealTspKVFragment(b *testing.B) {
	s := storage.NewStore()
	kvstore.AddSchema(s)
	kvstore.Load(s, 0, 4, 12)
	args := &kvstore.Args{Keys: map[msg.PartitionID][]string{0: nil}}
	for i := 0; i < 12; i++ {
		args.Keys[0] = append(args.Keys[0], kvstore.ClientKey(1, 0, i))
	}
	plan := kvstore.Proc{}.Plan(args, &txn.Catalog{NumPartitions: 1})
	work := plan.Work[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := storage.NewTxnView(s, nil, nil)
		if _, err := (kvstore.Proc{}).Run(view, work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealTspSKVFragmentUndo is the same fragment with undo recording
// and rollback: the tspS − tsp overhead plus abort cost.
func BenchmarkRealTspSKVFragmentUndo(b *testing.B) {
	s := storage.NewStore()
	kvstore.AddSchema(s)
	kvstore.Load(s, 0, 4, 12)
	args := &kvstore.Args{Keys: map[msg.PartitionID][]string{0: nil}}
	for i := 0; i < 12; i++ {
		args.Keys[0] = append(args.Keys[0], kvstore.ClientKey(1, 0, i))
	}
	plan := kvstore.Proc{}.Plan(args, &txn.Catalog{NumPartitions: 1})
	work := plan.Work[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := undo.New()
		view := storage.NewTxnView(s, buf, nil)
		if _, err := (kvstore.Proc{}).Run(view, work); err != nil {
			b.Fatal(err)
		}
		buf.Rollback()
	}
}

// BenchmarkRealTPCCNewOrder measures the real CPU of a NewOrder fragment
// (the paper's §3.3 figure for its C++ engine is ~26 µs per transaction).
func BenchmarkRealTPCCNewOrder(b *testing.B) {
	layout := tpcc.Layout{Warehouses: 1, Partitions: 1}
	scale := tpcc.Scale{Items: 1000, StockPerWarehouse: 1000, CustomersPerDist: 100, InitialOrders: 5}
	s := storage.NewStore()
	tpcc.Loader{Layout: layout, Scale: scale, Seed: 1}.Load(0, s)
	cat := &txn.Catalog{NumPartitions: 1, Meta: layout}
	rng := rand.New(rand.NewSource(2))
	mix := &tpcc.Mix{Layout: layout, Scale: scale}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv := mix.Next(0, rng)
		if inv.Proc != tpcc.ProcNewOrder {
			i--
			continue
		}
		plan := tpcc.NewOrderProc{}.Plan(inv.Args, cat)
		view := storage.NewTxnView(s, nil, nil)
		if _, err := (tpcc.NewOrderProc{}).Run(view, plan.Work[0]); err != nil && err != txn.ErrUserAbort {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealLockAcquireRelease measures the single-threaded lock manager:
// 24 acquires + release, the per-transaction locking overhead l.
func BenchmarkRealLockAcquireRelease(b *testing.B) {
	m := locks.NewManager()
	keys := make([]locks.Key, 12)
	for i := range keys {
		keys[i] = locks.Key{Table: "kv", Row: fmt.Sprintf("k%02d", i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := msg.TxnID(uint64(i + 1))
		for _, k := range keys {
			m.Acquire(id, k, locks.Exclusive)
			m.Acquire(id, k, locks.Exclusive) // reentrant second call
		}
		m.Release(id)
	}
}

// BenchmarkRealBTree measures ordered-table point operations.
func BenchmarkRealBTree(b *testing.B) {
	t := btree.New[int]()
	for i := 0; i < 100000; i++ {
		t.Put(fmt.Sprintf("key-%08d", i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("key-%08d", i%100000)
		t.Put(k, i)
		if _, ok := t.Get(k); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkRealBTreeScan measures a 100-row range scan.
func BenchmarkRealBTreeScan(b *testing.B) {
	t := btree.New[int]()
	for i := 0; i < 100000; i++ {
		t.Put(fmt.Sprintf("key-%08d", i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		lo := fmt.Sprintf("key-%08d", (i*97)%99000)
		t.Ascend(lo, "", func(k string, v int) bool {
			n++
			return n < 100
		})
	}
}

// BenchmarkRealSimulator measures discrete-event kernel throughput
// (events/second of virtual message passing).
func BenchmarkRealSimulator(b *testing.B) {
	s := sim.New()
	type ping struct{ hops int }
	var a1, a2 sim.ActorID
	h := func(next *sim.ActorID) sim.Handler {
		return handlerFunc(func(ctx *sim.Context, m sim.Message) {
			p := m.(*ping)
			if p.hops <= 0 {
				return
			}
			p.hops--
			ctx.Spend(sim.Microsecond)
			ctx.Send(*next, p, 20*sim.Microsecond)
		})
	}
	a1 = s.Register("a1", h(&a2))
	a2 = s.Register("a2", h(&a1))
	b.ResetTimer()
	s.SendAt(0, a1, &ping{hops: b.N})
	s.Drain()
	if s.Delivered < uint64(b.N) {
		b.Fatalf("delivered %d of %d", s.Delivered, b.N)
	}
}

type handlerFunc func(*sim.Context, sim.Message)

func (f handlerFunc) Receive(ctx *sim.Context, m sim.Message) { f(ctx, m) }
