// Package specdb is a partitioned, main-memory, H-Store-style transaction
// processing library reproducing "Low Overhead Concurrency Control for
// Partitioned Main Memory Databases" (Jones, Abadi, Madden — SIGMOD 2010).
//
// Open assembles single-threaded partition engines, optional backup
// replicas, a central coordinator, and closed-loop clients on a
// deterministic discrete-event simulation of the paper's testbed. Five
// concurrency control schemes decide what a partition does during the
// network stalls of multi-partition transactions: blocking, speculative
// execution, single-threaded two-phase locking, multiversion timestamp
// ordering (MVCC — declared read-only transactions run from snapshots and
// never block or abort), and optimistic concurrency control (OCC —
// transactions run immediately and validate their read sets at commit).
//
// Quick start:
//
//	reg := specdb.NewRegistry()
//	reg.Register(kvstore.Proc{})
//	db, err := specdb.Open(
//	    specdb.WithPartitions(2),
//	    specdb.WithScheme(specdb.Speculation),
//	    specdb.WithRegistry(reg),
//	    specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) { ... }),
//	    specdb.WithWorkload(&workload.Micro{...}),
//	    specdb.WithWarmup(100*specdb.Millisecond),
//	    specdb.WithMeasure(400*specdb.Millisecond),
//	)
//	if err != nil {
//	    log.Fatal(err)
//	}
//	res := db.Run()
//	fmt.Println(res.Throughput)
//
// Beyond one-shot runs, a DB is driven interactively: RunFor and Step advance
// virtual time in increments, RunUntil runs to a predicate, Snapshot observes
// live counters (with interval rates between snapshots), and SetWorkload
// swaps the request generator between phases. The Sweep type runs grids of
// option sets — scheme × workload × repeats — which is how the paper's
// figures are regenerated (internal/bench, cmd/ccbench).
//
// Because no single scheme wins everywhere (§5.7, Figure 10), the scheme is
// not fixed at Open: SetScheme drains a live cluster to a quiescent point
// and swaps every partition's engine mid-run, and WithAdvisor automates the
// choice by feeding measured interval statistics through the §6 analytical
// model with hysteresis. See ExampleDB_SetScheme and examples/advisor.
package specdb

import (
	"fmt"
	"sort"
	"sync"

	"specdb/internal/advisor"
	"specdb/internal/client"
	"specdb/internal/coordinator"
	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/durable"
	"specdb/internal/elastic"
	"specdb/internal/fault"
	"specdb/internal/locks"
	"specdb/internal/metrics"
	"specdb/internal/model"
	"specdb/internal/msg"
	"specdb/internal/mvcc"
	"specdb/internal/occ"
	"specdb/internal/oracle"
	"specdb/internal/partition"
	"specdb/internal/replication"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// Re-exported names so callers assemble clusters from this package alone.
type (
	// Scheme selects a concurrency control scheme.
	Scheme = core.Scheme
	// PartitionID numbers data partitions from 0.
	PartitionID = msg.PartitionID
	// Store is a partition's table collection.
	Store = storage.Store
	// Registry holds stored procedures.
	Registry = txn.Registry
	// Catalog describes data distribution.
	Catalog = txn.Catalog
	// Invocation is one transaction request.
	Invocation = txn.Invocation
	// Reply is a completed transaction's outcome.
	Reply = msg.ClientReply
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// CostModel prices CPU and network.
	CostModel = costs.Model
	// LockConfig tunes the locking engine.
	LockConfig = core.LockConfig
	// SpecConfig tunes the speculative engine.
	SpecConfig = core.SpecConfig
	// Procedure is a stored procedure implementation.
	Procedure = txn.Procedure
	// Plan is a procedure's fragment layout.
	Plan = txn.Plan
	// TxnView is the data-access handle passed to fragment bodies.
	TxnView = storage.TxnView
	// FragmentResult is a fragment's output, seen by continuations.
	FragmentResult = msg.FragmentResult
	// Generator produces client requests (see internal/workload for the
	// microbenchmark family; any implementation works).
	Generator = workload.Generator
	// AdvisorConfig tunes the online scheme advisor (see WithAdvisor).
	AdvisorConfig = advisor.Config
	// ModelParams are the §6 analytical model's measured variables
	// (AdvisorConfig.Params); the zero value selects PaperModelParams.
	ModelParams = model.Params
	// ModelObserved are measured workload statistics accepted by the §6
	// model's Predict/Recommend entry points.
	ModelObserved = model.Observed
)

// PaperModelParams returns the Table 2 model variables measured on the
// authors' testbed, which the default cost model is calibrated to.
func PaperModelParams() ModelParams { return model.PaperParams() }

// ErrUserAbort aborts the invoking transaction when returned from a
// fragment body.
var ErrUserAbort = txn.ErrUserAbort

// NoAbort disables abort injection on an Invocation.
const NoAbort = txn.NoAbort

// Scheme values.
const (
	Blocking    = core.SchemeBlocking
	Speculation = core.SchemeSpeculative
	Locking     = core.SchemeLocking
	MVCC        = core.SchemeMVCC
	OCC         = core.SchemeOCC
)

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewRegistry returns an empty procedure registry.
func NewRegistry() *Registry { return txn.NewRegistry() }

// DefaultCosts returns the Table 2 cost calibration.
func DefaultCosts() CostModel { return costs.Default() }

// DB is an assembled cluster: a handle that can be run to completion, driven
// in increments, observed mid-run, and inspected afterwards. A DB is not
// safe for concurrent use; the drive calls are issued from one goroutine
// even when WithParallelism fans the event loop out over shards.
type DB struct {
	cfg       settings
	costModel CostModel
	sch       sim.Runtime
	// shsch is the sharded runtime when WithParallelism is configured (the
	// same object sch points at); nil on the single-threaded path.
	shsch     *sim.ShardedScheduler
	net       *simnet.Net
	parts     []*partition.Partition
	partIDs   []sim.ActorID
	backups   [][]*replication.Backup
	backupIDs [][]sim.ActorID
	coord     *coordinator.Coordinator
	coordID   sim.ActorID
	clients   []*client.Client
	clientIDs []sim.ActorID
	collector *metrics.Collector
	// loggers holds each partition's command log (nil entries — and a nil
	// slice — when durability is off). restarters holds the crash-restart
	// actors, indexed by partition; entries exist only for partitions with a
	// scheduled CrashRestart fault.
	loggers      []*durable.Logger
	restarters   []*replication.Restarter
	restarterIDs []sim.ActorID
	// faultCtlID is the fault-injection controller actor (0 when the run
	// has no fault schedule).
	faultCtlID sim.ActorID
	// histories holds each partition's serializability-oracle trace when
	// the test-only withHistory option is set (nil otherwise).
	histories []*oracle.PartitionHistory

	started bool
	// cursor is the virtual time the simulation has been driven to (the
	// time horizon passed to the scheduler, not merely the last event).
	cursor Time
	// Snapshot interval baseline (counters and latency histograms).
	snapAt     Time
	snapCounts metrics.Counts
	snapLat    metrics.LatencySet

	// Adaptive concurrency control (WithAdvisor).
	adv       *advisor.Advisor
	advNextAt Time               // next evaluation boundary
	advBase   metrics.Counts     // advisor's own interval baseline
	advLat    metrics.LatencySet // advisor's latency baseline
	history   []SchemeChange

	// Elastic repartitioning (WithElasticity). router is the live routing
	// table shared with the workload generator; etrig is nil in Manual
	// mode (migrations only through Migrate).
	router   *elastic.Router
	elCfg    ElasticityConfig
	etrig    *advisor.Elastic
	elNextAt Time   // next saturation evaluation boundary
	elAt     Time   // time baseline of the current evaluation interval
	elBusy   []Time // per-partition busy-time baselines
}

// SchemeChange records one concurrency control switch on a live DB.
type SchemeChange struct {
	// At is the virtual time of the switch — after the drain to a
	// quiescent point completed.
	At Time
	// From and To are the schemes before and after the switch.
	From, To Scheme
	// Auto marks switches decided by the advisor; manual SetScheme calls
	// leave it false.
	Auto bool
}

// engineFactory returns the constructor for the validated scheme.
func (db *DB) engineFactory(scheme Scheme) func(env core.Env) core.Engine {
	switch scheme {
	case Blocking:
		return func(env core.Env) core.Engine { return core.NewBlocking(env) }
	case Speculation:
		specCfg := db.cfg.specCfg
		return func(env core.Env) core.Engine { return core.NewSpeculativeWith(env, specCfg) }
	case Locking:
		lockCfg := db.cfg.lockCfg
		return func(env core.Env) core.Engine { return core.NewLocking(env, lockCfg) }
	case MVCC:
		return func(env core.Env) core.Engine { return mvcc.New(env) }
	case OCC:
		occCfg := occ.Config{DisableValidation: db.cfg.brokenOCC}
		return func(env core.Env) core.Engine { return occ.New(env, occCfg) }
	}
	return nil // unreachable: Open validated the scheme
}

// Open assembles a cluster from the given options and returns a handle to
// drive it. It validates the whole configuration up front — an unknown
// scheme, a missing registry or workload, or non-positive counts are
// reported here as errors rather than surfacing later inside the engine.
func Open(opts ...Option) (*DB, error) {
	cfg := defaultSettings()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cat := cfg.catalogOrDefault()

	db := &DB{cfg: cfg, costModel: cfg.costs}
	if cfg.parallel != nil {
		hz := cfg.parallel.Horizon
		if hz == 0 {
			hz = cfg.costs.OneWayLatency
		}
		db.shsch = sim.NewSharded(cfg.parallel.Shards, hz)
		db.sch = db.shsch
	} else {
		db.sch = sim.New()
	}
	db.net = simnet.New(db.costModel.OneWayLatency)

	end := cfg.warmup + cfg.measure
	if cfg.measure == 0 {
		end = Time(1<<62 - 1)
	}
	db.collector = metrics.NewCollector(cfg.warmup, end)

	det := cfg.detect.WithDefaults()

	var durCfg durable.Config
	if cfg.durable != nil {
		d := cfg.durable.withDefaults()
		durCfg = durable.Config{
			GroupCommitBytes: d.GroupCommit.MaxBytes,
			GroupCommitDelay: d.GroupCommit.MaxDelay,
			CheckpointEvery:  d.CheckpointInterval,
			DiskLatency:      d.DiskLatency,
			DiskBandwidth:    d.DiskBandwidth,
		}
		db.loggers = make([]*durable.Logger, cfg.partitions)
	}

	// Partitions (primaries), each with its own log disk when durable.
	for p := 0; p < cfg.partitions; p++ {
		store := storage.NewStore()
		if cfg.setup != nil {
			cfg.setup(PartitionID(p), store)
		}
		var lg *durable.Logger
		if cfg.durable != nil {
			diskID := db.sch.Register(fmt.Sprintf("disk-%d", p),
				&durable.Disk{Latency: durCfg.DiskLatency, Bandwidth: durCfg.DiskBandwidth})
			db.assign(diskID, db.groupShard(p))
			lg = durable.NewLogger(durCfg, diskID)
			db.loggers[p] = lg
		}
		var hist *oracle.PartitionHistory
		if cfg.history {
			hist = oracle.NewPartitionHistory()
			db.histories = append(db.histories, hist)
		}
		part := partition.New(partition.Config{
			ID:            PartitionID(p),
			Store:         store,
			Registry:      cfg.registry,
			Costs:         &db.costModel,
			Net:           db.net,
			Logger:        lg,
			Heartbeat:     det.Heartbeat,
			DetectTimeout: det.Timeout,
			Rec:           db.collector,
			History:       hist,
		})
		id := db.sch.Register(fmt.Sprintf("partition-%d", p), part)
		db.assign(id, db.groupShard(p))
		if lg != nil {
			lg.Bind(id)
			lg.InstallInitial(store)
		}
		db.parts = append(db.parts, part)
		db.partIDs = append(db.partIDs, id)
	}
	// Backups.
	db.backups = make([][]*replication.Backup, cfg.partitions)
	db.backupIDs = make([][]sim.ActorID, cfg.partitions)
	for p := 0; p < cfg.partitions; p++ {
		var ids []sim.ActorID
		for r := 1; r < cfg.replicas; r++ {
			store := storage.NewStore()
			if cfg.setup != nil {
				cfg.setup(PartitionID(p), store)
			}
			b := replication.New(store, cfg.registry, &db.costModel, db.net)
			b.Primary = db.partIDs[p]
			b.Partition = PartitionID(p)
			b.Replica = r
			b.Heartbeat = det.Heartbeat
			b.Timeout = det.Timeout
			b.Rec = db.collector
			id := db.sch.Register(fmt.Sprintf("backup-%d-%d", p, r), b)
			db.assign(id, db.groupShard(p))
			b.Bind(id)
			ids = append(ids, id)
			db.backups[p] = append(db.backups[p], b)
		}
		db.backupIDs[p] = ids
		db.parts[p].SetBackups(ids)
		// Each backup's peers are the partition's other backups.
		for r, b := range db.backups[p] {
			var peers []sim.ActorID
			for q, id := range ids {
				if q != r {
					peers = append(peers, id)
				}
			}
			b.Peers = peers
		}
	}
	// Central coordinator (blocking and speculation schemes). It owns its
	// partition table: failovers re-target entries independently of the
	// clients' copies.
	db.coord = coordinator.New(cfg.registry, cat, &db.costModel, db.net,
		append([]sim.ActorID(nil), db.partIDs...))
	db.coord.Rec = db.collector
	db.coordID = db.sch.Register("coordinator", db.coord)
	db.assign(db.coordID, 0)
	db.coord.Bind(db.coordID)
	for p := range db.backups {
		for _, b := range db.backups[p] {
			b.Coordinator = db.coordID
		}
	}
	// Restarters, for partitions with a scheduled crash-restart fault.
	db.restarters = make([]*replication.Restarter, cfg.partitions)
	db.restarterIDs = make([]sim.ActorID, cfg.partitions)
	for _, ev := range cfg.faults {
		if ev.Kind != fault.KindCrashRestart {
			continue
		}
		p := int(ev.Partition)
		r := replication.NewRestarter(db.loggers[p], cfg.registry, &db.costModel, db.net)
		r.Partition = ev.Partition
		r.Coordinator = db.coordID
		r.Rec = db.collector
		id := db.sch.Register(fmt.Sprintf("restarter-%d", p), r)
		db.assign(id, db.groupShard(p))
		r.Bind(id)
		db.restarters[p] = r
		db.restarterIDs[p] = id
	}

	// Bind partition engines.
	factory := db.engineFactory(cfg.scheme)
	for p := 0; p < cfg.partitions; p++ {
		db.parts[p].Bind(db.partIDs[p], factory)
		for _, b := range db.backups[p] {
			b.EngineFactory = factory
		}
		if r := db.restarters[p]; r != nil {
			r.EngineFactory = factory
		}
	}
	db.shapeWorkload(cfg.workload)
	if cfg.parallel != nil && cfg.onComplete != nil {
		// Clients on different shards complete transactions concurrently
		// inside a time window; serialize the user's callback. Cross-shard
		// invocation order is unspecified (see WithParallelism).
		var mu sync.Mutex
		inner := cfg.onComplete
		cfg.onComplete = func(clientIdx int, inv *Invocation, reply *Reply) {
			mu.Lock()
			defer mu.Unlock()
			inner(clientIdx, inv, reply)
		}
	}
	// Clients.
	for i := 0; i < cfg.clients; i++ {
		cl := &client.Client{
			Registry:    cfg.registry,
			Catalog:     cat,
			Costs:       &db.costModel,
			Net:         db.net,
			Metrics:     db.collector,
			Scheme:      cfg.scheme,
			Coordinator: db.coordID,
			Parts:       append([]sim.ActorID(nil), db.partIDs...),
			Gen:         cfg.workload,
			Index:       i,
			Arrival:     cfg.arrivalFor(i),
		}
		if cfg.onComplete != nil {
			idx := i
			cl.OnComplete = func(inv *Invocation, reply *Reply) {
				cfg.onComplete(idx, inv, reply)
			}
		}
		id := db.sch.Register(fmt.Sprintf("client-%d", i), cl)
		db.assign(id, db.clientShard(i))
		cl.Bind(id, cfg.seed*1_000_003+int64(i)*7919+1)
		db.clients = append(db.clients, cl)
		db.clientIDs = append(db.clientIDs, id)
	}
	db.coord.Clients = append([]sim.ActorID(nil), db.clientIDs...)
	if len(cfg.faults) > 0 {
		ctl := &fault.Controller{
			Rec:          db.collector,
			Primaries:    db.partIDs,
			Backups:      db.backupIDs,
			Restarters:   db.restarterIDs,
			RestartDelay: det.Timeout,
			// On the sharded runtime crashes are pre-registered as KillAt
			// markers in the victim's shard (see ensureStarted); the
			// controller only records metrics and drives restarts.
			SkipKill: db.shsch != nil,
		}
		db.faultCtlID = db.sch.Register("fault-controller", ctl)
		db.assign(db.faultCtlID, 0)
	}
	if cfg.advisor != nil {
		db.adv = advisor.New(*cfg.advisor)
		db.advNextAt = db.adv.Interval()
	}
	if cfg.elastic != nil {
		db.elCfg = cfg.elastic.withDefaults()
		db.router = elastic.New()
		// validate() proved the generator RouterAware; its own modes may
		// still refuse (range scans cannot follow migrated rows).
		if err := cfg.workload.(workload.RouterAware).SetRouter(db.router); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadElasticity, err)
		}
		if !db.elCfg.Manual {
			db.etrig = advisor.NewElastic(advisor.ElasticConfig{
				Interval:           db.elCfg.Interval,
				SaturationFraction: db.elCfg.SaturationFraction,
				SaturationRatio:    db.elCfg.SaturationRatio,
				Holdoff:            db.elCfg.Holdoff,
			})
			db.elNextAt = db.etrig.Interval()
			db.elBusy = make([]Time, cfg.partitions)
		}
	}
	return db, nil
}

// assign places an actor on a shard of the parallel runtime; it is a no-op
// on the single-threaded path. Placement happens immediately after
// registration, before any event is scheduled.
func (db *DB) assign(id sim.ActorID, shard int) {
	if db.shsch != nil {
		db.shsch.Assign(id, shard)
	}
}

// groupShard maps partition p's whole process group — primary, backups, log
// disk, restarter — onto one shard, striping the groups evenly. Co-locating
// the group keeps its zero-latency edges (partition↔disk) and sub-horizon
// timers intra-shard; only network traffic (one-way latency ≥ Horizon)
// crosses shards.
func (db *DB) groupShard(p int) int {
	if db.shsch == nil {
		return 0
	}
	return p * db.shsch.NumShards() / db.cfg.partitions
}

// clientShard stripes clients over shards. Clients talk to partitions and
// the coordinator exclusively through the network, so any placement is
// deterministic; striping balances their virtual CPU.
func (db *DB) clientShard(i int) int {
	if db.shsch == nil {
		return 0
	}
	return i * db.shsch.NumShards() / db.cfg.clients
}

// shapeWorkload tells a shape-aware generator what it is feeding: client
// count for shared keyspaces, window and replication for the buffer-reuse
// contract (see workload.ShapeAware). Open applies it to the configured
// generator and SetWorkload to every replacement — a swapped-in generator
// must not default to closed-loop buffer reuse on an open-loop cluster.
func (db *DB) shapeWorkload(gen Generator) {
	window := 1
	if db.cfg.openLoop != nil {
		window = db.cfg.openLoop.withDefaults().Window
	}
	if sa, ok := gen.(workload.ShapeAware); ok {
		sa.SetShape(workload.Shape{
			Clients:     db.cfg.clients,
			Partitions:  db.cfg.partitions,
			Replicas:    db.cfg.replicas,
			MaxInFlight: window,
		})
	}
}

// ensureStarted schedules every client's first request at t=0. It runs once,
// lazily, so a DB can be reconfigured (SetWorkload) between Open and the
// first drive call.
func (db *DB) ensureStarted() {
	if db.started {
		return
	}
	db.started = true
	for _, id := range db.clientIDs {
		db.sch.SendAt(0, id, client.Start{})
	}
	if db.faultCtlID == 0 {
		return
	}
	// Schedule the crash faults, and arm heartbeats and failure detectors
	// exactly where the schedule needs them (a CrashPrimary partition's
	// primary pulses its monitoring backups; a CrashBackup partition's
	// backups pulse their monitoring primary). Partitions outside the
	// schedule run with zero failover overhead, and every armed loop has a
	// deterministic stop condition, so the event queue still drains.
	for _, ev := range db.cfg.faults {
		db.sch.SendAt(ev.At, db.faultCtlID, ev)
		if db.shsch != nil {
			// Sharded runtime: the kill must land in the victim's own shard
			// (a cross-shard Kill inside a window would race). The schedule
			// is static, so pre-register a kill marker at the fault time; the
			// controller records metrics and drives restarts but skips the
			// kill itself (fault.Controller.SkipKill).
			var victim sim.ActorID
			switch ev.Kind {
			case fault.KindCrashBackup:
				victim = db.backupIDs[ev.Partition][ev.Replica-1]
			default:
				victim = db.partIDs[ev.Partition]
			}
			db.shsch.KillAt(ev.At, victim)
		}
		switch ev.Kind {
		case fault.KindCrashPrimary:
			db.sch.SendAt(0, db.partIDs[ev.Partition], msg.StartPulse{})
			for _, bid := range db.backupIDs[ev.Partition] {
				db.sch.SendAt(0, bid, msg.StartMonitor{})
			}
		case fault.KindCrashBackup:
			db.sch.SendAt(0, db.partIDs[ev.Partition], msg.StartMonitor{})
			for _, bid := range db.backupIDs[ev.Partition] {
				db.sch.SendAt(0, bid, msg.StartPulse{})
			}
		case fault.KindCrashRestart:
			// No heartbeats: there is no replica to detect the crash. The
			// controller tells the restarter directly, one restart delay
			// (the detection timeout) after the kill.
		}
	}
}

// livePrimary returns the partition process currently serving p: the
// original primary, or — after a failover or crash-restart — the promoted
// backup's or restarted process's inner partition.
func (db *DB) livePrimary(p int) *partition.Partition {
	for _, b := range db.backups[p] {
		if inner := b.Promoted(); inner != nil {
			return inner
		}
	}
	if r := db.restarters[p]; r != nil {
		if inner := r.Promoted(); inner != nil {
			return inner
		}
	}
	return db.parts[p]
}

// livePrimaryID returns the actor currently serving partition p — the
// original primary's actor, or the promoted backup's / restarter's (their
// Receive delegates normal partition traffic to the inner process).
func (db *DB) livePrimaryID(p int) sim.ActorID {
	for i, b := range db.backups[p] {
		if b.Promoted() != nil {
			return db.backupIDs[p][i]
		}
	}
	if r := db.restarters[p]; r != nil && r.Promoted() != nil {
		return db.restarterIDs[p]
	}
	return db.partIDs[p]
}

// partBusy returns partition p's cumulative virtual CPU time, folding a
// promoted backup's or restarted process's actor on top of the dead
// primary's (the same fold Result's utilization uses).
func (db *DB) partBusy(p int) Time {
	busy := db.sch.BusyTime(db.partIDs[p])
	if db.livePrimary(p) != db.parts[p] {
		for i, b := range db.backups[p] {
			if b.Promoted() != nil {
				busy += db.sch.BusyTime(db.backupIDs[p][i])
			}
		}
		if r := db.restarters[p]; r != nil && r.Promoted() != nil {
			busy += db.sch.BusyTime(db.restarterIDs[p])
		}
	}
	return busy
}

// syncCursor advances the drive cursor to the scheduler clock after stepping
// primitives that do not run toward an explicit horizon.
func (db *DB) syncCursor() {
	if now := db.sch.Now(); now > db.cursor {
		db.cursor = now
	}
}

// Now returns the virtual time the simulation has been driven to.
func (db *DB) Now() Time { return db.cursor }

// Stop halts the drive call in progress (Run, RunFor, RunUntil) after the
// current event completes. It is intended for callbacks running inside a
// drive call — e.g. a WithOnComplete observer stopping the run once a
// scripted condition is met. The stop is sticky: every drive call returns
// immediately (reporting the state so far) until Resume clears it, after
// which driving continues from exactly where it stopped.
func (db *DB) Stop() { db.sch.Stop() }

// Resume clears a Stop, so subsequent drive calls process events again.
func (db *DB) Resume() { db.sch.Resume() }

// Stopped reports whether the DB is stopped (see Stop).
func (db *DB) Stopped() bool { return db.sch.Stopped() }

// Run drives the cluster to the configured horizon (Warmup+Measure), or to
// quiescence when Measure is zero, and returns the collected Result. It
// composes with the incremental drivers: events already processed by RunFor,
// RunUntil or Step are not reprocessed, so Run completes whatever remains.
func (db *DB) Run() Result {
	db.ensureStarted()
	if db.cfg.measure == 0 {
		db.runToQuiescence()
	} else {
		db.advanceTo(db.cfg.warmup + db.cfg.measure)
	}
	return db.Result()
}

// RunFor advances the simulation by d of virtual time from the current
// cursor, returning the number of events processed. Repeated calls produce
// precise phase boundaries: two RunFor(10ms) calls cover exactly [0,10ms)
// and [10ms,20ms). An adaptive scheme switch during the slice may drain past
// the boundary, in which case the slice ends at the drain point instead.
func (db *DB) RunFor(d Time) int {
	if d <= 0 {
		return 0
	}
	db.ensureStarted()
	return db.advanceTo(db.cursor + d)
}

// nextTick returns the earliest pending evaluation boundary — advisor or
// elastic trigger — and whether one exists.
func (db *DB) nextTick() (Time, bool) {
	var at Time
	ok := false
	if db.adv != nil {
		at, ok = db.advNextAt, true
	}
	if db.etrig != nil && (!ok || db.elNextAt < at) {
		at, ok = db.elNextAt, true
	}
	return at, ok
}

// handleTicks evaluates every boundary at or before the cursor, advisor
// before elastic trigger when they coincide (a fixed order keeps coincident
// boundaries deterministic). Either evaluation may drain the cluster and
// advance the cursor past the other's boundary; the trailing one then
// evaluates at the drain point, exactly as a lone advisor does.
func (db *DB) handleTicks() {
	if db.adv != nil && db.advNextAt <= db.cursor {
		db.advisorTick()
		db.advNextAt = db.cursor + db.adv.Interval()
	}
	if db.etrig != nil && db.elNextAt <= db.cursor {
		db.elasticTick()
		db.elNextAt = db.cursor + db.etrig.Interval()
	}
}

// advanceTo drives the scheduler to horizon, pausing at advisor and elastic
// evaluation boundaries when adaptive concurrency control or elastic
// repartitioning is enabled, and leaves the cursor at horizon (or beyond it,
// when a switch or migration drained past it). It returns the number of
// events processed.
func (db *DB) advanceTo(horizon Time) int {
	n := 0
	for {
		tick, ok := db.nextTick()
		if !ok || tick > horizon {
			break
		}
		if tick > db.cursor {
			n += db.sch.Run(tick)
			if db.sch.Stopped() {
				// Stopped mid-slice: leave the cursor at the last event
				// so a Resume continues from the true stop point.
				db.syncCursor()
				return n
			}
			db.cursor = tick
		}
		before := db.sch.DeliveredCount()
		db.handleTicks()
		n += int(db.sch.DeliveredCount() - before) // events stepped by a drain
	}
	if horizon > db.cursor {
		n += db.sch.Run(horizon)
		if db.sch.Stopped() {
			db.syncCursor()
			return n
		}
		db.cursor = horizon
	}
	return n
}

// runToQuiescence drains the simulation (open-ended runs), evaluating the
// advisor and the elastic trigger at their interval boundaries along the
// way. Like Drain, it leaves the cursor at the last event's time — never
// inflated to an evaluation boundary — so open-ended throughput is computed
// over real elapsed time.
func (db *DB) runToQuiescence() {
	if db.adv == nil && db.etrig == nil {
		db.sch.Drain()
		db.syncCursor()
		return
	}
	for {
		tick, _ := db.nextTick()
		db.sch.Run(tick)
		if db.sch.Empty() || db.sch.Stopped() {
			db.syncCursor()
			return
		}
		db.cursor = tick
		db.handleTicks()
	}
}

// RunUntil processes events one at a time until pred is satisfied, checking
// it before each delivery. It returns true when pred held, or false when the
// simulation went quiescent (or was stopped via Stop) first — which makes it
// double as a quiescence detector:
// RunUntil(func(Metrics) bool { return false }) drains the run.
// The Metrics passed to pred are a read-only peek; they do not consume the
// Snapshot interval.
func (db *DB) RunUntil(pred func(m Metrics) bool) bool {
	db.ensureStarted()
	for {
		if pred(db.snapshot(false)) {
			return true
		}
		if !db.sch.Step() {
			return false
		}
		db.syncCursor()
	}
}

// Step delivers exactly one simulation event. It returns false when the
// simulation is quiescent: nothing further will happen without new input.
func (db *DB) Step() bool {
	db.ensureStarted()
	ok := db.sch.Step()
	db.syncCursor()
	return ok
}

// SetWorkload swaps the request generator for every client, taking effect at
// each client's next issue. Clients that had already gone idle (a previous
// finite generator was exhausted) are restarted. Use between RunFor phases
// to script workload changes over a live cluster.
func (db *DB) SetWorkload(gen Generator) error {
	if gen == nil {
		return ErrNoWorkload
	}
	if db.router != nil {
		// Elastic runs route through a live table; a replacement generator
		// that cannot follow it would issue to pre-migration homes.
		ra, ok := gen.(workload.RouterAware)
		if !ok {
			return fmt.Errorf("%w (workload %T cannot re-target keys after a migration)", ErrBadElasticity, gen)
		}
		if err := ra.SetRouter(db.router); err != nil {
			return fmt.Errorf("%w: %v", ErrBadElasticity, err)
		}
	}
	db.shapeWorkload(gen)
	db.cfg.workload = gen
	for i, cl := range db.clients {
		cl.SetGenerator(gen)
		// Restart at the driven-to cursor, not the last event time: a
		// generator that drained mid-slice must begin the new phase at the
		// phase boundary, keeping Snapshot intervals honest. Open-loop
		// clients are re-kicked even when not idle — a window>1 client
		// whose generator exhausted mid-flight has a dead arrival timer
		// but a non-empty in-flight set, and Start (idempotent in both
		// loop styles) is what re-arms it.
		if db.started && (cl.Idle() || cl.Arrival != nil) {
			db.sch.SendAt(db.cursor, db.clientIDs[i], client.Start{})
		}
	}
	return nil
}

// Scheme returns the concurrency control scheme the cluster is currently
// running. It starts as the WithScheme option and changes with SetScheme and
// advisor-driven switches.
func (db *DB) Scheme() Scheme { return db.cfg.scheme }

// SchemeHistory returns every scheme switch performed on this DB, manual and
// advisor-driven, in order.
func (db *DB) SchemeHistory() []SchemeChange {
	return append([]SchemeChange(nil), db.history...)
}

// SetScheme switches the cluster's concurrency control scheme mid-run. It
// drains the cluster to a quiescent point — clients pause at their next
// issue, in-flight transactions run to completion, partitions and the
// coordinator empty — then retires each partition's engine and hands the
// partition's store, undo ledger and replication gating to a freshly
// constructed engine of the new scheme, updates client routing (locking
// clients coordinate 2PC themselves; the others go through the central
// coordinator), and resumes the clients. The drain advances virtual time by
// however long the in-flight transactions take, so a subsequent RunFor slice
// starts at the drain point. Switching to the current scheme is a no-op.
//
// Everything runs on virtual time, so runs using SetScheme remain exactly
// reproducible. Engine counters survive switches: Result.EngineStats
// accumulates across every engine a partition has run.
//
// Backup replicas are untouched by the swap — they are engine-agnostic and
// may briefly trail the primary by replica messages still in flight when
// the drain completes (as in §3.2, backups always trail by design); the
// FIFO links deliver those before any post-switch forwards, so replicas
// converge to the primary's state.
func (db *DB) SetScheme(sc Scheme) error {
	switch sc {
	case Blocking, Speculation, Locking, MVCC, OCC:
	default:
		return fmt.Errorf("%w (%d)", ErrBadScheme, int(sc))
	}
	return db.setScheme(sc, false)
}

// setScheme implements SetScheme; auto marks advisor-driven switches in the
// history.
func (db *DB) setScheme(sc Scheme, auto bool) error {
	if sc == db.cfg.scheme {
		return nil
	}
	if len(db.cfg.faults) > 0 && sc == Locking {
		return ErrFaultsLocking
	}
	if db.started {
		if err := db.drainQuiesce(); err != nil {
			db.resumeClients() // never leave the cluster paused
			return err
		}
	}
	factory := db.engineFactory(sc)
	for p := range db.backups {
		for _, b := range db.backups[p] {
			b.EngineFactory = factory
		}
		if r := db.restarters[p]; r != nil {
			r.EngineFactory = factory
		}
	}
	for p := range db.parts {
		if err := db.livePrimary(p).SwapEngine(factory); err != nil {
			// Unreachable after a successful drain (drainQuiesce verified
			// every partition quiescent); resume rather than poison the DB.
			db.resumeClients()
			return fmt.Errorf("specdb: %w", err)
		}
	}
	db.history = append(db.history, SchemeChange{At: db.cursor, From: db.cfg.scheme, To: sc, Auto: auto})
	db.cfg.scheme = sc
	for _, cl := range db.clients {
		cl.Scheme = sc
	}
	db.resumeClients()
	if db.adv != nil {
		// Rebase the advisor's interval on the switch point — completions
		// from the drain (and, for manual switches, the partial interval)
		// were measured under the old scheme — and arm its holdoff so a
		// manual choice is not second-guessed from stale statistics.
		db.advBase = db.collector.Totals
		db.advLat = db.collector.TotalLat
		db.adv.NoteSwitch()
	}
	return nil
}

// resumeClients un-pauses every client and, on a started DB, re-kicks them
// at the cursor (Start is idempotent for clients that never went idle).
func (db *DB) resumeClients() {
	for i, cl := range db.clients {
		cl.Resume()
		if db.started {
			db.sch.SendAt(db.cursor, db.clientIDs[i], client.Start{})
		}
	}
}

// drainQuiesce pauses every client and steps the simulation until the
// cluster reaches a quiescent point: all clients idle between transactions,
// the coordinator holding no undecided transactions, and every partition
// free of transaction state. Closed-loop clients guarantee the drain
// terminates — each has at most one transaction in flight.
func (db *DB) drainQuiesce() error {
	for _, cl := range db.clients {
		cl.Pause()
	}
	for !db.quiescent() {
		if !db.sch.Step() {
			break
		}
	}
	db.syncCursor()
	if !db.quiescent() {
		return fmt.Errorf("specdb: scheme switch drain stalled before quiescence")
	}
	return nil
}

// quiescent reports whether no transaction is active or in flight anywhere.
// After a failover the promoted backup's partition stands in for the dead
// primary, whose frozen in-crash state no longer matters.
func (db *DB) quiescent() bool {
	for _, cl := range db.clients {
		if !cl.Idle() {
			return false
		}
	}
	if db.coord.Pending() > 0 {
		return false
	}
	for p := range db.parts {
		for _, b := range db.backups[p] {
			if b.Recovering() {
				return false
			}
		}
		if r := db.restarters[p]; r != nil && r.Recovering() {
			return false
		}
		if !db.livePrimary(p).Quiescent() {
			return false
		}
	}
	return true
}

// Quiescent reports whether the cluster holds no transaction state: every
// client is idle (its generator exhausted or paused), the coordinator has no
// undecided transactions, and every partition's engine is empty. In a run
// with faults the event queue may still hold failure-detector machinery, so
// Quiescent — not an empty queue — is the "workload finished" signal.
func (db *DB) Quiescent() bool { return db.quiescent() }

// advisorTick evaluates one advisor interval over the collector's totals and
// applies the recommended switch, if any.
func (db *DB) advisorTick() {
	tot := db.collector.Totals
	d := tot.Sub(db.advBase)
	db.advBase = tot
	dl := db.collector.TotalLat.Sub(db.advLat)
	db.advLat = db.collector.TotalLat
	lat := dl.Merged()
	s := advisor.Stats{
		Completed: d.Completed(),
		P99:       lat.Quantile(0.99),
		Observed: ModelObserved{
			MPFraction:   d.MPFraction(),
			MultiRound:   d.MultiRoundFraction(),
			AbortRate:    d.AbortRate(),
			ConflictRate: d.ConflictRate(),
			ReadFraction: d.ReadFraction(),
		},
	}
	if sc, switchNow := db.adv.Observe(db.cfg.scheme, s); switchNow {
		if err := db.setScheme(sc, true); err != nil {
			// Only reachable if quiescence invariants are broken.
			panic(err)
		}
	}
}

// elasticTick evaluates one saturation interval over per-partition busy-time
// deltas and performs the triggered migration, if any.
func (db *DB) elasticTick() {
	span := db.cursor - db.elAt
	db.elAt = db.cursor
	busy := make([]Time, len(db.parts))
	for p := range db.parts {
		b := db.partBusy(p)
		busy[p] = b - db.elBusy[p]
		db.elBusy[p] = b
	}
	if len(db.collector.Migrations) >= db.elCfg.MaxMigrations {
		return
	}
	if from, to, ok := db.etrig.Observe(busy, span); ok {
		if err := db.migrate(from, to, true); err != nil {
			// A hot partition that cannot split (too few distinct keys)
			// would re-trigger every interval; the holdoff the failed
			// attempt armed spaces the retries out.
			return
		}
	}
}

// Migrate moves the upper half of partition from's key range to partition to
// through the same freeze–copy–cutover an advisor-triggered migration uses:
// drain to a quiescent point, copy the rows (priced by the elasticity
// config), advance the routing epoch, resume the clients. Requires
// WithElasticity; the migration appears in Result.Migrations with Auto
// false. Virtual time advances by the drain plus the copy, like SetScheme's
// drain.
func (db *DB) Migrate(from, to PartitionID) error {
	if db.router == nil {
		return fmt.Errorf("%w (WithElasticity not configured)", ErrBadElasticity)
	}
	return db.migrate(int(from), int(to), false)
}

// migrate performs one elastic key-range migration: freeze (drain to a
// quiescent point), split plan (median key of the donor's row set), copy
// (the donor's MigrateOut handler deletes, forwards and logs the range and
// ships it to the destination's MigrateIn, both priced by the copy cost),
// cut over (advance the routing epoch so generators re-target the moved
// keys), and resume. Backups and command logs ride the partitions' normal
// forwarding and group-commit paths, so replicas converge and crash-restart
// replays the move.
func (db *DB) migrate(from, to int, auto bool) error {
	if from == to || from < 0 || from >= len(db.parts) || to < 0 || to >= len(db.parts) {
		return fmt.Errorf("%w (migrate %d -> %d of %d partitions)", ErrBadElasticity, from, to, len(db.parts))
	}
	triggered := db.cursor
	if db.started {
		if err := db.drainQuiesce(); err != nil {
			db.resumeClients() // never leave the cluster paused
			return err
		}
	}
	donor := db.livePrimary(from)
	dest := db.livePrimary(to)
	plan, ok := splitUpperHalf(donor.Store())
	if !ok {
		if db.etrig != nil {
			db.etrig.NoteMigration() // space out re-trigger attempts
		}
		db.resumeClients()
		return fmt.Errorf("%w (partition %d has too few distinct keys to split)", ErrBadElasticity, from)
	}
	cost := db.elCfg.CopyLatency
	if db.elCfg.CopyBandwidth > 0 {
		cost += Time(float64(plan.bytes) / db.elCfg.CopyBandwidth * float64(Second))
	}
	wantIn := dest.MigrationsIn + 1
	db.sch.SendAt(db.cursor, db.livePrimaryID(from), &msg.MigrateOut{
		Lo: plan.lo, Hi: plan.hi, Dest: db.livePrimaryID(to), Cost: cost,
	})
	for dest.MigrationsIn < wantIn {
		if !db.sch.Step() {
			db.resumeClients()
			return fmt.Errorf("specdb: migration %d -> %d stalled before the copy completed", from, to)
		}
	}
	db.syncCursor()
	db.router.Add(elastic.Move{From: PartitionID(from), To: PartitionID(to), Lo: plan.lo, Hi: plan.hi})
	db.collector.NoteMigration(metrics.MigrationEvent{
		From: from, To: to,
		TriggeredAt: triggered, CopiedAt: db.cursor, CutoverAt: db.cursor,
		RowsMoved: uint64(plan.rows), BytesMoved: plan.bytes,
		LoKey: plan.lo, HiKey: plan.hi,
		Auto: auto,
	})
	if db.etrig != nil {
		db.etrig.NoteMigration()
	}
	db.resumeClients()
	if db.adv != nil {
		// Rebase the advisor's interval on the cutover: completions from
		// the drain were measured under pre-migration routing.
		db.advBase = db.collector.Totals
		db.advLat = db.collector.TotalLat
	}
	if db.etrig != nil {
		// Rebase the busy baselines too — the copy itself spent donor and
		// destination CPU that is not workload skew.
		db.elAt = db.cursor
		for p := range db.parts {
			db.elBusy[p] = db.partBusy(p)
		}
	}
	return nil
}

// splitPlanned describes the key range a migration moves.
type splitPlanned struct {
	lo, hi string
	rows   int
	bytes  uint64
}

// splitUpperHalf plans a median split of the store's row set: the key range
// [median, ∞) across every table, sized like Store.ApproxBytes prices rows.
// It reports ok=false when fewer than two distinct keys exist — there is no
// boundary that moves some rows and keeps some.
func splitUpperHalf(st *storage.Store) (splitPlanned, bool) {
	var keys []string
	for _, tbl := range st.TableNames() {
		st.Table(tbl).Ascend("", "", func(k string, v any) bool {
			keys = append(keys, k)
			return true
		})
	}
	sort.Strings(keys)
	if len(keys) == 0 || keys[0] == keys[len(keys)-1] {
		return splitPlanned{}, false
	}
	median := keys[len(keys)/2]
	if median == keys[0] {
		// Duplicate-heavy low half: move everything strictly above the
		// smallest key instead, the tightest split that keeps rows behind.
		for _, k := range keys {
			if k > median {
				median = k
				break
			}
		}
	}
	const perRow = 16 // Store.ApproxBytes's per-row value charge
	p := splitPlanned{lo: median, hi: ""}
	for _, k := range keys {
		if k >= median {
			p.rows++
			p.bytes += uint64(len(k)) + perRow
		}
	}
	return p, true
}

// Migrations returns every elastic migration performed on this DB so far,
// in cutover order (see Result.Migrations).
func (db *DB) Migrations() []MigrationEvent {
	return append([]MigrationEvent(nil), db.collector.Migrations...)
}

// Snapshot returns live cumulative counters plus interval rates covering the
// span since the previous Snapshot call (the whole run for the first call).
// Counters are whole-run totals, not measurement-window counters, so they
// move during warm-up too.
func (db *DB) Snapshot() Metrics { return db.snapshot(true) }

// Peek is Snapshot without consuming the interval: the baseline for the next
// Snapshot's interval rates is left untouched.
func (db *DB) Peek() Metrics { return db.snapshot(false) }

func (db *DB) snapshot(advance bool) Metrics {
	now := db.cursor
	tot := db.collector.Totals
	m := Metrics{
		Now:             now,
		Scheme:          db.cfg.scheme,
		Events:          db.sch.DeliveredCount(),
		Completed:       tot.Completed(),
		Committed:       tot.Committed,
		UserAborted:     tot.UserAborted,
		CommittedSP:     tot.CommittedSP,
		CommittedMP:     tot.CommittedMP,
		CommittedMR:     tot.CommittedMR,
		Retries:         tot.Retries,
		Shed:            tot.Shed,
		Failovers:       db.collector.Promotions(),
		FailoverResends: db.collector.FailoverResends,
		Restarts:        db.collector.Restarts(),
	}
	if db.shsch != nil {
		m.Barriers = db.shsch.Barriers()
		m.CrossShardMsgs = db.shsch.CrossShardMsgs()
	}
	d := tot.Sub(db.snapCounts)
	dl := db.collector.TotalLat.Sub(db.snapLat)
	lat := dl.Merged()
	iv := Interval{
		Start:              db.snapAt,
		End:                now,
		Completed:          d.Completed(),
		Committed:          d.Committed,
		UserAborted:        d.UserAborted,
		CommittedMP:        d.CommittedMP,
		Retries:            d.Retries,
		Shed:               d.Shed,
		MPFraction:         d.MPFraction(),
		MultiRoundFraction: d.MultiRoundFraction(),
		AbortRate:          d.AbortRate(),
		ConflictRate:       d.ConflictRate(),
		P50:                lat.Quantile(0.50),
		P95:                lat.Quantile(0.95),
		P99:                lat.Quantile(0.99),
	}
	if span := now - db.snapAt; span > 0 {
		iv.Throughput = float64(d.Completed()) / (float64(span) / float64(Second))
	}
	m.Interval = iv
	if advance {
		db.snapAt, db.snapCounts, db.snapLat = now, tot, db.collector.TotalLat
	}
	return m
}

// PartitionStore returns partition p's live primary store (inspection).
// After a failover this is the promoted backup's store; the dead primary's
// frozen store is no longer reachable.
func (db *DB) PartitionStore(p PartitionID) *Store { return db.livePrimary(int(p)).Store() }

// BackupStores returns partition p's backup stores. A backup promoted to
// primary by a failover is excluded — its store is the partition's primary
// store (PartitionStore), not a replica of it, and including it would turn
// replica-equivalence checks into self-comparisons.
func (db *DB) BackupStores(p PartitionID) []*Store {
	var out []*Store
	for _, b := range db.backups[p] {
		if b.Promoted() != nil {
			continue
		}
		out = append(out, b.Store)
	}
	return out
}

// LogBytes returns a copy of partition p's command-log byte image — the
// deterministic durable transcript of its committed transaction invocations.
// It is the bit-identity surface the durability determinism tests compare:
// same seed, same schedule, same bytes. Nil when durability is off.
func (db *DB) LogBytes(p PartitionID) []byte {
	if db.loggers == nil {
		return nil
	}
	return append([]byte(nil), db.loggers[p].Image()...)
}

// Coordinator exposes coordinator counters (inspection).
func (db *DB) Coordinator() *coordinator.Coordinator { return db.coord }

// Clients exposes the client actors (inspection).
func (db *DB) Clients() []*client.Client { return db.clients }

// lockStats collects per-partition lock manager statistics, accumulated
// across every locking engine each partition has run — a locking era's
// counters survive switching away. Nil when locking never ran.
func (db *DB) lockStats() []locks.Stats {
	out := make([]locks.Stats, 0, len(db.parts))
	ran := false
	for p := range db.parts {
		st, r := db.parts[p].LockTotals()
		out = append(out, st)
		ran = ran || r
	}
	if !ran {
		return nil
	}
	return out
}
