package specdb_test

import (
	"testing"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/model"
	"specdb/internal/workload"
)

// TestModelMatchesSimulatedCrossovers is the §6.4-style validation behind
// the advisor: on the two-partition microbenchmark, wherever the §6 model
// separates two schemes by a clear margin, the simulated throughputs must
// order the same way. Close pairs are skipped: the model deliberately
// ignores the locking fast path (which makes measured locking tie the others
// at f=0) and coordinator saturation (which drags measured speculation at
// high f, §6.4), so it is only trusted where its predicted gap exceeds the
// size of those known divergences.
func TestModelMatchesSimulatedCrossovers(t *testing.T) {
	const clients, keys = 40, 12
	// Pairs whose predicted gap is below this relative margin are not
	// asserted against the simulation.
	const margin = 0.15

	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	schemes := []specdb.Scheme{specdb.Blocking, specdb.Speculation, specdb.Locking}
	fractions := []float64{0.05, 0.1, 0.3, 0.5, 1.0}

	cells, err := specdb.Sweep{
		Name: "model-agreement",
		Base: []specdb.Option{
			specdb.WithPartitions(2),
			specdb.WithClients(clients),
			specdb.WithSeed(11),
			specdb.WithWarmup(10 * specdb.Millisecond),
			specdb.WithMeasure(50 * specdb.Millisecond),
			specdb.WithRegistry(reg),
			specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, clients, keys)
			}),
		},
		Axes: []specdb.Axis{
			specdb.SchemeAxis(schemes...),
			specdb.NumAxis("mp", fractions, func(f float64) []specdb.Option {
				return []specdb.Option{specdb.WithWorkloadFactory(func() specdb.Generator {
					return &workload.Micro{Partitions: 2, KeysPerTxn: keys, MPFraction: f}
				})}
			}),
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Cells self-identify through Labels and Xs; key the measurements off
	// those rather than assuming the sweep's iteration order.
	byLabel := make(map[string]specdb.Scheme, len(schemes))
	for _, sc := range schemes {
		byLabel[sc.String()] = sc
	}
	measured := make(map[specdb.Scheme]map[float64]float64, len(schemes))
	for _, cell := range cells {
		sc, ok := byLabel[cell.Labels[0]]
		if !ok {
			t.Fatalf("cell with unknown scheme label %q", cell.Labels[0])
		}
		if measured[sc] == nil {
			measured[sc] = make(map[float64]float64, len(fractions))
		}
		measured[sc][cell.Xs[1]] = cell.Result.Throughput
	}
	for _, sc := range schemes {
		if len(measured[sc]) != len(fractions) {
			t.Fatalf("scheme %v measured at %d fractions, want %d", sc, len(measured[sc]), len(fractions))
		}
	}

	p := model.PaperParams()
	asserted := 0
	for _, f := range fractions {
		obs := specdb.ModelObserved{MPFraction: f}
		for a := 0; a < len(schemes); a++ {
			for b := a + 1; b < len(schemes); b++ {
				ma, mb := p.Predict(schemes[a], obs), p.Predict(schemes[b], obs)
				lo, hi := schemes[a], schemes[b]
				if mb > ma {
					lo, hi = hi, lo
					ma, mb = mb, ma
				}
				if ma < mb*(1+margin) {
					continue // model margin too small to trust
				}
				asserted++
				if measured[lo][f] <= measured[hi][f] {
					t.Errorf("f=%.2f: model predicts %v (%.0f) > %v (%.0f) by >%.0f%%, but simulation measured %.0f vs %.0f",
						f, lo, ma, hi, mb, margin*100, measured[lo][f], measured[hi][f])
				}
			}
		}
	}
	if asserted < 8 {
		t.Fatalf("only %d scheme pairs had a clear model margin; grid too coarse to validate crossovers", asserted)
	}

	// The qualitative Figure 10 crossover structure, in both the model and
	// the simulation: speculation wins the mid-range, and locking overtakes
	// blocking as the multi-partition fraction grows.
	const mid, hiF = 0.3, 1.0
	if rec := p.Recommend(specdb.ModelObserved{MPFraction: mid}); rec != specdb.Speculation {
		t.Errorf("model mid-range recommendation = %v, want speculation", rec)
	}
	if !(measured[specdb.Speculation][mid] > measured[specdb.Blocking][mid] &&
		measured[specdb.Speculation][mid] > measured[specdb.Locking][mid]) {
		t.Errorf("simulation mid-range winner is not speculation: B=%.0f S=%.0f L=%.0f",
			measured[specdb.Blocking][mid], measured[specdb.Speculation][mid], measured[specdb.Locking][mid])
	}
	if p.Predict(specdb.Locking, specdb.ModelObserved{MPFraction: hiF}) <= p.Predict(specdb.Blocking, specdb.ModelObserved{MPFraction: hiF}) {
		t.Error("model does not predict locking > blocking at f=1")
	}
	if measured[specdb.Locking][hiF] <= measured[specdb.Blocking][hiF] {
		t.Errorf("simulation does not measure locking > blocking at f=1: L=%.0f B=%.0f",
			measured[specdb.Locking][hiF], measured[specdb.Blocking][hiF])
	}
}
