// Package specdb is a partitioned, main-memory, H-Store-style transaction
// processing library reproducing "Low Overhead Concurrency Control for
// Partitioned Main Memory Databases" (Jones, Abadi, Madden — SIGMOD 2010).
//
// A Cluster assembles single-threaded partition engines, optional backup
// replicas, a central coordinator, and closed-loop clients on a
// deterministic discrete-event simulation of the paper's testbed. Three
// concurrency control schemes decide what a partition does during the
// network stalls of multi-partition transactions: blocking, speculative
// execution, and single-threaded two-phase locking.
//
// Quick start:
//
//	reg := specdb.NewRegistry()
//	reg.Register(kvstore.Proc{})
//	res := specdb.Run(specdb.Config{
//	    Partitions: 2,
//	    Clients:    40,
//	    Scheme:     specdb.Speculation,
//	    Registry:   reg,
//	    Setup:      func(p specdb.PartitionID, s *specdb.Store) { ... },
//	    Workload:   &workload.Micro{...},
//	    Warmup:     100 * specdb.Millisecond,
//	    Measure:    time of measurement window,
//	})
//	fmt.Println(res.Throughput)
package specdb

import (
	"fmt"

	"specdb/internal/client"
	"specdb/internal/coordinator"
	"specdb/internal/core"
	"specdb/internal/costs"
	"specdb/internal/locks"
	"specdb/internal/metrics"
	"specdb/internal/msg"
	"specdb/internal/partition"
	"specdb/internal/replication"
	"specdb/internal/sim"
	"specdb/internal/simnet"
	"specdb/internal/storage"
	"specdb/internal/txn"
	"specdb/internal/workload"
)

// Re-exported names so callers assemble clusters from this package alone.
type (
	// Scheme selects a concurrency control scheme.
	Scheme = core.Scheme
	// PartitionID numbers data partitions from 0.
	PartitionID = msg.PartitionID
	// Store is a partition's table collection.
	Store = storage.Store
	// Registry holds stored procedures.
	Registry = txn.Registry
	// Catalog describes data distribution.
	Catalog = txn.Catalog
	// Invocation is one transaction request.
	Invocation = txn.Invocation
	// Reply is a completed transaction's outcome.
	Reply = msg.ClientReply
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// CostModel prices CPU and network.
	CostModel = costs.Model
	// LockConfig tunes the locking engine.
	LockConfig = core.LockConfig
	// Procedure is a stored procedure implementation.
	Procedure = txn.Procedure
	// Plan is a procedure's fragment layout.
	Plan = txn.Plan
	// TxnView is the data-access handle passed to fragment bodies.
	TxnView = storage.TxnView
	// FragmentResult is a fragment's output, seen by continuations.
	FragmentResult = msg.FragmentResult
)

// ErrUserAbort aborts the invoking transaction when returned from a
// fragment body.
var ErrUserAbort = txn.ErrUserAbort

// NoAbort disables abort injection on an Invocation.
const NoAbort = txn.NoAbort

// Scheme values.
const (
	Blocking    = core.SchemeBlocking
	Speculation = core.SchemeSpeculative
	Locking     = core.SchemeLocking
)

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewRegistry returns an empty procedure registry.
func NewRegistry() *Registry { return txn.NewRegistry() }

// DefaultCosts returns the Table 2 cost calibration.
func DefaultCosts() CostModel { return costs.Default() }

// Config describes a cluster and a workload run.
type Config struct {
	// Partitions is the number of data partitions (each with one
	// single-threaded primary).
	Partitions int
	// Clients is the number of closed-loop clients (40 in §5.1).
	Clients int
	// Scheme selects the concurrency control scheme.
	Scheme Scheme
	// Replicas is k, the total copies of each partition; k=1 disables
	// replication (as in the paper's model validation, §6.4).
	Replicas int
	// Costs prices CPU and network; the zero value selects DefaultCosts.
	Costs *CostModel
	// LockCfg tunes the locking scheme.
	LockCfg LockConfig
	// SpecCfg tunes the speculative scheme (local-only ablation).
	SpecCfg core.SpecConfig
	// Seed makes the run deterministic.
	Seed int64
	// Warmup and Measure bound the measurement window; Measure == 0
	// means "run the workload to completion" (finite generators only).
	Warmup  Time
	Measure Time
	// Registry holds the stored procedures.
	Registry *Registry
	// Catalog is optional; NumPartitions is filled in automatically.
	Catalog *Catalog
	// Setup installs schema and loads data on each partition's store
	// (and on each backup's).
	Setup func(p PartitionID, s *Store)
	// Workload generates client requests.
	Workload workload.Generator
	// OnComplete observes completions (scripted runs).
	OnComplete func(clientIdx int, inv *Invocation, reply *Reply)
}

// Result summarizes a run.
type Result struct {
	// Throughput is completed transactions per second of measurement
	// window (user aborts count as completions, §5.3).
	Throughput float64
	// Window counters.
	Committed   uint64
	UserAborted uint64
	CommittedSP uint64
	CommittedMP uint64
	Retries     uint64
	// Latency quantiles over the window.
	P50, P95, P99 Time
	// EngineStats per partition.
	EngineStats []core.EngineStats
	// LockStats per partition (locking scheme only).
	LockStats []locks.Stats
	// Utilization: fraction of wall-clock the actor's CPU was busy.
	CoordUtilization float64
	PartUtilization  []float64
	// Events is the number of simulation events processed.
	Events uint64
}

// Cluster is an assembled system ready to run.
type Cluster struct {
	cfg       Config
	costModel CostModel
	sch       *sim.Scheduler
	net       *simnet.Net
	parts     []*partition.Partition
	partIDs   []sim.ActorID
	backups   [][]*replication.Backup
	coord     *coordinator.Coordinator
	coordID   sim.ActorID
	clients   []*client.Client
	clientIDs []sim.ActorID
	collector *metrics.Collector
	ran       bool
}

// New assembles a cluster.
func New(cfg Config) *Cluster {
	if cfg.Partitions <= 0 {
		panic("specdb: Partitions must be positive")
	}
	if cfg.Clients <= 0 {
		panic("specdb: Clients must be positive")
	}
	if cfg.Registry == nil {
		panic("specdb: Registry is required")
	}
	if cfg.Workload == nil {
		panic("specdb: Workload is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	cm := DefaultCosts()
	if cfg.Costs != nil {
		cm = *cfg.Costs
	}
	cat := cfg.Catalog
	if cat == nil {
		cat = &txn.Catalog{}
	}
	cat.NumPartitions = cfg.Partitions

	c := &Cluster{cfg: cfg, costModel: cm}
	c.sch = sim.New()
	c.net = simnet.New(cm.OneWayLatency)

	end := cfg.Warmup + cfg.Measure
	if cfg.Measure == 0 {
		end = Time(1<<62 - 1)
	}
	c.collector = metrics.NewCollector(cfg.Warmup, end)

	// Partitions (primaries).
	for p := 0; p < cfg.Partitions; p++ {
		store := storage.NewStore()
		if cfg.Setup != nil {
			cfg.Setup(PartitionID(p), store)
		}
		part := partition.New(partition.Config{
			ID:       PartitionID(p),
			Store:    store,
			Registry: cfg.Registry,
			Costs:    &c.costModel,
			Net:      c.net,
		})
		id := c.sch.Register(fmt.Sprintf("partition-%d", p), part)
		c.parts = append(c.parts, part)
		c.partIDs = append(c.partIDs, id)
	}
	// Backups.
	c.backups = make([][]*replication.Backup, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		var ids []sim.ActorID
		for r := 1; r < cfg.Replicas; r++ {
			store := storage.NewStore()
			if cfg.Setup != nil {
				cfg.Setup(PartitionID(p), store)
			}
			b := replication.New(store, cfg.Registry, &c.costModel, c.net)
			b.Primary = c.partIDs[p]
			id := c.sch.Register(fmt.Sprintf("backup-%d-%d", p, r), b)
			b.Bind(id)
			ids = append(ids, id)
			c.backups[p] = append(c.backups[p], b)
		}
		c.parts[p].SetBackups(ids)
	}
	// Central coordinator (blocking and speculation schemes).
	c.coord = coordinator.New(cfg.Registry, cat, &c.costModel, c.net, c.partIDs)
	c.coordID = c.sch.Register("coordinator", c.coord)
	c.coord.Bind(c.coordID)

	// Bind partition engines.
	for p := 0; p < cfg.Partitions; p++ {
		scheme := cfg.Scheme
		lockCfg := cfg.LockCfg
		specCfg := cfg.SpecCfg
		c.parts[p].Bind(c.partIDs[p], func(env core.Env) core.Engine {
			switch scheme {
			case core.SchemeBlocking:
				return core.NewBlocking(env)
			case core.SchemeSpeculative:
				return core.NewSpeculativeWith(env, specCfg)
			case core.SchemeLocking:
				return core.NewLocking(env, lockCfg)
			default:
				panic(fmt.Sprintf("specdb: unknown scheme %v", scheme))
			}
		})
	}
	// Clients.
	for i := 0; i < cfg.Clients; i++ {
		cl := &client.Client{
			Registry:    cfg.Registry,
			Catalog:     cat,
			Costs:       &c.costModel,
			Net:         c.net,
			Metrics:     c.collector,
			Scheme:      cfg.Scheme,
			Coordinator: c.coordID,
			Parts:       c.partIDs,
			Gen:         cfg.Workload,
			Index:       i,
		}
		if cfg.OnComplete != nil {
			idx := i
			cl.OnComplete = func(inv *Invocation, reply *Reply) {
				cfg.OnComplete(idx, inv, reply)
			}
		}
		id := c.sch.Register(fmt.Sprintf("client-%d", i), cl)
		cl.Bind(id, cfg.Seed*1_000_003+int64(i)*7919+1)
		c.clients = append(c.clients, cl)
		c.clientIDs = append(c.clientIDs, id)
	}
	return c
}

// Run starts all clients at t=0 and runs to the configured horizon (or to
// quiescence when Measure == 0), returning the collected measurements.
func (c *Cluster) Run() Result {
	if c.ran {
		panic("specdb: cluster already ran")
	}
	c.ran = true
	for _, id := range c.clientIDs {
		c.sch.SendAt(0, id, client.Start{})
	}
	horizon := c.cfg.Warmup + c.cfg.Measure
	if c.cfg.Measure == 0 {
		c.sch.Drain()
	} else {
		c.sch.Run(horizon)
	}
	res := Result{
		Throughput:  c.collector.Throughput(),
		Committed:   c.collector.Committed,
		UserAborted: c.collector.UserAborted,
		CommittedSP: c.collector.CommittedSP,
		CommittedMP: c.collector.CommittedMP,
		Retries:     c.collector.Retries,
		P50:         c.collector.LatencyQuantile(0.50),
		P95:         c.collector.LatencyQuantile(0.95),
		P99:         c.collector.LatencyQuantile(0.99),
		Events:      c.sch.Delivered,
	}
	elapsed := c.sch.Now()
	if elapsed > 0 {
		res.CoordUtilization = float64(c.sch.BusyTime(c.coordID)) / float64(elapsed)
	}
	for p := range c.parts {
		res.EngineStats = append(res.EngineStats, c.parts[p].Engine().Stats())
		if le, ok := c.parts[p].Engine().(*core.LockEngine); ok {
			res.LockStats = append(res.LockStats, le.LockStats())
		}
		if elapsed > 0 {
			res.PartUtilization = append(res.PartUtilization,
				float64(c.sch.BusyTime(c.partIDs[p]))/float64(elapsed))
		}
	}
	return res
}

// PartitionStore returns partition p's primary store (post-run inspection).
func (c *Cluster) PartitionStore(p PartitionID) *Store { return c.parts[p].Store() }

// BackupStores returns partition p's backup stores.
func (c *Cluster) BackupStores(p PartitionID) []*Store {
	var out []*Store
	for _, b := range c.backups[p] {
		out = append(out, b.Store)
	}
	return out
}

// Coordinator exposes coordinator counters (post-run inspection).
func (c *Cluster) Coordinator() *coordinator.Coordinator { return c.coord }

// Clients exposes the client actors (post-run inspection).
func (c *Cluster) Clients() []*client.Client { return c.clients }

// Run assembles and runs a cluster in one call.
func Run(cfg Config) Result {
	return New(cfg).Run()
}
