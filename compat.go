package specdb

// Config describes a cluster and a workload run.
//
// Deprecated: Config is the legacy monolithic configuration. New code should
// pass functional options to Open, which validates up front and returns
// errors instead of panicking. Config remains for one release as a shim.
type Config struct {
	// Partitions is the number of data partitions (each with one
	// single-threaded primary).
	Partitions int
	// Clients is the number of closed-loop clients (40 in §5.1).
	Clients int
	// Scheme selects the concurrency control scheme.
	Scheme Scheme
	// Replicas is k, the total copies of each partition; k=1 disables
	// replication (as in the paper's model validation, §6.4).
	Replicas int
	// Costs prices CPU and network; the zero value selects DefaultCosts.
	Costs *CostModel
	// LockCfg tunes the locking scheme.
	LockCfg LockConfig
	// SpecCfg tunes the speculative scheme (local-only ablation).
	SpecCfg SpecConfig
	// Seed makes the run deterministic.
	Seed int64
	// Warmup and Measure bound the measurement window; Measure == 0
	// means "run the workload to completion" (finite generators only).
	Warmup  Time
	Measure Time
	// Registry holds the stored procedures.
	Registry *Registry
	// Catalog is optional; NumPartitions is filled in automatically.
	Catalog *Catalog
	// Setup installs schema and loads data on each partition's store
	// (and on each backup's).
	Setup func(p PartitionID, s *Store)
	// Workload generates client requests.
	Workload Generator
	// OnComplete observes completions (scripted runs).
	OnComplete func(clientIdx int, inv *Invocation, reply *Reply)
}

// Options converts a legacy Config into the equivalent Option list,
// preserving the legacy zero-value semantics (Replicas 0 means 1, nil Costs
// means DefaultCosts; zero Partitions or Clients remain invalid).
func (cfg Config) Options() []Option {
	opts := []Option{
		WithPartitions(cfg.Partitions),
		WithClients(cfg.Clients),
		WithScheme(cfg.Scheme),
		WithLockConfig(cfg.LockCfg),
		WithSpecConfig(cfg.SpecCfg),
		WithSeed(cfg.Seed),
		WithWarmup(cfg.Warmup),
		WithMeasure(cfg.Measure),
	}
	if cfg.Replicas > 0 {
		opts = append(opts, WithReplicas(cfg.Replicas))
	}
	if cfg.Costs != nil {
		opts = append(opts, WithCosts(*cfg.Costs))
	}
	if cfg.Registry != nil {
		opts = append(opts, WithRegistry(cfg.Registry))
	}
	if cfg.Catalog != nil {
		opts = append(opts, WithCatalog(cfg.Catalog))
	}
	if cfg.Setup != nil {
		opts = append(opts, WithSetup(cfg.Setup))
	}
	if cfg.Workload != nil {
		opts = append(opts, WithWorkload(cfg.Workload))
	}
	if cfg.OnComplete != nil {
		opts = append(opts, WithOnComplete(cfg.OnComplete))
	}
	return opts
}

// Run assembles and runs a cluster in one call, panicking on an invalid
// configuration.
//
// Deprecated: use Open with options and handle the error:
//
//	db, err := specdb.Open(cfg.Options()...)
func Run(cfg Config) Result {
	db, err := Open(cfg.Options()...)
	if err != nil {
		panic(err)
	}
	return db.Run()
}
