package specdb

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"specdb/internal/kvstore"
	"specdb/internal/storage"
	"specdb/internal/workload"
)

// This file tests elastic repartitioning (WithElasticity): the saturation
// trigger splitting a hot partition under Zipfian partition skew, manual
// migrations, exactly-once execution and replica equivalence across a
// cutover, serializability of migrated histories under every scheme,
// determinism across seeds and shard widths, and composition with
// durability (logged migrations replayed by crash-restart).

const (
	elasticParts = 4
	elasticKeys  = 6
)

// elasticOpts builds a cluster with a hot partition 0: every transaction is
// single-partition and the home partition is Zipfian with partition 0
// hottest.
func elasticOpts(scheme Scheme, clients, perClient int, extra ...Option) []Option {
	opts := []Option{
		WithPartitions(elasticParts),
		WithClients(clients),
		WithScheme(scheme),
		WithSeed(11),
		WithRegistry(kvRegistry()),
		WithSetup(func(p PartitionID, s *Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, elasticKeys)
		}),
		WithWorkloadFactory(func() Generator {
			return &workload.Limit{
				// Partitions deliberately zero: SetShape fills it from the
				// cluster shape (see TestMicroSetShapeFillsPartitions).
				Gen: &workload.Micro{KeysPerTxn: elasticKeys, PartitionSkew: 0.95},
				N:   clients * perClient,
			}
		}),
	}
	return append(opts, extra...)
}

// keyLedger tracks, per key, how many transactions committed against it —
// the client-observed truth, keyed by key alone because a migration moves
// keys between partitions mid-run. At quiescence every key must live in
// exactly one partition's store with exactly the ledger's count.
type keyLedger struct {
	commits map[string]int64
}

func newKeyLedger() *keyLedger { return &keyLedger{commits: make(map[string]int64)} }

func (l *keyLedger) observe(inv *Invocation, reply *Reply) {
	if !reply.Committed {
		return
	}
	for _, keys := range inv.Args.(*kvstore.Args).Keys {
		for _, k := range keys {
			l.commits[k]++
		}
	}
}

// verify checks the union of all partition stores against the ledger: each
// key present exactly once, with the committed increment count.
func (l *keyLedger) verify(t *testing.T, db *DB, parts int) {
	t.Helper()
	seen := make(map[string]PartitionID)
	for p := 0; p < parts; p++ {
		pid := PartitionID(p)
		db.PartitionStore(pid).Table(kvstore.Table).Ascend("", "", func(k string, v any) bool {
			if prev, dup := seen[k]; dup {
				t.Errorf("key %q present in partitions %d and %d", k, prev, p)
			}
			seen[k] = pid
			if got := v.(int64); got != l.commits[k] {
				t.Errorf("partition %d key %q: store=%d, committed=%d", p, k, got, l.commits[k])
			}
			return true
		})
	}
	for k := range l.commits {
		if _, ok := seen[k]; !ok && l.commits[k] > 0 {
			t.Errorf("committed key %q missing from every store", k)
		}
	}
}

// TestElasticSplitTriggersUnderSkew is the tentpole's acceptance shape: a
// Zipfian hot-partition run with the saturation trigger on splits partition
// 0 mid-run, the migration timeline is ordered with a bounded dip, rows
// actually moved, and execution stays exactly-once across the cutover.
func TestElasticSplitTriggersUnderSkew(t *testing.T) {
	led := newKeyLedger()
	db := mustOpen(t, elasticOpts(Speculation, 16, 400,
		WithElasticity(ElasticityConfig{}),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) { led.observe(inv, r) }),
	)...)
	res := db.Run()
	if len(res.Migrations) == 0 {
		t.Fatalf("no migration triggered; partition utilizations %v", res.PartUtilization)
	}
	for i, ev := range res.Migrations {
		if !ev.Auto {
			t.Errorf("migration %d: Auto=false, want trigger-driven", i)
		}
		if ev.From != 0 {
			t.Errorf("migration %d donated from partition %d, want hot partition 0", i, ev.From)
		}
		if ev.RowsMoved == 0 || ev.BytesMoved == 0 {
			t.Errorf("migration %d moved nothing: %+v", i, ev)
		}
		if ev.LoKey == "" {
			t.Errorf("migration %d has empty split key", i)
		}
		if !(ev.TriggeredAt <= ev.CopiedAt && ev.CopiedAt <= ev.CutoverAt) {
			t.Errorf("migration %d timeline out of order: %+v", i, ev)
		}
		if ev.Dip() <= 0 || ev.Dip() > 50*Millisecond {
			t.Errorf("migration %d dip = %v, want in (0, 50ms]", i, ev.Dip())
		}
	}
	if res.MigrationDip <= 0 {
		t.Errorf("MigrationDip = %v, want positive", res.MigrationDip)
	}
	if got := len(db.Migrations()); got != len(res.Migrations) {
		t.Errorf("DB.Migrations() = %d events, Result has %d", got, len(res.Migrations))
	}
	led.verify(t, db, elasticParts)
}

// TestElasticManualMigrate drives a migration by hand in Manual mode and
// checks the donor's upper key range landed on the destination, replicas
// converged to the post-migration placement, and execution stayed
// exactly-once.
func TestElasticManualMigrate(t *testing.T) {
	led := newKeyLedger()
	db := mustOpen(t, elasticOpts(Speculation, 16, 200,
		WithReplicas(2),
		WithElasticity(ElasticityConfig{Manual: true}),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) { led.observe(inv, r) }),
	)...)
	db.RunFor(5 * Millisecond)
	if err := db.Migrate(0, 3); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	res := db.Run()
	if len(res.Migrations) != 1 {
		t.Fatalf("migrations = %+v, want exactly the manual one", res.Migrations)
	}
	ev := res.Migrations[0]
	if ev.Auto || ev.From != 0 || ev.To != 3 || ev.RowsMoved == 0 {
		t.Fatalf("unexpected migration event %+v", ev)
	}
	// The moved range is gone from the donor and present on the destination.
	donor := db.PartitionStore(0).Table(kvstore.Table)
	donor.Ascend(ev.LoKey, ev.HiKey, func(k string, v any) bool {
		t.Errorf("donor still holds migrated key %q", k)
		return true
	})
	moved := 0
	db.PartitionStore(3).Table(kvstore.Table).Ascend(ev.LoKey, ev.HiKey, func(k string, v any) bool {
		moved++
		return true
	})
	if moved == 0 {
		t.Error("destination holds none of the migrated range")
	}
	// Replicas converged to the post-migration placement.
	for p := 0; p < elasticParts; p++ {
		for i, bs := range db.BackupStores(PartitionID(p)) {
			if err := storage.DiffStores(db.PartitionStore(PartitionID(p)), bs); err != nil {
				t.Errorf("partition %d backup %d diverged: %v", p, i, err)
			}
		}
	}
	led.verify(t, db, elasticParts)
}

// TestElasticOracleAllSchemes verifies serializability across a mid-run
// migration under every scheme: the recorded history of each partition —
// including the synthetic migration records — must replay to the exact final
// stores.
func TestElasticOracleAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			setup := func(p PartitionID, s *Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, 16, elasticKeys)
			}
			db := mustOpen(t, elasticOpts(scheme, 16, 150,
				WithElasticity(ElasticityConfig{Manual: true}),
				withHistory(),
			)...)
			db.RunFor(5 * Millisecond)
			if err := db.Migrate(0, 2); err != nil {
				t.Fatalf("Migrate: %v", err)
			}
			db.Run()
			if len(db.Migrations()) != 1 {
				t.Fatalf("migrations = %+v", db.Migrations())
			}
			initial := initialStores(len(db.histories), setup)
			committed := 0
			for p, h := range db.histories {
				committed += h.Len()
				if err := h.Verify(initial[p], db.PartitionStore(PartitionID(p))); err != nil {
					t.Errorf("partition %d: %v", p, err)
				}
			}
			if committed == 0 {
				t.Fatal("oracle recorded no committed transactions")
			}
		})
	}
}

// TestElasticDeterminism pins the tentpole's bit-identity contract: the same
// seed reproduces the same Result — migrations included — and the sharded
// runtime at widths 2 and 4 matches the single-shard baseline exactly
// (Parallel excluded, as documented). The run is time-bounded with a bare
// Micro rather than elasticOpts's workload.Limit wrapper: Limit shares its
// countdown across clients and therefore requires Shards == 1 (see the
// WithParallelism caveats), which the width sweep here would violate.
func TestElasticDeterminism(t *testing.T) {
	run := func(shards int) Result {
		opts := []Option{
			WithPartitions(elasticParts),
			WithClients(16),
			WithScheme(Speculation),
			WithSeed(11),
			WithWarmup(2 * Millisecond),
			WithMeasure(40 * Millisecond),
			WithRegistry(kvRegistry()),
			WithSetup(func(p PartitionID, s *Store) {
				kvstore.AddSchema(s)
				kvstore.Load(s, p, 16, elasticKeys)
			}),
			WithWorkloadFactory(func() Generator {
				return &workload.Micro{KeysPerTxn: elasticKeys, PartitionSkew: 0.95}
			}),
			WithElasticity(ElasticityConfig{}),
		}
		if shards > 0 {
			opts = append(opts, WithParallelism(ParallelismConfig{Shards: shards}))
		}
		db := mustOpen(t, opts...)
		res := db.Run()
		res.Parallel = nil
		return res
	}
	serial := run(0)
	if len(serial.Migrations) == 0 {
		t.Fatal("serial run performed no migrations; the determinism check would be vacuous")
	}
	if again := run(0); !reflect.DeepEqual(serial, again) {
		t.Errorf("same-seed serial rerun diverged:\n%+v\nvs\n%+v", serial, again)
	}
	base := run(1)
	if len(base.Migrations) == 0 {
		t.Fatal("sharded run performed no migrations")
	}
	for _, shards := range []int{1, 2, 4} {
		if got := run(shards); !reflect.DeepEqual(base, got) {
			t.Errorf("shards=%d diverged from the shards=1 baseline:\n%+v\nvs\n%+v", shards, base, got)
		}
	}
}

// TestElasticDurableCompose runs elasticity with durability on and checks
// the migration records land in both partitions' command logs and the log
// images stay bit-identical across a same-seed rerun.
func TestElasticDurableCompose(t *testing.T) {
	run := func() (*DB, Result) {
		db := mustOpen(t, elasticOpts(Speculation, 16, 300,
			WithDurability(DurabilityConfig{}),
			WithElasticity(ElasticityConfig{}),
		)...)
		return db, db.Run()
	}
	db1, res1 := run()
	if len(res1.Migrations) == 0 {
		t.Fatal("no migration triggered")
	}
	ev := res1.Migrations[0]
	if !bytes.Contains(db1.LogBytes(PartitionID(ev.From)), []byte("M d=o")) {
		t.Error("donor log holds no outbound migration record")
	}
	if !bytes.Contains(db1.LogBytes(PartitionID(ev.To)), []byte("M d=i")) {
		t.Error("destination log holds no inbound migration record")
	}
	db2, res2 := run()
	res1.Parallel, res2.Parallel = nil, nil
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("same-seed durable elastic reruns diverged:\n%+v\nvs\n%+v", res1, res2)
	}
	for p := 0; p < elasticParts; p++ {
		if !bytes.Equal(db1.LogBytes(PartitionID(p)), db2.LogBytes(PartitionID(p))) {
			t.Errorf("partition %d log images differ between same-seed runs", p)
		}
	}
}

// TestElasticCrashRestartReplaysMigration crashes the donor after a manual
// migration and verifies recovery replays the logged migration: the
// restarted store must not resurrect the moved range, and execution stays
// exactly-once across both the migration and the crash.
func TestElasticCrashRestartReplaysMigration(t *testing.T) {
	led := newKeyLedger()
	db := mustOpen(t, elasticOpts(Speculation, 16, 300,
		WithDurability(DurabilityConfig{}),
		WithElasticity(ElasticityConfig{Manual: true}),
		WithFaults(CrashRestart(0, 12*Millisecond)),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) { led.observe(inv, r) }),
	)...)
	db.RunFor(5 * Millisecond)
	if err := db.Migrate(0, 1); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	runToQuiescence(t, db)
	res := db.Result()
	if len(res.Recovery) != 1 || res.Recovery[0].ResumedAt == 0 {
		t.Fatalf("recovery events = %+v", res.Recovery)
	}
	if len(res.Migrations) != 1 {
		t.Fatalf("migrations = %+v", res.Migrations)
	}
	ev := res.Migrations[0]
	db.PartitionStore(0).Table(kvstore.Table).Ascend(ev.LoKey, ev.HiKey, func(k string, v any) bool {
		t.Errorf("restarted donor resurrected migrated key %q", k)
		return true
	})
	led.verify(t, db, elasticParts)
}

// TestElasticRejections pins every ErrBadElasticity path: too few
// partitions, a workload that cannot re-target (Script), a scan-bearing
// Micro, out-of-range config fields, Migrate without WithElasticity,
// degenerate Migrate arguments, and SetWorkload swapping in a
// non-router-aware generator mid-run.
func TestElasticRejections(t *testing.T) {
	base := func() []Option {
		return []Option{
			WithClients(4),
			WithRegistry(kvRegistry()),
			WithSetup(kvSetup(4)),
			WithWorkload(&workload.Micro{KeysPerTxn: 4}),
		}
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"one-partition", append(base(), WithPartitions(1), WithElasticity(ElasticityConfig{}))},
		{"script-workload", append(base(), WithPartitions(2),
			WithWorkload(scriptOf(4, 2)), WithElasticity(ElasticityConfig{}))},
		{"scan-workload", append(base(), WithPartitions(2),
			WithWorkload(&workload.Micro{KeysPerTxn: 4, ScanFraction: 0.5}),
			WithElasticity(ElasticityConfig{}))},
		{"negative-field", append(base(), WithPartitions(2),
			WithElasticity(ElasticityConfig{CopyLatency: -1}))},
		{"fraction-above-one", append(base(), WithPartitions(2),
			WithElasticity(ElasticityConfig{SaturationFraction: 1.5}))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Open(tc.opts...); !errors.Is(err, ErrBadElasticity) {
				t.Fatalf("Open error = %v, want ErrBadElasticity", err)
			}
		})
	}
	t.Run("migrate-without-elasticity", func(t *testing.T) {
		db := mustOpen(t, append(base(), WithPartitions(2))...)
		if err := db.Migrate(0, 1); !errors.Is(err, ErrBadElasticity) {
			t.Fatalf("Migrate error = %v, want ErrBadElasticity", err)
		}
	})
	t.Run("migrate-self", func(t *testing.T) {
		db := mustOpen(t, append(base(), WithPartitions(2), WithElasticity(ElasticityConfig{Manual: true}))...)
		if err := db.Migrate(1, 1); !errors.Is(err, ErrBadElasticity) {
			t.Fatalf("Migrate(1,1) error = %v, want ErrBadElasticity", err)
		}
		if err := db.Migrate(0, 5); !errors.Is(err, ErrBadElasticity) {
			t.Fatalf("Migrate(0,5) error = %v, want ErrBadElasticity", err)
		}
	})
	t.Run("setworkload-not-router-aware", func(t *testing.T) {
		db := mustOpen(t, append(base(), WithPartitions(2), WithElasticity(ElasticityConfig{Manual: true}))...)
		if err := db.SetWorkload(scriptOf(4, 2)); !errors.Is(err, ErrBadElasticity) {
			t.Fatalf("SetWorkload error = %v, want ErrBadElasticity", err)
		}
	})
}

// TestElasticMaxMigrationsCap pins the migration budget: a permanently
// skewed workload stops migrating at MaxMigrations.
func TestElasticMaxMigrationsCap(t *testing.T) {
	db := mustOpen(t, elasticOpts(Speculation, 16, 600,
		WithElasticity(ElasticityConfig{MaxMigrations: 1, Holdoff: 1}),
	)...)
	res := db.Run()
	if len(res.Migrations) != 1 {
		t.Fatalf("migrations = %d, want the MaxMigrations cap of 1", len(res.Migrations))
	}
}

// TestElasticRoutedInvocationTargetsLiveHome is the satellite regression for
// generators captured at Open: after a mid-phase migration the generator
// must issue the moved keys to their new physical partition, not the
// partition count or placement captured when the phase began. Every
// committed invocation's key groups are checked against the live routing
// table at completion time.
func TestElasticRoutedInvocationTargetsLiveHome(t *testing.T) {
	var db *DB
	checked := 0
	opts := elasticOpts(Speculation, 16, 300,
		WithElasticity(ElasticityConfig{}),
		WithOnComplete(func(ci int, inv *Invocation, r *Reply) {
			if !r.Committed || len(db.Migrations()) == 0 {
				return
			}
			for pid, keys := range inv.Args.(*kvstore.Args).Keys {
				for _, k := range keys {
					if home := db.router.Place(pid, k); home != pid {
						t.Errorf("key %q issued to partition %d, lives on %d", k, pid, home)
					}
				}
			}
			checked++
		}),
	)
	db = mustOpen(t, opts...)
	db.Run()
	if len(db.Migrations()) == 0 {
		t.Fatal("no migration triggered")
	}
	if checked == 0 {
		t.Fatal("no post-migration invocation was checked")
	}
}
