package specdb_test

import (
	"testing"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

// adaptiveRun drives one DB through two workload phases with the advisor
// enabled: a single-round low-MP phase where the §6 model recommends
// speculation, then a two-round high-MP phase where it recommends OCC (the
// workload is conflict-free, so the optimistic engine's lower overhead wins).
// It returns the switch history and the final cumulative metrics.
func adaptiveRun(t *testing.T) ([]specdb.SchemeChange, specdb.Metrics) {
	t.Helper()
	const clients, keys = 40, 12
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Blocking),
		specdb.WithSeed(99),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: keys, MPFraction: 0.2}),
		specdb.WithAdvisor(specdb.AdvisorConfig{Interval: 10 * specdb.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: 20% single-round multi-partition transactions.
	db.RunFor(40 * specdb.Millisecond)
	phase1 := db.Scheme()

	// Phase 2: 60% two-round ("general", §5.4) multi-partition transactions.
	if err := db.SetWorkload(&workload.Micro{
		Partitions: 2, KeysPerTxn: keys, MPFraction: 0.6, TwoRound: true,
	}); err != nil {
		t.Fatal(err)
	}
	db.RunFor(60 * specdb.Millisecond)
	phase2 := db.Scheme()

	// (b) The scheme the advisor chose per phase matches the §6 model's
	// recommendation for that phase's nominal workload.
	p := specdb.PaperModelParams()
	if want := p.Recommend(specdb.ModelObserved{MPFraction: 0.2}); phase1 != want {
		t.Errorf("phase 1 scheme = %v, want model recommendation %v", phase1, want)
	}
	if want := p.Recommend(specdb.ModelObserved{MPFraction: 0.6, MultiRound: 1}); phase2 != want {
		t.Errorf("phase 2 scheme = %v, want model recommendation %v", phase2, want)
	}
	return db.SchemeHistory(), db.Peek()
}

// TestAdvisorSwitchesSchemesAcrossPhases is the §5.7 end-to-end scenario:
// one DB traverses workloads that previously required separate processes,
// and the advisor tracks the best scheme through the crossovers.
func TestAdvisorSwitchesSchemesAcrossPhases(t *testing.T) {
	history, m := adaptiveRun(t)

	// (a) At least one automatic switch occurred (this scenario produces
	// two: blocking→speculation in phase 1, speculation→OCC in 2).
	if len(history) < 2 {
		t.Fatalf("scheme history = %+v, want at least 2 switches", history)
	}
	for i, h := range history {
		if !h.Auto {
			t.Errorf("switch %d (%+v) not advisor-driven", i, h)
		}
		if h.From == h.To {
			t.Errorf("switch %d (%+v) is a self-switch", i, h)
		}
	}
	if history[0].From != specdb.Blocking || history[0].To != specdb.Speculation {
		t.Errorf("first switch = %+v, want blocking→speculation", history[0])
	}
	last := history[len(history)-1]
	if last.To != specdb.OCC {
		t.Errorf("last switch = %+v, want →occ", last)
	}
	if m.Completed == 0 || m.CommittedMR == 0 {
		t.Fatalf("metrics look empty: %+v", m)
	}
}

// TestAdvisorRunsAreReproducible reruns the adaptive scenario and asserts
// (c): the same seed produces byte-identical switch history and final
// counters, scheme switches included.
func TestAdvisorRunsAreReproducible(t *testing.T) {
	h1, m1 := adaptiveRun(t)
	h2, m2 := adaptiveRun(t)
	if len(h1) != len(h2) {
		t.Fatalf("history lengths differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Errorf("switch %d differs: %+v vs %+v", i, h1[i], h2[i])
		}
	}
	if m1 != m2 {
		t.Errorf("final metrics differ:\n run 1: %+v\n run 2: %+v", m1, m2)
	}
}

// TestSetSchemeManual walks one DB through all five schemes by hand and
// checks the drain-and-swap contract: data stays consistent, history records
// the switches as manual, and engine counters accumulate across swaps.
func TestSetSchemeManual(t *testing.T) {
	const clients, keys = 20, 12
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Blocking),
		specdb.WithSeed(3),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(&workload.Micro{Partitions: 2, KeysPerTxn: keys, MPFraction: 0.3}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Every committed microbenchmark transaction increments exactly
	// KeysPerTxn counters; right after a SetScheme drain nothing is in
	// flight, so the store sums must match the committed count exactly.
	checkConsistent := func(when string) {
		m := db.Peek()
		sum := kvstore.Sum(db.PartitionStore(0)) + kvstore.Sum(db.PartitionStore(1))
		if sum != int64(keys)*int64(m.Committed) {
			t.Fatalf("%s: store sum = %d, want %d (= %d keys × %d committed)",
				when, sum, int64(keys)*int64(m.Committed), keys, m.Committed)
		}
	}

	db.RunFor(20 * specdb.Millisecond)
	fastPathBlocking := db.Result().EngineStats[0].FastPath
	if fastPathBlocking == 0 {
		t.Fatal("no fast-path executions under blocking")
	}
	if err := db.SetScheme(specdb.Locking); err != nil {
		t.Fatal(err)
	}
	checkConsistent("after blocking→locking")
	db.RunFor(20 * specdb.Millisecond)
	if err := db.SetScheme(specdb.MVCC); err != nil {
		t.Fatal(err)
	}
	checkConsistent("after locking→mvcc")
	db.RunFor(20 * specdb.Millisecond)
	if err := db.SetScheme(specdb.OCC); err != nil {
		t.Fatal(err)
	}
	checkConsistent("after mvcc→occ")
	db.RunFor(20 * specdb.Millisecond)
	if err := db.SetScheme(specdb.Speculation); err != nil {
		t.Fatal(err)
	}
	checkConsistent("after occ→speculation")
	db.RunFor(20 * specdb.Millisecond)
	if got := db.Scheme(); got != specdb.Speculation {
		t.Fatalf("Scheme() = %v", got)
	}

	res := db.Result()
	if res.EngineStats[0].FastPath < fastPathBlocking {
		t.Errorf("fast-path counter went backwards across swaps: %d < %d",
			res.EngineStats[0].FastPath, fastPathBlocking)
	}
	if res.EngineStats[0].Speculated == 0 {
		t.Error("no speculation recorded after switching to the speculative engine")
	}
	// The locking era's lock-manager counters survive switching away.
	if len(res.LockStats) == 0 {
		t.Fatal("LockStats lost after switching away from locking")
	}
	var acquires uint64
	for _, ls := range res.LockStats {
		acquires += ls.Acquires
	}
	if acquires == 0 {
		t.Error("retired locking engine reported zero lock acquires")
	}

	h := db.SchemeHistory()
	if len(h) != 4 {
		t.Fatalf("history = %+v, want 4 manual switches", h)
	}
	for _, c := range h {
		if c.Auto {
			t.Errorf("manual switch recorded as auto: %+v", c)
		}
	}

	// No-op and error paths.
	if err := db.SetScheme(specdb.Speculation); err != nil {
		t.Fatalf("no-op switch errored: %v", err)
	}
	if len(db.SchemeHistory()) != 4 {
		t.Error("no-op switch appended to history")
	}
	if err := db.SetScheme(specdb.Scheme(42)); err == nil {
		t.Error("invalid scheme accepted")
	}
}

// TestSetSchemeBeforeStart switches a freshly opened DB before any event has
// run: no drain is needed and the run proceeds under the new scheme.
func TestSetSchemeBeforeStart(t *testing.T) {
	const clients, keys = 8, 4
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	db, err := specdb.Open(
		specdb.WithPartitions(2),
		specdb.WithClients(clients),
		specdb.WithScheme(specdb.Blocking),
		specdb.WithSeed(5),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, clients, keys)
		}),
		specdb.WithWorkload(&workload.Limit{
			Gen: &workload.Micro{Partitions: 2, KeysPerTxn: keys, MPFraction: 0.5},
			N:   64,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetScheme(specdb.Locking); err != nil {
		t.Fatal(err)
	}
	res := db.Run()
	if db.Scheme() != specdb.Locking {
		t.Fatalf("Scheme() = %v", db.Scheme())
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed under the swapped-in scheme")
	}
	if len(res.LockStats) == 0 {
		t.Error("no lock stats: locking engine not installed")
	}
}
