package specdb

import (
	"testing"

	"specdb/internal/storage"
	"specdb/internal/workload"
)

// This file is the serializability-oracle harness: every scheme runs
// conflict-heavy, skewed and TPC-C workloads with per-partition value-trace
// recording enabled (withHistory), and the recorded history of each
// partition is verified offline against a serial replay in commit order (see
// internal/oracle). A deliberately broken engine — OCC with validation
// disabled — is the negative control proving the oracle has teeth.

// initialStores replays the cluster's setup into fresh stores, capturing the
// state each partition started from.
func initialStores(parts int, setup func(PartitionID, *Store)) []*storage.Store {
	out := make([]*storage.Store, parts)
	for p := range out {
		s := storage.NewStore()
		setup(PartitionID(p), s)
		out[p] = s
	}
	return out
}

// verifyOracle opens the cluster with history recording, runs it to
// completion and checks every partition's trace against the oracle.
func verifyOracle(t *testing.T, setup func(PartitionID, *Store), opts ...Option) {
	t.Helper()
	db := mustOpen(t, append(opts, withHistory())...)
	db.Run()
	initial := initialStores(len(db.histories), setup)
	committed := 0
	for p, h := range db.histories {
		committed += h.Len()
		if err := h.Verify(initial[p], db.PartitionStore(PartitionID(p))); err != nil {
			t.Errorf("partition %d: %v", p, err)
		}
	}
	if committed == 0 {
		t.Fatal("oracle recorded no committed transactions")
	}
}

// TestOracleMicroAllSchemes verifies serializability of every scheme on the
// microbenchmark's two hostile regimes: explicit hot-key conflicts with user
// aborts and two-round transactions, and Zipfian key skew. Both mix in
// declared read-only transactions so MVCC's snapshot path is audited too.
func TestOracleMicroAllSchemes(t *testing.T) {
	workloads := []struct {
		name string
		mk   func() Generator
	}{
		{"conflicts", func() Generator {
			return &workload.Limit{Gen: &workload.Micro{
				Partitions: 2, KeysPerTxn: testKeys, MPFraction: 0.4,
				ConflictProb: 0.5, Pinned: true, TwoRound: true,
				AbortProb: 0.1, ReadFraction: 0.25,
			}, N: 400}
		}},
		{"skew", func() Generator {
			return &workload.Limit{Gen: &workload.Micro{
				Partitions: 2, KeysPerTxn: testKeys, MPFraction: 0.3,
				KeySkew: 0.99, ReadFraction: 0.25,
			}, N: 400}
		}},
	}
	for _, w := range workloads {
		for _, scheme := range allSchemes {
			t.Run(w.name+"/"+scheme.String(), func(t *testing.T) {
				verifyOracle(t, kvSetup(testClients), drainOpts(scheme, w.mk())...)
			})
		}
	}
}

// TestOracleScanAllSchemes verifies serializability of every scheme on
// scan-heavy mixes: YCSB-E-style short range scans (single- and
// multi-partition) interleaved with the update stream, uniform and Zipfian.
// The oracle replays every recorded scan against the serial store and
// compares the full key/value sequences, so a phantom — a scan observing a
// range state no serial order could produce — fails here even though
// point-read replay would pass.
func TestOracleScanAllSchemes(t *testing.T) {
	workloads := []struct {
		name string
		mk   func() Generator
	}{
		{"scan", func() Generator {
			return &workload.Limit{Gen: &workload.Micro{
				Partitions: 2, KeysPerTxn: testKeys, MPFraction: 0.4,
				ScanFraction: 0.4, ScanLength: 16,
				ConflictProb: 0.5, Pinned: true, AbortProb: 0.05,
			}, N: 400}
		}},
		{"scan-skew", func() Generator {
			return &workload.Limit{Gen: &workload.Micro{
				Partitions: 2, KeysPerTxn: testKeys, MPFraction: 0.3,
				ScanFraction: 0.4, ScanLength: 16, KeySkew: 0.99,
				ReadFraction: 0.2,
			}, N: 400}
		}},
	}
	for _, w := range workloads {
		for _, scheme := range allSchemes {
			t.Run(w.name+"/"+scheme.String(), func(t *testing.T) {
				opts := append(drainOpts(scheme, w.mk()), WithSetup(kvOrderedSetup(testClients)))
				verifyOracle(t, kvOrderedSetup(testClients), opts...)
			})
		}
	}
}

// TestOracleTPCCAllSchemes verifies serializability of every scheme on the
// TPC-C mix — multi-round distributed transactions, user aborts and hot
// district rows — independently of the TPC-C consistency conditions.
func TestOracleTPCCAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			opts, _, loader := tpccOpts(scheme, 4, 600)
			verifyOracle(t, loader.Load, opts...)
		})
	}
}

// TestOracleFlagsBrokenEngine is the negative control: OCC with commit-time
// validation disabled commits transactions whose reads went stale, and the
// oracle must reject at least one partition's history. If this test fails,
// the oracle is vacuous.
//
// The workload needs shared reads to expose the hole: the microbenchmark's
// read-write transactions read with update intent, which the engine's (still
// enabled) eager write-write rule serializes on its own. Declared read-only
// transactions read shared — multi-partition ones hold their read sets
// across a 2PC round trip, exactly the window where a skipped backward
// validation admits stale and dirty reads.
func TestOracleFlagsBrokenEngine(t *testing.T) {
	gen := &workload.Limit{Gen: &workload.Micro{
		Partitions: 2, KeysPerTxn: testKeys, MPFraction: 0.5,
		ConflictProb: 0.8, Pinned: true, TwoRound: true, AbortProb: 0.1,
		ReadFraction: 0.4,
	}, N: 400}
	opts := append(drainOpts(OCC, gen), withHistory(), withBrokenOCC())
	db := mustOpen(t, opts...)
	db.Run()
	initial := initialStores(len(db.histories), kvSetup(testClients))
	for p, h := range db.histories {
		if err := h.Verify(initial[p], db.PartitionStore(PartitionID(p))); err != nil {
			t.Logf("oracle correctly flagged partition %d: %v", p, err)
			return
		}
	}
	t.Fatal("oracle passed an engine that skips validation")
}

// TestOracleFlagsPhantomScans is the scan edition of the negative control:
// OCC with validation disabled admits phantom scans — a multi-partition
// scan's range can be written and committed by another transaction while the
// scanner sits in its 2PC window, and with backward validation skipped the
// scanner commits a range observation no serial order produced. The oracle's
// scan replay must reject at least one partition's history; if it passes,
// the phantom check is vacuous.
func TestOracleFlagsPhantomScans(t *testing.T) {
	gen := &workload.Limit{Gen: &workload.Micro{
		Partitions: 2, KeysPerTxn: testKeys, MPFraction: 0.6,
		ScanFraction: 0.4, ScanLength: 16,
		ConflictProb: 0.8, Pinned: true, TwoRound: true,
	}, N: 600}
	opts := append(drainOpts(OCC, gen),
		WithSetup(kvOrderedSetup(testClients)), withHistory(), withBrokenOCC())
	db := mustOpen(t, opts...)
	db.Run()
	initial := initialStores(len(db.histories), kvOrderedSetup(testClients))
	for p, h := range db.histories {
		if err := h.Verify(initial[p], db.PartitionStore(PartitionID(p))); err != nil {
			t.Logf("oracle correctly flagged partition %d: %v", p, err)
			return
		}
	}
	t.Fatal("oracle passed phantom-admitting scans (validation disabled)")
}

// TestOracleShardedAllSchemes re-runs the oracle on the sharded parallel
// runtime: every scheme at Shards=4 over the conflict-heavy micro mix.
// Histories are recorded by the partition actors themselves, so recording
// is shard-local and needs no changes; what this pins is that fanning the
// event loop over OS threads preserves a serializable commit order. The
// bounded Limit generator keeps shared state across clients and is
// restricted to the plain path, so the run is bounded by a measured window
// instead and drained to quiescence through an empty script before the
// stores are compared.
func TestOracleShardedAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			gen := &workload.Micro{
				Partitions: 2, KeysPerTxn: testKeys, MPFraction: 0.4,
				ConflictProb: 0.5, Pinned: true, TwoRound: true,
				AbortProb: 0.1, ReadFraction: 0.25,
			}
			db := mustOpen(t, append(drainOpts(scheme, gen),
				WithParallelism(ParallelismConfig{Shards: 4}),
				withHistory())...)
			db.RunFor(20 * Millisecond)
			if err := db.SetWorkload(&workload.Script{}); err != nil {
				t.Fatal(err)
			}
			db.Run() // empty script: drains to quiescence
			initial := initialStores(len(db.histories), kvSetup(testClients))
			committed := 0
			for p, h := range db.histories {
				committed += h.Len()
				if err := h.Verify(initial[p], db.PartitionStore(PartitionID(p))); err != nil {
					t.Errorf("partition %d: %v", p, err)
				}
			}
			if committed == 0 {
				t.Fatal("oracle recorded no committed transactions")
			}
		})
	}
}
