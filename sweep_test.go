package specdb

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"specdb/internal/workload"
)

// quickBase is a small, fast cluster configuration for sweep tests.
func quickBase() []Option {
	return []Option{
		WithPartitions(2),
		WithClients(testClients),
		WithSeed(5),
		WithWarmup(5 * Millisecond),
		WithMeasure(20 * Millisecond),
		WithRegistry(kvRegistry()),
		WithSetup(kvSetup(testClients)),
		microWorkloadOpt(0),
	}
}

func TestSweepGridOrder(t *testing.T) {
	schemes := []Scheme{Blocking, Speculation}
	fracs := []float64{0, 0.5}
	cells, err := Sweep{
		Name: "grid",
		Base: quickBase(),
		Axes: []Axis{
			SchemeAxis(schemes...),
			NumAxis("mp", fracs, func(f float64) []Option {
				return []Option{microWorkloadOpt(f)}
			}),
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	// Grid-major, last axis fastest.
	wantLabels := [][]string{
		{"blocking", "0"}, {"blocking", "0.5"},
		{"speculation", "0"}, {"speculation", "0.5"},
	}
	for i, c := range cells {
		if !reflect.DeepEqual(c.Labels, wantLabels[i]) {
			t.Fatalf("cell %d labels = %v, want %v", i, c.Labels, wantLabels[i])
		}
		if c.Result.Throughput <= 0 {
			t.Fatalf("cell %d produced no throughput", i)
		}
	}
	// Blocking at 50% MP must be far below blocking at 0%.
	if !(cells[1].Result.Throughput < cells[0].Result.Throughput) {
		t.Fatalf("blocking: 50%% MP (%.0f) should be below 0%% (%.0f)",
			cells[1].Result.Throughput, cells[0].Result.Throughput)
	}
}

func TestSweepZeroAxesRunsBaseOnce(t *testing.T) {
	cells, err := Sweep{Name: "base-only", Base: quickBase()}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Repeat != 0 {
		t.Fatalf("got %d cells, want exactly the base cell", len(cells))
	}
}

func TestSweepRepeatsVarySeedDeterministically(t *testing.T) {
	run := func() []Cell {
		cells, err := Sweep{Name: "reps", Base: quickBase(), Repeats: 3}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	a := run()
	if len(a) != 3 {
		t.Fatalf("got %d cells, want 3", len(a))
	}
	if a[0].Repeat != 0 || a[1].Repeat != 1 || a[2].Repeat != 2 {
		t.Fatalf("repeat indices wrong: %v %v %v", a[0].Repeat, a[1].Repeat, a[2].Repeat)
	}
	// Distinct seeds: repeats should not be identical runs.
	if reflect.DeepEqual(a[0].Result, a[1].Result) {
		t.Fatal("repeat 1 identical to repeat 0: seed offset not applied")
	}
	// But the whole sweep is deterministic.
	b := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep is not deterministic across runs")
	}
}

func TestSweepErrors(t *testing.T) {
	_, err := Sweep{Name: "empty-axis", Base: quickBase(), Axes: []Axis{{Name: "x"}}}.Run()
	if err == nil || !strings.Contains(err.Error(), "empty-axis") {
		t.Fatalf("empty axis error = %v", err)
	}

	_, err = Sweep{
		Name: "bad-cell",
		Base: quickBase(),
		Axes: []Axis{{Name: "parts", Points: []AxisPoint{
			{Label: "zero", X: 0, Opts: []Option{WithPartitions(0)}},
		}}},
	}.Run()
	if !errors.Is(err, ErrBadPartitions) {
		t.Fatalf("bad cell error = %v, want ErrBadPartitions", err)
	}
	if !strings.Contains(err.Error(), "zero") {
		t.Fatalf("error should identify the offending cell: %v", err)
	}
}

// TestSweepWorkloadFactory: a stateful (finite) generator must be created
// fresh per run via WithWorkloadFactory, so every repeat completes the full
// transaction budget rather than inheriting a drained generator.
func TestSweepWorkloadFactory(t *testing.T) {
	const n = 30
	base := append(quickBase(),
		WithWarmup(0), WithMeasure(0),
		WithWorkloadFactory(func() Generator {
			return &workload.Limit{Gen: microWorkload(0.2), N: n}
		}),
	)
	cells, err := Sweep{Name: "factory", Base: base, Repeats: 2}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		done := c.Result.Committed + c.Result.UserAborted
		if done != n {
			t.Fatalf("repeat %d completed %d transactions, want %d", i, done, n)
		}
	}
}

func TestMeanThroughput(t *testing.T) {
	cells := []Cell{
		{Labels: []string{"a"}, Result: Result{Throughput: 10}},
		{Labels: []string{"a"}, Repeat: 1, Result: Result{Throughput: 20}},
		{Labels: []string{"b"}, Result: Result{Throughput: 40}},
	}
	got := MeanThroughput(cells)
	want := []float64{15, 40}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MeanThroughput = %v, want %v", got, want)
	}
}

// TestSweepParallelDeterminism: a parallel sweep must produce exactly the
// cells a sequential one does — same order, same Results, bit for bit.
func TestSweepParallelDeterminism(t *testing.T) {
	build := func(parallel int) Sweep {
		return Sweep{
			Name: "par",
			Base: quickBase(),
			Axes: []Axis{
				SchemeAxis(Blocking, Speculation, Locking),
				NumAxis("mp", []float64{0, 0.2, 0.5}, func(f float64) []Option {
					return []Option{microWorkloadOpt(f)}
				}),
			},
			Repeats:  2,
			Parallel: parallel,
		}
	}
	seq, err := build(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := build(-1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 18 || len(par) != len(seq) {
		t.Fatalf("cell counts: seq=%d par=%d, want 18", len(seq), len(par))
	}
	if !reflect.DeepEqual(seq, par) {
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Fatalf("cell %d differs:\nseq: %+v\npar: %+v", i, seq[i], par[i])
			}
		}
	}
}

// TestSweepParallelError: errors surface identically under parallel
// execution, identifying the first failing cell in grid order.
func TestSweepParallelError(t *testing.T) {
	s := Sweep{
		Name: "bad",
		Base: quickBase(),
		Axes: []Axis{NumAxis("parts", []float64{2, -1, -2}, func(x float64) []Option {
			return []Option{WithPartitions(int(x))}
		})},
		Parallel: -1,
	}
	_, err := s.Run()
	if !errors.Is(err, ErrBadPartitions) {
		t.Fatalf("err = %v, want ErrBadPartitions", err)
	}
	if !strings.Contains(err.Error(), "[-1]") {
		t.Fatalf("error does not identify the first bad cell: %v", err)
	}
}
