package specdb

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// The paper's evaluation is a family of grids — scheme × partitions ×
// multi-partition fraction × abort rate — and every harness used to hand-roll
// the loops. Sweep is that experiment layer: a base option set, axes that
// each vary one dimension, and a repeat count, executed deterministically
// into tabular cells.

// Axis varies one dimension of a Sweep grid.
type Axis struct {
	// Name labels the dimension in cell identities and errors.
	Name string
	// Points are the values swept, in order.
	Points []AxisPoint
}

// AxisPoint is one value on an Axis: a label and numeric coordinate for
// tabular output, plus the options that realize the value. Point options
// apply after the sweep's Base options and therefore override them.
type AxisPoint struct {
	Label string
	X     float64
	Opts  []Option
}

// NumAxis builds a numeric axis: one point per x with options from mk(x).
func NumAxis(name string, xs []float64, mk func(x float64) []Option) Axis {
	ax := Axis{Name: name}
	for _, x := range xs {
		ax.Points = append(ax.Points, AxisPoint{
			Label: strconv.FormatFloat(x, 'g', -1, 64),
			X:     x,
			Opts:  mk(x),
		})
	}
	return ax
}

// RateAxis builds an axis over open-loop offered loads: one point per
// arrivals/sec value, sharing the rest of the open-loop configuration
// (window, queue, process). Sweeping rate through the saturation knee is the
// canonical tail-latency experiment (ccbench's latency-openloop).
func RateAxis(rates []float64, cfg OpenLoopConfig) Axis {
	return NumAxis("offered-load", rates, func(r float64) []Option {
		c := cfg
		c.Rate = r
		return []Option{WithOpenLoop(c)}
	})
}

// SchemeAxis builds an axis over concurrency control schemes.
func SchemeAxis(schemes ...Scheme) Axis {
	ax := Axis{Name: "scheme"}
	for i, s := range schemes {
		ax.Points = append(ax.Points, AxisPoint{
			Label: s.String(),
			X:     float64(i),
			Opts:  []Option{WithScheme(s)},
		})
	}
	return ax
}

// Sweep runs the cartesian product of its axes over a shared base
// configuration, each cell Repeats times with distinct deterministic seeds.
type Sweep struct {
	// Name labels the sweep in errors and output.
	Name string
	// Base options are shared by every cell.
	Base []Option
	// Axes are swept grid-major: the last axis varies fastest.
	Axes []Axis
	// Repeats (default 1) reruns each cell with the seed offset by the
	// repeat index, so repeat r of every cell sees seed base+r.
	Repeats int
	// Parallel bounds how many cells run concurrently. 0 or 1 runs the
	// grid sequentially; n > 1 uses up to n workers; negative uses
	// runtime.GOMAXPROCS(0). Every cell is an independent deterministic
	// simulation, so the cells, their order, and every Result are
	// identical to a sequential run — but beware option closures over
	// shared mutable state: stateful generators must come from
	// WithWorkloadFactory (as sequential sweeps already require).
	Parallel int
}

// Cell is one completed grid cell.
type Cell struct {
	// Labels and Xs identify the cell, one entry per axis in order.
	Labels []string
	Xs     []float64
	// Repeat is the repeat index within the cell (0-based).
	Repeat int
	// Result is the run's measurement summary.
	Result Result
}

// sweepJob is one (cell, repeat) of the grid, with its fully resolved
// options.
type sweepJob struct {
	labels []string
	xs     []float64
	repeat int
	opts   []Option
}

// jobs expands the grid into its (cell × repeat) jobs, grid-major with
// repeats innermost — the documented output order.
func (s Sweep) jobs() []sweepJob {
	reps := s.Repeats
	if reps <= 0 {
		reps = 1
	}
	var out []sweepJob
	idx := make([]int, len(s.Axes))
	for {
		labels := make([]string, len(s.Axes))
		xs := make([]float64, len(s.Axes))
		opts := append([]Option(nil), s.Base...)
		for i, ax := range s.Axes {
			p := ax.Points[idx[i]]
			labels[i], xs[i] = p.Label, p.X
			opts = append(opts, p.Opts...)
		}
		for r := 0; r < reps; r++ {
			o := opts
			if r > 0 {
				o = append(append([]Option(nil), opts...), withSeedOffset(int64(r)))
			}
			out = append(out, sweepJob{labels: labels, xs: xs, repeat: r, opts: o})
		}
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Axes[i].Points) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// Run executes every cell deterministically, returning them grid-major with
// repeats innermost. Cells run sequentially by default, or on a bounded
// worker pool when Parallel is set — each cell is an independent simulation,
// so the output (order included) is identical either way. An invalid
// configuration aborts the sweep with the offending cell identified in the
// error; with multiple failures, the first cell in grid order wins.
func (s Sweep) Run() ([]Cell, error) {
	for _, ax := range s.Axes {
		if len(ax.Points) == 0 {
			return nil, fmt.Errorf("specdb: sweep %q axis %q has no points", s.Name, ax.Name)
		}
	}
	jobs := s.jobs()
	cells := make([]Cell, len(jobs))
	errs := make([]error, len(jobs))
	runJob := func(i int) {
		j := jobs[i]
		db, err := Open(j.opts...)
		if err != nil {
			errs[i] = fmt.Errorf("specdb: sweep %q cell %v repeat %d: %w", s.Name, j.labels, j.repeat, err)
			return
		}
		cells[i] = Cell{Labels: j.labels, Xs: j.xs, Repeat: j.repeat, Result: db.Run()}
	}
	workers := s.Parallel
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		for i := range jobs {
			runJob(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runJob(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// MeanThroughput averages Result.Throughput over the repeats of each
// distinct cell, returning one value per cell in grid order. It relies on
// Sweep.Run's output layout: repeats of a cell are consecutive, each group
// starting at Repeat 0.
func MeanThroughput(cells []Cell) []float64 {
	var out []float64
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			out = append(out, sum/float64(n))
		}
		sum, n = 0, 0
	}
	for _, c := range cells {
		if c.Repeat == 0 {
			flush()
		}
		sum += c.Result.Throughput
		n++
	}
	flush()
	return out
}
