package specdb_test

import (
	"reflect"
	"testing"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

// fuzzConfig is a fuzz input decoded into a valid Open configuration. Every
// raw value is clamped into range rather than rejected, so all inputs
// exercise a run.
type fuzzConfig struct {
	seed       int64
	scheme     specdb.Scheme
	partitions int
	clients    int
	mpFrac     float64
	conflict   float64
	abortProb  float64
	twoRound   bool
	replicas   int
	faultKind  uint8 // 0 none, 1 crash primary, 2 crash backup
	openLoop   bool
	rate       float64
	window     int
	keySkew    float64
}

// decode clamps raw fuzz values into a valid configuration, resolving the
// cross-field constraints Open would reject (locking with faults, fault
// schedules without backups, open-loop windows with faults).
func decode(seed int64, scheme, partitions, clients, mpPct, conflictPct, abortPct uint8,
	twoRound bool, replicas, faultKind uint8, openLoop bool, rate uint32, window, skewPct uint8) fuzzConfig {
	c := fuzzConfig{
		seed:       seed,
		scheme:     specdb.Scheme(int(scheme) % 3),
		partitions: 1 + int(partitions)%3,
		clients:    1 + int(clients)%8,
		mpFrac:     float64(mpPct%101) / 100,
		conflict:   float64(conflictPct%101) / 100,
		abortProb:  float64(abortPct%101) / 100 / 4, // ≤ 25%, keeps runs busy
		twoRound:   twoRound,
		replicas:   1 + int(replicas)%3,
		faultKind:  faultKind % 3,
		openLoop:   openLoop,
		rate:       1000 + float64(rate%200_000),
		window:     1 + int(window)%4,
		keySkew:    float64(skewPct%100) / 100,
	}
	if c.keySkew > 0.99 {
		c.keySkew = 0.99
	}
	if c.faultKind != 0 {
		if c.scheme == specdb.Locking {
			c.faultKind = 0 // faults are not supported under locking
		} else {
			if c.replicas < 2 {
				c.replicas = 2 // crash schedules need a backup
			}
			c.window = 1 // recovery resend dedup requires one in flight
		}
	}
	return c
}

// open assembles a DB from a decoded config. Generators come fresh per call
// so the two runs of a pair share no state.
func (c fuzzConfig) open(t *testing.T) *specdb.DB {
	t.Helper()
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	opts := []specdb.Option{
		specdb.WithPartitions(c.partitions),
		specdb.WithClients(c.clients),
		specdb.WithScheme(c.scheme),
		specdb.WithReplicas(c.replicas),
		specdb.WithSeed(c.seed),
		specdb.WithWarmup(2 * specdb.Millisecond),
		specdb.WithMeasure(10 * specdb.Millisecond),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			kvstore.AddSchema(s)
			kvstore.Load(s, p, 8, 4)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{
				Partitions:   c.partitions,
				KeysPerTxn:   4,
				MPFraction:   c.mpFrac,
				ConflictProb: c.conflict,
				AbortProb:    c.abortProb,
				TwoRound:     c.twoRound,
				KeySkew:      c.keySkew,
			}
		}),
	}
	switch c.faultKind {
	case 1:
		opts = append(opts, specdb.WithFaults(specdb.CrashPrimary(0, 4*specdb.Millisecond)))
	case 2:
		opts = append(opts, specdb.WithFaults(specdb.CrashBackup(0, 1, 4*specdb.Millisecond)))
	}
	if c.openLoop {
		opts = append(opts, specdb.WithOpenLoop(specdb.OpenLoopConfig{
			Rate:   c.rate,
			Window: c.window,
			Queue:  4,
		}))
	}
	db, err := specdb.Open(opts...)
	if err != nil {
		t.Fatalf("decoded config must be valid: %v (%+v)", err, c)
	}
	return db
}

// FuzzDeterminism is the property gate for the simulator's core promise:
// a Result is a pure function of its options. Any valid configuration —
// scheme, workload shape, skew, fault schedule, open-loop arrivals — run
// twice from scratch must produce bit-identical Results. The seed corpus
// (f.Add plus testdata/fuzz) pins all three schemes, both fault kinds, and
// the open-loop/Zipfian paths, and runs on every plain `go test`.
func FuzzDeterminism(f *testing.F) {
	// scheme: 0 blocking, 1 speculation, 2 locking (see specdb consts).
	// Baseline closed-loop uniform, one per scheme.
	f.Add(int64(42), uint8(0), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0))
	f.Add(int64(7), uint8(1), uint8(1), uint8(7), uint8(50), uint8(0), uint8(8), true, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0))
	f.Add(int64(9), uint8(2), uint8(1), uint8(5), uint8(30), uint8(60), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0))
	// Fault schedules: primary crash under speculation and blocking,
	// backup crash under speculation.
	f.Add(int64(3), uint8(1), uint8(1), uint8(7), uint8(40), uint8(0), uint8(0), false, uint8(1), uint8(1), false, uint32(0), uint8(0), uint8(0))
	f.Add(int64(4), uint8(0), uint8(1), uint8(7), uint8(40), uint8(0), uint8(0), false, uint8(1), uint8(1), false, uint32(0), uint8(0), uint8(0))
	f.Add(int64(5), uint8(1), uint8(1), uint8(7), uint8(20), uint8(0), uint8(4), false, uint8(1), uint8(2), false, uint32(0), uint8(0), uint8(0))
	// Open-loop: underload and overload windows, all three schemes.
	f.Add(int64(11), uint8(1), uint8(1), uint8(7), uint8(10), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(20_000), uint8(2), uint8(0))
	f.Add(int64(12), uint8(2), uint8(1), uint8(7), uint8(10), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(150_000), uint8(3), uint8(0))
	f.Add(int64(13), uint8(0), uint8(1), uint8(3), uint8(0), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(80_000), uint8(0), uint8(0))
	// Zipfian skew, closed and open loop, with replication.
	f.Add(int64(21), uint8(1), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(1), uint8(0), false, uint32(0), uint8(0), uint8(90))
	f.Add(int64(22), uint8(2), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(60_000), uint8(1), uint8(99))
	// Open loop + fault + replication together.
	f.Add(int64(31), uint8(1), uint8(1), uint8(5), uint8(30), uint8(0), uint8(0), false, uint8(1), uint8(1), true, uint32(40_000), uint8(0), uint8(50))

	f.Fuzz(func(t *testing.T, seed int64, scheme, partitions, clients, mpPct, conflictPct, abortPct uint8,
		twoRound bool, replicas, faultKind uint8, openLoop bool, rate uint32, window, skewPct uint8) {
		c := decode(seed, scheme, partitions, clients, mpPct, conflictPct, abortPct,
			twoRound, replicas, faultKind, openLoop, rate, window, skewPct)
		a := c.open(t).Run()
		b := c.open(t).Run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same options, different Results:\n%+v\nvs\n%+v\nconfig %+v", a, b, c)
		}
	})
}
