package specdb_test

import (
	"bytes"
	"reflect"
	"testing"

	"specdb"
	"specdb/internal/kvstore"
	"specdb/internal/workload"
)

// fuzzConfig is a fuzz input decoded into a valid Open configuration. Every
// raw value is clamped into range rather than rejected, so all inputs
// exercise a run.
type fuzzConfig struct {
	seed       int64
	scheme     specdb.Scheme
	partitions int
	clients    int
	mpFrac     float64
	conflict   float64
	abortProb  float64
	twoRound   bool
	replicas   int
	faultKind  uint8 // 0 none, 1 crash primary, 2 crash backup, 3 crash-restart
	openLoop   bool
	rate       float64
	window     int
	keySkew    float64
	durable    bool
	ckptMs     int
	readFrac   float64
	scanFrac   float64
	adaptive   bool
	// shards is the WithParallelism width: 0 omits the option entirely
	// (the plain single-threaded scheduler, the legacy tie-break order),
	// >= 1 runs the sharded runtime at that width. Sharded Results must be
	// identical at every width; the plain path has its own (also
	// deterministic) event order.
	shards int
	// elastic turns on WithElasticity with the default auto trigger:
	// migrations (and their command-log records, under durable) join the
	// determinism surface. partSkew makes the trigger's hot partition.
	elastic  bool
	partSkew float64
}

// decode clamps raw fuzz values into a valid configuration, resolving the
// cross-field constraints Open would reject (locking with faults, faults with
// the advisor, fault schedules without backups, open-loop windows with
// faults).
func decode(seed int64, scheme, partitions, clients, mpPct, conflictPct, abortPct uint8,
	twoRound bool, replicas, faultKind uint8, openLoop bool, rate uint32, window, skewPct uint8,
	durable bool, ckptMs uint8, readPct uint8, adaptive bool, shards uint8, scanPct uint8,
	elastic uint8) fuzzConfig {
	c := fuzzConfig{
		seed:       seed,
		scheme:     specdb.Scheme(int(scheme) % 5),
		partitions: 1 + int(partitions)%3,
		clients:    1 + int(clients)%8,
		mpFrac:     float64(mpPct%101) / 100,
		conflict:   float64(conflictPct%101) / 100,
		abortProb:  float64(abortPct%101) / 100 / 4, // ≤ 25%, keeps runs busy
		twoRound:   twoRound,
		replicas:   1 + int(replicas)%3,
		faultKind:  faultKind % 4,
		openLoop:   openLoop,
		rate:       1000 + float64(rate%200_000),
		window:     1 + int(window)%4,
		keySkew:    float64(skewPct%100) / 100,
		durable:    durable,
		ckptMs:     1 + int(ckptMs)%8,
		readFrac:   float64(readPct%101) / 100,
		scanFrac:   float64(scanPct%101) / 100,
		adaptive:   adaptive,
		shards:     []int{0, 1, 2, 4}[shards%4],
		elastic:    elastic%2 == 1,
	}
	if c.keySkew > 0.99 {
		c.keySkew = 0.99
	}
	if c.elastic {
		if c.partitions < 2 {
			c.partitions = 2 // a split needs a destination
		}
		c.scanFrac = 0 // elastic routing rejects scan workloads
		c.faultKind = 0
		// Home-partition popularity concentrates on partition 0 so the
		// saturation trigger actually fires and migrations join the
		// compared surface.
		c.partSkew = 0.9
	}
	if c.faultKind != 0 {
		if c.scheme == specdb.Locking {
			c.faultKind = 0 // faults are not supported under locking
		} else if c.adaptive {
			c.faultKind = 0 // the advisor may switch to locking mid-run
		} else {
			c.window = 1 // recovery resend dedup requires one in flight
			if c.faultKind == 3 {
				// Crash-restart recovers from the command log, not a
				// backup: it requires durability and an unreplicated
				// partition.
				c.durable = true
				c.replicas = 1
			} else if c.replicas < 2 {
				c.replicas = 2 // crash schedules need a backup
			}
		}
	}
	return c
}

// open assembles a DB from a decoded config. Generators come fresh per call
// so the two runs of a pair share no state.
func (c fuzzConfig) open(t *testing.T) *specdb.DB {
	t.Helper()
	reg := specdb.NewRegistry()
	reg.Register(kvstore.Proc{})
	opts := []specdb.Option{
		specdb.WithPartitions(c.partitions),
		specdb.WithClients(c.clients),
		specdb.WithScheme(c.scheme),
		specdb.WithReplicas(c.replicas),
		specdb.WithSeed(c.seed),
		specdb.WithWarmup(2 * specdb.Millisecond),
		specdb.WithMeasure(10 * specdb.Millisecond),
		specdb.WithRegistry(reg),
		specdb.WithSetup(func(p specdb.PartitionID, s *specdb.Store) {
			// Scan-bearing configs run the ordered layout, like production
			// scan workloads would.
			if c.scanFrac > 0 {
				kvstore.AddOrderedSchema(s)
			} else {
				kvstore.AddSchema(s)
			}
			kvstore.Load(s, p, 8, 4)
		}),
		specdb.WithWorkloadFactory(func() specdb.Generator {
			return &workload.Micro{
				Partitions:    c.partitions,
				KeysPerTxn:    4,
				MPFraction:    c.mpFrac,
				ConflictProb:  c.conflict,
				AbortProb:     c.abortProb,
				TwoRound:      c.twoRound,
				KeySkew:       c.keySkew,
				PartitionSkew: c.partSkew,
				ReadFraction:  c.readFrac,
				ScanFraction:  c.scanFrac,
				ScanLength:    6,
			}
		}),
	}
	if c.adaptive {
		opts = append(opts, specdb.WithAdvisor(specdb.AdvisorConfig{Interval: 5 * specdb.Millisecond}))
	}
	switch c.faultKind {
	case 1:
		opts = append(opts, specdb.WithFaults(specdb.CrashPrimary(0, 4*specdb.Millisecond)))
	case 2:
		opts = append(opts, specdb.WithFaults(specdb.CrashBackup(0, 1, 4*specdb.Millisecond)))
	case 3:
		opts = append(opts, specdb.WithFaults(specdb.CrashRestart(0, 4*specdb.Millisecond)))
	}
	if c.durable {
		opts = append(opts, specdb.WithDurability(specdb.DurabilityConfig{
			CheckpointInterval: specdb.Time(c.ckptMs) * specdb.Millisecond,
		}))
	}
	if c.openLoop {
		opts = append(opts, specdb.WithOpenLoop(specdb.OpenLoopConfig{
			Rate:   c.rate,
			Window: c.window,
			Queue:  4,
		}))
	}
	if c.shards > 0 {
		opts = append(opts, specdb.WithParallelism(specdb.ParallelismConfig{Shards: c.shards}))
	}
	if c.elastic {
		// Eager thresholds: the fuzz windows are short (12 ms) and the
		// client pool small, so the default trigger would rarely fire and
		// migrations would drop out of the compared surface.
		opts = append(opts, specdb.WithElasticity(specdb.ElasticityConfig{
			Interval:           4 * specdb.Millisecond,
			SaturationFraction: 0.4,
			SaturationRatio:    1.2,
		}))
	}
	db, err := specdb.Open(opts...)
	if err != nil {
		t.Fatalf("decoded config must be valid: %v (%+v)", err, c)
	}
	return db
}

// FuzzDeterminism is the property gate for the simulator's core promise:
// a Result is a pure function of its options. Any valid configuration —
// scheme, workload shape, skew, fault schedule, durability, open-loop
// arrivals — run twice from scratch must produce bit-identical Results, and
// a durable configuration must also produce bit-identical command-log bytes
// on every partition. The seed corpus (f.Add plus testdata/fuzz) pins all
// five schemes, all three fault kinds, the durable logging path, the
// open-loop/Zipfian paths, and advisor-driven scheme switches, and runs on
// every plain `go test`.
func FuzzDeterminism(f *testing.F) {
	// scheme: 0 blocking, 1 speculation, 2 locking, 3 mvcc, 4 occ (see
	// specdb consts). Baseline closed-loop uniform, one per scheme.
	f.Add(int64(42), uint8(0), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(7), uint8(1), uint8(1), uint8(7), uint8(50), uint8(0), uint8(8), true, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(9), uint8(2), uint8(1), uint8(5), uint8(30), uint8(60), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	// Fault schedules: primary crash under speculation and blocking,
	// backup crash under speculation.
	f.Add(int64(3), uint8(1), uint8(1), uint8(7), uint8(40), uint8(0), uint8(0), false, uint8(1), uint8(1), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(4), uint8(0), uint8(1), uint8(7), uint8(40), uint8(0), uint8(0), false, uint8(1), uint8(1), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(5), uint8(1), uint8(1), uint8(7), uint8(20), uint8(0), uint8(4), false, uint8(1), uint8(2), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	// Open-loop: underload and overload windows, all three schemes.
	f.Add(int64(11), uint8(1), uint8(1), uint8(7), uint8(10), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(20_000), uint8(2), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(12), uint8(2), uint8(1), uint8(7), uint8(10), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(150_000), uint8(3), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(13), uint8(0), uint8(1), uint8(3), uint8(0), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(80_000), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	// Zipfian skew, closed and open loop, with replication.
	f.Add(int64(21), uint8(1), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(1), uint8(0), false, uint32(0), uint8(0), uint8(90), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(22), uint8(2), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(60_000), uint8(1), uint8(99), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	// Open loop + fault + replication together.
	f.Add(int64(31), uint8(1), uint8(1), uint8(5), uint8(30), uint8(0), uint8(0), false, uint8(1), uint8(1), true, uint32(40_000), uint8(0), uint8(50), false, uint8(0), uint8(0), false, uint8(0), uint8(0), uint8(0))
	// Durable command logging: fault-free under all three schemes (log
	// bytes must still be bit-identical), and crash-restart under
	// speculation and blocking with different checkpoint intervals.
	f.Add(int64(51), uint8(1), uint8(1), uint8(7), uint8(30), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), true, uint8(2), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(52), uint8(2), uint8(1), uint8(5), uint8(20), uint8(40), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), true, uint8(4), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(53), uint8(1), uint8(1), uint8(7), uint8(40), uint8(0), uint8(0), false, uint8(0), uint8(3), false, uint32(0), uint8(0), uint8(0), true, uint8(1), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(54), uint8(0), uint8(1), uint8(7), uint8(40), uint8(0), uint8(4), false, uint8(0), uint8(3), false, uint32(0), uint8(0), uint8(0), true, uint8(5), uint8(0), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(55), uint8(1), uint8(2), uint8(7), uint8(30), uint8(0), uint8(0), true, uint8(0), uint8(3), true, uint32(30_000), uint8(0), uint8(60), true, uint8(2), uint8(0), false, uint8(0), uint8(0), uint8(0))
	// The optimistic engines. MVCC under a read-heavy mix with conflicts
	// (kill/retry + backoff on the write side, snapshot reads on the read
	// side), and with Zipfian skew + replication; OCC under hot-key
	// conflicts with two-round transactions, and under open-loop arrivals.
	f.Add(int64(61), uint8(3), uint8(1), uint8(7), uint8(30), uint8(50), uint8(4), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(60), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(62), uint8(3), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(1), uint8(0), false, uint32(0), uint8(0), uint8(95), false, uint8(0), uint8(40), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(63), uint8(4), uint8(1), uint8(7), uint8(40), uint8(60), uint8(8), true, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(25), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(64), uint8(4), uint8(1), uint8(7), uint8(20), uint8(30), uint8(0), false, uint8(0), uint8(0), true, uint32(50_000), uint8(1), uint8(0), false, uint8(0), uint8(30), false, uint8(0), uint8(0), uint8(0))
	// Durable logging under the optimistic engines: retried transactions
	// must still produce bit-identical log bytes.
	f.Add(int64(65), uint8(3), uint8(1), uint8(7), uint8(30), uint8(40), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), true, uint8(3), uint8(50), false, uint8(0), uint8(0), uint8(0))
	f.Add(int64(66), uint8(4), uint8(1), uint8(5), uint8(30), uint8(40), uint8(4), true, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), true, uint8(2), uint8(30), false, uint8(0), uint8(0), uint8(0))
	// Advisor-driven switches: start on blocking with a workload the model
	// steers to OCC (conflict-free two-round MP), and start on locking with
	// a read-heavy mix that steers to MVCC. Switch points and all results
	// must replay bit-identically.
	f.Add(int64(71), uint8(0), uint8(1), uint8(7), uint8(60), uint8(0), uint8(0), true, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint8(0), uint8(0), uint8(0))
	f.Add(int64(72), uint8(2), uint8(1), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(80), true, uint8(0), uint8(0), uint8(0))
	// The sharded parallel runtime: widths 2 and 4 over multi-partition
	// speculation with a crash fault, durable logging, open-loop arrivals,
	// and MVCC. Each seed also replays at Shards=1 and must match.
	f.Add(int64(81), uint8(1), uint8(2), uint8(7), uint8(40), uint8(0), uint8(0), false, uint8(1), uint8(1), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(2), uint8(0), uint8(0))
	f.Add(int64(82), uint8(0), uint8(2), uint8(7), uint8(30), uint8(0), uint8(4), false, uint8(0), uint8(3), false, uint32(0), uint8(0), uint8(0), true, uint8(2), uint8(0), false, uint8(3), uint8(0), uint8(0))
	f.Add(int64(83), uint8(2), uint8(2), uint8(7), uint8(10), uint8(0), uint8(0), false, uint8(0), uint8(0), true, uint32(80_000), uint8(2), uint8(90), false, uint8(0), uint8(0), false, uint8(3), uint8(0), uint8(0))
	f.Add(int64(84), uint8(3), uint8(2), uint8(7), uint8(30), uint8(40), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), true, uint8(3), uint8(50), false, uint8(2), uint8(0), uint8(0))
	// Range scans (YCSB-E mixes on the ordered layout): locking's shared
	// range locks, MVCC snapshot scans at width 2, and OCC phantom
	// validation with two-round conflicts at width 4. Scans run twice must
	// produce bit-identical Results including the scan commit counters.
	f.Add(int64(91), uint8(2), uint8(1), uint8(7), uint8(30), uint8(40), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(20), false, uint8(0), uint8(40), uint8(0))
	f.Add(int64(92), uint8(3), uint8(1), uint8(7), uint8(30), uint8(40), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(30), false, uint8(2), uint8(50), uint8(0))
	f.Add(int64(93), uint8(4), uint8(1), uint8(7), uint8(40), uint8(50), uint8(0), true, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(3), uint8(40), uint8(0))
	// Elastic repartitioning: a hot partition 0 (the decoder pins partition
	// skew 0.9 when elastic is on) splits mid-run under the default auto
	// trigger. One seed composes with durable logging — the migration
	// records are part of the compared log bytes — and one runs on the
	// sharded runtime at width 2, replayed against width 1.
	f.Add(int64(101), uint8(1), uint8(1), uint8(7), uint8(10), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), true, uint8(2), uint8(0), false, uint8(0), uint8(0), uint8(1))
	f.Add(int64(102), uint8(0), uint8(2), uint8(7), uint8(20), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint32(0), uint8(0), uint8(0), false, uint8(0), uint8(0), false, uint8(2), uint8(0), uint8(1))

	f.Fuzz(func(t *testing.T, seed int64, scheme, partitions, clients, mpPct, conflictPct, abortPct uint8,
		twoRound bool, replicas, faultKind uint8, openLoop bool, rate uint32, window, skewPct uint8,
		durable bool, ckptMs uint8, readPct uint8, adaptive bool, shards uint8, scanPct uint8,
		elastic uint8) {
		c := decode(seed, scheme, partitions, clients, mpPct, conflictPct, abortPct,
			twoRound, replicas, faultKind, openLoop, rate, window, skewPct, durable, ckptMs,
			readPct, adaptive, shards, scanPct, elastic)
		dbA, dbB := c.open(t), c.open(t)
		a, b := dbA.Run(), dbB.Run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same options, different Results:\n%+v\nvs\n%+v\nconfig %+v", a, b, c)
		}
		if c.shards > 1 {
			// Width equivalence: the same configuration on the
			// single-threaded scheduler must produce the same Result.
			// Parallel is the one legitimately width-dependent field.
			c1 := c
			c1.shards = 1
			one := c1.open(t).Run()
			one.Parallel = nil
			norm := a
			norm.Parallel = nil
			if !reflect.DeepEqual(norm, one) {
				t.Fatalf("shards=%d diverges from shards=1:\n%+v\nvs\n%+v\nconfig %+v", c.shards, norm, one, c)
			}
		}
		// The command log's byte transcript is part of the determinism
		// surface: same options, same bytes, partition by partition.
		for p := 0; p < c.partitions; p++ {
			la, lb := dbA.LogBytes(specdb.PartitionID(p)), dbB.LogBytes(specdb.PartitionID(p))
			if !bytes.Equal(la, lb) {
				t.Fatalf("partition %d log bytes diverge (%d vs %d bytes), config %+v", p, len(la), len(lb), c)
			}
		}
	})
}
