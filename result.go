package specdb

import (
	"sort"

	"specdb/internal/core"
	"specdb/internal/locks"
	"specdb/internal/metrics"
)

// FailoverEvent records one crash fault and its handling: crash, detection,
// promotion, and the recovery work (buffered transactions resolved,
// in-flight transactions aborted). Its Downtime and RecoveryLatency methods
// derive the paper-style availability numbers.
type FailoverEvent = metrics.FailoverEvent

// RecoveryEvent records one crash-restart fault and its recovery timeline:
// crash, restart, resume, plus the recovery work (checkpoint bytes loaded,
// log bytes and transactions replayed, buffered transactions resolved). Its
// Downtime and RecoveryLatency methods derive the restart-cost numbers.
type RecoveryEvent = metrics.RecoveryEvent

// MigrationEvent records one elastic repartitioning step: donor and
// destination partitions, the trigger/copy/cutover timeline, the migrated
// key range and its size. Its Dip method derives the freeze-to-cutover
// stall — the elasticity analog of a failover's Downtime.
type MigrationEvent = metrics.MigrationEvent

// LatencySummary condenses one latency class into sample count, p50/p95/p99
// quantiles, and the observed maximum.
type LatencySummary = metrics.LatencySummary

// Result summarizes a run's measurement window.
type Result struct {
	// Throughput is completed transactions per second of measurement
	// window (user aborts count as completions, §5.3). For open-ended
	// runs (Measure zero) it is computed over the elapsed virtual time
	// after warm-up.
	Throughput float64
	// Window counters.
	Committed   uint64
	UserAborted uint64
	CommittedSP uint64
	CommittedMP uint64
	// CommittedScan counts committed transactions whose plan declared at
	// least one key-range scan (YCSB-E-style range queries).
	CommittedScan uint64
	Retries       uint64
	// CompletedTotal counts completions over the whole run, warm-up and
	// post-window included. Host-side perf normalization (allocs per
	// transaction, internal/bench.Perf) divides by this, since allocations
	// accrue over the whole run, not just the measurement window.
	CompletedTotal uint64
	// Latency quantiles over the window, all completions merged (the same
	// numbers as Latency's percentiles, kept as flat fields for easy
	// printing).
	P50, P95, P99 Time
	// Latency summarizes issue-to-completion latency over every completion
	// in the window; the split summaries separate committed
	// single-partition, committed multi-partition, and user-aborted
	// transactions — speculation's cascading aborts and locking's stalls
	// live in different cells of that split. Open-loop runs measure from
	// arrival, so window/queue wait counts.
	Latency        LatencySummary
	LatencySP      LatencySummary
	LatencyMP      LatencySummary
	LatencyAborted LatencySummary
	// Shed counts open-loop arrivals dropped inside the window because the
	// issuing client's in-flight window and pending queue were both full
	// (overload backpressure). Always zero for closed-loop runs.
	Shed uint64
	// EngineStats per partition, accumulated across every engine the
	// partition has run (scheme switches retire engines but fold their
	// counters forward).
	EngineStats []core.EngineStats
	// LockStats per partition, accumulated across every locking engine the
	// partition has run; nil when locking never ran.
	LockStats []locks.Stats
	// Utilization: fraction of wall-clock the actor's CPU was busy. A
	// failed-over partition's entry sums its dead primary's actor and the
	// promoted backup's actor (whose busy time includes its backup-era
	// replica application).
	CoordUtilization float64
	PartUtilization  []float64
	// Events is the number of simulation events processed.
	Events uint64
	// Failovers records every injected crash fault and its handling
	// (WithFaults runs only; nil otherwise).
	Failovers []FailoverEvent
	// Downtime is the total time partitions spent without a primary: the
	// sum of crash-to-promotion spans over all primary failovers, plus the
	// crash-to-resume spans over all crash-restarts.
	Downtime Time
	// FailoverResends counts single-partition attempts clients re-sent to
	// a promoted primary after its original target crashed.
	FailoverResends uint64
	// Recovery records every crash-restart fault's recovery timeline
	// (WithDurability + CrashRestart runs only; nil otherwise).
	Recovery []RecoveryEvent
	// ReplayParallelism is the maximum number of partitions that were
	// recovering (restart to resume) at the same instant — the parallel
	// replay width of a multi-partition crash.
	ReplayParallelism int
	// Migrations records every elastic repartitioning step in cutover
	// order (WithElasticity runs only; nil otherwise), each with its
	// trigger/copy/cutover timeline and moved-range size. MigrationDip is
	// the summed freeze-to-cutover stall across them — the elasticity
	// dip timeline's total, analogous to Downtime for faults.
	Migrations   []MigrationEvent
	MigrationDip Time
	// Parallel reports sharded-runtime observability (WithParallelism runs
	// only; nil otherwise). It is the one field that legitimately differs
	// between runs at different shard counts — cross-shard traffic and
	// per-shard busy split depend on placement — so determinism comparisons
	// must exclude it; everything else in Result is width-independent.
	Parallel *ParallelStats
}

// ParallelStats is the sharded runtime's observability surface: what the
// window-barrier protocol cost and how the load spread over shards.
type ParallelStats struct {
	// Shards and Horizon echo the configuration (Horizon resolved to the
	// cost model's one-way latency when it was left zero).
	Shards  int
	Horizon Time
	// Barriers is the number of time windows executed. The window sequence
	// is a function of event times only, so this count is identical at every
	// shard count; Barriers × Shards is the total synchronization points.
	Barriers uint64
	// CrossShardMsgs counts events exchanged between shards at barriers —
	// the coordinator round-trips and multi-partition traffic that cross
	// placement boundaries. Width- and placement-dependent by nature.
	CrossShardMsgs uint64
	// ShardBusy is each shard's summed virtual CPU busy time, the
	// load-balance view: a skewed split means placement (partition group
	// striping, client striping) left shards idle at barriers.
	ShardBusy []Time
}

// Metrics is a live snapshot of a running DB: cumulative whole-run counters
// (they move during warm-up too, unlike Result's window counters) plus
// interval rates covering the span since the previous Snapshot.
type Metrics struct {
	// Now is the virtual time the cluster has been driven to.
	Now Time
	// Scheme is the concurrency control scheme currently running (it
	// changes under SetScheme and the advisor).
	Scheme Scheme
	// Events is the number of simulation events delivered so far.
	Events uint64
	// Cumulative counters since t=0. CommittedMR counts committed
	// multi-partition transactions that took more than one fragment round.
	Completed   uint64
	Committed   uint64
	UserAborted uint64
	CommittedSP uint64
	CommittedMP uint64
	CommittedMR uint64
	Retries     uint64
	// Shed counts open-loop arrivals dropped by full client windows and
	// queues so far (overload backpressure).
	Shed uint64
	// Failovers counts completed backup promotions so far; FailoverResends
	// counts client attempts re-sent to promoted primaries; Restarts counts
	// completed crash-restart recoveries.
	Failovers       int
	FailoverResends uint64
	Restarts        int
	// Barriers and CrossShardMsgs report the sharded runtime's window count
	// and cross-shard exchange volume so far (zero without WithParallelism).
	Barriers       uint64
	CrossShardMsgs uint64
	// Interval covers [previous Snapshot's Now, this snapshot's Now).
	Interval Interval
}

// Interval reports activity between two snapshots: raw counters plus the
// derived workload statistics the scheme advisor consumes (§5.7).
type Interval struct {
	// Start and End bound the interval in virtual time.
	Start, End Time
	// Completed, Committed, UserAborted, CommittedMP and Retries are the
	// interval's counter deltas.
	Completed   uint64
	Committed   uint64
	UserAborted uint64
	CommittedMP uint64
	Retries     uint64
	// Throughput is completions per second of virtual time in the span.
	Throughput float64
	// MPFraction is the fraction of committed transactions that were
	// multi-partition — the measured x-coordinate of Figures 4–10.
	MPFraction float64
	// MultiRoundFraction is the fraction of committed multi-partition
	// transactions that took more than one fragment round (§5.4).
	MultiRoundFraction float64
	// AbortRate is user aborts per completed transaction (§5.3).
	AbortRate float64
	// ConflictRate is deadlock/timeout retries per completed transaction
	// (§5.2; only the locking scheme retries).
	ConflictRate float64
	// Shed is the interval's open-loop backpressure drop count.
	Shed uint64
	// P50, P95 and P99 are completion-latency quantiles over the
	// interval's completions (all classes merged), from the run-total
	// histogram delta — accurate to bucket resolution.
	P50, P95, P99 Time
}

// Duration returns the interval's length.
func (iv Interval) Duration() Time { return iv.End - iv.Start }

// Result collects the measurement-window summary. It may be called mid-run
// (after RunFor/Step) for a partial view or after Run for the final one.
func (db *DB) Result() Result {
	win := db.collector.Window
	wl := &db.collector.WindowLat
	all := wl.Merged()
	aborted := *wl.Hist(false, true)
	aborted.Merge(wl.Hist(true, true))
	res := Result{
		Throughput:     db.collector.Throughput(),
		Committed:      win.Committed,
		UserAborted:    win.UserAborted,
		CommittedSP:    win.CommittedSP,
		CommittedMP:    win.CommittedMP,
		CommittedScan:  win.CommittedScan,
		Retries:        win.Retries,
		Shed:           win.Shed,
		CompletedTotal: db.collector.Totals.Completed(),
		P50:            all.Quantile(0.50),
		P95:            all.Quantile(0.95),
		P99:            all.Quantile(0.99),
		Latency:        metrics.Summarize(&all),
		LatencySP:      metrics.Summarize(wl.Hist(false, false)),
		LatencyMP:      metrics.Summarize(wl.Hist(true, false)),
		LatencyAborted: metrics.Summarize(&aborted),
		Events:         db.sch.DeliveredCount(),
	}
	if db.shsch != nil {
		res.Parallel = &ParallelStats{
			Shards:         db.shsch.NumShards(),
			Horizon:        db.shsch.Horizon(),
			Barriers:       db.shsch.Barriers(),
			CrossShardMsgs: db.shsch.CrossShardMsgs(),
			ShardBusy:      db.shsch.ShardBusy(),
		}
	}
	if db.cfg.measure == 0 {
		// Open-ended run: rate over elapsed post-warm-up virtual time.
		res.Throughput = 0
		if el := db.cursor - db.cfg.warmup; el > 0 {
			res.Throughput = float64(db.collector.Completed()) / (float64(el) / float64(Second))
		}
	}
	elapsed := db.sch.Now()
	if elapsed > 0 {
		res.CoordUtilization = float64(db.sch.BusyTime(db.coordID)) / float64(elapsed)
	}
	for p := range db.parts {
		stats := db.parts[p].EngineTotals()
		busy := db.sch.BusyTime(db.partIDs[p])
		if live := db.livePrimary(p); live != db.parts[p] {
			// Failed-over partition: fold in the promoted engine's work
			// (and its actor's busy time) on top of the dead primary's
			// pre-crash counters.
			stats = stats.Add(live.EngineTotals())
			for i, b := range db.backups[p] {
				if b.Promoted() != nil {
					busy += db.sch.BusyTime(db.backupIDs[p][i])
				}
			}
			if r := db.restarters[p]; r != nil && r.Promoted() != nil {
				busy += db.sch.BusyTime(db.restarterIDs[p])
			}
		}
		res.EngineStats = append(res.EngineStats, stats)
		if elapsed > 0 {
			res.PartUtilization = append(res.PartUtilization, float64(busy)/float64(elapsed))
		}
	}
	res.LockStats = db.lockStats()
	if len(db.collector.Failovers) > 0 {
		res.Failovers = append([]FailoverEvent(nil), db.collector.Failovers...)
		for _, e := range res.Failovers {
			res.Downtime += e.Downtime()
		}
	}
	res.FailoverResends = db.collector.FailoverResends
	if len(db.collector.Recoveries) > 0 {
		res.Recovery = append([]RecoveryEvent(nil), db.collector.Recoveries...)
		for _, e := range res.Recovery {
			res.Downtime += e.Downtime()
		}
		res.ReplayParallelism = replayParallelism(res.Recovery)
	}
	if len(db.collector.Migrations) > 0 {
		res.Migrations = append([]MigrationEvent(nil), db.collector.Migrations...)
		for _, e := range res.Migrations {
			res.MigrationDip += e.Dip()
		}
	}
	return res
}

// replayParallelism returns the maximum number of recoveries whose
// restart-to-resume intervals overlapped at one instant: sweep the interval
// endpoints in time order, counting starts before ends at ties (a recovery
// resuming exactly when another restarts still overlaps it at that instant).
func replayParallelism(evs []RecoveryEvent) int {
	type edge struct {
		at    Time
		delta int
	}
	var edges []edge
	for _, e := range evs {
		if e.ResumedAt == 0 || e.RestartedAt == 0 {
			continue
		}
		edges = append(edges, edge{e.RestartedAt, +1}, edge{e.ResumedAt, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta
	})
	cur, max := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}
