// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench -list
//	ccbench -experiment fig4
//	ccbench -experiment all [-quick] [-csv | -json] [-seed 7]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the recorded comparison against the paper's curves.
// With -json, one JSON object per grid cell is emitted (newline delimited)
// for machine consumption (BENCH_*.json trajectories).
package main

import (
	"flag"
	"fmt"
	"os"

	"specdb/internal/bench"
)

func main() {
	var (
		expID   = flag.String("experiment", "all", "experiment id (fig4..fig10, table1, table2, ablation-*, or all)")
		quick   = flag.Bool("quick", false, "shorter measurement windows and coarser sweeps")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut = flag.Bool("json", false, "emit newline-delimited JSON, one object per grid cell")
		seed    = flag.Int64("seed", 42, "simulation seed")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-22s %s [%s]\n", e.ID, e.Title, e.Ref)
		}
		return
	}
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "ccbench: -csv and -json are mutually exclusive")
		os.Exit(2)
	}
	opts := bench.DefaultOpts()
	if *quick {
		opts = bench.QuickOpts()
	}
	opts.Seed = *seed

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.All()
	} else {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		series := e.Run(opts)
		switch {
		case *jsonOut:
			if err := bench.FormatJSON(os.Stdout, e, series); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
				os.Exit(1)
			}
		case *csv:
			bench.FormatCSV(os.Stdout, e, series)
		default:
			bench.Format(os.Stdout, e, series)
		}
	}
}
