// Command ccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ccbench -list
//	ccbench -experiment fig4
//	ccbench -experiment all [-quick] [-csv | -json] [-seed 7]
//	ccbench -experiment fig4 -quick -json -baseline BENCH_4.json -tolerance 0.25
//	ccbench -experiment fig4 -cpuprofile cpu.out -memprofile mem.out
//	ccbench -experiment parallel-speedup -shards 4 -json
//
// Each experiment prints the same rows/series the paper reports — plus the
// beyond-the-paper load experiments (latency-openloop, zipf-skew), the
// durability experiments (recovery-checkpoint, durable-overhead), the
// optimistic-engine crossovers (mvcc-crossover, occ-retry), the YCSB-E
// scan-fraction sweep (ycsb-scan), the sharded
// parallel runtime sweep (parallel-speedup), and the elastic hot-partition
// split sweep (elastic-split); see
// EXPERIMENTS.md for the recorded comparison against the paper's curves.
// With -json, one JSON object per grid cell is emitted (newline delimited)
// for machine consumption (BENCH_*.json trajectories) — measured cells carry
// p50_us/p95_us/p99_us completion-latency percentiles next to throughput,
// and recovery cells add recovery_ms/log_bytes/replay_txns —
// followed by one perf record per experiment ("perf":true) carrying wall
// time, events/sec and allocs/txn; text mode prints the same perf line as a
// comment and a p99 column per measured series.
//
// With -baseline, every cell is also compared against the named BENCH_*.json
// file: a throughput more than -tolerance (fractional, default 0.25) below
// the committed value fails the run with exit status 1. Cell throughputs are
// virtual-time and deterministic, so the comparison is host-independent;
// perf records in the baseline are informational and never compared.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"specdb/internal/bench"
)

func main() {
	var (
		expID      = flag.String("experiment", "all", "experiment id (fig4..fig10, table1, table2, ablation-*, latency-openloop, zipf-skew, recovery-checkpoint, durable-overhead, mvcc-crossover, occ-retry, ycsb-scan, parallel-speedup, elastic-split, or all)")
		quick      = flag.Bool("quick", false, "shorter measurement windows and coarser sweeps")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut    = flag.Bool("json", false, "emit newline-delimited JSON, one object per grid cell plus perf records")
		seed       = flag.Int64("seed", 42, "simulation seed")
		shards     = flag.Int("shards", 0, "run microbenchmark cells on the sharded parallel runtime at this width (0 = plain single-threaded scheduler; TPC-C cells always stay plain)")
		list       = flag.Bool("list", false, "list experiments and exit")
		baseline   = flag.String("baseline", "", "BENCH_*.json file to compare cell throughput against")
		tolerance  = flag.Float64("tolerance", 0.25, "relative throughput drop vs -baseline that fails the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-22s %s [%s]\n", e.ID, e.Title, e.Ref)
		}
		return
	}
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "ccbench: -csv and -json are mutually exclusive")
		os.Exit(2)
	}
	opts := bench.DefaultOpts()
	if *quick {
		opts = bench.QuickOpts()
	}
	opts.Seed = *seed
	opts.Shards = *shards

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.All()
	} else {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	var base []bench.BaselineCell
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			os.Exit(2)
		}
		base, err = bench.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %s: %v\n", *baseline, err)
			os.Exit(2)
		}
	}

	// run's exit code reaches os.Exit only after run's defers flushed the
	// CPU profile — a regression that fails the baseline gate is exactly
	// the run whose profile must survive.
	os.Exit(run(exps, opts, base, *jsonOut, *csv, *tolerance, *baseline, *cpuprofile, *memprofile))
}

func run(exps []bench.Experiment, opts bench.Opts, base []bench.BaselineCell,
	jsonOut, csv bool, tolerance float64, baseline, cpuprofile, memprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	var fresh []bench.BaselineCell
	for _, e := range exps {
		series, perf := bench.MeasurePerf(e, opts)
		switch {
		case jsonOut:
			if err := bench.FormatJSON(os.Stdout, e, series); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
				return 1
			}
			if err := bench.FormatPerfJSON(os.Stdout, perf); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
				return 1
			}
		case csv:
			bench.FormatCSV(os.Stdout, e, series)
		default:
			bench.Format(os.Stdout, e, series)
			bench.FormatPerf(os.Stdout, perf)
		}
		if base != nil {
			fresh = append(fresh, bench.SeriesCells(e, series)...)
		}
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			return 2
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			return 2
		}
	}

	if base != nil {
		if bad := bench.CompareBaseline(base, fresh, tolerance); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "ccbench: %d regression(s) vs %s:\n", len(bad), baseline)
			for _, m := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", m)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "ccbench: %d cells within %.0f%% of %s\n",
			len(fresh), tolerance*100, baseline)
	}
	return 0
}
